"""Pytest wrapper around the backend-import architecture lint.

``make lint`` runs ``tools/lint_backend_imports.py`` standalone; this
wrapper makes the same check part of the tier-1 suite, so a backend that
reaches around the engine observer (importing :mod:`repro.trace` or
:mod:`repro.metrics` directly) — or a serve module that touches the
metrics layer outside the ``repro.metrics.instrument`` façade — fails CI
even when the Makefile target is skipped.
"""

from __future__ import annotations

import ast
import os
import sys
import textwrap

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tools"))

import lint_backend_imports as lint  # noqa: E402


def test_backends_do_not_import_trace_or_metrics():
    violations = lint.run()
    assert violations == []


def test_lint_catches_direct_import(tmp_path):
    bad = tmp_path / "bad_backend.py"
    bad.write_text(
        textwrap.dedent(
            """
            import repro.trace

            def f():
                from repro.metrics.instrument import record_solve
                return record_solve
            """
        )
    )
    violations = lint.check_file(bad)
    assert len(violations) == 2


def test_lint_allows_engine_and_docstrings(tmp_path):
    ok = tmp_path / "ok_backend.py"
    ok.write_text(
        textwrap.dedent(
            '''
            """Mentions repro.trace in prose only."""
            from repro.engine import SolverBackend
            from repro.tracefoo import unrelated  # prefix, not the package
            '''
        )
    )
    assert lint.check_file(ok) == []


def test_forbidden_prefix_matching():
    assert lint._is_forbidden("repro.trace")
    assert lint._is_forbidden("repro.metrics.instrument")
    assert not lint._is_forbidden("repro.tracefoo")
    assert not lint._is_forbidden("repro.engine.hooks")


def test_serve_rule_allows_instrument_facade_only(tmp_path):
    ok = tmp_path / "ok_serve.py"
    ok.write_text(
        textwrap.dedent(
            """
            from repro.metrics.instrument import record_job_submitted
            from repro.batch.scheduler import ConcurrentSchedule
            """
        )
    )
    assert lint.check_file(ok, serve=True) == []

    bad = tmp_path / "bad_serve.py"
    bad.write_text(
        textwrap.dedent(
            """
            from repro.metrics import enable          # registry internals
            from repro.metrics import instrument      # module is repro.metrics
            from repro.metrics.registry import Counter
            import repro.trace

            def f():
                import repro.metrics
            """
        )
    )
    violations = lint.check_file(bad, serve=True)
    assert len(violations) == 5
    assert all("serve module" in v for v in violations)


def test_serve_forbidden_predicate():
    assert not lint._is_forbidden_for_serve("repro.metrics.instrument")
    assert lint._is_forbidden_for_serve("repro.metrics")
    assert lint._is_forbidden_for_serve("repro.metrics.registry")
    assert lint._is_forbidden_for_serve("repro.trace")
    assert not lint._is_forbidden_for_serve("repro.batch.scheduler")


def test_obs_is_forbidden_everywhere(tmp_path):
    # the span recorder is façade-only: neither backends nor serve modules
    # may import repro.obs directly
    assert lint._is_forbidden("repro.obs")
    assert lint._is_forbidden("repro.obs.span")
    assert lint._is_forbidden_for_serve("repro.obs")
    assert lint._is_forbidden_for_serve("repro.obs.emit")
    bad = tmp_path / "bad_obs.py"
    bad.write_text("from repro.obs import observing\n")
    assert len(lint.check_file(bad)) == 1
    assert len(lint.check_file(bad, serve=True)) == 1


def test_serve_modules_are_scanned_and_clean():
    scanned = {
        os.path.basename(p)
        for d in lint.SERVE_DIRS
        for p in map(str, (lint.REPO / d).glob("*.py"))
    }
    for module in (
        "service.py", "queue.py", "cache.py", "fleet.py",
        "job.py", "traces.py",
    ):
        assert module in scanned, module


def test_every_backend_module_is_scanned():
    scanned = {
        os.path.basename(p)
        for d in lint.BACKEND_DIRS
        for p in map(str, (lint.REPO / d).glob("*.py"))
    }
    # every solver module — including the sparse backends and their
    # basis/pricing support modules — must be in scope of the lint
    for module in (
        "tableau.py", "revised_cpu.py", "bounded.py", "dual.py",
        "revised_sparse.py", "sparse_basis.py", "sparse_pricing.py",
        "gpu_revised_simplex.py", "gpu_tableau_simplex.py",
        "gpu_bounded_simplex.py", "gpu_sparse_simplex.py",
    ):
        assert module in scanned, module


def test_launch_rule_catches_direct_launch(tmp_path):
    bad = tmp_path / "bad_gpu_backend.py"
    bad.write_text(
        textwrap.dedent(
            """
            def hot_loop(dev, body, cost):
                dev.launch("my_kernel", body, cost)
            """
        )
    )
    violations = lint.check_launches(bad)
    assert len(violations) == 1
    assert "Device.launch" in violations[0]


def test_launch_rule_allows_plan_emit(tmp_path):
    ok = tmp_path / "ok_gpu_backend.py"
    ok.write_text(
        textwrap.dedent(
            """
            from repro.gpu import plan as gpu_plan

            def hot_loop(dev, body, cost):
                gpu_plan.emit(dev, "my_kernel", body, cost)
            """
        )
    )
    assert lint.check_launches(ok) == []


def test_launch_rule_covers_every_gpu_backend():
    names = {os.path.basename(p) for p in lint.GPU_BACKENDS}
    assert names == {
        "gpu_revised_simplex.py", "gpu_tableau_simplex.py",
        "gpu_bounded_simplex.py", "gpu_sparse_simplex.py", "gpu.py",
    }
    for p in lint.GPU_BACKENDS:
        assert (lint.REPO / p).exists(), p

"""Property-based tests of the sparse formats against scipy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import CooMatrix, CscMatrix, CsrMatrix, segment_sums


@st.composite
def sparse_instances(draw):
    """(dense ndarray, density) with controlled size."""
    m = draw(st.integers(1, 25))
    n = draw(st.integers(1, 25))
    seed = draw(st.integers(0, 2**31))
    density = draw(st.floats(0.0, 0.6))
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=(m, n))
    dense[rng.random(size=(m, n)) > density] = 0.0
    return dense


@settings(max_examples=40, deadline=None)
@given(dense=sparse_instances())
def test_roundtrip_all_formats(dense):
    coo = CooMatrix.from_dense(dense)
    np.testing.assert_array_equal(coo.to_dense(), dense)
    np.testing.assert_array_equal(coo.tocsr().to_dense(), dense)
    np.testing.assert_array_equal(coo.tocsc().to_dense(), dense)


@settings(max_examples=40, deadline=None)
@given(dense=sparse_instances(), seed=st.integers(0, 2**31))
def test_matvec_agrees_across_formats(dense, seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=dense.shape[1])
    expected = dense @ x
    coo = CooMatrix.from_dense(dense)
    for mat in (coo, coo.tocsr(), coo.tocsc()):
        np.testing.assert_allclose(mat.matvec(x), expected, atol=1e-10)


@settings(max_examples=40, deadline=None)
@given(dense=sparse_instances(), seed=st.integers(0, 2**31))
def test_rmatvec_is_transpose_matvec(dense, seed):
    rng = np.random.default_rng(seed)
    y = rng.normal(size=dense.shape[0])
    expected = dense.T @ y
    coo = CooMatrix.from_dense(dense)
    for mat in (coo, coo.tocsr(), coo.tocsc()):
        np.testing.assert_allclose(mat.rmatvec(y), expected, atol=1e-10)
        np.testing.assert_allclose(
            mat.transpose().matvec(y), expected, atol=1e-10
        )


@settings(max_examples=40, deadline=None)
@given(dense=sparse_instances())
def test_nnz_counts_nonzeros(dense):
    coo = CooMatrix.from_dense(dense)
    assert coo.nnz == np.count_nonzero(dense)
    assert coo.tocsr().nnz == coo.nnz
    assert coo.tocsc().nnz == coo.nnz


@settings(max_examples=30, deadline=None)
@given(dense=sparse_instances())
def test_csc_column_access_matches_dense(dense):
    csc = CscMatrix.from_dense(dense)
    for j in range(dense.shape[1]):
        np.testing.assert_array_equal(csc.getcol_dense(j), dense[:, j])


@settings(max_examples=30, deadline=None)
@given(dense=sparse_instances())
def test_csr_row_access_matches_dense(dense):
    csr = CsrMatrix.from_dense(dense)
    for i in range(dense.shape[0]):
        cols, vals = csr.getrow(i)
        row = np.zeros(dense.shape[1])
        row[cols] = vals
        np.testing.assert_array_equal(row, dense[i])


@settings(max_examples=30, deadline=None)
@given(dense=sparse_instances(), tol=st.floats(0, 1))
def test_prune_drops_exactly_small_entries(dense, tol):
    pruned = CooMatrix.from_dense(dense).prune(tol)
    expected = dense.copy()
    expected[np.abs(expected) <= tol] = 0.0
    np.testing.assert_array_equal(pruned.to_dense(), expected)


# ---------------------------------------------------------------------------
# segment_sums — the shared segmented reduction behind every SpMV
# ---------------------------------------------------------------------------

# The reduceat workaround it replaced was wrong for *empty segments*, so the
# edge cases concentrate there: leading, trailing, consecutive, and all-empty.
EMPTY_SEGMENT_PATTERNS = [
    # (name, segment lengths)
    ("leading-empty", [0, 2, 3]),
    ("trailing-empty", [3, 2, 0]),
    ("consecutive-empty", [2, 0, 0, 0, 1]),
    ("interior-empty", [1, 0, 2]),
    ("all-empty", [0, 0, 0, 0]),
    ("single-empty", [0]),
    ("single-full", [4]),
]


@pytest.mark.parametrize(
    "lengths", [p[1] for p in EMPTY_SEGMENT_PATTERNS],
    ids=[p[0] for p in EMPTY_SEGMENT_PATTERNS],
)
def test_segment_sums_empty_segment_patterns(lengths):
    indptr = np.concatenate([[0], np.cumsum(lengths)])
    rng = np.random.default_rng(0)
    data = rng.normal(size=int(indptr[-1]))
    out = segment_sums(data, indptr)
    expected = [data[indptr[i]:indptr[i + 1]].sum() for i in range(len(lengths))]
    np.testing.assert_allclose(out, expected)
    # empty segments are exactly zero, not reduceat's neighbour-copy garbage
    for i, length in enumerate(lengths):
        if length == 0:
            assert out[i] == 0.0


def test_segment_sums_no_segments():
    np.testing.assert_array_equal(segment_sums(np.zeros(0), np.array([0])), [])
    np.testing.assert_array_equal(segment_sums(np.zeros(0), np.array([])), [])


@settings(max_examples=40, deadline=None)
@given(
    lengths=st.lists(st.integers(0, 5), min_size=1, max_size=20),
    seed=st.integers(0, 2**31),
)
def test_segment_sums_matches_python_loop(lengths, seed):
    indptr = np.concatenate([[0], np.cumsum(lengths)])
    data = np.random.default_rng(seed).normal(size=int(indptr[-1]))
    out = segment_sums(data, indptr)
    expected = [data[indptr[i]:indptr[i + 1]].sum() for i in range(len(lengths))]
    np.testing.assert_allclose(out, expected, atol=1e-12)


def _empty_row_col_cases():
    """Dense matrices whose sparse forms have empty rows/columns."""
    z = np.zeros
    cases = {
        "nnz-0": z((3, 4)),
        "leading-empty-row": np.vstack([z((2, 3)), np.ones((2, 3))]),
        "trailing-empty-col": np.hstack([np.ones((3, 2)), z((3, 2))]),
        "checker-empty": np.diag([1.0, 0.0, 2.0, 0.0, 3.0]),
        "single-entry": np.pad([[7.0]], ((3, 3), (2, 2))),
    }
    rng = np.random.default_rng(1)
    interior = rng.normal(size=(6, 5))
    interior[2:5, :] = 0.0   # three consecutive empty rows
    interior[:, 1:3] = 0.0   # two consecutive empty columns
    cases["consecutive-empty-bands"] = interior
    return cases


@pytest.mark.parametrize(
    "dense", list(_empty_row_col_cases().values()),
    ids=list(_empty_row_col_cases().keys()),
)
def test_host_spmv_with_empty_rows_and_columns(dense):
    # both host formats route through segment_sums (CSR matvec over rows,
    # CSC rmatvec over columns); empty segments must yield exact zeros
    rng = np.random.default_rng(2)
    x = rng.normal(size=dense.shape[1])
    y = rng.normal(size=dense.shape[0])
    csr = CsrMatrix.from_dense(dense)
    csc = CscMatrix.from_dense(dense)
    np.testing.assert_allclose(csr.matvec(x), dense @ x, atol=1e-12)
    np.testing.assert_allclose(csc.matvec(x), dense @ x, atol=1e-12)
    np.testing.assert_allclose(csr.rmatvec(y), dense.T @ y, atol=1e-12)
    np.testing.assert_allclose(csc.rmatvec(y), dense.T @ y, atol=1e-12)


# ---------------------------------------------------------------------------
# transpose() — direct buffer reinterpretation, no COO round-trip
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(dense=sparse_instances())
def test_transpose_equals_dense_transpose(dense):
    csr = CsrMatrix.from_dense(dense)
    csc = CscMatrix.from_dense(dense)
    rt = csr.transpose()
    ct = csc.transpose()
    assert isinstance(rt, CscMatrix)   # CSRᵀ *is* a CSC buffer
    assert isinstance(ct, CsrMatrix)   # CSCᵀ *is* a CSR buffer
    np.testing.assert_array_equal(rt.to_dense(), dense.T)
    np.testing.assert_array_equal(ct.to_dense(), dense.T)


def test_transpose_copies_buffers():
    dense = np.array([[1.0, 0.0], [2.0, 3.0]])
    csr = CsrMatrix.from_dense(dense)
    t = csr.transpose()
    t.data[0] = 99.0
    np.testing.assert_array_equal(csr.to_dense(), dense)  # original untouched


def test_double_transpose_roundtrips():
    dense = np.diag([1.0, 0.0, 2.0])
    for mat in (CsrMatrix.from_dense(dense), CscMatrix.from_dense(dense)):
        np.testing.assert_array_equal(
            mat.transpose().transpose().to_dense(), dense
        )

"""Property-based tests of the sparse formats against scipy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import CooMatrix, CscMatrix, CsrMatrix


@st.composite
def sparse_instances(draw):
    """(dense ndarray, density) with controlled size."""
    m = draw(st.integers(1, 25))
    n = draw(st.integers(1, 25))
    seed = draw(st.integers(0, 2**31))
    density = draw(st.floats(0.0, 0.6))
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=(m, n))
    dense[rng.random(size=(m, n)) > density] = 0.0
    return dense


@settings(max_examples=40, deadline=None)
@given(dense=sparse_instances())
def test_roundtrip_all_formats(dense):
    coo = CooMatrix.from_dense(dense)
    np.testing.assert_array_equal(coo.to_dense(), dense)
    np.testing.assert_array_equal(coo.tocsr().to_dense(), dense)
    np.testing.assert_array_equal(coo.tocsc().to_dense(), dense)


@settings(max_examples=40, deadline=None)
@given(dense=sparse_instances(), seed=st.integers(0, 2**31))
def test_matvec_agrees_across_formats(dense, seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=dense.shape[1])
    expected = dense @ x
    coo = CooMatrix.from_dense(dense)
    for mat in (coo, coo.tocsr(), coo.tocsc()):
        np.testing.assert_allclose(mat.matvec(x), expected, atol=1e-10)


@settings(max_examples=40, deadline=None)
@given(dense=sparse_instances(), seed=st.integers(0, 2**31))
def test_rmatvec_is_transpose_matvec(dense, seed):
    rng = np.random.default_rng(seed)
    y = rng.normal(size=dense.shape[0])
    expected = dense.T @ y
    coo = CooMatrix.from_dense(dense)
    for mat in (coo, coo.tocsr(), coo.tocsc()):
        np.testing.assert_allclose(mat.rmatvec(y), expected, atol=1e-10)
        np.testing.assert_allclose(
            mat.transpose().matvec(y), expected, atol=1e-10
        )


@settings(max_examples=40, deadline=None)
@given(dense=sparse_instances())
def test_nnz_counts_nonzeros(dense):
    coo = CooMatrix.from_dense(dense)
    assert coo.nnz == np.count_nonzero(dense)
    assert coo.tocsr().nnz == coo.nnz
    assert coo.tocsc().nnz == coo.nnz


@settings(max_examples=30, deadline=None)
@given(dense=sparse_instances())
def test_csc_column_access_matches_dense(dense):
    csc = CscMatrix.from_dense(dense)
    for j in range(dense.shape[1]):
        np.testing.assert_array_equal(csc.getcol_dense(j), dense[:, j])


@settings(max_examples=30, deadline=None)
@given(dense=sparse_instances())
def test_csr_row_access_matches_dense(dense):
    csr = CsrMatrix.from_dense(dense)
    for i in range(dense.shape[0]):
        cols, vals = csr.getrow(i)
        row = np.zeros(dense.shape[1])
        row[cols] = vals
        np.testing.assert_array_equal(row, dense[i])


@settings(max_examples=30, deadline=None)
@given(dense=sparse_instances(), tol=st.floats(0, 1))
def test_prune_drops_exactly_small_entries(dense, tol):
    pruned = CooMatrix.from_dense(dense).prune(tol)
    expected = dense.copy()
    expected[np.abs(expected) <= tol] = 0.0
    np.testing.assert_array_equal(pruned.to_dense(), expected)

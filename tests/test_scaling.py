"""Tests for geometric-mean problem scaling."""

import numpy as np
import pytest

from repro.lp.scaling import geometric_mean_scaling, scaling_spread
from repro.sparse import CscMatrix


def badly_scaled_matrix():
    return np.array([[1e6, 2e-4, 0.0], [3e-5, 0.0, 4e5], [0.0, 5e3, 6e-2]])


class TestSpread:
    def test_identity_spread(self):
        assert scaling_spread(np.eye(3)) == 1.0

    def test_empty(self):
        assert scaling_spread(np.zeros((2, 2))) == 1.0

    def test_known(self):
        a = np.array([[1.0, 100.0]])
        assert scaling_spread(a) == pytest.approx(100.0)


class TestScaling:
    def test_reduces_spread(self):
        a = badly_scaled_matrix()
        result = geometric_mean_scaling(a, np.ones(3), np.ones(3))
        assert scaling_spread(result.a) < scaling_spread(a) / 100

    def test_pow2_factors(self):
        a = badly_scaled_matrix()
        result = geometric_mean_scaling(a, np.ones(3), np.ones(3), pow2=True)
        for s in np.concatenate([result.row_scale, result.col_scale]):
            assert s > 0
            assert np.log2(s) == pytest.approx(round(np.log2(s)))

    def test_scaled_system_consistent(self):
        """A' x' = b'  <=>  A (Cx') = b with x = C x'."""
        rng = np.random.default_rng(0)
        a = badly_scaled_matrix()
        result = geometric_mean_scaling(a, rng.normal(size=3), rng.normal(size=3))
        x_scaled = rng.normal(size=3)
        x = result.unscale_x(x_scaled)
        lhs_scaled = np.asarray(result.a) @ x_scaled
        lhs_orig = a @ x
        np.testing.assert_allclose(lhs_scaled / result.row_scale, lhs_orig, rtol=1e-12)

    def test_objective_invariant(self):
        """c'ᵀ x' = cᵀ x under x = C x'."""
        rng = np.random.default_rng(1)
        a = badly_scaled_matrix()
        c = rng.normal(size=3)
        result = geometric_mean_scaling(a, np.ones(3), c)
        x_scaled = rng.normal(size=3)
        assert float(result.c @ x_scaled) == pytest.approx(
            float(c @ result.unscale_x(x_scaled)), rel=1e-12
        )

    def test_sparse_input_stays_sparse(self):
        a = CscMatrix.from_dense(badly_scaled_matrix())
        result = geometric_mean_scaling(a, np.ones(3), np.ones(3))
        assert isinstance(result.a, CscMatrix)
        assert scaling_spread(result.a) < scaling_spread(a)

    def test_well_scaled_untouched_quickly(self):
        a = np.array([[1.0, 2.0], [0.5, 1.0]])
        result = geometric_mean_scaling(a, np.ones(2), np.ones(2))
        assert scaling_spread(result.a) <= scaling_spread(a) + 1e-12

    def test_unscale_duals(self):
        a = badly_scaled_matrix()
        result = geometric_mean_scaling(a, np.ones(3), np.ones(3))
        y = np.ones(3)
        np.testing.assert_allclose(result.unscale_duals(y), result.row_scale)

    def test_zero_rows_survive(self):
        a = np.array([[0.0, 0.0], [1.0, 2.0]])
        result = geometric_mean_scaling(a, np.ones(2), np.ones(2))
        np.testing.assert_array_equal(np.asarray(result.a)[0], [0.0, 0.0])

    def test_extreme_magnitudes_stay_finite(self):
        # Regression: gmin * gmax underflowed to 0.0 for rows around
        # 1e-200 (and overflowed to inf around 1e200), turning the factor
        # into inf/0 and the scaled matrix into NaNs.  The log-space
        # geometric mean cannot leave the float range.
        for scale in (1e-200, 1e-160, 1e160, 1e200):
            a = np.array([[scale, 2.0 * scale], [1.0, 3.0]])
            result = geometric_mean_scaling(a, np.ones(2), np.ones(2))
            assert np.all(np.isfinite(result.row_scale)), scale
            assert np.all(result.row_scale > 0), scale
            assert np.all(np.isfinite(result.col_scale)), scale
            assert np.all(np.isfinite(np.asarray(result.a))), scale
            # and the scaling still does its job on the extreme row
            assert scaling_spread(result.a) < scaling_spread(a)

    def test_extreme_magnitudes_property(self):
        # Property over random exponent patterns (incl. zero rows/cols):
        # all factors finite and positive, scaled data finite, and the
        # scaled system stays consistent with the original through C/R.
        rng = np.random.default_rng(7)
        for trial in range(25):
            m, n = rng.integers(1, 6, size=2)
            exponents = rng.uniform(-220, 220, size=(m, n))
            a = rng.choice([-1.0, 1.0], size=(m, n)) * 10.0**exponents
            a[rng.random(size=(m, n)) < 0.3] = 0.0  # sprinkle zeros
            result = geometric_mean_scaling(a, np.ones(m), np.ones(n))
            assert np.all(np.isfinite(result.row_scale)), trial
            assert np.all(result.row_scale > 0), trial
            assert np.all(np.isfinite(result.col_scale)), trial
            assert np.all(result.col_scale > 0), trial
            scaled = np.asarray(result.a)
            assert np.all(np.isfinite(scaled)), trial
            # zero entries stay exactly zero
            np.testing.assert_array_equal(scaled == 0.0, a == 0.0)


def test_scaling_improves_solver_accuracy():
    """A badly scaled LP solves to the same optimum with scale=True."""
    from repro import LPProblem, solve

    a = np.array([[1e5, 2e-3], [3.0, 4e4]])
    b = np.array([1e5, 8e4])
    c = np.array([1.0, 1.0])
    lp = LPProblem.maximize_problem(c=c, a_ub=a, b_ub=b)
    plain = solve(lp, method="revised", scale=False)
    scaled = solve(lp, method="revised", scale=True)
    assert plain.status.value == "optimal"
    assert scaled.status.value == "optimal"
    assert scaled.objective == pytest.approx(plain.objective, rel=1e-6)

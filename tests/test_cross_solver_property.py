"""Property-based cross-solver agreement: the library's strongest invariant.

Every solver in the library must agree with scipy's HiGHS (an entirely
independent implementation) on status, and on the optimal objective when one
exists — across randomly generated general-form LPs.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import scipy_oracle
from repro import solve
from repro.lp.generators import random_dense_lp, random_sparse_lp
from repro.lp.problem import Bounds, LPProblem

METHODS = ("tableau", "revised", "gpu-revised", "gpu-tableau")

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@SLOW
@given(m=st.integers(3, 14), n=st.integers(3, 14), seed=st.integers(0, 2**31))
def test_feasible_bounded_family_all_solvers_agree(m, n, seed):
    lp = random_dense_lp(m, n, seed=seed)
    ref = scipy_oracle(lp)
    assert ref is not None
    for method in METHODS:
        r = solve(lp, method=method, dtype=np.float64, pricing="hybrid")
        assert r.status.value == "optimal", (method, r.status)
        assert abs(r.objective - ref) <= 1e-6 * (1 + abs(ref)), method
        assert lp.constraint_violation(r.x) <= 1e-6


@SLOW
@given(seed=st.integers(0, 2**31))
def test_sparse_family_agrees(seed):
    lp = random_sparse_lp(12, 20, density=0.25, seed=seed)
    ref = scipy_oracle(lp)
    assert ref is not None
    for method in ("revised", "gpu-revised"):
        r = solve(lp, method=method, dtype=np.float64, pricing="hybrid")
        assert abs(r.objective - ref) <= 1e-6 * (1 + abs(ref)), method


@st.composite
def arbitrary_lps(draw):
    """LPs with mixed senses/bounds: any of the three outcomes possible."""
    m = draw(st.integers(1, 6))
    n = draw(st.integers(1, 5))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    a = np.round(rng.normal(size=(m, n)) * 2, 1)
    b = np.round(rng.normal(size=m) * 3, 1)
    c = np.round(rng.normal(size=n) * 2, 1)
    senses = [draw(st.sampled_from(["<=", ">=", "="])) for _ in range(m)]
    lower = np.where(rng.random(n) < 0.25, -np.inf, 0.0)
    upper = np.where(rng.random(n) < 0.25, rng.uniform(1, 5, n), np.inf)
    return LPProblem(c=c, a=a, senses=senses, b=b, bounds=Bounds(lower, upper),
                     maximize=draw(st.booleans()))


@SLOW
@given(lp=arbitrary_lps())
def test_status_trichotomy_matches_oracle(lp):
    """Status agreement on arbitrary LPs (optimal / infeasible / unbounded)."""
    from scipy.optimize import linprog

    from repro.lp.problem import ConstraintSense

    c = -lp.c if lp.maximize else lp.c
    a = lp.a_dense()
    a_ub, b_ub, a_eq, b_eq = [], [], [], []
    for i, s in enumerate(lp.senses):
        if s is ConstraintSense.LE:
            a_ub.append(a[i]); b_ub.append(lp.b[i])
        elif s is ConstraintSense.GE:
            a_ub.append(-a[i]); b_ub.append(-lp.b[i])
        else:
            a_eq.append(a[i]); b_eq.append(lp.b[i])
    bounds = [(lo if np.isfinite(lo) else None, hi if np.isfinite(hi) else None)
              for lo, hi in zip(lp.bounds.lower, lp.bounds.upper)]
    ref = linprog(c, A_ub=np.asarray(a_ub) if a_ub else None,
                  b_ub=np.asarray(b_ub) if b_ub else None,
                  A_eq=np.asarray(a_eq) if a_eq else None,
                  b_eq=np.asarray(b_eq) if b_eq else None,
                  bounds=bounds, method="highs")

    r = solve(lp, method="revised", dtype=np.float64, pricing="hybrid")
    if ref.status == 0:
        assert r.status.value == "optimal"
        expected = float(-ref.fun if lp.maximize else ref.fun)
        assert abs(r.objective - expected) <= 1e-6 * (1 + abs(expected))
    elif ref.status == 2:
        assert r.status.value == "infeasible"
    elif ref.status == 3:
        assert r.status.value in ("unbounded", "optimal")
        # HiGHS sometimes reports unbounded where a bounded optimum exists
        # only at infinity in a direction our orientation rules out; accept
        # 'unbounded' strictly when our solver also sees it.
        if r.status.value == "optimal":
            # must then be genuinely feasible
            assert lp.constraint_violation(r.x) <= 1e-6

"""Tests for the MPS reader/writer."""

import io

import numpy as np
import pytest

from repro.errors import LPFormatError
from repro.lp.mps import read_mps, write_mps
from repro.lp.problem import ConstraintSense

SAMPLE = """\
* a classic sample problem
NAME          TESTPROB
ROWS
 N  COST
 L  LIM1
 G  LIM2
 E  MYEQN
COLUMNS
    X1   COST 1.0   LIM1 1.0
    X1   LIM2 1.0
    X2   COST 2.0   LIM1 1.0
    X2   MYEQN -1.0
    X3   COST -1.0   MYEQN 1.0
RHS
    RHS   LIM1 4.0   LIM2 1.0
    RHS   MYEQN 7.0
BOUNDS
 UP BND X1 4.0
 LO BND X2 -1.0
ENDATA
"""


class TestReader:
    def test_parse_structure(self):
        lp = read_mps(SAMPLE)
        assert lp.name == "TESTPROB"
        assert lp.num_vars == 3
        assert lp.num_constraints == 3
        assert lp.senses == [ConstraintSense.LE, ConstraintSense.GE, ConstraintSense.EQ]
        assert lp.var_names == ["X1", "X2", "X3"]
        assert not lp.maximize

    def test_parse_data(self):
        lp = read_mps(SAMPLE)
        np.testing.assert_array_equal(lp.c, [1.0, 2.0, -1.0])
        np.testing.assert_array_equal(lp.b, [4.0, 1.0, 7.0])
        a = lp.a_dense()
        np.testing.assert_array_equal(a[0], [1.0, 1.0, 0.0])  # LIM1
        np.testing.assert_array_equal(a[1], [1.0, 0.0, 0.0])  # LIM2
        np.testing.assert_array_equal(a[2], [0.0, -1.0, 1.0])  # MYEQN

    def test_parse_bounds(self):
        lp = read_mps(SAMPLE)
        assert lp.bounds.upper[0] == 4.0
        assert lp.bounds.lower[1] == -1.0
        assert lp.bounds.lower[2] == 0.0  # default
        assert np.isposinf(lp.bounds.upper[2])

    def test_objsense_max(self):
        text = SAMPLE.replace("ROWS", "OBJSENSE\n    MAX\nROWS", 1)
        assert read_mps(text).maximize

    def test_comments_and_blanks_ignored(self):
        text = "* leading comment\n\n" + SAMPLE
        assert read_mps(text).num_vars == 3

    def test_fr_mi_fx_bounds(self):
        text = SAMPLE.replace(
            "BOUNDS\n UP BND X1 4.0\n LO BND X2 -1.0\n",
            "BOUNDS\n FR BND X1\n MI BND X2\n FX BND X3 2.5\n",
        )
        lp = read_mps(text)
        assert np.isneginf(lp.bounds.lower[0]) and np.isposinf(lp.bounds.upper[0])
        assert np.isneginf(lp.bounds.lower[1])
        assert lp.bounds.lower[2] == lp.bounds.upper[2] == 2.5

    def test_ranges_on_le_row(self):
        text = SAMPLE.replace("BOUNDS", "RANGES\n    RNG LIM1 2.0\nBOUNDS")
        lp = read_mps(text)
        assert lp.num_constraints == 4
        assert lp.senses[3] is ConstraintSense.GE
        assert lp.b[3] == pytest.approx(2.0)  # 4 - |2|
        # companion row duplicates LIM1's coefficients
        np.testing.assert_array_equal(lp.a_dense()[3], [1.0, 1.0, 0.0])

    def test_ranges_on_eq_row(self):
        text = SAMPLE.replace("BOUNDS", "RANGES\n    RNG MYEQN 3.0\nBOUNDS")
        lp = read_mps(text)
        assert lp.senses[2] is ConstraintSense.GE  # E becomes an interval
        assert lp.senses[3] is ConstraintSense.LE
        assert lp.b[3] == pytest.approx(10.0)

    def test_errors(self):
        with pytest.raises(LPFormatError):
            read_mps("NAME X\nROWS\n Q  BAD\nENDATA")
        with pytest.raises(LPFormatError):
            read_mps("NAME X\nROWS\n N C\n L R\nCOLUMNS\n    X1 NOPE 1.0\nENDATA")
        with pytest.raises(LPFormatError):
            read_mps("NAME X\nROWS\n N C\n L R\nCOLUMNS\n    X1 R abc\nENDATA")
        with pytest.raises(LPFormatError):
            read_mps("NAME X\nROWS\n N C\nENDATA")  # no constraints

    def test_no_objective_rejected(self):
        with pytest.raises(LPFormatError):
            read_mps("NAME X\nROWS\n L R\nCOLUMNS\n    X1 R 1.0\nENDATA")

    def test_sparse_auto_selection(self):
        lp = read_mps(SAMPLE, sparse=True)
        assert lp.is_sparse
        lp2 = read_mps(SAMPLE, sparse=False)
        assert not lp2.is_sparse

    def test_read_from_file(self, tmp_path):
        path = tmp_path / "prob.mps"
        path.write_text(SAMPLE)
        assert read_mps(path).num_vars == 3
        assert read_mps(str(path)).num_vars == 3

    def test_read_from_stream(self):
        assert read_mps(io.StringIO(SAMPLE)).num_vars == 3


class TestWriter:
    def test_roundtrip(self, textbook_lp):
        text = write_mps(textbook_lp)
        back = read_mps(text)
        assert back.maximize == textbook_lp.maximize
        np.testing.assert_allclose(back.c, textbook_lp.c)
        np.testing.assert_allclose(back.b, textbook_lp.b)
        np.testing.assert_allclose(back.a_dense(), textbook_lp.a_dense())
        assert back.senses == textbook_lp.senses

    def test_roundtrip_with_bounds(self, bounded_vars_lp):
        back = read_mps(write_mps(bounded_vars_lp))
        np.testing.assert_allclose(back.bounds.lower, bounded_vars_lp.bounds.lower)
        np.testing.assert_allclose(back.bounds.upper, bounded_vars_lp.bounds.upper)

    def test_roundtrip_solves_identically(self, bounded_vars_lp):
        from repro import solve

        back = read_mps(write_mps(bounded_vars_lp))
        r1 = solve(bounded_vars_lp, method="revised")
        r2 = solve(back, method="revised")
        assert r1.objective == pytest.approx(r2.objective)

    def test_write_to_file(self, tmp_path, textbook_lp):
        path = tmp_path / "out.mps"
        write_mps(textbook_lp, path)
        assert read_mps(path).num_vars == 2

    def test_write_to_stream(self, textbook_lp):
        buf = io.StringIO()
        write_mps(textbook_lp, buf)
        assert "ENDATA" in buf.getvalue()

    def test_roundtrip_mps_sample(self):
        """Parse → write → parse is a fixed point on the data."""
        lp1 = read_mps(SAMPLE)
        lp2 = read_mps(write_mps(lp1))
        np.testing.assert_allclose(lp1.a_dense(), lp2.a_dense())
        np.testing.assert_allclose(lp1.c, lp2.c)
        np.testing.assert_allclose(lp1.b, lp2.b)
        np.testing.assert_allclose(lp1.bounds.lower, lp2.bounds.lower)
        np.testing.assert_allclose(lp1.bounds.upper, lp2.bounds.upper)

"""Tests for the bench regression gate (repro.metrics.gate).

The contract under test:

1. a snapshot gates cleanly against a baseline made from itself;
2. a perturbed snapshot regresses (and the CLI exits nonzero);
3. tolerance resolution: exact name > longest glob > default, with
   direction semantics up / down / both;
4. baseline files round-trip through write/load and reject bad schemas;
5. the committed smoke baseline matches a fresh run of the smoke
   workload (the ``make gate`` path, end to end).
"""

import copy
import json
from pathlib import Path

import pytest

from repro.metrics import MetricsRegistry, MetricsError
from repro.metrics.gate import (
    BASELINE_SCHEMA,
    compare,
    load_baseline,
    make_baseline,
    write_baseline,
)


def _snapshot():
    reg = MetricsRegistry()
    reg.counter("iters_total", labels=("solver",)).inc(100, solver="a")
    reg.counter("seconds_total").inc(2.0)
    reg.gauge("util").set(0.8)
    reg.histogram("share", buckets=(0.5, 1.0)).observe(0.4)
    return reg.snapshot()


class TestRoundTrip:
    def test_snapshot_passes_against_own_baseline(self):
        snap = _snapshot()
        result = compare(snap, make_baseline(snap, workload="w"))
        assert result.ok
        assert not result.failures
        assert not result.missing
        assert "OK" in result.render()

    def test_file_round_trip(self, tmp_path):
        baseline = make_baseline(_snapshot(), workload="w")
        path = write_baseline(baseline, tmp_path / "sub" / "b.json")
        assert load_baseline(path) == baseline

    def test_load_rejects_bad_schema(self, tmp_path):
        p = tmp_path / "b.json"
        p.write_text(json.dumps({"schema": "nope", "snapshot": {}}))
        with pytest.raises(MetricsError, match="schema"):
            load_baseline(p)

    def test_load_rejects_missing_and_invalid(self, tmp_path):
        with pytest.raises(MetricsError, match="no baseline"):
            load_baseline(tmp_path / "absent.json")
        p = tmp_path / "junk.json"
        p.write_text("{not json")
        with pytest.raises(MetricsError, match="not valid JSON"):
            load_baseline(p)

    def test_compare_rejects_non_baseline(self):
        with pytest.raises(MetricsError, match="not a gate baseline"):
            compare(_snapshot(), {"schema": "other"})


class TestRegressionDetection:
    def test_counter_increase_fails_up(self):
        snap = _snapshot()
        baseline = make_baseline(snap)  # default direction: up
        worse = copy.deepcopy(snap)
        worse["metrics"]["seconds_total"]["series"][0]["value"] = 2.5
        result = compare(worse, baseline)
        assert not result.ok
        (fail,) = result.failures
        assert fail.metric == "seconds_total"
        assert "FAIL" in result.render()

    def test_counter_decrease_passes_up(self):
        snap = _snapshot()
        baseline = make_baseline(snap)
        better = copy.deepcopy(snap)
        better["metrics"]["seconds_total"]["series"][0]["value"] = 1.0
        assert compare(better, baseline).ok

    def test_gauge_drop_fails_down(self):
        snap = _snapshot()
        baseline = make_baseline(
            snap, tolerances={"util": {"direction": "down"}}
        )
        worse = copy.deepcopy(snap)
        worse["metrics"]["util"]["series"][0]["value"] = 0.5
        assert not compare(worse, baseline).ok
        higher = copy.deepcopy(snap)
        higher["metrics"]["util"]["series"][0]["value"] = 0.95
        assert compare(higher, baseline).ok

    def test_both_direction_rejects_any_drift(self):
        snap = _snapshot()
        baseline = make_baseline(
            snap, tolerances={"iters_total": {"direction": "both", "rel": 0.0}}
        )
        for value in (99, 101):
            moved = copy.deepcopy(snap)
            moved["metrics"]["iters_total"]["series"][0]["value"] = value
            assert not compare(moved, baseline).ok, value

    def test_histogram_sum_and_count_checked(self):
        snap = _snapshot()
        baseline = make_baseline(
            snap, tolerances={"share": {"direction": "both"}}
        )
        moved = copy.deepcopy(snap)
        moved["metrics"]["share"]["series"][0]["count"] = 5
        result = compare(moved, baseline)
        assert not result.ok
        assert result.failures[0].field == "count"

    def test_missing_series_fails(self):
        snap = _snapshot()
        baseline = make_baseline(snap)
        shrunk = copy.deepcopy(snap)
        del shrunk["metrics"]["iters_total"]
        result = compare(shrunk, baseline)
        assert not result.ok
        assert any("iters_total" in m for m in result.missing)
        assert "missing" in result.render()

    def test_new_series_pass_freely(self):
        snap = _snapshot()
        baseline = make_baseline(snap)
        grown = copy.deepcopy(snap)
        grown["metrics"]["iters_total"]["series"].append(
            {"labels": {"solver": "brand-new"}, "value": 9.0}
        )
        assert compare(grown, baseline).ok

    def test_relative_tolerance_allows_slack(self):
        snap = _snapshot()
        baseline = make_baseline(
            snap, tolerances={"seconds_total": {"rel": 0.5}}
        )
        within = copy.deepcopy(snap)
        within["metrics"]["seconds_total"]["series"][0]["value"] = 2.9  # +45%
        assert compare(within, baseline).ok


class TestToleranceResolution:
    def test_glob_and_exact_precedence(self):
        snap = _snapshot()
        baseline = make_baseline(
            snap,
            tolerances={
                "default": {"rel": 0.0},
                "iters_*": {"rel": 10.0},       # glob: huge slack
                "iters_total": {"rel": 0.0},    # exact: none
            },
        )
        moved = copy.deepcopy(snap)
        moved["metrics"]["iters_total"]["series"][0]["value"] = 150
        assert not compare(moved, baseline).ok  # exact wins over glob

    def test_glob_applies_without_exact(self):
        snap = _snapshot()
        baseline = make_baseline(
            snap, tolerances={"default": {"rel": 0.0}, "iters_*": {"rel": 10.0}}
        )
        moved = copy.deepcopy(snap)
        moved["metrics"]["iters_total"]["series"][0]["value"] = 150
        assert compare(moved, baseline).ok

    def test_bad_direction_rejected(self):
        snap = _snapshot()
        baseline = make_baseline(
            snap, tolerances={"util": {"direction": "sideways"}}
        )
        with pytest.raises(MetricsError, match="direction"):
            compare(snap, baseline)


SMOKE_BASELINE = str(
    Path(__file__).resolve().parents[1]
    / "benchmarks" / "baselines" / "metrics-smoke.json"
)


class TestCommittedBaseline:
    """The ``make gate`` path, end to end, against the committed file."""

    def test_smoke_workload_matches_committed_baseline(self):
        from repro import metrics
        from repro.metrics.workloads import smoke_workload

        baseline = load_baseline(SMOKE_BASELINE)
        assert baseline["schema"] == BASELINE_SCHEMA
        with metrics.collecting() as reg:
            smoke_workload()
            snap = reg.snapshot()
        result = compare(snap, baseline)
        assert result.ok, result.render()
        assert len(result.checks) > 100  # the gate covers real breadth

    def test_cli_gate_exits_nonzero_on_perturbation(self, tmp_path, capsys):
        from repro.cli import main

        perturbed = tmp_path / "perturbed.json"
        baseline = load_baseline(SMOKE_BASELINE)
        snap = copy.deepcopy(baseline["snapshot"])
        series = snap["metrics"]["repro_solver_iterations_total"]["series"]
        series[0]["value"] += 7
        perturbed.write_text(json.dumps(snap))

        assert main([
            "metrics", "--from-json", str(perturbed),
            "--gate", SMOKE_BASELINE,
            "--out", str(tmp_path / "ignored.prom"),
        ]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_cli_gate_passes_on_identical_snapshot(self, tmp_path, capsys):
        from repro.cli import main

        baseline = load_baseline(SMOKE_BASELINE)
        identical = tmp_path / "identical.json"
        identical.write_text(json.dumps(baseline["snapshot"]))
        assert main([
            "metrics", "--from-json", str(identical),
            "--gate", SMOKE_BASELINE,
            "--out", str(tmp_path / "ignored.prom"),
        ]) == 0
        assert "OK" in capsys.readouterr().out

"""Device-resident sparse matrices and SpMV kernel tests."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import DeviceArrayError
from repro.gpu.sparse_kernels import (
    DeviceCscMatrix,
    DeviceCsrMatrix,
    spmv_csc_t,
    spmv_csr,
)
from repro.sparse import CscMatrix, CsrMatrix


@pytest.fixture
def host_dense():
    return sp.random(17, 23, density=0.25, random_state=5).toarray()


class TestDeviceCsr:
    def test_upload_roundtrip(self, device, host_dense):
        host = CsrMatrix.from_dense(host_dense)
        d = DeviceCsrMatrix(device, host, dtype=np.float64)
        back = d.to_host()
        np.testing.assert_allclose(back.to_dense(), host_dense)

    def test_upload_accounts_transfers(self, device, host_dense):
        host = CsrMatrix.from_dense(host_dense)
        before = device.stats.htod_bytes
        d = DeviceCsrMatrix(device, host)
        assert device.stats.htod_bytes - before == d.nbytes

    def test_spmv(self, device, host_dense, rng):
        host = CsrMatrix.from_dense(host_dense)
        d = DeviceCsrMatrix(device, host, dtype=np.float64)
        xh = rng.normal(size=23)
        x = device.to_device(xh)
        y = device.zeros(17, np.float64)
        spmv_csr(d, x, y)
        np.testing.assert_allclose(y.data, host_dense @ xh, atol=1e-10)

    def test_spmv_shape_check(self, device, host_dense):
        d = DeviceCsrMatrix(device, CsrMatrix.from_dense(host_dense), np.float64)
        x = device.zeros(17, np.float64)  # wrong side
        y = device.zeros(17, np.float64)
        with pytest.raises(DeviceArrayError):
            spmv_csr(d, x, y)

    def test_spmv_flops_proportional_to_nnz(self, device, host_dense):
        host = CsrMatrix.from_dense(host_dense)
        d = DeviceCsrMatrix(device, host, np.float32)
        x = device.zeros(23, np.float32)
        y = device.zeros(17, np.float32)
        spmv_csr(d, x, y)
        assert device.stats.by_kernel["sparse.spmv_csr"].flops == 2 * host.nnz

    def test_free(self, device, host_dense):
        before = device.stats.bytes_in_use
        d = DeviceCsrMatrix(device, CsrMatrix.from_dense(host_dense))
        assert device.stats.bytes_in_use > before
        d.free()
        assert device.stats.bytes_in_use == before
        assert d.data.is_freed
        assert d.indptr.is_freed
        assert d.indices.is_freed


class TestDeviceCsc:
    def test_spmv_transpose(self, device, host_dense, rng):
        host = CscMatrix.from_dense(host_dense)
        d = DeviceCscMatrix(device, host, dtype=np.float64)
        xh = rng.normal(size=17)
        x = device.to_device(xh)
        y = device.zeros(23, np.float64)
        spmv_csc_t(d, x, y)
        np.testing.assert_allclose(y.data, host_dense.T @ xh, atol=1e-10)

    def test_spmv_t_with_empty_columns(self, device):
        dense = np.array([[1.0, 0.0, 2.0], [0.0, 0.0, 3.0]])
        d = DeviceCscMatrix(device, CscMatrix.from_dense(dense), np.float64)
        x = device.to_device(np.array([1.0, 1.0]))
        y = device.zeros(3, np.float64)
        spmv_csc_t(d, x, y)
        np.testing.assert_allclose(y.data, [1.0, 0.0, 5.0])

    def test_getcol_device(self, device, host_dense):
        host = CscMatrix.from_dense(host_dense)
        d = DeviceCscMatrix(device, host, dtype=np.float64)
        out = device.zeros(17, np.float64)
        nnz = d.getcol_device(4, out)
        np.testing.assert_allclose(out.data, host_dense[:, 4])
        assert nnz == np.count_nonzero(host_dense[:, 4])

    def test_getcol_overwrites_previous(self, device, host_dense):
        host = CscMatrix.from_dense(host_dense)
        d = DeviceCscMatrix(device, host, dtype=np.float64)
        out = device.zeros(17, np.float64)
        d.getcol_device(0, out)
        d.getcol_device(1, out)
        np.testing.assert_allclose(out.data, host_dense[:, 1])

    def test_getcol_out_of_range(self, device, host_dense):
        d = DeviceCscMatrix(device, CscMatrix.from_dense(host_dense), np.float64)
        out = device.zeros(17, np.float64)
        with pytest.raises(DeviceArrayError):
            d.getcol_device(99, out)

    def test_getcol_wrong_length(self, device, host_dense):
        d = DeviceCscMatrix(device, CscMatrix.from_dense(host_dense), np.float64)
        out = device.zeros(5, np.float64)
        with pytest.raises(DeviceArrayError):
            d.getcol_device(0, out)

    def test_fp32_storage(self, device, host_dense):
        d = DeviceCscMatrix(device, CscMatrix.from_dense(host_dense), np.float32)
        assert d.data.dtype == np.float32
        assert d.indices.dtype == np.int32


# Matrices whose sparse forms contain empty rows/columns — the cases the
# pre-segment_sums reduceat workaround handled wrongly (neighbour copies
# instead of zeros).
EMPTY_PATTERN_CASES = {
    "nnz-0": np.zeros((3, 4)),
    "leading-empty-row": np.vstack([np.zeros((2, 3)), np.ones((2, 3))]),
    "trailing-empty-col": np.hstack([np.ones((3, 2)), np.zeros((3, 2))]),
    "alternating-diag": np.diag([1.0, 0.0, 2.0, 0.0, 3.0]),
}
_bands = np.arange(30, dtype=np.float64).reshape(6, 5) + 1.0
_bands[2:5, :] = 0.0  # three consecutive empty rows
_bands[:, 1:3] = 0.0  # two consecutive empty columns
EMPTY_PATTERN_CASES["consecutive-empty-bands"] = _bands


class TestEmptySegmentPatterns:
    """Both device SpMV kernels on empty-row/column structures (S4)."""

    @pytest.mark.parametrize(
        "dense", list(EMPTY_PATTERN_CASES.values()),
        ids=list(EMPTY_PATTERN_CASES.keys()),
    )
    def test_spmv_csr_empty_rows(self, device, dense, rng):
        d = DeviceCsrMatrix(device, CsrMatrix.from_dense(dense), np.float64)
        xh = rng.normal(size=dense.shape[1])
        x = device.to_device(xh)
        y = device.zeros(dense.shape[0], np.float64)
        spmv_csr(d, x, y)
        np.testing.assert_allclose(y.data, dense @ xh, atol=1e-12)

    @pytest.mark.parametrize(
        "dense", list(EMPTY_PATTERN_CASES.values()),
        ids=list(EMPTY_PATTERN_CASES.keys()),
    )
    def test_spmv_csc_t_empty_cols(self, device, dense, rng):
        d = DeviceCscMatrix(device, CscMatrix.from_dense(dense), np.float64)
        xh = rng.normal(size=dense.shape[0])
        x = device.to_device(xh)
        y = device.zeros(dense.shape[1], np.float64)
        spmv_csc_t(d, x, y)
        np.testing.assert_allclose(y.data, dense.T @ xh, atol=1e-12)

    def test_spmv_overwrites_stale_output(self, device):
        # y is fully overwritten even where segments are empty
        dense = np.diag([1.0, 0.0, 2.0])
        d = DeviceCsrMatrix(device, CsrMatrix.from_dense(dense), np.float64)
        x = device.to_device(np.ones(3))
        y = device.to_device(np.full(3, 7.0))
        spmv_csr(d, x, y)
        np.testing.assert_allclose(y.data, [1.0, 0.0, 2.0])


class TestGetcolCostModel:
    """Regression (S1): host-mirrored indptr must not change modeled cost.

    ``getcol_device`` keeps a host copy of ``indptr`` so slicing a column
    does not read device memory from the host; the *modeled* traffic of the
    two launches is pinned here so the mirror stays free in model terms.
    """

    def test_scatter_col_modeled_bytes_pinned(self, device, host_dense):
        host = CscMatrix.from_dense(host_dense)
        d = DeviceCscMatrix(device, host, dtype=np.float64)
        out = device.zeros(17, np.float64)
        j = 4
        col_nnz = d.getcol_device(j, out)
        w = 8  # float64
        index_bytes = 4
        scatter = device.stats.by_kernel["sparse.scatter_col"]
        # read: nnz values + nnz row indices + the two indptr words;
        # written: nnz scattered values
        assert scatter.bytes == (
            col_nnz * (w + index_bytes) + 2 * index_bytes  # read
            + col_nnz * w                                  # written
        )
        fill = device.stats.by_kernel["sparse.fill_zero"]
        assert fill.bytes == out.nbytes

    def test_fill_zero_counts_whole_vector(self, device, host_dense):
        d = DeviceCscMatrix(device, CscMatrix.from_dense(host_dense), np.float32)
        out = device.zeros(17, np.float32)
        d.getcol_device(0, out)
        assert device.stats.by_kernel["sparse.fill_zero"].bytes == 17 * 4

    def test_host_indptr_mirrors_device(self, device, host_dense):
        host = CscMatrix.from_dense(host_dense)
        d = DeviceCscMatrix(device, host, dtype=np.float64)
        np.testing.assert_array_equal(d.host_indptr, host.indptr)
        np.testing.assert_array_equal(d.indptr.data, host.indptr)

"""Tests for the structured generators and the fill-in instrumentation."""

import numpy as np
import pytest

from conftest import assert_matches_oracle
from repro import solve
from repro.lp.generators import band_lp, staircase_lp


class TestStaircase:
    def test_shape(self):
        lp = staircase_lp(4, stage_size=5, seed=0)
        assert lp.num_constraints == 20
        assert lp.num_vars == 25
        assert lp.is_sparse

    def test_staircase_structure(self):
        """Row blocks touch exactly their own and the next column block."""
        lp = staircase_lp(3, stage_size=4, seed=1)
        dense = lp.a_dense()
        for t in range(3):
            rows = slice(t * 4, (t + 1) * 4)
            inside = dense[rows, t * 4:(t + 2) * 4]
            outside = dense[rows].copy()
            outside[:, t * 4:(t + 2) * 4] = 0.0
            assert np.all(inside > 0)
            assert np.all(outside == 0.0)

    def test_feasible_bounded_solvable(self):
        lp = staircase_lp(5, stage_size=6, seed=2)
        assert lp.is_feasible(np.zeros(lp.num_vars))
        assert_matches_oracle(lp, solve(lp, method="revised"))

    def test_gpu_sparse_path(self):
        lp = staircase_lp(4, stage_size=5, seed=3)
        r = solve(lp, method="gpu-revised", dtype=np.float64)
        assert_matches_oracle(lp, r)
        assert "sparse.spmv_csc_t" in r.extra["by_kernel"]

    def test_bad_args(self):
        with pytest.raises(ValueError):
            staircase_lp(0)


class TestBand:
    def test_bandwidth_respected(self):
        lp = band_lp(30, bandwidth=3, seed=0)
        dense = lp.a_dense()
        for i in range(30):
            nz = np.nonzero(dense[i])[0]
            assert nz.min() >= i - 3
            assert nz.max() <= i + 3

    def test_nnz_count(self):
        m, k = 25, 2
        lp = band_lp(m, bandwidth=k, seed=1)
        # interior rows have 2k+1 entries; edges are clipped
        expected = sum(min(m, i + k + 1) - max(0, i - k) for i in range(m))
        assert lp.a.nnz == expected

    def test_solvable(self):
        lp = band_lp(40, bandwidth=4, seed=2)
        assert_matches_oracle(lp, solve(lp, method="revised"))

    def test_bad_args(self):
        with pytest.raises(ValueError):
            band_lp(5, bandwidth=0)


class TestFillInstrumentation:
    def test_curve_collected(self):
        from repro.core.gpu_revised_simplex import GpuRevisedSimplex
        from repro.lp.generators import random_sparse_lp
        from repro.simplex.options import SolverOptions

        lp = random_sparse_lp(64, 64, density=0.05, seed=1)
        solver = GpuRevisedSimplex(
            SolverOptions(dtype=np.float64), fill_stats_every=5
        )
        r = solver.solve(lp)
        curve = r.extra["binv_fill"]
        assert curve, "no fill samples collected"
        iters = [it for it, _ in curve]
        assert iters == sorted(iters)
        assert all(it % 5 == 0 for it in iters)
        fracs = [f for _, f in curve]
        assert all(0.0 < f <= 1.0 for f in fracs)
        # fill grows overall
        assert fracs[-1] >= fracs[0]

    def test_instrumentation_does_not_change_modeled_time(self):
        from repro.core.gpu_revised_simplex import GpuRevisedSimplex
        from repro.lp.generators import random_dense_lp
        from repro.simplex.options import SolverOptions

        lp = random_dense_lp(32, 32, seed=4)
        plain = GpuRevisedSimplex(SolverOptions(dtype=np.float64)).solve(lp)
        instr = GpuRevisedSimplex(
            SolverOptions(dtype=np.float64), fill_stats_every=3
        ).solve(lp)
        assert instr.timing.modeled_seconds == pytest.approx(
            plain.timing.modeled_seconds
        )

    def test_off_by_default(self, textbook_lp):
        r = solve(textbook_lp, method="gpu-revised")
        assert "binv_fill" not in r.extra

"""Tests for request-scoped span tracing (repro.obs).

The contract under test:

1. **zero overhead / non-perturbation** — with no recorder installed every
   emission point is one ``is None`` check, and with one installed, solver
   and serving results are bit-identical to an unobserved run;
2. **well-formed span trees** — every kept trace has exactly one root,
   resolvable parent links, and children contained in their parents'
   intervals (``ObsRecording.validate``);
3. **deterministic sampling** — head sampling is a pure hash of the trace
   id, tail exemplars (bad outcomes, the slowest quantile) always survive,
   linked solve traces inherit their job's decision;
4. **exporters** — the JSON schema round-trips, the ASCII tree renders,
   and the Chrome async/flow events pass ``validate_chrome_trace`` both
   standalone and merged into the four-track solver trace;
5. **attribution** — the six buckets sum exactly (<= 1e-9) to each
   executed job's modeled latency, for GPU and CPU methods alike.
"""

import dataclasses
import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.lp.generators import random_dense_lp
from repro.obs import (
    BUCKETS,
    ObsRecorder,
    SamplingPolicy,
    attribute,
    chrome_span_events,
    execute_breakdown,
    from_json,
    head_keep,
    observing,
    render_tree,
    serve_chrome_trace,
    to_json,
)
from repro.obs.sampling import (
    DROPPED,
    KEEP_LINKED,
    KEEP_TAIL_OUTCOME,
    KEEP_TAIL_SLOW,
)
from repro.perfmodel.presets import GTX280_PARAMS
from repro.serve import ServeConfig, serve_trace, synthetic_trace
from repro.solve import solve
from repro.trace.chrome import merged_chrome_trace, validate_chrome_trace

ALL_METHODS = (
    "tableau",
    "revised",
    "revised-bounded",
    "dual",
    "gpu-revised",
    "gpu-revised-bounded",
    "gpu-tableau",
    "pdlp",
)


@pytest.fixture(autouse=True)
def _no_leaked_recorder():
    yield
    obs.disable()


@pytest.fixture(scope="module")
def lp():
    return random_dense_lp(14, 20, seed=7)


@pytest.fixture(scope="module")
def served():
    """One observed serving replay shared by the read-only tests."""
    with observing():
        report = serve_trace(
            synthetic_trace(n_jobs=10, seed=3), ServeConfig(n_devices=2)
        )
    return report


# ---------------------------------------------------------------------------
# 1. zero overhead / non-perturbation
# ---------------------------------------------------------------------------


class TestZeroOverhead:
    def test_disabled_by_default(self):
        assert obs.active() is None
        assert not obs.enabled()

    def test_observing_restores_previous_recorder(self):
        outer = obs.enable()
        with observing() as inner:
            assert obs.active() is inner
            assert inner is not outer
        assert obs.active() is outer
        obs.disable()
        assert obs.active() is None

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_solve_bit_identical_with_recorder(self, lp, method):
        obs.disable()
        plain = solve(lp, method=method)
        with observing():
            observed = solve(lp, method=method)
        assert plain.status == observed.status
        assert (
            plain.iterations.total_iterations
            == observed.iterations.total_iterations
        )
        assert plain.timing.modeled_seconds == observed.timing.modeled_seconds
        if plain.objective is not None:
            assert plain.objective == observed.objective
            assert np.array_equal(plain.x, observed.x)

    def test_serve_bit_identical_with_recorder(self):
        trace = synthetic_trace(n_jobs=6, seed=11)
        config = ServeConfig(n_devices=2)
        plain = serve_trace(trace, config)
        with observing():
            observed = serve_trace(trace, config)
        assert plain.span_seconds == observed.span_seconds
        assert plain.latencies() == observed.latencies()
        assert [j.state for j in plain.jobs] == [
            j.state for j in observed.jobs
        ]
        assert plain.obs_recording is None
        assert observed.obs_recording is not None


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    method=st.sampled_from(ALL_METHODS),
    m=st.integers(4, 12),
    extra=st.integers(1, 8),
    seed=st.integers(0, 10_000),
)
def test_observation_is_bit_identical_property(method, m, extra, seed):
    lp = random_dense_lp(m, m + extra, seed=seed)
    obs.disable()
    plain = solve(lp, method=method)
    with observing():
        observed = solve(lp, method=method)
    assert plain.status == observed.status
    assert plain.timing.modeled_seconds == observed.timing.modeled_seconds
    if plain.objective is not None:
        assert plain.objective == observed.objective
        assert np.array_equal(plain.x, observed.x)


# ---------------------------------------------------------------------------
# 2. span-tree well-formedness
# ---------------------------------------------------------------------------


class TestSpanTrees:
    def test_every_kept_trace_is_a_tree(self, served):
        recording = served.obs_recording
        recording.validate()  # single roots + parent containment
        for trace_id in recording.trace_ids():
            root = recording.tree(trace_id)
            assert root.span.parent_id is None

    def test_job_lifecycle_spans(self, served):
        recording = served.obs_recording
        job_ids = [t for t in recording.trace_ids() if t.startswith("job-")]
        assert job_ids
        for trace_id in job_ids:
            root = recording.tree(trace_id)
            assert root.span.name == "serve.job"
            names = {node.span.name for node in root.children}
            assert "serve.submit" in names
            if recording.outcomes[trace_id] in ("completed", "deadline-missed"):
                assert {"queue.wait", "placement", "device.execute"} <= names

    def test_engine_solve_traces_link_to_jobs(self, served):
        recording = served.obs_recording
        solve_ids = [
            t for t in recording.trace_ids() if t.startswith("solve-")
        ]
        assert solve_ids
        for trace_id in solve_ids:
            assert recording.links[trace_id].startswith("job-")
            root = recording.tree(trace_id)
            assert root.span.name == "engine.solve"
            assert root.span.attrs["clock"] == "solve"
            phases = [
                n for n in root.children if n.span.name == "engine.phase"
            ]
            assert phases, f"{trace_id} has no engine.phase spans"

    def test_window_and_batch_traces(self, served):
        recording = served.obs_recording
        windows = [
            t for t in recording.trace_ids() if t.startswith("window-")
        ]
        assert windows
        for trace_id in windows:
            assert recording.tree(trace_id).span.name == "dispatch.window"
        batches = [t for t in recording.trace_ids() if t.startswith("batch-")]
        for trace_id in batches:
            root = recording.tree(trace_id)
            assert root.span.name == "batch.schedule"
            lanes = {
                node.span.attrs["lane"]
                for node in root.children
                if node.span.name == "batch.segment"
            }
            assert lanes  # segments carry their stream lane

    def test_pdhg_epoch_spans(self, lp):
        with observing() as rec:
            solve(lp, method="pdlp")
        recording = rec.collect()
        recording.validate()
        (trace_id,) = recording.trace_ids()
        root = recording.tree(trace_id)
        epochs = [n.span for n in root.children if n.span.name == "pdhg.epoch"]
        assert epochs
        assert [e.attrs["epoch"] for e in epochs] == list(
            range(1, len(epochs) + 1)
        )
        for first, second in zip(epochs, epochs[1:]):
            assert second.t_start >= first.t_end - 1e-12

    def test_refactor_spans_inside_engine_solve(self):
        # short refactor period so the solver refactorizes at least once
        lp = random_dense_lp(24, 36, seed=5)
        with observing() as rec:
            solve(lp, method="gpu-revised", refactor_period=5)
        recording = rec.collect()
        recording.validate()
        (trace_id,) = recording.trace_ids()
        root = recording.tree(trace_id)
        refactors = [
            n.span for n in root.children if n.span.name == "engine.refactor"
        ]
        assert refactors
        for sp in refactors:
            assert root.span.t_start <= sp.t_start <= sp.t_end <= root.span.t_end


# ---------------------------------------------------------------------------
# 3. sampling
# ---------------------------------------------------------------------------


class TestSampling:
    def test_head_keep_is_deterministic(self):
        flips = [head_keep(f"job-{i}", 0.5) for i in range(64)]
        assert flips == [head_keep(f"job-{i}", 0.5) for i in range(64)]
        assert any(flips) and not all(flips)
        assert all(head_keep(f"job-{i}", 1.0) for i in range(64))
        assert not any(head_keep(f"job-{i}", 0.0) for i in range(64))

    def test_tail_outcomes_survive_zero_head_rate(self):
        policy = SamplingPolicy(head_rate=0.0)
        decisions = policy.decide(
            outcomes={"job-0": "completed", "job-1": "rejected"},
            latencies={"job-0": 1.0},
            links={},
        )
        assert decisions["job-1"] == KEEP_TAIL_OUTCOME
        # job-0 is also the slowest completed job -> tail-slow, not dropped
        assert decisions["job-0"] == KEEP_TAIL_SLOW

    def test_slowest_quantile_kept(self):
        policy = SamplingPolicy(head_rate=0.0, tail_slowest_quantile=0.99)
        outcomes = {f"job-{i}": "completed" for i in range(10)}
        latencies = {f"job-{i}": float(i) for i in range(10)}
        decisions = policy.decide(outcomes, latencies, {})
        assert decisions["job-9"] == KEEP_TAIL_SLOW
        assert (
            sum(1 for d in decisions.values() if d == DROPPED) >= 8
        )

    def test_linked_traces_inherit_parent_decision(self):
        policy = SamplingPolicy(head_rate=0.0)
        decisions = policy.decide(
            outcomes={
                "job-0": "rejected",
                "solve-0": "optimal",
                "job-1": "completed",
                "job-2": "completed",
                "solve-1": "optimal",
            },
            latencies={"job-1": 1.0, "job-2": 2.0},
            links={"solve-0": "job-0", "solve-1": "job-1"},
        )
        assert decisions["solve-0"] == KEEP_LINKED
        assert decisions["job-1"] == DROPPED  # job-2 is the slow exemplar
        assert decisions["solve-1"] == DROPPED

    def test_dropped_traces_lose_their_spans(self):
        policy = SamplingPolicy(head_rate=0.0, tail_slowest_quantile=1.0)
        with observing(policy=policy):
            report = serve_trace(
                synthetic_trace(n_jobs=6, seed=3),
                ServeConfig(n_devices=1, n_streams=2),
            )
        recording = report.obs_recording
        assert recording.dropped_traces > 0
        assert recording.kept_traces >= 1  # the slowest exemplar survives
        kept = {sp.trace_id for sp in recording.spans}
        for trace_id, decision in recording.decisions.items():
            if decision == DROPPED:
                assert trace_id not in kept
        recording.validate()

    def test_sampling_decisions_are_replayable(self):
        policy = SamplingPolicy(head_rate=0.5)
        runs = []
        for _ in range(2):
            with observing(policy=SamplingPolicy(head_rate=0.5)):
                report = serve_trace(
                    synthetic_trace(n_jobs=6, seed=3),
                    ServeConfig(n_devices=1, n_streams=2),
                )
            runs.append(report.obs_recording.decisions)
        assert runs[0] == runs[1]
        assert policy == SamplingPolicy(head_rate=0.5)  # frozen/valued


# ---------------------------------------------------------------------------
# 4. exporters
# ---------------------------------------------------------------------------


class TestExport:
    def test_json_round_trip(self, served):
        recording = served.obs_recording
        back = from_json(to_json(recording))
        assert to_json(back) == to_json(recording)
        assert back.outcomes == recording.outcomes
        assert back.decisions == recording.decisions
        back.validate()

    def test_from_json_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="schema"):
            from_json('{"schema": "repro-obs/v999", "spans": []}')

    def test_render_tree_shows_lifecycle(self, served):
        recording = served.obs_recording
        job_id = next(
            t for t in recording.trace_ids() if t.startswith("job-")
        )
        text = render_tree(recording, job_id)
        assert "serve.job" in text
        assert "serve.submit" in text
        everything = render_tree(recording)
        assert "engine.solve" in everything

    def test_chrome_span_events_validate(self, served):
        recording = served.obs_recording
        events = chrome_span_events(recording)
        doc = validate_chrome_trace(
            '{"traceEvents": ' + __import__("json").dumps(events) + "}"
        )
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"b", "e", "s", "f"} <= phases
        # every async begin has a matching end with the same id
        begins = {e["id"] for e in doc["traceEvents"] if e["ph"] == "b"}
        ends = {e["id"] for e in doc["traceEvents"] if e["ph"] == "e"}
        assert begins == ends

    def test_merged_chrome_trace_with_spans(self, lp):
        with observing() as rec:
            result = solve(lp, method="gpu-revised", trace=True)
        recording = rec.collect()
        (trace_id,) = recording.trace_ids()
        text = merged_chrome_trace(
            result.trace,
            span_events=chrome_span_events(recording, [trace_id]),
        )
        doc = validate_chrome_trace(text)
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "request spans" in names
        assert any(e.get("cat") == "span" for e in doc["traceEvents"])

    def test_serve_chrome_trace_validates_and_rebases(self, served):
        recording = served.obs_recording
        doc = validate_chrome_trace(serve_chrome_trace(recording))
        spans = [e for e in doc["traceEvents"] if e.get("cat") == "span"]
        assert spans
        assert any(e["name"] == "dispatch" for e in doc["traceEvents"])
        # rebased solve roots start inside their job's execute slice
        executes = {
            solve_id: e
            for e in doc["traceEvents"]
            if e["ph"] == "b" and e["name"] == "device.execute"
            for solve_id in e["args"].get("solves", ())
        }
        for e in doc["traceEvents"]:
            if e["ph"] != "b" or e["name"] != "engine.solve":
                continue
            owner = executes.get(e["args"]["trace_id"])
            if owner is not None:
                assert e["ts"] >= owner["ts"] - 1e-3


# ---------------------------------------------------------------------------
# 5. attribution
# ---------------------------------------------------------------------------


class TestAttribution:
    def test_buckets_sum_exactly_to_latency(self, served):
        attr = served.attribution()
        assert attr.jobs
        for job in attr.jobs:
            assert set(job.buckets) == set(BUCKETS)
            total = sum(job.buckets.values())
            assert abs(total - job.latency_seconds) <= 1e-9
            assert job.coverage >= 0.95

    def test_report_totals_and_render(self, served):
        attr = served.attribution()
        totals = attr.totals()
        assert abs(sum(totals.values()) - attr.total_latency()) <= 1e-9
        text = attr.render(per_job=True)
        assert "fleet-wide latency attribution" in text
        assert "per-job decomposition" in text
        for bucket in BUCKETS:
            assert bucket in text

    def test_cpu_method_lands_in_compute(self):
        with observing():
            report = serve_trace(
                synthetic_trace(n_jobs=4, seed=2),
                ServeConfig(n_devices=2, method="revised"),
            )
        attr = report.attribution()
        assert attr.jobs
        for job in attr.jobs:
            assert job.buckets["transfer"] == 0.0
            assert job.buckets["launch_overhead"] == 0.0
            assert abs(
                sum(job.buckets.values()) - job.latency_seconds
            ) <= 1e-9

    def test_attribution_requires_a_recording(self):
        report = serve_trace(
            synthetic_trace(n_jobs=2, seed=1), ServeConfig(n_devices=1)
        )
        assert report.obs_recording is None
        with pytest.raises(Exception, match="recording"):
            report.attribution()

    def test_execute_breakdown_refactor_exclusion(self):
        ev = dataclasses.make_dataclass(
            "Ev", ["kind", "name", "seconds", "start"]
        )
        events = [
            ev("kernel", "k0", 0.004, 0.0),      # outside: launch-capped
            ev("htod", "transfer", 0.002, 0.004),  # inside refactor window
            ev("kernel", "k1", 0.003, 0.006),    # inside refactor window
            ev("dtoh", "transfer", 0.001, 0.009),  # outside: transfer
        ]
        out = execute_breakdown(
            events, launch_overhead=0.001,
            refactor_intervals=[(0.004, 0.009)],
        )
        assert out["refactor_seconds"] == pytest.approx(0.005)
        assert out["transfer_seconds"] == pytest.approx(0.001)
        assert out["launch_seconds"] == pytest.approx(0.001)
        assert out["n_kernels"] == 2 and out["n_transfers"] == 2


# ---------------------------------------------------------------------------
# satellite: all-rejected traces render n/a quantiles
# ---------------------------------------------------------------------------


class TestAllRejected:
    def _all_rejected_report(self, observe=False):
        tiny_card = dataclasses.replace(GTX280_PARAMS, global_mem_bytes=4096)
        trace = synthetic_trace(n_jobs=3, seed=1, sizes=((32, 48),))
        config = ServeConfig(n_devices=1, gpu_params=tiny_card)
        if observe:
            with observing():
                return serve_trace(trace, config)
        return serve_trace(trace, config)

    def test_summary_renders_na_quantiles(self):
        report = self._all_rejected_report()
        assert len(report.rejected) == len(report.jobs)
        assert not report.latencies()
        assert math.isnan(report.latency_quantile(0.5))
        assert "p50/p95/p99=n/a" in report.summary()

    def test_rejected_jobs_are_unexecuted_exemplars(self):
        report = self._all_rejected_report(observe=True)
        recording = report.obs_recording
        for trace_id, outcome in recording.outcomes.items():
            if trace_id.startswith("job-"):
                assert outcome == "rejected"
                assert recording.decisions[trace_id] == KEEP_TAIL_OUTCOME
                root = recording.tree(trace_id)
                names = {n.span.name for n in root.children}
                assert "serve.reject" in names
        attr = report.attribution()
        assert attr.jobs == []
        assert attr.unexecuted == {"rejected": len(report.jobs)}

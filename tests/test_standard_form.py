"""Tests for the general-form → standard-form conversion and recovery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp.problem import Bounds, ConstraintSense, LPProblem
from repro.lp.standard_form import to_standard_form
from repro.sparse import CscMatrix


def feasible_point_roundtrip(lp, x_orig):
    """Map x through the standard form and back; consistency checks."""
    std = to_standard_form(lp)
    # invariants of the standard form itself
    assert np.all(std.b >= 0)
    assert std.num_cols == std.c.size
    return std


class TestBasics:
    def test_all_le_keeps_shape(self, textbook_lp):
        std = to_standard_form(textbook_lp)
        m = textbook_lp.num_constraints
        assert std.num_rows == m
        assert std.num_cols == textbook_lp.num_vars + m  # one slack per row
        assert std.has_full_slack_basis

    def test_maximize_negates_costs(self, textbook_lp):
        std = to_standard_form(textbook_lp)
        assert np.array_equal(std.c[:2], [-3.0, -5.0])
        # objective recovery flips back
        assert std.original_objective(-36.0) == pytest.approx(36.0)

    def test_equality_rows_have_no_slack(self, equality_lp):
        std = to_standard_form(equality_lp)
        assert not std.has_full_slack_basis
        assert std.slack_of_row[1] == -1  # the EQ row

    def test_ge_rows_get_surplus_not_slack_basis(self):
        lp = LPProblem(c=[1.0], a=[[1.0]], senses=[">="], b=[2.0],
                       bounds=Bounds.nonnegative(1))
        std = to_standard_form(lp)
        assert std.slack_of_row[0] == -1
        # surplus column has coefficient -1
        assert std.a_dense()[0, 1] == -1.0

    def test_negative_rhs_flips_row(self):
        lp = LPProblem(c=[1.0], a=[[-2.0]], senses=["<="], b=[-4.0],
                       bounds=Bounds.nonnegative(1))
        std = to_standard_form(lp)
        assert std.b[0] == 4.0
        assert std.a_dense()[0, 0] == 2.0
        # flipped <= becomes >=, so no +1 slack
        assert std.slack_of_row[0] == -1

    def test_standard_b_nonnegative_always(self, bounded_vars_lp):
        std = to_standard_form(bounded_vars_lp)
        assert np.all(std.b >= 0)


class TestBoundTransforms:
    def test_shift_lower_bound(self):
        # min x s.t. x <= 10, x >= 3  -> shifted variable x' = x - 3
        lp = LPProblem(c=[1.0], a=[[1.0]], senses=["<="], b=[10.0],
                       bounds=Bounds(np.array([3.0]), np.array([np.inf])))
        std = to_standard_form(lp)
        assert std.constant == pytest.approx(3.0)
        assert std.b[0] == pytest.approx(7.0)  # 10 - 3
        # x' = 0 recovers x = 3
        x = std.recover_x(np.zeros(std.num_cols))
        assert x[0] == pytest.approx(3.0)

    def test_reflect_upper_only(self):
        # x <= 5 with no lower bound: x = 5 - x'
        lp = LPProblem(c=[2.0], a=[[1.0]], senses=["<="], b=[3.0],
                       bounds=Bounds(np.array([-np.inf]), np.array([5.0])))
        std = to_standard_form(lp)
        assert std.constant == pytest.approx(10.0)  # c * hi
        x = std.recover_x(np.zeros(std.num_cols))
        assert x[0] == pytest.approx(5.0)
        # column sign flipped
        assert std.a_dense()[0, 0] == pytest.approx(1.0)  # -1 * -1 (row flip: b = 3 - 5 = -2 < 0)

    def test_range_bounds_add_row(self):
        lp = LPProblem(c=[1.0], a=[[1.0]], senses=["<="], b=[10.0],
                       bounds=Bounds(np.array([1.0]), np.array([4.0])))
        std = to_standard_form(lp)
        assert std.num_rows == 2  # original row + bound row x' <= 3
        assert std.b[1] == pytest.approx(3.0)

    def test_free_split(self):
        lp = LPProblem(c=[1.0], a=[[1.0]], senses=["<="], b=[10.0],
                       bounds=Bounds(np.array([-np.inf]), np.array([np.inf])))
        std = to_standard_form(lp)
        assert std.n_structural == 2  # x+ and x-
        a = std.a_dense()
        assert a[0, 0] == 1.0 and a[0, 1] == -1.0
        assert std.c[0] == 1.0 and std.c[1] == -1.0
        x = std.recover_x(np.array([2.0, 5.0, 0.0]))
        assert x[0] == pytest.approx(-3.0)

    def test_fixed_variable(self):
        lp = LPProblem(c=[1.0, 1.0], a=[[1.0, 1.0]], senses=["<="], b=[10.0],
                       bounds=Bounds(np.array([2.0, 0.0]), np.array([2.0, np.inf])))
        std = to_standard_form(lp)
        # fixed var becomes shift + bound row x' <= 0
        x = std.recover_x(np.zeros(std.num_cols))
        assert x[0] == pytest.approx(2.0)


class TestSparsePreservation:
    def test_sparse_in_sparse_out(self):
        a = CscMatrix.from_dense(np.array([[1.0, 0.0], [0.0, 2.0]]))
        lp = LPProblem(c=[1.0, 1.0], a=a, senses=["<=", "<="], b=[1.0, 2.0],
                       bounds=Bounds.nonnegative(2))
        std = to_standard_form(lp)
        assert std.is_sparse
        assert isinstance(std.a, CscMatrix)

    def test_dense_in_dense_out(self, textbook_lp):
        std = to_standard_form(textbook_lp)
        assert not std.is_sparse
        assert isinstance(std.a, np.ndarray)

    def test_column_access(self, textbook_lp):
        std = to_standard_form(textbook_lp)
        dense = std.a_dense()
        for j in range(std.num_cols):
            np.testing.assert_array_equal(std.column(j), dense[:, j])

    def test_column_out_of_range(self, textbook_lp):
        from repro.errors import LPDimensionError

        std = to_standard_form(textbook_lp)
        with pytest.raises(LPDimensionError):
            std.column(std.num_cols)


class TestRecovery:
    def test_recover_wrong_length(self, textbook_lp):
        from repro.errors import LPDimensionError

        std = to_standard_form(textbook_lp)
        with pytest.raises(LPDimensionError):
            std.recover_x(np.zeros(std.num_cols + 1))

    def test_known_solution_roundtrip(self, textbook_lp):
        """Push the known optimum through the standard form and back."""
        std = to_standard_form(textbook_lp)
        # x = (2, 6); slacks = b - Ax = (2, 0, 0)
        x_std = np.array([2.0, 6.0, 2.0, 0.0, 0.0])
        a = std.a_dense()
        np.testing.assert_allclose(a @ x_std, std.b)
        x = std.recover_x(x_std)
        np.testing.assert_allclose(x, [2.0, 6.0])
        z_std = float(std.c @ x_std)
        assert std.original_objective(z_std) == pytest.approx(36.0)


@st.composite
def general_lps(draw):
    """Random general-form LPs with mixed senses and bound types."""
    m = draw(st.integers(1, 6))
    n = draw(st.integers(1, 6))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(m, n))
    b = rng.normal(size=m)
    c = rng.normal(size=n)
    senses = [draw(st.sampled_from(["<=", ">=", "="])) for _ in range(m)]
    lower = np.where(rng.random(n) < 0.3, -np.inf, rng.normal(size=n) - 2)
    upper = np.where(rng.random(n) < 0.3, np.inf, lower + np.abs(rng.normal(size=n)) + 0.5)
    upper = np.where(np.isneginf(lower), np.where(rng.random(n) < 0.5, np.inf, rng.normal(size=n)), upper)
    maximize = draw(st.booleans())
    return LPProblem(c=c, a=a, senses=senses, b=b,
                     bounds=Bounds(lower, upper), maximize=maximize)


@settings(max_examples=50, deadline=None)
@given(lp=general_lps())
def test_standard_form_invariants(lp):
    std = to_standard_form(lp)
    # 1. b >= 0
    assert np.all(std.b >= 0)
    # 2. every slack hint points at a +1 identity column
    a = std.a_dense()
    for i, col in enumerate(std.slack_of_row):
        if col >= 0:
            e = np.zeros(std.num_rows)
            e[i] = 1.0
            np.testing.assert_array_equal(a[:, col], e)
    # 3. transforms cover every original variable exactly once
    assert len(std.transforms) == lp.num_vars
    # 4. any standard-form point recovers to a point whose objective matches
    rng = np.random.default_rng(0)
    x_std = np.abs(rng.normal(size=std.num_cols))
    x = std.recover_x(x_std)
    c_min = -lp.c if lp.maximize else lp.c
    direct = float(c_min @ x)
    via_std = float(std.c @ x_std) + std.constant
    assert direct == pytest.approx(via_std, rel=1e-9, abs=1e-9)

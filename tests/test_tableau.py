"""Tests for the CPU full-tableau simplex."""

import numpy as np
import pytest

from conftest import TEXTBOOK_OPTIMUM, TEXTBOOK_X, assert_matches_oracle
from repro.lp.generators import (
    beale_cycling_lp,
    degenerate_lp,
    random_dense_lp,
    transportation_lp,
)
from repro.simplex.options import SolverOptions
from repro.simplex.tableau import TableauSimplexSolver
from repro.status import SolveStatus


def solve_with(lp, **kw):
    return TableauSimplexSolver(SolverOptions(**kw)).solve(lp)


class TestBasicOutcomes:
    def test_textbook(self, textbook_lp):
        r = solve_with(textbook_lp)
        assert r.status is SolveStatus.OPTIMAL
        assert r.objective == pytest.approx(TEXTBOOK_OPTIMUM)
        np.testing.assert_allclose(r.x, TEXTBOOK_X, atol=1e-9)
        assert r.solver == "tableau-cpu"

    def test_infeasible(self, infeasible_lp):
        assert solve_with(infeasible_lp).status is SolveStatus.INFEASIBLE

    def test_unbounded(self, unbounded_lp):
        assert solve_with(unbounded_lp).status is SolveStatus.UNBOUNDED

    def test_equality(self, equality_lp):
        assert_matches_oracle(equality_lp, solve_with(equality_lp))

    def test_iteration_limit(self, textbook_lp):
        r = solve_with(textbook_lp, max_iterations=1)
        assert r.status is SolveStatus.ITERATION_LIMIT


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_dense(self, seed):
        lp = random_dense_lp(20, 28, seed=seed)
        assert_matches_oracle(lp, solve_with(lp))

    def test_transportation(self):
        lp = transportation_lp(5, 6, seed=0)
        assert_matches_oracle(lp, solve_with(lp, pricing="hybrid"))


class TestTableauOnlyPricing:
    @pytest.mark.parametrize("pricing", ["devex", "steepest-edge"])
    def test_advanced_pricing_finds_optimum(self, pricing):
        lp = random_dense_lp(25, 30, seed=10)
        assert_matches_oracle(lp, solve_with(lp, pricing=pricing))

    @pytest.mark.parametrize("pricing", ["devex", "steepest-edge"])
    def test_advanced_pricing_on_degenerate(self, pricing):
        lp = degenerate_lp(15, 18, seed=2)
        r = solve_with(lp, pricing=pricing)
        assert r.status is SolveStatus.OPTIMAL

    def test_steepest_edge_fewer_iterations_than_bland(self):
        lp = random_dense_lp(40, 60, seed=11)
        r_bland = solve_with(lp, pricing="bland")
        r_se = solve_with(lp, pricing="steepest-edge")
        assert r_se.iterations.total_iterations <= r_bland.iterations.total_iterations

    def test_bland_solves_beale(self):
        r = solve_with(beale_cycling_lp(), pricing="bland")
        assert r.objective == pytest.approx(-0.05)


class TestAgreementWithRevised:
    @pytest.mark.parametrize("seed", range(3))
    def test_same_optimum_as_revised(self, seed):
        from repro.simplex.revised_cpu import RevisedSimplexSolver

        lp = random_dense_lp(22, 33, seed=seed + 100)
        rt = solve_with(lp)
        rr = RevisedSimplexSolver().solve(lp)
        assert rt.objective == pytest.approx(rr.objective, rel=1e-8)

    def test_same_pivot_count_with_same_rules(self):
        """With identical pricing and ratio rules the two methods walk the
        same vertex path (they are the same algorithm, differently stored)."""
        from repro.simplex.revised_cpu import RevisedSimplexSolver

        lp = random_dense_lp(18, 24, seed=200)
        rt = solve_with(lp, pricing="dantzig")
        rr = RevisedSimplexSolver(SolverOptions(pricing="dantzig")).solve(lp)
        assert rt.iterations.total_iterations == rr.iterations.total_iterations


class TestDiagnostics:
    def test_cost_recorder_breakdown(self, textbook_lp):
        r = solve_with(textbook_lp)
        assert "pivot.eliminate" in r.timing.kernel_breakdown
        assert r.timing.modeled_seconds > 0

    def test_tableau_slower_per_iteration_on_wide_problems(self):
        """The tableau's Θ(mn) pivot beats revised's Θ(m²) only when n ~ m;
        for very wide problems revised wins per iteration."""
        from repro.simplex.revised_cpu import RevisedSimplexSolver

        lp = random_dense_lp(20, 400, seed=12)
        rt = solve_with(lp)
        rr = RevisedSimplexSolver().solve(lp)
        t_tab = rt.timing.modeled_seconds / max(1, rt.iterations.total_iterations)
        t_rev = rr.timing.modeled_seconds / max(1, rr.iterations.total_iterations)
        assert t_rev < t_tab

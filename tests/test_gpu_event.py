"""Tests for the CUDA-event-style timing API."""

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.gpu.device import Device
from repro.gpu.event import Event, Stream, elapsed
from repro.perfmodel.ops import OpCost
from repro.perfmodel.presets import GTX280_PARAMS


def test_record_and_elapsed(device):
    e0 = Event(device).record()
    device.launch("k", lambda: None, OpCost(flops=1e6, threads=1024))
    e1 = Event(device).record()
    assert e1.elapsed_since(e0) == pytest.approx(device.clock - e0.time)
    assert e1.elapsed_since(e0) > 0


def test_unrecorded_event_raises(device):
    e = Event(device)
    assert not e.is_recorded
    with pytest.raises(DeviceError):
        _ = e.time


def test_cross_device_elapsed_rejected(device):
    other = Device(GTX280_PARAMS)
    e0 = Event(device).record()
    e1 = Event(other).record()
    with pytest.raises(DeviceError):
        e1.elapsed_since(e0)


def test_stream_synchronize_and_event(device):
    s = Stream(device)
    e = s.event()
    assert e.is_recorded
    assert s.synchronize() == device.clock


def test_elapsed_helper_to_now(device):
    e0 = Event(device).record()
    device.launch("k", lambda: None, OpCost(flops=1e6, threads=1024))
    assert elapsed(device, e0) == pytest.approx(device.clock - e0.time)


def test_event_chaining_measures_kernel(device):
    """The cudaEvent idiom: record-launch-record brackets the kernel."""
    start = Event(device).record()
    device.launch("k", lambda: None, OpCost(flops=1e9, threads=30720))
    end = Event(device).record()
    measured = end.elapsed_since(start)
    assert measured == pytest.approx(device.stats.by_kernel["k"].seconds)

"""Launch-plan layer tests: OpCost.fuse, grouping, capture rules, precision.

The plan layer's two load-bearing promises are checked here at every level:

- **unit**: :meth:`OpCost.fuse` composition algebra, the
  :func:`repro.gpu.plan._group_captured` grouping rules (prologue/epilogue
  fusion, the one-heavy-per-group invariant, dtype splits), the capture
  guard rails (no transfers, one terminal reduction per section);
- **property**: a fused fp64 solve is bit-identical to the unfused solve —
  status, objective and solution vector — across all five GPU backends on
  the generator families, while launching strictly fewer kernels;
- **integration**: precision policies (fp32 / fp64 / mixed refinement),
  the engine registry capability flags, the solve() façade validation, and
  the batch scheduler's cross-LP GEMV batching.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DeviceArrayError, InvalidLaunchError, SolverError
from repro.gpu import blas
from repro.gpu import plan as gpu_plan
from repro.gpu.device import CapturedLaunch, Device
from repro.gpu.kernel import DEFAULT_BLOCK
from repro.lp.generators import (
    random_dense_lp,
    random_sparse_lp,
)
from repro.lp.problem import LPProblem
from repro.perfmodel.ops import OpCost
from repro.perfmodel.presets import GTX280_PARAMS
from repro.solve import solve


def make_device() -> Device:
    return Device(GTX280_PARAMS)


# ---------------------------------------------------------------------------
# OpCost.fuse
# ---------------------------------------------------------------------------


class TestOpCostFuse:
    def test_sums_work_and_traffic(self):
        a = OpCost(flops=10, bytes_read=100, bytes_written=40, threads=64)
        b = OpCost(flops=6, bytes_read=50, bytes_written=10, threads=256)
        f = OpCost.fuse(a, b)
        assert f.flops == 16
        assert f.bytes_read == 150
        assert f.bytes_written == 50
        assert f.threads == 256  # grid covers the widest op

    def test_shared_reads_counted_once(self):
        a = OpCost(bytes_read=100)
        b = OpCost(bytes_read=80)
        f = OpCost.fuse(a, b, shared_read_bytes=80)
        assert f.bytes_read == 100
        # dedup can never push traffic negative
        g = OpCost.fuse(a, b, shared_read_bytes=1e9)
        assert g.bytes_read == 0.0

    def test_fraction_weighting(self):
        a = OpCost(bytes_read=100, coalesced_fraction=1.0)
        b = OpCost(bytes_read=300, coalesced_fraction=0.5)
        f = OpCost.fuse(a, b)
        assert f.coalesced_fraction == pytest.approx(
            (100 * 1.0 + 300 * 0.5) / 400
        )
        c = OpCost(flops=10, divergent_fraction=0.2)
        d = OpCost(flops=30, divergent_fraction=0.6)
        g = OpCost.fuse(c, d)
        assert g.divergent_fraction == pytest.approx(
            (10 * 0.2 + 30 * 0.6) / 40
        )

    def test_zero_traffic_and_zero_flops_guards(self):
        # no traffic -> coalesced defaults to 1; no flops -> divergence 0
        f = OpCost.fuse(OpCost(), OpCost())
        assert f.coalesced_fraction == 1.0
        assert f.divergent_fraction == 0.0

    def test_single_and_empty(self):
        a = OpCost(flops=5, bytes_read=7, threads=32)
        assert OpCost.fuse(a) == a
        with pytest.raises(ValueError):
            OpCost.fuse()
        with pytest.raises(ValueError):
            OpCost.fuse(a, shared_read_bytes=-1.0)
        with pytest.raises(TypeError):
            OpCost.fuse(a, "not-a-cost")

    def test_add_operator_is_fuse(self):
        a = OpCost(flops=1, bytes_read=2, threads=8)
        b = OpCost(flops=3, bytes_written=4, threads=16)
        assert a + b == OpCost.fuse(a, b)

    @pytest.mark.parametrize("seed", range(20))
    def test_fuse_is_order_invariant_without_sharing(self, seed):
        rng = np.random.default_rng(seed)
        costs = [
            OpCost(
                flops=float(rng.integers(0, 1000)),
                bytes_read=float(rng.integers(0, 1000)),
                bytes_written=float(rng.integers(0, 1000)),
                threads=int(rng.integers(1, 4096)),
                coalesced_fraction=float(rng.uniform(0, 1)),
                divergent_fraction=float(rng.uniform(0, 1)),
            )
            for _ in range(int(rng.integers(1, 6)))
        ]
        f = OpCost.fuse(*costs)
        perm = [costs[i] for i in rng.permutation(len(costs))]
        g = OpCost.fuse(*perm)
        assert f.flops == pytest.approx(g.flops)
        assert f.bytes_total == pytest.approx(g.bytes_total)
        assert f.threads == g.threads
        assert f.coalesced_fraction == pytest.approx(g.coalesced_fraction)
        assert f.divergent_fraction == pytest.approx(g.divergent_fraction)
        # fused work never exceeds the sum of the parts
        assert f.bytes_read <= sum(c.bytes_read for c in costs)


# ---------------------------------------------------------------------------
# grouping rules
# ---------------------------------------------------------------------------


def _op(
    name,
    *,
    fusable,
    reads=(),
    writes=(),
    dtype=np.float32,
    block=DEFAULT_BLOCK,
    operand_bytes=None,
):
    return CapturedLaunch(
        name=name,
        body=lambda: None,
        cost=OpCost(flops=1),
        dtype=np.dtype(dtype),
        block=block,
        fusable=fusable,
        reads=tuple(reads),
        writes=tuple(writes),
        operand_bytes=dict(operand_bytes or {}),
    )


def _names(groups):
    return [[op.name for op in g] for g in groups]


class TestGrouping:
    def test_fusable_run_chains(self):
        ops = [
            _op("a", fusable=True, writes=(1,)),
            _op("b", fusable=True, reads=(1,), writes=(2,)),
            _op("c", fusable=True, reads=(2,)),
        ]
        assert _names(gpu_plan._group_captured(ops)) == [["a", "b", "c"]]

    def test_prologue_fusion(self):
        # copy -> gemv(beta=1): the heavy op reads the run's output
        ops = [
            _op("copy", fusable=True, writes=(1,)),
            _op("gemv", fusable=False, reads=(1, 2), writes=(3,)),
        ]
        assert _names(gpu_plan._group_captured(ops)) == [["copy", "gemv"]]

    def test_heavy_without_data_flow_stays_alone(self):
        ops = [
            _op("copy", fusable=True, writes=(1,)),
            _op("gemv", fusable=False, reads=(5,), writes=(6,)),
        ]
        assert _names(gpu_plan._group_captured(ops)) == [["copy"], ["gemv"]]

    def test_epilogue_fusion(self):
        # SpMV -> elementwise update consuming its output
        ops = [
            _op("spmv", fusable=False, reads=(1,), writes=(2,)),
            _op("update", fusable=True, reads=(2,), writes=(3,)),
            _op("reduce", fusable=True, reads=(3,)),
        ]
        assert _names(gpu_plan._group_captured(ops)) == [
            ["spmv", "update", "reduce"]
        ]

    def test_epilogue_requires_consumption(self):
        ops = [
            _op("spmv", fusable=False, reads=(1,), writes=(2,)),
            _op("axpy", fusable=True, reads=(8,), writes=(9,)),
        ]
        assert _names(gpu_plan._group_captured(ops)) == [["spmv"], ["axpy"]]

    def test_middle_heavy_fused_pricing_kernel(self):
        # copy -> gemvT -> mask -> reduce: one heavy mid-group, producers
        # before it and consumers after it
        ops = [
            _op("copy", fusable=True, writes=(1,)),
            _op("gemv_t", fusable=False, reads=(1, 2), writes=(1,)),
            _op("mask", fusable=True, reads=(1, 4), writes=(5,)),
            _op("argmin", fusable=True, reads=(5,)),
        ]
        assert _names(gpu_plan._group_captured(ops)) == [
            ["copy", "gemv_t", "mask", "argmin"]
        ]

    def test_one_heavy_per_group(self):
        # a second heavy cannot join a group that already has one, even
        # when it consumes the group's output
        ops = [
            _op("copy", fusable=True, writes=(1,)),
            _op("gemv1", fusable=False, reads=(1,), writes=(2,)),
            _op("scale", fusable=True, reads=(2,), writes=(2,)),
            _op("gemv2", fusable=False, reads=(2,), writes=(3,)),
        ]
        groups = _names(gpu_plan._group_captured(ops))
        assert groups == [["copy", "gemv1", "scale"], ["gemv2"]]
        for g in gpu_plan._group_captured(ops):
            assert sum(1 for op in g if not op.fusable) <= 1

    def test_back_to_back_heavies_stay_single(self):
        ops = [
            _op("gemv1", fusable=False, reads=(1,), writes=(2,)),
            _op("gemv2", fusable=False, reads=(2,), writes=(3,)),
        ]
        assert _names(gpu_plan._group_captured(ops)) == [["gemv1"], ["gemv2"]]

    def test_dtype_mismatch_splits(self):
        ops = [
            _op("a", fusable=True, writes=(1,), dtype=np.float32),
            _op("b", fusable=True, reads=(1,), dtype=np.float64),
        ]
        assert _names(gpu_plan._group_captured(ops)) == [["a"], ["b"]]

    def test_block_mismatch_splits(self):
        ops = [
            _op("a", fusable=True, writes=(1,), block=128),
            _op("b", fusable=True, reads=(1,), block=256),
        ]
        assert _names(gpu_plan._group_captured(ops)) == [["a"], ["b"]]

    def test_order_is_preserved(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            ops = [
                _op(
                    f"k{i}",
                    fusable=bool(rng.integers(0, 2)),
                    reads=tuple(
                        int(t) for t in rng.integers(0, 6, size=2)
                    ),
                    writes=(int(rng.integers(0, 6)),),
                )
                for i in range(int(rng.integers(1, 10)))
            ]
            flat = [
                op.name
                for g in gpu_plan._group_captured(ops)
                for op in g
            ]
            assert flat == [op.name for op in ops]

    def test_shared_read_bytes(self):
        ops = [
            _op("a", fusable=True, reads=(1,), writes=(2,),
                operand_bytes={1: 40, 2: 8}),
            _op("b", fusable=True, reads=(1, 2), writes=(3,),
                operand_bytes={1: 40, 2: 8, 3: 8}),
        ]
        # b re-reads operand 1 (read by a) and operand 2 (written by a)
        assert gpu_plan._shared_read_bytes(ops) == 48.0


# ---------------------------------------------------------------------------
# capture guard rails
# ---------------------------------------------------------------------------


class TestCaptureRules:
    def test_transfer_inside_capture_raises(self):
        dev = make_device()
        plan = gpu_plan.LaunchPlan(dev, fusion=True)
        x = dev.to_device(np.ones(8), np.float32)
        with pytest.raises(InvalidLaunchError):
            with plan.section("bad"):
                blas.scal(2.0, x)
                x.copy_to_host()

    def test_memset_inside_capture_raises(self):
        dev = make_device()
        plan = gpu_plan.LaunchPlan(dev, fusion=True)
        with pytest.raises(InvalidLaunchError):
            with plan.section("bad"):
                dev.zeros(8, np.float32)

    def test_second_reduction_in_section_raises(self):
        dev = make_device()
        plan = gpu_plan.LaunchPlan(dev, fusion=True)
        x = dev.to_device(np.arange(8, dtype=np.float32))
        with pytest.raises(InvalidLaunchError):
            with plan.section("bad") as sec:
                sec.argmin(x)
                sec.argmin(x)

    def test_nested_capture_raises(self):
        dev = make_device()
        plan = gpu_plan.LaunchPlan(dev, fusion=True)
        with pytest.raises(InvalidLaunchError):
            with plan.section("outer"):
                with plan.section("inner"):
                    pass

    def test_fusion_off_is_passthrough(self):
        dev = make_device()
        plan = gpu_plan.LaunchPlan(dev, fusion=False)
        x = dev.to_device(np.arange(8, dtype=np.float32))
        with plan.section("s") as sec:
            blas.scal(2.0, x)
            idx, val = sec.argmin(x)
        assert (idx, val) == (0, 0.0)
        assert plan.fused_launches == 0
        assert dev._capture is None

    def test_fused_section_results_and_stats(self):
        def run(fusion):
            dev = make_device()
            plan = gpu_plan.LaunchPlan(dev, fusion=fusion)
            x = dev.to_device(np.arange(1, 9, dtype=np.float32))
            y = dev.to_device(np.ones(8, dtype=np.float32))
            with plan.section("s") as sec:
                blas.axpy(-0.5, x, y)
                idx, val = sec.argmin(y)
            return dev, plan, x.copy_to_host(), y.copy_to_host(), idx, val

        d0, p0, x0, y0, i0, v0 = run(False)
        d1, p1, x1, y1, i1, v1 = run(True)
        assert np.array_equal(x0, x1) and np.array_equal(y0, y1)
        assert (i0, v0) == (i1, v1)
        assert p1.fused_launches >= 1 and p1.fused_ops > p1.fused_launches
        assert p1.saved_seconds > 0.0
        assert d1.stats.kernel_launches < d0.stats.kernel_launches
        # the fused solve is modeled strictly faster (saved overhead)
        assert d1.clock < d0.clock

    def test_exception_inside_section_ends_capture(self):
        dev = make_device()
        plan = gpu_plan.LaunchPlan(dev, fusion=True)
        with pytest.raises(RuntimeError):
            with plan.section("s"):
                raise RuntimeError("boom")
        assert dev._capture is None

    def test_timed_attribution(self):
        dev = make_device()
        plan = gpu_plan.LaunchPlan(dev, fusion=True)
        x = dev.to_device(np.ones(64), np.float32)
        with plan.section("s", timed="spmv"):
            blas.scal(2.0, x)
            blas.scal(0.5, x)
        assert dev.stats.sections.get("spmv", 0.0) > 0.0


# ---------------------------------------------------------------------------
# emit
# ---------------------------------------------------------------------------


class TestEmit:
    def test_emit_outside_section_launches(self):
        dev = make_device()
        x = dev.to_device(np.zeros(4), np.float32)

        def body():
            x.data[:] = 7.0

        gpu_plan.emit(
            dev, "custom.fill", body, OpCost(bytes_written=16),
            dtype=x.dtype, fusable=True, writes=(x,),
        )
        assert np.all(x.copy_to_host() == 7.0)

    def test_emit_inside_fused_section_is_captured(self):
        dev = make_device()
        plan = gpu_plan.LaunchPlan(dev, fusion=True)
        x = dev.to_device(np.zeros(4), np.float32)

        def body():
            x.data[:] = 7.0

        with plan.section("s"):
            gpu_plan.emit(
                dev, "custom.fill", body, OpCost(bytes_written=16),
                dtype=x.dtype, fusable=True, writes=(x,),
            )
            # deferred: the body has not executed during capture
            assert np.all(x.data == 0.0)
        assert np.all(x.copy_to_host() == 7.0)


# ---------------------------------------------------------------------------
# blas.cast and the strict dtype rule
# ---------------------------------------------------------------------------


class TestCast:
    def test_cast_roundtrip(self):
        dev = make_device()
        x64 = dev.to_device(np.linspace(-3, 3, 17), np.float64)
        x32 = dev.alloc(17, np.float32)
        blas.cast(x64, x32)
        assert x32.copy_to_host().dtype == np.float32
        np.testing.assert_array_equal(
            x32.copy_to_host(),
            np.linspace(-3, 3, 17).astype(np.float32),
        )

    def test_cast_same_dtype_rejected(self):
        dev = make_device()
        a = dev.to_device(np.ones(4), np.float32)
        b = dev.alloc(4, np.float32)
        with pytest.raises(DeviceArrayError):
            blas.cast(a, b)

    def test_mixed_dtype_axpy_still_raises(self):
        # regression: the cast kernel must not have loosened _prep
        dev = make_device()
        x = dev.to_device(np.ones(4), np.float32)
        y = dev.to_device(np.ones(4), np.float64)
        with pytest.raises(DeviceArrayError):
            blas.axpy(1.0, x, y)

    def test_cast_charges_traffic(self):
        dev = make_device()
        x = dev.to_device(np.ones(1024), np.float64)
        out = dev.alloc(1024, np.float32)
        before = dev.clock
        blas.cast(x, out)
        assert dev.clock > before
        assert "blas.cast" in dev.stats.by_kernel


# ---------------------------------------------------------------------------
# RATIO_INF dtype preservation
# ---------------------------------------------------------------------------


class TestRatioInfDtype:
    def test_ratio_kernel_keeps_fp32(self):
        from repro.core import gpu_kernels as K

        dev = make_device()
        beta = dev.to_device(np.array([1.0, 2.0, 3.0]), np.float32)
        alpha = dev.to_device(np.array([0.5, -1.0, 1e-9]), np.float32)
        ratios = dev.zeros(3, np.float32)
        K.ratio_kernel(dev, beta, alpha, ratios, 1e-7)
        out = ratios.copy_to_host()
        assert out.dtype == np.float32
        assert out[0] == np.float32(2.0)
        assert np.isinf(out[1]) and np.isinf(out[2])


# ---------------------------------------------------------------------------
# property: fused == unfused, bit for bit, across the GPU backends
# ---------------------------------------------------------------------------


def _bounded_lp(n=8, seed=0):
    rng = np.random.default_rng(seed)
    return LPProblem.minimize(
        c=rng.normal(size=n),
        a_ub=np.abs(rng.normal(size=(n // 2, n))),
        b_ub=np.full(n // 2, 5.0),
        bounds=[(0.0, 3.0)] * n,
    )


FUSION_CASES = [
    ("gpu-revised", lambda s: random_dense_lp(16, 24, seed=s)),
    ("gpu-revised", lambda s: random_dense_lp(24, 24, seed=s)),
    ("gpu-revised", lambda s: random_sparse_lp(24, 32, density=0.2, seed=s)),
    ("gpu-tableau", lambda s: random_dense_lp(12, 18, seed=s)),
    ("gpu-revised-bounded", lambda s: _bounded_lp(8, seed=s)),
    ("gpu-revised-sparse",
     lambda s: random_sparse_lp(32, 48, density=0.12, seed=s)),
    ("gpu-pdlp", lambda s: random_sparse_lp(24, 36, density=0.15, seed=s)),
]


class TestFusedBitIdentity:
    @pytest.mark.parametrize("method,gen", FUSION_CASES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fused_solve_bit_identical_fp64(self, method, gen, seed):
        lp = gen(seed)

        def run(**kw):
            dev = make_device()
            dev.record_timeline()
            r = solve(lp, method=method, device=dev, dtype=np.float64, **kw)
            launches = sum(
                1 for ev in dev.timeline if ev.kind == "kernel"
            )
            return r, launches

        r0, n0 = run()
        r1, n1 = run(fusion=True)
        assert r1.status == r0.status
        assert r1.objective == r0.objective  # bit-identical, not approx
        if r0.x is not None:
            assert np.array_equal(r1.x, r0.x)
        assert r1.iterations.total_iterations == r0.iterations.total_iterations
        assert n1 < n0
        assert r1.extra["fused_launches"] > 0
        assert r1.extra["fused_ops"] > r1.extra["fused_launches"]
        assert r1.extra["fusion_saved_seconds"] > 0.0
        assert r1.timing.modeled_seconds < r0.timing.modeled_seconds


# ---------------------------------------------------------------------------
# precision policies
# ---------------------------------------------------------------------------


class TestPrecision:
    def test_policy_resolution(self):
        from repro.simplex.options import SolverOptions

        P = gpu_plan.PrecisionPolicy
        # precision=None defers to options.dtype (fp64 by default)
        default = P.from_options(SolverOptions())
        assert default.compute_dtype == np.float64 and not default.refine
        assert P.from_options(
            SolverOptions(dtype=np.float32)
        ).compute_dtype == np.float32
        p32 = P.from_options(SolverOptions(precision="fp32"))
        assert p32.compute_dtype == np.float32 and not p32.refine
        p64 = P.from_options(SolverOptions(precision="fp64"))
        assert p64.compute_dtype == np.float64 and not p64.refine
        pmx = P.from_options(SolverOptions(precision="mixed"))
        assert pmx.compute_dtype == np.float32 and pmx.refine

    @pytest.mark.parametrize("method", ["gpu-revised", "gpu-tableau"])
    def test_mixed_recovers_fp64_objective(self, method):
        lp = random_dense_lp(20, 30, seed=3)
        r64 = solve(lp, method=method, dtype=np.float64)
        rmx = solve(lp, method=method, precision="mixed")
        rel = abs(rmx.objective - r64.objective) / max(1.0, abs(r64.objective))
        assert rel < 1e-9
        assert rmx.extra["refinement_steps"] <= 3
        assert rmx.extra["residual_after_refinement"] < 1e-8

    def test_mixed_beats_plain_fp32_accuracy(self):
        lp = random_dense_lp(48, 64, seed=9)
        r64 = solve(lp, method="gpu-revised", dtype=np.float64)
        r32 = solve(lp, method="gpu-revised", dtype=np.float32)
        rmx = solve(lp, method="gpu-revised", precision="mixed")
        x64 = r64.x

        def err(r):
            return float(np.max(np.abs(r.x - x64))) if r.x is not None else 0.0

        assert err(rmx) <= err(r32)

    def test_fp64_precision_equals_dtype_fp64(self):
        lp = random_dense_lp(16, 24, seed=4)
        a = solve(lp, method="gpu-revised", dtype=np.float64)
        b = solve(lp, method="gpu-revised", precision="fp64")
        assert a.objective == b.objective

    @pytest.mark.parametrize(
        "method", ["gpu-revised-sparse", "gpu-revised-bounded", "gpu-pdlp"]
    )
    def test_unsupported_mixed_raises(self, method):
        lp = random_sparse_lp(16, 24, density=0.2, seed=0)
        if method == "gpu-revised-bounded":
            lp = _bounded_lp(6, seed=0)
        with pytest.raises(SolverError):
            solve(lp, method=method, precision="mixed")


# ---------------------------------------------------------------------------
# registry flags and façade validation
# ---------------------------------------------------------------------------


class TestCapabilityFlags:
    def test_registry_flags(self):
        from repro.engine.registry import (
            METHODS,
            fusion_methods,
            mixed_precision_methods,
        )

        assert fusion_methods() == {
            "gpu-revised", "gpu-revised-sparse", "gpu-revised-bounded",
            "gpu-tableau", "gpu-pdlp",
        }
        assert mixed_precision_methods() == {"gpu-revised", "gpu-tableau"}
        # fusion-capable methods are exactly the device methods
        for name in fusion_methods():
            assert METHODS[name].supports_device

    def test_fusion_on_host_method_raises(self):
        lp = random_dense_lp(8, 12, seed=0)
        with pytest.raises(SolverError, match="launch plans"):
            solve(lp, method="revised", fusion=True)

    def test_precision_on_host_method_raises(self):
        lp = random_dense_lp(8, 12, seed=0)
        with pytest.raises(SolverError, match="host"):
            solve(lp, method="revised", precision="fp32")

    def test_unknown_precision_rejected(self):
        from repro.simplex.options import SolverOptions

        with pytest.raises(SolverError):
            SolverOptions(precision="fp16")


# ---------------------------------------------------------------------------
# batch: cross-LP GEMV batching
# ---------------------------------------------------------------------------


class TestBatchGemv:
    def test_timeline_counts_batchable(self):
        from repro.batch.scheduler import BATCHABLE_KERNELS, LPTimeline

        dev = make_device()
        dev.record_timeline()
        solve(random_dense_lp(12, 18, seed=0), method="gpu-revised",
              device=dev)
        tl = LPTimeline.from_events(0, list(dev.timeline), dev.params)
        want = sum(
            1 for ev in dev.timeline
            if ev.kind == "kernel" and ev.name in BATCHABLE_KERNELS
        )
        assert tl.batchable_launches == want > 0
        assert tl.batchable_launches <= tl.kernel_launches

    def test_batching_shrinks_launch_bound_only(self):
        from repro.batch import solve_batch

        lps = [random_dense_lp(10, 16, seed=s) for s in range(6)]
        base = solve_batch(
            lps, method="gpu-revised", schedule="concurrent", n_streams=3
        )
        bat = solve_batch(
            lps, method="gpu-revised", schedule="concurrent", n_streams=3,
            batch_gemv=True,
        )
        for a, b in zip(base.items, bat.items):
            assert a.result.objective == b.result.objective
        assert bat.outcome.batched_launches_saved > 0
        assert bat.outcome.batching_saved_seconds == pytest.approx(
            bat.outcome.batched_launches_saved
            * GTX280_PARAMS.launch_overhead
        )
        assert (
            bat.outcome.bounds["launch-serialization"]
            < base.outcome.bounds["launch-serialization"]
        )
        # the other bounds are untouched
        for k in ("copy-engine", "compute-capacity", "stream-critical-path"):
            assert bat.outcome.bounds[k] == base.outcome.bounds[k]
        assert bat.outcome.makespan_seconds <= base.outcome.makespan_seconds

    def test_single_stream_saves_nothing(self):
        from repro.batch import solve_batch

        lps = [random_dense_lp(10, 16, seed=s) for s in range(3)]
        out = solve_batch(
            lps, method="gpu-revised", schedule="concurrent", n_streams=1,
            batch_gemv=True,
        )
        assert out.outcome.batched_launches_saved == 0

    def test_rounds_equal_busiest_stream(self):
        from repro.batch.scheduler import ConcurrentSchedule, LPTimeline

        # two streams: batchable counts 10 and 4 -> 10 rounds, 4 saved
        tls = [
            LPTimeline(0, 20, 0.0, 1.0, 1.0, 1.0, batchable_launches=10),
            LPTimeline(1, 12, 0.0, 1.0, 1.0, 1.0, batchable_launches=4),
        ]
        out = ConcurrentSchedule(n_streams=2, batch_gemv=True).plan(
            tls, params=GTX280_PARAMS
        )
        assert out.batched_launches_saved == 4
        assert out.bounds["launch-serialization"] == pytest.approx(
            (20 + 12 - 4) * GTX280_PARAMS.launch_overhead
        )

    def test_serve_config_plumbs_fusion(self):
        from repro.serve import LPServer, ServeConfig

        cfg = ServeConfig(
            n_devices=1, n_streams=2, method="gpu-revised",
            fusion=True, batch_gemv=True,
        )
        server = LPServer(cfg)
        for s in range(4):
            server.submit(random_dense_lp(10, 14, seed=s))
        report = server.run()
        assert len(report.completed) == 4
        plain = LPServer(ServeConfig(n_devices=1, n_streams=2,
                                     method="gpu-revised"))
        for s in range(4):
            plain.submit(random_dense_lp(10, 14, seed=s))
        rep2 = plain.run()
        objs = sorted(j.result.objective for j in report.completed)
        objs2 = sorted(j.result.objective for j in rep2.completed)
        assert objs == objs2

"""Tests for the first-order (PDLP/PDHG) backends and method="auto".

The acceptance bar for the first-order family: both backends converge to
within 1e-4 relative objective of the revised simplex across the generator
suite (dense, sparse, degenerate, bounded), detect infeasibility and
unboundedness via Farkas rays, emit per-restart trace records through the
engine observer, and ``method="auto"`` dispatches between the simplex and
first-order families along the F10 crossover.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SolverError
from repro.lp.generators import degenerate_lp, random_dense_lp, random_sparse_lp
from repro.lp.problem import Bounds, LPProblem
from repro.simplex.options import SolverOptions
from repro.solve import choose_method, solve
from repro.status import SolveStatus

FIRSTORDER = ("pdlp", "gpu-pdlp")


def boxed_lp():
    rng = np.random.default_rng(42)
    m, n = 6, 9
    return LPProblem(
        c=rng.uniform(0.1, 1.1, size=n),
        a=rng.uniform(0.1, 1.1, size=(m, n)),
        senses=["<="] * m,
        b=rng.uniform(n / 2.0, float(n), size=m),
        bounds=Bounds(np.zeros(n), rng.uniform(0.5, 4.0, size=n)),
        maximize=True,
        name="fo-boxed",
    )


SUITE = [
    random_dense_lp(8, 12, seed=3, name="fo-dense"),
    random_sparse_lp(10, 16, density=0.3, seed=11, name="fo-sparse"),
    degenerate_lp(7, 9, seed=5),
    boxed_lp(),
]


class TestConvergence:
    @pytest.mark.parametrize("method", FIRSTORDER)
    @pytest.mark.parametrize("lp", SUITE, ids=lambda lp: lp.name)
    def test_matches_revised_within_1e4(self, method, lp):
        ref = solve(lp, method="revised")
        r = solve(lp, method=method)
        assert r.status is SolveStatus.OPTIMAL
        rel = abs(r.objective - ref.objective) / (1.0 + abs(ref.objective))
        assert rel < 1e-4, (method, lp.name, rel)
        # the solution itself is feasible, not just the objective close
        assert r.residuals["primal_infeasibility"] < 1e-6

    @pytest.mark.parametrize("method", FIRSTORDER)
    def test_infeasible_detected(self, method):
        lp = LPProblem(
            c=np.array([1.0, 1.0]),
            a=np.array([[1.0, 1.0], [1.0, 1.0]]),
            senses=["<=", ">="],
            b=np.array([1.0, 3.0]),
            bounds=Bounds.nonnegative(2),
            maximize=False,
        )
        assert solve(lp, method=method).status is SolveStatus.INFEASIBLE

    @pytest.mark.parametrize("method", FIRSTORDER)
    def test_unbounded_detected(self, method):
        lp = LPProblem(
            c=np.array([1.0, 1.0]),
            a=np.array([[1.0, -1.0]]),
            senses=["<="],
            b=np.array([1.0]),
            bounds=Bounds.nonnegative(2),
            maximize=True,
        )
        assert solve(lp, method=method).status is SolveStatus.UNBOUNDED

    def test_cpu_gpu_agree(self):
        lp = random_sparse_lp(12, 18, density=0.3, seed=2)
        cpu = solve(lp, method="pdlp", dtype=np.float64)
        gpu = solve(lp, method="gpu-pdlp", dtype=np.float64)
        assert cpu.objective == pytest.approx(gpu.objective, rel=1e-6)


class TestResultSurface:
    @pytest.fixture(scope="class")
    def result(self):
        return solve(SUITE[0], method="pdlp", trace=True)

    def test_firstorder_extras(self, result):
        for key in ("restarts", "spmv_count", "primal_weight",
                    "norm_estimate", "kkt_score", "kkt_primal",
                    "kkt_dual", "kkt_gap"):
            assert key in result.extra, key
        assert result.extra["spmv_count"] > 0
        assert result.extra["kkt_score"] <= SolverOptions().tol_kkt * 1.0001

    def test_no_basis(self, result):
        # first-order methods are basis-free by design
        assert "basis" not in result.extra

    def test_trace_has_restart_records(self, result):
        events = [rec.event for rec in result.trace]
        assert "restart" in events
        assert events[-1] == "optimal"
        restarts = [rec for rec in result.trace if rec.event == "restart"]
        # every restart record carries the candidate's KKT score in theta
        assert all(rec.theta >= 0.0 for rec in restarts)
        assert all(rec.pricing_rule == "pdhg" for rec in restarts)
        # the legacy tuple mirror includes restarts (the pivot analogue)
        assert len(result.extra["trace"]) == len(restarts)

    def test_duals_recovered(self, result):
        assert "duals" in result.extra
        assert "y_std" in result.extra

    def test_gpu_device_extras(self):
        r = solve(SUITE[0], method="gpu-pdlp")
        assert r.extra["kernel_launches"] > 0
        assert r.timing.transfer_seconds > 0.0
        assert "pdhg.primal_update" in r.extra["by_kernel"]
        assert "pdhg.dual_update" in r.extra["by_kernel"]


class TestOptions:
    def test_tol_kkt_validated(self):
        with pytest.raises(SolverError):
            SolverOptions(tol_kkt=-1.0)

    def test_tol_kkt_respected(self):
        lp = SUITE[0]
        loose = solve(lp, method="pdlp", tol_kkt=1e-4)
        tight = solve(lp, method="pdlp", tol_kkt=1e-10)
        assert loose.extra["kkt_score"] <= 1e-4
        assert tight.extra["kkt_score"] <= 1e-9  # floored by 1e3*eps(f64)
        assert (
            loose.iterations.total_iterations
            <= tight.iterations.total_iterations
        )

    def test_iteration_limit_status(self):
        r = solve(SUITE[0], method="pdlp", max_iterations=10)
        assert r.status is SolveStatus.ITERATION_LIMIT

    def test_warm_start_rejected(self):
        for method in FIRSTORDER:
            with pytest.raises(SolverError, match="warm start"):
                solve(SUITE[0], method=method, initial_basis=np.arange(3))


class TestAutoDispatch:
    def test_dense_goes_to_gpu_revised(self):
        assert choose_method(random_dense_lp(8, 12, seed=3)) == "gpu-revised"

    def test_small_sparse_goes_to_sparse_simplex(self):
        lp = random_sparse_lp(10, 16, density=0.3, seed=11)
        assert choose_method(lp) == "gpu-revised-sparse"

    def test_large_sparse_goes_to_pdlp(self):
        lp = random_sparse_lp(400, 600, density=0.02, seed=1)
        assert choose_method(lp) == "gpu-pdlp"

    def test_warm_start_forces_basis_method(self):
        lp = random_sparse_lp(400, 600, density=0.02, seed=1)
        assert choose_method(lp, initial_basis=np.arange(3)) == (
            "gpu-revised-sparse"
        )

    def test_auto_solves_end_to_end(self):
        lp = random_sparse_lp(10, 16, density=0.3, seed=11)
        auto = solve(lp, method="auto")
        concrete = solve(lp, method=choose_method(lp))
        assert auto.status is SolveStatus.OPTIMAL
        assert auto.objective == concrete.objective
        assert auto.solver == concrete.solver

    def test_auto_not_a_registry_row(self):
        # "auto" resolves before dispatch: pinned method sets, the golden
        # fixture and batch capability sets never see it
        from repro.solve import available_methods

        assert "auto" not in available_methods()

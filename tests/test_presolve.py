"""Tests for the presolve reductions."""

import numpy as np
import pytest

from conftest import scipy_oracle
from repro.lp.generators import random_dense_lp
from repro.lp.presolve import (
    PresolveStatus,
    presolve,
    solve_with_presolve,
)
from repro.lp.problem import Bounds, LPProblem


class TestRules:
    def test_fixed_variable_substituted(self):
        lp = LPProblem.minimize(
            c=[1.0, 2.0, 3.0], a_ub=[[1.0, 1.0, 1.0]], b_ub=[10.0],
            bounds=[(0, None), (0, None), (3.0, 3.0)],
        )
        out = presolve(lp)
        assert out.status is PresolveStatus.REDUCED
        assert out.reduced.num_vars == 2
        assert out.fixed_values == {2: 3.0}
        assert out.objective_offset == pytest.approx(9.0)
        # rhs adjusted: x0 + x1 <= 10 - 3
        assert out.reduced.b[0] == pytest.approx(7.0)

    def test_fix_cascade_solves_fully(self):
        """A fixed variable can cascade singleton-row -> bound -> empty
        column eliminations until nothing is left."""
        lp = LPProblem.minimize(
            c=[1.0, 2.0], a_ub=[[1.0, 1.0]], b_ub=[10.0],
            bounds=[(0, None), (3.0, 3.0)],
        )
        out = presolve(lp)
        assert out.status is PresolveStatus.SOLVED
        assert out.objective_offset == pytest.approx(6.0)  # x = (0, 3)
        np.testing.assert_allclose(out.postsolve(np.zeros(0)), [0.0, 3.0])

    def test_empty_row_dropped(self):
        lp = LPProblem.minimize(
            c=[1.0, 1.0], a_ub=[[0.0, 0.0], [1.0, 1.0]], b_ub=[5.0, 2.0],
        )
        out = presolve(lp)
        assert out.log["rows_empty"] == 1
        assert out.reduced.num_constraints == 1

    def test_empty_row_infeasible(self):
        lp = LPProblem.minimize(c=[1.0], a_ub=[[0.0]], b_ub=[-5.0])
        assert presolve(lp).status is PresolveStatus.INFEASIBLE

    def test_empty_eq_row_infeasible(self):
        lp = LPProblem.minimize(
            c=[1.0], a_ub=[[1.0]], b_ub=[1.0],
            a_eq=[[0.0]], b_eq=[2.0],
        )
        assert presolve(lp).status is PresolveStatus.INFEASIBLE

    def test_singleton_row_becomes_bound(self):
        lp = LPProblem.minimize(
            c=[1.0, 1.0],
            a_ub=[[2.0, 0.0], [1.0, 1.0]],
            b_ub=[6.0, 10.0],
        )
        out = presolve(lp)
        assert out.log["rows_singleton"] == 1
        assert out.reduced.num_constraints == 1
        assert out.reduced.bounds.upper[0] == pytest.approx(3.0)

    def test_singleton_negative_coefficient_flips(self):
        lp = LPProblem.minimize(
            c=[1.0, 1.0],
            a_ub=[[-1.0, 0.0], [1.0, 1.0]],
            b_ub=[-2.0, 10.0],
        )
        out = presolve(lp)
        # -x <= -2  =>  x >= 2
        assert out.reduced.bounds.lower[0] == pytest.approx(2.0)

    def test_singleton_contradiction_infeasible(self):
        lp = LPProblem.minimize(
            c=[1.0, 1.0],
            a_ub=[[1.0, 0.0], [-1.0, 0.0], [1.0, 1.0]],
            b_ub=[1.0, -3.0, 10.0],
        )
        assert presolve(lp).status is PresolveStatus.INFEASIBLE

    def test_empty_column_moved_to_best_bound(self):
        # x1 appears in no constraint; min c=+1 -> lower bound 0
        lp = LPProblem.minimize(
            c=[1.0, 1.0], a_ub=[[1.0, 0.0]], b_ub=[4.0],
        )
        out = presolve(lp)
        assert out.fixed_values[1] == 0.0

    def test_empty_column_unbounded(self):
        # maximise a free-to-grow variable with no constraints on it
        lp = LPProblem.maximize_problem(
            c=[1.0, 1.0], a_ub=[[1.0, 0.0]], b_ub=[4.0],
        )
        assert presolve(lp).status is PresolveStatus.UNBOUNDED

    def test_duplicate_rows_keep_tightest(self):
        lp = LPProblem.minimize(
            c=[1.0, 1.0], a_ub=[[1.0, 1.0], [1.0, 1.0]], b_ub=[5.0, 3.0],
        )
        out = presolve(lp)
        assert out.log["rows_duplicate"] == 1
        assert out.reduced.num_constraints == 1
        assert out.reduced.b[0] == pytest.approx(3.0)

    def test_duplicate_eq_rows_conflicting_infeasible(self):
        lp = LPProblem.minimize(
            c=[1.0, 1.0],
            a_eq=[[1.0, 1.0], [1.0, 1.0]],
            b_eq=[4.0, 5.0],
        )
        assert presolve(lp).status is PresolveStatus.INFEASIBLE

    def test_all_variables_eliminated_solved(self):
        lp = LPProblem.minimize(
            c=[2.0], a_ub=[[1.0]], b_ub=[10.0], bounds=[(3.0, 3.0)],
        )
        out = presolve(lp)
        assert out.status is PresolveStatus.SOLVED
        assert out.objective_offset == pytest.approx(6.0)
        x = out.postsolve(np.zeros(0))
        assert x[0] == 3.0


class TestPostsolveMapping:
    def test_roundtrip_indices(self):
        lp = LPProblem.minimize(
            c=[1.0, 2.0, 3.0],
            a_ub=[[1.0, 0.0, 1.0]],
            b_ub=[5.0],
            bounds=[(0, None), (1.5, 1.5), (0, None)],
        )
        out = presolve(lp)
        x = out.postsolve(np.array([7.0, 9.0]))
        np.testing.assert_allclose(x, [7.0, 1.5, 9.0])

    def test_counts(self):
        lp = LPProblem.minimize(
            c=[1.0, 2.0], a_ub=[[1.0, 0.0], [0.0, 0.0]], b_ub=[5.0, 1.0],
            bounds=[(0, None), (2.0, 2.0)],
        )
        out = presolve(lp)
        assert out.cols_removed >= 1
        assert out.rows_removed >= 1


class TestSolveWithPresolve:
    def test_matches_plain_solve(self):
        lp = LPProblem.minimize(
            c=[1.0, 2.0, 0.5],
            a_ub=[[1.0, 1.0, 0.0], [2.0, 0.0, 0.0], [0.0, 0.0, 0.0]],
            b_ub=[10.0, 8.0, 1.0],
            a_eq=[[0.0, 1.0, 1.0]],
            b_eq=[4.0],
            bounds=[(0, None), (0, None), (1.0, 1.0)],
        )
        ref = scipy_oracle(lp)
        r = solve_with_presolve(lp, method="revised")
        assert r.status.value == "optimal"
        assert r.objective == pytest.approx(ref, rel=1e-8)
        assert lp.constraint_violation(r.x) <= 1e-8

    def test_presolve_proves_infeasible_without_solver(self, infeasible_lp):
        r = solve_with_presolve(infeasible_lp, method="revised")
        assert r.status.value == "infeasible"

    def test_random_instances_unchanged_by_presolve(self):
        for seed in range(3):
            lp = random_dense_lp(12, 16, seed=seed)
            plain = solve_with_presolve(lp, method="revised")
            ref = scipy_oracle(lp)
            assert plain.objective == pytest.approx(ref, rel=1e-7)

    def test_gpu_method_through_presolve(self):
        lp = LPProblem.maximize_problem(
            c=[3.0, 5.0, 1.0],
            a_ub=[[1.0, 0.0, 0.0], [0.0, 2.0, 0.0], [3.0, 2.0, 0.0]],
            b_ub=[4.0, 12.0, 18.0],
            bounds=[(0, None), (0, None), (2.0, 2.0)],
        )
        r = solve_with_presolve(lp, method="gpu-revised", dtype=np.float64)
        assert r.objective == pytest.approx(38.0)  # 36 + 1*2
        assert r.solver.startswith("presolve+")

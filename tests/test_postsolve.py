"""Tests for duals, reduced costs and optimality certificates."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import solve
from repro.lp.generators import random_dense_lp, random_sparse_lp, transportation_lp
from repro.lp.postsolve import Certificate, certificate_from_basis
from repro.simplex.common import prepare
from repro.simplex.options import SolverOptions

METHODS = ("tableau", "revised", "gpu-revised", "gpu-tableau")


class TestCertificateObject:
    def test_optimal_certificate_check(self):
        cert = Certificate(
            y=np.zeros(2), reduced_costs=np.zeros(3), duality_gap=0.0,
            complementary_slackness=0.0, min_nonbasic_reduced_cost=0.0,
        )
        assert cert.is_optimal_certificate()

    def test_negative_reduced_cost_fails_certificate(self):
        cert = Certificate(
            y=np.zeros(2), reduced_costs=np.zeros(3), duality_gap=0.0,
            complementary_slackness=0.0, min_nonbasic_reduced_cost=-1.0,
        )
        assert not cert.is_optimal_certificate()

    def test_gap_fails_certificate(self):
        cert = Certificate(
            y=np.zeros(2), reduced_costs=np.zeros(3), duality_gap=0.5,
            complementary_slackness=0.0, min_nonbasic_reduced_cost=0.0,
        )
        assert not cert.is_optimal_certificate()


class TestSolverCertificates:
    @pytest.mark.parametrize("method", METHODS)
    def test_every_solver_produces_valid_certificate(self, method, textbook_lp):
        r = solve(textbook_lp, method=method, dtype=np.float64)
        cert = r.extra["certificate"]
        assert cert.is_optimal_certificate(tol=1e-6)

    def test_strong_duality_on_random_instances(self):
        for seed in range(4):
            lp = random_dense_lp(20, 28, seed=seed)
            r = solve(lp, method="revised")
            cert = r.extra["certificate"]
            assert abs(cert.duality_gap) < 1e-7 * (1 + abs(r.objective))

    def test_complementary_slackness(self):
        lp = random_dense_lp(25, 30, seed=9)
        r = solve(lp, method="gpu-revised", dtype=np.float64)
        assert r.extra["certificate"].complementary_slackness < 1e-6

    def test_sparse_instances(self):
        lp = random_sparse_lp(25, 40, density=0.2, seed=2)
        r = solve(lp, method="gpu-revised", dtype=np.float64)
        assert r.extra["certificate"].is_optimal_certificate(1e-6)

    def test_certificate_with_scaling(self):
        lp = random_dense_lp(15, 20, seed=3)
        r = solve(lp, method="revised", scale=True)
        assert r.extra["certificate"].is_optimal_certificate(1e-6)

    def test_no_certificate_on_infeasible(self, infeasible_lp):
        r = solve(infeasible_lp, method="revised")
        assert "certificate" not in r.extra


class TestOriginalSpaceDuals:
    def test_textbook_shadow_prices(self, textbook_lp):
        """Known duals of the textbook LP: y = (0, 3/2, 1) for max form."""
        r = solve(textbook_lp, method="revised")
        duals = r.extra["duals"]
        np.testing.assert_allclose(duals, [0.0, 1.5, 1.0], atol=1e-9)

    def test_duals_match_scipy(self):
        from scipy.optimize import linprog

        lp = random_dense_lp(12, 18, seed=5)
        r = solve(lp, method="revised")
        ref = linprog(
            -lp.c, A_ub=lp.a_dense(), b_ub=lp.b,
            bounds=[(0, None)] * lp.num_vars, method="highs",
        )
        # scipy's ineqlin marginals are ≤-form duals of the minimisation;
        # ours are in the user's max orientation: negate scipy's
        np.testing.assert_allclose(
            r.extra["duals"], -np.asarray(ref.ineqlin.marginals), atol=1e-6
        )

    def test_duals_price_the_objective(self):
        """Strong duality in user space: obj = Σ y_i b_i (all-<= max LP with
        binding structure; bound rows contribute nothing here)."""
        lp = random_dense_lp(10, 14, seed=6)
        r = solve(lp, method="revised")
        duals = r.extra["duals"]
        assert float(duals @ lp.b) == pytest.approx(r.objective, rel=1e-8)

    def test_equality_duals(self):
        """Transportation duals satisfy u_i + v_j = c_ij on basic arcs."""
        lp = transportation_lp(4, 5, seed=1)
        r = solve(lp, method="revised", pricing="hybrid")
        duals = r.extra["duals"]
        x = r.x
        c = lp.c
        a = lp.a_dense()
        for j in range(lp.num_vars):
            if x[j] > 1e-7:  # basic arc: reduced cost zero
                assert float(a[:, j] @ duals) == pytest.approx(c[j], abs=1e-6)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(m=st.integers(4, 12), n=st.integers(4, 12), seed=st.integers(0, 2**31))
def test_certificate_property(m, n, seed):
    lp = random_dense_lp(m, n, seed=seed)
    r = solve(lp, method="revised")
    cert = r.extra["certificate"]
    assert cert.is_optimal_certificate(1e-6)
    # recompute independently from the basis
    prep = prepare(lp, SolverOptions())
    cert2 = certificate_from_basis(prep, r.extra["basis"], r.extra["x_std"])
    np.testing.assert_allclose(cert.y, cert2.y, atol=1e-9)

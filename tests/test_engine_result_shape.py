"""Cross-solver result-shape property: every method populates the same
:class:`~repro.result.SolveResult` surface.

The engine lifecycle assembles every result in one place, so an OPTIMAL
solve must expose the same fields regardless of method: solution vector,
objective, residuals, iteration stats, modeled timing, basis handles and a
trace when tracing is on.  A backend that forgets to participate in a
lifecycle step (``extract``, ``timing``, ``standard_extras``) shows up here
as a field-population mismatch against its siblings.  The first-order
(PDHG) methods are the one sanctioned difference: they have no basis, so
their expected shape drops ``extra.basis`` and nothing else.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import solve
from repro.lp.generators import random_dense_lp
from repro.solve import available_methods
from repro.status import SolveStatus


@pytest.fixture(scope="module")
def results():
    lp = random_dense_lp(8, 12, seed=3, name="shape-probe")
    return {
        method: solve(lp, method=method, trace=True)
        for method in available_methods()
    }


def _populated_fields(result) -> frozenset:
    """The shape signature: which core fields a result actually populates."""
    fields = set()
    if result.x is not None:
        fields.add("x")
    if result.objective is not None:
        fields.add("objective")
    if result.residuals:
        fields.add("residuals")
    if result.trace is not None:
        fields.add("trace")
    if result.iterations is not None:
        fields.add("iterations")
    if result.timing is not None:
        fields.add("timing")
    for key in ("basis", "x_std", "trace"):
        if key in result.extra:
            fields.add(f"extra.{key}")
    return frozenset(fields)


EXPECTED = frozenset(
    {
        "x", "objective", "residuals", "trace", "iterations", "timing",
        "extra.basis", "extra.x_std", "extra.trace",
    }
)

#: The basis-free methods: same surface minus the basis handle.
FIRSTORDER_METHODS = frozenset({"pdlp", "gpu-pdlp"})
FIRSTORDER_EXPECTED = EXPECTED - {"extra.basis"}


def _expected_for(method: str) -> frozenset:
    return FIRSTORDER_EXPECTED if method in FIRSTORDER_METHODS else EXPECTED


def test_all_methods_optimal(results):
    for method, r in results.items():
        assert r.status is SolveStatus.OPTIMAL, method


def test_same_field_population_across_methods(results):
    shapes = {m: _populated_fields(r) for m, r in results.items()}
    assert all(s == _expected_for(m) for m, s in shapes.items()), {
        m: sorted(_expected_for(m).symmetric_difference(s))
        for m, s in shapes.items()
        if s != _expected_for(m)
    }


def test_agreeing_objectives(results):
    objectives = [r.objective for r in results.values()]
    assert np.allclose(objectives, objectives[0], rtol=1e-8)


def test_common_shape_details(results):
    for method, r in results.items():
        assert r.solver, method
        assert r.timing.modeled_seconds > 0.0, method
        assert r.timing.kernel_breakdown, method
        assert r.iterations.total_iterations >= 1, method
        assert len(r.x) == 12, method
        assert r.residuals["primal_infeasibility"] < 1e-7, method
        assert len(r.trace) >= 1, method
        # the legacy-tuple mirror holds the trace's pivot/flip records
        # (terminal records like "optimal" are trace-only)
        assert 1 <= len(r.extra["trace"]) <= len(r.trace), method

"""Tests for warm-starting the revised solvers from a previous basis."""

import numpy as np
import pytest

from repro import solve
from repro.errors import SolverError
from repro.lp.generators import random_dense_lp
from repro.lp.problem import LPProblem


@pytest.fixture
def base_lp():
    return random_dense_lp(30, 40, seed=77)


def perturbed(lp, eps=0.01, seed=5):
    """Same feasible region, slightly different objective."""
    rng = np.random.default_rng(seed)
    c = lp.c * (1.0 + eps * rng.normal(size=lp.c.size))
    return LPProblem(c=c, a=lp.a_dense(), senses=lp.senses, b=lp.b,
                     bounds=lp.bounds, maximize=lp.maximize,
                     name=lp.name + "+perturbed")


class TestCpuWarmStart:
    def test_restart_from_optimal_basis_is_instant(self, base_lp):
        cold = solve(base_lp, method="revised")
        warm = solve(base_lp, method="revised", initial_basis=cold.extra["basis"])
        assert warm.is_optimal
        assert warm.objective == pytest.approx(cold.objective)
        # re-solving from the optimal basis needs only the optimality check
        assert warm.iterations.total_iterations <= 1

    def test_perturbed_objective_fewer_iterations(self, base_lp):
        cold = solve(base_lp, method="revised")
        lp2 = perturbed(base_lp)
        cold2 = solve(lp2, method="revised")
        warm2 = solve(lp2, method="revised", initial_basis=cold.extra["basis"])
        assert warm2.is_optimal
        assert warm2.objective == pytest.approx(cold2.objective, rel=1e-8)
        assert warm2.iterations.total_iterations <= cold2.iterations.total_iterations

    def test_bad_basis_falls_back(self, base_lp):
        # a singular 'basis' (same column m times is rejected as duplicate;
        # use distinct columns that are linearly dependent via artificials)
        m = base_lp.num_constraints
        junk = np.arange(m)  # first m structural columns: may be singular or
        # infeasible; either way the solver must still reach the optimum
        r = solve(base_lp, method="revised", initial_basis=junk)
        cold = solve(base_lp, method="revised")
        assert r.objective == pytest.approx(cold.objective, rel=1e-8)

    def test_invalid_basis_shape_rejected(self, base_lp):
        with pytest.raises(SolverError):
            solve(base_lp, method="revised", initial_basis=np.arange(3))

    def test_duplicate_basis_rejected(self, base_lp):
        m = base_lp.num_constraints
        with pytest.raises(SolverError):
            solve(base_lp, method="revised", initial_basis=np.zeros(m, dtype=int))

    def test_out_of_range_rejected(self, base_lp):
        m = base_lp.num_constraints
        bad = np.arange(m)
        bad[0] = 10**6
        with pytest.raises(SolverError):
            solve(base_lp, method="revised", initial_basis=bad)


class TestGpuWarmStart:
    def test_restart_from_optimal_basis(self, base_lp):
        cold = solve(base_lp, method="gpu-revised", dtype=np.float64)
        warm = solve(
            base_lp, method="gpu-revised", dtype=np.float64,
            initial_basis=cold.extra["basis"],
        )
        assert warm.is_optimal
        assert warm.iterations.total_iterations <= 1
        assert warm.objective == pytest.approx(cold.objective)

    def test_cross_machine_warm_start(self, base_lp):
        """A CPU basis warm-starts the GPU solver (and vice versa)."""
        cpu = solve(base_lp, method="revised")
        gpu = solve(
            base_lp, method="gpu-revised", dtype=np.float64,
            initial_basis=cpu.extra["basis"],
        )
        assert gpu.iterations.total_iterations <= 1
        back = solve(base_lp, method="revised", initial_basis=gpu.extra["basis"])
        assert back.iterations.total_iterations <= 1

    def test_perturbed_rhs_warm_start(self, base_lp):
        cold = solve(base_lp, method="gpu-revised", dtype=np.float64)
        lp2 = LPProblem(
            c=base_lp.c, a=base_lp.a_dense(), senses=base_lp.senses,
            b=base_lp.b * 1.05, bounds=base_lp.bounds,
            maximize=base_lp.maximize,
        )
        warm = solve(
            lp2, method="gpu-revised", dtype=np.float64,
            initial_basis=cold.extra["basis"],
        )
        cold2 = solve(lp2, method="gpu-revised", dtype=np.float64)
        assert warm.objective == pytest.approx(cold2.objective, rel=1e-8)


class TestUnsupportedMethods:
    @pytest.mark.parametrize("method", ["tableau", "gpu-tableau"])
    def test_tableau_methods_reject_warm_start(self, method, base_lp):
        with pytest.raises(SolverError):
            solve(base_lp, method=method,
                  initial_basis=np.arange(base_lp.num_constraints))

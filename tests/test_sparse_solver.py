"""Sparse revised simplex: LU basis, partial pricing, and both backends.

Covers the sparse solver core end-to-end:

- :class:`~repro.simplex.sparse_basis.SparseLUBasis` — factorization,
  FTRAN/BTRAN, sparse eta updates, refactorization policy, singularity.
- :class:`~repro.simplex.sparse_pricing.SparsePartialPricing` — the
  sectioned partial pricing rules agree with full Dantzig/Bland choices
  on what matters (entering column sign conventions, Bland anti-cycling).
- ``revised-sparse`` and ``gpu-revised-sparse`` agree with their dense
  counterparts to 1e-6 on the structured generator families.
"""

import numpy as np
import pytest

from repro import SolveStatus, solve
from repro.errors import SingularBasisError
from repro.lp.generators import netlib_synth_suite, random_sparse_lp
from repro.simplex.sparse_basis import SparseLUBasis
from repro.sparse import CscMatrix


def random_basis(m: int, seed: int, density: float = 0.3) -> np.ndarray:
    """A well-conditioned sparse m×m basis (diagonally dominated)."""
    rng = np.random.default_rng(seed)
    b = rng.normal(size=(m, m))
    b[rng.random(size=(m, m)) > density] = 0.0
    b += np.diag(np.sign(np.diag(b)) + rng.uniform(1.0, 2.0, size=m))
    return b


class TestSparseLUBasis:
    def test_starts_as_identity(self):
        lu = SparseLUBasis(5)
        e = np.zeros(5)
        e[2] = 1.0
        np.testing.assert_array_equal(lu.ftran(e.copy()), e)
        np.testing.assert_array_equal(lu.btran(e.copy()), e)
        assert lu.eta_count == 0

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_ftran_solves_bx_eq_rhs(self, seed, rng):
        m = 12
        b = random_basis(m, seed)
        lu = SparseLUBasis(m)
        lu.refactorize(b)
        rhs = rng.normal(size=m)
        x = lu.ftran(rhs.copy())
        np.testing.assert_allclose(b @ x, rhs, atol=1e-9)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_btran_solves_btpi_eq_rhs(self, seed, rng):
        m = 12
        b = random_basis(m, seed)
        lu = SparseLUBasis(m)
        lu.refactorize(b)
        rhs = rng.normal(size=m)
        pi = lu.btran(rhs.copy())
        np.testing.assert_allclose(b.T @ pi, rhs, atol=1e-9)

    def test_accepts_csc_columns(self, rng):
        m = 10
        b = random_basis(m, 7)
        lu = SparseLUBasis(m)
        lu.refactorize(CscMatrix.from_dense(b))
        rhs = rng.normal(size=m)
        np.testing.assert_allclose(b @ lu.ftran(rhs.copy()), rhs, atol=1e-9)

    def test_eta_update_tracks_column_replacement(self, rng):
        m = 10
        b = random_basis(m, 11)
        lu = SparseLUBasis(m)
        lu.refactorize(b)
        for p in (3, 7, 0):
            a_q = rng.normal(size=m)
            alpha = lu.ftran(a_q.copy())
            lu.update(alpha, p, tol_pivot=1e-9)
            b[:, p] = a_q
            rhs = rng.normal(size=m)
            np.testing.assert_allclose(b @ lu.ftran(rhs.copy()), rhs, atol=1e-7)
            np.testing.assert_allclose(b.T @ lu.btran(rhs.copy()), rhs, atol=1e-7)
        assert lu.eta_count == 3

    def test_update_rejects_tiny_pivot(self):
        lu = SparseLUBasis(4)
        lu.refactorize(np.eye(4))
        alpha = np.array([1.0, 0.0, 1e-14, 0.0])
        with pytest.raises(SingularBasisError):
            lu.update(alpha, 2, tol_pivot=1e-9)

    def test_singular_matrix_raises(self):
        lu = SparseLUBasis(3)
        with pytest.raises(SingularBasisError):
            lu.refactorize(np.zeros((3, 3)))

    def test_refactorize_clears_eta_file(self, rng):
        m = 8
        b = random_basis(m, 5)
        lu = SparseLUBasis(m)
        lu.refactorize(b)
        alpha = lu.ftran(rng.normal(size=m))
        lu.update(alpha, 1, tol_pivot=1e-9)
        assert lu.eta_count == 1
        lu.refactorize(b)
        assert lu.eta_count == 0

    def test_needs_refresh_triggers_on_fill(self, rng):
        m = 8
        lu = SparseLUBasis(m, fill_limit=1.5)
        b = random_basis(m, 3, density=0.9)
        lu.refactorize(b)
        assert not lu.needs_refresh()  # no updates yet
        # pile on dense etas until the fill ratio trips the limit
        for p in range(m):
            alpha = lu.ftran(rng.normal(size=m))
            lu.update(alpha, p, tol_pivot=1e-12)
            if lu.needs_refresh():
                break
        assert lu.needs_refresh()
        assert lu.fill_ratio > 1.5


class TestSparsePartialPricing:
    @staticmethod
    def make(n_cols, mode="dantzig"):
        from repro.simplex.sparse_pricing import SparsePartialPricing

        rng = np.random.default_rng(0)
        dense = rng.normal(size=(6, n_cols))
        a = CscMatrix.from_dense(dense)
        return dense, SparsePartialPricing(a, mode=mode, stall_window=30)

    def test_dantzig_matches_reduced_cost_sign(self):
        dense, rule = self.make(40)
        pi = np.zeros(6)
        c = np.linspace(-1.0, 1.0, 40)
        in_basis = np.zeros(40, dtype=bool)
        picked = rule.select(pi, c, in_basis, tol=1e-9)
        assert picked is not None
        q, d_q = picked
        assert d_q < 0
        assert d_q == pytest.approx(c[q])  # pi = 0 ⇒ d = c

    def test_bland_picks_lowest_index(self):
        dense, rule = self.make(50, mode="bland")
        pi = np.zeros(6)
        c = np.zeros(50)
        c[[7, 31, 44]] = -1.0
        in_basis = np.zeros(50, dtype=bool)
        q, _ = rule.select(pi, c, in_basis, tol=1e-9)
        assert q == 7

    def test_optimal_returns_none(self):
        dense, rule = self.make(30)
        picked = rule.select(
            np.zeros(6), np.ones(30), np.zeros(30, dtype=bool), tol=1e-9
        )
        assert picked is None

    def test_skips_basic_columns(self):
        dense, rule = self.make(30)
        c = -np.ones(30)
        in_basis = np.ones(30, dtype=bool)
        in_basis[17] = False
        q, _ = rule.select(np.zeros(6), c, in_basis, tol=1e-9)
        assert q == 17


SPARSE_SUITE = [p for p in netlib_synth_suite(seed=0)] + [
    random_sparse_lp(60, 90, density=0.08, seed=3),
    random_sparse_lp(120, 200, density=0.05, seed=7),
]


class TestBackendAgreement:
    @pytest.mark.parametrize("lp", SPARSE_SUITE, ids=lambda p: p.name)
    def test_revised_sparse_matches_revised(self, lp):
        ref = solve(lp, method="revised")
        r = solve(lp, method="revised-sparse")
        assert r.status is ref.status
        if ref.status is SolveStatus.OPTIMAL:
            assert r.objective == pytest.approx(ref.objective, abs=1e-6, rel=1e-6)

    @pytest.mark.parametrize("lp", SPARSE_SUITE, ids=lambda p: p.name)
    def test_gpu_revised_sparse_matches_gpu_revised(self, lp):
        ref = solve(lp, method="gpu-revised")
        r = solve(lp, method="gpu-revised-sparse")
        assert r.status is ref.status
        if ref.status is SolveStatus.OPTIMAL:
            assert r.objective == pytest.approx(ref.objective, abs=1e-6, rel=1e-6)

    def test_sparse_extras_reported(self):
        lp = random_sparse_lp(40, 60, density=0.1, seed=1)
        r = solve(lp, method="revised-sparse")
        for key in ("a_nnz", "lu_nnz", "eta_nnz", "fill_ratio"):
            assert key in r.extra, key
        assert r.extra["a_nnz"] == r.extra["a_nnz"]  # present and numeric
        g = solve(lp, method="gpu-revised-sparse")
        for key in ("a_nnz", "lu_nnz", "fill_ratio", "peak_device_bytes"):
            assert key in g.extra, key

    def test_sparse_device_memory_below_dense(self):
        lp = random_sparse_lp(120, 180, density=0.05, seed=5)
        dense = solve(lp, method="gpu-revised")
        sparse = solve(lp, method="gpu-revised-sparse")
        assert sparse.extra["peak_device_bytes"] < dense.extra["peak_device_bytes"]

    @pytest.mark.parametrize("method", ["revised-sparse", "gpu-revised-sparse"])
    def test_warm_start_reduces_iterations(self, method):
        lp = random_sparse_lp(50, 80, density=0.1, seed=9)
        cold = solve(lp, method=method)
        assert cold.status is SolveStatus.OPTIMAL
        warm = solve(lp, method=method, initial_basis=cold.extra["basis"])
        assert warm.status is SolveStatus.OPTIMAL
        assert warm.objective == pytest.approx(cold.objective, abs=1e-8)
        assert (
            warm.iterations.total_iterations <= cold.iterations.total_iterations
        )
        assert warm.iterations.phase1_iterations == 0  # hint was feasible

    @pytest.mark.parametrize("method", ["revised-sparse", "gpu-revised-sparse"])
    def test_pricing_rules_reach_optimum(self, method):
        lp = random_sparse_lp(30, 45, density=0.15, seed=2)
        ref = solve(lp, method="revised")
        for pricing in ("dantzig", "bland", "hybrid"):
            r = solve(lp, method=method, pricing=pricing)
            assert r.status is SolveStatus.OPTIMAL, pricing
            assert r.objective == pytest.approx(ref.objective, abs=1e-6)

    @pytest.mark.parametrize("method", ["revised-sparse", "gpu-revised-sparse"])
    def test_unsupported_pricing_rejected(self, method):
        from repro.errors import SolverError

        lp = random_sparse_lp(10, 15, density=0.3, seed=0)
        with pytest.raises(SolverError):
            solve(lp, method=method, pricing="devex")

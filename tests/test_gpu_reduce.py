"""Tests for the parallel reduction / scan primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.gpu import reduce as R
from repro.gpu.device import Device
from repro.perfmodel.presets import GTX280_PARAMS


def dvec(device, values, dtype=np.float64):
    return device.to_device(np.asarray(values, dtype=dtype))


class TestValueReductions:
    def test_sum(self, device, rng):
        xh = rng.normal(size=1000)
        assert R.reduce_sum(dvec(device, xh)) == pytest.approx(xh.sum())

    def test_min_max(self, device, rng):
        xh = rng.normal(size=777)
        x = dvec(device, xh)
        assert R.reduce_min(x) == pytest.approx(xh.min())
        assert R.reduce_max(x) == pytest.approx(xh.max())

    def test_max_abs(self, device):
        assert R.reduce_max_abs(dvec(device, [1.0, -9.0, 3.0])) == 9.0

    def test_single_element(self, device):
        assert R.reduce_sum(dvec(device, [42.0])) == 42.0

    def test_multipass_charges_multiple_launches(self, device):
        """A reduction over >2*block² elements needs at least 3 passes."""
        n = 2 * 256 * 2 * 256 + 1
        x = device.zeros(n, np.float32)
        R.reduce_sum(x)
        assert device.stats.by_kernel["reduce.sum"].launches >= 3

    def test_scalar_dtoh_charged(self, device):
        x = dvec(device, np.ones(10))
        before = device.stats.dtoh_bytes
        R.reduce_sum(x)
        assert device.stats.dtoh_bytes > before


class TestArgReductions:
    def test_argmin(self, device):
        idx, val = R.argmin(dvec(device, [3.0, -1.0, 2.0]))
        assert (idx, val) == (1, -1.0)

    def test_argmin_tie_breaks_low_index(self, device):
        idx, _ = R.argmin(dvec(device, [5.0, 1.0, 1.0, 1.0]))
        assert idx == 1

    def test_argmax_abs(self, device):
        idx, val = R.argmax_abs(dvec(device, [3.0, -10.0, 2.0]))
        assert (idx, val) == (1, 10.0)

    def test_argmin_where(self, device):
        x = dvec(device, [5.0, 1.0, 3.0, 0.5])
        mask = dvec(device, [1.0, 0.0, 1.0, 0.0])
        idx, val = R.argmin_where(x, mask)
        assert (idx, val) == (2, 3.0)

    def test_argmin_where_empty_mask(self, device):
        x = dvec(device, [5.0, 1.0])
        mask = dvec(device, [0.0, 0.0])
        idx, val = R.argmin_where(x, mask)
        assert idx == R.NO_INDEX
        assert val == np.inf

    def test_first_index_below(self, device):
        x = dvec(device, [0.5, -0.1, -3.0])
        assert R.first_index_below(x, 0.0) == 1

    def test_first_index_below_none(self, device):
        x = dvec(device, [0.5, 0.1])
        assert R.first_index_below(x, 0.0) == R.NO_INDEX

    def test_count_below(self, device):
        x = dvec(device, [-1.0, 0.0, -2.0, 3.0])
        assert R.count_below(x, 0.0) == 2
        assert R.count_below(x, 10.0) == 4


class TestScanCompact:
    def test_inclusive_scan(self, device):
        x = dvec(device, [1.0, 2.0, 3.0, 4.0])
        out = device.zeros(4, np.float64)
        R.inclusive_scan(x, out)
        assert np.array_equal(out.data, [1.0, 3.0, 6.0, 10.0])

    def test_scan_size_mismatch(self, device):
        from repro.errors import DeviceArrayError

        x = dvec(device, [1.0, 2.0])
        out = device.zeros(3, np.float64)
        with pytest.raises(DeviceArrayError):
            R.inclusive_scan(x, out)

    def test_compact_indices(self, device):
        mask = dvec(device, [0.0, 1.0, 0.0, 1.0, 1.0])
        hits = R.compact_indices(mask)
        assert np.array_equal(hits, [1, 3, 4])

    def test_compact_empty(self, device):
        mask = dvec(device, [0.0, 0.0])
        assert R.compact_indices(mask).size == 0


@settings(max_examples=30, deadline=None)
@given(x=arrays(np.float64, st.integers(1, 500),
                elements=st.floats(-1e6, 1e6, allow_nan=False)))
def test_reduction_properties(x):
    dev = Device(GTX280_PARAMS)
    d = dev.to_device(x)
    assert R.reduce_min(d) == pytest.approx(x.min())
    assert R.reduce_max(d) == pytest.approx(x.max())
    idx, val = R.argmin(d)
    assert val == pytest.approx(x.min())
    assert x[idx] == pytest.approx(val)
    # tie-break: no earlier index attains the min
    assert not np.any(x[:idx] == x.min()) or x.min() != val


@settings(max_examples=30, deadline=None)
@given(
    x=arrays(np.float64, st.integers(1, 300),
             elements=st.floats(-100, 100, allow_nan=False)),
    threshold=st.floats(-100, 100, allow_nan=False),
)
def test_first_below_matches_linear_scan(x, threshold):
    dev = Device(GTX280_PARAMS)
    got = R.first_index_below(dev.to_device(x), threshold)
    hits = np.nonzero(x < threshold)[0]
    expected = int(hits[0]) if hits.size else R.NO_INDEX
    assert got == expected

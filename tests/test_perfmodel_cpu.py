"""Tests for the sequential CPU roofline model and its recorder."""

import numpy as np
import pytest

from repro.perfmodel.cpu_model import CpuCostModel, CpuCostRecorder, CpuModelParams
from repro.perfmodel.ops import OpCost
from repro.perfmodel.presets import CORE2_CPU_PARAMS, MODERN_CPU_PARAMS


@pytest.fixture
def model() -> CpuCostModel:
    return CpuCostModel(CORE2_CPU_PARAMS)


class TestParams:
    def test_bad_flops(self):
        with pytest.raises(ValueError):
            CpuModelParams(sustained_flops_fp32=0)

    def test_bad_bandwidth(self):
        with pytest.raises(ValueError):
            CpuModelParams(mem_bandwidth=-1)

    def test_bad_cache_fraction(self):
        with pytest.raises(ValueError):
            CpuModelParams(cache_hit_fraction=1.0)

    def test_dtype_rates(self):
        p = CORE2_CPU_PARAMS
        assert p.sustained_flops(np.float32) == p.sustained_flops_fp32
        assert p.sustained_flops(np.float64) == p.sustained_flops_fp64


class TestOpTime:
    def test_overhead_floor(self, model):
        assert model.op_time(OpCost()) == pytest.approx(CORE2_CPU_PARAMS.call_overhead)

    def test_compute_bound(self, model):
        t = model.op_time(OpCost(flops=8e9), np.float64)
        assert t == pytest.approx(CORE2_CPU_PARAMS.call_overhead + 1.0)

    def test_memory_bound_uses_roofline_max(self, model):
        c = OpCost(flops=1e3, bytes_read=6.4e9 * 10)
        t = model.op_time(c, np.float64)
        # memory term dominates; cache fraction discounts it
        expected_mem = 6.4e9 * 10 * (1 - CORE2_CPU_PARAMS.cache_hit_fraction) / 6.4e9
        assert t == pytest.approx(CORE2_CPU_PARAMS.call_overhead + expected_mem)

    def test_strided_amplification(self):
        p = CpuModelParams(cache_hit_fraction=0.0)
        model = CpuCostModel(p)
        unit = model.op_time(OpCost(bytes_read=1e6, coalesced_fraction=1.0), np.float64)
        strided = model.op_time(OpCost(bytes_read=1e6, coalesced_fraction=0.0), np.float64)
        assert strided > unit

    def test_fp32_twice_fp64_rate(self, model):
        c = OpCost(flops=1e9)
        assert model.op_time(c, np.float64) > model.op_time(c, np.float32)


class TestRecorder:
    def test_accumulates(self, model):
        rec = CpuCostRecorder(model)
        s1 = rec.charge("gemv", OpCost(flops=1e6))
        s2 = rec.charge("gemv", OpCost(flops=1e6))
        assert rec.total_seconds == pytest.approx(s1 + s2)
        assert rec.by_op["gemv"] == pytest.approx(s1 + s2)
        assert rec.op_count == 2

    def test_separate_names(self, model):
        rec = CpuCostRecorder(model)
        rec.charge("a", OpCost(flops=1e6))
        rec.charge("b", OpCost(flops=2e6))
        assert set(rec.by_op) == {"a", "b"}
        assert rec.by_op["b"] > rec.by_op["a"]

    def test_reset(self, model):
        rec = CpuCostRecorder(model)
        rec.charge("a", OpCost(flops=1e6))
        rec.reset()
        assert rec.total_seconds == 0.0
        assert rec.by_op == {}
        assert rec.op_count == 0

    def test_dtype_respected(self, model):
        r32 = CpuCostRecorder(model, dtype=np.float32)
        r64 = CpuCostRecorder(model, dtype=np.float64)
        c = OpCost(flops=1e9)
        assert r64.charge("x", c) > r32.charge("x", c)

    def test_modern_cpu_faster(self):
        old = CpuCostRecorder(CpuCostModel(CORE2_CPU_PARAMS))
        new = CpuCostRecorder(CpuCostModel(MODERN_CPU_PARAMS))
        c = OpCost(flops=1e9, bytes_read=1e8)
        assert new.charge("x", c) < old.charge("x", c)

"""Thread-level SIMT interpreter tests: the ground truth for block kernels."""

import numpy as np
import pytest

from repro.errors import DeviceError, InvalidLaunchError
from repro.gpu.simt import (
    SharedMemory,
    SimtBarrierError,
    SimtEngine,
    simt_block_sum,
    simt_dot_partial,
    simt_ratio_test,
    simt_vector_add,
)
from repro.perfmodel.gpu_model import GpuModelParams


@pytest.fixture
def engine() -> SimtEngine:
    return SimtEngine()


class TestVectorAdd:
    def test_exact(self, engine, rng):
        n = 1000
        x, y = rng.normal(size=n), rng.normal(size=n)
        out = np.zeros(n)
        stats = engine.run(simt_vector_add, 4, 256, x, y, out)
        np.testing.assert_allclose(out, x + y)
        assert stats.blocks == 4
        assert stats.threads == 1024

    def test_guard_clause_handles_partial_block(self, engine):
        x = np.ones(10)
        out = np.zeros(10)
        engine.run(simt_vector_add, 1, 32, x, x, out)  # 22 idle threads
        np.testing.assert_allclose(out, 2.0)


class TestBlockReduction:
    def test_block_sum_matches_numpy(self, engine, rng):
        n, block = 1000, 128
        grid = -(-n // block)
        x = rng.normal(size=n)
        partials = np.zeros(grid)
        stats = engine.run(simt_block_sum, grid, block, x, partials)
        assert partials.sum() == pytest.approx(x.sum())
        # one barrier after load + one per tree level (log2(128) = 7)
        assert stats.barriers == grid * (1 + 7)

    def test_dot_partial_grid_stride(self, engine, rng):
        n = 700
        x, y = rng.normal(size=n), rng.normal(size=n)
        partials = np.zeros(2)
        engine.run(simt_dot_partial, 2, 64, x, y, partials)
        assert partials.sum() == pytest.approx(float(x @ y))

    def test_warp_count(self, engine):
        x = np.ones(256)
        partials = np.zeros(2)
        stats = engine.run(simt_block_sum, 2, 128, x, partials)
        assert stats.warps == 2 * 4  # 128 threads = 4 warps per block


class TestRatioTestKernel:
    def test_matches_block_kernel(self, engine, device, rng):
        """The SIMT per-thread body and the block-level kernel agree."""
        from repro.core.gpu_kernels import ratio_kernel

        m = 300
        beta = np.abs(rng.normal(size=m))
        alpha = rng.normal(size=m)
        tol = 1e-9

        simt_out = np.zeros(m)
        engine.run(simt_ratio_test, -(-m // 128), 128, beta, alpha, simt_out, tol)

        b = device.to_device(beta)
        a = device.to_device(alpha)
        r = device.zeros(m, np.float64)
        ratio_kernel(device, b, a, r, tol)
        np.testing.assert_allclose(r.data, simt_out)


class TestBarrierSemantics:
    def test_barrier_divergence_detected(self, engine):
        def bad_kernel(t):
            if t.thread_idx == 0:
                return  # exits before the barrier the others reach
            yield

        with pytest.raises(SimtBarrierError):
            engine.run(bad_kernel, 1, 4)

    def test_uniform_exit_ok(self, engine):
        def fine_kernel(t):
            yield
            yield

        stats = engine.run(fine_kernel, 2, 8)
        assert stats.barriers == 2 * 2

    def test_launch_limits(self, engine):
        with pytest.raises(InvalidLaunchError):
            engine.run(simt_vector_add, 0, 32, np.zeros(1), np.zeros(1), np.zeros(1))
        with pytest.raises(InvalidLaunchError):
            engine.run(simt_vector_add, 1, 4096, np.zeros(1), np.zeros(1), np.zeros(1))


class TestSharedMemory:
    def test_same_array_per_block(self, engine):
        seen = []

        def k(t):
            s = t.shared.alloc("buf", 4)
            seen.append((t.block_idx, s))
            return
            yield

        engine.run(k, 2, 3)
        # 3 threads share within a block; blocks get distinct buffers
        block0 = [s for b, s in seen if b == 0]
        block1 = [s for b, s in seen if b == 1]
        assert all(s is block0[0] for s in block0)
        assert all(s is block1[0] for s in block1)
        assert block0[0] is not block1[0]

    def test_overflow(self):
        shared = SharedMemory(limit_bytes=64)
        shared.alloc("a", 8, np.float64)  # 64 bytes: exactly fits
        with pytest.raises(DeviceError):
            shared.alloc("b", 1, np.float64)

    def test_alloc_idempotent(self):
        shared = SharedMemory(limit_bytes=1024)
        a = shared.alloc("x", 4)
        b = shared.alloc("x", 4)
        assert a is b


class TestThreadCtx:
    def test_indexing(self, engine):
        records = []

        def k(t):
            records.append((t.global_id, t.warp_id, t.lane))
            return
            yield

        engine.run(k, 2, 64)
        gids = [r[0] for r in records]
        assert gids == list(range(128))
        assert records[33][1] == 1  # thread 33 is in warp 1
        assert records[33][2] == 1  # lane 1

    def test_custom_params(self):
        engine = SimtEngine(GpuModelParams(warp_size=16, max_threads_per_block=64))
        records = []

        def k(t):
            records.append(t.warp_id)
            return
            yield

        stats = engine.run(k, 1, 32)
        assert stats.warps == 2
        assert records[16] == 1

"""Tests for the GPU full-tableau simplex (A3 design point)."""

import numpy as np
import pytest

from conftest import TEXTBOOK_OPTIMUM, assert_matches_oracle
from repro.core.gpu_tableau_simplex import GpuTableauSimplex
from repro.errors import SolverError
from repro.lp.generators import random_dense_lp, random_sparse_lp, transportation_lp
from repro.simplex.options import SolverOptions
from repro.status import SolveStatus


def solve_gpu(lp, **kw):
    return GpuTableauSimplex(SolverOptions(**kw)).solve(lp)


class TestBasicOutcomes:
    def test_textbook(self, textbook_lp):
        r = solve_gpu(textbook_lp)
        assert r.status is SolveStatus.OPTIMAL
        assert r.objective == pytest.approx(TEXTBOOK_OPTIMUM)
        assert r.solver == "gpu-tableau"

    def test_infeasible(self, infeasible_lp):
        assert solve_gpu(infeasible_lp).status is SolveStatus.INFEASIBLE

    def test_unbounded(self, unbounded_lp):
        assert solve_gpu(unbounded_lp).status is SolveStatus.UNBOUNDED

    def test_equality(self, equality_lp):
        assert_matches_oracle(equality_lp, solve_gpu(equality_lp, dtype=np.float64))

    def test_iteration_limit(self, textbook_lp):
        assert solve_gpu(textbook_lp, max_iterations=1).status is SolveStatus.ITERATION_LIMIT


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(3))
    def test_random_dense(self, seed):
        lp = random_dense_lp(20, 30, seed=seed)
        assert_matches_oracle(lp, solve_gpu(lp, dtype=np.float64))

    def test_sparse_input_is_densified(self):
        lp = random_sparse_lp(20, 30, density=0.2, seed=1)
        assert_matches_oracle(lp, solve_gpu(lp, dtype=np.float64))

    def test_transportation(self):
        lp = transportation_lp(4, 5, seed=0)
        assert_matches_oracle(lp, solve_gpu(lp, pricing="hybrid", dtype=np.float64))


class TestOptions:
    def test_devex_rejected(self):
        with pytest.raises(SolverError):
            GpuTableauSimplex(SolverOptions(pricing="devex"))

    @pytest.mark.parametrize("pricing", ["dantzig", "bland", "hybrid"])
    def test_pricing(self, pricing, textbook_lp):
        r = solve_gpu(textbook_lp, pricing=pricing)
        assert r.objective == pytest.approx(TEXTBOOK_OPTIMUM)


class TestAgreement:
    @pytest.mark.parametrize("seed", range(3))
    def test_same_pivots_as_cpu_tableau(self, seed):
        from repro.simplex.tableau import TableauSimplexSolver

        lp = random_dense_lp(18, 25, seed=seed + 300)
        rg = solve_gpu(lp, dtype=np.float64)
        rc = TableauSimplexSolver(SolverOptions(dtype=np.float64)).solve(lp)
        assert rg.iterations.total_iterations == rc.iterations.total_iterations
        assert rg.objective == pytest.approx(rc.objective, rel=1e-8)


class TestDeviceBehaviour:
    def test_tableau_ger_moves_the_most_data(self):
        """The rank-1 full-tableau update is the dominant data mover (the
        strided pivot-row extraction can cost more *time* at low device
        fill — a real GT200 effect the model reproduces — but GER owns the
        traffic)."""
        lp = random_dense_lp(256, 256, seed=5)
        solver = GpuTableauSimplex(SolverOptions(pricing="dantzig"))
        r = solver.solve(lp)
        by_bytes = {
            name: rec.bytes for name, rec in solver.device.stats.by_kernel.items()
        }
        assert by_bytes["kernel.tableau_ger"] == max(by_bytes.values())
        # and it is at least a top-3 time consumer
        top3 = sorted(r.extra["by_kernel"], key=r.extra["by_kernel"].get)[-3:]
        assert "kernel.tableau_ger" in top3

    def test_memory_released(self, textbook_lp):
        solver = GpuTableauSimplex()
        solver.solve(textbook_lp)
        assert solver.device.stats.bytes_in_use == 0

    def test_per_iteration_cost_exceeds_revised_on_dense_square(self):
        """Θ(mn) tableau pivots cost more than revised's BLAS-2 iteration
        once pricing is the same size — on square dense instances the two
        are comparable, on wide ones the tableau pays."""
        from repro.core.gpu_revised_simplex import GpuRevisedSimplex

        lp = random_dense_lp(32, 512, seed=6)
        rt = solve_gpu(lp)
        rr = GpuRevisedSimplex(SolverOptions(pricing="dantzig")).solve(lp)
        t_tab = rt.timing.modeled_seconds / max(1, rt.iterations.total_iterations)
        t_rev = rr.timing.modeled_seconds / max(1, rr.iterations.total_iterations)
        assert t_tab > 0 and t_rev > 0

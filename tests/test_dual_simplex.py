"""Tests for the dual simplex and the warm re-optimisation workflow."""

import numpy as np
import pytest

from conftest import assert_matches_oracle, scipy_oracle
from repro import solve
from repro.errors import SolverError
from repro.lp.generators import random_dense_lp, random_sparse_lp
from repro.lp.problem import LPProblem
from repro.simplex.dual import DualSimplexSolver
from repro.simplex.options import SolverOptions
from repro.status import SolveStatus


def perturb_rhs(lp, factors):
    return LPProblem(c=lp.c, a=lp.a_dense(), senses=lp.senses,
                     b=lp.b * factors, bounds=lp.bounds, maximize=lp.maximize,
                     name=lp.name + "+rhs")


class TestWarmReoptimisation:
    @pytest.mark.parametrize("seed", range(4))
    def test_rhs_perturbation_reaches_oracle(self, seed):
        lp = random_dense_lp(20, 30, seed=seed)
        first = solve(lp, method="revised")
        rng = np.random.default_rng(seed)
        lp2 = perturb_rhs(lp, rng.uniform(0.7, 1.2, 20))
        r = solve(lp2, method="dual", initial_basis=first.extra["basis"])
        assert_matches_oracle(lp2, r)

    def test_fewer_iterations_than_cold(self):
        lp = random_dense_lp(40, 60, seed=11)
        first = solve(lp, method="revised")
        lp2 = perturb_rhs(lp, np.linspace(0.85, 1.1, 40))
        cold = solve(lp2, method="revised")
        warm = solve(lp2, method="dual", initial_basis=first.extra["basis"])
        assert warm.solver == "dual-cpu"  # no fallback occurred
        assert warm.iterations.total_iterations < cold.iterations.total_iterations

    def test_unperturbed_restart_is_instant(self):
        lp = random_dense_lp(15, 20, seed=3)
        first = solve(lp, method="revised")
        again = solve(lp, method="dual", initial_basis=first.extra["basis"])
        assert again.iterations.total_iterations <= 1
        assert again.objective == pytest.approx(first.objective)

    def test_sparse_instance(self):
        lp = random_sparse_lp(25, 40, density=0.2, seed=5)
        first = solve(lp, method="revised")
        lp2 = perturb_rhs(lp, np.linspace(0.8, 1.05, 25))
        r = solve(lp2, method="dual", initial_basis=first.extra["basis"])
        assert_matches_oracle(lp2, r)

    def test_rhs_shrunk_to_infeasible(self):
        """Forcing a >= -style conflict via negative rhs on an eq row."""
        lp = LPProblem.minimize(
            c=[1.0, 1.0],
            a_ub=[[1.0, 1.0]], b_ub=[1.0],
            a_eq=[[1.0, 1.0]], b_eq=[1.0],
        )
        first = solve(lp, method="revised")
        assert first.is_optimal
        # now demand sum = 3 while keeping sum <= 1: infeasible
        lp2 = LPProblem.minimize(
            c=[1.0, 1.0],
            a_ub=[[1.0, 1.0]], b_ub=[1.0],
            a_eq=[[1.0, 1.0]], b_eq=[3.0],
        )
        r = solve(lp2, method="dual", initial_basis=first.extra["basis"])
        assert r.status is SolveStatus.INFEASIBLE


class TestStartHandling:
    def test_cold_start_falls_back_when_dual_infeasible(self):
        """Random max-LPs have dual-infeasible slack bases: fallback runs."""
        lp = random_dense_lp(12, 16, seed=1)
        r = solve(lp, method="dual")
        assert r.is_optimal
        assert "primal-fallback" in r.solver
        assert "dual_fallback_reason" in r.extra

    def test_fallback_disabled_raises(self):
        lp = random_dense_lp(12, 16, seed=1)
        solver = DualSimplexSolver(SolverOptions(), allow_primal_fallback=False)
        with pytest.raises(SolverError):
            solver.solve(lp)

    def test_cold_start_succeeds_when_slack_basis_dual_feasible(self):
        """min with c >= 0 over <= rows: the slack basis is dual feasible
        and primal feasible, so the dual solver accepts and stops at once."""
        lp = LPProblem.minimize(
            c=[2.0, 3.0], a_ub=[[1.0, 1.0], [1.0, 2.0]], b_ub=[4.0, 6.0],
        )
        r = solve(lp, method="dual")
        assert r.is_optimal
        assert r.solver == "dual-cpu"
        assert r.objective == pytest.approx(0.0)  # x = 0 is optimal

    def test_genuine_dual_cold_start(self):
        """c >= 0 minimisation with >= rows: slack basis dual feasible but
        primal infeasible — the dual simplex's textbook use case, no warm
        hint needed."""
        lp = LPProblem.minimize(
            c=[3.0, 2.0],
            a_ub=[[-1.0, -1.0], [-2.0, -1.0]],  # x+y >= 4, 2x+y >= 5
            b_ub=[-4.0, -5.0],
        )
        ref = scipy_oracle(lp)
        # standard form flips these rows; the crash basis is artificial-free?
        r = solve(lp, method="dual")
        assert r.is_optimal
        assert r.objective == pytest.approx(ref, rel=1e-8)

    def test_certificate_attached(self):
        lp = random_dense_lp(10, 14, seed=2)
        first = solve(lp, method="revised")
        lp2 = perturb_rhs(lp, np.linspace(0.9, 1.05, 10))
        r = solve(lp2, method="dual", initial_basis=first.extra["basis"])
        if r.solver == "dual-cpu" and r.is_optimal:
            assert r.extra["certificate"].is_optimal_certificate(1e-6)

    def test_bad_pricing_rejected(self):
        with pytest.raises(SolverError):
            DualSimplexSolver(SolverOptions(pricing="devex"))

    @pytest.mark.parametrize("rule", ["dantzig", "bland"])
    def test_row_choice_rules(self, rule):
        lp = random_dense_lp(15, 20, seed=6)
        first = solve(lp, method="revised")
        lp2 = perturb_rhs(lp, np.linspace(0.8, 1.1, 15))
        r = solve(lp2, method="dual", pricing=rule,
                  initial_basis=first.extra["basis"])
        assert_matches_oracle(lp2, r)

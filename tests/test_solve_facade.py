"""Tests for the top-level solve() façade and package exports."""

import numpy as np
import pytest

import repro
from conftest import TEXTBOOK_OPTIMUM
from repro import LPProblem, SolveStatus, available_methods, solve
from repro.errors import UnknownMethodError
from repro.simplex.options import SolverOptions


class TestDispatch:
    @pytest.mark.parametrize(
        "method",
        ["tableau", "revised", "revised-sparse",
         "gpu-revised", "gpu-revised-sparse", "gpu-tableau"],
    )
    def test_all_methods_reachable(self, method, textbook_lp):
        r = solve(textbook_lp, method=method)
        assert r.status is SolveStatus.OPTIMAL
        assert r.objective == pytest.approx(TEXTBOOK_OPTIMUM)

    def test_available_methods(self):
        assert set(available_methods()) == {
            "tableau", "revised", "revised-bounded", "revised-sparse", "dual",
            "gpu-revised", "gpu-revised-sparse", "gpu-revised-bounded",
            "gpu-tableau", "pdlp", "gpu-pdlp",
        }

    def test_docstring_lists_every_method(self):
        # Regression: the module docstring advertised 5 of the 7 registered
        # methods ("dual" and "gpu-revised-bounded" were missing).  Tie the
        # docstring to the registry so it cannot drift again.
        import importlib

        solve_mod = importlib.import_module("repro.solve")
        doc = solve_mod.__doc__
        assert doc is not None
        for name in solve_mod._METHODS:
            assert f'"{name}"' in doc, (
                f"method {name!r} is registered in _METHODS but not described "
                "in the repro.solve module docstring"
            )

    def test_unknown_method(self, textbook_lp):
        with pytest.raises(UnknownMethodError):
            solve(textbook_lp, method="quantum")

    def test_non_problem_rejected(self):
        with pytest.raises(TypeError):
            solve("not an lp")  # type: ignore[arg-type]

    def test_option_overrides(self, textbook_lp):
        r = solve(textbook_lp, method="revised", pricing="bland", max_iterations=500)
        assert r.objective == pytest.approx(TEXTBOOK_OPTIMUM)

    def test_options_object_plus_overrides(self, textbook_lp):
        opts = SolverOptions(pricing="bland")
        r = solve(textbook_lp, method="revised", options=opts, pricing="dantzig")
        assert r.objective == pytest.approx(TEXTBOOK_OPTIMUM)

    def test_invalid_override_rejected(self, textbook_lp):
        from repro.errors import SolverError

        with pytest.raises(SolverError):
            solve(textbook_lp, method="revised", pricing="nope")


class TestMethodRegistry:
    """The declarative method table (repro.engine.registry) drives dispatch."""

    def test_facade_dispatches_from_registry(self):
        import importlib

        from repro.engine.registry import METHODS

        solve_mod = importlib.import_module("repro.solve")
        assert solve_mod._METHODS is METHODS

    def test_registry_flags_match_backend_capabilities(self):
        # A spec's supports_warm_start flag must agree with what the
        # constructed backend actually accepts — the registry is a claim,
        # the backend class attribute is the implementation.
        from repro.engine import SolverBackend
        from repro.engine.registry import METHODS

        for name, spec in METHODS.items():
            backend = spec.factory(SolverOptions(), None)
            assert isinstance(backend, SolverBackend), name
            assert backend.accepts_warm_start == spec.supports_warm_start, name

    def test_registry_capability_sets(self):
        from repro.engine.registry import device_methods, warm_start_methods

        assert device_methods() == {
            "gpu-revised", "gpu-revised-sparse", "gpu-revised-bounded",
            "gpu-tableau", "gpu-pdlp",
        }
        assert warm_start_methods() == {
            "revised", "revised-sparse", "dual",
            "gpu-revised", "gpu-revised-sparse",
        }

    def test_batch_sets_derive_from_registry(self):
        from repro.batch import GPU_METHODS, WARM_START_METHODS
        from repro.engine.registry import device_methods, warm_start_methods

        assert GPU_METHODS == device_methods()
        assert WARM_START_METHODS == warm_start_methods()

    @pytest.mark.parametrize(
        "method", ["tableau", "revised-bounded", "gpu-revised-bounded", "gpu-tableau"]
    )
    def test_uniform_warm_start_rejection(self, method, textbook_lp):
        from repro.errors import SolverError

        with pytest.raises(SolverError, match="does not support warm start"):
            solve(textbook_lp, method=method, initial_basis=np.arange(3))

    @pytest.mark.parametrize("method", ["tableau", "revised", "revised-bounded", "dual"])
    def test_uniform_device_rejection(self, method, textbook_lp):
        from repro.errors import SolverError
        from repro.gpu.device import Device
        from repro.perfmodel.presets import GTX280_PARAMS

        with pytest.raises(SolverError, match="runs on the host"):
            solve(textbook_lp, method=method, device=Device(GTX280_PARAMS))

    def test_direct_backend_call_rejects_unsupported_hint(self, textbook_lp):
        # Bypassing the façade must not bypass the capability check: the
        # engine lifecycle enforces accepts_warm_start itself.
        from repro.errors import SolverError
        from repro.simplex.tableau import TableauSimplexSolver

        with pytest.raises(SolverError, match="initial basis hint"):
            TableauSimplexSolver(SolverOptions()).solve(
                textbook_lp, initial_basis_hint=np.arange(3)
            )


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_docstring_example(self):
        lp = LPProblem.minimize(
            c=[-3.0, -5.0],
            a_ub=[[1.0, 0.0], [0.0, 2.0], [3.0, 2.0]],
            b_ub=[4.0, 12.0, 18.0],
        )
        result = solve(lp, method="gpu-revised")
        assert result.status is SolveStatus.OPTIMAL
        assert result.objective == pytest.approx(-36.0)

    def test_status_helpers(self):
        assert SolveStatus.OPTIMAL.is_terminal_success
        assert SolveStatus.INFEASIBLE.is_terminal_success
        assert not SolveStatus.ITERATION_LIMIT.is_terminal_success
        assert str(SolveStatus.UNBOUNDED) == "unbounded"


class TestResultHelpers:
    def test_residual_computation(self):
        from repro.result import SolveResult

        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        b = np.array([5.0, 11.0])
        x = np.array([1.0, 2.0])
        res = SolveResult.compute_residuals(a, b, x)
        assert res["primal_infeasibility"] == pytest.approx(0.0)

    def test_residual_with_bounds(self):
        from repro.result import SolveResult

        res = SolveResult.compute_residuals(
            np.zeros((0, 2)), np.zeros(0), np.array([-1.0, 5.0]),
            lower=np.array([0.0, 0.0]), upper=np.array([np.inf, 4.0]),
        )
        assert res["bound_infeasibility"] == pytest.approx(1.0)

    def test_breakdown_fractions(self):
        from repro.result import TimingStats

        t = TimingStats(kernel_breakdown={"a": 3.0, "b": 1.0})
        f = t.breakdown_fractions()
        assert f["a"] == pytest.approx(0.75)
        assert f["b"] == pytest.approx(0.25)

    def test_breakdown_fractions_empty(self):
        from repro.result import TimingStats

        assert TimingStats(kernel_breakdown={"a": 0.0}).breakdown_fractions() == {"a": 0.0}

    def test_merge_kernel_breakdowns(self):
        from repro.result import merge_kernel_breakdowns

        merged = merge_kernel_breakdowns({"a": 1.0}, {"a": 2.0, "b": 3.0})
        assert merged == {"a": 3.0, "b": 3.0}

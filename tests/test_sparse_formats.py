"""Tests for the COO/CSR/CSC sparse formats (scipy is the oracle)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import SparseFormatError
from repro.sparse import CooMatrix, CscMatrix, CsrMatrix


@pytest.fixture
def small_dense():
    """The worked example matrix from the sparse-formats literature."""
    return np.array([[0.0, 1.0, 5.0], [0.0, 0.0, 4.0], [1.0, 0.0, 0.0]])


class TestCoo:
    def test_from_dense(self, small_dense):
        coo = CooMatrix.from_dense(small_dense)
        assert coo.nnz == 4
        assert np.array_equal(coo.row, [0, 0, 1, 2])
        assert np.array_equal(coo.col, [1, 2, 2, 0])
        assert np.array_equal(coo.val, [1.0, 5.0, 4.0, 1.0])

    def test_to_dense_roundtrip(self, small_dense):
        assert np.array_equal(CooMatrix.from_dense(small_dense).to_dense(), small_dense)

    def test_canonical_sort(self):
        coo = CooMatrix((2, 2), [1, 0], [0, 1], [3.0, 4.0])
        assert np.array_equal(coo.row, [0, 1])
        assert np.array_equal(coo.val, [4.0, 3.0])

    def test_duplicates_summed(self):
        coo = CooMatrix((2, 2), [0, 0], [1, 1], [2.0, 3.0])
        assert coo.nnz == 1
        assert coo.to_dense()[0, 1] == 5.0

    def test_duplicates_rejected_when_asked(self):
        with pytest.raises(SparseFormatError):
            CooMatrix((2, 2), [0, 0], [1, 1], [2.0, 3.0], sum_duplicates=False)

    def test_index_out_of_range(self):
        with pytest.raises(SparseFormatError):
            CooMatrix((2, 2), [2], [0], [1.0])
        with pytest.raises(SparseFormatError):
            CooMatrix((2, 2), [0], [-1], [1.0])

    def test_length_mismatch(self):
        with pytest.raises(SparseFormatError):
            CooMatrix((2, 2), [0], [0, 1], [1.0])

    def test_matvec(self, small_dense, rng):
        x = rng.normal(size=3)
        coo = CooMatrix.from_dense(small_dense)
        np.testing.assert_allclose(coo.matvec(x), small_dense @ x)

    def test_rmatvec(self, small_dense, rng):
        y = rng.normal(size=3)
        coo = CooMatrix.from_dense(small_dense)
        np.testing.assert_allclose(coo.rmatvec(y), small_dense.T @ y)

    def test_matvec_shape_check(self, small_dense):
        coo = CooMatrix.from_dense(small_dense)
        with pytest.raises(SparseFormatError):
            coo.matvec(np.zeros(4))

    def test_transpose(self, small_dense):
        coo = CooMatrix.from_dense(small_dense)
        assert np.array_equal(coo.transpose().to_dense(), small_dense.T)

    def test_prune(self):
        coo = CooMatrix((2, 2), [0, 1], [0, 1], [1e-12, 1.0])
        pruned = coo.prune(1e-9)
        assert pruned.nnz == 1

    def test_empty(self):
        coo = CooMatrix.empty((3, 4))
        assert coo.nnz == 0
        assert coo.to_dense().shape == (3, 4)
        assert coo.density == 0.0

    def test_bad_shape(self):
        with pytest.raises(SparseFormatError):
            CooMatrix((-1, 2), [], [], [])
        with pytest.raises(SparseFormatError):
            CooMatrix("nope", [], [], [])

    def test_non_integer_indices_rejected(self):
        with pytest.raises(SparseFormatError):
            CooMatrix((2, 2), [0.5], [0], [1.0])


class TestCsr:
    def test_from_dense_structure(self, small_dense):
        csr = CsrMatrix.from_dense(small_dense)
        assert np.array_equal(csr.indptr, [0, 2, 3, 4])
        assert np.array_equal(csr.indices, [1, 2, 2, 0])
        assert np.array_equal(csr.data, [1.0, 5.0, 4.0, 1.0])

    def test_to_dense(self, small_dense):
        assert np.array_equal(CsrMatrix.from_dense(small_dense).to_dense(), small_dense)

    def test_eye(self):
        eye = CsrMatrix.eye(4)
        assert np.array_equal(eye.to_dense(), np.eye(4))

    def test_matvec_with_empty_rows(self):
        dense = np.array([[0.0, 0.0], [3.0, 0.0], [0.0, 0.0]])
        csr = CsrMatrix.from_dense(dense)
        np.testing.assert_allclose(csr.matvec(np.array([2.0, 1.0])), [0.0, 6.0, 0.0])

    def test_matvec_oracle(self, rng):
        dense = sp.random(23, 17, density=0.2, random_state=7).toarray()
        csr = CsrMatrix.from_dense(dense)
        x = rng.normal(size=17)
        np.testing.assert_allclose(csr.matvec(x), dense @ x, atol=1e-12)

    def test_rmatvec_oracle(self, rng):
        dense = sp.random(23, 17, density=0.2, random_state=8).toarray()
        csr = CsrMatrix.from_dense(dense)
        y = rng.normal(size=23)
        np.testing.assert_allclose(csr.rmatvec(y), dense.T @ y, atol=1e-12)

    def test_getrow(self, small_dense):
        csr = CsrMatrix.from_dense(small_dense)
        cols, vals = csr.getrow(0)
        assert np.array_equal(cols, [1, 2])
        assert np.array_equal(vals, [1.0, 5.0])

    def test_getrow_out_of_range(self, small_dense):
        with pytest.raises(SparseFormatError):
            CsrMatrix.from_dense(small_dense).getrow(5)

    def test_getcol_dense(self, small_dense):
        csr = CsrMatrix.from_dense(small_dense)
        np.testing.assert_allclose(csr.getcol_dense(2), [5.0, 4.0, 0.0])

    def test_structural_validation(self):
        with pytest.raises(SparseFormatError):
            CsrMatrix((2, 2), [1, 1, 1], [0], [1.0])  # indptr must start at 0
        with pytest.raises(SparseFormatError):
            CsrMatrix((2, 2), [0, 2, 1], [0, 1, 0], [1.0, 1.0, 1.0])  # decreasing
        with pytest.raises(SparseFormatError):
            CsrMatrix((2, 2), [0, 2, 2], [1, 0], [1.0, 1.0])  # unsorted in row
        with pytest.raises(SparseFormatError):
            CsrMatrix((2, 2), [0, 1, 2], [0, 5], [1.0, 1.0])  # col out of range

    def test_prune(self):
        dense = np.array([[1e-15, 2.0], [0.5, 1e-14]])
        pruned = CsrMatrix.from_dense(dense).prune(1e-9)
        assert pruned.nnz == 2
        np.testing.assert_allclose(
            pruned.to_dense(), np.array([[0.0, 2.0], [0.5, 0.0]])
        )

    def test_transpose(self, small_dense):
        csr = CsrMatrix.from_dense(small_dense)
        assert np.array_equal(csr.transpose().to_dense(), small_dense.T)


class TestCsc:
    def test_from_dense(self, small_dense):
        csc = CscMatrix.from_dense(small_dense)
        assert np.array_equal(csc.indptr, [0, 1, 2, 4])
        assert np.array_equal(csc.indices, [2, 0, 0, 1])
        assert np.array_equal(csc.data, [1.0, 1.0, 5.0, 4.0])

    def test_getcol(self, small_dense):
        csc = CscMatrix.from_dense(small_dense)
        rows, vals = csc.getcol(2)
        assert np.array_equal(rows, [0, 1])
        assert np.array_equal(vals, [5.0, 4.0])

    def test_getcol_dense(self, small_dense):
        csc = CscMatrix.from_dense(small_dense)
        np.testing.assert_allclose(csc.getcol_dense(0), [0.0, 0.0, 1.0])

    def test_getcol_out_of_range(self, small_dense):
        with pytest.raises(SparseFormatError):
            CscMatrix.from_dense(small_dense).getcol(3)

    def test_matvec_rmatvec_oracle(self, rng):
        dense = sp.random(19, 31, density=0.15, random_state=9).toarray()
        csc = CscMatrix.from_dense(dense)
        x, y = rng.normal(size=31), rng.normal(size=19)
        np.testing.assert_allclose(csc.matvec(x), dense @ x, atol=1e-12)
        np.testing.assert_allclose(csc.rmatvec(y), dense.T @ y, atol=1e-12)

    def test_col_nnz(self, small_dense):
        csc = CscMatrix.from_dense(small_dense)
        assert np.array_equal(csc.col_nnz(), [1, 1, 2])

    def test_transpose(self, small_dense):
        csc = CscMatrix.from_dense(small_dense)
        assert np.array_equal(csc.transpose().to_dense(), small_dense.T)

    def test_structural_validation(self):
        with pytest.raises(SparseFormatError):
            CscMatrix((2, 2), [0, 1, 2], [3, 0], [1.0, 1.0])  # row out of range


class TestConversions:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_full_conversion_cycle(self, seed):
        dense = sp.random(13, 29, density=0.25, random_state=seed).toarray()
        coo = CooMatrix.from_dense(dense)
        for converted in (
            coo.tocsr(), coo.tocsc(),
            coo.tocsr().tocoo(), coo.tocsc().tocoo(),
            coo.tocsr().tocsc(), coo.tocsc().tocsr(),
        ):
            np.testing.assert_allclose(converted.to_dense(), dense)

    def test_nnz_preserved(self):
        dense = sp.random(10, 10, density=0.3, random_state=3).toarray()
        coo = CooMatrix.from_dense(dense)
        assert coo.tocsr().nnz == coo.nnz
        assert coo.tocsc().nnz == coo.nnz

    def test_density(self):
        m = CooMatrix((4, 5), [0], [0], [1.0])
        assert m.density == pytest.approx(1 / 20)

"""Tests for the benchmark harness and report rendering."""

import numpy as np
import pytest

from repro.bench.harness import (
    SweepRecord,
    dense_sweep,
    find_crossover,
    relative_error,
    run_method,
    scipy_reference,
    sparse_sweep,
    speedup_series,
)
from repro.bench.tables import Report, Table, ascii_series
from repro.lp.generators import random_dense_lp


class TestTable:
    def test_render_alignment(self):
        t = Table(["name", "value"])
        t.add_row("a", 1.5)
        t.add_row("bb", 23456.789)
        out = t.render()
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert all(len(l) == len(lines[0]) for l in lines[1:])

    def test_row_width_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_csv(self):
        t = Table(["x", "y"])
        t.add_row(1, 2.5)
        assert t.to_csv() == "x,y\n1,2.5\n"

    def test_column_access(self):
        t = Table(["x", "y"])
        t.add_row(1, "a")
        t.add_row(2, "b")
        assert t.column("y") == ["a", "b"]

    def test_formatting_rules(self):
        t = Table(["v"])
        t.add_row(None)
        t.add_row(float("nan"))
        t.add_row(0.0)
        t.add_row(1e-9)
        t.add_row(123456.0)
        rendered = t.render()
        assert "-" in rendered and "nan" in rendered and "1e-09" in rendered

    def test_report_render(self):
        r = Report("T9", "demo")
        t = r.add_table(Table(["a"]))
        t.add_row(1)
        r.add_note("hello")
        out = r.render()
        assert "[T9] demo" in out
        assert "note: hello" in out

    def test_ascii_series(self):
        out = ascii_series([1, 2], [1.0, 2.0], width=10, label="lbl")
        assert "lbl" in out
        assert out.count("#") == 5 + 10  # half bar + full bar


class TestHarness:
    def test_run_method_record(self, textbook_lp):
        rec = run_method(textbook_lp, "revised")
        assert isinstance(rec, SweepRecord)
        assert rec.status == "optimal"
        assert rec.m == 3 and rec.n == 2
        assert rec.modeled_seconds > 0
        assert rec.per_iteration_us > 0

    def test_dense_sweep_shares_instances(self):
        sweeps = dense_sweep((16, 24), methods=("revised", "gpu-revised"),
                             dtype=np.float64)
        assert len(sweeps["revised"]) == 2
        for rc, rg in zip(sweeps["revised"], sweeps["gpu-revised"]):
            assert rc.objective == pytest.approx(rg.objective, rel=1e-8)

    def test_sparse_sweep(self):
        sweeps = sparse_sweep((20,), density=0.2, methods=("revised",),
                              dtype=np.float64)
        assert sweeps["revised"][0].status == "optimal"

    def test_speedup_series(self):
        sweeps = dense_sweep((16,), methods=("revised", "gpu-revised"))
        sp = speedup_series(sweeps["revised"], sweeps["gpu-revised"])
        assert len(sp) == 1 and sp[0] > 0

    def test_speedup_length_mismatch(self):
        with pytest.raises(ValueError):
            speedup_series([], [None])  # type: ignore[list-item]

    def test_speedup_size_mismatch_rejected(self):
        # Regression: pairing is positional, so sweeps over different
        # instance sizes used to produce silently garbage ratios.
        base = [run_method(random_dense_lp(12, 16, seed=0), "revised")]
        other = [run_method(random_dense_lp(16, 20, seed=0), "gpu-revised")]
        with pytest.raises(ValueError, match="12x16.*16x20"):
            speedup_series(base, other)

    def test_speedup_same_size_different_method_ok(self):
        lp = random_dense_lp(12, 16, seed=0)
        base = [run_method(lp, "revised")]
        other = [run_method(lp, "gpu-revised")]
        assert speedup_series(base, other)[0] > 0

    def test_sweep_record_phase_seconds_from_trace(self, textbook_lp):
        rec = run_method(textbook_lp, "gpu-revised", trace=True)
        assert rec.phase_seconds  # populated from the trace
        assert rec.phase_seconds == rec.result.trace.phase_seconds()
        plain = run_method(textbook_lp, "gpu-revised")
        # without a trace it falls back to the aggregate kernel breakdown
        assert plain.phase_seconds == dict(plain.result.timing.kernel_breakdown)

    def test_find_crossover_interpolates(self):
        assert find_crossover([100, 200], [0.5, 1.5]) == pytest.approx(150.0)

    def test_find_crossover_none(self):
        assert find_crossover([100, 200], [1.5, 2.5]) is None

    def test_relative_error(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)
        assert relative_error(0.5, 0.0) == pytest.approx(0.5)

    def test_scipy_reference(self, textbook_lp, infeasible_lp):
        assert scipy_reference(textbook_lp) == pytest.approx(36.0)
        assert scipy_reference(infeasible_lp) is None


class TestExperimentsSmoke:
    """Each experiment runs end-to-end at toy sizes and renders."""

    def test_t1(self):
        from repro.bench.experiments import t1_device_table

        out = t1_device_table().render()
        assert "GTX 280" in out

    def test_f1_f2_small(self):
        from repro.bench.experiments import f1_time_vs_size, f2_speedup

        assert "cpu ms" in f1_time_vs_size(sizes=(16, 32)).render()
        assert "speedup" in f2_speedup(sizes=(16, 32)).render()

    def test_f3_small(self):
        from repro.bench.experiments import f3_kernel_breakdown

        out = f3_kernel_breakdown(size=48).render()
        assert "pricing" in out and "ftran" in out

    def test_f4_small(self):
        from repro.bench.experiments import f4_precision

        assert "fp64/fp32" in f4_precision(sizes=(24,)).render()

    def test_f5_small(self):
        from repro.bench.experiments import f5_transfer_overhead

        assert "transfer %" in f5_transfer_overhead(sizes=(24,)).render()

    def test_a2_small(self):
        from repro.bench.experiments import a2_basis_update

        out = a2_basis_update(size=32).render()
        assert "pfi" in out and "explicit" in out

    def test_f6_small(self):
        from repro.bench.experiments import f6_sparse

        out = f6_sparse(sizes=(32,), density=0.1, crossover_sizes=(48,)).render()
        assert "nnz" in out
        assert "gpu-sp ms" in out and "sparse speedup" in out

    def test_s1_small(self):
        from repro.bench.experiments import s1_serving_fleet

        out = s1_serving_fleet(n_jobs=8, fleet_sizes=(1, 2)).render()
        assert "1 dev, sequential" in out
        assert "2 dev x4 streams" in out
        assert "cache hits" in out

    def test_o1_small(self):
        from repro.bench.experiments import o1_attribution

        out = o1_attribution(
            n_jobs=6, fleet_sizes=(1,), sweep_sizes=(24,)
        ).render()
        assert "1 dev x4 streams" in out
        assert "launch %" in out and "queue %" in out

    def test_dispatcher_unknown(self, capsys):
        from repro.bench.experiments import main

        assert main(["zz9"]) == 2

    def test_dispatcher_help(self, capsys):
        from repro.bench.experiments import main

        assert main([]) == 0
        assert "experiments:" in capsys.readouterr().out

    def test_dispatcher_runs_one(self, capsys):
        from repro.bench.experiments import main

        assert main(["t1"]) == 0
        assert "GTX 280" in capsys.readouterr().out

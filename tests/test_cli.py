"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.lp.generators import random_dense_lp
from repro.lp.mps import write_mps


@pytest.fixture
def mps_file(tmp_path):
    path = tmp_path / "instance.mps"
    write_mps(random_dense_lp(12, 16, seed=1), path)
    return str(path)


class TestSolve:
    def test_solve_default(self, mps_file, capsys):
        assert main(["solve", mps_file]) == 0
        out = capsys.readouterr().out
        assert "status=optimal" in out
        assert "objective:" in out

    @pytest.mark.parametrize("method", ["tableau", "revised", "gpu-tableau"])
    def test_solve_methods(self, method, mps_file, capsys):
        assert main(["solve", mps_file, "--method", method]) == 0
        assert "optimal" in capsys.readouterr().out

    def test_solve_fp32(self, mps_file, capsys):
        assert main(["solve", mps_file, "--dtype", "float32"]) == 0

    def test_solve_with_scale_and_presolve(self, mps_file, capsys):
        assert main(["solve", mps_file, "--scale", "--presolve"]) == 0

    def test_print_solution(self, mps_file, capsys):
        assert main(["solve", mps_file, "--print-solution"]) == 0
        out = capsys.readouterr().out
        assert " = " in out  # at least one variable line

    def test_infeasible_exit_code(self, tmp_path, capsys):
        from repro.lp.problem import LPProblem

        lp = LPProblem.minimize(c=[1.0], a_ub=[[1.0], [-1.0]], b_ub=[1.0, -3.0])
        path = tmp_path / "inf.mps"
        write_mps(lp, path)
        assert main(["solve", str(path)]) == 1
        assert "infeasible" in capsys.readouterr().out

    def test_iteration_limit_flag(self, mps_file, capsys):
        assert main(["solve", mps_file, "--max-iterations", "1"]) == 1
        assert "iteration_limit" in capsys.readouterr().out


class TestInfo:
    def test_info(self, mps_file, capsys):
        assert main(["info", mps_file]) == 0
        out = capsys.readouterr().out
        assert "12 rows x 16 cols" in out
        assert "senses" in out


class TestGenerate:
    def test_generate_dense(self, tmp_path, capsys):
        out = tmp_path / "g.mps"
        assert main(["generate", "dense", "8", "10", "--out", str(out)]) == 0
        assert out.exists()

    def test_generate_sparse(self, tmp_path):
        out = tmp_path / "s.mps"
        assert main(["generate", "sparse", "10", "30", "--density", "0.2",
                     "--out", str(out)]) == 0
        assert out.exists()

    def test_generate_transport(self, tmp_path):
        out = tmp_path / "t.mps"
        assert main(["generate", "transport", "3", "4", "--out", str(out)]) == 0
        assert out.exists()

    def test_generate_klee_minty(self, tmp_path):
        out = tmp_path / "k.mps"
        assert main(["generate", "klee-minty", "5", "--out", str(out)]) == 0
        assert out.exists()

    def test_generated_file_solves(self, tmp_path, capsys):
        out = tmp_path / "roundtrip.mps"
        main(["generate", "dense", "10", "12", "--out", str(out)])
        assert main(["solve", str(out), "--method", "revised"]) == 0

    def test_dense_requires_n(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "dense", "8", "--out", str(tmp_path / "x.mps")])


class TestOtherCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        assert "GTX 280" in capsys.readouterr().out

    def test_bench_t1(self, capsys):
        assert main(["bench", "t1"]) == 0
        assert "Modeled hardware" in capsys.readouterr().out

    def test_bench_unknown(self, capsys):
        assert main(["bench", "zz"]) == 2

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestServeCommand:
    def test_serve_default_trace(self, capsys):
        assert main(["serve", "--jobs", "8", "--devices", "2"]) == 0
        out = capsys.readouterr().out
        assert "served 8/8 jobs" in out
        assert "dev0" in out and "dev1" in out
        assert "cache:" in out

    def test_serve_jobs_table(self, capsys):
        assert main(["serve", "--jobs", "6", "--jobs-table"]) == 0
        out = capsys.readouterr().out
        assert "latency ms" in out
        assert "optimal" in out

    def test_serve_metrics_exposition(self, capsys):
        assert main(["serve", "--jobs", "6", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "repro_serve_jobs_submitted_total" in out
        assert "repro_serve_latency_quantile_seconds" in out
        # the exposition is valid Prometheus text
        from repro.metrics import validate_prometheus_text

        exposition = out[out.index("# HELP"):]
        assert validate_prometheus_text(exposition) > 0

    def test_serve_cpu_method(self, capsys):
        assert main(["serve", "--jobs", "4", "--method", "revised"]) == 0
        assert "cpu x4" in capsys.readouterr().out


class TestTraceCommand:
    def test_trace_mps_file(self, mps_file, capsys):
        assert main(["trace", mps_file, "--method", "gpu-revised"]) == 0
        out = capsys.readouterr().out
        assert "status=optimal" in out
        assert "time by solver section" in out

    def test_trace_writes_valid_chrome_json(self, mps_file, tmp_path, capsys):
        import json

        target = tmp_path / "merged.json"
        assert main(["trace", mps_file, "--method", "gpu-revised",
                     "--out", str(target)]) == 0
        doc = json.loads(target.read_text())
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert "solver-phase" in cats
        assert "kernel" in cats or "transfer" in cats

    def test_trace_random_cpu_method(self, capsys):
        assert main(["trace", "--random", "--rows", "10", "--cols", "14",
                     "--method", "revised"]) == 0
        assert "revised-cpu" in capsys.readouterr().out

    def test_trace_needs_input(self):
        with pytest.raises(SystemExit):
            main(["trace"])


class TestTraceOption:
    """The trace SolverOptions flag (exercised here with the library API)."""

    def test_trace_recorded(self):
        from repro import solve

        lp = random_dense_lp(10, 14, seed=2)
        r = solve(lp, method="revised", trace=True)
        trace = r.extra["trace"]
        # each phase's final iteration only detects optimality (no pivot)
        total = r.iterations.total_iterations
        assert total - 2 <= len(trace) < total
        phases = {t[0] for t in trace}
        assert phases <= {1, 2}
        # objective column is monotone non-increasing in phase 2 (minimisation
        # of the negated objective)
        z_values = [t[5] for t in trace if t[0] == 2]
        assert all(b <= a + 1e-9 for a, b in zip(z_values, z_values[1:]))

    def test_trace_gpu_matches_cpu(self):
        from repro import solve

        lp = random_dense_lp(12, 16, seed=3)
        rc = solve(lp, method="revised", trace=True, dtype=np.float64)
        rg = solve(lp, method="gpu-revised", trace=True, dtype=np.float64)
        # identical pivot sequences: same (entering, leaving-row) pairs
        assert [(t[2], t[3]) for t in rc.extra["trace"]] == [
            (t[2], t[3]) for t in rg.extra["trace"]
        ]

    def test_trace_off_by_default(self):
        from repro import solve

        lp = random_dense_lp(8, 8, seed=4)
        r = solve(lp, method="revised")
        assert "trace" not in r.extra

"""Regression net for the claims EXPERIMENTS.md records.

These are the *shape* invariants of the reproduction — small, fast versions
of the benchmark assertions, run with the unit suite so a refactor that
silently breaks the paper-shaped behaviour fails here first.
"""

import numpy as np
import pytest

from repro import solve
from repro.bench.harness import dense_sweep, find_crossover, speedup_series
from repro.lp.generators import random_dense_lp


@pytest.fixture(scope="module")
def small_sweep():
    return dense_sweep((64, 192, 384), methods=("revised", "gpu-revised"),
                       seed=42, dtype=np.float32)


class TestHeadlineShape:
    def test_cpu_wins_small_gpu_wins_large(self, small_sweep):
        sp = speedup_series(small_sweep["revised"], small_sweep["gpu-revised"])
        assert sp[0] < 1.0
        assert sp[-1] > 1.0

    def test_crossover_inside_sweep(self, small_sweep):
        sp = speedup_series(small_sweep["revised"], small_sweep["gpu-revised"])
        crossover = find_crossover([64, 192, 384], sp)
        assert crossover is not None
        assert 64 < crossover < 384

    def test_iteration_parity(self, small_sweep):
        for rc, rg in zip(small_sweep["revised"], small_sweep["gpu-revised"]):
            assert rc.iterations == rg.iterations

    def test_gpu_per_iteration_flatter_than_cpu(self, small_sweep):
        cpu = [r.per_iteration_us for r in small_sweep["revised"]]
        gpu = [r.per_iteration_us for r in small_sweep["gpu-revised"]]
        assert cpu[-1] / cpu[0] > gpu[-1] / gpu[0]


class TestGpuCostStructure:
    def test_pricing_dominates_phases(self):
        lp = random_dense_lp(256, 256, seed=42)
        r = solve(lp, method="gpu-revised", dtype=np.float32)
        bd = r.timing.kernel_breakdown
        phases = {k: v for k, v in bd.items() if k != "transfer"}
        assert max(phases, key=phases.get) == "pricing"

    def test_transfer_fraction_decreases_with_size(self):
        fracs = []
        for size in (64, 256):
            lp = random_dense_lp(size, size, seed=42)
            r = solve(lp, method="gpu-revised", dtype=np.float32)
            fracs.append(r.timing.transfer_seconds / r.timing.modeled_seconds)
        assert fracs[1] < fracs[0]

    def test_fp64_costs_more_but_far_below_flop_ratio(self):
        lp = random_dense_lp(128, 128, seed=42)
        t32 = solve(lp, method="gpu-revised", dtype=np.float32).timing.modeled_seconds
        t64 = solve(lp, method="gpu-revised", dtype=np.float64).timing.modeled_seconds
        assert 1.0 < t64 / t32 < 4.0  # bandwidth-bound, nowhere near 12x

    def test_gemv_t_is_top_kernel_at_scale(self):
        lp = random_dense_lp(256, 256, seed=42)
        r = solve(lp, method="gpu-revised", dtype=np.float32)
        by_kernel = r.extra["by_kernel"]
        assert max(by_kernel, key=by_kernel.get) == "blas.gemv_t"


class TestExtensionClaims:
    def test_bounded_beats_rows_encoding(self):
        from repro.lp.problem import Bounds, LPProblem

        rng = np.random.default_rng(0)
        base = random_dense_lp(48, 48, seed=42)
        lp = LPProblem(c=base.c, a=base.a_dense(), senses=base.senses,
                       b=base.b, bounds=Bounds(np.zeros(48), rng.uniform(0.3, 2.0, 48)),
                       maximize=True)
        rows = solve(lp, method="revised")
        bnd = solve(lp, method="revised-bounded")
        assert bnd.objective == pytest.approx(rows.objective, rel=1e-8)
        assert bnd.timing.modeled_seconds < rows.timing.modeled_seconds

    def test_dual_warm_beats_cold_on_rhs_change(self):
        from repro.lp.problem import LPProblem

        lp = random_dense_lp(48, 64, seed=13)
        first = solve(lp, method="revised")
        lp2 = LPProblem(c=lp.c, a=lp.a_dense(), senses=lp.senses,
                        b=lp.b * np.linspace(0.85, 1.1, 48),
                        bounds=lp.bounds, maximize=lp.maximize)
        cold = solve(lp2, method="revised")
        warm = solve(lp2, method="dual", initial_basis=first.extra["basis"])
        assert warm.objective == pytest.approx(cold.objective, rel=1e-8)
        assert warm.iterations.total_iterations <= cold.iterations.total_iterations

    def test_binv_fills_in_on_sparse_instances(self):
        from repro.core.gpu_revised_simplex import GpuRevisedSimplex
        from repro.lp.generators import random_sparse_lp
        from repro.simplex.options import SolverOptions

        lp = random_sparse_lp(96, 96, density=0.05, seed=42)
        solver = GpuRevisedSimplex(SolverOptions(dtype=np.float64),
                                   fill_stats_every=10)
        r = solver.solve(lp)
        curve = r.extra["binv_fill"]
        assert curve[-1][1] > 2 * curve[0][1]

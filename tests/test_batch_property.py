"""Batching invariance: batched solves are bit-identical to solo solves.

The batch layer's contract (and this PR's acceptance criterion): running N
LPs through ``solve_batch`` — under either schedule — returns, per LP, the
*exact* status, objective and iteration counts that N independent ``solve()``
calls return, while the concurrent schedule's aggregate modeled time is
strictly below the sequential sum.  Batching changes the time accounting,
never the numerics.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.batch import solve_batch
from repro.lp.generators import random_dense_lp
from repro.solve import solve

BATCH_SIZE = 32


@pytest.fixture(scope="module")
def acceptance_workload():
    return [random_dense_lp(10, 15, seed=5000 + i) for i in range(BATCH_SIZE)]


@pytest.fixture(scope="module")
def solo_results(acceptance_workload):
    return [solve(lp, method="gpu-revised") for lp in acceptance_workload]


@pytest.mark.parametrize("schedule", ["sequential", "concurrent"])
def test_batch_of_32_matches_32_solo_solves(
    acceptance_workload, solo_results, schedule
):
    batch = solve_batch(
        acceptance_workload, method="gpu-revised", schedule=schedule
    )
    assert len(batch) == BATCH_SIZE
    for item, solo in zip(batch.items, solo_results):
        assert item.result.status is solo.status
        assert item.result.objective == solo.objective  # exact, not approx
        assert (
            item.result.iterations.phase1_iterations
            == solo.iterations.phase1_iterations
        )
        assert (
            item.result.iterations.phase2_iterations
            == solo.iterations.phase2_iterations
        )
        assert item.result.timing.modeled_seconds == solo.timing.modeled_seconds


def test_concurrent_strictly_below_sequential_sum(acceptance_workload):
    seq = solve_batch(
        acceptance_workload, method="gpu-revised", schedule="sequential"
    )
    conc = solve_batch(
        acceptance_workload, method="gpu-revised", schedule="concurrent"
    )
    # the sequential makespan IS the sum of the per-LP machine times
    assert seq.outcome.makespan_seconds == pytest.approx(
        seq.outcome.sequential_seconds
    )
    assert conc.outcome.makespan_seconds < seq.outcome.makespan_seconds
    assert conc.speedup_vs_sequential > 1.0


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n_lps=st.integers(1, 8),
    m=st.integers(3, 12),
    n=st.integers(3, 12),
    seed=st.integers(0, 2**31),
    schedule=st.sampled_from(["sequential", "concurrent"]),
    method=st.sampled_from(["gpu-revised", "gpu-tableau", "revised"]),
)
def test_batching_invariance_random_families(n_lps, m, n, seed, schedule, method):
    """Any batch size, shape, method and schedule: answers never change."""
    lps = [random_dense_lp(m, n, seed=seed + i) for i in range(n_lps)]
    batch = solve_batch(lps, method=method, schedule=schedule)
    for item, lp in zip(batch.items, lps):
        solo = solve(lp, method=method)
        assert item.result.status is solo.status
        assert item.result.objective == solo.objective
        assert (
            item.result.iterations.total_iterations
            == solo.iterations.total_iterations
        )

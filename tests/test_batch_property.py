"""Batching invariance: batched solves are bit-identical to solo solves.

The batch layer's contract (and this PR's acceptance criterion): running N
LPs through ``solve_batch`` — under either schedule — returns, per LP, the
*exact* status, objective and iteration counts that N independent ``solve()``
calls return, while the concurrent schedule's aggregate modeled time is
strictly below the sequential sum.  Batching changes the time accounting,
never the numerics.

The second half covers the *scheduler* itself: over arbitrary synthetic
timelines, the concurrent makespan must dominate every bound it reports,
dominate the largest single LP, never exceed the sequential makespan, and
pick its binding resource deterministically under ties.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.batch import solve_batch
from repro.batch.scheduler import (
    ConcurrentSchedule,
    LPTimeline,
    SequentialSchedule,
)
from repro.gpu.device import TimelineEvent
from repro.lp.generators import random_dense_lp
from repro.perfmodel.presets import GTX280_PARAMS
from repro.solve import solve

BATCH_SIZE = 32


@pytest.fixture(scope="module")
def acceptance_workload():
    return [random_dense_lp(10, 15, seed=5000 + i) for i in range(BATCH_SIZE)]


@pytest.fixture(scope="module")
def solo_results(acceptance_workload):
    return [solve(lp, method="gpu-revised") for lp in acceptance_workload]


@pytest.mark.parametrize("schedule", ["sequential", "concurrent"])
def test_batch_of_32_matches_32_solo_solves(
    acceptance_workload, solo_results, schedule
):
    batch = solve_batch(
        acceptance_workload, method="gpu-revised", schedule=schedule
    )
    assert len(batch) == BATCH_SIZE
    for item, solo in zip(batch.items, solo_results):
        assert item.result.status is solo.status
        assert item.result.objective == solo.objective  # exact, not approx
        assert (
            item.result.iterations.phase1_iterations
            == solo.iterations.phase1_iterations
        )
        assert (
            item.result.iterations.phase2_iterations
            == solo.iterations.phase2_iterations
        )
        assert item.result.timing.modeled_seconds == solo.timing.modeled_seconds


def test_concurrent_strictly_below_sequential_sum(acceptance_workload):
    seq = solve_batch(
        acceptance_workload, method="gpu-revised", schedule="sequential"
    )
    conc = solve_batch(
        acceptance_workload, method="gpu-revised", schedule="concurrent"
    )
    # the sequential makespan IS the sum of the per-LP machine times
    assert seq.outcome.makespan_seconds == pytest.approx(
        seq.outcome.sequential_seconds
    )
    assert conc.outcome.makespan_seconds < seq.outcome.makespan_seconds
    assert conc.speedup_vs_sequential > 1.0


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n_lps=st.integers(1, 8),
    m=st.integers(3, 12),
    n=st.integers(3, 12),
    seed=st.integers(0, 2**31),
    schedule=st.sampled_from(["sequential", "concurrent"]),
    method=st.sampled_from(["gpu-revised", "gpu-tableau", "revised"]),
)
def test_batching_invariance_random_families(n_lps, m, n, seed, schedule, method):
    """Any batch size, shape, method and schedule: answers never change."""
    lps = [random_dense_lp(m, n, seed=seed + i) for i in range(n_lps)]
    batch = solve_batch(lps, method=method, schedule=schedule)
    for item, lp in zip(batch.items, lps):
        solo = solve(lp, method=method)
        assert item.result.status is solo.status
        assert item.result.objective == solo.objective
        assert (
            item.result.iterations.total_iterations
            == solo.iterations.total_iterations
        )


# ---------------------------------------------------------------------------
# Scheduler bounds: properties over arbitrary synthetic timelines
# ---------------------------------------------------------------------------

# kernel seconds stay above the modeled launch overhead: the device model
# charges kernel_time = launch_overhead + max(t_compute, t_memory), so a
# real timeline can never contain a kernel shorter than the overhead —
# the launch-serialization bound relies on exactly that invariant.
_kernel_seconds = st.floats(
    GTX280_PARAMS.launch_overhead, 1e-2, allow_nan=False
)
_transfer_seconds = st.floats(0.0, 1e-2, allow_nan=False)
_threads = st.integers(1, 2 * GTX280_PARAMS.concurrent_threads)


@st.composite
def _gpu_timelines(draw):
    n_lps = draw(st.integers(1, 10))
    tls = []
    for i in range(n_lps):
        events = [
            TimelineEvent("htod", "transfer", draw(_transfer_seconds),
                          nbytes=1024)
        ]
        for _ in range(draw(st.integers(1, 5))):
            events.append(
                TimelineEvent("kernel", "k", draw(_kernel_seconds),
                              threads=draw(_threads))
            )
        events.append(
            TimelineEvent("dtoh", "transfer", draw(_transfer_seconds),
                          nbytes=1024)
        )
        tls.append(LPTimeline.from_events(i, events, GTX280_PARAMS))
    return tls


@settings(max_examples=200, deadline=None)
@given(
    tls=_gpu_timelines(),
    n_streams=st.integers(1, 12),
    overlap=st.booleans(),
)
def test_concurrent_makespan_dominates_bounds(tls, n_streams, overlap):
    """In both overlap modes the makespan is (a) >= every bound the plan
    reports, (b) >= the largest single LP, (c) <= the sequential makespan,
    and the binding resource is one of the reported bounds."""
    out = ConcurrentSchedule(
        n_streams=n_streams, copy_compute_overlap=overlap
    ).plan(tls, params=GTX280_PARAMS)
    seq = SequentialSchedule().plan(tls)
    eps = 1e-12 + 1e-9 * out.makespan_seconds
    for name, bound in out.bounds.items():
        assert out.makespan_seconds >= bound - eps, (name, out.bounds)
    assert out.makespan_seconds >= max(tl.total_seconds for tl in tls) - eps
    assert out.makespan_seconds <= seq.makespan_seconds + eps
    assert out.binding_resource in out.bounds


@settings(max_examples=100, deadline=None)
@given(
    tls=_gpu_timelines(),
    n_streams=st.integers(1, 12),
    overlap=st.booleans(),
)
def test_binding_resource_is_deterministic(tls, n_streams, overlap):
    """Replanning identical timelines always reports the same binding
    resource — ties between equal bounds break by declaration order, not
    by dict-iteration accidents."""
    sched = ConcurrentSchedule(n_streams=n_streams, copy_compute_overlap=overlap)
    first = sched.plan(tls, params=GTX280_PARAMS)
    for _ in range(3):
        again = sched.plan(list(tls), params=GTX280_PARAMS)
        assert again.binding_resource == first.binding_resource
        assert again.bounds == first.bounds
    # and the binding is the *first* maximal bound in declaration order
    best = max(first.bounds.values())
    assert first.binding_resource == next(
        k for k, v in first.bounds.items() if v == best
    )

"""Tests for the kernel-timeline profiler."""

import json

import numpy as np
import pytest

from repro.gpu import blas
from repro.gpu.profiler import Profile, TimelineEvent, profile


class TestRecording:
    def test_kernels_and_transfers_recorded(self, device):
        with profile(device) as prof:
            x = device.to_device(np.ones(64))
            y = device.to_device(np.ones(64))
            blas.axpy(2.0, x, y)
            y.copy_to_host()
        names = {e.name for e in prof.events}
        assert "blas.axpy" in names
        assert "memcpy.htod" in names
        assert "memcpy.dtoh" in names
        assert len(prof.kernels()) >= 1
        assert len(prof.transfers()) >= 3

    def test_timeline_is_ordered_and_contiguous(self, device):
        with profile(device) as prof:
            x = device.to_device(np.ones(128))
            blas.scal(2.0, x)
            blas.scal(0.5, x)
        starts = [e.start for e in prof.events]
        assert starts == sorted(starts)
        # the simulated device serialises: no gaps, no overlap
        assert prof.gaps() == pytest.approx(0.0, abs=1e-15)
        for a, b in zip(prof.events, prof.events[1:]):
            assert b.start == pytest.approx(a.end)

    def test_durations_match_clock(self, device):
        with profile(device) as prof:
            x = device.to_device(np.ones(64))
            blas.scal(2.0, x)
        assert prof.total_time == pytest.approx(device.clock)

    def test_instrumentation_removed_after_block(self, device):
        with profile(device):
            pass
        before = device.clock
        x = device.to_device(np.ones(8))
        blas.scal(2.0, x)
        assert device.clock > before  # device still works normally

    def test_costs_carried(self, device):
        with profile(device) as prof:
            x = device.to_device(np.ones(100))
            blas.scal(2.0, x)
        scal_events = [e for e in prof.events if e.name == "blas.scal"]
        assert scal_events[0].flops == 100


class TestReports:
    def test_summary_format(self, device):
        with profile(device) as prof:
            x = device.to_device(np.ones(64))
            blas.scal(2.0, x)
        text = prof.summary()
        assert "events" in text
        assert "blas.scal" in text
        assert "%" in text

    def test_by_name_sums(self, device):
        with profile(device) as prof:
            x = device.to_device(np.ones(64))
            blas.scal(2.0, x)
            blas.scal(2.0, x)
        totals = prof.by_name()
        scal_events = [e for e in prof.events if e.name == "blas.scal"]
        assert totals["blas.scal"] == pytest.approx(
            sum(e.duration for e in scal_events)
        )

    def test_chrome_trace_export(self, device, tmp_path):
        with profile(device) as prof:
            x = device.to_device(np.ones(64))
            blas.scal(2.0, x)
        path = tmp_path / "trace.json"
        text = prof.to_chrome_trace(path)
        data = json.loads(path.read_text())
        assert data == json.loads(text)
        assert data["traceEvents"]
        event = data["traceEvents"][0]
        assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(event)
        assert event["ph"] == "X"

    def test_transfer_events_on_own_track(self, device):
        with profile(device) as prof:
            device.to_device(np.ones(16))
        data = json.loads(prof.to_chrome_trace())
        tids = {e["cat"]: e["tid"] for e in data["traceEvents"]}
        assert tids.get("transfer") == 1


class TestWholeSolveProfile:
    def test_profile_a_solve(self):
        from repro.core.gpu_revised_simplex import GpuRevisedSimplex
        from repro.gpu.device import Device
        from repro.lp.generators import random_dense_lp
        from repro.simplex.options import SolverOptions

        dev = Device()
        solver = GpuRevisedSimplex(SolverOptions(dtype=np.float64), device=dev)
        with profile(dev) as prof:
            result = solver.solve(random_dense_lp(24, 32, seed=1))
        assert result.is_optimal
        # profiler total equals the solver's modeled time
        assert prof.total_time == pytest.approx(result.timing.modeled_seconds)
        # the pricing GEMV is on the timeline
        assert "blas.gemv_t" in prof.by_name()

    def test_empty_profile(self):
        prof = Profile()
        assert prof.total_time == 0.0
        assert prof.gaps() == 0.0
        assert "0 events" in prof.summary()

    def test_event_end(self):
        e = TimelineEvent(name="k", start=1.0, duration=0.5, kind="kernel")
        assert e.end == 1.5


class TestLaunchKwargForwarding:
    """Regression: the profile() launch wrapper must forward keywords
    verbatim — it used to re-pack a fixed subset, silently dropping any
    keyword later added to ``Device.launch`` and making profiled runs
    diverge from unprofiled ones."""

    def _cost(self):
        from repro.perfmodel.ops import OpCost

        return OpCost(flops=10_000, bytes_read=80_000, bytes_written=80_000,
                      threads=4096)

    def test_every_launch_keyword_reaches_the_device(self, device):
        import inspect

        from repro.gpu.device import Device

        sig = inspect.signature(Device.launch)
        keyword_only = {
            name: p.default
            for name, p in sig.parameters.items()
            if p.kind is inspect.Parameter.KEYWORD_ONLY
        }
        assert {"dtype", "block"} <= set(keyword_only)
        # non-default value for every keyword Device.launch accepts
        overrides = dict(keyword_only)
        overrides["dtype"] = np.float64
        overrides["block"] = 64

        plain = Device(device.params)
        plain.launch("k", lambda: None, self._cost(), **overrides)
        with profile(device) as prof:
            device.launch("k", lambda: None, self._cost(), **overrides)
        assert device.clock == pytest.approx(plain.clock)
        assert prof.events[0].duration == pytest.approx(plain.clock)

    def test_profiled_timing_responds_to_dtype_and_block(self, device):
        from repro.perfmodel.ops import OpCost

        # compute-bound kernel: fp64 runs at a fraction of the fp32 rate on
        # the modeled hardware, so dropping the dtype keyword would charge
        # both launches identically
        cost = OpCost(flops=50_000_000, bytes_read=4_000, bytes_written=4_000,
                      threads=65536)
        with profile(device) as prof:
            device.launch("defaults", lambda: None, cost)
            device.launch("fp64", lambda: None, cost, dtype=np.float64, block=64)
        default_ev, fp64_ev = prof.events
        assert fp64_ev.duration > default_ev.duration


class TestOverlappingEvents:
    """Regression: total_time summed durations, double-counting events that
    overlap on the clock (concurrent streams); it must report the interval
    union instead."""

    def _overlapping(self):
        prof = Profile()
        prof._record(TimelineEvent("a", start=0.0, duration=1.0, kind="kernel"))
        prof._record(TimelineEvent("b", start=0.5, duration=1.0, kind="kernel"))
        prof._record(TimelineEvent("c", start=3.0, duration=0.5, kind="kernel"))
        return prof

    def test_union_not_sum(self):
        prof = self._overlapping()
        # [0, 1.5] busy + [3, 3.5] busy = 2.0, not 1 + 1 + 0.5 = 2.5
        assert prof.total_time == pytest.approx(2.0)

    def test_gap_is_idle_span(self):
        prof = self._overlapping()
        # span [0, 3.5] minus 2.0 busy = 1.5 idle
        assert prof.gaps() == pytest.approx(1.5)

    def test_contained_event_adds_nothing(self):
        prof = Profile()
        prof._record(TimelineEvent("outer", start=0.0, duration=2.0, kind="kernel"))
        prof._record(TimelineEvent("inner", start=0.5, duration=0.5, kind="kernel"))
        assert prof.total_time == pytest.approx(2.0)
        assert prof.gaps() == pytest.approx(0.0)

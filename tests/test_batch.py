"""Tests for the batched multi-LP subsystem (repro.batch)."""

import numpy as np
import pytest

from repro.batch import (
    DEFAULT_CONTEXT_SETUP_SECONDS,
    ConcurrentSchedule,
    LPTimeline,
    SequentialSchedule,
    WARM_START_METHODS,
    make_schedule,
    solve_batch,
    solve_batch_chain,
)
from repro.errors import SolverError, UnknownMethodError
from repro.gpu.device import Device, TimelineEvent
from repro.lp.generators import random_dense_lp
from repro.perfmodel.presets import GTX280_PARAMS
from repro.solve import solve


@pytest.fixture(scope="module")
def workload():
    """Six small dense LPs, enough to exercise multi-stream scheduling."""
    return [random_dense_lp(16, 24, seed=300 + i) for i in range(6)]


# ---------------------------------------------------------------------------
# LPTimeline
# ---------------------------------------------------------------------------


class TestLPTimeline:
    def test_from_events_totals(self):
        p = GTX280_PARAMS
        cap = float(p.concurrent_threads)
        events = [
            TimelineEvent("htod", "transfer", 5e-4, nbytes=1024),
            TimelineEvent("kernel", "big", 2e-3, threads=p.concurrent_threads),
            TimelineEvent("kernel", "tiny", 1e-3, threads=1),
            TimelineEvent("dtod", "transfer", 1e-4, nbytes=64),
            TimelineEvent("dtoh", "transfer", 3e-4, nbytes=512),
        ]
        tl = LPTimeline.from_events(3, events, p)
        assert tl.index == 3
        assert tl.kernel_launches == 2
        assert tl.transfer_seconds == pytest.approx(8e-4)
        assert tl.device_seconds == pytest.approx(2e-3 + 1e-3 + 1e-4)
        assert tl.total_seconds == pytest.approx(tl.transfer_seconds + tl.device_seconds)
        # big kernel fills the device (util 1), tiny floors at min_fill,
        # dtod saturates the memory system (util 1)
        tiny_util = max(p.min_fill, 1.0 / cap)
        assert tl.busy_seconds == pytest.approx(2e-3 + 1e-3 * tiny_util + 1e-4)
        assert tl.busy_seconds < tl.device_seconds

    def test_from_modeled_seconds_is_opaque_block(self):
        tl = LPTimeline.from_modeled_seconds(1, 0.25)
        assert tl.kernel_launches == 0
        assert tl.transfer_seconds == 0.0
        assert tl.busy_seconds == tl.device_seconds == tl.total_seconds == 0.25


# ---------------------------------------------------------------------------
# Schedules
# ---------------------------------------------------------------------------


def _block_timelines(n, seconds=0.1):
    return [LPTimeline.from_modeled_seconds(i, seconds) for i in range(n)]


class TestSequentialSchedule:
    def test_makespan_is_the_sum(self):
        out = SequentialSchedule().plan(_block_timelines(4, 0.1))
        assert out.makespan_seconds == pytest.approx(0.4)
        assert out.sequential_seconds == pytest.approx(0.4)
        assert out.n_streams == 1
        assert out.speedup_vs_sequential == pytest.approx(1.0)


class TestConcurrentSchedule:
    def test_cpu_blocks_split_across_workers(self):
        # 8 identical fully-utilizing blocks over 4 workers: perfect 4x
        out = ConcurrentSchedule(n_streams=4).plan(_block_timelines(8, 0.1))
        assert out.n_streams == 4
        assert out.makespan_seconds == pytest.approx(0.2)
        assert out.speedup_vs_sequential == pytest.approx(4.0)

    def test_streams_clamped_to_batch_size(self):
        out = ConcurrentSchedule(n_streams=64).plan(_block_timelines(3, 0.1))
        assert out.n_streams == 3

    def test_single_stream_equals_sequential(self):
        tls = _block_timelines(5, 0.1)
        seq = SequentialSchedule().plan(tls)
        conc = ConcurrentSchedule(n_streams=1).plan(tls)
        assert conc.makespan_seconds == pytest.approx(seq.makespan_seconds)

    def test_makespan_is_max_of_bounds(self):
        p = GTX280_PARAMS
        events = [
            TimelineEvent("htod", "transfer", 2e-4, nbytes=4096),
            TimelineEvent("kernel", "k", 1e-3, threads=256),
            TimelineEvent("dtoh", "transfer", 1e-4, nbytes=256),
        ]
        tls = [LPTimeline.from_events(i, events, p) for i in range(8)]
        out = ConcurrentSchedule().plan(tls, params=p)
        assert set(out.bounds) == {
            "copy-engine", "compute-capacity",
            "stream-critical-path", "launch-serialization",
        }
        assert out.makespan_seconds == pytest.approx(max(out.bounds.values()))
        assert out.binding_resource in out.bounds
        assert out.bounds[out.binding_resource] == pytest.approx(out.makespan_seconds)
        # every bound is a *lower* bound, strictly below the serial sum here
        assert out.makespan_seconds < out.sequential_seconds

    def test_no_copy_compute_overlap_is_slower(self):
        p = GTX280_PARAMS
        events = [
            TimelineEvent("htod", "transfer", 5e-4, nbytes=4096),
            TimelineEvent("kernel", "k", 1e-3, threads=256),
        ]
        tls = [LPTimeline.from_events(i, events, p) for i in range(6)]
        with_overlap = ConcurrentSchedule().plan(tls, params=p)
        without = ConcurrentSchedule(copy_compute_overlap=False).plan(tls, params=p)
        assert without.makespan_seconds > with_overlap.makespan_seconds
        # serialized transfers are paid in full up front
        assert without.makespan_seconds >= without.transfer_seconds

    def test_bad_stream_count(self):
        with pytest.raises(SolverError):
            ConcurrentSchedule(n_streams=0)

    def test_serialized_mode_reports_composed_bounds(self):
        """Regression: with ``copy_compute_overlap=False`` the reported
        bounds (and the binding resource picked from them) must be the
        terms of the serialized composition — not the overlap-mode bounds,
        which the buggy version reported.  Transfer-heavy case where the
        two disagree: the overlap bounds' stream-critical-path (transfer +
        compute per stream, 1.1s) would win the binding vote, but it never
        enters the serialized makespan, whose largest true term is the
        copy engine (1.0s)."""
        p = GTX280_PARAMS
        events = [
            TimelineEvent("htod", "transfer", 0.25, nbytes=1 << 20),
            TimelineEvent("kernel", "k", 0.6, threads=1),  # tiny: busy ~ 0
            TimelineEvent("dtoh", "transfer", 0.25, nbytes=1 << 20),
        ]
        tls = [LPTimeline.from_events(i, events, p) for i in range(2)]
        out = ConcurrentSchedule(
            n_streams=2, copy_compute_overlap=False
        ).plan(tls, params=p)
        # the serialized composition's own terms, nothing from overlap mode
        assert set(out.bounds) == {
            "copy-engine", "compute-capacity",
            "stream-device-path", "launch-serialization",
        }
        assert out.bounds["copy-engine"] == pytest.approx(1.0)
        assert out.bounds["stream-device-path"] == pytest.approx(0.6)
        assert out.makespan_seconds == pytest.approx(1.6)
        # binding picked from the composed bounds: the copy engine, not
        # the overlap-mode stream-critical-path the old code reported
        assert out.binding_resource == "copy-engine"
        # every reported bound is a genuine lower bound of the makespan
        assert all(
            b <= out.makespan_seconds + 1e-12 for b in out.bounds.values()
        )

    def test_binding_tie_is_deterministic(self):
        """Equal bounds: max() breaks the tie by declaration order, so the
        binding resource is stable run to run."""
        tls = _block_timelines(4, 0.1)
        out1 = ConcurrentSchedule(n_streams=4).plan(tls)
        out2 = ConcurrentSchedule(n_streams=4).plan(list(tls))
        assert out1.binding_resource == out2.binding_resource
        tied = [
            k for k, v in out1.bounds.items()
            if v == pytest.approx(out1.makespan_seconds)
        ]
        assert out1.binding_resource == tied[0]


class TestMakeSchedule:
    def test_names(self):
        assert isinstance(make_schedule("sequential"), SequentialSchedule)
        sched = make_schedule("concurrent", n_streams=3)
        assert isinstance(sched, ConcurrentSchedule)
        assert sched.n_streams == 3

    def test_unknown_name(self):
        with pytest.raises(SolverError, match="unknown schedule"):
            make_schedule("speculative")


# ---------------------------------------------------------------------------
# solve_batch
# ---------------------------------------------------------------------------


class TestSolveBatch:
    @pytest.mark.parametrize("schedule", ["sequential", "concurrent"])
    def test_matches_solo_solves(self, workload, schedule):
        batch = solve_batch(workload, method="gpu-revised", schedule=schedule)
        for item, lp in zip(batch.items, workload):
            solo = solve(lp, method="gpu-revised")
            assert item.result.status is solo.status
            assert item.result.objective == solo.objective
            assert item.result.iterations.total_iterations == solo.iterations.total_iterations

    def test_concurrent_beats_sequential(self, workload):
        seq = solve_batch(workload, method="gpu-revised", schedule="sequential")
        conc = solve_batch(workload, method="gpu-revised", schedule="concurrent")
        assert conc.outcome.makespan_seconds < seq.outcome.makespan_seconds
        assert conc.speedup_vs_sequential > 1.0
        assert conc.outcome.n_streams > 1

    def test_cpu_method_batches_as_blocks(self, workload):
        batch = solve_batch(
            workload, method="revised", schedule="concurrent", n_streams=3
        )
        assert batch.all_optimal
        assert batch.context_seconds == 0.0  # no GPU context to create
        assert batch.outcome.n_streams == 3
        assert batch.outcome.makespan_seconds < batch.outcome.sequential_seconds

    def test_gpu_context_charged_once(self, workload):
        batch = solve_batch(workload[:2], method="gpu-revised")
        assert batch.context_seconds == DEFAULT_CONTEXT_SETUP_SECONDS
        assert batch.modeled_seconds == pytest.approx(
            batch.context_seconds + batch.outcome.makespan_seconds
        )
        override = solve_batch(workload[:2], method="gpu-revised", context_seconds=0.0)
        assert override.context_seconds == 0.0

    def test_shared_device_is_caller_visible(self, workload):
        dev = Device(GTX280_PARAMS)
        batch = solve_batch(workload[:3], method="gpu-revised", device=dev)
        assert batch.all_optimal
        assert dev.timeline is not None  # recording was enabled on our device

    def test_result_container_protocol(self, workload):
        batch = solve_batch(workload[:3], method="gpu-revised")
        assert len(batch) == 3
        assert batch[0].name == workload[0].name
        assert [it.index for it in batch] == [0, 1, 2]
        assert batch.statuses == {"optimal": 3}
        assert batch.total_iterations == sum(
            it.result.iterations.total_iterations for it in batch
        )
        assert batch.throughput_lps > 0.0

    def test_kernel_breakdown_merged(self, workload):
        batch = solve_batch(workload[:2], method="gpu-revised")
        merged = batch.kernel_breakdown()
        assert merged
        assert sum(merged.values()) > 0.0

    def test_report_rendering(self, workload):
        batch = solve_batch(workload[:2], method="gpu-revised")
        assert "all optimal" in batch.summary()
        report = batch.render()
        assert workload[0].name in report
        assert "t_model" in report

    def test_empty_batch_rejected(self):
        with pytest.raises(SolverError, match="at least one"):
            solve_batch([])

    def test_non_problem_rejected(self, workload):
        with pytest.raises(TypeError, match="batch item 1"):
            solve_batch([workload[0], "not an lp"])

    def test_unknown_method(self, workload):
        with pytest.raises(UnknownMethodError):
            solve_batch(workload[:1], method="quantum")

    def test_unknown_schedule(self, workload):
        with pytest.raises(SolverError, match="unknown schedule"):
            solve_batch(workload[:1], schedule="speculative")

    def test_cpu_method_rejects_shared_device(self, workload):
        with pytest.raises(SolverError, match="gpu-"):
            solve(workload[0], method="revised", device=Device(GTX280_PARAMS))


# ---------------------------------------------------------------------------
# solve_batch_chain
# ---------------------------------------------------------------------------


class TestSolveBatchChain:
    @pytest.fixture(scope="class")
    def scenarios(self):
        """A base LP plus cost-perturbed rescoring scenarios."""
        from repro.lp.problem import LPProblem

        base = random_dense_lp(16, 24, seed=77)
        rng = np.random.default_rng(9)
        out = [base]
        for s in range(4):
            out.append(
                LPProblem(
                    c=base.c * rng.uniform(0.9, 1.1, base.num_vars),
                    a=base.a_dense(), senses=base.senses, b=base.b,
                    bounds=base.bounds, maximize=base.maximize,
                    name=f"scenario-{s}",
                )
            )
        return out

    def test_warm_flags_and_correctness(self, scenarios):
        chain = solve_batch_chain(scenarios, method="revised")
        assert chain.all_optimal
        assert chain.schedule == "chain"
        assert not chain[0].warm_started
        assert all(it.warm_started for it in chain.items[1:])
        # warm starts never change the answers
        for item, lp in zip(chain.items, scenarios):
            assert item.result.objective == pytest.approx(
                solve(lp, method="revised").objective
            )

    def test_warm_start_saves_pivots(self, scenarios):
        chain = solve_batch_chain(scenarios, method="revised")
        cold = solve_batch(scenarios, method="revised")
        assert chain.total_iterations < cold.total_iterations

    def test_gpu_chain(self, scenarios):
        chain = solve_batch_chain(scenarios, method="gpu-revised")
        assert chain.all_optimal
        assert chain.context_seconds == DEFAULT_CONTEXT_SETUP_SECONDS

    def test_non_warm_start_method_rejected(self, scenarios):
        assert "tableau" not in WARM_START_METHODS
        with pytest.raises(SolverError, match="warm start"):
            solve_batch_chain(scenarios, method="tableau")

    def test_unbroken_chain_has_no_flags(self, scenarios):
        chain = solve_batch_chain(scenarios, method="revised")
        assert chain.chain_breaks == 0
        assert not any(it.chain_broken for it in chain.items)

    def test_chain_break_flagged_and_counted(self, scenarios):
        """A non-optimal intermediate LP breaks the warm-start chain: the
        item is flagged, the break is counted, and the next LP cold-starts
        instead of silently losing its warm start."""
        from repro import metrics
        from repro.lp.problem import LPProblem

        base = scenarios[0]
        # same shape as the rest of the chain (the basis hint must fit),
        # but b < 0 with A >= 0 and x >= 0: infeasible
        infeasible = LPProblem(
            c=base.c, a=base.a_dense(), senses=base.senses,
            b=-np.ones(base.num_constraints), bounds=base.bounds,
            maximize=base.maximize, name="broken-link",
        )
        lps = [scenarios[0], infeasible, scenarios[1]]
        with metrics.collecting() as reg:
            chain = solve_batch_chain(lps, method="revised")
            snap = reg.snapshot()
        assert [it.chain_broken for it in chain.items] == [False, True, False]
        assert chain.chain_breaks == 1
        # the LP after the break got no basis to start from
        assert not chain[2].warm_started
        # ...and the break reached the metrics counter
        counter = snap["metrics"]["repro_batch_chain_breaks_total"]
        assert counter["series"][0]["labels"] == {"method": "revised"}
        assert counter["series"][0]["value"] == 1.0
        # the rendered table says so too
        assert "broken" in chain.render()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestBatchCLI:
    def test_random_batch(self, capsys):
        from repro.cli import main

        assert main([
            "batch", "--random", "4", "--rows", "12", "--cols", "16",
            "--schedule", "concurrent",
        ]) == 0
        out = capsys.readouterr().out
        assert "batch of 4 LPs" in out
        assert "optimal" in out

    def test_chain_flag(self, capsys):
        from repro.cli import main

        assert main([
            "batch", "--random", "3", "--rows", "10", "--cols", "14",
            "--chain", "--method", "revised",
        ]) == 0
        assert "chain" in capsys.readouterr().out

    def test_mps_paths(self, tmp_path, capsys):
        from repro.cli import main
        from repro.lp.mps import write_mps

        paths = []
        for i in range(2):
            p = tmp_path / f"lp{i}.mps"
            write_mps(random_dense_lp(8, 12, seed=i), p)
            paths.append(str(p))
        assert main(["batch", *paths]) == 0
        assert "batch of 2 LPs" in capsys.readouterr().out

    def test_needs_input(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="batch needs"):
            main(["batch"])

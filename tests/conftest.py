"""Shared fixtures and oracle helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu.device import Device
from repro.lp.problem import Bounds, ConstraintSense, LPProblem
from repro.perfmodel.presets import GTX280_PARAMS


@pytest.fixture
def device() -> Device:
    """A fresh GTX 280-modeled device per test."""
    return Device(GTX280_PARAMS)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def textbook_lp() -> LPProblem:
    """max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18 — optimum 36 at (2, 6)."""
    return LPProblem.maximize_problem(
        c=[3.0, 5.0],
        a_ub=[[1.0, 0.0], [0.0, 2.0], [3.0, 2.0]],
        b_ub=[4.0, 12.0, 18.0],
    )


TEXTBOOK_OPTIMUM = 36.0
TEXTBOOK_X = (2.0, 6.0)


@pytest.fixture
def infeasible_lp() -> LPProblem:
    """x <= 1 and x >= 3 simultaneously."""
    return LPProblem.minimize(c=[1.0], a_ub=[[1.0], [-1.0]], b_ub=[1.0, -3.0])


@pytest.fixture
def unbounded_lp() -> LPProblem:
    """min -x with x - y <= 1, both nonnegative: x can grow with y."""
    return LPProblem.minimize(c=[-1.0, 0.0], a_ub=[[1.0, -1.0]], b_ub=[1.0])


@pytest.fixture
def equality_lp() -> LPProblem:
    """min x + 2y s.t. x + y = 4, x - y <= 2 — optimum 5 at (3, 1)?"""
    return LPProblem.minimize(
        c=[1.0, 2.0],
        a_ub=[[1.0, -1.0]],
        b_ub=[2.0],
        a_eq=[[1.0, 1.0]],
        b_eq=[4.0],
    )


@pytest.fixture
def bounded_vars_lp() -> LPProblem:
    """A bounded LP exercising free, negative and range bounds."""
    return LPProblem.minimize(
        c=[1.0, 2.0, -1.0],
        a_ub=[[1.0, 1.0, 1.0], [-1.0, 2.0, 0.0]],
        b_ub=[10.0, 8.0],
        a_eq=[[1.0, -1.0, 2.0]],
        b_eq=[3.0],
        bounds=[(-4.0, 4.0), (None, None), (-2.0, 5.0)],
    )


BOUNDED_VARS_OPTIMUM = -24.0


def scipy_oracle(lp: LPProblem) -> float | None:
    """Optimal objective via scipy HiGHS in the problem's orientation."""
    from repro.bench.harness import scipy_reference

    return scipy_reference(lp)


def assert_matches_oracle(lp: LPProblem, result, tol: float = 1e-5) -> None:
    """Assert an optimal result agrees with scipy and is primal feasible."""
    ref = scipy_oracle(lp)
    assert ref is not None, "oracle could not solve the instance"
    assert result.status.value == "optimal", result.status
    assert abs(result.objective - ref) <= tol * (1.0 + abs(ref)), (
        result.objective,
        ref,
    )
    assert result.x is not None
    assert lp.constraint_violation(result.x) <= 1e-5

"""Device BLAS correctness against NumPy, plus cost/accounting behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import DeviceArrayError
from repro.gpu import blas
from repro.gpu.device import Device
from repro.perfmodel.presets import GTX280_PARAMS


def dvec(device, values, dtype=np.float64):
    return device.to_device(np.asarray(values, dtype=dtype))


class TestLevel1:
    def test_copy(self, device, rng):
        x = dvec(device, rng.normal(size=100))
        y = device.zeros(100, np.float64)
        blas.copy(x, y)
        assert np.array_equal(y.data, x.data)

    def test_swap(self, device):
        x = dvec(device, [1.0, 2.0])
        y = dvec(device, [3.0, 4.0])
        blas.swap(x, y)
        assert np.array_equal(x.data, [3.0, 4.0])
        assert np.array_equal(y.data, [1.0, 2.0])

    def test_scal(self, device):
        x = dvec(device, [1.0, -2.0, 3.0])
        blas.scal(2.0, x)
        assert np.array_equal(x.data, [2.0, -4.0, 6.0])

    def test_axpy(self, device, rng):
        xh, yh = rng.normal(size=50), rng.normal(size=50)
        x, y = dvec(device, xh), dvec(device, yh)
        blas.axpy(0.5, x, y)
        np.testing.assert_allclose(y.data, 0.5 * xh + yh, rtol=1e-12)

    def test_dot(self, device, rng):
        xh, yh = rng.normal(size=64), rng.normal(size=64)
        x, y = dvec(device, xh), dvec(device, yh)
        assert blas.dot(x, y) == pytest.approx(float(xh @ yh), rel=1e-12)

    def test_nrm2(self, device, rng):
        xh = rng.normal(size=33)
        assert blas.nrm2(dvec(device, xh)) == pytest.approx(np.linalg.norm(xh))

    def test_asum(self, device):
        assert blas.asum(dvec(device, [-1.0, 2.0, -3.0])) == pytest.approx(6.0)

    def test_iamax(self, device):
        assert blas.iamax(dvec(device, [1.0, -7.0, 3.0])) == 1

    def test_fill(self, device):
        x = device.zeros(5, np.float32)
        blas.fill(x, 3.5)
        assert np.all(x.data == np.float32(3.5))

    def test_gather(self, device):
        src = dvec(device, [10.0, 20.0, 30.0, 40.0])
        out = device.zeros(2, np.float64)
        blas.gather(src, np.array([3, 0]), out)
        assert np.array_equal(out.data, [40.0, 10.0])

    def test_gather_out_of_range(self, device):
        src = dvec(device, [1.0])
        out = device.zeros(1, np.float64)
        with pytest.raises(DeviceArrayError):
            blas.gather(src, np.array([5]), out)


class TestLevel2:
    def test_gemv_notrans(self, device, rng):
        ah = rng.normal(size=(8, 5))
        xh = rng.normal(size=5)
        a, x = device.to_device(ah), dvec(device, xh)
        y = device.zeros(8, np.float64)
        blas.gemv(a, x, y)
        np.testing.assert_allclose(y.data, ah @ xh, rtol=1e-12)

    def test_gemv_trans(self, device, rng):
        ah = rng.normal(size=(8, 5))
        xh = rng.normal(size=8)
        a, x = device.to_device(ah), dvec(device, xh)
        y = device.zeros(5, np.float64)
        blas.gemv(a, x, y, trans=True)
        np.testing.assert_allclose(y.data, ah.T @ xh, rtol=1e-12)

    def test_gemv_alpha_beta(self, device, rng):
        ah = rng.normal(size=(4, 4))
        xh = rng.normal(size=4)
        yh = rng.normal(size=4)
        a, x, y = device.to_device(ah), dvec(device, xh), dvec(device, yh)
        blas.gemv(a, x, y, alpha=-2.0, beta=0.5)
        np.testing.assert_allclose(y.data, -2.0 * (ah @ xh) + 0.5 * yh, rtol=1e-12)

    def test_gemv_shape_mismatch(self, device):
        a = device.zeros((3, 4), np.float64)
        x = device.zeros(3, np.float64)  # wrong: needs 4
        y = device.zeros(3, np.float64)
        with pytest.raises(DeviceArrayError):
            blas.gemv(a, x, y)

    def test_ger(self, device, rng):
        ah = rng.normal(size=(6, 3))
        xh = rng.normal(size=6)
        yh = rng.normal(size=3)
        a, x, y = device.to_device(ah), dvec(device, xh), dvec(device, yh)
        blas.ger(x, y, a, alpha=1.5)
        np.testing.assert_allclose(a.data, ah + 1.5 * np.outer(xh, yh), rtol=1e-12)

    def test_mixed_dtype_rejected(self, device):
        a = device.zeros((3, 3), np.float32)
        x = device.zeros(3, np.float64)
        y = device.zeros(3, np.float32)
        with pytest.raises(DeviceArrayError):
            blas.gemv(a, x, y)

    def test_cross_device_rejected(self, device):
        other = Device(GTX280_PARAMS)
        a = device.zeros((3, 3), np.float64)
        x = other.zeros(3, np.float64)
        y = device.zeros(3, np.float64)
        with pytest.raises(DeviceArrayError):
            blas.gemv(a, x, y)


class TestLevel3:
    def test_gemm(self, device, rng):
        ah = rng.normal(size=(4, 6))
        bh = rng.normal(size=(6, 3))
        a, b = device.to_device(ah), device.to_device(bh)
        c = device.zeros((4, 3), np.float64)
        blas.gemm(a, b, c)
        np.testing.assert_allclose(c.data, ah @ bh, rtol=1e-12)

    def test_gemm_transposes(self, device, rng):
        ah = rng.normal(size=(6, 4))
        bh = rng.normal(size=(3, 6))
        a, b = device.to_device(ah), device.to_device(bh)
        c = device.zeros((4, 3), np.float64)
        blas.gemm(a, b, c, transa=True, transb=True)
        np.testing.assert_allclose(c.data, ah.T @ bh.T, rtol=1e-12)

    def test_gemm_beta(self, device, rng):
        ah, bh = rng.normal(size=(2, 2)), rng.normal(size=(2, 2))
        ch = rng.normal(size=(2, 2))
        a, b, c = device.to_device(ah), device.to_device(bh), device.to_device(ch)
        blas.gemm(a, b, c, alpha=2.0, beta=-1.0)
        np.testing.assert_allclose(c.data, 2 * (ah @ bh) - ch, rtol=1e-12)

    def test_gemm_inner_mismatch(self, device):
        a = device.zeros((4, 5), np.float64)
        b = device.zeros((6, 3), np.float64)
        c = device.zeros((4, 3), np.float64)
        with pytest.raises(DeviceArrayError):
            blas.gemm(a, b, c)


class TestAccounting:
    def test_every_call_advances_clock(self, device):
        x = dvec(device, np.ones(64))
        y = dvec(device, np.ones(64))
        for op in (lambda: blas.copy(x, y), lambda: blas.axpy(1.0, x, y),
                   lambda: blas.dot(x, y), lambda: blas.scal(2.0, x)):
            t0 = device.clock
            op()
            assert device.clock > t0

    def test_dot_returns_scalar_via_dtoh(self, device):
        x = dvec(device, np.ones(64))
        before = device.stats.dtoh_bytes
        blas.dot(x, x)
        assert device.stats.dtoh_bytes > before

    def test_gemv_flops_recorded(self, device):
        a = device.zeros((100, 200), np.float32)
        x = device.zeros(200, np.float32)
        y = device.zeros(100, np.float32)
        blas.gemv(a, x, y)
        rec = device.stats.by_kernel["blas.gemv"]
        assert rec.flops == 2 * 100 * 200

    def test_fp32_gemv_faster_than_fp64(self):
        dev32, dev64 = Device(GTX280_PARAMS), Device(GTX280_PARAMS)
        for dev, dt in ((dev32, np.float32), (dev64, np.float64)):
            a = dev.zeros((512, 512), dt)
            x = dev.zeros(512, dt)
            y = dev.zeros(512, dt)
            t0 = dev.clock
            blas.gemv(a, x, y)
        t32 = dev32.stats.by_kernel["blas.gemv"].seconds
        t64 = dev64.stats.by_kernel["blas.gemv"].seconds
        assert t32 < t64  # bandwidth-bound: half the bytes


@settings(max_examples=25, deadline=None)
@given(
    x=arrays(np.float64, st.integers(1, 200),
             elements=st.floats(-1e6, 1e6, allow_nan=False)),
    alpha=st.floats(-100, 100, allow_nan=False),
)
def test_axpy_matches_numpy_property(x, alpha):
    dev = Device(GTX280_PARAMS)
    y = np.ones_like(x)
    dx, dy = dev.to_device(x), dev.to_device(y)
    blas.axpy(alpha, dx, dy)
    np.testing.assert_allclose(dy.data, alpha * x + y, rtol=1e-12, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(1, 20),
    n=st.integers(1, 20),
    seed=st.integers(0, 2**31),
    trans=st.booleans(),
)
def test_gemv_matches_numpy_property(m, n, seed, trans):
    rng = np.random.default_rng(seed)
    dev = Device(GTX280_PARAMS)
    ah = rng.normal(size=(m, n))
    xh = rng.normal(size=m if trans else n)
    a, x = dev.to_device(ah), dev.to_device(xh)
    y = dev.zeros(n if trans else m, np.float64)
    blas.gemv(a, x, y, trans=trans)
    expected = ah.T @ xh if trans else ah @ xh
    np.testing.assert_allclose(y.data, expected, rtol=1e-10, atol=1e-10)

"""Tests for the GPU bounded-variable revised simplex."""

import numpy as np
import pytest

from conftest import BOUNDED_VARS_OPTIMUM, TEXTBOOK_OPTIMUM, assert_matches_oracle
from repro import solve
from repro.core.gpu_bounded_simplex import GpuBoundedRevisedSimplex
from repro.errors import SolverError
from repro.lp.generators import random_dense_lp, random_sparse_lp
from repro.lp.problem import Bounds, LPProblem
from repro.simplex.options import SolverOptions
from repro.status import SolveStatus


def boxed_random(m, n, seed, span=(0.5, 3.0)):
    rng = np.random.default_rng(seed ^ 0xCAFE)
    base = random_dense_lp(m, n, seed=seed)
    return LPProblem(
        c=base.c, a=base.a_dense(), senses=base.senses, b=base.b,
        bounds=Bounds(np.zeros(n), rng.uniform(*span, n)),
        maximize=True, name=f"gpu-boxed-{m}x{n}-s{seed}",
    )


class TestBasicOutcomes:
    def test_textbook(self, textbook_lp):
        r = solve(textbook_lp, method="gpu-revised-bounded")
        assert r.status is SolveStatus.OPTIMAL
        assert r.objective == pytest.approx(TEXTBOOK_OPTIMUM)
        assert r.solver == "gpu-revised-bounded"

    def test_general_bounds(self, bounded_vars_lp):
        r = solve(bounded_vars_lp, method="gpu-revised-bounded", dtype=np.float64)
        assert r.objective == pytest.approx(BOUNDED_VARS_OPTIMUM, rel=1e-6)

    def test_infeasible(self, infeasible_lp):
        assert solve(infeasible_lp, method="gpu-revised-bounded").status is SolveStatus.INFEASIBLE

    def test_unbounded(self, unbounded_lp):
        assert solve(unbounded_lp, method="gpu-revised-bounded").status is SolveStatus.UNBOUNDED

    def test_equality_phase1(self, equality_lp):
        r = solve(equality_lp, method="gpu-revised-bounded", dtype=np.float64)
        assert_matches_oracle(equality_lp, r)

    def test_iteration_limit(self, textbook_lp):
        r = solve(textbook_lp, method="gpu-revised-bounded", max_iterations=1)
        assert r.status is SolveStatus.ITERATION_LIMIT


class TestBoxedCorrectness:
    @pytest.mark.parametrize("seed", range(4))
    def test_boxed_fp64(self, seed):
        lp = boxed_random(15, 25, seed)
        assert_matches_oracle(lp, solve(lp, method="gpu-revised-bounded",
                                        dtype=np.float64))

    @pytest.mark.parametrize("seed", range(2))
    def test_boxed_fp32(self, seed):
        from conftest import scipy_oracle

        lp = boxed_random(15, 25, seed + 20)
        r = solve(lp, method="gpu-revised-bounded", dtype=np.float32)
        ref = scipy_oracle(lp)
        assert r.status is SolveStatus.OPTIMAL
        assert abs(r.objective - ref) <= 1e-3 * (1 + abs(ref))

    def test_sparse_path(self):
        base = random_sparse_lp(15, 30, density=0.2, seed=3)
        rng = np.random.default_rng(7)
        lp = LPProblem(c=base.c, a=base.a, senses=base.senses, b=base.b,
                       bounds=Bounds(np.zeros(30), rng.uniform(0.5, 2.0, 30)),
                       maximize=True)
        r = solve(lp, method="gpu-revised-bounded", dtype=np.float64)
        assert_matches_oracle(lp, r)
        assert "sparse.spmv_csc_t" in r.extra["by_kernel"]

    def test_bound_flips_counted(self):
        lp = boxed_random(20, 30, seed=1)
        r = solve(lp, method="gpu-revised-bounded", dtype=np.float64)
        assert r.extra["bound_flips"] >= 1

    def test_flip_kernels_cheaper_than_pivots(self):
        """A bound flip must not launch the GER basis-update kernel."""
        lp = boxed_random(24, 36, seed=2)
        solver = GpuBoundedRevisedSimplex(SolverOptions(dtype=np.float64))
        r = solver.solve(lp)
        ger_launches = solver.device.stats.by_kernel["blas.ger"].launches
        pivots = (r.iterations.total_iterations
                  - r.extra["bound_flips"]
                  - 2)  # each phase's last iteration doesn't pivot
        # GER fires once per true pivot (plus drive-out pivots), never for flips
        assert ger_launches <= pivots + 4


class TestAgreementWithCpuBounded:
    @pytest.mark.parametrize("seed", range(3))
    def test_identical_pivot_paths_fp64(self, seed):
        lp = boxed_random(18, 24, seed + 40)
        rg = solve(lp, method="gpu-revised-bounded", dtype=np.float64)
        rc = solve(lp, method="revised-bounded", dtype=np.float64)
        assert rg.objective == pytest.approx(rc.objective, rel=1e-9)
        assert rg.iterations.total_iterations == rc.iterations.total_iterations
        assert rg.extra["bound_flips"] == rc.extra["bound_flips"]
        np.testing.assert_array_equal(rg.extra["basis"], rc.extra["basis"])
        np.testing.assert_array_equal(rg.extra["at_upper"], rc.extra["at_upper"])


class TestOptionsAndCleanup:
    def test_devex_rejected(self):
        with pytest.raises(SolverError):
            GpuBoundedRevisedSimplex(SolverOptions(pricing="devex"))

    def test_scale_rejected(self):
        with pytest.raises(SolverError):
            GpuBoundedRevisedSimplex(SolverOptions(scale=True))

    @pytest.mark.parametrize("pricing", ["dantzig", "bland", "hybrid"])
    def test_pricing(self, pricing, textbook_lp):
        r = solve(textbook_lp, method="gpu-revised-bounded", pricing=pricing)
        assert r.objective == pytest.approx(TEXTBOOK_OPTIMUM)

    def test_memory_released(self, textbook_lp):
        solver = GpuBoundedRevisedSimplex()
        solver.solve(textbook_lp)
        assert solver.device.stats.bytes_in_use == 0

    def test_sections_present(self):
        lp = boxed_random(12, 16, seed=6)
        r = solve(lp, method="gpu-revised-bounded", dtype=np.float64)
        for section in ("pricing", "ftran", "ratio", "update", "transfer"):
            assert section in r.timing.kernel_breakdown

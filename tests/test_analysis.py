"""Tests for the LP instance analysis module."""

import numpy as np
import pytest

from repro.lp.analysis import ProblemStats, analyze
from repro.lp.generators import (
    degenerate_lp,
    random_dense_lp,
    random_sparse_lp,
)
from repro.lp.problem import Bounds, LPProblem


class TestAnalyze:
    def test_dense_stats(self):
        stats = analyze(random_dense_lp(10, 20, seed=0))
        assert stats.rows == 10
        assert stats.cols == 20
        assert stats.nnz == 200
        assert stats.density == pytest.approx(1.0)
        assert not stats.is_sparse
        assert stats.maximize

    def test_sparse_stats(self):
        lp = random_sparse_lp(20, 40, density=0.1, seed=1)
        stats = analyze(lp)
        assert stats.is_sparse
        assert stats.nnz == lp.a.nnz
        assert 0 < stats.density < 0.3

    def test_sense_counts(self):
        lp = LPProblem(
            c=[1.0, 1.0],
            a=[[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]],
            senses=["<=", ">=", "="],
            b=[1.0, 0.5, 2.0],
            bounds=Bounds.nonnegative(2),
        )
        stats = analyze(lp)
        assert stats.senses == {"<=": 1, ">=": 1, "=": 1}

    def test_bound_classes(self):
        lp = LPProblem(
            c=np.ones(5),
            a=np.ones((1, 5)),
            senses=["<="],
            b=[10.0],
            bounds=Bounds(
                np.array([0.0, -np.inf, 1.0, 2.0, -np.inf]),
                np.array([np.inf, np.inf, 4.0, 2.0, 7.0]),
            ),
        )
        classes = analyze(lp).bound_classes
        assert classes["nonneg"] == 1
        assert classes["free"] == 1
        assert classes["boxed"] == 1
        assert classes["fixed"] == 1
        assert classes["upper-only"] == 1

    def test_coefficient_spread(self):
        lp = LPProblem(
            c=[1.0], a=[[1e-3], [1e4]], senses=["<=", "<="], b=[1.0, 1.0],
            bounds=Bounds.nonnegative(1),
        )
        assert analyze(lp).coefficient_spread == pytest.approx(1e7)

    def test_degeneracy_smell(self):
        stats = analyze(degenerate_lp(12, 15, seed=0))
        assert stats.rhs_ratio_ties >= 1
        clean = analyze(random_dense_lp(12, 15, seed=0))
        assert clean.rhs_ratio_ties <= stats.rhs_ratio_ties

    def test_render(self):
        text = analyze(random_dense_lp(5, 6, seed=2)).render()
        assert "5 rows x 6 cols" in text
        assert "coefficient spread" in text
        assert "senses" in text

    def test_render_flags_bad_scaling(self):
        lp = LPProblem(
            c=[1.0], a=[[1e-6], [1e6]], senses=["<=", "<="], b=[1.0, 1.0],
            bounds=Bounds.nonnegative(1),
        )
        assert "scale=True" in analyze(lp).render()

    def test_stats_is_dataclass(self):
        stats = analyze(random_dense_lp(3, 3, seed=1))
        assert isinstance(stats, ProblemStats)
        assert stats.name.startswith("dense-3x3")

"""Cross-validation: thread-level SIMT kernels vs the block-level kernels.

The solver's kernels (in repro.gpu.blas / repro.core.gpu_kernels) compute
with vectorised NumPy; these tests re-execute the same operations thread by
thread on the SIMT interpreter and demand identical answers — the strongest
evidence the block-level shortcuts faithfully model per-thread CUDA code.
"""

import numpy as np
import pytest

from repro.gpu import blas
from repro.gpu import reduce as gpured
from repro.gpu.simt import (
    SimtEngine,
    simt_block_argmin,
    simt_eta_update_row,
    simt_gemv_warp_per_row,
)


@pytest.fixture
def engine():
    return SimtEngine()


class TestGemvWarpPerRow:
    def test_matches_numpy(self, engine, rng):
        m, n = 13, 37
        a = rng.normal(size=(m, n))
        x = rng.normal(size=n)
        y = np.zeros(m)
        warps_needed = m
        threads = warps_needed * 32
        block = 128
        grid = -(-threads // block)
        stats = engine.run(simt_gemv_warp_per_row, grid, block, a, x, y)
        np.testing.assert_allclose(y, a @ x, rtol=1e-12)
        assert stats.warps >= warps_needed

    def test_matches_device_blas(self, engine, device, rng):
        m, n = 8, 21
        ah = rng.normal(size=(m, n))
        xh = rng.normal(size=n)
        # block-level device BLAS
        da, dx = device.to_device(ah), device.to_device(xh)
        dy = device.zeros(m, np.float64)
        blas.gemv(da, dx, dy)
        # thread-level SIMT
        y_simt = np.zeros(m)
        engine.run(simt_gemv_warp_per_row, m, 32, ah, xh, y_simt)
        np.testing.assert_allclose(dy.data, y_simt, rtol=1e-10)

    def test_wide_row_grid_stride(self, engine, rng):
        """Rows wider than a warp exercise the lane-stride loop."""
        m, n = 3, 301
        a = rng.normal(size=(m, n))
        x = rng.normal(size=n)
        y = np.zeros(m)
        engine.run(simt_gemv_warp_per_row, 3, 32, a, x, y)
        np.testing.assert_allclose(y, a @ x, rtol=1e-12)


class TestBlockArgmin:
    def test_matches_numpy(self, engine, rng):
        n, block = 500, 128
        x = rng.normal(size=n)
        grid = -(-n // block)
        vals = np.zeros(grid)
        idxs = np.zeros(grid, dtype=np.int64)
        engine.run(simt_block_argmin, grid, block, x, vals, idxs)
        winner = int(np.argmin(vals))
        assert vals[winner] == pytest.approx(x.min())
        assert idxs[winner] == int(np.argmin(x))

    def test_tie_break_matches_device_reduction(self, engine, device):
        x = np.array([3.0, 1.0, 5.0, 1.0, 1.0, 9.0, 2.0, 8.0])
        vals = np.zeros(1)
        idxs = np.zeros(1, dtype=np.int64)
        engine.run(simt_block_argmin, 1, 8, x, vals, idxs)
        d_idx, d_val = gpured.argmin(device.to_device(x))
        assert idxs[0] == d_idx == 1  # lowest index among the tied 1.0s
        assert vals[0] == d_val


class TestEtaUpdate:
    def test_matches_solver_kernel(self, engine, device, rng):
        """Thread-per-element eta GER == the device kernels' composition."""
        from repro.core.gpu_kernels import eta_kernel, extract_row
        from repro.simplex.basis import eta_from_alpha

        m = 9
        binv_h = rng.normal(size=(m, m))
        alpha_h = rng.normal(size=m)
        p = 4
        alpha_h[p] = 2.0  # safe pivot

        # --- block-level path (device kernels + BLAS GER)
        binv_d = device.to_device(binv_h)
        alpha_d = device.to_device(alpha_h)
        eta_d = device.zeros(m, np.float64)
        row_d = device.zeros(m, np.float64)
        eta_kernel(device, alpha_d, p, float(alpha_h[p]), eta_d)
        extract_row(device, binv_d, p, row_d)
        blas.ger(eta_d, row_d, binv_d)

        # --- thread-level path
        binv_simt = binv_h.copy()
        eta = eta_from_alpha(alpha_h.copy(), p, 1e-12)
        eta_minus_ep = eta.copy()
        eta_minus_ep[p] -= 1.0
        row_p = binv_h[p, :].copy()
        threads = m * m
        engine.run(simt_eta_update_row, -(-threads // 64), 64,
                   binv_simt, eta_minus_ep, row_p)

        np.testing.assert_allclose(binv_d.data, binv_simt, rtol=1e-10)

    def test_update_is_the_pivot_inverse(self, engine, rng):
        """After the SIMT eta update, B⁻¹·(new basis column) = e_p."""
        from repro.simplex.basis import eta_from_alpha

        m = 7
        p = 2
        # start from a random non-singular B with known inverse
        b_matrix = rng.normal(size=(m, m)) + m * np.eye(m)
        binv = np.linalg.inv(b_matrix)
        new_col = rng.normal(size=m)
        alpha = binv @ new_col
        alpha[p] += 1.0  # keep the pivot well away from zero
        new_col = b_matrix @ alpha  # consistent column for the tweaked alpha

        eta = eta_from_alpha(alpha, p, 1e-12)
        eta_minus_ep = eta.copy()
        eta_minus_ep[p] -= 1.0
        row_p = binv[p, :].copy()
        engine.run(simt_eta_update_row, -(-m * m // 32), 32,
                   binv, eta_minus_ep, row_p)
        e_p = np.zeros(m)
        e_p[p] = 1.0
        np.testing.assert_allclose(binv @ new_col, e_p, atol=1e-9)

"""Tests for the CPU revised simplex solver (the paper's comparator)."""

import numpy as np
import pytest

from conftest import (
    BOUNDED_VARS_OPTIMUM,
    TEXTBOOK_OPTIMUM,
    TEXTBOOK_X,
    assert_matches_oracle,
)
from repro.errors import SolverError
from repro.lp.generators import (
    blending_lp,
    degenerate_lp,
    klee_minty_lp,
    random_dense_lp,
    random_sparse_lp,
    transportation_lp,
)
from repro.simplex.options import SolverOptions
from repro.simplex.revised_cpu import RevisedSimplexSolver
from repro.status import SolveStatus


def solve_with(lp, **kw):
    return RevisedSimplexSolver(SolverOptions(**kw)).solve(lp)


class TestBasicOutcomes:
    def test_textbook(self, textbook_lp):
        r = solve_with(textbook_lp)
        assert r.status is SolveStatus.OPTIMAL
        assert r.objective == pytest.approx(TEXTBOOK_OPTIMUM)
        np.testing.assert_allclose(r.x, TEXTBOOK_X, atol=1e-9)
        assert r.solver == "revised-cpu"

    def test_infeasible(self, infeasible_lp):
        r = solve_with(infeasible_lp)
        assert r.status is SolveStatus.INFEASIBLE
        assert r.x is None
        assert r.extra["phase1_objective"] > 0

    def test_unbounded(self, unbounded_lp):
        assert solve_with(unbounded_lp).status is SolveStatus.UNBOUNDED

    def test_equality_needs_phase1(self, equality_lp):
        r = solve_with(equality_lp)
        assert r.status is SolveStatus.OPTIMAL
        assert r.iterations.phase1_iterations > 0
        assert_matches_oracle(equality_lp, r)

    def test_general_bounds(self, bounded_vars_lp):
        r = solve_with(bounded_vars_lp)
        assert r.objective == pytest.approx(BOUNDED_VARS_OPTIMUM)

    def test_iteration_limit(self, textbook_lp):
        r = solve_with(textbook_lp, max_iterations=1)
        assert r.status is SolveStatus.ITERATION_LIMIT

    def test_all_le_skips_phase1(self, textbook_lp):
        r = solve_with(textbook_lp)
        assert r.iterations.phase1_iterations == 0


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_dense(self, seed):
        lp = random_dense_lp(25, 35, seed=seed)
        assert_matches_oracle(lp, solve_with(lp))

    @pytest.mark.parametrize("seed", range(3))
    def test_random_sparse(self, seed):
        lp = random_sparse_lp(30, 50, density=0.15, seed=seed)
        assert_matches_oracle(lp, solve_with(lp))

    def test_transportation(self):
        lp = transportation_lp(6, 8, seed=0)
        assert_matches_oracle(lp, solve_with(lp, pricing="hybrid"))

    def test_blending(self):
        lp = blending_lp(10, 6, seed=0)
        assert_matches_oracle(lp, solve_with(lp))

    def test_degenerate_with_hybrid(self):
        lp = degenerate_lp(20, 25, seed=0)
        assert_matches_oracle(lp, solve_with(lp, pricing="hybrid"))

    def test_klee_minty(self):
        lp = klee_minty_lp(7)
        r = solve_with(lp)
        assert r.objective == pytest.approx(5.0**7)


class TestOptions:
    @pytest.mark.parametrize("pricing", ["dantzig", "bland", "hybrid"])
    def test_pricing_rules_agree_on_optimum(self, pricing, textbook_lp):
        r = solve_with(textbook_lp, pricing=pricing)
        assert r.objective == pytest.approx(TEXTBOOK_OPTIMUM)

    def test_tableau_pricing_rejected(self):
        with pytest.raises(SolverError):
            RevisedSimplexSolver(SolverOptions(pricing="devex"))

    @pytest.mark.parametrize("update", ["explicit", "pfi", "lu"])
    def test_basis_updates_agree(self, update):
        lp = random_dense_lp(30, 30, seed=9)
        r = solve_with(lp, basis_update=update)
        assert_matches_oracle(lp, r)

    def test_refactor_period_triggers(self):
        lp = random_dense_lp(64, 64, seed=42)
        r = solve_with(lp, refactor_period=5)
        assert r.iterations.refactorizations >= 1
        assert_matches_oracle(lp, r)

    @pytest.mark.parametrize("ratio", ["standard", "harris"])
    def test_ratio_tests_agree(self, ratio):
        lp = random_dense_lp(25, 25, seed=4)
        assert_matches_oracle(lp, solve_with(lp, ratio_test=ratio))

    def test_scaling_option(self):
        lp = random_dense_lp(20, 20, seed=5)
        assert_matches_oracle(lp, solve_with(lp, scale=True))

    def test_bland_terminates_on_degenerate(self):
        from repro.lp.generators import beale_cycling_lp

        r = solve_with(beale_cycling_lp(), pricing="bland")
        assert r.status is SolveStatus.OPTIMAL
        assert r.objective == pytest.approx(-0.05)


class TestDiagnostics:
    def test_timing_populated(self, textbook_lp):
        r = solve_with(textbook_lp)
        assert r.timing.modeled_seconds > 0
        assert r.timing.wall_seconds > 0
        assert "pricing" in r.timing.kernel_breakdown
        assert "ftran" in r.timing.kernel_breakdown

    def test_residuals_small(self):
        lp = random_dense_lp(30, 40, seed=6)
        r = solve_with(lp)
        assert r.residuals["primal_infeasibility"] < 1e-7

    def test_basis_in_extra(self, textbook_lp):
        r = solve_with(textbook_lp)
        basis = r.extra["basis"]
        assert basis.shape == (3,)
        assert len(set(basis.tolist())) == 3

    def test_degenerate_steps_counted(self):
        lp = degenerate_lp(15, 20, seed=1)
        r = solve_with(lp, pricing="hybrid")
        assert r.iterations.degenerate_steps >= 1

    def test_summary_string(self, textbook_lp):
        r = solve_with(textbook_lp)
        s = r.summary()
        assert "optimal" in s and "revised-cpu" in s

    def test_dtype_affects_modeled_time_only(self, textbook_lp):
        r32 = solve_with(textbook_lp, dtype=np.float32)
        r64 = solve_with(textbook_lp, dtype=np.float64)
        assert r32.objective == pytest.approx(r64.objective)
        assert r32.timing.modeled_seconds < r64.timing.modeled_seconds


class TestStandardFormInput:
    def test_accepts_prestandardised(self, textbook_lp):
        from repro.lp.standard_form import to_standard_form

        std = to_standard_form(textbook_lp)
        r = RevisedSimplexSolver().solve(std)
        assert r.objective == pytest.approx(TEXTBOOK_OPTIMUM)

"""Property-based MPS round-trip: write → read is lossless for any LPProblem."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lp.mps import read_mps, write_mps
from repro.lp.problem import Bounds, LPProblem


@st.composite
def round_trippable_lps(draw):
    """Random general-form LPs with all bound classes and senses."""
    m = draw(st.integers(1, 8))
    n = draw(st.integers(1, 8))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    a = np.round(rng.normal(size=(m, n)) * 3, 6)
    # MPS drops explicitly-zero columns; keep every variable present by
    # ensuring each column has at least one nonzero
    for j in range(n):
        if not np.any(a[:, j]):
            a[rng.integers(0, m), j] = 1.0
    b = np.round(rng.normal(size=m) * 5, 6)
    c = np.round(rng.normal(size=n) * 2, 6)
    senses = [draw(st.sampled_from(["<=", ">=", "="])) for _ in range(m)]
    kinds = [draw(st.sampled_from(["nonneg", "free", "boxed", "upper", "lower", "fixed"]))
             for _ in range(n)]
    lower = np.zeros(n)
    upper = np.full(n, np.inf)
    for j, kind in enumerate(kinds):
        if kind == "free":
            lower[j] = -np.inf
        elif kind == "boxed":
            lower[j] = round(rng.uniform(-3, 0), 6)
            upper[j] = round(lower[j] + rng.uniform(0.5, 4), 6)
        elif kind == "upper":
            lower[j] = -np.inf
            upper[j] = round(rng.uniform(-2, 5), 6)
        elif kind == "lower":
            lower[j] = round(rng.uniform(-4, 4), 6)
        elif kind == "fixed":
            lower[j] = upper[j] = round(rng.uniform(-2, 2), 6)
    return LPProblem(
        c=c, a=a, senses=senses, b=b, bounds=Bounds(lower, upper),
        maximize=draw(st.booleans()), name="fuzz",
    )


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(lp=round_trippable_lps())
def test_mps_roundtrip_lossless(lp):
    back = read_mps(write_mps(lp))
    assert back.maximize == lp.maximize
    assert back.num_vars == lp.num_vars
    assert back.num_constraints == lp.num_constraints
    np.testing.assert_allclose(back.c, lp.c, atol=1e-12)
    np.testing.assert_allclose(back.b, lp.b, atol=1e-12)
    np.testing.assert_allclose(back.a_dense(), lp.a_dense(), atol=1e-12)
    assert back.senses == lp.senses
    np.testing.assert_allclose(back.bounds.lower, lp.bounds.lower, atol=1e-12)
    np.testing.assert_allclose(back.bounds.upper, lp.bounds.upper, atol=1e-12)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(lp=round_trippable_lps())
def test_mps_roundtrip_solves_identically(lp):
    from repro import solve

    back = read_mps(write_mps(lp))
    r1 = solve(lp, method="revised", pricing="hybrid")
    r2 = solve(back, method="revised", pricing="hybrid")
    assert r1.status is r2.status
    if r1.is_optimal:
        assert abs(r1.objective - r2.objective) <= 1e-9 * (1 + abs(r1.objective))

"""Tests for the paper's GPU revised simplex solver."""

import numpy as np
import pytest

from conftest import (
    BOUNDED_VARS_OPTIMUM,
    TEXTBOOK_OPTIMUM,
    TEXTBOOK_X,
    assert_matches_oracle,
)
from repro.core.gpu_revised_simplex import GpuRevisedSimplex
from repro.errors import SolverError
from repro.gpu.device import Device
from repro.lp.generators import (
    degenerate_lp,
    klee_minty_lp,
    random_dense_lp,
    random_sparse_lp,
    transportation_lp,
)
from repro.perfmodel.presets import GTX8800_PARAMS
from repro.simplex.options import SolverOptions
from repro.status import SolveStatus


def solve_gpu(lp, **kw):
    return GpuRevisedSimplex(SolverOptions(**kw)).solve(lp)


class TestBasicOutcomes:
    def test_textbook(self, textbook_lp):
        r = solve_gpu(textbook_lp)
        assert r.status is SolveStatus.OPTIMAL
        assert r.objective == pytest.approx(TEXTBOOK_OPTIMUM)
        np.testing.assert_allclose(r.x, TEXTBOOK_X, atol=1e-6)
        assert r.solver == "gpu-revised"

    def test_infeasible(self, infeasible_lp):
        assert solve_gpu(infeasible_lp).status is SolveStatus.INFEASIBLE

    def test_unbounded(self, unbounded_lp):
        assert solve_gpu(unbounded_lp).status is SolveStatus.UNBOUNDED

    def test_equality_phase1(self, equality_lp):
        r = solve_gpu(equality_lp)
        assert r.iterations.phase1_iterations > 0
        assert_matches_oracle(equality_lp, r)

    def test_general_bounds(self, bounded_vars_lp):
        r = solve_gpu(bounded_vars_lp)
        assert r.objective == pytest.approx(BOUNDED_VARS_OPTIMUM, rel=1e-6)

    def test_iteration_limit(self, textbook_lp):
        r = solve_gpu(textbook_lp, max_iterations=1)
        assert r.status is SolveStatus.ITERATION_LIMIT


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_dense_fp64(self, seed):
        lp = random_dense_lp(25, 35, seed=seed)
        assert_matches_oracle(lp, solve_gpu(lp, dtype=np.float64))

    @pytest.mark.parametrize("seed", range(3))
    def test_random_dense_fp32(self, seed):
        lp = random_dense_lp(25, 35, seed=seed)
        r = solve_gpu(lp, dtype=np.float32)
        from conftest import scipy_oracle

        ref = scipy_oracle(lp)
        assert r.status is SolveStatus.OPTIMAL
        assert abs(r.objective - ref) <= 1e-3 * (1 + abs(ref))

    @pytest.mark.parametrize("seed", range(3))
    def test_sparse_path(self, seed):
        lp = random_sparse_lp(30, 50, density=0.15, seed=seed)
        r = solve_gpu(lp, dtype=np.float64)
        assert_matches_oracle(lp, r)
        # the sparse kernel path actually ran
        assert "sparse.spmv_csc_t" in r.extra["by_kernel"]

    def test_transportation(self):
        lp = transportation_lp(5, 7, seed=0)
        assert_matches_oracle(lp, solve_gpu(lp, pricing="hybrid", dtype=np.float64))

    def test_degenerate_hybrid(self):
        lp = degenerate_lp(20, 24, seed=0)
        assert_matches_oracle(lp, solve_gpu(lp, pricing="hybrid", dtype=np.float64))

    def test_klee_minty(self):
        r = solve_gpu(klee_minty_lp(6), dtype=np.float64)
        assert r.objective == pytest.approx(5.0**6)


class TestAgreementWithCpu:
    @pytest.mark.parametrize("seed", range(3))
    def test_identical_pivot_path_fp64(self, seed):
        """Same pricing + ratio rules + fp64 arithmetic: the GPU walks the
        CPU's exact pivot sequence."""
        from repro.simplex.revised_cpu import RevisedSimplexSolver

        lp = random_dense_lp(30, 40, seed=seed + 50)
        rg = solve_gpu(lp, dtype=np.float64)
        rc = RevisedSimplexSolver(SolverOptions(dtype=np.float64)).solve(lp)
        assert rg.iterations.total_iterations == rc.iterations.total_iterations
        assert rg.objective == pytest.approx(rc.objective, rel=1e-9)
        np.testing.assert_array_equal(rg.extra["basis"], rc.extra["basis"])


class TestOptions:
    def test_tableau_pricing_rejected(self):
        with pytest.raises(SolverError):
            GpuRevisedSimplex(SolverOptions(pricing="devex"))

    @pytest.mark.parametrize("pricing", ["dantzig", "bland", "hybrid"])
    def test_pricing_rules(self, pricing, textbook_lp):
        r = solve_gpu(textbook_lp, pricing=pricing)
        assert r.objective == pytest.approx(TEXTBOOK_OPTIMUM)

    def test_refactor_period(self):
        lp = random_dense_lp(64, 64, seed=42)
        r = solve_gpu(lp, refactor_period=5, dtype=np.float64)
        assert r.iterations.refactorizations >= 1
        assert r.status is SolveStatus.OPTIMAL

    def test_scaling(self):
        lp = random_dense_lp(20, 25, seed=7)
        assert_matches_oracle(lp, solve_gpu(lp, scale=True, dtype=np.float64))

    def test_alternate_device_model(self, textbook_lp):
        solver = GpuRevisedSimplex(gpu_params=GTX8800_PARAMS)
        r = solver.solve(textbook_lp)
        assert r.extra["device"] == "GeForce 8800 GTX"
        assert r.objective == pytest.approx(TEXTBOOK_OPTIMUM)

    def test_external_device_reused(self, textbook_lp, device):
        solver = GpuRevisedSimplex(device=device)
        solver.solve(textbook_lp)
        assert solver.device is device


class TestDeviceAccounting:
    def test_sections_cover_phases(self, textbook_lp):
        r = solve_gpu(textbook_lp)
        bd = r.timing.kernel_breakdown
        for section in ("pricing", "ftran", "ratio", "update", "transfer"):
            assert section in bd, section
            assert bd[section] >= 0

    def test_modeled_time_positive_and_decomposed(self):
        lp = random_dense_lp(32, 48, seed=3)
        r = solve_gpu(lp)
        assert r.timing.modeled_seconds > 0
        assert r.timing.transfer_seconds > 0
        # phase sections partition a subset of the clock; the 'transfer'
        # entry overlaps them (scalar reads happen inside pricing/ratio),
        # so exclude it from the partition check
        sections = {
            k: v for k, v in r.timing.kernel_breakdown.items() if k != "transfer"
        }
        assert sum(sections.values()) <= r.timing.modeled_seconds * 1.01 + 1e-9
        assert r.timing.transfer_seconds <= r.timing.modeled_seconds

    def test_device_memory_released(self, textbook_lp):
        solver = GpuRevisedSimplex()
        solver.solve(textbook_lp)
        assert solver.device.stats.bytes_in_use == 0

    def test_memory_released_on_infeasible(self, infeasible_lp):
        solver = GpuRevisedSimplex()
        solver.solve(infeasible_lp)
        assert solver.device.stats.bytes_in_use == 0

    def test_kernel_launches_counted(self, textbook_lp):
        r = solve_gpu(textbook_lp)
        assert r.extra["kernel_launches"] > 0
        assert sum(r.extra["by_kernel"].values()) > 0

    def test_peak_memory_reported(self):
        lp = random_dense_lp(64, 64, seed=1)
        r = solve_gpu(lp, dtype=np.float32)
        # at least A (m*n*4) + B^-1 (m*m*4) resident
        assert r.extra["peak_device_bytes"] >= 64 * 64 * 4 * 2

    def test_fp32_halves_main_matrix_traffic(self):
        lp = random_dense_lp(48, 48, seed=2)
        r32 = solve_gpu(lp, dtype=np.float32)
        r64 = solve_gpu(lp, dtype=np.float64)
        assert r32.timing.modeled_seconds < r64.timing.modeled_seconds


class TestPrecisionBehaviour:
    def test_fp32_objective_close_to_fp64(self):
        lp = random_dense_lp(40, 60, seed=8)
        r32 = solve_gpu(lp, dtype=np.float32)
        r64 = solve_gpu(lp, dtype=np.float64)
        assert r32.objective == pytest.approx(r64.objective, rel=1e-3)

    def test_tolerances_widened_for_fp32(self, textbook_lp):
        """fp32 solves must not spin on sub-epsilon reduced costs."""
        r = solve_gpu(textbook_lp, dtype=np.float32, tol_reduced_cost=1e-15)
        assert r.status is SolveStatus.OPTIMAL

"""Tests for the simulated device: allocator, clock, launch path, stats."""

import numpy as np
import pytest

from repro.errors import DeviceMemoryError, InvalidLaunchError
from repro.gpu.device import Device, DeviceStats
from repro.gpu.kernel import launch_config
from repro.perfmodel.gpu_model import GpuModelParams
from repro.perfmodel.ops import OpCost
from repro.perfmodel.presets import GTX280_PARAMS


class TestAllocator:
    def test_alloc_shapes_and_dtypes(self, device):
        a = device.alloc((4, 5), np.float32)
        assert a.shape == (4, 5)
        assert a.dtype == np.float32
        b = device.alloc(7, np.float64)
        assert b.shape == (7,)
        assert b.nbytes == 56

    def test_zeros(self, device):
        z = device.zeros(10)
        assert np.all(z.data == 0)

    def test_bytes_accounting(self, device):
        before = device.stats.bytes_in_use
        a = device.alloc(1000, np.float32)
        assert device.stats.bytes_in_use == before + 4000
        a.free()
        assert device.stats.bytes_in_use == before

    def test_peak_tracking(self, device):
        a = device.alloc(1000, np.float32)
        peak1 = device.stats.peak_bytes_in_use
        a.free()
        b = device.alloc(10, np.float32)
        assert device.stats.peak_bytes_in_use == peak1
        b.free()

    def test_oom(self):
        tiny = GpuModelParams(global_mem_bytes=1024)
        dev = Device(tiny)
        with pytest.raises(DeviceMemoryError):
            dev.alloc(1024, np.float64)

    def test_oom_disabled(self):
        tiny = GpuModelParams(global_mem_bytes=1024)
        dev = Device(tiny, enforce_memory_limit=False)
        dev.alloc(1024, np.float64)  # no raise

    def test_oom_after_fill(self):
        params = GpuModelParams(global_mem_bytes=8192)
        dev = Device(params)
        keep = dev.alloc(1024, np.float64)  # 8 KiB: exactly full
        with pytest.raises(DeviceMemoryError):
            dev.alloc(1, np.float32)
        keep.free()
        dev.alloc(1, np.float32)  # now fits

    def test_to_device_roundtrip(self, device):
        host = np.arange(12, dtype=np.float32).reshape(3, 4)
        arr = device.to_device(host)
        assert np.array_equal(arr.copy_to_host(), host)

    def test_to_device_dtype_cast(self, device):
        arr = device.to_device(np.arange(4), dtype=np.float32)
        assert arr.dtype == np.float32

    def test_to_device_rejects_bad_dtype(self, device):
        with pytest.raises(TypeError):
            device.to_device(np.array(["a", "b"]))

    def test_memset(self, device):
        a = device.to_device(np.ones(16, dtype=np.float32))
        device.memset(a, 0)
        assert np.all(a.data == 0)


class TestClockAndLaunch:
    def test_launch_advances_clock(self, device):
        t0 = device.clock
        device.launch("k", lambda: None, OpCost(flops=1e6, threads=1024))
        assert device.clock > t0

    def test_launch_runs_body(self, device):
        hits = []
        device.launch("k", lambda: hits.append(1), OpCost(threads=1))
        assert hits == [1]

    def test_launch_records_stats(self, device):
        device.launch("mykernel", lambda: None, OpCost(flops=100, threads=64))
        device.launch("mykernel", lambda: None, OpCost(flops=100, threads=64))
        rec = device.stats.by_kernel["mykernel"]
        assert rec.launches == 2
        assert rec.flops == 200
        assert rec.seconds > 0
        assert device.stats.kernel_launches == 2

    def test_launch_block_limit(self, device):
        with pytest.raises(InvalidLaunchError):
            device.launch(
                "k", lambda: None, OpCost(threads=10), block=100000
            )

    def test_synchronize_returns_clock(self, device):
        device.launch("k", lambda: None, OpCost(flops=1, threads=1))
        assert device.synchronize() == device.clock

    def test_timed_section_accumulates(self, device):
        with device.timed_section("phase"):
            device.launch("k", lambda: None, OpCost(flops=1e6, threads=1024))
        with device.timed_section("phase"):
            device.launch("k", lambda: None, OpCost(flops=1e6, threads=1024))
        assert device.stats.sections["phase"] == pytest.approx(device.clock)

    def test_timed_section_nesting(self, device):
        with device.timed_section("outer"):
            with device.timed_section("inner"):
                device.launch("k", lambda: None, OpCost(flops=1e6, threads=64))
        assert device.stats.sections["outer"] == pytest.approx(
            device.stats.sections["inner"]
        )

    def test_reset_stats_keeps_allocations(self, device):
        a = device.alloc(100, np.float32)
        device.launch("k", lambda: None, OpCost(flops=1, threads=1))
        live = device.stats.bytes_in_use
        device.reset_stats()
        assert device.clock == 0.0
        assert device.stats.kernel_launches == 0
        assert device.stats.bytes_in_use == live
        a.free()

    def test_reset_stats_clears_timeline(self, device):
        # record_timeline's docstring promises reset_stats drops recorded
        # events while leaving recording enabled
        device.record_timeline()
        device.launch("k", lambda: None, OpCost(flops=1, threads=1))
        device.to_device(np.zeros(8, dtype=np.float32))
        assert device.timeline
        device.reset_stats()
        assert device.timeline == []  # cleared but still recording
        device.launch("k", lambda: None, OpCost(flops=1, threads=1))
        assert len(device.timeline) == 1

    def test_reset_stats_without_timeline(self, device):
        device.launch("k", lambda: None, OpCost(flops=1, threads=1))
        device.reset_stats()
        assert device.timeline is None  # stays disabled

    def test_kernel_breakdown_copy(self, device):
        device.launch("a", lambda: None, OpCost(flops=1, threads=1))
        bd = device.stats.kernel_breakdown()
        assert "a" in bd
        bd["a"] = -1.0  # mutating the copy must not affect stats
        assert device.stats.by_kernel["a"].seconds > 0


class TestTransferAccounting:
    def test_htod_accounted(self, device):
        arr = device.to_device(np.zeros(1000, dtype=np.float32))
        assert device.stats.htod_bytes == 4000
        assert device.stats.transfer_seconds > 0
        arr.free()

    def test_dtoh_accounted(self, device):
        arr = device.to_device(np.zeros(1000, dtype=np.float32))
        before = device.stats.dtoh_bytes
        arr.copy_to_host()
        assert device.stats.dtoh_bytes == before + 4000

    def test_transfer_time_on_clock(self, device):
        t0 = device.clock
        device.to_device(np.zeros(10**6, dtype=np.float32))
        assert device.clock - t0 >= 4e6 / GTX280_PARAMS.pcie_bandwidth


class TestLaunchConfig:
    def test_grid_covers_threads(self):
        cfg = launch_config(1000, 256)
        assert cfg.grid == 4
        assert cfg.launched_threads == 1024
        assert cfg.idle_threads == 24

    def test_exact_fit(self):
        cfg = launch_config(512, 256)
        assert cfg.grid == 2
        assert cfg.idle_threads == 0

    def test_invalid_threads(self):
        with pytest.raises(InvalidLaunchError):
            launch_config(0)

    def test_invalid_block(self):
        with pytest.raises(InvalidLaunchError):
            launch_config(10, 0)

    def test_block_over_device_limit(self):
        with pytest.raises(InvalidLaunchError):
            launch_config(10, 1024, GTX280_PARAMS)


def test_stats_reset_standalone():
    s = DeviceStats()
    s.record_kernel("k", 1.0, OpCost(flops=10))
    s.bytes_in_use = 42
    s.reset()
    assert s.kernel_launches == 0
    assert s.bytes_in_use == 42  # allocations survive


def test_stats_reset_reanchors_peak():
    # peak_bytes_in_use restarts at the live amount, not at the old peak
    # and not at zero (live allocations are still in memory)
    s = DeviceStats()
    s.bytes_in_use = 100
    s.peak_bytes_in_use = 5000
    s.reset()
    assert s.peak_bytes_in_use == 100
    assert s.bytes_in_use == 100


def test_stats_reset_clears_counters_and_sections():
    s = DeviceStats()
    s.record_kernel("k", 1.0, OpCost(flops=10))
    s.allocations = 3
    s.frees = 1
    s.htod_bytes = 4096
    s.sections["phase"] = 2.5
    s.reset()
    assert s.kernel_launches == 0
    assert s.kernel_seconds == 0.0
    assert s.by_kernel == {}
    assert s.allocations == 0
    assert s.frees == 0
    assert s.htod_bytes == 0
    assert s.sections == {}

"""Tests for DeviceArray semantics: transfers, lifetime, scalar access."""

import numpy as np
import pytest

from repro.errors import DeviceArrayError
from repro.gpu.device import Device
from repro.perfmodel.presets import GTX8800_PARAMS


class TestProperties:
    def test_structural(self, device):
        a = device.alloc((3, 4), np.float64)
        assert a.shape == (3, 4)
        assert a.size == 12
        assert a.ndim == 2
        assert a.itemsize == 8
        assert a.nbytes == 96
        assert len(a) == 3

    def test_repr_states(self, device):
        a = device.alloc(3, np.float32)
        assert "live" in repr(a)
        a.free()
        assert "freed" in repr(a)


class TestLifetime:
    def test_free_then_use_raises(self, device):
        a = device.alloc(4, np.float32)
        a.free()
        with pytest.raises(DeviceArrayError):
            _ = a.data
        with pytest.raises(DeviceArrayError):
            a.copy_to_host()
        with pytest.raises(DeviceArrayError):
            a.free()

    def test_is_freed_flag(self, device):
        a = device.alloc(4, np.float32)
        assert not a.is_freed
        a.free()
        assert a.is_freed


class TestTransfers:
    def test_copy_from_host_shape_mismatch(self, device):
        a = device.alloc(4, np.float32)
        with pytest.raises(DeviceArrayError):
            a.copy_from_host(np.zeros(5))

    def test_copy_from_host_casts_dtype(self, device):
        a = device.alloc(4, np.float32)
        a.copy_from_host(np.arange(4, dtype=np.int64))
        assert a.dtype == np.float32
        assert np.array_equal(a.data, [0, 1, 2, 3])

    def test_copy_to_host_out_buffer(self, device):
        a = device.to_device(np.arange(6, dtype=np.float64))
        out = np.empty(6, dtype=np.float64)
        result = a.copy_to_host(out)
        assert result is out
        assert np.array_equal(out, np.arange(6))

    def test_copy_to_host_bad_out(self, device):
        a = device.to_device(np.arange(6, dtype=np.float64))
        with pytest.raises(DeviceArrayError):
            a.copy_to_host(np.empty(5, dtype=np.float64))
        with pytest.raises(DeviceArrayError):
            a.copy_to_host(np.empty(6, dtype=np.float32))

    def test_copy_to_host_is_a_copy(self, device):
        a = device.to_device(np.arange(3, dtype=np.float32))
        h = a.copy_to_host()
        h[0] = 99
        assert a.data[0] == 0

    def test_dtod(self, device):
        a = device.to_device(np.arange(5, dtype=np.float32))
        b = device.zeros(5, np.float32)
        b.copy_from_device(a)
        assert np.array_equal(b.data, a.data)
        assert device.stats.dtod_bytes == 20

    def test_dtod_mismatch(self, device):
        a = device.to_device(np.arange(5, dtype=np.float32))
        b = device.zeros(6, np.float32)
        with pytest.raises(DeviceArrayError):
            b.copy_from_device(a)

    def test_dtod_across_devices_rejected(self, device):
        other = Device(GTX8800_PARAMS)
        a = device.to_device(np.arange(5, dtype=np.float32))
        b = other.zeros(5, np.float32)
        with pytest.raises(DeviceArrayError):
            b.copy_from_device(a)


class TestScalarAccess:
    def test_scalar_to_host(self, device):
        a = device.to_device(np.array([1.5, 2.5, 3.5], dtype=np.float32))
        before = device.stats.dtoh_bytes
        assert a.scalar_to_host(1) == pytest.approx(2.5)
        assert device.stats.dtoh_bytes == before + 4

    def test_scalar_to_host_2d(self, device):
        a = device.to_device(np.arange(6, dtype=np.float64).reshape(2, 3))
        assert a.scalar_to_host((1, 2)) == 5.0

    def test_set_scalar(self, device):
        a = device.zeros(4, np.float32)
        before = device.stats.htod_bytes
        a.set_scalar(2, 7.0)
        assert a.data[2] == 7.0
        assert device.stats.htod_bytes == before + 4

    def test_scalar_transfers_latency_bound(self, device):
        """A 4-byte read costs ~PCIe latency, same order as a 4 KiB read."""
        a = device.to_device(np.zeros(1024, dtype=np.float32))
        t0 = device.clock
        a.scalar_to_host(0)
        dt_scalar = device.clock - t0
        assert dt_scalar >= device.params.pcie_latency

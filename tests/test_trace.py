"""Tests for the per-iteration solver tracing subsystem (repro.trace).

The contract under test:

1. every solve method, with ``trace=True``, attaches a ``SolveTrace`` whose
   record count equals the solver's reported iteration total;
2. tracing never perturbs results — status, objective, iteration counts and
   modeled seconds are bit-identical with tracing on and off;
3. the merged Chrome-trace JSON round-trips through ``json.loads`` and
   carries both solver tracks and (for GPU methods) kernel/transfer tracks;
4. the legacy ``result.extra["trace"]`` tuple format is preserved.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.batch import solve_batch
from repro.gpu.device import Device
from repro.lp.generators import random_dense_lp
from repro.lp.problem import Bounds, LPProblem
from repro.solve import solve
from repro.trace import (
    PIVOT_EVENTS,
    TERMINAL_EVENTS,
    SolveTrace,
    TraceCollector,
    TraceRecord,
    merged_chrome_trace,
    rule_label,
    validate_chrome_trace,
)

ALL_METHODS = (
    "tableau",
    "revised",
    "revised-bounded",
    "dual",
    "gpu-revised",
    "gpu-revised-bounded",
    "gpu-tableau",
)


@pytest.fixture(scope="module")
def lp():
    return random_dense_lp(14, 20, seed=7)


# ---------------------------------------------------------------------------
# 1. one record per counted iteration, for every solver
# ---------------------------------------------------------------------------


class TestIterationInvariant:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_record_count_equals_iteration_total(self, lp, method):
        result = solve(lp, method=method, trace=True)
        assert result.trace is not None
        assert len(result.trace) == result.iterations.total_iterations
        assert result.trace.iteration_count == result.iterations.total_iterations

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_record_fields_well_formed(self, lp, method):
        trace = solve(lp, method=method, trace=True).trace
        for r in trace:
            assert r.event in PIVOT_EVENTS | TERMINAL_EVENTS
            assert r.phase in (1, 2)
            assert r.iteration >= 1
            assert r.seconds >= 0.0
            assert all(v >= 0.0 for v in r.sections.values())
            if r.event == "pivot":
                assert r.entering >= 0
                assert r.leaving_row >= 0
                assert r.pivot != 0.0
                assert r.pricing_rule
        # records are in modeled-clock order
        for a, b in zip(trace, trace.records[1:]):
            assert b.t_start == pytest.approx(a.t_end)

    def test_phase_iterations_match_stats(self, lp):
        result = solve(lp, method="revised", trace=True)
        phases = result.trace.phase_iterations()
        assert phases.get(1, 0) == result.iterations.phase1_iterations
        assert phases.get(2, 0) == result.iterations.phase2_iterations

    def test_no_trace_by_default(self, lp):
        result = solve(lp, method="gpu-revised")
        assert result.trace is None
        assert "trace" not in result.extra

    def test_bound_flips_traced_as_flip_events(self):
        # maximize x with 0 <= x <= 1: the bounded solvers flip x to its
        # upper bound without a basis change
        lp = LPProblem.minimize(
            c=[-1.0, 0.0],
            a_ub=[[1.0, 1.0]],
            b_ub=[5.0],
            bounds=Bounds(np.array([0.0, 0.0]), np.array([1.0, 5.0])),
        )
        for method in ("revised-bounded", "gpu-revised-bounded"):
            result = solve(lp, method=method, trace=True)
            assert result.is_optimal
            events = {r.event for r in result.trace}
            assert "flip" in events, method


# ---------------------------------------------------------------------------
# 2. tracing never perturbs the solve
# ---------------------------------------------------------------------------


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    method=st.sampled_from(ALL_METHODS),
    m=st.integers(4, 12),
    extra=st.integers(1, 8),
    seed=st.integers(0, 10_000),
)
def test_tracing_is_bit_identical(method, m, extra, seed):
    lp = random_dense_lp(m, m + extra, seed=seed)
    plain = solve(lp, method=method)
    traced = solve(lp, method=method, trace=True)
    assert plain.status == traced.status
    assert plain.iterations.total_iterations == traced.iterations.total_iterations
    assert plain.timing.modeled_seconds == traced.timing.modeled_seconds
    if plain.objective is not None:
        assert plain.objective == traced.objective
        assert np.array_equal(plain.x, traced.x)
    assert len(traced.trace) == traced.iterations.total_iterations


# ---------------------------------------------------------------------------
# 3. the merged Chrome trace
# ---------------------------------------------------------------------------


class TestChromeTrace:
    def test_gpu_merge_has_solver_and_kernel_tracks(self, lp):
        dev = Device()
        dev.record_timeline()
        result = solve(lp, method="gpu-revised", trace=True, device=dev)
        text = merged_chrome_trace(result.trace, device=dev)
        doc = json.loads(text)  # round-trips as plain JSON
        assert validate_chrome_trace(text) == doc
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert "solver-phase" in cats
        assert "iteration" in cats
        assert "kernel" in cats
        assert "transfer" in cats
        iter_events = [e for e in doc["traceEvents"] if e.get("cat") == "iteration"]
        assert len(iter_events) == result.iterations.total_iterations

    def test_cpu_merge_is_solver_only(self, lp):
        result = solve(lp, method="revised", trace=True)
        doc = validate_chrome_trace(merged_chrome_trace(result.trace))
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert "solver-phase" in cats
        assert "kernel" not in cats

    def test_writes_target_file(self, lp, tmp_path):
        result = solve(lp, method="revised", trace=True)
        target = tmp_path / "trace.json"
        text = merged_chrome_trace(result.trace, target=target)
        assert json.loads(target.read_text()) == json.loads(text)

    def test_track_names_metadata(self, lp):
        result = solve(lp, method="revised", trace=True)
        doc = validate_chrome_trace(merged_chrome_trace(result.trace))
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"solver iterations", "solver phases", "kernels", "transfers"} <= names

    def test_validate_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_chrome_trace("[1, 2, 3]")
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [
                    {"name": "k", "ph": "X", "pid": 0, "tid": 0,
                     "ts": 0.0, "dur": -1.0}
                ]}
            )


# ---------------------------------------------------------------------------
# 4. legacy tuple compatibility + aggregation/rendering
# ---------------------------------------------------------------------------


class TestLegacyAndAggregation:
    def test_legacy_tuples_preserved_in_extra(self, lp):
        result = solve(lp, method="revised", trace=True)
        legacy = result.extra["trace"]
        assert legacy == result.trace.legacy_tuples()
        total = result.iterations.total_iterations
        # historical contract: one tuple per completed pivot, i.e. all
        # iterations except the terminal detection of each phase
        assert total - 2 <= len(legacy) < total
        phase, iteration, entering, leaving_row, theta, objective = legacy[0]
        assert phase in (1, 2) and entering >= 0 and leaving_row >= 0

    def test_phase_seconds_cover_modeled_time(self, lp):
        result = solve(lp, method="gpu-revised", trace=True)
        sections = result.trace.phase_seconds()
        assert sections
        assert sum(sections.values()) <= result.timing.modeled_seconds * (1 + 1e-9)

    def test_objective_series_monotone_for_phase2(self, lp):
        trace = solve(lp, method="revised", trace=True).trace
        series = trace.objective_series(phase=2)
        assert series  # minimisation: internal objective never increases
        assert all(b <= a + 1e-9 for a, b in zip(series, series[1:]))

    def test_summary_renders(self, lp):
        trace = solve(lp, method="gpu-revised", trace=True).trace
        text = trace.summary()
        assert "gpu-revised" in text
        assert "phase 2" in text
        assert "exit=optimal" in text

    def test_batch_trace_aggregation(self):
        lps = [random_dense_lp(8, 12, seed=s) for s in range(4)]
        batch = solve_batch(lps, method="gpu-revised", trace=True)
        assert len(batch.traces) == 4
        breakdown = batch.phase_breakdown()
        assert breakdown
        assert sum(breakdown.values()) == pytest.approx(
            sum(sum(t.phase_seconds().values()) for t in batch.traces)
        )
        untraced = solve_batch(lps, method="gpu-revised")
        assert untraced.traces == []
        assert untraced.phase_breakdown() == {}


# ---------------------------------------------------------------------------
# 5. the collector itself
# ---------------------------------------------------------------------------


class TestTraceCollector:
    def test_deltas_between_records(self):
        clock = {"t": 1.0}
        sections = {"pricing": 0.5}
        tr = TraceCollector(
            "test", clock=lambda: clock["t"], sections=lambda: sections
        )
        clock["t"] = 1.25
        sections["pricing"] = 0.6
        sections["ratio"] = 0.1
        r1 = tr.record(phase=1, iteration=1)
        assert r1.t_start == 1.0 and r1.t_end == 1.25
        assert r1.seconds == pytest.approx(0.25)
        assert r1.sections == pytest.approx({"pricing": 0.1, "ratio": 0.1})
        clock["t"] = 1.5
        r2 = tr.record(phase=1, iteration=2, event="optimal")
        assert r2.t_start == 1.25 and r2.sections == {}
        assert len(tr.trace) == 2

    def test_record_defaults(self):
        r = TraceRecord(phase=2, iteration=3)
        assert r.event == "pivot"
        assert r.entering == -1 and r.leaving_var == -1
        assert math.isnan(r.objective)

    def test_trace_indexing(self):
        trace = SolveTrace("s", meta={"m": 1})
        assert len(trace) == 0 and list(trace) == []
        assert trace.meta == {"m": 1}

    def test_rule_label(self):
        from repro.simplex.pricing import make_pricing_rule

        assert rule_label("dantzig") == "dantzig"
        assert rule_label(make_pricing_rule("bland", 4)) == "bland"
        hybrid = make_pricing_rule("hybrid", 4)
        assert rule_label(hybrid) in ("hybrid:dantzig", "hybrid:bland")


# ---------------------------------------------------------------------------
# device-timeline starts in the merged Chrome trace
# ---------------------------------------------------------------------------


class TestTimelineStarts:
    def test_recorded_starts_are_honored(self):
        """Events with explicit (overlapping) starts keep them — schedule
        replays interleave stream lanes, and a cumulative-sum rebuild would
        falsely serialise them."""
        from repro.gpu.device import TimelineEvent
        from repro.trace.chrome import _device_timeline_events

        events = [
            TimelineEvent("kernel", "lane0", 0.004, threads=64, start=0.0),
            TimelineEvent("kernel", "lane1", 0.004, threads=64, start=0.001),
            TimelineEvent("htod", "transfer", 0.002, nbytes=8, start=0.002),
        ]
        out = _device_timeline_events(events, pid=0)
        assert [e["ts"] for e in out] == [0.0, 1000.0, 2000.0]
        # lanes 0 and 1 overlap on the trace: [0, 4ms) vs [1ms, 5ms)
        assert out[0]["ts"] + out[0]["dur"] > out[1]["ts"]

    def test_legacy_events_fall_back_to_cumulative_sum(self):
        from repro.gpu.device import TimelineEvent
        from repro.trace.chrome import _device_timeline_events

        events = [
            TimelineEvent("kernel", "a", 0.003),
            TimelineEvent("dtoh", "transfer", 0.001),
            TimelineEvent("kernel", "b", 0.002),
        ]
        out = _device_timeline_events(events, pid=0)
        assert [e["ts"] for e in out] == [0.0, 3000.0, 4000.0]

    def test_device_records_serialized_starts(self):
        """The device itself serialises work, so its recorded starts equal
        the cumulative reconstruction — the merged trace is unchanged for
        straight-line solves."""
        dev = Device()
        dev.record_timeline()
        arr = dev.to_device(np.arange(16, dtype=np.float32))
        dev.memset(arr, 0)
        arr.copy_to_host()
        cursor = 0.0
        for ev in dev.timeline:
            assert ev.start == pytest.approx(cursor)
            cursor += ev.seconds
        assert cursor == pytest.approx(dev.clock)

"""Tests for the machine-neutral OpCost descriptor."""

import dataclasses

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.perfmodel.ops import OpCost, ZERO_COST


class TestValidation:
    def test_defaults(self):
        c = OpCost()
        assert c.flops == 0.0
        assert c.bytes_total == 0.0
        assert c.threads == 1
        assert c.coalesced_fraction == 1.0

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            OpCost(flops=-1.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            OpCost(bytes_read=-1.0)
        with pytest.raises(ValueError):
            OpCost(bytes_written=-8.0)

    def test_zero_threads_rejected(self):
        with pytest.raises(ValueError):
            OpCost(threads=0)

    def test_coalesced_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            OpCost(coalesced_fraction=1.5)
        with pytest.raises(ValueError):
            OpCost(coalesced_fraction=-0.1)

    def test_divergent_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            OpCost(divergent_fraction=2.0)

    def test_frozen(self):
        c = OpCost(flops=10)
        with pytest.raises(dataclasses.FrozenInstanceError):
            c.flops = 20  # type: ignore[misc]


class TestArithmetic:
    def test_bytes_total(self):
        c = OpCost(bytes_read=100, bytes_written=28)
        assert c.bytes_total == 128

    def test_scaled(self):
        c = OpCost(flops=10, bytes_read=20, bytes_written=4, threads=7)
        s = c.scaled(3.0)
        assert s.flops == 30
        assert s.bytes_read == 60
        assert s.bytes_written == 12
        assert s.threads == 7  # parallel width unchanged

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            OpCost(flops=1).scaled(-1.0)

    def test_add_sums_work_and_traffic(self):
        a = OpCost(flops=10, bytes_read=100, bytes_written=0, threads=4)
        b = OpCost(flops=5, bytes_read=0, bytes_written=50, threads=9)
        c = a + b
        assert c.flops == 15
        assert c.bytes_read == 100
        assert c.bytes_written == 50
        assert c.threads == 9  # sequential composition keeps the max width

    def test_add_weights_coalescing_by_traffic(self):
        a = OpCost(bytes_read=100, coalesced_fraction=1.0)
        b = OpCost(bytes_read=100, coalesced_fraction=0.0)
        assert (a + b).coalesced_fraction == pytest.approx(0.5)

    def test_add_weights_divergence_by_flops(self):
        a = OpCost(flops=100, divergent_fraction=0.0)
        b = OpCost(flops=100, divergent_fraction=1.0)
        assert (a + b).divergent_fraction == pytest.approx(0.5)

    def test_add_zero_is_identity_for_work(self):
        a = OpCost(flops=3, bytes_read=7, bytes_written=9, threads=5)
        c = a + ZERO_COST
        assert c.flops == a.flops
        assert c.bytes_total == a.bytes_total

    def test_add_wrong_type(self):
        with pytest.raises(TypeError):
            OpCost() + 3  # type: ignore[operator]


@given(
    f1=st.floats(0, 1e9),
    f2=st.floats(0, 1e9),
    r1=st.floats(0, 1e9),
    r2=st.floats(0, 1e9),
    t1=st.integers(1, 10**6),
    t2=st.integers(1, 10**6),
)
def test_add_commutative_in_totals(f1, f2, r1, r2, t1, t2):
    a = OpCost(flops=f1, bytes_read=r1, threads=t1)
    b = OpCost(flops=f2, bytes_read=r2, threads=t2)
    ab, ba = a + b, b + a
    assert ab.flops == ba.flops
    assert ab.bytes_total == ba.bytes_total
    assert ab.threads == ba.threads


@given(
    flops=st.floats(0, 1e12),
    br=st.floats(0, 1e12),
    bw=st.floats(0, 1e12),
    k=st.floats(0, 100),
)
def test_scaling_is_linear(flops, br, bw, k):
    c = OpCost(flops=flops, bytes_read=br, bytes_written=bw)
    s = c.scaled(k)
    assert s.flops == pytest.approx(flops * k)
    assert s.bytes_total == pytest.approx((br + bw) * k)

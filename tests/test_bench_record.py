"""Tests for report persistence (text / Markdown / CSV bundles)."""

import pytest

from repro.bench.record import report_to_markdown, save_all, save_report
from repro.bench.tables import Report, Table


@pytest.fixture
def sample_report():
    r = Report("T9", "Sample experiment")
    t = r.add_table(Table(["size", "ms"], title="main results"))
    t.add_row(64, 1.25)
    t.add_row(128, 4.5)
    r.add_note("a single-line note")
    r.add_note("series:\n 1 | # 1\n 2 | ## 2\n")
    return r


class TestMarkdown:
    def test_structure(self, sample_report):
        md = report_to_markdown(sample_report)
        assert md.startswith("## [T9] Sample experiment")
        assert "| size | ms |" in md
        assert "| 64 | 1.25 |" in md
        assert "> a single-line note" in md
        assert "```" in md  # multiline note preformatted

    def test_table_title(self, sample_report):
        assert "**main results**" in report_to_markdown(sample_report)


class TestSaveReport:
    def test_bundle_written(self, sample_report, tmp_path):
        paths = save_report(sample_report, tmp_path)
        names = {p.name for p in paths}
        assert "t9.txt" in names
        assert "t9.md" in names
        assert any(n.startswith("t9-") and n.endswith(".csv") for n in names)
        for p in paths:
            assert p.exists()
            assert p.read_text().strip()

    def test_csv_contents(self, sample_report, tmp_path):
        paths = save_report(sample_report, tmp_path)
        csv = next(p for p in paths if p.suffix == ".csv")
        lines = csv.read_text().splitlines()
        assert lines[0] == "size,ms"
        assert lines[1] == "64,1.25"

    def test_directory_created(self, sample_report, tmp_path):
        target = tmp_path / "deep" / "dir"
        save_report(sample_report, target)
        assert target.exists()

    def test_duplicate_table_titles_get_distinct_csvs(self, tmp_path):
        # identical (or same-after-slugging) titles must not overwrite
        r = Report("T9", "dupes")
        a = r.add_table(Table(["x"], title="fp32"))
        a.add_row(1)
        b = r.add_table(Table(["x"], title="fp32!"))  # slugs to "fp32" too
        b.add_row(2)
        c = r.add_table(Table(["x"], title="fp32"))
        c.add_row(3)
        paths = save_report(r, tmp_path)
        csvs = [p for p in paths if p.suffix == ".csv"]
        assert len(csvs) == 3
        assert len({p.name for p in csvs}) == 3
        contents = sorted(p.read_text().splitlines()[1] for p in csvs)
        assert contents == ["1", "2", "3"]  # every table's data survived

    def test_untitled_tables_get_distinct_csvs(self, tmp_path):
        r = Report("T9", "untitled")
        r.add_table(Table(["x"])).add_row(1)
        r.add_table(Table(["x"])).add_row(2)
        paths = save_report(r, tmp_path)
        csvs = {p.name for p in paths if p.suffix == ".csv"}
        assert csvs == {"t9-table0.csv", "t9-table1.csv"}


class TestSaveAll:
    def test_runs_selected_experiment(self, tmp_path):
        out = save_all(tmp_path, ["t1"])
        assert "t1" in out
        assert (tmp_path / "t1.txt").exists()
        assert "GTX 280" in (tmp_path / "t1.txt").read_text()

    def test_unknown_experiment(self, tmp_path):
        with pytest.raises(KeyError):
            save_all(tmp_path, ["zz9"])


class TestCliIntegration:
    def test_out_flag(self, tmp_path, capsys):
        from repro.bench.experiments import main

        assert main(["t1", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert (tmp_path / "t1.md").exists()

    def test_out_flag_missing_dir(self, capsys):
        from repro.bench.experiments import main

        assert main(["t1", "--out"]) == 2

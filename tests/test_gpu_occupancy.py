"""Tests for the occupancy calculator."""

import pytest

from repro.errors import InvalidLaunchError
from repro.gpu.occupancy import (
    MAX_BLOCKS_PER_SM,
    OccupancyResult,
    best_block_size,
    occupancy,
)
from repro.perfmodel.presets import GTX280_PARAMS, GTX8800_PARAMS


class TestOccupancy:
    def test_full_occupancy_256_threads(self):
        """256 threads x 4 blocks = 1024 = GT200's thread capacity."""
        r = occupancy(256, registers_per_thread=16)
        assert r.blocks_per_sm == 4
        assert r.threads_per_sm == 1024
        assert r.is_full

    def test_thread_limited(self):
        r = occupancy(512, registers_per_thread=8)
        assert r.blocks_per_sm == 2
        assert r.limiter == "threads"
        assert r.is_full

    def test_register_limited(self):
        # 256 threads * 64 regs = 16384 regs/block -> 2 blocks of 32768
        r = occupancy(256, registers_per_thread=64)
        assert r.blocks_per_sm == 2
        assert r.limiter == "registers"
        assert r.occupancy == pytest.approx(0.5)

    def test_shared_memory_limited(self):
        # 8 KiB/block of 16 KiB -> 2 blocks
        r = occupancy(128, registers_per_thread=8, shared_bytes_per_block=8192)
        assert r.blocks_per_sm == 2
        assert r.limiter == "shared_memory"

    def test_block_count_limited(self):
        # tiny blocks: the 8-block cap binds before threads do
        r = occupancy(32, registers_per_thread=4)
        assert r.blocks_per_sm == MAX_BLOCKS_PER_SM
        assert r.limiter == "blocks"
        assert r.occupancy == pytest.approx(8 * 1 / 32)

    def test_partial_warp_rounds_up(self):
        r = occupancy(48, registers_per_thread=4)  # 1.5 warps -> 2 warps
        assert r.warps_per_sm == r.blocks_per_sm * 2

    def test_shared_over_limit_raises(self):
        with pytest.raises(InvalidLaunchError):
            occupancy(64, shared_bytes_per_block=17 * 1024)

    def test_register_starvation_raises(self):
        with pytest.raises(InvalidLaunchError):
            occupancy(512, registers_per_thread=128)  # 65536 regs > file

    def test_bad_block_raises(self):
        with pytest.raises(InvalidLaunchError):
            occupancy(0)
        with pytest.raises(InvalidLaunchError):
            occupancy(1024, params=GTX280_PARAMS)  # > 512 limit

    def test_g80_lower_capacity(self):
        r280 = occupancy(256, 16, params=GTX280_PARAMS)
        r880 = occupancy(256, 16, params=GTX8800_PARAMS)
        assert r880.threads_per_sm < r280.threads_per_sm  # 768 vs 1024


class TestBestBlockSize:
    def test_default_kernel_prefers_large_full_blocks(self):
        block, result = best_block_size(registers_per_thread=16)
        assert result.is_full
        assert block >= 256  # ties resolved toward larger blocks

    def test_register_heavy_kernel_prefers_smaller(self):
        block_light, _ = best_block_size(registers_per_thread=8)
        block_heavy, res_heavy = best_block_size(registers_per_thread=60)
        assert res_heavy.occupancy <= 1.0
        assert block_heavy <= block_light or res_heavy.occupancy < 1.0

    def test_impossible_kernel_raises(self):
        with pytest.raises(InvalidLaunchError):
            best_block_size(registers_per_thread=4096)

    def test_returns_occupancy_result(self):
        _, result = best_block_size()
        assert isinstance(result, OccupancyResult)

"""Error-hierarchy contracts and public-surface exports."""

import pytest

import repro.errors as E


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        E.DeviceError, E.DeviceMemoryError, E.InvalidLaunchError,
        E.DeviceArrayError, E.LPError, E.LPDimensionError, E.LPFormatError,
        E.LPBoundsError, E.SparseFormatError, E.SolverError,
        E.SingularBasisError, E.UnknownMethodError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, E.ReproError)
        assert issubclass(exc, Exception)

    def test_device_branch(self):
        assert issubclass(E.DeviceMemoryError, E.DeviceError)
        assert issubclass(E.InvalidLaunchError, E.DeviceError)
        assert issubclass(E.DeviceArrayError, E.DeviceError)

    def test_lp_branch(self):
        for exc in (E.LPDimensionError, E.LPFormatError, E.LPBoundsError):
            assert issubclass(exc, E.LPError)

    def test_solver_branch(self):
        assert issubclass(E.SingularBasisError, E.SolverError)
        assert issubclass(E.UnknownMethodError, E.SolverError)

    def test_one_catch_clause_covers_the_library(self):
        """The documented catch-all workflow."""
        from repro import LPProblem

        try:
            LPProblem.minimize(c=[1.0])  # no constraints
        except E.ReproError:
            pass
        else:  # pragma: no cover
            pytest.fail("expected a ReproError")


class TestModuleSurfaces:
    def test_gpu_package_exports(self):
        import repro.gpu as gpu

        for name in gpu.__all__:
            assert hasattr(gpu, name), name

    def test_lp_package_exports(self):
        import repro.lp as lp

        for name in lp.__all__:
            assert hasattr(lp, name), name

    def test_sparse_package_exports(self):
        import repro.sparse as sparse

        for name in sparse.__all__:
            assert hasattr(sparse, name), name

    def test_perfmodel_package_exports(self):
        import repro.perfmodel as pm

        for name in pm.__all__:
            assert hasattr(pm, name), name

    def test_bench_package_exports(self):
        import repro.bench as bench

        for name in bench.__all__:
            assert hasattr(bench, name), name

    def test_core_package_exports(self):
        import repro.core as core

        for name in core.__all__:
            assert hasattr(core, name), name

    def test_simplex_package_exports(self):
        import repro.simplex as simplex

        for name in simplex.__all__:
            assert hasattr(simplex, name), name

    def test_every_public_module_has_docstring(self):
        import importlib
        import pkgutil

        import repro

        missing = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            if not (module.__doc__ or "").strip():
                missing.append(info.name)
        assert not missing, f"modules without docstrings: {missing}"

"""Tests for the leaving-variable ratio tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simplex.ratio import (
    RatioResult,
    harris_ratio_test,
    run_ratio_test,
    standard_ratio_test,
)


def basis(n):
    return np.arange(n, dtype=np.int64)


class TestStandard:
    def test_min_ratio_selected(self):
        beta = np.array([6.0, 4.0, 10.0])
        alpha = np.array([2.0, 4.0, 1.0])
        rr = standard_ratio_test(beta, alpha, basis(3), 1e-9)
        assert rr.row == 1  # 4/4 = 1 is smallest
        assert rr.theta == pytest.approx(1.0)
        assert rr.pivot == pytest.approx(4.0)

    def test_nonpositive_alpha_excluded(self):
        beta = np.array([1.0, 5.0])
        alpha = np.array([-1.0, 1.0])
        rr = standard_ratio_test(beta, alpha, basis(2), 1e-9)
        assert rr.row == 1

    def test_unbounded(self):
        rr = standard_ratio_test(np.ones(3), -np.ones(3), basis(3), 1e-9)
        assert rr.unbounded
        assert rr.theta == np.inf

    def test_tiny_alpha_below_tolerance_excluded(self):
        beta = np.array([1.0, 5.0])
        alpha = np.array([1e-12, 1.0])
        rr = standard_ratio_test(beta, alpha, basis(2), 1e-9)
        assert rr.row == 1

    def test_tie_break_lowest_basic_index(self):
        beta = np.array([2.0, 2.0])
        alpha = np.array([1.0, 1.0])
        b = np.array([7, 3], dtype=np.int64)  # row 1 holds the lower variable
        rr = standard_ratio_test(beta, alpha, b, 1e-9)
        assert rr.row == 1
        assert rr.ties == 2

    def test_zero_ratio_degenerate(self):
        beta = np.array([0.0, 5.0])
        alpha = np.array([1.0, 1.0])
        rr = standard_ratio_test(beta, alpha, basis(2), 1e-9)
        assert rr.row == 0
        assert rr.theta == 0.0

    def test_negative_roundoff_clamped(self):
        beta = np.array([-1e-15, 5.0])
        alpha = np.array([1.0, 1.0])
        rr = standard_ratio_test(beta, alpha, basis(2), 1e-9)
        assert rr.theta == 0.0


class TestHarris:
    def test_prefers_larger_pivot_among_near_ties(self):
        # two rows with nearly identical ratios but very different pivots
        beta = np.array([1.0, 1.0 + 1e-9])
        alpha = np.array([1e-6, 1.0])
        rr = harris_ratio_test(beta, alpha, basis(2), 1e-12, feas_tol=1e-6)
        assert rr.row == 1  # the stable pivot

    def test_matches_standard_when_unambiguous(self):
        beta = np.array([6.0, 4.0, 10.0])
        alpha = np.array([2.0, 4.0, 1.0])
        s = standard_ratio_test(beta, alpha, basis(3), 1e-9)
        h = harris_ratio_test(beta, alpha, basis(3), 1e-9)
        assert s.row == h.row

    def test_unbounded(self):
        rr = harris_ratio_test(np.ones(2), np.zeros(2), basis(2), 1e-9)
        assert rr.unbounded

    def test_theta_never_negative(self):
        beta = np.array([0.0, 1.0])
        alpha = np.array([1.0, 1.0])
        rr = harris_ratio_test(beta, alpha, basis(2), 1e-9)
        assert rr.theta >= 0.0

    def test_degenerate_lp_picks_largest_absolute_pivot(self):
        # Regression: pass 2 compared raw alpha instead of |alpha| (the
        # docstring's rule).  On a fully degenerate step every admissible row
        # ties at ratio 0 and the stable choice is the largest magnitude.
        beta = np.zeros(4)
        alpha = np.array([0.3, 8.0, 2.0, 0.9])
        rr = harris_ratio_test(beta, alpha, basis(4), 1e-12, feas_tol=1e-6)
        assert rr.row == 1
        assert rr.pivot == 8.0
        assert rr.theta == 0.0
        assert rr.ties == 4

    def test_degenerate_rows_beat_looser_small_pivots(self):
        # A degenerate row with a big pivot must win over a slightly looser
        # row whose pivot is tiny, even within the feas_tol relaxation.
        beta = np.array([0.0, 1e-8])
        alpha = np.array([5.0, 1e-3])
        rr = harris_ratio_test(beta, alpha, basis(2), 1e-12, feas_tol=1e-6)
        assert rr.row == 0
        assert abs(rr.pivot) == 5.0


class TestDispatch:
    def test_standard(self):
        rr = run_ratio_test("standard", np.ones(1), np.ones(1), basis(1), 1e-9)
        assert isinstance(rr, RatioResult)

    def test_harris(self):
        rr = run_ratio_test("harris", np.ones(1), np.ones(1), basis(1), 1e-9)
        assert rr.row == 0


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(1, 40),
    seed=st.integers(0, 2**31),
)
def test_standard_matches_bruteforce(n, seed):
    rng = np.random.default_rng(seed)
    beta = np.abs(rng.normal(size=n))
    alpha = rng.normal(size=n)
    tol = 1e-9
    rr = standard_ratio_test(beta, alpha, basis(n), tol)
    positive = alpha > tol
    if not positive.any():
        assert rr.unbounded
    else:
        ratios = np.where(positive, beta / np.where(positive, alpha, 1.0), np.inf)
        assert rr.theta == pytest.approx(float(ratios.min()))
        assert positive[rr.row]
        assert beta[rr.row] / alpha[rr.row] == pytest.approx(rr.theta)


@settings(max_examples=60, deadline=None)
@given(n=st.integers(1, 30), seed=st.integers(0, 2**31))
def test_harris_step_never_exceeds_relaxed_bound(n, seed):
    rng = np.random.default_rng(seed)
    beta = np.abs(rng.normal(size=n))
    alpha = rng.normal(size=n)
    feas_tol = 1e-7
    rr = harris_ratio_test(beta, alpha, basis(n), 1e-9, feas_tol=feas_tol)
    if rr.unbounded:
        return
    # taking the step leaves every basic variable >= -feas_tol
    new_beta = beta - rr.theta * alpha
    assert np.all(new_beta >= -feas_tol * (1 + 1e-6))

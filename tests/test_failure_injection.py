"""Failure injection: the library must fail loudly and cleanly.

Covers: device out-of-memory mid-solve, singular bases, malformed inputs,
iteration exhaustion on every solver, and resource cleanup on error paths.
"""

import numpy as np
import pytest

from repro import solve
from repro.errors import (
    DeviceArrayError,
    DeviceMemoryError,
    LPDimensionError,
    SingularBasisError,
)
from repro.gpu.device import Device
from repro.lp.generators import random_dense_lp
from repro.lp.problem import Bounds, LPProblem
from repro.perfmodel.gpu_model import GpuModelParams
from repro.status import SolveStatus


class TestDeviceOom:
    def test_solver_raises_on_undersized_device(self):
        """A 256x256 fp64 solve cannot fit a 256 KiB card; the allocation
        failure surfaces as DeviceMemoryError, not a silent wrong answer."""
        from repro.core.gpu_revised_simplex import GpuRevisedSimplex
        from repro.simplex.options import SolverOptions

        tiny = GpuModelParams(global_mem_bytes=256 * 1024)
        solver = GpuRevisedSimplex(
            SolverOptions(dtype=np.float64), gpu_params=tiny
        )
        with pytest.raises(DeviceMemoryError):
            solver.solve(random_dense_lp(256, 256, seed=0))

    def test_tableau_solver_oom(self):
        from repro.core.gpu_tableau_simplex import GpuTableauSimplex
        from repro.simplex.options import SolverOptions

        tiny = GpuModelParams(global_mem_bytes=64 * 1024)
        solver = GpuTableauSimplex(SolverOptions(dtype=np.float64),
                                   gpu_params=tiny)
        with pytest.raises(DeviceMemoryError):
            solver.solve(random_dense_lp(128, 128, seed=0))

    def test_partial_allocations_released_after_oom(self):
        """Whatever was allocated before the OOM is freed by the cleanup."""
        from repro.core.gpu_revised_simplex import GpuRevisedSimplex
        from repro.simplex.options import SolverOptions

        # big enough for A but not for all the solver vectors + B^-1
        params = GpuModelParams(global_mem_bytes=600 * 1024)
        solver = GpuRevisedSimplex(SolverOptions(dtype=np.float64),
                                   gpu_params=params)
        with pytest.raises(DeviceMemoryError):
            solver.solve(random_dense_lp(180, 180, seed=0))
        assert solver.device is not None
        assert solver.device.stats.bytes_in_use == 0

    def test_fits_exactly_when_fp32(self):
        """fp32 halves the footprint: a card too small for fp64 can fit."""
        from repro.core.gpu_revised_simplex import GpuRevisedSimplex
        from repro.simplex.options import SolverOptions

        lp = random_dense_lp(100, 100, seed=1)
        params = GpuModelParams(global_mem_bytes=200 * 1024)
        with pytest.raises(DeviceMemoryError):
            GpuRevisedSimplex(SolverOptions(dtype=np.float64),
                              gpu_params=params).solve(lp)
        r = GpuRevisedSimplex(SolverOptions(dtype=np.float32),
                              gpu_params=params).solve(lp)
        assert r.status is SolveStatus.OPTIMAL


class TestSingularBases:
    def test_warm_start_with_singular_columns_recovers(self):
        """Duplicate-direction columns make B singular; solver falls back."""
        lp = LPProblem.minimize(
            c=[1.0, 1.0, 1.0],
            a_ub=[[1.0, 2.0, 2.0], [0.0, 1.0, 1.0]],
            b_ub=[4.0, 2.0],
        )
        # columns 1 and 2 are linearly dependent
        r = solve(lp, method="revised", initial_basis=np.array([1, 2]))
        assert r.status is SolveStatus.OPTIMAL

    def test_certificate_raises_on_singular_basis(self):
        from repro.lp.postsolve import certificate_from_basis
        from repro.simplex.common import prepare
        from repro.simplex.options import SolverOptions

        lp = LPProblem.minimize(
            c=[1.0, 1.0], a_ub=[[1.0, 1.0], [2.0, 2.0]], b_ub=[2.0, 4.0]
        )
        prep = prepare(lp, SolverOptions())
        with pytest.raises(SingularBasisError):
            # both rows are multiples: structural columns 0,1 of row-duplicated
            # A cannot form a basis... build an explicitly singular one
            certificate_from_basis(prep, np.array([0, 0]), np.zeros(prep.n_total))


class TestMalformedInput:
    def test_nan_in_costs(self):
        with pytest.raises(LPDimensionError):
            LPProblem.minimize(c=[np.nan], a_ub=[[1.0]], b_ub=[1.0])

    def test_inf_in_rhs(self):
        with pytest.raises(LPDimensionError):
            LPProblem.minimize(c=[1.0], a_ub=[[1.0]], b_ub=[np.inf])

    def test_contradictory_bounds(self):
        from repro.errors import LPBoundsError

        with pytest.raises(LPBoundsError):
            LPProblem.minimize(c=[1.0], a_ub=[[1.0]], b_ub=[1.0],
                               bounds=[(3.0, 1.0)])

    def test_freed_array_in_kernel(self, device):
        from repro.gpu import blas

        x = device.to_device(np.ones(4))
        y = device.to_device(np.ones(4))
        x.free()
        with pytest.raises(DeviceArrayError):
            blas.axpy(1.0, x, y)


class TestIterationExhaustion:
    @pytest.mark.parametrize(
        "method", ["tableau", "revised", "revised-bounded", "gpu-revised", "gpu-tableau"]
    )
    def test_every_solver_reports_limit(self, method):
        lp = random_dense_lp(20, 30, seed=5)
        r = solve(lp, method=method, max_iterations=2)
        assert r.status is SolveStatus.ITERATION_LIMIT
        assert r.x is None
        assert np.isnan(r.objective)

    def test_gpu_memory_released_on_limit(self):
        from repro.core.gpu_revised_simplex import GpuRevisedSimplex
        from repro.simplex.options import SolverOptions

        solver = GpuRevisedSimplex(SolverOptions(max_iterations=2))
        solver.solve(random_dense_lp(20, 30, seed=5))
        assert solver.device.stats.bytes_in_use == 0

"""Tests for the SIMT kernel-timing model."""

import dataclasses

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.perfmodel.gpu_model import GpuCostModel, GpuModelParams
from repro.perfmodel.ops import OpCost
from repro.perfmodel.presets import (
    GTX280_PARAMS,
    GTX8800_PARAMS,
    TESLA_C1060_PARAMS,
    cpu_model_preset,
    gpu_model_preset,
)


@pytest.fixture
def model() -> GpuCostModel:
    return GpuCostModel(GTX280_PARAMS)


class TestParamsValidation:
    def test_defaults_valid(self):
        GpuModelParams()  # no raise

    def test_bad_sm_count(self):
        with pytest.raises(ValueError):
            GpuModelParams(sm_count=0)

    def test_bad_efficiency(self):
        with pytest.raises(ValueError):
            GpuModelParams(compute_efficiency=0.0)
        with pytest.raises(ValueError):
            GpuModelParams(memory_efficiency=1.5)

    def test_bad_min_fill(self):
        with pytest.raises(ValueError):
            GpuModelParams(min_fill=0.0)

    def test_concurrent_threads(self):
        assert GTX280_PARAMS.concurrent_threads == 30 * 1024

    def test_peak_flops_by_dtype(self):
        assert GTX280_PARAMS.peak_flops(np.float32) == GTX280_PARAMS.peak_flops_fp32
        assert GTX280_PARAMS.peak_flops(np.float64) == GTX280_PARAMS.peak_flops_fp64


class TestKernelTime:
    def test_launch_overhead_is_floor(self, model):
        t = model.kernel_time(OpCost(flops=1, threads=1))
        assert t >= GTX280_PARAMS.launch_overhead

    def test_zero_work_costs_only_overhead(self, model):
        t = model.kernel_time(OpCost(threads=64))
        assert t == pytest.approx(GTX280_PARAMS.launch_overhead)

    def test_monotone_in_flops(self, model):
        big_threads = GTX280_PARAMS.concurrent_threads
        t1 = model.kernel_time(OpCost(flops=1e6, threads=big_threads))
        t2 = model.kernel_time(OpCost(flops=1e8, threads=big_threads))
        assert t2 > t1

    def test_monotone_in_bytes(self, model):
        big_threads = GTX280_PARAMS.concurrent_threads
        t1 = model.kernel_time(OpCost(bytes_read=1e6, threads=big_threads))
        t2 = model.kernel_time(OpCost(bytes_read=1e8, threads=big_threads))
        assert t2 > t1

    def test_compute_memory_overlap(self, model):
        """Total is max(compute, memory), not their sum."""
        threads = GTX280_PARAMS.concurrent_threads
        c = OpCost(flops=1e9, bytes_read=1e9, threads=threads)
        t = model.kernel_time(c)
        tc = model.compute_time(c, np.float32, 256)
        tm = model.memory_time(c, np.float32, 256)
        assert t == pytest.approx(GTX280_PARAMS.launch_overhead + max(tc, tm))

    def test_fp64_slower_than_fp32_when_compute_bound(self, model):
        threads = GTX280_PARAMS.concurrent_threads
        c = OpCost(flops=1e10, threads=threads)
        assert model.kernel_time(c, np.float64) > model.kernel_time(c, np.float32)

    def test_small_kernel_underutilises_device(self, model):
        """Same work on few threads takes longer than on many threads."""
        work = OpCost(flops=1e7, threads=64)
        work_wide = OpCost(flops=1e7, threads=GTX280_PARAMS.concurrent_threads)
        assert model.kernel_time(work) > model.kernel_time(work_wide)

    def test_uncoalesced_traffic_amplified(self, model):
        threads = GTX280_PARAMS.concurrent_threads
        good = OpCost(bytes_read=1e8, threads=threads, coalesced_fraction=1.0)
        bad = OpCost(bytes_read=1e8, threads=threads, coalesced_fraction=0.0)
        t_good = model.memory_time(good, np.float32, 256)
        t_bad = model.memory_time(bad, np.float32, 256)
        assert t_bad == pytest.approx(t_good * (64 / 4))

    def test_divergence_doubles_divergent_work(self, model):
        threads = GTX280_PARAMS.concurrent_threads
        plain = OpCost(flops=1e8, threads=threads, divergent_fraction=0.0)
        fully = OpCost(flops=1e8, threads=threads, divergent_fraction=1.0)
        t0 = model.compute_time(plain, np.float32, 256)
        t1 = model.compute_time(fully, np.float32, 256)
        assert t1 == pytest.approx(2.0 * t0)

    def test_fill_factor_bounds(self, model):
        assert model.fill_factor(1, 256) >= GTX280_PARAMS.min_fill
        assert model.fill_factor(10**9, 256) <= 1.0

    def test_fill_factor_lane_waste(self, model):
        """A 16-thread block wastes half a warp."""
        full = model.fill_factor(GTX280_PARAMS.concurrent_threads, 32)
        half = model.fill_factor(GTX280_PARAMS.concurrent_threads, 16)
        assert half == pytest.approx(full / 2)


class TestTransfers:
    def test_transfer_latency_floor(self, model):
        assert model.transfer_time(0) == pytest.approx(GTX280_PARAMS.pcie_latency)

    def test_transfer_bandwidth_term(self, model):
        nbytes = 10**8
        expected = GTX280_PARAMS.pcie_latency + nbytes / GTX280_PARAMS.pcie_bandwidth
        assert model.transfer_time(nbytes) == pytest.approx(expected)

    def test_transfer_negative_rejected(self, model):
        with pytest.raises(ValueError):
            model.transfer_time(-1)

    def test_dtod_faster_than_pcie_for_bulk(self, model):
        nbytes = 10**8
        assert model.dtod_time(nbytes) < model.transfer_time(nbytes)

    def test_dtod_negative_rejected(self, model):
        with pytest.raises(ValueError):
            model.dtod_time(-5)


class TestPresets:
    def test_lookup(self):
        assert gpu_model_preset("gtx280") is GTX280_PARAMS
        assert gpu_model_preset("GTX8800") is GTX8800_PARAMS
        assert gpu_model_preset("c1060") is TESLA_C1060_PARAMS

    def test_unknown_gpu_preset(self):
        with pytest.raises(KeyError):
            gpu_model_preset("voodoo2")

    def test_unknown_cpu_preset(self):
        with pytest.raises(KeyError):
            cpu_model_preset("8086")

    def test_gt200_fp64_ratio(self):
        """GT200 fp64 is an order of magnitude below fp32."""
        assert GTX280_PARAMS.peak_flops_fp32 / GTX280_PARAMS.peak_flops_fp64 > 8

    def test_g80_weaker_than_gt200(self):
        assert GTX8800_PARAMS.peak_flops_fp32 < GTX280_PARAMS.peak_flops_fp32
        assert GTX8800_PARAMS.mem_bandwidth < GTX280_PARAMS.mem_bandwidth

    def test_presets_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            GTX280_PARAMS.sm_count = 60  # type: ignore[misc]


@given(
    flops=st.floats(1, 1e12),
    nbytes=st.floats(1, 1e12),
    threads=st.integers(1, 10**7),
)
def test_kernel_time_always_positive_and_finite(flops, nbytes, threads):
    model = GpuCostModel(GTX280_PARAMS)
    t = model.kernel_time(OpCost(flops=flops, bytes_read=nbytes, threads=threads))
    assert np.isfinite(t)
    assert t > 0


@given(scale=st.floats(1.0, 1e4), flops=st.floats(1e3, 1e9))
def test_compute_time_scales_linearly_at_fixed_width(scale, flops):
    model = GpuCostModel(GTX280_PARAMS)
    threads = GTX280_PARAMS.concurrent_threads
    t1 = model.compute_time(OpCost(flops=flops, threads=threads), np.float32, 256)
    t2 = model.compute_time(OpCost(flops=flops * scale, threads=threads), np.float32, 256)
    assert t2 == pytest.approx(t1 * scale, rel=1e-9)

"""Tests for the bounded-variable revised simplex."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import BOUNDED_VARS_OPTIMUM, TEXTBOOK_OPTIMUM, assert_matches_oracle, scipy_oracle
from repro import solve
from repro.errors import SolverError
from repro.lp.generators import random_dense_lp, random_sparse_lp
from repro.lp.problem import Bounds, LPProblem
from repro.simplex.bounded import BoundedRevisedSimplexSolver
from repro.simplex.options import SolverOptions
from repro.status import SolveStatus


def boxed_random(m, n, seed, span=(0.5, 3.0)):
    """A random dense LP where every variable has a finite upper bound."""
    rng = np.random.default_rng(seed ^ 0xBEEF)
    base = random_dense_lp(m, n, seed=seed)
    return LPProblem(
        c=base.c, a=base.a_dense(), senses=base.senses, b=base.b,
        bounds=Bounds(np.zeros(n), rng.uniform(*span, n)),
        maximize=True, name=f"boxed-{m}x{n}-s{seed}",
    )


class TestBasicOutcomes:
    def test_textbook(self, textbook_lp):
        r = solve(textbook_lp, method="revised-bounded")
        assert r.status is SolveStatus.OPTIMAL
        assert r.objective == pytest.approx(TEXTBOOK_OPTIMUM)

    def test_general_bounds(self, bounded_vars_lp):
        r = solve(bounded_vars_lp, method="revised-bounded")
        assert r.objective == pytest.approx(BOUNDED_VARS_OPTIMUM)

    def test_infeasible(self, infeasible_lp):
        assert solve(infeasible_lp, method="revised-bounded").status is SolveStatus.INFEASIBLE

    def test_unbounded(self, unbounded_lp):
        assert solve(unbounded_lp, method="revised-bounded").status is SolveStatus.UNBOUNDED

    def test_equality_phase1(self, equality_lp):
        r = solve(equality_lp, method="revised-bounded")
        assert_matches_oracle(equality_lp, r)

    def test_iteration_limit(self, textbook_lp):
        r = solve(textbook_lp, method="revised-bounded", max_iterations=1)
        assert r.status is SolveStatus.ITERATION_LIMIT


class TestBoundsHandling:
    @pytest.mark.parametrize("seed", range(5))
    def test_boxed_instances_match_oracle(self, seed):
        lp = boxed_random(15, 25, seed)
        assert_matches_oracle(lp, solve(lp, method="revised-bounded"))

    def test_no_extra_rows_for_bounds(self):
        """The headline structural win: m stays at the constraint count."""
        lp = boxed_random(10, 40, seed=3)
        r_bounded = solve(lp, method="revised-bounded")
        r_rows = solve(lp, method="revised")
        assert r_bounded.objective == pytest.approx(r_rows.objective, rel=1e-8)
        # bounds-as-rows solver works a 50-row basis; bounded keeps 10
        assert r_bounded.extra["basis"].size == 10
        assert r_rows.extra["basis"].size == 50

    def test_bound_flips_happen(self):
        lp = boxed_random(20, 30, seed=1)
        r = solve(lp, method="revised-bounded")
        assert r.extra["bound_flips"] >= 1

    def test_solution_respects_bounds(self):
        lp = boxed_random(15, 20, seed=7)
        r = solve(lp, method="revised-bounded")
        assert np.all(r.x >= -1e-9)
        assert np.all(r.x <= lp.bounds.upper + 1e-9)

    def test_at_upper_reported(self):
        # tight box forces some variables to their upper bounds at optimum
        lp = boxed_random(8, 12, seed=9, span=(0.1, 0.5))
        r = solve(lp, method="revised-bounded")
        assert r.extra["at_upper"].dtype == bool

    def test_tiny_boxes_all_upper(self):
        """With a generous budget every variable maxes out: the optimum is
        the box corner and (almost) every variable sits at its bound."""
        n = 6
        a = np.ones((1, n))
        lp = LPProblem(
            c=np.ones(n), a=a, senses=["<="], b=np.array([100.0]),
            bounds=Bounds(np.zeros(n), np.full(n, 2.0)), maximize=True,
        )
        r = solve(lp, method="revised-bounded")
        assert r.objective == pytest.approx(12.0)
        np.testing.assert_allclose(r.x, 2.0)

    def test_sparse_input(self):
        base = random_sparse_lp(15, 30, density=0.2, seed=2)
        rng = np.random.default_rng(5)
        lp = LPProblem(c=base.c, a=base.a, senses=base.senses, b=base.b,
                       bounds=Bounds(np.zeros(30), rng.uniform(0.5, 2.0, 30)),
                       maximize=True)
        assert_matches_oracle(lp, solve(lp, method="revised-bounded"))


class TestAgreementAndDiagnostics:
    @pytest.mark.parametrize("pricing", ["dantzig", "bland", "hybrid"])
    def test_pricing_rules(self, pricing):
        lp = boxed_random(10, 15, seed=4)
        assert_matches_oracle(lp, solve(lp, method="revised-bounded", pricing=pricing))

    @pytest.mark.parametrize("update", ["explicit", "pfi", "lu"])
    def test_basis_updates(self, update):
        lp = boxed_random(12, 18, seed=5)
        assert_matches_oracle(lp, solve(lp, method="revised-bounded",
                                        basis_update=update))

    def test_refactor_period(self):
        lp = boxed_random(20, 25, seed=6)
        r = solve(lp, method="revised-bounded", refactor_period=5)
        assert r.status is SolveStatus.OPTIMAL
        assert r.iterations.refactorizations >= 1

    def test_duals_available(self):
        lp = boxed_random(10, 14, seed=8)
        r = solve(lp, method="revised-bounded")
        assert "duals" in r.extra
        assert r.extra["duals"].shape == (10,)

    def test_devex_rejected(self):
        with pytest.raises(SolverError):
            BoundedRevisedSimplexSolver(SolverOptions(pricing="devex"))

    def test_scale_rejected(self):
        with pytest.raises(SolverError):
            BoundedRevisedSimplexSolver(SolverOptions(scale=True))

    def test_warm_start_rejected(self, textbook_lp):
        with pytest.raises(SolverError):
            solve(textbook_lp, method="revised-bounded",
                  initial_basis=np.arange(3))


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(m=st.integers(3, 10), n=st.integers(3, 12), seed=st.integers(0, 2**31))
def test_bounded_matches_oracle_property(m, n, seed):
    lp = boxed_random(m, n, seed)
    ref = scipy_oracle(lp)
    assert ref is not None
    r = solve(lp, method="revised-bounded")
    assert r.status is SolveStatus.OPTIMAL
    assert abs(r.objective - ref) <= 1e-6 * (1 + abs(ref))
    assert lp.constraint_violation(r.x) <= 1e-6

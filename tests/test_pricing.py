"""Tests for the entering-variable pricing rules."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.simplex.pricing import (
    BlandRule,
    DantzigRule,
    DevexRule,
    HybridRule,
    SteepestEdgeRule,
    make_pricing_rule,
)

ALL = np.ones(5, dtype=bool)


class TestDantzig:
    def test_most_negative(self):
        d = np.array([1.0, -3.0, -5.0, 2.0, -1.0])
        assert DantzigRule().select(d, ALL, 1e-9) == 2

    def test_optimal_returns_none(self):
        d = np.array([0.0, 1.0, 2.0, 0.5, 0.0])
        assert DantzigRule().select(d, ALL, 1e-9) is None

    def test_tolerance_filters_noise(self):
        d = np.array([-1e-12, 1.0, 1.0, 1.0, 1.0])
        assert DantzigRule().select(d, ALL, 1e-9) is None

    def test_eligibility_mask(self):
        d = np.array([-5.0, -3.0, 0.0, 0.0, 0.0])
        eligible = np.array([False, True, True, True, True])
        assert DantzigRule().select(d, eligible, 1e-9) == 1

    def test_tie_breaks_low_index(self):
        d = np.array([0.0, -2.0, -2.0, 0.0, 0.0])
        assert DantzigRule().select(d, ALL, 1e-9) == 1


class TestBland:
    def test_lowest_index(self):
        d = np.array([1.0, -0.001, -100.0, 0.0, 0.0])
        assert BlandRule().select(d, ALL, 1e-9) == 1

    def test_none_when_nonnegative(self):
        assert BlandRule().select(np.zeros(5), ALL, 1e-9) is None

    def test_respects_mask(self):
        d = np.array([-1.0, -1.0, 0.0, 0.0, 0.0])
        eligible = np.array([False, True, True, True, True])
        assert BlandRule().select(d, eligible, 1e-9) == 1


class TestHybrid:
    def test_starts_as_dantzig(self):
        rule = HybridRule(stall_window=3)
        d = np.array([-0.1, -5.0, 0.0, 0.0, 0.0])
        assert rule.select(d, ALL, 1e-9) == 1  # most negative, not lowest index

    def test_switches_to_bland_after_stall(self):
        rule = HybridRule(stall_window=3)
        d = np.array([-0.1, -5.0, 0.0, 0.0, 0.0])
        for _ in range(3):
            rule.notify_pivot(1, 0, None, improved=False)
        assert rule.activations == 1
        assert rule.select(d, ALL, 1e-9) == 0  # now Bland: lowest index

    def test_switches_back_after_recovery(self):
        rule = HybridRule(stall_window=2, recovery=2)
        for _ in range(2):
            rule.notify_pivot(1, 0, None, improved=False)
        assert rule._using_bland
        for _ in range(2):
            rule.notify_pivot(1, 0, None, improved=True)
        assert not rule._using_bland

    def test_improvement_resets_stall_counter(self):
        rule = HybridRule(stall_window=3)
        rule.notify_pivot(1, 0, None, improved=False)
        rule.notify_pivot(1, 0, None, improved=False)
        rule.notify_pivot(1, 0, None, improved=True)
        rule.notify_pivot(1, 0, None, improved=False)
        rule.notify_pivot(1, 0, None, improved=False)
        assert rule.activations == 0

    def test_bad_window(self):
        with pytest.raises(SolverError):
            HybridRule(stall_window=0)


class TestDevex:
    def test_initial_weights_behave_like_dantzig_squared(self):
        rule = DevexRule()
        rule.reset(5)
        d = np.array([0.0, -2.0, -3.0, 0.0, 0.0])
        assert rule.select(d, ALL, 1e-9) == 2

    def test_weight_update_changes_choice(self):
        rule = DevexRule()
        rule.reset(3)
        ones = np.ones(3, dtype=bool)
        # pivot on column 2 with a huge pivot row entry for column 1:
        # column 1's weight grows, demoting it
        rule.set_pivot_row(np.array([0.0, 100.0, 1.0]))
        rule.notify_pivot(2, 0, None, improved=True)
        d = np.array([0.0, -3.0, -2.9])
        # plain Dantzig would take column 1; Devex demotes it
        assert rule.select(d, ones, 1e-9) == 2

    def test_optimal_none(self):
        rule = DevexRule()
        rule.reset(5)
        assert rule.select(np.ones(5), ALL, 1e-9) is None

    def test_needs_tableau_flag(self):
        assert DevexRule.needs_tableau
        assert SteepestEdgeRule.needs_tableau
        assert not DantzigRule.needs_tableau


class TestSteepestEdge:
    def test_requires_tableau(self):
        rule = SteepestEdgeRule()
        rule.reset(3)
        with pytest.raises(SolverError):
            rule.select(np.array([-1.0, 0.0, 0.0]), np.ones(3, dtype=bool), 1e-9)

    def test_edge_norms_demote_long_columns(self):
        rule = SteepestEdgeRule()
        rule.reset(2)
        tableau = np.array([[1.0, 10.0], [0.0, 10.0]])
        rule.set_tableau(tableau)
        d = np.array([-1.0, -1.5])
        # col 1 has much larger norm: -1²/2 > -1.5²/201
        assert rule.select(d, np.ones(2, dtype=bool), 1e-9) == 0

    def test_optimal_none(self):
        rule = SteepestEdgeRule()
        rule.set_tableau(np.eye(2))
        assert rule.select(np.zeros(2), np.ones(2, dtype=bool), 1e-9) is None


class TestHybridReset:
    def test_reset_clears_activation_counter(self):
        # Regression: reset() used to preserve self.activations, so a rule
        # reused across phases would re-report phase 1's switches after the
        # caller had already flushed them into its stats.
        rule = HybridRule(stall_window=1)
        rule.notify_pivot(1, 0, None, improved=False)
        assert rule.activations == 1
        rule.reset(5)
        assert rule.activations == 0
        assert not rule._using_bland
        assert rule._stalled == 0


class TestDevexSizeMismatch:
    def test_mismatch_raises_instead_of_silent_reinit(self):
        # Regression: a size mismatch used to silently re-initialise the
        # weights to ones, discarding the learned reference framework.
        rule = DevexRule()
        rule.reset(5)
        with pytest.raises(SolverError, match="reset"):
            rule.select(np.array([-1.0, 0.0]), np.ones(2, dtype=bool), 1e-9)

    def test_first_use_lazy_init_still_allowed(self):
        rule = DevexRule()
        d = np.array([0.0, -2.0, -1.0])
        assert rule.select(d, np.ones(3, dtype=bool), 1e-9) == 1


class TestBlandActivationAccounting:
    """The bland_activations statistic must be exact across solver phases.

    Regression: the revised and tableau solvers flushed each phase rule's
    ``activations`` into the stats only on the ITERATION_LIMIT exit path, so
    solves that activated Bland and then finished (optimal, unbounded, ...)
    reported ``bland_activations == 0``.
    """

    @pytest.fixture()
    def two_phase_degenerate_lp(self):
        """A degenerate instance with an equality row: phase 1 must run,
        and the heavy ratio-test ties stall Dantzig in both phases."""
        from repro.lp.generators import degenerate_lp
        from repro.lp.problem import ConstraintSense, LPProblem
        from repro.solve import solve

        base = degenerate_lp(8, 12, seed=3)
        x_star = solve(base, method="revised").x
        a = np.vstack([base.a_dense(), np.ones((1, base.num_vars))])
        senses = list(base.senses) + [ConstraintSense.EQ]
        b = np.append(base.b, float(np.sum(x_star)))
        return LPProblem(
            c=base.c, a=a, senses=senses, b=b,
            bounds=base.bounds, maximize=True,
        )

    @pytest.mark.parametrize("method,module_name", [
        ("revised", "repro.simplex.revised_cpu"),
        ("tableau", "repro.simplex.tableau"),
    ])
    def test_counted_on_optimal_exit(
        self, two_phase_degenerate_lp, method, module_name, monkeypatch
    ):
        import importlib

        from repro.solve import solve

        module = importlib.import_module(module_name)
        created = []

        def spy(name, stall_window=40):
            rule = make_pricing_rule(name, stall_window)
            created.append(rule)
            return rule

        monkeypatch.setattr(module, "make_pricing_rule", spy)
        r = solve(
            two_phase_degenerate_lp, method=method,
            pricing="hybrid", stall_window=1,
        )
        # a completed solve, NOT an iteration-limit bailout
        assert r.status.value == "optimal"
        assert r.iterations.phase1_iterations > 0
        assert r.iterations.phase2_iterations > 0
        hybrids = [x for x in created if isinstance(x, HybridRule)]
        assert len(hybrids) == 2  # one fresh rule per phase
        expected = sum(x.activations for x in hybrids)
        assert expected > 0  # the stall actually tripped the fallback
        assert r.iterations.bland_activations == expected


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("dantzig", DantzigRule), ("bland", BlandRule), ("hybrid", HybridRule),
        ("devex", DevexRule), ("steepest-edge", SteepestEdgeRule),
    ])
    def test_make(self, name, cls):
        assert isinstance(make_pricing_rule(name), cls)

    def test_unknown(self):
        with pytest.raises(SolverError):
            make_pricing_rule("oracle")

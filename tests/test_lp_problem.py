"""Tests for the general-form LPProblem model."""

import numpy as np
import pytest

from repro.errors import LPBoundsError, LPDimensionError
from repro.lp.problem import Bounds, ConstraintSense, LPProblem
from repro.sparse import CscMatrix


class TestConstraintSense:
    @pytest.mark.parametrize(
        "token,expected",
        [("<=", ConstraintSense.LE), ("<", ConstraintSense.LE),
         ("=", ConstraintSense.EQ), ("==", ConstraintSense.EQ),
         (">=", ConstraintSense.GE), (">", ConstraintSense.GE),
         (ConstraintSense.LE, ConstraintSense.LE)],
    )
    def test_parse(self, token, expected):
        assert ConstraintSense.parse(token) is expected

    def test_parse_unknown(self):
        with pytest.raises(LPDimensionError):
            ConstraintSense.parse("!=")

    def test_flipped(self):
        assert ConstraintSense.LE.flipped() is ConstraintSense.GE
        assert ConstraintSense.GE.flipped() is ConstraintSense.LE
        assert ConstraintSense.EQ.flipped() is ConstraintSense.EQ


class TestBounds:
    def test_nonnegative(self):
        b = Bounds.nonnegative(3)
        assert np.all(b.lower == 0)
        assert np.all(np.isposinf(b.upper))

    def test_from_pairs_none_means_unbounded(self):
        b = Bounds.from_pairs([(None, 5.0), (1.0, None), (None, None)])
        assert np.isneginf(b.lower[0]) and b.upper[0] == 5.0
        assert b.lower[1] == 1.0 and np.isposinf(b.upper[1])
        assert np.isneginf(b.lower[2]) and np.isposinf(b.upper[2])

    def test_validate_length(self):
        with pytest.raises(LPDimensionError):
            Bounds.nonnegative(2).validate(3)

    def test_validate_contradiction(self):
        b = Bounds(np.array([2.0]), np.array([1.0]))
        with pytest.raises(LPBoundsError):
            b.validate(1)

    def test_copy_independent(self):
        b = Bounds.nonnegative(2)
        c = b.copy()
        c.lower[0] = -1
        assert b.lower[0] == 0


class TestConstruction:
    def test_minimize_stacks_blocks(self):
        lp = LPProblem.minimize(
            c=[1.0, 2.0],
            a_ub=[[1.0, 0.0]], b_ub=[1.0],
            a_eq=[[0.0, 1.0]], b_eq=[2.0],
        )
        assert lp.num_constraints == 2
        assert lp.senses == [ConstraintSense.LE, ConstraintSense.EQ]
        assert not lp.maximize

    def test_maximize_flag(self, textbook_lp):
        assert textbook_lp.maximize

    def test_no_constraints_rejected(self):
        with pytest.raises(LPDimensionError):
            LPProblem.minimize(c=[1.0])

    def test_dimension_checks(self):
        with pytest.raises(LPDimensionError):
            LPProblem(c=[1.0], a=[[1.0, 2.0]], senses=["<="], b=[1.0],
                      bounds=Bounds.nonnegative(1))
        with pytest.raises(LPDimensionError):
            LPProblem(c=[1.0, 2.0], a=[[1.0, 2.0]], senses=["<="], b=[1.0, 2.0],
                      bounds=Bounds.nonnegative(2))
        with pytest.raises(LPDimensionError):
            LPProblem(c=[1.0, 2.0], a=[[1.0, 2.0]], senses=["<=", "<="], b=[1.0],
                      bounds=Bounds.nonnegative(2))

    def test_nonfinite_rejected(self):
        with pytest.raises(LPDimensionError):
            LPProblem.minimize(c=[np.inf, 1.0], a_ub=[[1.0, 1.0]], b_ub=[1.0])
        with pytest.raises(LPDimensionError):
            LPProblem.minimize(c=[1.0, 1.0], a_ub=[[1.0, 1.0]], b_ub=[np.nan])

    def test_var_names_length_checked(self):
        with pytest.raises(LPDimensionError):
            LPProblem(c=[1.0], a=[[1.0]], senses=["="], b=[1.0],
                      bounds=Bounds.nonnegative(1), var_names=["a", "b"])

    def test_sparse_matrix_accepted(self):
        a = CscMatrix.from_dense(np.array([[1.0, 0.0], [0.0, 2.0]]))
        lp = LPProblem(c=[1.0, 1.0], a=a, senses=["<=", "<="], b=[1.0, 2.0],
                       bounds=Bounds.nonnegative(2))
        assert lp.is_sparse
        assert np.array_equal(lp.a_dense(), a.to_dense())


class TestEvaluation:
    def test_objective_value(self, textbook_lp):
        assert textbook_lp.objective_value([2.0, 6.0]) == pytest.approx(36.0)

    def test_feasibility(self, textbook_lp):
        assert textbook_lp.is_feasible(np.array([2.0, 6.0]))
        assert not textbook_lp.is_feasible(np.array([5.0, 0.0]))  # x <= 4

    def test_violation_measures_each_sense(self):
        lp = LPProblem(
            c=[1.0], a=[[1.0], [1.0], [1.0]], senses=["<=", ">=", "="],
            b=[1.0, 3.0, 2.0], bounds=Bounds.nonnegative(1),
        )
        x = np.array([2.0])
        # <= violated by 1, >= violated by 1, = satisfied
        assert lp.constraint_violation(x) == pytest.approx(1.0)

    def test_violation_includes_bounds(self):
        lp = LPProblem(
            c=[1.0], a=[[1.0]], senses=["<="], b=[10.0],
            bounds=Bounds(np.array([2.0]), np.array([4.0])),
        )
        assert lp.constraint_violation(np.array([0.0])) == pytest.approx(2.0)
        assert lp.constraint_violation(np.array([5.0])) == pytest.approx(1.0)

    def test_variable_name(self, textbook_lp):
        assert textbook_lp.variable_name(0) == "x0"
        lp = LPProblem(c=[1.0], a=[[1.0]], senses=["<="], b=[1.0],
                       bounds=Bounds.nonnegative(1), var_names=["prod_a"])
        assert lp.variable_name(0) == "prod_a"


class TestFingerprint:
    """Structural fingerprints: stable under value perturbation, sensitive
    to structure — the warm-start cache key contract."""

    def _lp(self, b=None, c=None, senses=None, maximize=True):
        return LPProblem(
            c=[2.0, 3.0] if c is None else c,
            a=[[1.0, 1.0], [2.0, 0.5]],
            senses=["<=", "<="] if senses is None else senses,
            b=[4.0, 5.0] if b is None else b,
            bounds=Bounds.nonnegative(2),
            maximize=maximize,
        )

    def test_deterministic(self):
        assert self._lp().fingerprint() == self._lp().fingerprint()
        assert len(self._lp().fingerprint()) == 64  # sha256 hex

    def test_survives_value_perturbation(self):
        base = self._lp()
        perturbed = self._lp(b=[4.4, 4.9], c=[2.1, 2.9])
        assert base.fingerprint() == perturbed.fingerprint()

    def test_sensitive_to_structure(self):
        base = self._lp()
        assert base.fingerprint() != self._lp(senses=["<=", "="]).fingerprint()
        assert base.fingerprint() != self._lp(maximize=False).fingerprint()
        bigger = LPProblem(
            c=[1.0, 1.0, 1.0], a=[[1.0, 1.0, 1.0]], senses=["<="], b=[1.0],
            bounds=Bounds.nonnegative(3),
        )
        assert base.fingerprint() != bigger.fingerprint()

    def test_sensitive_to_bound_finiteness(self):
        base = self._lp()
        free = LPProblem(
            c=[2.0, 3.0], a=[[1.0, 1.0], [2.0, 0.5]], senses=["<=", "<="],
            b=[4.0, 5.0],
            bounds=Bounds(np.array([0.0, -np.inf]), np.array([np.inf, np.inf])),
        )
        assert base.fingerprint() != free.fingerprint()

    def test_sparse_pattern_matters(self):
        def sparse_lp(a):
            return LPProblem(
                c=[1.0, 1.0], a=CscMatrix.from_dense(np.array(a)),
                senses=["<=", "<="], b=[1.0, 1.0],
                bounds=Bounds.nonnegative(2),
            )

        same1 = sparse_lp([[1.0, 0.0], [0.0, 1.0]])
        same2 = sparse_lp([[5.0, 0.0], [0.0, 7.0]])  # same pattern
        other = sparse_lp([[1.0, 1.0], [0.0, 1.0]])  # extra nonzero
        assert same1.fingerprint() == same2.fingerprint()
        assert same1.fingerprint() != other.fingerprint()

    def test_dense_and_sparse_differ(self):
        dense = LPProblem(
            c=[1.0, 1.0], a=[[1.0, 0.0], [0.0, 1.0]], senses=["<=", "<="],
            b=[1.0, 1.0], bounds=Bounds.nonnegative(2),
        )
        sparse = LPProblem(
            c=[1.0, 1.0],
            a=CscMatrix.from_dense(np.array([[1.0, 0.0], [0.0, 1.0]])),
            senses=["<=", "<="], b=[1.0, 1.0],
            bounds=Bounds.nonnegative(2),
        )
        assert dense.fingerprint() != sparse.fingerprint()

    def test_name_is_ignored(self):
        a = LPProblem(c=[1.0], a=[[1.0]], senses=["<="], b=[1.0],
                      bounds=Bounds.nonnegative(1), name="first")
        b = LPProblem(c=[9.0], a=[[3.0]], senses=["<="], b=[7.0],
                      bounds=Bounds.nonnegative(1), name="second")
        assert a.fingerprint() == b.fingerprint()

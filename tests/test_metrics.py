"""Tests for the process-wide metrics layer (repro.metrics).

The contract under test:

1. registry primitives — counters / gauges / histograms with labeled
   series, declare-or-fetch semantics, snapshot/diff arithmetic;
2. collection never perturbs a solve — status, objective, pivot sequence
   and modeled seconds are bit-identical with the registry on and off,
   for every solve method (hypothesis property);
3. the instrumentation hooks populate the expected series when enabled
   and are no-ops when disabled;
4. the Prometheus exposition parses under the line-oriented grammar
   checker, and the checker rejects malformed text.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import metrics
from repro.lp.generators import random_dense_lp
from repro.metrics import (
    MetricsError,
    MetricsRegistry,
    diff_snapshots,
    from_json,
    snapshot_value,
    to_json,
    to_prometheus,
    validate_prometheus_text,
)
from repro.solve import solve

ALL_METHODS = (
    "tableau",
    "revised",
    "revised-bounded",
    "dual",
    "gpu-revised",
    "gpu-revised-bounded",
    "gpu-tableau",
)


@pytest.fixture(autouse=True)
def _no_leaked_registry():
    """Every test leaves the process-wide registry disabled."""
    yield
    metrics.disable()


# ---------------------------------------------------------------------------
# 1. registry primitives
# ---------------------------------------------------------------------------


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total", "Hits.", labels=("kind",))
        c.inc(kind="a")
        c.inc(2.5, kind="a")
        c.inc(kind="b")
        assert c.value(kind="a") == 3.5
        assert c.value(kind="b") == 1.0
        assert c.value(kind="missing") == 0.0

    def test_rejects_negative(self):
        c = MetricsRegistry().counter("n_total")
        with pytest.raises(MetricsError, match="cannot decrease"):
            c.inc(-1)

    def test_label_mismatch_rejected(self):
        c = MetricsRegistry().counter("n_total", labels=("kind",))
        with pytest.raises(MetricsError, match="expected labels"):
            c.inc()
        with pytest.raises(MetricsError, match="expected labels"):
            c.inc(kind="a", extra="b")


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value() == 13.0

    def test_set_max_keeps_peak(self):
        g = MetricsRegistry().gauge("peak")
        g.set_max(10)
        g.set_max(3)
        assert g.value() == 10.0
        g.set_max(12)
        assert g.value() == 12.0


class TestHistogram:
    def test_cumulative_buckets(self):
        h = MetricsRegistry().histogram("lat", buckets=(1, 5, 10))
        for v in (0.5, 3, 7, 100):
            h.observe(v)
        series = next(h.series_items())[1]
        assert series.bucket_counts == [1, 2, 3]  # cumulative
        assert series.count == 4
        assert series.total == pytest.approx(110.5)

    def test_bad_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricsError):
            reg.histogram("h1", buckets=(5, 1))  # unsorted
        with pytest.raises(MetricsError):
            reg.histogram("h2", buckets=(1, 1, 2))  # duplicate
        with pytest.raises(MetricsError):
            reg.histogram("h3", buckets=())  # empty


class TestQuantileEstimation:
    """Bucket-based quantile estimation (histogram_quantile semantics):
    linear interpolation within the bucket containing the target rank."""

    def test_uniform_known_values(self):
        # values 1..100 into decade buckets: the estimate is exact at
        # every bucket-aligned quantile
        h = MetricsRegistry().histogram(
            "lat", buckets=tuple(float(b) for b in range(10, 101, 10))
        )
        for v in range(1, 101):
            h.observe(float(v))
        assert h.quantile(0.5) == pytest.approx(50.0)
        assert h.quantile(0.95) == pytest.approx(95.0)
        assert h.quantile(0.99) == pytest.approx(99.0)
        assert h.quantile(0.1) == pytest.approx(10.0)
        assert h.quantile(1.0) == pytest.approx(100.0)

    def test_interpolation_within_bucket(self):
        # 4 observations all landing in (10, 20]: the median interpolates
        # to the midpoint of the bucket's fill
        h = MetricsRegistry().histogram("lat", buckets=(10.0, 20.0))
        for v in (12, 14, 16, 18):
            h.observe(float(v))
        assert h.quantile(0.5) == pytest.approx(15.0)
        assert h.quantile(0.25) == pytest.approx(12.5)

    def test_first_bucket_anchors_at_zero(self):
        # latency-style buckets: the first bucket's lower edge is 0
        h = MetricsRegistry().histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.07)
        assert h.quantile(0.5) == pytest.approx(0.05)

    def test_overflow_clamps_to_last_bound(self):
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0))
        for v in (0.5, 10.0, 20.0):  # two in the +Inf overflow bucket
            h.observe(v)
        assert h.quantile(0.99) == pytest.approx(2.0)

    def test_empty_and_absent_series_are_nan(self):
        empty = MetricsRegistry().histogram("lat")
        assert math.isnan(empty.quantile(0.5))
        h = MetricsRegistry().histogram("lab", labels=("k",))
        h.observe(1.0, k="a")
        assert math.isnan(h.quantile(0.5, k="missing"))
        assert not math.isnan(h.quantile(0.5, k="a"))

    def test_bad_q_rejected(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(1.0)
        with pytest.raises(MetricsError):
            h.quantile(1.5)
        with pytest.raises(MetricsError):
            h.quantile(-0.1)

    def test_module_level_quantile_on_snapshot_series(self):
        from repro.metrics import bucket_quantile, quantile

        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(10.0, 20.0, 30.0))
        for v in (5.0, 15.0, 25.0, 28.0):
            h.observe(v)
        # Histogram object and its snapshot representation agree
        series = reg.snapshot()["metrics"]["lat"]["series"][0]
        assert quantile(h, 0.5) == pytest.approx(quantile(series, 0.5))
        # ...and both match the raw bucket computation
        assert quantile(series, 0.5) == pytest.approx(
            bucket_quantile((10.0, 20.0, 30.0), (1, 2, 4), 4, 0.5)
        )
        with pytest.raises(MetricsError):
            quantile({"count": 3}, 0.5)

    def test_empty_histogram_quantile_is_nan(self):
        # Regression guard: a quantile of a histogram with zero
        # observations must be NaN, not a ZeroDivisionError and not 0.0
        # (which would read as "instant latency" on a dashboard).
        from repro.metrics import bucket_quantile

        assert math.isnan(bucket_quantile((1.0, 2.0), (0, 0), 0, 0.5))
        assert math.isnan(bucket_quantile((), (), 0, 0.99))
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0))
        assert math.isnan(h.quantile(0.5))

    def test_single_observation_quantile(self):
        # One observation: every quantile interpolates inside the bucket
        # that holds it — bounded by the bucket's edges, never NaN.
        from repro.metrics import bucket_quantile

        h = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0, 4.0))
        h.observe(1.5)
        for q in (0.0, 0.5, 0.99, 1.0):
            est = h.quantile(q)
            assert 1.0 <= est <= 2.0, (q, est)
        # and the raw-bucket computation agrees
        assert bucket_quantile((1.0, 2.0, 4.0), (0, 1, 1), 1, 1.0) == pytest.approx(
            2.0
        )

    def test_estimate_brackets_true_quantile(self):
        # against a known distribution: the bucket estimate always lands
        # inside the bucket holding the true quantile
        rng = np.random.default_rng(42)
        values = rng.exponential(0.1, size=2000)
        buckets = (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5)
        h = MetricsRegistry().histogram("lat", buckets=buckets)
        for v in values:
            h.observe(float(v))
        for q in (0.5, 0.9, 0.95, 0.99):
            true_q = float(np.quantile(values, q))
            est = h.quantile(q)
            hi = next((b for b in buckets if b >= true_q), buckets[-1])
            lo_candidates = [b for b in buckets if b < true_q]
            lo = lo_candidates[-1] if lo_candidates else 0.0
            assert lo <= est <= hi, (q, est, true_q)


class TestRegistry:
    def test_declare_or_fetch_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "X.", labels=("k",))
        b = reg.counter("x_total", "ignored", labels=("k",))
        assert a is b

    def test_redeclaration_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labels=("k",))
        with pytest.raises(MetricsError, match="already registered"):
            reg.gauge("x_total", labels=("k",))
        with pytest.raises(MetricsError, match="already registered"):
            reg.counter("x_total", labels=("other",))

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricsError):
            reg.counter("0bad")
        with pytest.raises(MetricsError):
            reg.counter("ok_total", labels=("bad-label",))

    def test_reset_drops_series_keeps_declarations(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total")
        c.inc()
        reg.reset()
        assert c.value() == 0.0
        assert reg.get("x_total") is c


class TestSnapshotAndDiff:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "C.", labels=("k",)).inc(3, k="a")
        reg.gauge("g").set(7)
        reg.histogram("h", buckets=(1, 10)).observe(4)
        return reg

    def test_snapshot_layout(self):
        snap = self._registry().snapshot()
        assert snap["schema"] == metrics.SNAPSHOT_SCHEMA
        c = snap["metrics"]["c_total"]
        assert c["type"] == "counter"
        assert c["series"] == [{"labels": {"k": "a"}, "value": 3.0}]
        h = snap["metrics"]["h"]["series"][0]
        assert h["buckets"] == {"1.0": 0, "10.0": 1}
        assert h["count"] == 1

    def test_diff_counters_subtract_gauges_keep_after(self):
        reg = self._registry()
        before = reg.snapshot()
        reg.counter("c_total", labels=("k",)).inc(2, k="a")
        reg.gauge("g").set(99)
        reg.histogram("h", buckets=(1, 10)).observe(0.5)
        delta = diff_snapshots(before, reg.snapshot())
        assert snapshot_value(delta, "c_total", k="a") == 2.0
        assert snapshot_value(delta, "g") == 99.0  # a gauge is a level
        h = delta["metrics"]["h"]["series"][0]
        assert h["count"] == 1
        assert h["buckets"] == {"1.0": 1, "10.0": 1}

    def test_new_series_pass_through_diff(self):
        reg = self._registry()
        before = reg.snapshot()
        reg.counter("c_total", labels=("k",)).inc(5, k="new")
        delta = diff_snapshots(before, reg.snapshot())
        assert snapshot_value(delta, "c_total", k="new") == 5.0

    def test_snapshot_value_missing(self):
        snap = self._registry().snapshot()
        assert snapshot_value(snap, "nope") is None
        assert snapshot_value(snap, "c_total", k="zz") is None

    def test_check_snapshot_rejects_garbage(self):
        with pytest.raises(MetricsError):
            diff_snapshots({}, {})
        with pytest.raises(MetricsError):
            diff_snapshots(
                {"schema": "other/v9", "metrics": {}},
                {"schema": metrics.SNAPSHOT_SCHEMA, "metrics": {}},
            )

    def test_json_round_trip(self):
        snap = self._registry().snapshot()
        assert from_json(to_json(snap)) == snap


class TestEnableDisable:
    def test_enable_active_disable(self):
        assert metrics.active() is None
        reg = metrics.enable()
        assert metrics.active() is reg
        assert metrics.enabled()
        metrics.disable()
        assert metrics.active() is None
        assert not metrics.enabled()

    def test_collecting_restores_previous(self):
        outer = metrics.enable()
        with metrics.collecting() as inner:
            assert metrics.active() is inner
            assert inner is not outer
        assert metrics.active() is outer

    def test_module_snapshot_when_disabled_is_empty(self):
        snap = metrics.snapshot()
        assert snap == {"schema": metrics.SNAPSHOT_SCHEMA, "metrics": {}}


# ---------------------------------------------------------------------------
# 2. collection never perturbs a solve
# ---------------------------------------------------------------------------


def _pivot_sequence(result):
    return [
        (r.event, r.phase, r.entering, r.leaving_row, r.pivot)
        for r in result.trace
    ]


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    method=st.sampled_from(ALL_METHODS),
    m=st.integers(4, 12),
    extra=st.integers(1, 8),
    seed=st.integers(0, 10_000),
)
def test_metrics_collection_is_bit_identical(method, m, extra, seed):
    lp = random_dense_lp(m, m + extra, seed=seed)
    metrics.disable()
    plain = solve(lp, method=method, trace=True)
    with metrics.collecting():
        collected = solve(lp, method=method, trace=True)
    assert plain.status == collected.status
    assert plain.iterations.total_iterations == collected.iterations.total_iterations
    assert plain.timing.modeled_seconds == collected.timing.modeled_seconds
    assert _pivot_sequence(plain) == _pivot_sequence(collected)
    if plain.objective is not None:
        assert plain.objective == collected.objective
        assert np.array_equal(plain.x, collected.x)


# ---------------------------------------------------------------------------
# 3. the instrumentation hooks
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def lp():
    return random_dense_lp(14, 20, seed=7)


class TestInstrumentation:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_solve_counted_exactly_once(self, lp, method):
        # one solve -> one recorded solve, under the solver that actually
        # ran (dual's primal fallback records as the delegate, revised-cpu)
        with metrics.collecting() as reg:
            result = solve(lp, method=method)
            snap = reg.snapshot()
        series = snap["metrics"]["repro_solves_total"]["series"]
        assert sum(e["value"] for e in series) == 1.0
        (entry,) = [e for e in series if e["value"] == 1.0]
        solver = entry["labels"]["solver"]
        assert entry["labels"]["status"] == result.status.value
        total = snapshot_value(
            snap, "repro_solver_iterations_total", solver=solver, phase="1",
        ) + snapshot_value(
            snap, "repro_solver_iterations_total", solver=solver, phase="2",
        )
        assert total == result.iterations.total_iterations
        assert snapshot_value(
            snap, "repro_solver_modeled_seconds_total", solver=solver
        ) == pytest.approx(result.timing.modeled_seconds)

    def test_gpu_solve_records_device_metrics(self, lp):
        with metrics.collecting() as reg:
            solve(lp, method="gpu-revised")
            snap = reg.snapshot()
        launches = snap["metrics"]["repro_gpu_kernel_launches_total"]["series"]
        assert launches and sum(e["value"] for e in launches) > 0
        assert snapshot_value(
            snap, "repro_gpu_transfer_bytes_total", direction="htod"
        ) > 0
        assert snapshot_value(snap, "repro_gpu_peak_bytes_in_use") > 0
        occ = snap["metrics"]["repro_gpu_kernel_occupancy"]["series"][0]
        assert occ["count"] == sum(e["value"] for e in launches)

    def test_batch_records_schedule_metrics(self):
        from repro.batch import solve_batch

        lps = [random_dense_lp(10, 14, seed=s) for s in range(3)]
        with metrics.collecting() as reg:
            solve_batch(lps, method="gpu-revised", schedule="concurrent")
            snap = reg.snapshot()
        assert snapshot_value(
            snap, "repro_batch_lps_total", schedule="concurrent"
        ) == 3.0
        assert snapshot_value(snap, "repro_batch_queue_depth") == 3.0
        util = snapshot_value(
            snap, "repro_batch_stream_utilization", schedule="concurrent"
        )
        assert 0.0 < util <= 1.0

    def test_traced_solve_records_ratio_ties(self, lp):
        with metrics.collecting() as reg:
            result = solve(lp, method="revised", trace=True)
            snap = reg.snapshot()
        ties = snapshot_value(
            snap, "repro_solver_ratio_test_ties_total", solver=result.solver
        )
        assert ties == sum(r.ratio_ties for r in result.trace)

    def test_disabled_is_a_noop(self, lp):
        reg = MetricsRegistry()
        metrics.disable()
        solve(lp, method="gpu-revised")
        assert len(reg) == 0
        assert metrics.active() is None


# ---------------------------------------------------------------------------
# 4. the Prometheus exposition
# ---------------------------------------------------------------------------


class TestPrometheus:
    def test_real_workload_output_validates(self, lp):
        with metrics.collecting() as reg:
            solve(lp, method="gpu-revised")
            text = to_prometheus(reg)
        assert validate_prometheus_text(text) > 0
        assert '# TYPE repro_solves_total counter' in text
        assert 'repro_solves_total{solver="gpu-revised",status="optimal"} 1' in text

    def test_histogram_expansion(self):
        reg = MetricsRegistry()
        reg.histogram("lat", "Latency.", buckets=(1, 5)).observe(3)
        text = to_prometheus(reg)
        assert 'lat_bucket{le="1"} 0' in text
        assert 'lat_bucket{le="5"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 3" in text
        assert "lat_count 1" in text
        assert validate_prometheus_text(text) == 5

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c_total", labels=("k",)).inc(k='we"ird\\va\nlue')
        text = to_prometheus(reg)
        assert r'k="we\"ird\\va\nlue"' in text
        assert validate_prometheus_text(text) == 1

    def test_special_values(self):
        reg = MetricsRegistry()
        g = reg.gauge("g", labels=("k",))
        g.set(float("nan"), k="nan")
        g.set(float("inf"), k="inf")
        g.set(-float("inf"), k="ninf")
        text = to_prometheus(reg)
        assert 'g{k="nan"} NaN' in text
        assert 'g{k="inf"} +Inf' in text
        assert 'g{k="ninf"} -Inf' in text
        assert validate_prometheus_text(text) == 3

    @pytest.mark.parametrize(
        "bad",
        [
            "no_trailing_newline 1",
            "# TYPE x bogus_type\n",
            "1bad_name 1\n",
            'x{k="unclosed} 1\n',
            "x notanumber\n",
            "# TYPE x counter\n# TYPE x counter\nx 1\n",
            "# TYPE x counter\ny 1\n",  # sample lacks its TYPE
        ],
    )
    def test_malformed_text_rejected(self, bad):
        with pytest.raises(MetricsError):
            validate_prometheus_text(bad)

    def test_empty_exposition_ok(self):
        assert validate_prometheus_text("") == 0
        assert to_prometheus(MetricsRegistry()) == ""

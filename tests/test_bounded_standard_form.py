"""Tests for the bounded standard-form variant (bounds kept as bounds)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp.problem import Bounds, LPProblem
from repro.lp.standard_form import to_standard_form


def boxed_lp(n=4, m=2, seed=0):
    rng = np.random.default_rng(seed)
    return LPProblem(
        c=rng.normal(size=n),
        a=rng.normal(size=(m, n)),
        senses=["<="] * m,
        b=np.abs(rng.normal(size=m)) + 1,
        bounds=Bounds(np.zeros(n), rng.uniform(1, 3, n)),
    )


class TestBoundedVariant:
    def test_no_extra_rows(self):
        lp = boxed_lp(n=5, m=3)
        rows_form = to_standard_form(lp)
        bnd_form = to_standard_form(lp, range_bounds_as_rows=False)
        assert rows_form.num_rows == 3 + 5  # one bound row per variable
        assert bnd_form.num_rows == 3

    def test_upper_vector_contents(self):
        lp = boxed_lp(n=4, m=2, seed=1)
        std = to_standard_form(lp, range_bounds_as_rows=False)
        u = std.upper_bounds()
        # structural columns carry hi - lo; slacks are unbounded
        np.testing.assert_allclose(u[:4], lp.bounds.upper)
        assert np.all(np.isposinf(u[4:]))

    def test_default_has_no_upper_vector(self):
        std = to_standard_form(boxed_lp())
        assert std.upper is None
        assert np.all(np.isposinf(std.upper_bounds()))

    def test_shifted_range_bound(self):
        lp = LPProblem(
            c=[1.0], a=[[1.0]], senses=["<="], b=[10.0],
            bounds=Bounds(np.array([2.0]), np.array([5.0])),
        )
        std = to_standard_form(lp, range_bounds_as_rows=False)
        assert std.num_rows == 1
        assert std.upper_bounds()[0] == pytest.approx(3.0)  # hi - lo
        # recovery adds the shift back
        x = std.recover_x(np.array([3.0, 0.0]))
        assert x[0] == pytest.approx(5.0)

    def test_free_and_upper_only_unaffected(self):
        lp = LPProblem(
            c=[1.0, 1.0], a=[[1.0, 1.0]], senses=["<="], b=[4.0],
            bounds=Bounds(np.array([-np.inf, -np.inf]),
                          np.array([np.inf, 2.0])),
        )
        std = to_standard_form(lp, range_bounds_as_rows=False)
        # free split + reflected upper-only: no finite column bounds appear
        assert np.all(np.isposinf(std.upper_bounds()))


@settings(max_examples=30, deadline=None)
@given(n=st.integers(1, 6), m=st.integers(1, 4), seed=st.integers(0, 2**31))
def test_both_encodings_describe_the_same_polytope(n, m, seed):
    """A point feasible for the bounded encoding maps to a feasible point of
    the rows encoding with equal objective (and vice versa via recovery)."""
    lp = boxed_lp(n=n, m=m, seed=seed)
    rows_form = to_standard_form(lp)
    bnd_form = to_standard_form(lp, range_bounds_as_rows=False)
    rng = np.random.default_rng(seed)
    # random point within the bounded encoding's box
    u = bnd_form.upper_bounds()
    x_bnd = np.where(np.isfinite(u), rng.uniform(0, 1, u.size) * np.where(np.isfinite(u), u, 1.0), rng.uniform(0, 2, u.size))
    x_orig = bnd_form.recover_x(x_bnd)
    # objective computed through either encoding agrees with the direct value
    z_bnd = float(bnd_form.c @ x_bnd) + bnd_form.constant
    c_min = -lp.c if lp.maximize else lp.c
    assert z_bnd == pytest.approx(float(c_min @ x_orig), rel=1e-9, abs=1e-9)

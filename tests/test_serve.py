"""Tests for the serving layer (repro.serve).

Covers the four tentpole pieces — admission queue, device fleet placement,
warm-start cache, event loop — plus the serving invariants: answers are
bit-identical to solo solves, fleets beat the sequential baseline on the
canonical trace, and perturbed resubmissions land warm-start cache hits.
"""

import dataclasses

import numpy as np
import pytest

from repro import metrics
from repro.errors import SolverError, UnknownMethodError
from repro.lp.generators import random_dense_lp
from repro.perfmodel.presets import GTX280_PARAMS
from repro.serve import (
    AdmissionQueue,
    DeviceWorker,
    Job,
    JobState,
    LPServer,
    MakespanPredictor,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    ServeConfig,
    WarmStartCache,
    estimate_footprint_bytes,
    make_fleet,
    perturb_problem,
    priority_name,
    serve_trace,
    synthetic_trace,
)
from repro.solve import solve


@pytest.fixture(autouse=True)
def _no_leaked_registry():
    yield
    metrics.disable()


def _job(job_id=0, priority=PRIORITY_NORMAL, deadline=None, m=4, n=6):
    return Job(
        job_id=job_id,
        problem=random_dense_lp(m, n, seed=job_id),
        method="gpu-revised",
        priority=priority,
        deadline=deadline,
    )


# ---------------------------------------------------------------------------
# admission queue
# ---------------------------------------------------------------------------


class TestAdmissionQueue:
    def test_priority_order_fifo_within_level(self):
        q = AdmissionQueue()
        ids = []
        for i, prio in enumerate(
            [PRIORITY_LOW, PRIORITY_NORMAL, PRIORITY_HIGH,
             PRIORITY_NORMAL, PRIORITY_HIGH]
        ):
            q.push(_job(job_id=i, priority=prio))
        while len(q):
            ids.append(q.pop().job_id)
        # highs first (arrival order), then normals, then the low
        assert ids == [2, 4, 1, 3, 0]

    def test_depth_bound_sheds_load(self):
        q = AdmissionQueue(max_depth=2)
        assert q.push(_job(0)) and q.push(_job(1))
        assert q.full
        assert not q.push(_job(2))
        assert len(q) == 2 and q.admitted == 2

    def test_expire_stale_drops_passed_deadlines(self):
        q = AdmissionQueue()
        q.push(_job(0, priority=PRIORITY_HIGH, deadline=1.0))
        q.push(_job(1, priority=PRIORITY_NORMAL, deadline=5.0))
        dropped = q.expire_stale(now=2.0)
        assert dropped == 1 and q.expired == 1
        survivor = q.pop_ready(now=2.0)
        assert survivor.job_id == 1
        assert q.pop_ready(now=2.0) is None

    def test_expired_job_is_marked(self):
        q = AdmissionQueue()
        job = _job(0, deadline=0.5)
        q.push(job)
        q.expire_stale(now=1.0)
        assert job.state is JobState.EXPIRED
        assert job.finish_time == 1.0

    def test_peek_does_not_dequeue(self):
        q = AdmissionQueue()
        q.push(_job(7))
        assert q.peek().job_id == 7
        assert len(q) == 1

    def test_depth_by_priority(self):
        q = AdmissionQueue()
        for i, prio in enumerate([PRIORITY_HIGH, PRIORITY_HIGH, PRIORITY_LOW]):
            q.push(_job(i, priority=prio))
        assert q.depth_by_priority() == {PRIORITY_HIGH: 2, PRIORITY_LOW: 1}

    def test_bad_depth_rejected(self):
        with pytest.raises(SolverError):
            AdmissionQueue(max_depth=0)


# ---------------------------------------------------------------------------
# warm-start cache
# ---------------------------------------------------------------------------


class TestWarmStartCache:
    def test_miss_then_hit(self):
        cache = WarmStartCache()
        assert cache.get("fp") is None
        cache.put("fp", np.array([1, 2, 3]))
        got = cache.get("fp")
        assert got.tolist() == [1, 2, 3]
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_returns_a_copy(self):
        cache = WarmStartCache()
        basis = np.array([1, 2, 3])
        cache.put("fp", basis)
        basis[0] = 99  # caller mutation does not poison the cache
        first = cache.get("fp")
        first[1] = 99  # nor does mutating the returned copy
        assert cache.get("fp").tolist() == [1, 2, 3]

    def test_lru_eviction(self):
        cache = WarmStartCache(capacity=2)
        cache.put("a", np.array([1]))
        cache.put("b", np.array([2]))
        cache.get("a")  # refresh a: b becomes the LRU entry
        cache.put("c", np.array([3]))
        assert cache.get("b") is None
        assert cache.get("a") is not None and cache.get("c") is not None
        assert cache.evictions == 1

    def test_refresh_does_not_evict(self):
        cache = WarmStartCache(capacity=2)
        cache.put("a", np.array([1]))
        cache.put("b", np.array([2]))
        cache.put("a", np.array([9]))  # refresh, not insert
        assert cache.evictions == 0
        assert cache.get("a").tolist() == [9]

    def test_overflow_stays_bounded_through_server(self):
        # Regression: the cache grew without bound — one entry per distinct
        # structure ever served.  A replay over more structures than the
        # configured capacity must end with len(cache) == capacity, the
        # overflow counted as evictions, and the eviction metric emitted.
        from repro import metrics

        config = ServeConfig(n_devices=1, cache_capacity=3, method="gpu-revised")
        with metrics.collecting() as reg:
            server = LPServer(config)
            for i in range(6):
                # distinct shapes -> distinct structural fingerprints
                server.submit(random_dense_lp(8 + i, 12 + i, seed=i))
            server.run()
        assert len(server.cache) == 3
        assert server.cache.capacity == 3
        assert server.cache.stores == 6
        assert server.cache.evictions == 3
        assert reg.get("repro_serve_cache_evictions_total") is not None

    def test_summary_and_len(self):
        cache = WarmStartCache(capacity=4)
        cache.put("a", np.array([1]))
        assert len(cache) == 1
        assert "1/4" in cache.summary()

    def test_bad_capacity(self):
        with pytest.raises(SolverError):
            WarmStartCache(capacity=0)


# ---------------------------------------------------------------------------
# fleet
# ---------------------------------------------------------------------------


class TestFleet:
    def test_footprint_grows_with_problem(self):
        small = estimate_footprint_bytes(random_dense_lp(8, 12, seed=1))
        large = estimate_footprint_bytes(random_dense_lp(64, 96, seed=1))
        assert 0 < small < large

    def test_footprint_method_sensitivity(self):
        lp = random_dense_lp(32, 48, seed=2)
        revised = estimate_footprint_bytes(lp, "gpu-revised")
        tableau = estimate_footprint_bytes(lp, "gpu-tableau")
        assert tableau > revised  # the full tableau dwarfs B^-1

    def test_make_fleet_names_and_validation(self):
        fleet = make_fleet(3)
        assert [d.name for d in fleet] == ["dev0", "dev1", "dev2"]
        assert all(d.device is not None for d in fleet)
        with pytest.raises(SolverError):
            make_fleet(0)

    def test_cpu_worker_has_no_device(self):
        worker = DeviceWorker("w0", on_gpu=False)
        assert worker.device is None
        assert worker.idle_at(0.0)

    def test_utilization_clamped(self):
        worker = DeviceWorker("w0")
        worker.busy_seconds = 2.0
        assert worker.utilization(1.0) == 1.0
        assert worker.utilization(4.0) == pytest.approx(0.5)
        assert worker.utilization(0.0) == 0.0

    def test_predictor_running_mean(self):
        pred = MakespanPredictor()
        lp = random_dense_lp(16, 24, seed=3)
        assert pred.predict(lp, "gpu-revised") == 0.0  # unseen: no estimate
        pred.observe(lp, "gpu-revised", 1.0)
        pred.observe(lp, "gpu-revised", 3.0)
        assert pred.predict(lp, "gpu-revised") == pytest.approx(2.0)
        # similar sizes share a bucket; different magnitudes do not
        near = random_dense_lp(17, 25, seed=4)
        far = random_dense_lp(128, 192, seed=4)
        assert pred.predict(near, "gpu-revised") == pytest.approx(2.0)
        # an unseen bucket of an observed method extrapolates by the work
        # ratio instead of claiming 0.0 ("free") — 16x24 to 128x192 is
        # three log2 steps in each dimension, so 2.0 * 2**6
        assert pred.predict(far, "gpu-revised") == pytest.approx(128.0)
        assert pred.predict(lp, "revised") == 0.0  # per-method
        assert len(pred) == 1

    def test_predictor_extrapolates_from_nearest_bucket(self):
        # Regression: a job bigger than every observed bucket used to
        # predict 0.0 and bypass deadline admission control entirely.
        pred = MakespanPredictor()
        small = random_dense_lp(16, 24, seed=3)
        mid = random_dense_lp(32, 48, seed=3)
        huge = random_dense_lp(256, 384, seed=3)
        pred.observe(small, "gpu-revised", 1.0)
        pred.observe(mid, "gpu-revised", 4.0)
        # nearest bucket wins: 32x48 -> 256x384 is 3+3 log2 steps
        assert pred.predict(huge, "gpu-revised") == pytest.approx(4.0 * 2**6)
        # estimate grows monotonically with the size gap
        assert pred.predict(huge, "gpu-revised") > pred.predict(
            mid, "gpu-revised"
        )
        # scaling down works too (smaller than every observed bucket)
        tiny = random_dense_lp(4, 6, seed=3)
        assert 0.0 < pred.predict(tiny, "gpu-revised") < 1.0


# ---------------------------------------------------------------------------
# the server
# ---------------------------------------------------------------------------


class TestLPServer:
    def test_single_job_matches_solo_solve(self):
        lp = random_dense_lp(16, 24, seed=10)
        server = LPServer(ServeConfig(n_devices=1))
        job = server.submit(lp)
        report = server.run()
        solo = solve(lp, method="gpu-revised")
        assert job.state is JobState.COMPLETED
        assert job.result.objective == solo.objective
        assert job.result.status is solo.status
        assert job.latency_seconds > 0.0
        assert report.span_seconds >= job.finish_time - 1e-15

    def test_unknown_method_rejected(self):
        with pytest.raises(UnknownMethodError):
            LPServer(ServeConfig(method="not-a-method"))

    def test_submit_validation(self):
        server = LPServer()
        with pytest.raises(SolverError):
            server.submit(random_dense_lp(4, 6, seed=0), timeout=0.0)
        server.clock = 1.0
        with pytest.raises(SolverError):
            server.submit(random_dense_lp(4, 6, seed=0), at=0.5)

    def test_priority_wins_under_backlog(self):
        # one busy device: a later HIGH submission dispatches before the
        # earlier LOW ones queued behind the running job
        server = LPServer(ServeConfig(n_devices=1, n_streams=1))
        server.submit(random_dense_lp(16, 24, seed=20), at=0.0)
        low = [
            server.submit(random_dense_lp(16, 24, seed=21 + i),
                          at=1e-4, priority=PRIORITY_LOW)
            for i in range(2)
        ]
        high = server.submit(random_dense_lp(16, 24, seed=30),
                             at=2e-4, priority=PRIORITY_HIGH)
        server.run()
        assert high.dispatch_time < min(j.dispatch_time for j in low)

    def test_queue_full_rejection(self):
        server = LPServer(
            ServeConfig(n_devices=1, n_streams=1, max_queue_depth=1)
        )
        server.submit(random_dense_lp(16, 24, seed=40), at=0.0)
        queued = server.submit(random_dense_lp(16, 24, seed=41), at=1e-5)
        shed = server.submit(random_dense_lp(16, 24, seed=42), at=2e-5)
        report = server.run()
        assert queued.state is JobState.COMPLETED
        assert shed.state is JobState.REJECTED
        assert shed.reject_reason == "queue-full"
        assert shed.result is None
        assert len(report.rejected) == 1

    def test_memory_rejection(self):
        tiny_card = dataclasses.replace(GTX280_PARAMS, global_mem_bytes=4096)
        server = LPServer(ServeConfig(n_devices=2, gpu_params=tiny_card))
        job = server.submit(random_dense_lp(32, 48, seed=50))
        server.run()
        assert job.state is JobState.REJECTED
        assert job.reject_reason == "memory"

    def test_deadline_rejection_at_admission(self):
        # device busy well past the deadline when the job arrives
        server = LPServer(ServeConfig(n_devices=1, n_streams=1))
        server.submit(random_dense_lp(32, 48, seed=60), at=0.0)
        late = server.submit(
            random_dense_lp(32, 48, seed=61), at=1e-5, timeout=1e-5
        )
        server.run()
        assert late.state is JobState.REJECTED
        assert late.reject_reason == "deadline"

    def test_deadline_expiry_in_queue(self):
        # admitted (the deadline looked feasible) but starved by HIGH
        # traffic until the deadline passes: dropped as EXPIRED
        server = LPServer(ServeConfig(n_devices=1, n_streams=1))
        first = server.submit(random_dense_lp(24, 36, seed=70), at=0.0)
        for i in range(3):
            server.submit(random_dense_lp(24, 36, seed=71 + i),
                          at=1e-4, priority=PRIORITY_HIGH)
        # different size bucket: the predictor has no estimate yet, so
        # admission cannot prove infeasibility and must admit
        starved = server.submit(
            random_dense_lp(6, 9, seed=80), at=2e-4,
            priority=PRIORITY_LOW, timeout=4e-3,
        )
        report = server.run()
        assert first.state is JobState.COMPLETED
        assert starved.state is JobState.EXPIRED
        assert starved.result is None
        assert len(report.expired) == 1

    def test_warm_start_on_structural_repeat(self):
        lp = random_dense_lp(24, 36, seed=90)
        rng = np.random.default_rng(91)
        again = perturb_problem(lp, rng)
        server = LPServer(ServeConfig(n_devices=1, n_streams=1))
        cold = server.submit(lp, at=0.0)
        warm = server.submit(again, at=1e-3)
        server.run()
        assert not cold.warm_started
        assert warm.warm_started
        assert server.cache.hits == 1
        # warm starts never change the answer
        assert warm.result.objective == pytest.approx(
            solve(again, method="gpu-revised").objective
        )

    def test_non_optimal_breaks_chain_and_skips_cache(self):
        base = random_dense_lp(12, 18, seed=100)
        from repro.lp.problem import LPProblem

        infeasible = LPProblem(
            c=base.c, a=base.a_dense(), senses=base.senses,
            b=-np.ones(base.num_constraints), bounds=base.bounds,
            maximize=base.maximize, name="infeasible",
        )
        server = LPServer(ServeConfig(n_devices=1))
        first = server.submit(infeasible, at=0.0)
        second = server.submit(infeasible, at=1e-3)
        server.run()
        assert first.state is JobState.COMPLETED and not first.is_optimal
        assert first.chain_broken and second.chain_broken
        # nothing was cached, so the structural repeat still cold-starts
        assert not second.warm_started
        assert server.cache.hits == 0 and server.cache.stores == 0

    def test_non_warm_start_method_never_touches_cache(self):
        lp = random_dense_lp(8, 12, seed=110)
        server = LPServer(ServeConfig(method="gpu-tableau"))
        server.submit(lp, at=0.0)
        server.submit(lp, at=1e-3)
        server.run()
        assert server.cache.hits + server.cache.misses == 0

    def test_cpu_method_serves(self):
        server = LPServer(ServeConfig(n_devices=2, method="revised"))
        jobs = [
            server.submit(random_dense_lp(10, 15, seed=120 + i), at=i * 1e-5)
            for i in range(4)
        ]
        report = server.run()
        assert all(j.is_optimal for j in jobs)
        assert all(d.device is None for d in report.devices)

    def test_sharding_spreads_jobs(self):
        server = LPServer(ServeConfig(n_devices=2, n_streams=1))
        for i in range(6):
            server.submit(random_dense_lp(16, 24, seed=130 + i), at=0.0)
        report = server.run()
        used = {j.device for j in report.completed}
        assert used == {"dev0", "dev1"}

    def test_windows_respect_stream_width(self):
        server = LPServer(ServeConfig(n_devices=1, n_streams=2))
        for i in range(8):
            server.submit(random_dense_lp(8, 12, seed=140 + i), at=0.0)
        report = server.run()
        dev = report.devices[0]
        assert dev.jobs_done == 8
        assert dev.dispatches >= 4  # windows of at most n_streams=2

    def test_run_is_reusable(self):
        server = LPServer(ServeConfig(n_devices=1))
        a = server.submit(random_dense_lp(8, 12, seed=150))
        server.run()
        b = server.submit(random_dense_lp(8, 12, seed=151))
        report = server.run()
        assert a.state is JobState.COMPLETED
        assert b.state is JobState.COMPLETED
        assert b.submit_time >= a.finish_time
        assert len(report.jobs) == 2


# ---------------------------------------------------------------------------
# traces and the replay harness
# ---------------------------------------------------------------------------


class TestTraces:
    def test_trace_is_deterministic(self):
        t1 = synthetic_trace(n_jobs=12, seed=5)
        t2 = synthetic_trace(n_jobs=12, seed=5)
        assert [e.at for e in t1] == [e.at for e in t2]
        assert [e.priority for e in t1] == [e.priority for e in t2]
        assert [e.problem.fingerprint() for e in t1] == [
            e.problem.fingerprint() for e in t2
        ]

    def test_resubmissions_share_fingerprints(self):
        trace = synthetic_trace(n_jobs=32, seed=0)
        resub = [e for e in trace if e.resubmit_of is not None]
        assert resub  # the default fraction guarantees some
        for entry in resub:
            original = trace[entry.resubmit_of]
            assert entry.problem.fingerprint() == original.problem.fingerprint()
            # but the numbers differ: it is a perturbation, not a copy
            assert not np.array_equal(entry.problem.b, original.problem.b)

    def test_mixed_priorities_and_timeouts(self):
        trace = synthetic_trace(n_jobs=32, seed=1)
        priorities = {e.priority for e in trace}
        assert priorities == {PRIORITY_HIGH, PRIORITY_NORMAL, PRIORITY_LOW}
        assert any(e.timeout is not None for e in trace)
        assert any(e.timeout is None for e in trace)

    def test_arrivals_increase(self):
        trace = synthetic_trace(n_jobs=16, seed=2)
        ats = [e.at for e in trace]
        assert ats == sorted(ats) and ats[0] > 0.0

    def test_validation(self):
        with pytest.raises(SolverError):
            synthetic_trace(n_jobs=0)
        with pytest.raises(SolverError):
            synthetic_trace(n_jobs=4, resubmit_fraction=1.5)

    def test_perturb_rejects_sparse(self):
        from repro.lp.generators import random_sparse_lp

        with pytest.raises(SolverError):
            perturb_problem(
                random_sparse_lp(16, 24, seed=3), np.random.default_rng(0)
            )


class TestServeTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        return synthetic_trace(n_jobs=16, seed=7)

    def test_fleet_beats_sequential(self, trace):
        seq = serve_trace(
            trace, ServeConfig(n_devices=1, n_streams=1, cache_capacity=1)
        )
        fleet = serve_trace(trace, ServeConfig(n_devices=2))
        assert seq.all_optimal and fleet.all_optimal
        assert fleet.span_seconds < seq.span_seconds
        assert fleet.cache_hits >= 1
        assert fleet.latency_quantile(0.95) <= seq.latency_quantile(0.95)

    def test_replay_is_deterministic(self, trace):
        a = serve_trace(trace, ServeConfig(n_devices=2))
        b = serve_trace(trace, ServeConfig(n_devices=2))
        assert a.span_seconds == b.span_seconds
        assert a.latencies() == b.latencies()
        assert [j.device for j in a.jobs] == [j.device for j in b.jobs]

    def test_answers_survive_any_fleet_shape(self, trace):
        solo = {
            i: solve(e.problem, method="gpu-revised").objective
            for i, e in enumerate(trace)
        }
        for n_devices in (1, 3):
            report = serve_trace(trace, ServeConfig(n_devices=n_devices))
            for job in report.completed:
                assert job.result.objective == pytest.approx(
                    solo[job.job_id], rel=1e-9
                )

    def test_report_rendering(self, trace):
        report = serve_trace(trace, ServeConfig(n_devices=2))
        text = report.render()
        assert "dev0" in text and "dev1" in text
        assert "cache:" in text
        assert "served 16/16" in text
        assert report.summary() in text

    def test_config_overrides_kwargs(self, trace):
        report = serve_trace(trace, n_devices=2, method="revised")
        assert report.config.n_devices == 2
        assert report.config.method == "revised"


class TestServeMetrics:
    def test_full_serving_telemetry(self):
        trace = synthetic_trace(n_jobs=12, seed=9)
        with metrics.collecting() as reg:
            serve_trace(trace, ServeConfig(n_devices=2))
            snap = reg.snapshot()
        m = snap["metrics"]
        submitted = sum(
            e["value"] for e in m["repro_serve_jobs_submitted_total"]["series"]
        )
        assert submitted == 12
        assert "repro_serve_queue_depth" in m
        assert "repro_serve_latency_seconds" in m
        lat = m["repro_serve_latency_seconds"]["series"][0]
        assert lat["count"] >= 1
        quantiles = {
            e["labels"]["q"]: e["value"]
            for e in m["repro_serve_latency_quantile_seconds"]["series"]
        }
        assert set(quantiles) == {"0.5", "0.95", "0.99"}
        assert quantiles["0.5"] <= quantiles["0.99"]
        hits = {
            e["labels"]["outcome"]: e["value"]
            for e in m["repro_serve_cache_lookups_total"]["series"]
        }
        assert hits.get("hit", 0) >= 1

    def test_rejections_are_counted(self):
        with metrics.collecting() as reg:
            server = LPServer(
                ServeConfig(n_devices=1, n_streams=1, max_queue_depth=1)
            )
            server.submit(random_dense_lp(16, 24, seed=160), at=0.0)
            server.submit(random_dense_lp(16, 24, seed=161), at=1e-5)
            server.submit(random_dense_lp(16, 24, seed=162), at=2e-5)
            server.run()
            snap = reg.snapshot()
        rejected = snap["metrics"]["repro_serve_jobs_rejected_total"]["series"]
        assert {e["labels"]["reason"]: e["value"] for e in rejected} == {
            "queue-full": 1.0
        }

    def test_disabled_metrics_are_a_noop(self):
        trace = synthetic_trace(n_jobs=6, seed=11)
        baseline = serve_trace(trace, ServeConfig(n_devices=2))
        with metrics.collecting():
            observed = serve_trace(trace, ServeConfig(n_devices=2))
        # collection never perturbs the modeled outcome
        assert observed.span_seconds == baseline.span_seconds
        assert observed.latencies() == baseline.latencies()


class TestPriorityNames:
    def test_known_and_unknown(self):
        assert priority_name(PRIORITY_HIGH) == "high"
        assert priority_name(PRIORITY_NORMAL) == "normal"
        assert priority_name(PRIORITY_LOW) == "low"
        assert priority_name(7) == "7"

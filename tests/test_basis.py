"""Tests for the basis-inverse representations (explicit and PFI)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SingularBasisError
from repro.simplex.basis import (
    ExplicitInverseBasis,
    ProductFormBasis,
    apply_eta,
    apply_eta_transposed,
    eta_from_alpha,
    make_basis,
)


class TestEta:
    def test_eta_vector(self):
        alpha = np.array([2.0, 4.0, 6.0])
        eta = eta_from_alpha(alpha, 1, 1e-9)
        np.testing.assert_allclose(eta, [-0.5, 0.25, -1.5])

    def test_zero_pivot_rejected(self):
        with pytest.raises(SingularBasisError):
            eta_from_alpha(np.array([1.0, 1e-15]), 1, 1e-9)

    def test_apply_eta_is_elimination(self):
        """E y where E = I with column p := η performs the pivot step."""
        alpha = np.array([2.0, 4.0, 6.0])
        p = 1
        eta = eta_from_alpha(alpha, p, 1e-9)
        e_matrix = np.eye(3)
        e_matrix[:, p] = eta
        y = np.array([3.0, 5.0, 7.0])
        expected = e_matrix @ y
        got = y.copy()
        apply_eta(got, eta, p)
        np.testing.assert_allclose(got, expected)

    def test_apply_eta_transposed(self):
        alpha = np.array([2.0, 4.0, 6.0])
        p = 2
        eta = eta_from_alpha(alpha, p, 1e-9)
        e_matrix = np.eye(3)
        e_matrix[:, p] = eta
        r = np.array([1.0, -2.0, 3.0])
        expected = r @ e_matrix
        got = r.copy()
        apply_eta_transposed(got, eta, p)
        np.testing.assert_allclose(got, expected)

    def test_eta_applied_to_alpha_gives_unit(self):
        """E α = e_p: the defining property of the pivot transformation."""
        alpha = np.array([3.0, -1.0, 2.0])
        p = 0
        eta = eta_from_alpha(alpha, p, 1e-9)
        y = alpha.copy()
        apply_eta(y, eta, p)
        np.testing.assert_allclose(y, [1.0, 0.0, 0.0], atol=1e-12)


def random_pivot_sequence(rep, m, steps, seed):
    """Drive a representation through random pivots; return the effective B.

    Maintains the actual basis matrix alongside: start from I, replace
    column p by a random column each step.
    """
    rng = np.random.default_rng(seed)
    b_matrix = np.eye(m)
    for _ in range(steps):
        while True:
            col = rng.normal(size=m)
            alpha = rep.ftran(col)
            p = int(np.argmax(np.abs(alpha)))
            if abs(alpha[p]) > 1e-6:
                break
        rep.update(alpha, p, 1e-9)
        b_matrix[:, p] = col
    return b_matrix


@pytest.mark.parametrize("kind", ["explicit", "pfi", "lu"])
class TestRepresentations:
    def test_identity_start(self, kind):
        rep = make_basis(kind, 4)
        x = np.array([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose(rep.ftran(x), x)
        np.testing.assert_allclose(rep.btran(x), x)

    def test_ftran_solves_system(self, kind, rng):
        m = 8
        rep = make_basis(kind, m)
        b_matrix = random_pivot_sequence(rep, m, steps=12, seed=3)
        rhs = rng.normal(size=m)
        alpha = rep.ftran(rhs)
        np.testing.assert_allclose(b_matrix @ alpha, rhs, atol=1e-8)

    def test_btran_solves_transposed_system(self, kind, rng):
        m = 8
        rep = make_basis(kind, m)
        b_matrix = random_pivot_sequence(rep, m, steps=12, seed=4)
        c = rng.normal(size=m)
        pi = rep.btran(c)
        np.testing.assert_allclose(b_matrix.T @ pi, c, atol=1e-8)

    def test_refactorize_resets_error(self, kind, rng):
        m = 6
        rep = make_basis(kind, m)
        b_matrix = random_pivot_sequence(rep, m, steps=20, seed=5)
        rep.refactorize(b_matrix)
        assert rep.updates_since_refactor == 0
        rhs = rng.normal(size=m)
        np.testing.assert_allclose(b_matrix @ rep.ftran(rhs), rhs, atol=1e-10)

    def test_refactorize_singular_raises(self, kind):
        rep = make_basis(kind, 3)
        singular = np.ones((3, 3))
        with pytest.raises(SingularBasisError):
            rep.refactorize(singular)

    def test_reset_identity(self, kind):
        rep = make_basis(kind, 3)
        random_pivot_sequence(rep, 3, steps=4, seed=6)
        rep.reset_identity()
        x = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(rep.ftran(x), x)

    def test_update_counts(self, kind):
        rep = make_basis(kind, 4)
        random_pivot_sequence(rep, 4, steps=5, seed=7)
        assert rep.updates_since_refactor == 5

    def test_recorder_charged(self, kind):
        from repro.perfmodel.cpu_model import CpuCostModel, CpuCostRecorder
        from repro.perfmodel.presets import CORE2_CPU_PARAMS

        rec = CpuCostRecorder(CpuCostModel(CORE2_CPU_PARAMS))
        rep = make_basis(kind, 4, rec)
        rep.ftran(np.ones(4))
        rep.btran(np.ones(4))
        assert rec.total_seconds > 0
        assert "ftran" in rec.by_op and "btran" in rec.by_op


class TestEquivalence:
    def test_explicit_and_pfi_agree(self, rng):
        """Both representations track the same basis exactly."""
        m = 7
        exp = ExplicitInverseBasis(m)
        pfi = ProductFormBasis(m)
        rng2 = np.random.default_rng(9)
        for _ in range(10):
            col = rng2.normal(size=m)
            a1 = exp.ftran(col)
            a2 = pfi.ftran(col)
            np.testing.assert_allclose(a1, a2, atol=1e-9)
            p = int(np.argmax(np.abs(a1)))
            exp.update(a1, p, 1e-9)
            pfi.update(a2, p, 1e-9)
        probe = rng.normal(size=m)
        np.testing.assert_allclose(exp.ftran(probe), pfi.ftran(probe), atol=1e-8)
        np.testing.assert_allclose(exp.btran(probe), pfi.btran(probe), atol=1e-8)

    def test_pfi_eta_count(self):
        pfi = ProductFormBasis(5)
        random_pivot_sequence(pfi, 5, steps=6, seed=11)
        assert pfi.eta_count == 6
        pfi.refactorize(random_pivot_sequence(ProductFormBasis(5), 5, 0, 0))
        assert pfi.eta_count == 0

    def test_make_basis_unknown(self):
        with pytest.raises(ValueError):
            make_basis("lu-fancy", 3)


@settings(max_examples=25, deadline=None)
@given(m=st.integers(2, 10), steps=st.integers(1, 15), seed=st.integers(0, 2**31))
def test_ftran_btran_adjoint_property(m, steps, seed):
    """<B⁻¹x, y> == <x, B⁻ᵀy> for any x, y."""
    rep = ExplicitInverseBasis(m)
    random_pivot_sequence(rep, m, steps, seed)
    rng = np.random.default_rng(seed ^ 0xFFFF)
    x, y = rng.normal(size=m), rng.normal(size=m)
    lhs = float(rep.ftran(x) @ y)
    rhs = float(x @ rep.btran(y))
    assert lhs == pytest.approx(rhs, rel=1e-6, abs=1e-8)

"""Tests for the workload generators: determinism and guarantees."""

import numpy as np
import pytest

from repro.lp.generators import (
    beale_cycling_lp,
    blending_lp,
    degenerate_lp,
    klee_minty_lp,
    netlib_synth_suite,
    random_dense_lp,
    random_sparse_lp,
    transportation_lp,
)
from repro.lp.problem import ConstraintSense


class TestRandomDense:
    def test_shape_and_kind(self):
        lp = random_dense_lp(10, 20, seed=0)
        assert lp.num_constraints == 10
        assert lp.num_vars == 20
        assert not lp.is_sparse
        assert lp.maximize

    def test_deterministic(self):
        a = random_dense_lp(8, 9, seed=7)
        b = random_dense_lp(8, 9, seed=7)
        np.testing.assert_array_equal(a.a_dense(), b.a_dense())
        np.testing.assert_array_equal(a.c, b.c)
        np.testing.assert_array_equal(a.b, b.b)

    def test_seed_changes_instance(self):
        a = random_dense_lp(8, 9, seed=1)
        b = random_dense_lp(8, 9, seed=2)
        assert not np.array_equal(a.a_dense(), b.a_dense())

    def test_origin_feasible(self):
        lp = random_dense_lp(15, 10, seed=3)
        assert lp.is_feasible(np.zeros(10))

    def test_strictly_positive_coefficients_guarantee_bounded(self):
        lp = random_dense_lp(5, 6, seed=4)
        assert np.all(lp.a_dense() > 0)
        assert np.all(lp.b > 0)

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            random_dense_lp(0, 5)


class TestRandomSparse:
    def test_density_respected(self):
        lp = random_sparse_lp(50, 100, density=0.05, seed=0)
        assert lp.is_sparse
        # per-row entries = max(2, 5); allow the column-coverage extras
        assert lp.a.nnz <= 50 * 5 + 100
        assert lp.a.nnz >= 50 * 5

    def test_every_column_covered(self):
        lp = random_sparse_lp(5, 200, density=0.01, seed=1)
        dense = lp.a_dense()
        assert np.all(np.count_nonzero(dense, axis=0) >= 1)

    def test_origin_feasible(self):
        lp = random_sparse_lp(20, 40, density=0.1, seed=2)
        assert lp.is_feasible(np.zeros(40))

    def test_deterministic(self):
        a = random_sparse_lp(10, 20, 0.2, seed=5)
        b = random_sparse_lp(10, 20, 0.2, seed=5)
        np.testing.assert_array_equal(a.a_dense(), b.a_dense())

    def test_bad_density(self):
        with pytest.raises(ValueError):
            random_sparse_lp(5, 5, density=0.0)
        with pytest.raises(ValueError):
            random_sparse_lp(5, 5, density=1.5)


class TestKleeMinty:
    def test_known_optimum(self):
        """The Klee–Minty cube's optimum is 5^d at (0, ..., 0, 5^d)."""
        for d in (2, 3, 5):
            lp = klee_minty_lp(d)
            x = np.zeros(d)
            x[-1] = 5.0**d
            assert lp.is_feasible(x, tol=1e-6)
            assert lp.objective_value(x) == pytest.approx(5.0**d)

    def test_solvers_find_it(self):
        from repro import solve

        lp = klee_minty_lp(5)
        r = solve(lp, method="revised")
        assert r.objective == pytest.approx(5.0**5)

    def test_dantzig_visits_many_vertices(self):
        """Dantzig pricing needs far more pivots than the dimension."""
        from repro import solve

        d = 8
        r = solve(klee_minty_lp(d), method="revised", pricing="dantzig")
        assert r.iterations.total_iterations > d

    def test_bad_dim(self):
        with pytest.raises(ValueError):
            klee_minty_lp(0)


class TestBeale:
    def test_structure(self):
        lp = beale_cycling_lp()
        assert lp.num_vars == 4
        assert lp.num_constraints == 3

    def test_known_optimum(self):
        from repro import solve

        r = solve(beale_cycling_lp(), method="revised", pricing="bland")
        assert r.status.value == "optimal"
        assert r.objective == pytest.approx(-0.05)


class TestTransportation:
    def test_balanced(self):
        lp = transportation_lp(4, 6, seed=0)
        assert all(s is ConstraintSense.EQ for s in lp.senses)
        supply = lp.b[:4]
        demand = lp.b[4:]
        assert supply.sum() == pytest.approx(demand.sum())

    def test_solvable(self):
        from repro import solve

        r = solve(transportation_lp(3, 4, seed=1), method="revised")
        assert r.status.value == "optimal"

    def test_incidence_structure(self):
        lp = transportation_lp(3, 4, seed=2)
        # every column (route) touches exactly one supply and one demand row
        a = lp.a_dense()
        assert np.all(np.count_nonzero(a, axis=0) == 2)


class TestBlending:
    def test_mix_sums_to_one(self):
        from repro import solve

        lp = blending_lp(8, 5, seed=0)
        r = solve(lp, method="revised")
        assert r.status.value == "optimal"
        assert r.x.sum() == pytest.approx(1.0, abs=1e-6)


class TestDegenerate:
    def test_tied_first_ratios(self):
        lp = degenerate_lp(10, 12, seed=0)
        a, b = lp.a_dense(), lp.b
        ratios = b / a[:, 0]
        assert np.allclose(ratios, ratios[0])

    def test_still_solvable(self):
        from repro import solve

        r = solve(degenerate_lp(10, 12, seed=0), method="revised", pricing="hybrid")
        assert r.status.value == "optimal"


class TestSuite:
    def test_suite_composition(self):
        suite = netlib_synth_suite()
        assert len(suite) >= 8
        names = [lp.name for lp in suite]
        assert len(set(names)) == len(names)  # all distinct
        kinds = {lp.is_sparse for lp in suite}
        assert kinds == {True, False}  # both representations present

    def test_suite_deterministic(self):
        a = netlib_synth_suite(seed=3)
        b = netlib_synth_suite(seed=3)
        for lp1, lp2 in zip(a, b):
            np.testing.assert_array_equal(lp1.c, lp2.c)

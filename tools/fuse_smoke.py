#!/usr/bin/env python
"""Smoke check for the launch-plan layer (``make fuse-smoke``).

Solves the same LPs with ``fusion`` off and on across the GPU backends and
asserts the two contracts the plan layer promises:

- **bit-identity**: in fp64 the fused solve returns exactly the same
  status, objective and solution vector (fused launches replay the captured
  kernel bodies in capture order, so this is byte-for-byte, not approximate);
- **fewer launches**: lowering actually fused something — the fused run's
  kernel-launch count is strictly below the unfused run's.

A final check runs ``precision="mixed"`` (fp32 compute + fp64 iterative
refinement) and asserts the refined objective matches the all-fp64 solve to
near machine precision.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.gpu.device import Device
from repro.lp.generators import random_dense_lp, random_sparse_lp
from repro.perfmodel.presets import GTX280_PARAMS
from repro.solve import solve


def run(lp, method, **kw):
    dev = Device(GTX280_PARAMS)
    dev.record_timeline()
    result = solve(lp, method=method, device=dev, **kw)
    launches = sum(1 for ev in dev.timeline if ev.kind == "kernel")
    return result, launches


def main() -> int:
    cases = [
        ("gpu-revised", random_dense_lp(32, 48, seed=5)),
        ("gpu-tableau", random_dense_lp(16, 24, seed=5)),
        ("gpu-revised-sparse", random_sparse_lp(48, 64, density=0.1, seed=6)),
        ("gpu-pdlp", random_sparse_lp(40, 60, density=0.1, seed=7)),
    ]
    deltas = []
    for method, lp in cases:
        r0, n0 = run(lp, method, dtype=np.float64)
        r1, n1 = run(lp, method, dtype=np.float64, fusion=True)
        assert r0.status == r1.status, (method, r0.status, r1.status)
        assert r0.objective == r1.objective, (method, r0.objective, r1.objective)
        assert np.array_equal(r0.x, r1.x), f"{method}: fused x drifted"
        assert n1 < n0, (method, n0, n1)
        deltas.append(f"{method} {n0}->{n1}")

    lp = random_dense_lp(32, 48, seed=5)
    r64, _ = run(lp, "gpu-revised", dtype=np.float64)
    rmx, _ = run(lp, "gpu-revised", precision="mixed")
    err = abs(rmx.objective - r64.objective) / max(1.0, abs(r64.objective))
    assert err < 1e-8, err

    print("fuse-smoke ok:", ", ".join(deltas), "| mixed relerr %.2e" % err)
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Lint: architectural import rules, enforced as CI failures.

Two rules, one mechanism (an AST walk over the module trees):

**Backend rule.**  Solver backend modules must not import ``repro.trace``,
``repro.metrics`` or ``repro.obs`` at all.  The engine's observer layer
(:mod:`repro.engine.hooks` for trace records and obs spans,
:mod:`repro.engine.lifecycle` for metrics emission) is the *only* place
solver events leave a backend; a direct import would bypass the observer
protocol and reintroduce the per-solver instrumentation clones the engine
refactor removed.

Checked trees: ``src/repro/simplex/*.py`` (CPU methods),
``src/repro/core/*.py`` (GPU methods) and ``src/repro/firstorder/*.py``
(the PDHG backends).

**Launch rule.**  The GPU solver backends must issue device work through
the launch-plan layer — :mod:`repro.gpu.blas`, the shared kernel modules,
or :func:`repro.gpu.plan.emit` for backend-owned kernels — never by
calling ``Device.launch`` directly.  A direct launch would be invisible to
the planner (no capture, no fusion, no plan-level accounting), silently
splitting the execution path the launch-plan refactor unified.

**Serve rule.**  Serving modules (``src/repro/serve/*.py``) may not import
``repro.trace`` or ``repro.obs``, and may touch the metrics (and span)
layer only through the instrumentation façade ``repro.metrics.instrument``
— never the registry internals or the span recorder directly.  The façade's hooks are no-ops when collection is off, which is
what keeps the serving loop zero-cost by default; importing
``repro.metrics`` itself (or the registry/exporters) from serve code would
couple the service to registry internals and dodge that gate.  Note that
``from repro.metrics import instrument`` also trips the rule: the module
imported there is ``repro.metrics``.  Use
``from repro.metrics.instrument import <hook>``.

Both ``import X`` and ``from X import ...`` forms are rejected, at any
nesting depth (the AST walk sees function-local imports too).  Exit
status 0 = clean, 1 = violations (one line each).

Run via ``make lint`` or ``python tools/lint_backend_imports.py``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Module prefixes backends may not import (the observer owns them).
FORBIDDEN = ("repro.trace", "repro.metrics", "repro.obs")

#: Directories holding solver backend modules.
BACKEND_DIRS = ("src/repro/simplex", "src/repro/core", "src/repro/firstorder")

#: Directories holding serving modules (metrics via the façade only).
SERVE_DIRS = ("src/repro/serve",)

#: GPU solver backend modules: all device work goes through the plan layer
#: (repro.gpu.blas / shared kernels / repro.gpu.plan.emit), never
#: Device.launch directly.
GPU_BACKENDS = (
    "src/repro/core/gpu_revised_simplex.py",
    "src/repro/core/gpu_tableau_simplex.py",
    "src/repro/core/gpu_bounded_simplex.py",
    "src/repro/core/gpu_sparse_simplex.py",
    "src/repro/firstorder/gpu.py",
)

#: The one metrics module serve code may import from.
SERVE_ALLOWED = "repro.metrics.instrument"


def _is_forbidden(module: str) -> bool:
    return any(
        module == pfx or module.startswith(pfx + ".") for pfx in FORBIDDEN
    )


def _is_forbidden_for_serve(module: str) -> bool:
    """Serve modules: repro.trace is out entirely; repro.metrics only via
    the repro.metrics.instrument façade."""
    if module == SERVE_ALLOWED or module.startswith(SERVE_ALLOWED + "."):
        return False
    return _is_forbidden(module)


def check_file(path: Path, *, serve: bool = False) -> list[str]:
    """Return one violation message per forbidden import in ``path``."""
    tree = ast.parse(path.read_text(), filename=str(path))
    try:
        shown = path.relative_to(REPO)
    except ValueError:
        shown = path
    forbidden = _is_forbidden_for_serve if serve else _is_forbidden
    role = "serve module" if serve else "backend"
    hint = (
        "import hooks from 'repro.metrics.instrument' instead"
        if serve
        else "use the engine observer hooks instead"
    )
    violations = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if forbidden(alias.name):
                    violations.append(
                        f"{shown}:{node.lineno}: "
                        f"{role} imports {alias.name!r} ({hint})"
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.level == 0 and forbidden(node.module):
                violations.append(
                    f"{shown}:{node.lineno}: "
                    f"{role} imports from {node.module!r} ({hint})"
                )
    return violations


def check_launches(path: Path) -> list[str]:
    """Return one violation per direct ``*.launch(...)`` call in ``path``."""
    tree = ast.parse(path.read_text(), filename=str(path))
    try:
        shown = path.relative_to(REPO)
    except ValueError:
        shown = path
    violations = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "launch"
        ):
            violations.append(
                f"{shown}:{node.lineno}: GPU backend calls Device.launch "
                "directly (emit through repro.gpu.plan.emit or the shared "
                "kernel modules so the planner sees it)"
            )
    return violations


def run() -> list[str]:
    violations: list[str] = []
    for dirname in BACKEND_DIRS:
        for path in sorted((REPO / dirname).glob("*.py")):
            violations.extend(check_file(path))
    for dirname in SERVE_DIRS:
        for path in sorted((REPO / dirname).glob("*.py")):
            violations.extend(check_file(path, serve=True))
    for filename in GPU_BACKENDS:
        violations.extend(check_launches(REPO / filename))
    return violations


def main() -> int:
    violations = run()
    for line in violations:
        print(line)
    if violations:
        print(f"lint: {len(violations)} forbidden import(s)")
        return 1
    n_files = sum(
        len(list((REPO / d).glob("*.py")))
        for d in BACKEND_DIRS + SERVE_DIRS
    )
    print(f"lint: ok ({n_files} modules clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

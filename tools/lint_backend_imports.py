#!/usr/bin/env python
"""Lint: solver backend modules must not import repro.trace / repro.metrics.

The engine's observer layer (:mod:`repro.engine.hooks` for trace records,
:mod:`repro.engine.lifecycle` for metrics emission) is the *only* place
solver events leave a backend.  A backend that imports :mod:`repro.trace`
or :mod:`repro.metrics` directly would bypass the observer protocol and
reintroduce the per-solver instrumentation clones the engine refactor
removed — this lint turns that architectural rule into a CI failure.

Checked trees (the backend modules):

- ``src/repro/simplex/*.py``  — the CPU methods
- ``src/repro/core/*.py``     — the GPU methods

Both ``import repro.trace`` / ``import repro.metrics`` statements and
``from repro.trace import ...`` / ``from repro.metrics import ...`` forms
are rejected, at any nesting depth (the AST walk sees function-local
imports too).  Exit status 0 = clean, 1 = violations (one line each).

Run via ``make lint`` or ``python tools/lint_backend_imports.py``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Module prefixes backends may not import (the observer owns them).
FORBIDDEN = ("repro.trace", "repro.metrics")

#: Directories holding solver backend modules.
BACKEND_DIRS = ("src/repro/simplex", "src/repro/core")


def _is_forbidden(module: str) -> bool:
    return any(
        module == pfx or module.startswith(pfx + ".") for pfx in FORBIDDEN
    )


def check_file(path: Path) -> list[str]:
    """Return one violation message per forbidden import in ``path``."""
    tree = ast.parse(path.read_text(), filename=str(path))
    try:
        shown = path.relative_to(REPO)
    except ValueError:
        shown = path
    violations = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _is_forbidden(alias.name):
                    violations.append(
                        f"{shown}:{node.lineno}: "
                        f"backend imports {alias.name!r} (use the engine "
                        f"observer hooks instead)"
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.level == 0 and _is_forbidden(node.module):
                violations.append(
                    f"{shown}:{node.lineno}: "
                    f"backend imports from {node.module!r} (use the engine "
                    f"observer hooks instead)"
                )
    return violations


def run() -> list[str]:
    violations: list[str] = []
    for dirname in BACKEND_DIRS:
        for path in sorted((REPO / dirname).glob("*.py")):
            violations.extend(check_file(path))
    return violations


def main() -> int:
    violations = run()
    for line in violations:
        print(line)
    if violations:
        print(f"lint: {len(violations)} forbidden backend import(s)")
        return 1
    n_files = sum(len(list((REPO / d).glob('*.py'))) for d in BACKEND_DIRS)
    print(f"lint: ok ({n_files} backend modules clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Regenerate the engine golden fixture (tests/golden/engine_golden.json).

The fixture pins the *exact* behaviour of every registered solve method on a
small seeded problem suite: termination status, objective value, the full
pivot sequence (phase, iteration, entering column, leaving row, event) and
the modeled machine seconds.  Floats are stored in ``float.hex()`` form so
the comparison is bit-level, not approximate.

``tests/test_engine_golden.py`` replays the suite and asserts equality; the
fixture therefore guards any refactor of the solver lifecycle (the
``repro.engine`` layer) against silent behaviour drift.

Run from the repo root::

    PYTHONPATH=src python tools/gen_golden.py

and commit the diff only when a behaviour change is intended.
"""

from __future__ import annotations

import json
import math
import os
import sys

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.lp.generators import degenerate_lp, random_dense_lp, random_sparse_lp
from repro.lp.problem import Bounds, LPProblem
from repro.solve import available_methods, solve

FIXTURE = os.path.join(
    os.path.dirname(__file__), "..", "tests", "golden", "engine_golden.json"
)


def boxed_lp() -> LPProblem:
    """A small boxed problem: finite upper bounds exercise bound flips."""
    rng = np.random.default_rng(42)
    m, n = 6, 9
    a = rng.uniform(0.1, 1.1, size=(m, n))
    b = rng.uniform(n / 2.0, float(n), size=m)
    c = rng.uniform(0.1, 1.1, size=n)
    upper = rng.uniform(0.5, 4.0, size=n)
    return LPProblem(
        c=c, a=a, senses=["<="] * m, b=b,
        bounds=Bounds(np.zeros(n), upper), maximize=True, name="golden-boxed",
    )


def equality_lp() -> LPProblem:
    """Equality rows force phase 1 and the artificial drive-out path."""
    rng = np.random.default_rng(7)
    m, n = 5, 8
    a = rng.uniform(0.1, 1.1, size=(m, n))
    x_feas = rng.uniform(0.2, 1.0, size=n)
    b = a @ x_feas
    c = rng.uniform(0.1, 1.1, size=n)
    senses = ["=", "=", "<=", ">=", "="]
    b = b + np.array([0.0, 0.0, 1.0, -0.5, 0.0])
    return LPProblem(
        c=c, a=a, senses=senses, b=b,
        bounds=Bounds.nonnegative(n), maximize=False, name="golden-equality",
    )


def suite() -> list[LPProblem]:
    return [
        random_dense_lp(8, 12, seed=3, name="golden-dense-8x12"),
        random_dense_lp(14, 10, seed=21, name="golden-dense-14x10"),
        random_sparse_lp(10, 16, density=0.3, seed=11, name="golden-sparse"),
        degenerate_lp(7, 9, seed=5),
        boxed_lp(),
        equality_lp(),
    ]


def hexf(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "nan"
    return value.hex()


def run_one(problem: LPProblem, method: str) -> dict:
    result = solve(problem, method=method, dtype=np.float64, trace=True)
    pivots = []
    if result.trace is not None:
        for rec in result.trace:
            pivots.append(
                [rec.phase, rec.iteration, rec.event, rec.entering, rec.leaving_row]
            )
    cell = {
        "solver": result.solver,
        "status": result.status.value,
        "objective": hexf(result.objective),
        "phase1_iterations": result.iterations.phase1_iterations,
        "phase2_iterations": result.iterations.phase2_iterations,
        "degenerate_steps": result.iterations.degenerate_steps,
        "refactorizations": result.iterations.refactorizations,
        "modeled_seconds": hexf(result.timing.modeled_seconds),
        "pivots": pivots,
    }
    if "kkt_score" in result.extra:
        # first-order cells: pin the terminal KKT residual and the restart
        # count alongside the objective (they have no pivot sequence to pin)
        cell["kkt_residual"] = hexf(result.extra["kkt_score"])
        cell["restarts"] = result.extra["restarts"]
    return cell


def main() -> None:
    fixture: dict = {"problems": {}}
    for problem in suite():
        per_method: dict = {}
        for method in available_methods():
            per_method[method] = run_one(problem, method)
        fixture["problems"][problem.name] = per_method
    os.makedirs(os.path.dirname(FIXTURE), exist_ok=True)
    with open(FIXTURE, "w") as fh:
        json.dump(fixture, fh, indent=1, sort_keys=True)
        fh.write("\n")
    n = len(fixture["problems"]) * len(available_methods())
    print(f"wrote {FIXTURE}: {n} (problem, method) cells")


if __name__ == "__main__":
    main()

"""Setup shim: enables `pip install -e . --no-use-pep517` on hosts without
the `wheel` package (offline environments)."""

from setuptools import setup

setup()

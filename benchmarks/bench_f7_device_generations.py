"""F7 — the solver across G80 / GT200 / Tesla C1060 device models."""

from repro.bench.experiments import f7_device_generations


def test_f7_device_generations(benchmark, sweep_sizes):
    sizes = tuple(s for s in sweep_sizes if 128 <= s <= 384)
    report = benchmark.pedantic(
        f7_device_generations, kwargs={"sizes": sizes}, rounds=1, iterations=1
    )
    print()
    print(report.render())
    table = report.tables[0]
    ratio = table.column("GT200/G80")
    # GT200 beats G80 at every size (bandwidth + PCIe gen), but by less than
    # the raw 1.6x bandwidth ratio (launch overhead is generation-invariant)
    assert all(1.0 < r < 1.7 for r in ratio)

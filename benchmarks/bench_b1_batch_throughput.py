"""B1 — batched-LP throughput vs batch size (reconstructed; beyond-paper).

Batched vs looped solo solving of many small dense LPs on the shared
simulated device, after Gurung & Ray (arXiv:1802.08557, arXiv:1609.08114).
"""

import pytest

from repro.bench.experiments import b1_batch_throughput


@pytest.mark.batch
def test_b1_batch_throughput(benchmark, batch_sizes):
    report = benchmark.pedantic(
        b1_batch_throughput, kwargs={"batch_sizes": batch_sizes},
        rounds=1, iterations=1,
    )
    print()
    print(report.render())
    table = report.tables[0]
    seq_ms = table.column("batch seq ms")
    conc_ms = table.column("batch conc ms")
    solo_ms = table.column("solo loop ms")
    conc_lps = table.column("conc LPs/s")
    # stream interleaving strictly beats back-to-back execution at every
    # batch size, and the batch beats the solo loop (context amortization)
    assert all(c < s for c, s in zip(conc_ms, seq_ms))
    assert all(s < o for s, o in zip(seq_ms, solo_ms))
    # throughput grows with batch size: the fixed costs amortize and the
    # device fills up
    assert conc_lps[-1] > conc_lps[0]

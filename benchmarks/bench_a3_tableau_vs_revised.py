"""A3 — GPU tableau simplex vs GPU revised simplex."""

from repro.bench.experiments import a3_tableau_vs_revised


def test_a3_tableau_vs_revised(benchmark, sweep_sizes):
    sizes = tuple(s for s in sweep_sizes if s <= 384)
    report = benchmark.pedantic(
        a3_tableau_vs_revised, kwargs={"sizes": sizes}, rounds=1, iterations=1
    )
    print()
    print(report.render())
    table = report.tables[0]
    rows = list(zip(table.column("instance"), table.column("method"),
                    table.column("status"), table.column("us/iter")))
    assert all(status == "optimal" for _i, _m, status, _ in rows)
    # Finding (matches the follow-up literature on GT200-class hardware):
    # at these sizes BOTH formulations are launch/latency-bound (~0.2 ms
    # per-iteration floor), so the tableau's few large perfectly-parallel
    # kernels are competitive with revised's many small BLAS-2 launches.
    per_iter = [us for *_x, us in rows]
    assert all(50.0 < us < 2000.0 for us in per_iter)
    # The revised method's structural advantage is *memory traffic*: on the
    # sparse wide instance it must move far fewer bytes per iteration.
    bytes_per_iter = report.extra_traffic  # {method: bytes/iter} on sparse
    assert bytes_per_iter["gpu-revised"] < 0.7 * bytes_per_iter["gpu-tableau"]

"""F5 — PCIe transfer time as a fraction of GPU solve time."""

from repro.bench.experiments import f5_transfer_overhead


def test_f5_transfer_overhead(benchmark, sweep_sizes):
    report = benchmark.pedantic(
        f5_transfer_overhead, kwargs={"sizes": sweep_sizes}, rounds=1, iterations=1
    )
    print()
    print(report.render())
    table = report.tables[0]
    pct = table.column("transfer %")
    # transfers matter at every size but never dominate completely, and the
    # one-time upload amortises: fraction shrinks as solves grow
    assert all(0.0 < p < 80.0 for p in pct)
    assert pct[-1] < pct[0]

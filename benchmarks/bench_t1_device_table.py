"""T1 — device characteristics table (paper's hardware overview)."""

from repro.bench.experiments import t1_device_table


def test_t1_device_table(benchmark):
    report = benchmark.pedantic(t1_device_table, rounds=1, iterations=1)
    print()
    print(report.render())
    names = report.tables[0].column("device")
    assert "GeForce GTX 280" in names

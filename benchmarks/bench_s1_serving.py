"""S1 — serving-layer fleet scaling (reconstructed; beyond-paper).

Replays the canonical 32-LP mixed-priority arrival trace through
``repro.serve`` fleets of 1/2/4 simulated devices and checks the serving
acceptance properties: the 4-device fleet beats the 1-device sequential
baseline in modeled makespan, and perturbed resubmissions produce
warm-start cache hits.
"""

import pytest

from repro.bench.experiments import s1_serving_fleet


@pytest.mark.batch
def test_s1_serving_fleet(benchmark):
    report = benchmark.pedantic(s1_serving_fleet, rounds=1, iterations=1)
    print()
    print(report.render())
    table = report.tables[0]
    rows = dict(zip(table.column("fleet"), zip(
        table.column("span ms"),
        table.column("cache hits"),
        table.column("served"),
    )))
    seq_span, _, seq_served = rows["1 dev, sequential"]
    fleet_span, fleet_hits, fleet_served = rows["4 dev x4 streams"]
    # every configuration serves the whole trace
    assert seq_served == fleet_served
    # the 4-device fleet beats the 1-device sequential baseline in
    # modeled makespan
    assert fleet_span < seq_span
    # perturbed resubmissions share fingerprints with their originals, so
    # the warm-start cache must land hits
    assert fleet_hits >= 1
    # tail latency improves with the fleet too
    p99 = dict(zip(table.column("fleet"), table.column("p99 ms")))
    assert p99["4 dev x4 streams"] < p99["1 dev, sequential"]

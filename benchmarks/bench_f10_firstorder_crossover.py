"""F10 — simplex vs first-order (PDLP) modeled-time crossover."""

import pytest

from repro.bench.experiments import f10_firstorder_crossover


@pytest.fixture(scope="session")
def f10_sizes(request) -> tuple[int, ...]:
    if request.config.getoption("--full-sweep"):
        return (128, 192, 256, 320, 384, 512)
    return (128, 192, 256, 320)


def test_f10_firstorder_crossover(benchmark, f10_sizes):
    report = benchmark.pedantic(
        f10_firstorder_crossover, kwargs={"sizes": f10_sizes},
        rounds=1, iterations=1,
    )
    print()
    print(report.render())
    table = report.tables[0]
    statuses = table.column("status")
    assert all(s == "optimal" for s in statuses)
    assert all(table.column("objectives agree"))
    # both regimes appear inside the sweep: simplex wins the smallest
    # size, the first-order method wins the largest
    ratios = [r for r in table.column("speedup (simplex/pdlp)") if r != ""]
    assert ratios[0] < 1.0
    assert ratios[-1] > 1.0

"""A1 — pricing-rule ablation (Dantzig / Bland / hybrid / Devex / steepest)."""

from repro.bench.experiments import a1_pricing


def test_a1_pricing(benchmark):
    report = benchmark.pedantic(a1_pricing, rounds=1, iterations=1)
    print()
    print(report.render())
    table = report.tables[0]
    rows = list(zip(table.column("instance"), table.column("rule"),
                    table.column("solver"), table.column("status"),
                    table.column("iters")))
    # every configuration terminates successfully on these instances
    # (including Bland on the GPU in fp32, which requires the solver's
    # basic-variable-index ratio tie-break for its anti-cycling guarantee)
    assert all(status == "optimal" for *_s, status, _ in rows)
    # Bland needs at least as many iterations as Dantzig on Klee-Minty
    km = {rule: iters for inst, rule, solver, _st, iters in rows
          if inst == "klee-minty-10" and solver == "revised"}
    assert km["bland"] >= km["dantzig"] or km["dantzig"] > 100

"""A6 — warm re-optimisation after rhs changes (dual simplex workflow)."""

from repro.bench.experiments import a6_reoptimisation


def test_a6_reoptimisation(benchmark):
    report = benchmark.pedantic(a6_reoptimisation, rounds=1, iterations=1)
    print()
    print(report.render())
    table = report.tables[0]
    assert all(table.column("all agree"))
    cold = sum(table.column("cold primal iters"))
    dual = sum(table.column("warm dual iters"))
    # the dual warm start beats cold re-solves in total pivots; the primal
    # warm start cannot help (the old basis is primal infeasible after an
    # rhs change, so it falls back to a cold start — that is the point)
    assert dual < cold

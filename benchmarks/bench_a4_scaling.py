"""A4 — geometric-mean scaling ablation on badly-conditioned instances."""

from repro.bench.experiments import a4_scaling


def test_a4_scaling(benchmark):
    report = benchmark.pedantic(a4_scaling, rounds=1, iterations=1)
    print()
    print(report.render())
    table = report.tables[0]
    rows = list(zip(table.column("spread"), table.column("scale"),
                    table.column("status"), table.column("obj relerr vs oracle")))
    # scaled solves stay accurate at every spread
    scaled_errs = [e for _s, sc, st, e in rows if sc and st == "optimal"]
    assert scaled_errs and all(e < 1e-4 for e in scaled_errs)
    # the worst-spread unscaled fp32 solve is measurably less accurate
    worst_unscaled = max(e for _s, sc, _st, e in rows if not sc if e == e)
    best_scaled = max(scaled_errs)
    assert worst_unscaled > 10 * best_scaled

"""A2 — basis-update ablation: explicit inverse vs product form."""

from repro.bench.experiments import a2_basis_update


def test_a2_basis_update(benchmark, breakdown_size):
    report = benchmark.pedantic(
        a2_basis_update, kwargs={"size": breakdown_size}, rounds=1, iterations=1
    )
    print()
    print(report.render())
    table = report.tables[0]
    assert all(s == "optimal" for s in table.column("status"))
    # same pivot path regardless of representation
    iters = set(table.column("iters"))
    assert len(iters) == 1

"""F6 — sparse random LPs: the revised method's sparse-pricing advantage."""

from repro.bench.experiments import f6_sparse


def test_f6_sparse(benchmark, sweep_sizes):
    sizes = tuple(s for s in sweep_sizes if 128 <= s <= 512)
    report = benchmark.pedantic(
        f6_sparse, kwargs={"sizes": sizes}, rounds=1, iterations=1
    )
    print()
    print(report.render())
    table = report.tables[0]
    nnz = table.column("nnz")
    size = table.column("size")
    # the instances really are sparse
    for s, z in zip(size, nnz):
        assert z < 0.2 * s * s
    # both machines produce times; speedup series is finite
    assert all(s > 0 for s in table.column("speedup"))

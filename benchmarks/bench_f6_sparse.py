"""F6 — sparse LPs: dense vs sparse revised backends, and the crossover."""

from repro.bench.experiments import f6_sparse


def test_f6_sparse(benchmark, sweep_sizes):
    sizes = tuple(s for s in sweep_sizes if 128 <= s <= 512)
    report = benchmark.pedantic(
        f6_sparse, kwargs={"sizes": sizes}, rounds=1, iterations=1
    )
    print()
    print(report.render())
    table = report.tables[0]
    nnz = table.column("nnz")
    size = table.column("size")
    # the instances really are sparse
    for s, z in zip(size, nnz):
        assert z < 0.2 * s * s
    # both machines produce times; speedup series is finite
    assert all(s > 0 for s in table.column("speedup"))
    # the sparse CPU backend prices sections of CSC columns instead of the
    # whole matrix: it must beat the dense CPU comparator on every instance
    for dense_ms, sparse_ms in zip(table.column("cpu ms"), table.column("cpu-sp ms")):
        assert sparse_ms < dense_ms
    # dense-vs-sparse GPU crossover on banded instances (density ≲3%):
    # beyond m ≈ 500 the sparse backend's nnz-proportional basis solves beat
    # the dense backend's m² kernels
    crossover = report.tables[1]
    for band_size, speedup in zip(
        crossover.column("band size"), crossover.column("sparse speedup")
    ):
        if band_size >= 500:
            assert speedup > 1.0, (band_size, speedup)

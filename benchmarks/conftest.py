"""Shared configuration for the benchmark suite.

Each ``bench_*`` module regenerates one table/figure of the paper's
evaluation.  The pytest-benchmark fixture measures this host's wall time for
the regeneration (useful for tracking the harness itself); the *scientific*
numbers — modeled GPU/CPU machine times — are printed as the experiment's
report, mirroring how the paper presents them.

Benchmark sizes are reduced relative to EXPERIMENTS.md's recorded full runs
so that ``pytest benchmarks/ --benchmark-only`` completes in minutes; pass
``--full-sweep`` for the paper-scale sizes.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--full-sweep",
        action="store_true",
        default=False,
        help="run the paper-scale problem sizes instead of the quick ones",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "batch: batched multi-LP experiments (select with -k batch or -m batch)",
    )


@pytest.fixture(scope="session")
def sweep_sizes(request) -> tuple[int, ...]:
    if request.config.getoption("--full-sweep"):
        return (64, 128, 256, 384, 512, 768)
    return (64, 128, 256, 384)


@pytest.fixture(scope="session")
def breakdown_size(request) -> int:
    return 512 if request.config.getoption("--full-sweep") else 256


@pytest.fixture(scope="session")
def batch_sizes(request) -> tuple[int, ...]:
    """Batch sizes for the B1 batched-LP throughput experiment."""
    if request.config.getoption("--full-sweep"):
        return (2, 4, 8, 16, 32, 64)
    return (2, 4, 8, 16)

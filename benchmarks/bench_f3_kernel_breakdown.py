"""F3 — per-iteration GPU kernel/phase time breakdown."""

from repro.bench.experiments import f3_kernel_breakdown


def test_f3_kernel_breakdown(benchmark, breakdown_size):
    report = benchmark.pedantic(
        f3_kernel_breakdown, kwargs={"size": breakdown_size}, rounds=1, iterations=1
    )
    print()
    print(report.render())
    phases = report.tables[0]
    fracs = dict(zip(phases.column("phase"), phases.column("% of total")))
    # pricing (the two GEMVs over the full matrix) dominates the iteration,
    # as in the paper's revised simplex profile
    assert fracs["pricing"] == max(fracs.values())
    assert abs(sum(fracs.values()) - 100.0) < 20.0  # phases cover the solve

"""A5 — bounded-variable simplex vs the bounds-as-rows encoding."""

from repro.bench.experiments import a5_bounded_variables


def test_a5_bounded_variables(benchmark):
    report = benchmark.pedantic(a5_bounded_variables, rounds=1, iterations=1)
    print()
    print(report.render())
    table = report.tables[0]
    assert all(table.column("objectives agree"))
    rows = list(zip(table.column("size"), table.column("method"),
                    table.column("basis m"), table.column("ms")))
    for size in sorted({s for s, *_r in rows}):
        by = {m: (bm, ms) for s, m, bm, ms in rows if s == size}
        basis_rows, t_rows = by["revised (rows)"]
        basis_bnd, t_bnd = by["revised-bounded"]
        # native bounds halve the basis and win decisively on modeled time
        assert basis_bnd == size and basis_rows == 2 * size
        assert t_bnd < t_rows

"""O1 — modeled-time attribution of served traffic (reconstructed;
beyond-paper).

Replays the canonical 32-LP arrival trace through 1/2/4-device fleets
with the ``repro.obs`` span recorder on and checks the attribution
acceptance properties: the six buckets cover each fleet's total latency
exactly, queue-wait share shrinks as devices are added, and the
per-size sweep shows launch overhead's share falling with problem size
(the ROADMAP item 4 calibration).
"""

import pytest

from repro.bench.experiments import o1_attribution


@pytest.mark.batch
def test_o1_attribution(benchmark):
    report = benchmark.pedantic(o1_attribution, rounds=1, iterations=1)
    print()
    print(report.render())
    fleet = report.tables[0]
    shares = dict(zip(fleet.column("fleet"), zip(
        fleet.column("queue %"),
        fleet.column("placement %"),
        fleet.column("transfer %"),
        fleet.column("launch %"),
        fleet.column("refactor %"),
        fleet.column("compute %"),
    )))
    for name, parts in shares.items():
        # the six buckets cover the fleet's latency exactly
        assert sum(parts) == pytest.approx(100.0, abs=1e-6), (name, parts)
    # adding devices drains the queue: queue-wait share strictly shrinks
    queue = {name: parts[0] for name, parts in shares.items()}
    assert queue["4 dev x4 streams"] < queue["1 dev x4 streams"]
    # the size sweep: launch overhead's share falls as per-kernel work grows
    sweep = report.tables[1]
    launch = sweep.column("launch %")
    assert launch[-1] < launch[0]
    # the fusion sweep: plan lowering cuts the launch count and its share
    # at every size, and at the smallest size (where launch overhead bites
    # hardest) the share drops from ~41% to a quarter or less
    fused = report.tables[2]
    for unf, fus in zip(fused.column("launch % unfused"),
                        fused.column("launch % fused")):
        assert fus < unf
    for k_unf, k_fus in zip(fused.column("kernels"),
                            fused.column("kernels fused")):
        assert k_fus < k_unf
    assert fused.column("launch % fused")[0] <= 25.0

"""F4 — single, double and mixed precision on the GPU: time and accuracy."""

from repro.bench.experiments import f4_precision


def test_f4_precision(benchmark, sweep_sizes):
    sizes = tuple(s for s in sweep_sizes if s <= 512)
    report = benchmark.pedantic(
        f4_precision, kwargs={"sizes": sizes}, rounds=1, iterations=1
    )
    print()
    print(report.render())
    table = report.tables[0]
    ratio = table.column("fp64/fp32")
    err = table.column("fp32 relerr vs oracle")
    # fp64 always costs more, but far less than the 12x FLOP-rate gap
    # (BLAS-2 kernels are bandwidth-bound)
    assert all(1.0 < r < 6.0 for r in ratio)
    # fp32 still reaches the optimum to engineering accuracy
    assert all(e < 1e-2 for e in err)
    # mixed precision: fp32 pivot speed, fp64-grade answers after at most
    # three refinement steps
    mixed = report.tables[1]
    assert all(r < 1.0 for r in mixed.column("mixed/fp64"))
    assert all(e < 1e-8 for e in mixed.column("mixed relerr vs fp64"))
    assert all(s <= 3 for s in mixed.column("refine steps"))

"""T3 — iteration counts and per-iteration time vs size."""

from repro.bench.experiments import t3_iterations


def test_t3_iterations(benchmark, sweep_sizes):
    report = benchmark.pedantic(
        t3_iterations, kwargs={"sizes": sweep_sizes}, rounds=1, iterations=1
    )
    print()
    print(report.render())
    table = report.tables[0]
    # both machines run the same algorithm: identical (or near-identical
    # under fp32 round-off) pivot counts, always-agreeing objectives
    assert all(table.column("objectives agree"))
    it_cpu = table.column("iters cpu")
    it_gpu = table.column("iters gpu")
    for a, b in zip(it_cpu, it_gpu):
        assert abs(a - b) <= 0.2 * max(a, b)

"""F1 — solve time vs problem size, CPU vs GPU (the headline figure)."""

from repro.bench.experiments import f1_time_vs_size


def test_f1_time_vs_size(benchmark, sweep_sizes):
    report = benchmark.pedantic(
        f1_time_vs_size, kwargs={"sizes": sweep_sizes}, rounds=1, iterations=1
    )
    print()
    print(report.render())
    table = report.tables[0]
    gpu_ms = table.column("gpu ms")
    cpu_ms = table.column("cpu ms")
    # paper shape: CPU wins the smallest size, GPU wins the largest
    assert cpu_ms[0] < gpu_ms[0]
    assert gpu_ms[-1] < cpu_ms[-1]
    # both grow with size
    assert gpu_ms[-1] > gpu_ms[0]
    assert cpu_ms[-1] > cpu_ms[0]

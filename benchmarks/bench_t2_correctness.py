"""T2 — correctness of every solver on the synthetic NETLIB-like suite."""

from repro.bench.experiments import t2_correctness


def test_t2_correctness(benchmark):
    report = benchmark.pedantic(t2_correctness, rounds=1, iterations=1)
    print()
    print(report.render())
    # the report's worst-case relative error note must certify agreement
    worst_note = [n for n in report.notes if "worst relative" in n][0]
    worst = float(worst_note.rsplit(" ", 1)[1])
    assert worst < 1e-4

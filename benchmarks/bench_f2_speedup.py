"""F2 — GPU speedup vs problem size and the CPU/GPU crossover point."""

from repro.bench.experiments import f2_speedup


def test_f2_speedup(benchmark, sweep_sizes):
    report = benchmark.pedantic(
        f2_speedup, kwargs={"sizes": sweep_sizes}, rounds=1, iterations=1
    )
    print()
    print(report.render())
    speedups = report.tables[0].column("speedup")
    # paper shape: below 1 at small sizes, above 1 at the largest
    assert speedups[0] < 1.0
    assert speedups[-1] > 1.0
    # a crossover was found inside the sweep
    assert any("crossover" in n and "≈" in n for n in report.notes)

"""F8 — B⁻¹ fill-in over iterations (why the paper stores B⁻¹ dense)."""

from repro.bench.experiments import f8_binv_fill


def test_f8_binv_fill(benchmark, breakdown_size):
    report = benchmark.pedantic(
        f8_binv_fill, kwargs={"size": breakdown_size}, rounds=1, iterations=1
    )
    print()
    print(report.render())
    fill = report.tables[0].column("B⁻¹ fill %")
    assert len(fill) >= 3
    # fill grows by an order of magnitude from the near-identity start and
    # ends far above any density where sparse storage pays
    assert fill[-1] > 10.0
    assert fill[-1] > 5 * fill[0]

"""Minimum-cost network flow as a sparse LP (the revised method's home turf).

Builds a random directed network with networkx, formulates min-cost flow as
an LP (flow conservation = equality rows → two-phase simplex; arc capacities
= upper bounds), and solves it with the sparse GPU revised simplex.  The
constraint matrix is a node-arc incidence matrix — ~2 nonzeros per column —
so the GPU solver's CSC pricing path does O(nnz) work per iteration.

The LP optimum is cross-checked against networkx's own combinatorial
``min_cost_flow`` solver (an entirely independent algorithm).

Run:  python examples/network_flow.py
"""

import numpy as np

try:
    import networkx as nx
except ImportError:  # pragma: no cover
    raise SystemExit("this example needs networkx (pip install networkx)")

from repro import LPProblem, solve
from repro.lp.problem import Bounds, ConstraintSense
from repro.sparse import CooMatrix


def build_network(n_nodes: int = 40, seed: int = 3):
    """A random connected digraph with integer capacities/costs and one
    source/sink demand pair sized to be feasible."""
    rng = np.random.default_rng(seed)
    graph = nx.gnp_random_graph(n_nodes, 0.15, seed=seed, directed=True)
    # ensure a backbone path so (source, sink) is always connected
    nodes = list(graph.nodes())
    for u, v in zip(nodes, nodes[1:]):
        graph.add_edge(u, v)
    for u, v in graph.edges():
        graph[u][v]["capacity"] = int(rng.integers(4, 20))
        graph[u][v]["weight"] = int(rng.integers(1, 12))
    source, sink = nodes[0], nodes[-1]
    demand = 8
    graph.nodes[source]["demand"] = -demand
    graph.nodes[sink]["demand"] = demand
    return graph, source, sink, demand


def flow_lp(graph) -> LPProblem:
    """Min-cost flow as  min cᵀf  s.t.  N f = demand,  0 <= f <= cap."""
    arcs = list(graph.edges())
    nodes = list(graph.nodes())
    node_index = {v: i for i, v in enumerate(nodes)}
    rows, cols, vals = [], [], []
    for j, (u, v) in enumerate(arcs):
        rows += [node_index[u], node_index[v]]
        cols += [j, j]
        vals += [1.0, -1.0]  # out of u, into v
    incidence = CooMatrix((len(nodes), len(arcs)), rows, cols, vals).tocsc()
    b = np.array([-float(graph.nodes[v].get("demand", 0)) for v in nodes])
    cost = np.array([float(graph[u][v]["weight"]) for u, v in arcs])
    cap = np.array([float(graph[u][v]["capacity"]) for u, v in arcs])
    return LPProblem(
        c=cost,
        a=incidence,
        senses=[ConstraintSense.EQ] * len(nodes),
        b=-b,  # N f = demand with our sign convention
        bounds=Bounds(np.zeros(len(arcs)), cap),
        maximize=False,
        name="min-cost-flow",
    )


def main() -> None:
    graph, source, sink, demand = build_network()
    lp = flow_lp(graph)
    nnz = lp.a.nnz
    cells = lp.num_constraints * lp.num_vars
    print(f"network: {graph.number_of_nodes()} nodes, {graph.number_of_edges()} arcs, "
          f"shipping {demand} units {source} -> {sink}")
    print(f"LP: {lp.num_constraints} equality rows x {lp.num_vars} arc variables, "
          f"{nnz} nonzeros ({100 * nnz / cells:.1f}% dense)")

    result = solve(lp, method="gpu-revised", dtype=np.float64, pricing="hybrid")
    assert result.is_optimal, result.status
    print(f"\nGPU revised simplex: cost = {result.objective:.1f} "
          f"({result.iterations.phase1_iterations} phase-1 + "
          f"{result.iterations.phase2_iterations} phase-2 pivots)")

    # independent check: networkx's combinatorial min-cost-flow
    flow_dict = nx.min_cost_flow(graph)
    nx_cost = sum(
        flow_dict[u][v] * graph[u][v]["weight"]
        for u in flow_dict for v in flow_dict[u]
    )
    print(f"networkx min_cost_flow:  cost = {nx_cost:.1f}")
    assert abs(result.objective - nx_cost) < 1e-6 * (1 + abs(nx_cost)), (
        "LP and combinatorial solvers disagree!"
    )
    print("LP optimum matches the combinatorial solver exactly.")

    used = [(u, v, f) for u, d in flow_dict.items() for v, f in d.items() if f > 0]
    print(f"\n{len(used)} arcs carry flow; busiest:")
    for u, v, f in sorted(used, key=lambda t: -t[2])[:6]:
        print(f"  {u:>3} -> {v:<3} flow {f}")


if __name__ == "__main__":
    main()

"""Precision study: fp32 vs fp64 GPU solves across problem sizes (fig. F4).

GT200 executes double precision at roughly 1/12 the single-precision rate,
so the paper's solver runs in fp32.  This script quantifies what that costs
in accuracy (objective error vs an fp64 reference and primal residuals) and
what fp64 costs in time — and shows why the gap is far below 12x for this
solver (its kernels are bandwidth-, not FLOP-bound).

Run:  python examples/precision_study.py
"""

import numpy as np

from repro import solve
from repro.lp.generators import random_dense_lp


def main() -> None:
    print(f"{'size':>6} {'fp32 ms':>9} {'fp64 ms':>9} {'slowdown':>9} "
          f"{'obj relerr':>11} {'fp32 resid':>11} {'iters 32/64':>12}")
    for size in (64, 128, 256, 384):
        lp = random_dense_lp(size, size, seed=11)
        r32 = solve(lp, method="gpu-revised", dtype=np.float32)
        r64 = solve(lp, method="gpu-revised", dtype=np.float64)
        assert r32.is_optimal and r64.is_optimal
        err = abs(r32.objective - r64.objective) / abs(r64.objective)
        t32 = r32.timing.modeled_seconds * 1e3
        t64 = r64.timing.modeled_seconds * 1e3
        print(f"{size:>6} {t32:>9.2f} {t64:>9.2f} {t64 / t32:>9.2f} "
              f"{err:>11.2e} {r32.residuals['primal_infeasibility']:>11.2e} "
              f"{r32.iterations.total_iterations:>5}/{r64.iterations.total_iterations}")

    print()
    print("fp64 costs ~1.5-3x (bytes double, launches constant), nowhere")
    print("near the 12x FLOP-rate ratio: the revised simplex iteration is")
    print("bandwidth-bound. fp32 objectives agree to ~1e-5 relative — the")
    print("paper's choice of single precision is sound for these LPs.")


if __name__ == "__main__":
    main()

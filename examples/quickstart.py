"""Quickstart: define a small LP and solve it with every method.

The problem (a classic from LP textbooks)::

    maximise  3x + 5y
    s.t.      x        <= 4
                  2y   <= 12
              3x + 2y  <= 18
              x, y >= 0

has its optimum 36 at (x, y) = (2, 6).

Run:  python examples/quickstart.py
"""

from repro import LPProblem, available_methods, solve


def main() -> None:
    lp = LPProblem.maximize_problem(
        c=[3.0, 5.0],
        a_ub=[[1.0, 0.0], [0.0, 2.0], [3.0, 2.0]],
        b_ub=[4.0, 12.0, 18.0],
        name="quickstart",
    )

    print(f"problem: {lp}")
    print()
    for method in available_methods():
        result = solve(lp, method=method)
        assert result.is_optimal, result.status
        x = ", ".join(f"{v:.3f}" for v in result.x)
        print(
            f"{method:12s} objective={result.objective:8.3f}  x=({x})  "
            f"iterations={result.iterations.total_iterations:3d}  "
            f"modeled={result.timing.modeled_seconds * 1e6:8.1f} us"
        )

    print()
    print("The GPU methods report *modeled* GTX 280 device time; the CPU")
    print("methods report modeled 2009-era sequential CPU time. Pivot")
    print("sequences are identical across machines at equal precision.")


if __name__ == "__main__":
    main()

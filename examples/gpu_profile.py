"""Device exploration: one LP, three generations of modeled GPUs.

Solves the same dense LP on the GeForce 8800 GTX (G80, 2006), the paper's
GeForce GTX 280 (GT200, 2008) and the Tesla C1060 (GT200 HPC), printing each
device's clock, per-kernel profile and transfer statistics — the kind of
study the paper's hardware section implies.

Run:  python examples/gpu_profile.py
"""

import numpy as np

from repro.core.gpu_revised_simplex import GpuRevisedSimplex
from repro.lp.generators import random_dense_lp
from repro.perfmodel.presets import (
    GTX280_PARAMS,
    GTX8800_PARAMS,
    TESLA_C1060_PARAMS,
)
from repro.simplex.options import SolverOptions


def main() -> None:
    lp = random_dense_lp(384, 384, seed=42)
    print(f"instance: {lp}\n")

    baseline_ms = None
    for params in (GTX8800_PARAMS, GTX280_PARAMS, TESLA_C1060_PARAMS):
        solver = GpuRevisedSimplex(
            SolverOptions(dtype=np.float32, pricing="dantzig"),
            gpu_params=params,
        )
        result = solver.solve(lp)
        assert result.is_optimal
        dev = solver.device
        ms = result.timing.modeled_seconds * 1e3
        if baseline_ms is None:
            baseline_ms = ms
        print(f"=== {params.name} ===")
        print(f"  solve time      : {ms:8.2f} ms  "
              f"({baseline_ms / ms:.2f}x vs {GTX8800_PARAMS.name})")
        print(f"  pivots          : {result.iterations.total_iterations}")
        print(f"  kernel launches : {dev.stats.kernel_launches}")
        print(f"  PCIe traffic    : {dev.stats.htod_bytes / 1024**2:6.2f} MiB up, "
              f"{dev.stats.dtoh_bytes / 1024:6.1f} KiB down "
              f"({result.timing.transfer_seconds * 1e3:.2f} ms)")
        print(f"  peak device mem : {result.extra['peak_device_bytes'] / 1024**2:.1f} MiB "
              f"of {params.global_mem_bytes / 1024**2:.0f} MiB")
        print("  top kernels:")
        by_kernel = dev.stats.kernel_breakdown()
        total = sum(by_kernel.values())
        for name, seconds in sorted(by_kernel.items(), key=lambda kv: -kv[1])[:5]:
            print(f"    {name:22s} {seconds * 1e3:8.3f} ms  ({100 * seconds / total:4.1f}%)")
        print()

    print("Reading the profile: pricing GEMVs dominate; the GT200's ~1.6x")
    print("bandwidth advantage over G80 shows directly in the totals, and")
    print("the C1060's lower memory clock costs it a little back.")


if __name__ == "__main__":
    main()

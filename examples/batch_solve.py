"""Batched solving: a pricing service answering many small LPs at once.

An ad exchange reprices thousands of tiny allocation LPs per second; a
retailer re-plans one model per store every morning.  Solving each LP on its
own GPU context wastes most of the machine — one 64-row simplex kernel
occupies a fraction of a percent of the device.  The batch layer shares one
simulated device across the workload and, under the concurrent schedule,
interleaves the per-LP kernel launch streams the way the batched-LP papers
(arXiv:1802.08557, arXiv:1609.08114) overlap many small solves.

The script solves the same workload three ways — a loop of solo solves, a
sequential batch, a concurrent batch — and then runs a warm-started chain of
perturbed scenarios.  Per-LP answers are identical in all cases; only the
aggregate machine time changes.

Run:  python examples/batch_solve.py
"""

import numpy as np

from repro import solve, solve_batch, solve_batch_chain
from repro.batch import DEFAULT_CONTEXT_SETUP_SECONDS
from repro.lp.generators import random_dense_lp
from repro.lp.problem import LPProblem


def main() -> None:
    workload = [random_dense_lp(48, 72, seed=100 + i) for i in range(12)]

    # -- one LP at a time: every request pays context setup ---------------
    solo_model = sum(
        solve(p, method="gpu-revised").timing.modeled_seconds
        + DEFAULT_CONTEXT_SETUP_SECONDS
        for p in workload
    )

    # -- the same workload as one batch -----------------------------------
    seq = solve_batch(workload, method="gpu-revised", schedule="sequential")
    conc = solve_batch(workload, method="gpu-revised", schedule="concurrent")
    assert seq.all_optimal and conc.all_optimal

    # batching never changes the answers, only the aggregate time
    for a, b in zip(seq.items, conc.items):
        assert a.result.objective == b.result.objective

    print(f"workload: {len(workload)} dense 48x72 LPs, gpu-revised\n")
    print(f"{'strategy':>22} {'machine ms':>12} {'LPs/s':>10}")
    rows = [
        ("solo loop", solo_model, len(workload) / solo_model),
        ("batch sequential", seq.modeled_seconds, seq.throughput_lps),
        ("batch concurrent", conc.modeled_seconds, conc.throughput_lps),
    ]
    for label, seconds, lps in rows:
        print(f"{label:>22} {seconds * 1e3:>12.2f} {lps:>10.1f}")
    print(
        f"\nconcurrent schedule: {conc.outcome.n_streams} streams, "
        f"{conc.speedup_vs_sequential:.2f}x over sequential, "
        f"binding resource: {conc.outcome.binding_resource}"
    )

    # -- re-optimization stream: drifting prices, warm-started chain ------
    # Cost perturbations keep the previous basis primal feasible, so the
    # warm primal chain resumes right next to the new optimum (rhs changes
    # would call for the dual simplex instead; see examples/reoptimization).
    rng = np.random.default_rng(7)
    base = workload[0]
    scenarios = [base]
    for s in range(7):
        scenarios.append(
            LPProblem(
                c=base.c * rng.uniform(0.95, 1.05, base.num_vars),
                a=base.a_dense(), senses=base.senses, b=base.b,
                bounds=base.bounds, maximize=base.maximize,
                name=f"scenario-{s}",
            )
        )
    chain = solve_batch_chain(scenarios, method="revised")
    cold = solve_batch(scenarios, method="revised")
    assert chain.all_optimal
    print(
        f"\nre-optimization chain over {len(scenarios)} price scenarios: "
        f"{chain.total_iterations} pivots warm-started vs "
        f"{cold.total_iterations} cold "
        f"({cold.total_iterations / max(1, chain.total_iterations):.1f}x fewer)"
    )
    print(chain.summary())


if __name__ == "__main__":
    main()

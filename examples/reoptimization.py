"""Scenario re-optimization: one base solve, many rhs variants.

A production planner runs the same model every morning with updated
capacities (the rhs).  Cold-solving every scenario replays the whole simplex
path; the **dual simplex** re-optimizes from yesterday's basis in a handful
of pivots, because a basis stays *dual* feasible when only b changes.

This script solves a base model, then a stream of capacity scenarios three
ways — cold primal, warm primal (which must reject the primal-infeasible
hint and restart!), and warm dual — and compares pivot counts and duals.

Run:  python examples/reoptimization.py
"""

import numpy as np

from repro import solve
from repro.lp.generators import random_dense_lp
from repro.lp.problem import LPProblem


def main() -> None:
    rng = np.random.default_rng(2026)
    base = random_dense_lp(80, 110, seed=9)
    first = solve(base, method="revised")
    assert first.is_optimal
    basis = first.extra["basis"]
    print(f"base model: {base}")
    print(f"base solve: {first.iterations.total_iterations} pivots, "
          f"profit {first.objective:.2f}\n")

    print(f"{'scenario':>9} {'cold pivots':>12} {'dual pivots':>12} "
          f"{'profit':>12} {'agree':>6}")
    totals = [0, 0]
    for s in range(8):
        factors = rng.uniform(0.8, 1.2, base.num_constraints)
        scenario = LPProblem(
            c=base.c, a=base.a_dense(), senses=base.senses,
            b=base.b * factors, bounds=base.bounds, maximize=base.maximize,
            name=f"scenario-{s}",
        )
        cold = solve(scenario, method="revised")
        warm = solve(scenario, method="dual", initial_basis=basis)
        agree = abs(cold.objective - warm.objective) <= 1e-6 * (1 + abs(cold.objective))
        totals[0] += cold.iterations.total_iterations
        totals[1] += warm.iterations.total_iterations
        print(f"{s:>9} {cold.iterations.total_iterations:>12} "
              f"{warm.iterations.total_iterations:>12} "
              f"{warm.objective:>12.2f} {'yes' if agree else 'NO':>6}")
    print(f"\ntotal pivots: cold {totals[0]}, warm dual {totals[1]} "
          f"({totals[0] / max(1, totals[1]):.1f}x fewer)")

    # shadow prices tell the planner which capacity to buy more of
    duals = first.extra["duals"]
    top = np.argsort(-duals)[:5]
    print("\nmost valuable capacities (base-model shadow prices):")
    for i in top:
        print(f"  constraint {i}: marginal value {duals[i]:.4f} per unit")


if __name__ == "__main__":
    main()

"""Production planning: a realistic dense LP through the full pipeline.

A plant makes ``n_products`` products on ``n_resources`` shared resources
(machine-hours, labour, raw materials).  Each product consumes a bit of
every resource (a *dense* constraint matrix — the workload family the paper
targets), yields a profit, and has a market-demand cap (upper bounds).

The example demonstrates:

- building an :class:`~repro.lp.problem.LPProblem` with bounds,
- solving on the simulated GPU and the CPU comparator,
- reading the per-kernel time breakdown of the GPU solve,
- exporting the model to MPS and reading it back.

Run:  python examples/production_planning.py
"""

import io

import numpy as np

from repro import LPProblem, solve
from repro.lp.mps import read_mps, write_mps
from repro.lp.problem import Bounds


def build_problem(n_products: int = 120, n_resources: int = 60, seed: int = 7) -> LPProblem:
    rng = np.random.default_rng(seed)
    consumption = rng.uniform(0.2, 2.0, size=(n_resources, n_products))
    capacity = rng.uniform(0.4, 0.8, size=n_resources) * consumption.sum(axis=1)
    profit = rng.uniform(5.0, 50.0, size=n_products)
    demand_cap = rng.uniform(10.0, 100.0, size=n_products)
    return LPProblem(
        c=profit,
        a=consumption,
        senses=["<="] * n_resources,
        b=capacity,
        bounds=Bounds(np.zeros(n_products), demand_cap),
        maximize=True,
        name="production-plan",
        var_names=[f"prod_{j:03d}" for j in range(n_products)],
    )


def main() -> None:
    lp = build_problem()
    print(f"model: {lp}")

    gpu = solve(lp, method="gpu-revised", dtype=np.float32)
    cpu = solve(lp, method="revised")
    assert gpu.is_optimal and cpu.is_optimal
    print(f"GPU (fp32) profit: {gpu.objective:12.2f}  "
          f"({gpu.iterations.total_iterations} pivots, "
          f"{gpu.timing.modeled_seconds * 1e3:.2f} ms modeled GTX 280 time)")
    print(f"CPU (fp64) profit: {cpu.objective:12.2f}  "
          f"({cpu.iterations.total_iterations} pivots, "
          f"{cpu.timing.modeled_seconds * 1e3:.2f} ms modeled Core 2 time)")
    agreement = abs(gpu.objective - cpu.objective) / abs(cpu.objective)
    print(f"fp32/fp64 relative disagreement: {agreement:.2e}")

    produced = [(lp.variable_name(j), x) for j, x in enumerate(gpu.x) if x > 1e-6]
    print(f"\nnon-zero production plan ({len(produced)} products):")
    for name, amount in sorted(produced, key=lambda kv: -kv[1])[:8]:
        print(f"  {name}: {amount:8.2f} units")

    print("\nGPU time by algorithm phase:")
    for phase, frac in sorted(
        gpu.timing.breakdown_fractions().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {phase:10s} {100 * frac:5.1f}%")

    # MPS round trip
    buffer = io.StringIO()
    write_mps(lp, buffer)
    reread = read_mps(buffer.getvalue())
    check = solve(reread, method="revised")
    assert abs(check.objective - cpu.objective) < 1e-6 * abs(cpu.objective)
    print(f"\nMPS round trip OK ({len(buffer.getvalue().splitlines())} lines, "
          f"objective reproduced exactly)")


if __name__ == "__main__":
    main()

"""Metrics export: snapshot/diff telemetry around a warm-start chain.

An LP service wants per-request telemetry — how many pivots, how much
modeled GPU time, how many bytes crossed PCIe — without touching solver
code.  ``repro.metrics`` collects exactly that process-wide once enabled:
take a snapshot before a request, another after, and ``diff`` isolates the
request's own counters; ``to_prometheus`` renders any snapshot in the text
format a Prometheus scrape endpoint would serve.

This script enables collection, runs a warm-start chain of perturbed-rhs
scenarios on the GPU revised simplex, diffs the snapshots around one
chain, and prints the per-chain delta in both exporter formats.

Run:  python examples/metrics_export.py
"""

import numpy as np

from repro import metrics
from repro.batch import solve_batch_chain
from repro.lp.generators import random_dense_lp
from repro.lp.problem import LPProblem


def perturbed_chain(base: LPProblem, steps: int, seed: int) -> list[LPProblem]:
    rng = np.random.default_rng(seed)
    chain = [base]
    for s in range(1, steps):
        factors = rng.uniform(0.9, 1.1, base.num_constraints)
        chain.append(
            LPProblem(
                c=base.c, a=base.a_dense(), senses=base.senses,
                b=base.b * factors, bounds=base.bounds,
                maximize=base.maximize, name=f"step-{s}",
            )
        )
    return chain


def main() -> None:
    metrics.enable()

    base = random_dense_lp(40, 60, seed=3)
    chain = perturbed_chain(base, steps=5, seed=17)

    before = metrics.snapshot()
    batch = solve_batch_chain(chain, method="gpu-revised")
    delta = metrics.diff(before, metrics.snapshot())

    warm = sum(1 for item in batch if item.warm_started)
    print(f"chain: {len(batch)} scenarios, {warm} warm-started, "
          f"all optimal: {batch.all_optimal}\n")

    # the diff holds only what THIS chain did: counters subtract, gauges
    # keep their latest value
    pivots = metrics.snapshot_value(
        delta, "repro_solver_iterations_total", solver="gpu-revised", phase="2"
    )
    seconds = metrics.snapshot_value(
        delta, "repro_solver_modeled_seconds_total", solver="gpu-revised"
    )
    print(f"phase-2 pivots this chain:  {pivots:.0f}")
    print(f"modeled seconds this chain: {seconds * 1e3:.3f} ms\n")

    print("--- Prometheus exposition (chain delta, solver metrics) ---")
    for line in metrics.to_prometheus(delta).splitlines():
        if "repro_solver_" in line:
            print(line)

    print("\n--- JSON snapshot (first lines) ---")
    for line in metrics.to_json(delta).splitlines()[:12]:
        print(line)

    metrics.disable()


if __name__ == "__main__":
    main()

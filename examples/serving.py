"""Serving: an always-on LP service with a device fleet and warm starts.

The batch layer answers a fixed list of LPs; a *service* faces LPs that
arrive over time with priorities and deadlines.  This script runs the
``repro.serve`` stack end to end on the simulated clock: a mixed-priority
arrival trace (including perturbed resubmissions — the re-optimization
traffic real LP services mostly see) is replayed through a single-device
server and a 4-device fleet, showing admission control, bin-packed
placement, warm-start cache hits, and the modeled latency distribution.

Run:  python examples/serving.py
"""

from repro.serve import (
    LPServer,
    PRIORITY_HIGH,
    ServeConfig,
    serve_trace,
    synthetic_trace,
)
from repro.lp.generators import random_dense_lp


def main() -> None:
    # -- a hand-driven server: submit, run, inspect -----------------------
    server = LPServer(ServeConfig(n_devices=1, n_streams=2))
    rush = server.submit(
        random_dense_lp(32, 48, seed=1), at=0.0, priority=PRIORITY_HIGH
    )
    background = server.submit(
        random_dense_lp(48, 72, seed=2), at=0.0005, timeout=1.0
    )
    report = server.run()
    assert rush.is_optimal and background.is_optimal
    print("hand-driven server:")
    print(f"  {rush!r} latency={rush.latency_seconds * 1e3:.3f}ms")
    print(f"  {background!r} latency={background.latency_seconds * 1e3:.3f}ms")
    print()

    # -- the canonical trace, sequential vs fleet -------------------------
    trace = synthetic_trace(n_jobs=32, seed=0)
    resubmissions = sum(1 for e in trace if e.resubmit_of is not None)
    print(
        f"trace: {len(trace)} jobs over "
        f"{trace[-1].at * 1e3:.1f}ms, {resubmissions} perturbed resubmissions"
    )
    sequential = serve_trace(
        trace, ServeConfig(n_devices=1, n_streams=1, cache_capacity=1)
    )
    fleet = serve_trace(trace, ServeConfig(n_devices=4))
    print(f"  sequential: {sequential.summary()}")
    print(f"  fleet:      {fleet.summary()}")
    print()
    print("fleet detail:")
    print(fleet.render())

    # the fleet serves the identical trace strictly faster, and the
    # structural fingerprints of resubmitted LPs land warm-start hits
    assert fleet.span_seconds < sequential.span_seconds
    assert fleet.cache_hits >= 1
    assert fleet.all_optimal


if __name__ == "__main__":
    main()

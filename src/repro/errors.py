"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch the whole family with a single clause.  Substrate-specific errors live
in their own branches (device errors, LP-format errors, solver errors).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


# ---------------------------------------------------------------------------
# Simulated-device errors (repro.gpu)
# ---------------------------------------------------------------------------


class DeviceError(ReproError):
    """Base class for simulated-GPU errors."""


class DeviceMemoryError(DeviceError):
    """Device allocation exceeded the simulated device's global memory."""


class InvalidLaunchError(DeviceError):
    """A kernel launch configuration violates device limits."""


class DeviceArrayError(DeviceError):
    """Illegal use of a :class:`~repro.gpu.memory.DeviceArray` (freed array,
    wrong device, host access to device-resident data outside a kernel)."""


# ---------------------------------------------------------------------------
# LP modelling errors (repro.lp)
# ---------------------------------------------------------------------------


class LPError(ReproError):
    """Base class for LP modelling errors."""


class LPDimensionError(LPError):
    """Inconsistent problem dimensions (matrix/vector shape mismatch)."""


class LPFormatError(LPError):
    """Malformed MPS / LP input file."""


class LPBoundsError(LPError):
    """Contradictory variable bounds (lower bound above upper bound)."""


# ---------------------------------------------------------------------------
# Sparse-format errors (repro.sparse)
# ---------------------------------------------------------------------------


class SparseFormatError(ReproError):
    """Structurally invalid sparse matrix data (bad indices, bad indptr)."""


# ---------------------------------------------------------------------------
# Solver errors (repro.simplex / repro.core)
# ---------------------------------------------------------------------------


class SolverError(ReproError):
    """Base class for solver-configuration errors (a *failed solve* is not an
    exception — it is a :class:`~repro.status.SolveStatus`)."""


class SingularBasisError(SolverError):
    """The candidate basis matrix is numerically singular."""


class UnknownMethodError(SolverError):
    """An unknown solver method name was requested from :func:`repro.solve`."""

"""Batched multi-LP solving: many LPs as one workload on one device.

The single-LP path (:func:`repro.solve`) pays the whole machine setup —
context creation, a dedicated simulated device — per solve.  A service that
answers millions of small LP requests (pricing sweeps, per-scenario
re-planning, per-user allocation) amortizes that: this package solves a
*batch* of LPs against **one shared simulated device** and prices the
aggregate machine time under a chosen schedule, following the batched-LP
line of work (Gurung & Ray, arXiv:1802.08557 and arXiv:1609.08114).

- :func:`solve_batch` — solve N independent LPs with any registered method;
  ``schedule="sequential"`` runs them back to back, ``"concurrent"``
  interleaves the per-LP kernel launch streams to model GPU stream overlap
  (see :mod:`repro.batch.scheduler` for the makespan model).
- :func:`solve_batch_chain` — a re-optimization stream: each LP warm-starts
  from the previous optimal basis (perturbed-rhs scenario sweeps).

Per-LP results are **bit-identical** to independent ``solve()`` calls —
batching changes the aggregate time accounting, never the numerics.

Quickstart::

    from repro import random_dense_lp, solve_batch

    lps = [random_dense_lp(64, 96, seed=s) for s in range(16)]
    batch = solve_batch(lps, method="gpu-revised", schedule="concurrent")
    print(batch.summary())          # aggregate time, throughput, bound
    print(batch[0].result.objective)
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.batch.results import BatchItem, BatchResult
from repro.batch.scheduler import (
    ConcurrentSchedule,
    LPTimeline,
    ScheduleOutcome,
    SequentialSchedule,
    make_schedule,
)
from repro.engine.registry import device_methods, warm_start_methods
from repro.errors import SolverError
from repro.gpu.device import Device
from repro.lp.problem import LPProblem
from repro.metrics.instrument import (
    obs_batch_schedule,
    record_batch,
    record_chain_break,
)
from repro.perfmodel.gpu_model import GpuModelParams
from repro.perfmodel.presets import GTX280_PARAMS
from repro.simplex.options import SolverOptions

__all__ = [
    "solve_batch",
    "solve_batch_chain",
    "BatchItem",
    "BatchResult",
    "LPTimeline",
    "ScheduleOutcome",
    "SequentialSchedule",
    "ConcurrentSchedule",
    "make_schedule",
    "DEFAULT_CONTEXT_SETUP_SECONDS",
    "GPU_METHODS",
    "WARM_START_METHODS",
]

#: Methods that run on the shared simulated device (and therefore produce a
#: kernel/transfer timeline the concurrent schedule can interleave).
#: Derived from the :mod:`repro.engine.registry` capability flags.
GPU_METHODS = device_methods()

#: Methods that accept ``initial_basis`` (usable in :func:`solve_batch_chain`).
#: Derived from the :mod:`repro.engine.registry` capability flags.
WARM_START_METHODS = warm_start_methods()

#: One-time GPU context/setup cost charged once per batch (and once per LP
#: by the solo-loop comparator in the B1 benchmark).  2009-era CUDA context
#: creation (cuInit + cuCtxCreate + first-touch allocator) measured in the
#: tens of milliseconds; 50 ms is the round number contemporary reports
#: quote.  Override via ``solve_batch(..., context_seconds=...)``.
DEFAULT_CONTEXT_SETUP_SECONDS = 0.05


def _check_problems(problems: Sequence[LPProblem]) -> list[LPProblem]:
    problems = list(problems)
    if not problems:
        raise SolverError("solve_batch needs at least one problem")
    for i, p in enumerate(problems):
        if not isinstance(p, LPProblem):
            raise TypeError(
                f"batch item {i}: expected LPProblem, got {type(p).__name__}"
            )
    return problems


def _check_method(method: str) -> None:
    from repro.solve import available_methods

    if method not in available_methods():
        from repro.errors import UnknownMethodError

        raise UnknownMethodError(
            f"unknown method {method!r}; available: {available_methods()}"
        )


def _item_name(problem: LPProblem, index: int) -> str:
    return problem.name or f"lp-{index}"


def solve_batch(
    problems: Sequence[LPProblem],
    method: str = "gpu-revised",
    schedule: str = "sequential",
    options: SolverOptions | None = None,
    n_streams: int | None = None,
    batch_gemv: bool = False,
    device: Device | None = None,
    gpu_params: GpuModelParams = GTX280_PARAMS,
    context_seconds: float | None = None,
    **option_overrides,
) -> BatchResult:
    """Solve many independent LPs as one batch.

    Parameters
    ----------
    problems:
        The LPs of the workload, solved in order.
    method:
        Any :func:`repro.solve` method.  The ``gpu-*`` methods share one
        simulated device across the whole batch and record per-LP kernel
        timelines; CPU methods are batched as opaque blocks of modeled time.
    schedule:
        ``"sequential"`` (back to back) or ``"concurrent"`` (stream
        interleaving; see :class:`~repro.batch.scheduler.ConcurrentSchedule`).
    n_streams:
        Streams (GPU) / workers (CPU) for the concurrent schedule.
    batch_gemv:
        Concurrent GPU batches only: merge the streams' GEMV/SpMV launches
        into one batched launch per dispatch round
        (:data:`~repro.batch.scheduler.BATCHABLE_KERNELS`), shrinking the
        launch-serialization bound; per-LP results are unchanged.
    device:
        Share an existing simulated device (it is reset per solve).  A new
        one with ``gpu_params`` is created otherwise.
    context_seconds:
        One-time setup cost charged to the batch; defaults to
        :data:`DEFAULT_CONTEXT_SETUP_SECONDS` for GPU methods, 0 for CPU.
    option_overrides:
        Forwarded to every ``solve()`` call (``pricing=...``, ``dtype=...``).

    Returns a :class:`~repro.batch.results.BatchResult` whose per-LP results
    are identical to independent ``solve()`` calls.
    """
    from repro.solve import solve

    problems = _check_problems(problems)
    _check_method(method)
    sched = make_schedule(schedule, n_streams=n_streams, batch_gemv=batch_gemv)
    on_gpu = method in GPU_METHODS

    dev: Device | None = None
    if on_gpu:
        dev = device if device is not None else Device(gpu_params)
        dev.record_timeline()

    t_wall = time.perf_counter()
    items: list[BatchItem] = []
    timelines: list[LPTimeline] = []
    for i, problem in enumerate(problems):
        result = solve(
            problem, method=method, options=options, device=dev,
            **option_overrides,
        )
        items.append(BatchItem(index=i, name=_item_name(problem, i), result=result))
        if on_gpu:
            timelines.append(
                LPTimeline.from_events(i, list(dev.timeline or ()), dev.params)
            )
        else:
            timelines.append(
                LPTimeline.from_modeled_seconds(
                    i, result.timing.modeled_seconds
                )
            )
    wall = time.perf_counter() - t_wall

    outcome = sched.plan(timelines, params=dev.params if on_gpu else None)
    record_batch(schedule, outcome, timelines)
    obs_batch_schedule(schedule, outcome, timelines)
    if context_seconds is None:
        context_seconds = DEFAULT_CONTEXT_SETUP_SECONDS if on_gpu else 0.0
    return BatchResult(
        method=method,
        schedule=schedule,
        items=items,
        outcome=outcome,
        context_seconds=context_seconds,
        wall_seconds=wall,
    )


def solve_batch_chain(
    problems: Sequence[LPProblem],
    method: str = "revised",
    options: SolverOptions | None = None,
    device: Device | None = None,
    gpu_params: GpuModelParams = GTX280_PARAMS,
    context_seconds: float | None = None,
    **option_overrides,
) -> BatchResult:
    """Solve a *chain* of related LPs, warm-starting each from the last.

    The workload model is a re-optimization stream: the same LP perturbed
    step by step (new rhs, drifting costs), where the previous optimal basis
    is an excellent starting point.  Each solve after the first passes the
    preceding optimal basis as ``initial_basis``; solvers fall back to a
    cold start on their own when the hint is singular or infeasible, so the
    chain never changes a result's correctness, only its pivot count.

    The chain is dependency-ordered, hence always priced sequentially
    (``schedule="concurrent"`` would break the basis hand-off).  ``method``
    must support warm starts — one of ``sorted(WARM_START_METHODS)``.
    """
    from repro.solve import solve

    problems = _check_problems(problems)
    _check_method(method)
    if method not in WARM_START_METHODS:
        raise SolverError(
            f"method {method!r} does not support warm starts; "
            f"chain methods: {sorted(WARM_START_METHODS)}"
        )
    on_gpu = method in GPU_METHODS

    dev: Device | None = None
    if on_gpu:
        dev = device if device is not None else Device(gpu_params)
        dev.record_timeline()

    t_wall = time.perf_counter()
    items: list[BatchItem] = []
    timelines: list[LPTimeline] = []
    basis = None
    for i, problem in enumerate(problems):
        result = solve(
            problem, method=method, options=options, device=dev,
            initial_basis=basis, **option_overrides,
        )
        # A non-optimal intermediate result breaks the chain: there is no
        # basis to hand to the next LP, which silently cold-starts.  Flag
        # it per item and count it, so re-optimization sweeps (and the
        # serving layer's warm-start cache, which checks the same flag)
        # can see the warm-start loss instead of just a pivot-count bump.
        chain_broken = not result.is_optimal
        if chain_broken:
            record_chain_break(method)
        items.append(
            BatchItem(
                index=i,
                name=_item_name(problem, i),
                result=result,
                warm_started=basis is not None,
                chain_broken=chain_broken,
            )
        )
        if on_gpu:
            timelines.append(
                LPTimeline.from_events(i, list(dev.timeline or ()), dev.params)
            )
        else:
            timelines.append(
                LPTimeline.from_modeled_seconds(
                    i, result.timing.modeled_seconds
                )
            )
        basis = result.extra.get("basis") if result.is_optimal else None
    wall = time.perf_counter() - t_wall

    outcome = SequentialSchedule().plan(timelines)
    record_batch("chain", outcome, timelines)
    obs_batch_schedule("chain", outcome, timelines)
    if context_seconds is None:
        context_seconds = DEFAULT_CONTEXT_SETUP_SECONDS if on_gpu else 0.0
    return BatchResult(
        method=method,
        schedule="chain",
        items=items,
        outcome=outcome,
        context_seconds=context_seconds,
        wall_seconds=wall,
    )

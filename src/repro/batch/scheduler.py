"""Batch schedules: how many LP solves share one simulated device.

The batch façade (:func:`repro.batch.solve_batch`) runs every LP of the
workload on **one shared** :class:`~repro.gpu.device.Device` with timeline
recording enabled, so after the functional solves it holds, per LP, the
exact sequence of kernel launches and PCIe transfers the solver issued
(:class:`~repro.gpu.device.TimelineEvent`).  The schedule then prices the
*aggregate* machine time of executing those per-LP event streams:

- :class:`SequentialSchedule` — LPs run back to back, one CUDA stream:
  the aggregate time is simply the sum of the per-LP device clocks.

- :class:`ConcurrentSchedule` — LPs are assigned round-robin to ``n_streams``
  streams and their launches interleave, the way the batched-LP literature
  overlaps many small simplex kernels that individually cannot fill the
  device (Gurung & Ray, arXiv:1802.08557 / arXiv:1609.08114).  The makespan
  is modeled as the *binding resource* of the interleaved execution — the
  maximum of four lower bounds, each a real hardware constraint:

  ========================= ==============================================
  bound                     constraint it models
  ========================= ==============================================
  ``copy-engine``           one PCIe copy engine: all HtoD/DtoH transfers
                            serialize, ``Σ transfer``
  ``compute-capacity``      the device has finite throughput: kernels
                            co-run only up to full occupancy,
                            ``Σ kernel·utilization / capacity``
  ``stream-critical-path``  events of one stream are dependency-ordered:
                            ``max over streams of Σ stream events``
  ``launch-serialization``  the host issues launches serially,
                            ``launches · launch_overhead``
  ========================= ==============================================

  ``utilization`` of a kernel is the fraction of the device's resident
  thread capacity its logical work size occupies (floored at the model's
  ``min_fill``): two kernels at 2% occupancy overlap almost perfectly, two
  at 100% do not overlap at all, which is exactly why batching pays off for
  small LPs and fades for large ones.  Copy/compute overlap (GT200's async
  engine) is on by default; without it the copy-engine time adds to the
  compute makespan instead of hiding under it, and the reported bounds
  switch to the serialized composition (``stream-device-path`` — each
  stream's compute-only critical path — replaces ``stream-critical-path``).

Concurrent *kernel* execution across streams is a Fermi-and-later ability
(on GT200 the same overlap is achieved by fusing the per-LP kernels into one
batched launch, as the cited papers do); the schedule is therefore labeled
*reconstructed* in EXPERIMENTS.md, like the other beyond-paper experiments.

``ConcurrentSchedule(batch_gemv=True)`` additionally models that fused
batched launch for the GEMV/SpMV kernels every iteration issues
(:data:`BATCHABLE_KERNELS`): each dispatch round merges one pending
matrix-vector launch from every stream into a single launch, which removes
host launch overhead (the launch-serialization bound) without changing any
LP's compute or memory traffic.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.errors import SolverError
from repro.gpu.device import TimelineEvent
from repro.perfmodel.gpu_model import GpuModelParams

#: Event kinds that occupy the PCIe copy engine; everything else runs on
#: the device itself (kernels and device-to-device copies).
_COPY_KINDS = frozenset({"htod", "dtoh"})

#: Kernel names eligible for cross-LP batching: the dense/sparse
#: matrix-vector products every simplex pricing step and every PDHG
#: iteration issues.  When several streams each have one of these queued in
#: a dispatch window, the host can issue them as a *single* batched-GEMV
#: launch (one grid, one launch overhead) — the trick the batched-LP papers
#: use on pre-Fermi hardware where streams cannot co-run kernels.  The
#: per-LP compute and memory traffic is unchanged; only the launch
#: serialization on the host shrinks.
BATCHABLE_KERNELS = frozenset(
    {"blas.gemv", "blas.gemv_t", "sparse.spmv_csr", "sparse.spmv_csc_t"}
)


@dataclasses.dataclass(frozen=True)
class LPTimeline:
    """The machine-time footprint of one LP solve, ready for scheduling.

    ``busy_seconds`` is the utilization-weighted device time — the device-
    seconds of throughput the solve actually consumes, as opposed to
    ``device_seconds``, the time it *occupies* the device when running alone.
    """

    index: int
    kernel_launches: int
    transfer_seconds: float
    device_seconds: float
    busy_seconds: float
    total_seconds: float
    #: How many of ``kernel_launches`` are standalone GEMV/SpMV launches
    #: (:data:`BATCHABLE_KERNELS`) that a concurrent schedule may merge
    #: across LPs into one batched launch per dispatch round.
    batchable_launches: int = 0

    @staticmethod
    def from_events(
        index: int,
        events: Sequence[TimelineEvent],
        params: GpuModelParams,
    ) -> "LPTimeline":
        """Collapse one solve's device timeline into scheduling totals."""
        launches = 0
        batchable = 0
        transfer = 0.0
        device = 0.0
        busy = 0.0
        capacity = float(params.concurrent_threads)
        for ev in events:
            if ev.kind in _COPY_KINDS:
                transfer += ev.seconds
            else:
                device += ev.seconds
                if ev.kind == "kernel":
                    launches += 1
                    if ev.name in BATCHABLE_KERNELS:
                        batchable += 1
                    util = max(
                        params.min_fill,
                        min(1.0, max(ev.threads, 1) / capacity),
                    )
                else:  # dtod copies saturate the memory system
                    util = 1.0
                busy += ev.seconds * util
        return LPTimeline(
            index=index,
            kernel_launches=launches,
            transfer_seconds=transfer,
            device_seconds=device,
            busy_seconds=busy,
            total_seconds=transfer + device,
            batchable_launches=batchable,
        )

    @staticmethod
    def from_modeled_seconds(index: int, seconds: float) -> "LPTimeline":
        """A single-block timeline for solvers without a device timeline
        (the CPU baselines): one fully-utilizing unit of work."""
        return LPTimeline(
            index=index,
            kernel_launches=0,
            transfer_seconds=0.0,
            device_seconds=seconds,
            busy_seconds=seconds,
            total_seconds=seconds,
        )


@dataclasses.dataclass(frozen=True)
class ScheduleOutcome:
    """Aggregate machine time of one scheduled batch."""

    schedule: str
    makespan_seconds: float
    sequential_seconds: float
    transfer_seconds: float
    n_streams: int
    #: Name of the resource whose lower bound the makespan equals.
    binding_resource: str
    #: Every modeled bound, for reporting (name -> seconds).
    bounds: dict[str, float] = dataclasses.field(default_factory=dict)
    #: Launches eliminated by cross-LP GEMV batching (0 unless the
    #: schedule ran with ``batch_gemv=True`` on a GPU batch).
    batched_launches_saved: int = 0
    #: Host launch-overhead seconds those merges removed from the
    #: launch-serialization bound.
    batching_saved_seconds: float = 0.0

    @property
    def speedup_vs_sequential(self) -> float:
        if self.makespan_seconds <= 0.0:
            return 1.0
        return self.sequential_seconds / self.makespan_seconds


class SequentialSchedule:
    """Back-to-back execution on one stream (the baseline schedule)."""

    name = "sequential"

    def plan(
        self,
        timelines: Sequence[LPTimeline],
        params: GpuModelParams | None = None,
    ) -> ScheduleOutcome:
        total = sum(tl.total_seconds for tl in timelines)
        transfer = sum(tl.transfer_seconds for tl in timelines)
        return ScheduleOutcome(
            schedule=self.name,
            makespan_seconds=total,
            sequential_seconds=total,
            transfer_seconds=transfer,
            n_streams=1,
            binding_resource="stream-critical-path",
            bounds={"stream-critical-path": total},
        )


class ConcurrentSchedule:
    """Stream-interleaved execution of the per-LP kernel launch streams.

    Parameters
    ----------
    n_streams:
        Streams (GPU) or workers (CPU baselines) to spread the batch over;
        ``None`` picks ``min(len(batch), DEFAULT_STREAMS)``.
    copy_compute_overlap:
        Whether PCIe transfers hide under kernel execution (async copy
        engine).  On for the modeled GT200-class devices.
    batch_gemv:
        Merge the streams' standalone GEMV/SpMV launches
        (:data:`BATCHABLE_KERNELS`) into one batched launch per dispatch
        round.  Each round retires at most one batchable launch from every
        stream, so the rounds needed equal the *largest* per-stream
        batchable count; the difference to the total batchable count is
        launches the host never issues, shrinking the launch-serialization
        bound.  Compute and memory traffic are per-LP and unchanged.
    """

    name = "concurrent"

    DEFAULT_STREAMS = 8

    def __init__(
        self,
        n_streams: int | None = None,
        copy_compute_overlap: bool = True,
        batch_gemv: bool = False,
    ):
        if n_streams is not None and n_streams < 1:
            raise SolverError("n_streams must be >= 1")
        self.n_streams = n_streams
        self.copy_compute_overlap = copy_compute_overlap
        self.batch_gemv = batch_gemv

    def plan(
        self,
        timelines: Sequence[LPTimeline],
        params: GpuModelParams | None = None,
    ) -> ScheduleOutcome:
        """Price the interleaved execution of ``timelines``.

        ``params`` carries the device model for GPU batches (launch
        overhead; kernel utilizations are already fractions of the whole
        device).  ``params=None`` means a CPU multicore batch: timelines
        are fully-utilizing blocks and the compute capacity is the worker
        count, i.e. the stream count.
        """
        streams = self.n_streams or min(len(timelines), self.DEFAULT_STREAMS)
        streams = max(1, min(streams, len(timelines)))

        stream_path = [0.0] * streams
        stream_device = [0.0] * streams
        stream_batchable = [0] * streams
        for tl in timelines:  # round-robin assignment, launch order = index
            stream_path[tl.index % streams] += tl.total_seconds
            stream_device[tl.index % streams] += tl.device_seconds
            stream_batchable[tl.index % streams] += tl.batchable_launches

        transfer = sum(tl.transfer_seconds for tl in timelines)
        sequential = sum(tl.total_seconds for tl in timelines)
        capacity = 1.0 if params is not None else float(streams)
        busy = sum(tl.busy_seconds for tl in timelines) / capacity
        launch_overhead = params.launch_overhead if params is not None else 0.0
        launches = sum(tl.kernel_launches for tl in timelines)

        # Cross-LP GEMV batching: per dispatch round the host merges one
        # batchable launch from each stream into a single batched launch,
        # so the rounds needed equal the busiest stream's batchable count
        # and every launch beyond that is one the host never issues.
        batching_saved = 0
        if self.batch_gemv and params is not None and streams > 1:
            total_batchable = sum(stream_batchable)
            rounds = max(stream_batchable)
            batching_saved = total_batchable - rounds
        launches -= batching_saved
        batching_saved_seconds = batching_saved * launch_overhead

        if self.copy_compute_overlap:
            bounds = {
                "copy-engine": transfer,
                "compute-capacity": busy,
                "stream-critical-path": max(stream_path),
                "launch-serialization": launches * launch_overhead,
            }
            makespan = max(bounds.values())
        else:
            # Serialized composition: with no async copy engine, every PCIe
            # transfer adds to the compute makespan instead of hiding under
            # it, and a stream's critical path through the *device* excludes
            # its transfers (those all queue on the one copy engine).  The
            # reported bounds are exactly the terms composed here — not the
            # overlap-mode bounds, whose stream-critical-path (transfer +
            # compute per stream) never enters this makespan.
            bounds = {
                "copy-engine": transfer,
                "compute-capacity": busy,
                "stream-device-path": max(stream_device),
                "launch-serialization": launches * launch_overhead,
            }
            makespan = transfer + max(
                bounds["compute-capacity"],
                bounds["stream-device-path"],
                bounds["launch-serialization"],
            )
        # Ties are broken by declaration order of the bounds dict (copy
        # engine first), so binding_resource is deterministic for equal
        # bounds — max() returns the first maximal key.
        binding = max(bounds, key=lambda k: bounds[k])
        return ScheduleOutcome(
            schedule=self.name,
            makespan_seconds=makespan,
            sequential_seconds=sequential,
            transfer_seconds=transfer,
            n_streams=streams,
            binding_resource=binding,
            bounds=bounds,
            batched_launches_saved=batching_saved,
            batching_saved_seconds=batching_saved_seconds,
        )


def make_schedule(
    name: str,
    n_streams: int | None = None,
    copy_compute_overlap: bool = True,
    batch_gemv: bool = False,
) -> "SequentialSchedule | ConcurrentSchedule":
    """Instantiate a schedule by option name (``solve_batch``'s ``schedule``)."""
    if name == "sequential":
        return SequentialSchedule()
    if name == "concurrent":
        return ConcurrentSchedule(
            n_streams=n_streams,
            copy_compute_overlap=copy_compute_overlap,
            batch_gemv=batch_gemv,
        )
    raise SolverError(
        f"unknown schedule {name!r}; available: ['concurrent', 'sequential']"
    )

"""Result containers for batched multi-LP solves.

A :class:`BatchResult` keeps every per-LP :class:`~repro.result.SolveResult`
*exactly* as an independent ``solve()`` call would have produced it (that
determinism is tested property-style), and adds the batch-level accounting:
the scheduled aggregate machine time, the PCIe transfer total, throughput,
and the one-time context cost the batch amortizes over its members.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

from repro.batch.scheduler import ScheduleOutcome
from repro.result import SolveResult, merge_kernel_breakdowns
from repro.status import SolveStatus


@dataclasses.dataclass
class BatchItem:
    """One LP of the batch: its position, display name and solve result."""

    index: int
    name: str
    result: SolveResult
    #: Whether this solve was warm-started from the previous basis in a
    #: :func:`~repro.batch.solve_batch_chain` re-optimization stream.
    warm_started: bool = False
    #: Whether this solve *broke* the warm-start chain: it finished
    #: non-optimal, so no basis could be handed to the next LP (which then
    #: cold-starts).  Re-optimization sweeps and the serving layer's
    #: warm-start cache check this flag instead of silently losing warm
    #: starts.
    chain_broken: bool = False

    @property
    def status(self) -> SolveStatus:
        return self.result.status

    @property
    def objective(self) -> float:
        return self.result.objective

    @property
    def iterations(self) -> int:
        return self.result.iterations.total_iterations


@dataclasses.dataclass
class BatchResult:
    """Outcome of solving a workload of LPs as one batch.

    ``modeled_seconds`` is the scheduled aggregate machine time of the whole
    batch **including** the one-time ``context_seconds``; it is what a
    throughput figure should divide by.  ``sequential_seconds`` is the
    back-to-back sum of the per-LP modeled times (without context) — the
    yardstick the concurrent schedule is measured against.
    """

    method: str
    schedule: str
    items: list[BatchItem]
    outcome: ScheduleOutcome
    context_seconds: float = 0.0
    wall_seconds: float = 0.0

    # -- container protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[BatchItem]:
        return iter(self.items)

    def __getitem__(self, i: int) -> BatchItem:
        return self.items[i]

    # -- aggregates --------------------------------------------------------

    @property
    def results(self) -> list[SolveResult]:
        """Per-LP results, in submission order."""
        return [item.result for item in self.items]

    @property
    def modeled_seconds(self) -> float:
        return self.context_seconds + self.outcome.makespan_seconds

    @property
    def sequential_seconds(self) -> float:
        return self.outcome.sequential_seconds

    @property
    def transfer_seconds(self) -> float:
        return self.outcome.transfer_seconds

    @property
    def all_optimal(self) -> bool:
        return all(item.status is SolveStatus.OPTIMAL for item in self.items)

    @property
    def statuses(self) -> dict[str, int]:
        """Status value -> count across the batch."""
        counts: dict[str, int] = {}
        for item in self.items:
            counts[item.status.value] = counts.get(item.status.value, 0) + 1
        return counts

    @property
    def total_iterations(self) -> int:
        return sum(item.iterations for item in self.items)

    @property
    def chain_breaks(self) -> int:
        """How many members broke the warm-start chain (non-optimal result
        forcing the next LP to cold-start); 0 outside chain mode."""
        return sum(1 for item in self.items if item.chain_broken)

    @property
    def throughput_lps(self) -> float:
        """Solved LPs per modeled machine second (context included)."""
        if self.modeled_seconds <= 0.0:
            return float("inf")
        return len(self.items) / self.modeled_seconds

    @property
    def speedup_vs_sequential(self) -> float:
        """Aggregate speedup of this schedule over back-to-back solves."""
        return self.outcome.speedup_vs_sequential

    def kernel_breakdown(self) -> dict[str, float]:
        """Merged per-kernel/section modeled seconds across the batch."""
        return merge_kernel_breakdowns(
            *(item.result.timing.kernel_breakdown for item in self.items)
        )

    @property
    def traces(self) -> list:
        """Per-LP :class:`~repro.trace.SolveTrace` objects, in submission
        order, for members solved with ``trace=True`` (others are skipped)."""
        return [
            item.result.trace
            for item in self.items
            if item.result.trace is not None
        ]

    def phase_breakdown(self) -> dict[str, float]:
        """Aggregate modeled seconds per solver section across all traced
        members (empty when the batch was solved without ``trace=True``)."""
        return merge_kernel_breakdowns(
            *(trace.phase_seconds() for trace in self.traces)
        )

    # -- rendering ---------------------------------------------------------

    def summary(self) -> str:
        """One-line batch summary (CLI / example output)."""
        status = "all optimal" if self.all_optimal else str(self.statuses)
        sched = self.schedule
        if self.outcome.n_streams > 1:
            sched += f" x{self.outcome.n_streams} streams"
        return (
            f"batch of {len(self.items)} LPs [{self.method}, {sched}]: "
            f"{status}, "
            f"{self.total_iterations} pivots, "
            f"t_model={self.modeled_seconds * 1e3:.3f}ms "
            f"({self.speedup_vs_sequential:.2f}x vs sequential, "
            f"{self.throughput_lps:.1f} LPs/s, "
            f"bound: {self.outcome.binding_resource})"
        )

    def render(self) -> str:
        """Multi-line report: one row per LP plus the aggregate footer."""
        from repro.bench.tables import Table

        t = Table(
            ["#", "problem", "status", "objective", "iters", "t_model ms",
             "warm"]
        )
        for item in self.items:
            t.add_row(
                item.index,
                item.name,
                item.status.value,
                item.objective if item.result.is_optimal else None,
                item.iterations,
                item.result.timing.modeled_seconds * 1e3,
                ("broken" if item.chain_broken
                 else "yes" if item.warm_started else "-"),
            )
        lines = [t.render(), self.summary()]
        if self.context_seconds:
            lines.append(
                f"one-time context setup: {self.context_seconds * 1e3:.1f}ms "
                f"(amortized over {len(self.items)} LPs)"
            )
        return "\n".join(lines)

"""Modeled-time attribution: where each served job's latency went.

:func:`attribute` decomposes every completed job trace of an
:class:`~repro.obs.span.ObsRecording` into six named buckets that sum
*exactly* (telescoping float identities, no residual fudge) to the job's
end-to-end modeled latency:

=================== ======================================================
bucket              modeled time it covers
=================== ======================================================
``queue_wait``      submission → dispatch (admission queue)
``placement``       dispatch → the job's execute slice opening (window
                    serialization along its stream lane)
``transfer``        PCIe/device copies outside refactorizations, stretched
                    by the window's contention factor
``launch_overhead`` per-kernel launch cost (``min(kernel, overhead)`` per
                    launch outside refactorizations), stretched
``refactorization`` modeled time inside ``engine.refactor`` spans,
                    stretched
``compute``         the remainder of the execute slice
=================== ======================================================

The per-event split (:func:`execute_breakdown`) runs **at emission time**,
only when a recorder is installed, and stores its aggregates as attributes
on the job's ``device.execute`` span — attribution afterwards is pure span
reading.  CPU-backed methods have no device timeline: their execute slice
lands in ``compute`` (minus any host refactorization spans), which keeps
the sum exact across every method.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Sequence

from repro.obs.span import ObsRecording

#: Attribution buckets, report order.
BUCKETS = (
    "queue_wait",
    "placement",
    "transfer",
    "launch_overhead",
    "refactorization",
    "compute",
)

#: Outcomes attribution covers (jobs that actually executed).
_EXECUTED = frozenset({"completed", "deadline-missed"})


def execute_breakdown(
    events: Sequence[Any],
    launch_overhead: float,
    refactor_intervals: Sequence[tuple[float, float]],
) -> dict[str, float]:
    """Split one solve's raw device timeline into attribution components.

    ``events`` are :class:`~repro.gpu.device.TimelineEvent`-shaped records
    on the solve-local clock; ``refactor_intervals`` are the
    ``engine.refactor`` span intervals on the same clock.  Events whose
    midpoint falls inside a refactor interval are charged to
    ``refactor_seconds`` (via the interval lengths) rather than their own
    component, so the components never double-count.
    """
    refactor_seconds = sum(e - s for s, e in refactor_intervals)
    transfer = 0.0
    launch = 0.0
    kernels = 0
    transfers = 0
    cursor = 0.0
    for ev in events:
        start = getattr(ev, "start", None)
        if start is None:
            start = cursor
        cursor = start + ev.seconds
        mid = start + 0.5 * ev.seconds
        in_refactor = any(s <= mid <= e for s, e in refactor_intervals)
        if ev.kind == "kernel":
            kernels += 1
            if not in_refactor:
                launch += min(ev.seconds, launch_overhead)
        else:
            transfers += 1
            if not in_refactor:
                transfer += ev.seconds
    return {
        "transfer_seconds": transfer,
        "launch_seconds": launch,
        "refactor_seconds": refactor_seconds,
        "n_kernels": kernels,
        "n_transfers": transfers,
    }


@dataclasses.dataclass
class JobAttribution:
    """One completed job's latency decomposition."""

    trace_id: str
    job_id: int
    method: str
    device: str
    outcome: str
    latency_seconds: float
    buckets: dict[str, float]

    @property
    def coverage(self) -> float:
        """Fraction of the latency the named buckets explain (== 1.0 by
        construction; reported so the acceptance check is observable)."""
        if self.latency_seconds <= 0.0:
            return 1.0
        return sum(self.buckets.values()) / self.latency_seconds


@dataclasses.dataclass
class AttributionReport:
    """Per-job decompositions plus method- and fleet-level rollups."""

    jobs: list[JobAttribution]
    #: Jobs that never executed (rejected/expired), by outcome.
    unexecuted: dict[str, int]

    def totals(self) -> dict[str, float]:
        out = {b: 0.0 for b in BUCKETS}
        for job in self.jobs:
            for b in BUCKETS:
                out[b] += job.buckets[b]
        return out

    def by_method(self) -> dict[str, dict[str, float]]:
        out: dict[str, dict[str, float]] = {}
        for job in self.jobs:
            tot = out.setdefault(job.method, {b: 0.0 for b in BUCKETS})
            for b in BUCKETS:
                tot[b] += job.buckets[b]
        return out

    def total_latency(self) -> float:
        return sum(j.latency_seconds for j in self.jobs)

    def render(self, *, per_job: bool = False) -> str:
        """Tables: fleet-wide shares, per-method totals, optional per-job."""
        from repro.bench.tables import Table

        lines: list[str] = []
        totals = self.totals()
        grand = self.total_latency()
        t = Table(["bucket", "seconds", "share %"])
        for b in BUCKETS:
            share = 100.0 * totals[b] / grand if grand > 0 else 0.0
            t.add_row(b, totals[b], share)
        lines.append("fleet-wide latency attribution:")
        lines.append(t.render())
        by_method = self.by_method()
        if len(by_method) > 1:
            tm = Table(["method"] + list(BUCKETS))
            for method, tot in sorted(by_method.items()):
                tm.add_row(method, *[tot[b] for b in BUCKETS])
            lines.append("per-method totals (seconds):")
            lines.append(tm.render())
        if per_job:
            tj = Table(
                ["job", "method", "latency ms"]
                + [f"{b} ms" for b in BUCKETS]
            )
            for job in self.jobs:
                tj.add_row(
                    job.job_id, job.method, job.latency_seconds * 1e3,
                    *[job.buckets[b] * 1e3 for b in BUCKETS],
                )
            lines.append("per-job decomposition:")
            lines.append(tj.render())
        if self.unexecuted:
            parts = ", ".join(
                f"{n} {outcome}"
                for outcome, n in sorted(self.unexecuted.items())
            )
            lines.append(f"not executed (no attribution): {parts}")
        return "\n".join(lines)


def attribute(recording: ObsRecording) -> AttributionReport:
    """Decompose every executed job trace of ``recording`` (see module
    docstring for the bucket semantics and exactness guarantee)."""
    jobs: list[JobAttribution] = []
    unexecuted: dict[str, int] = {}
    for trace_id, outcome in sorted(recording.outcomes.items()):
        if not trace_id.startswith("job-"):
            continue
        if outcome not in _EXECUTED:
            unexecuted[outcome] = unexecuted.get(outcome, 0) + 1
            continue
        root = recording.tree(trace_id)
        children = {node.span.name: node.span for node in root.children}
        buckets = {b: 0.0 for b in BUCKETS}
        queue = children.get("queue.wait")
        if queue is not None:
            buckets["queue_wait"] = queue.duration
        placement = children.get("placement")
        if placement is not None:
            buckets["placement"] = placement.duration
        execute = children.get("device.execute")
        if execute is not None:
            stretch = float(execute.attrs.get("stretch", 1.0))
            transfer = (
                float(execute.attrs.get("transfer_seconds", 0.0)) * stretch
            )
            launch = float(execute.attrs.get("launch_seconds", 0.0)) * stretch
            refactor = (
                float(execute.attrs.get("refactor_seconds", 0.0)) * stretch
            )
            buckets["transfer"] = transfer
            buckets["launch_overhead"] = launch
            buckets["refactorization"] = refactor
            buckets["compute"] = (
                execute.duration - transfer - launch - refactor
            )
        sp = root.span
        jobs.append(
            JobAttribution(
                trace_id=trace_id,
                job_id=int(sp.attrs.get("job_id", -1)),
                method=str(sp.attrs.get("method", "?")),
                device=str(sp.attrs.get("device", "?")),
                outcome=outcome,
                latency_seconds=sp.duration,
                buckets=buckets,
            )
        )
    return AttributionReport(jobs=jobs, unexecuted=unexecuted)

"""Process-wide switch for span recording (mirrors ``repro.metrics``).

One module-level slot holds the active :class:`~repro.obs.span.ObsRecorder`
(or ``None``).  Every emission façade in :mod:`repro.metrics.instrument`
starts with ``active()`` — a plain global read — so span recording costs a
single ``is None`` check while disabled, the same zero-overhead contract
the metrics registry pins.

This module is deliberately dependency-free (stdlib only, the recorder is
imported lazily inside :func:`enable`): it is imported at module scope by
``repro.metrics.instrument``, which in turn is imported by the GPU device
and every observer call site, so it must never drag the rest of
``repro.obs`` (exporters, attribution) into those import paths.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.sampling import SamplingPolicy
    from repro.obs.span import ObsRecorder

_active: "ObsRecorder | None" = None


def enable(
    recorder: "ObsRecorder | None" = None,
    *,
    policy: "SamplingPolicy | None" = None,
) -> "ObsRecorder":
    """Install ``recorder`` (or a fresh one) as the active span recorder."""
    global _active
    if recorder is None:
        from repro.obs.span import ObsRecorder

        recorder = ObsRecorder(policy=policy)
    _active = recorder
    return recorder


def disable() -> None:
    """Uninstall the active recorder; emission becomes a no-op again."""
    global _active
    _active = None


def active() -> "ObsRecorder | None":
    """The installed recorder, or ``None`` when span recording is off."""
    return _active


def enabled() -> bool:
    return _active is not None


@contextlib.contextmanager
def observing(
    recorder: "ObsRecorder | None" = None,
    *,
    policy: "SamplingPolicy | None" = None,
) -> Iterator["ObsRecorder"]:
    """Scoped recording: enable on entry, restore the previous recorder on
    exit.  Yields the recorder so the caller can ``collect()`` afterwards::

        with obs.observing() as rec:
            serve_trace(trace, config)
        print(render_tree(rec.collect()))
    """
    global _active
    previous = _active
    rec = enable(recorder, policy=policy)
    try:
        yield rec
    finally:
        _active = previous

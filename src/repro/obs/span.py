"""Spans, the per-request span recorder, and the collected recording.

A **span** is one named interval on the simulated clock with a parent link
and free-form attributes; the spans of one request (a served job, one
engine solve, one batch schedule) share a **trace id** and form a tree
with exactly one root.  Two clock domains appear:

- ``clock="serve"`` — the server's global event clock (job lifecycle
  spans);
- ``clock="solve"`` — the per-solve modeled clock, which restarts at zero
  for every solve (the device resets its stats in ``begin()``).  Engine
  spans live here so they line up with the kernels of *their* solve; the
  ``request`` attribute and the recorder's link table tie them back to the
  serve-side job that spawned them.

The recorder buffers spans per trace; :meth:`ObsRecorder.collect` applies
the :class:`~repro.obs.sampling.SamplingPolicy` to every *finished* trace
exactly once, emits the kept/dropped counters through the metrics façade,
and returns an immutable :class:`ObsRecording`.  Emission while no
recorder is installed never reaches this module (the façade's ``active()``
check), which is what keeps the disabled path one pointer read.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Mapping

from repro.obs.sampling import DROPPED, SamplingPolicy


@dataclasses.dataclass
class Span:
    """One named interval of a request trace."""

    span_id: int
    trace_id: str
    parent_id: "int | None"
    name: str
    t_start: float
    t_end: float
    attrs: dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "attrs": dict(self.attrs),
        }


@dataclasses.dataclass
class SpanNode:
    """One node of a reconstructed span tree."""

    span: Span
    children: list["SpanNode"] = dataclasses.field(default_factory=list)


class ObsRecorder:
    """Buffers spans per trace and applies sampling at collection time."""

    def __init__(self, policy: "SamplingPolicy | None" = None):
        self.policy = policy or SamplingPolicy()
        self._spans: dict[str, list[Span]] = {}
        self._pending: dict[int, Span] = {}
        self._outcomes: dict[str, str] = {}
        self._latencies: dict[str, float] = {}
        self._links: dict[str, str] = {}
        self._decided: dict[str, str] = {}
        self._next_span = 0
        self._next_solve = 0
        self._next_batch = 0
        self._next_window = 0
        self._request: "tuple[str, list[str]] | None" = None

    # -- trace bookkeeping ----------------------------------------------

    def has_trace(self, trace_id: str) -> bool:
        return trace_id in self._spans

    def spans_of(self, trace_id: str) -> list[Span]:
        """The spans buffered so far for one trace (emission-order copy)."""
        return list(self._spans.get(trace_id, ()))

    def new_solve_trace(self, solver: str) -> str:
        """Allocate a trace id for one engine solve; when a request context
        is open (a served job mid-dispatch) the solve is linked to it."""
        trace_id = f"solve-{self._next_solve}"
        self._next_solve += 1
        self._spans.setdefault(trace_id, [])
        if self._request is not None:
            parent, children = self._request
            self._links[trace_id] = parent
            children.append(trace_id)
        return trace_id

    def new_batch_trace(self) -> str:
        trace_id = f"batch-{self._next_batch}"
        self._next_batch += 1
        self._spans.setdefault(trace_id, [])
        return trace_id

    def new_window_trace(self) -> str:
        trace_id = f"window-{self._next_window}"
        self._next_window += 1
        self._spans.setdefault(trace_id, [])
        return trace_id

    def push_request(self, trace_id: str) -> None:
        """Open a request context: solve traces begun before the matching
        :meth:`pop_request` are linked to ``trace_id``."""
        self._request = (trace_id, [])

    def pop_request(self) -> list[str]:
        """Close the request context, returning the linked solve traces."""
        if self._request is None:
            return []
        _, children = self._request
        self._request = None
        return children

    def request_trace(self) -> "str | None":
        return None if self._request is None else self._request[0]

    # -- span emission ----------------------------------------------------

    def span(
        self,
        trace_id: str,
        name: str,
        t_start: float,
        t_end: float,
        parent: "int | None" = None,
        **attrs: Any,
    ) -> int:
        """Record one complete span; returns its id (usable as a parent)."""
        span_id = self._next_span
        self._next_span += 1
        sp = Span(span_id, trace_id, parent, name, t_start, t_end, attrs)
        self._spans.setdefault(trace_id, []).append(sp)
        return span_id

    def open_span(
        self,
        trace_id: str,
        name: str,
        t_start: float,
        parent: "int | None" = None,
        **attrs: Any,
    ) -> int:
        """Begin a span whose end is not yet known (children may reference
        its id before :meth:`close_span` fills in ``t_end``)."""
        span_id = self.span(trace_id, name, t_start, t_start, parent, **attrs)
        self._pending[span_id] = self._spans[trace_id][-1]
        return span_id

    def close_span(self, span_id: int, t_end: float, **attrs: Any) -> None:
        sp = self._pending.pop(span_id, None)
        if sp is None:
            return  # already closed (idempotent: lifecycle + finally paths)
        sp.t_end = max(sp.t_start, t_end)
        if attrs:
            sp.attrs.update(attrs)

    def finish_trace(
        self,
        trace_id: str,
        outcome: str,
        latency: "float | None" = None,
    ) -> None:
        """Mark a trace finished (idempotent; first outcome wins)."""
        if trace_id in self._outcomes:
            return
        self._outcomes[trace_id] = outcome
        if latency is not None:
            self._latencies[trace_id] = float(latency)

    # -- collection --------------------------------------------------------

    def collect(self) -> "ObsRecording":
        """Apply the sampling policy to every finished, not-yet-decided
        trace; emit the kept/dropped counters; return all kept spans."""
        fresh = {
            tid: outcome
            for tid, outcome in self._outcomes.items()
            if tid not in self._decided
        }
        if fresh:
            decisions = self.policy.decide(fresh, self._latencies, self._links)
            kept_spans = dropped_spans = 0
            for tid, decision in decisions.items():
                self._decided[tid] = decision
                n = len(self._spans.get(tid, ()))
                if decision == DROPPED:
                    dropped_spans += n
                    self._spans.pop(tid, None)
                else:
                    kept_spans += n
            kept = sum(1 for d in decisions.values() if d != DROPPED)
            from repro.metrics.instrument import record_obs_sampling

            record_obs_sampling(
                kept_traces=kept,
                dropped_traces=len(decisions) - kept,
                kept_spans=kept_spans,
                dropped_spans=dropped_spans,
            )
        spans = [
            sp
            for tid, decision in self._decided.items()
            if decision != DROPPED
            for sp in self._spans.get(tid, ())
        ]
        return ObsRecording(
            spans=spans,
            outcomes={
                tid: self._outcomes[tid]
                for tid in self._decided
                if self._decided[tid] != DROPPED
            },
            decisions=dict(self._decided),
            links={
                tid: parent
                for tid, parent in self._links.items()
                if self._decided.get(tid, DROPPED) != DROPPED
            },
            latencies={
                tid: self._latencies[tid]
                for tid in self._decided
                if self._decided[tid] != DROPPED and tid in self._latencies
            },
        )


@dataclasses.dataclass
class ObsRecording:
    """The sampled output of one recorder: kept spans plus the decisions."""

    spans: list[Span]
    outcomes: dict[str, str]
    decisions: dict[str, str]
    links: dict[str, str]
    latencies: dict[str, float]

    @property
    def kept_traces(self) -> int:
        return sum(1 for d in self.decisions.values() if d != DROPPED)

    @property
    def dropped_traces(self) -> int:
        return sum(1 for d in self.decisions.values() if d == DROPPED)

    def trace_ids(self) -> list[str]:
        """Kept trace ids, stable (first-span) order."""
        seen: dict[str, None] = {}
        for sp in self.spans:
            seen.setdefault(sp.trace_id, None)
        return list(seen)

    def trace_spans(self, trace_id: str) -> list[Span]:
        return [sp for sp in self.spans if sp.trace_id == trace_id]

    def tree(self, trace_id: str) -> SpanNode:
        """Reconstruct the span tree of one trace (children by start time).

        Raises :class:`ValueError` unless the trace has exactly one root
        and every parent link resolves within the trace.
        """
        spans = self.trace_spans(trace_id)
        if not spans:
            raise ValueError(f"no spans recorded for trace {trace_id!r}")
        nodes = {sp.span_id: SpanNode(sp) for sp in spans}
        roots: list[SpanNode] = []
        for sp in spans:
            if sp.parent_id is None:
                roots.append(nodes[sp.span_id])
            elif sp.parent_id in nodes:
                nodes[sp.parent_id].children.append(nodes[sp.span_id])
            else:
                raise ValueError(
                    f"span {sp.span_id} of {trace_id!r} references parent "
                    f"{sp.parent_id} outside its trace"
                )
        if len(roots) != 1:
            raise ValueError(
                f"trace {trace_id!r} has {len(roots)} roots (want exactly 1)"
            )
        for node in nodes.values():
            node.children.sort(key=lambda n: (n.span.t_start, n.span.span_id))
        return roots[0]

    def validate(self) -> None:
        """Well-formedness of every kept trace: exactly one root, resolvable
        parents, and every child interval contained in its parent's (up to
        a float tolerance).  Raises :class:`ValueError` on violation."""
        for trace_id in self.trace_ids():
            root = self.tree(trace_id)
            stack = [root]
            while stack:
                node = stack.pop()
                for child in node.children:
                    p, c = node.span, child.span
                    tol = 1e-9 * max(1.0, abs(p.t_end), abs(c.t_end))
                    if (
                        c.t_start < p.t_start - tol
                        or c.t_end > p.t_end + tol
                    ):
                        raise ValueError(
                            f"span {c.name!r} [{c.t_start}, {c.t_end}] of "
                            f"{trace_id!r} escapes parent {p.name!r} "
                            f"[{p.t_start}, {p.t_end}]"
                        )
                    stack.append(child)

    def roots(self) -> "dict[str, Span]":
        """Trace id -> root span, for traces that parse to a single root."""
        out: dict[str, Span] = {}
        for sp in self.spans:
            if sp.parent_id is None and sp.trace_id not in out:
                out[sp.trace_id] = sp
        return out

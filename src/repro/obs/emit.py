"""Span construction for the serving and batch layers.

These builders hold every piece of span-shaped knowledge about the serve
and batch domains — trace naming (``job-<id>``, ``window-<k>``,
``batch-<k>``), the per-job tree shape, and the execute-slice breakdown —
so the façade functions in :mod:`repro.metrics.instrument` stay one-line
forwards and the emitting layers (which may not import ``repro.obs``; the
architecture lint enforces it) never see a recorder.

Everything here runs **only when a recorder is installed**: the façade's
``active()`` check gates each call, so the heavy work (event
classification against refactor intervals, lane replays) costs nothing
when observation is off.  Jobs are duck-typed (``job_id`` / ``submit_time``
/ ``dispatch_time`` / ``finish_time`` / ...) to keep this module free of
serve imports.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.obs.attribution import execute_breakdown
from repro.obs.span import ObsRecorder


def job_trace_id(job_id: int) -> str:
    return f"job-{job_id}"


def _job_root(rec: ObsRecorder, trace_id: str, job: Any, t_end: float) -> int:
    return rec.span(
        trace_id,
        "serve.job",
        job.submit_time,
        t_end,
        job_id=job.job_id,
        method=job.method,
        priority=job.priority,
        clock="serve",
    )


def emit_job_rejected(rec: ObsRecorder, job: Any) -> None:
    trace_id = job_trace_id(job.job_id)
    if rec.has_trace(trace_id):
        return
    t_end = job.finish_time if job.finish_time is not None else job.submit_time
    root = _job_root(rec, trace_id, job, t_end)
    rec.span(
        trace_id, "serve.submit", job.submit_time, job.submit_time, parent=root
    )
    rec.span(
        trace_id, "serve.reject", t_end, t_end, parent=root,
        reason=job.reject_reason,
    )
    rec.finish_trace(trace_id, "rejected", latency=t_end - job.submit_time)


def emit_job_expired(rec: ObsRecorder, job: Any) -> None:
    trace_id = job_trace_id(job.job_id)
    if rec.has_trace(trace_id):
        return
    t_end = job.finish_time if job.finish_time is not None else job.submit_time
    root = _job_root(rec, trace_id, job, t_end)
    rec.span(
        trace_id, "serve.submit", job.submit_time, job.submit_time, parent=root
    )
    rec.span(trace_id, "serve.admit", job.submit_time, job.submit_time, parent=root)
    rec.span(trace_id, "queue.wait", job.submit_time, t_end, parent=root)
    rec.span(trace_id, "serve.expire", t_end, t_end, parent=root)
    rec.finish_trace(trace_id, "expired", latency=t_end - job.submit_time)


def emit_job_executed(
    rec: ObsRecorder,
    job: Any,
    solve_ids: Sequence[str],
    events: Sequence[Any],
    launch_overhead: float,
    own_seconds: float,
    stretch: float,
) -> None:
    """The full lifecycle tree of one completed job.

    ``own_seconds`` is the job's standalone timeline total and ``stretch``
    the window's contention factor, so the execute slice opens at
    ``finish - own_seconds * stretch`` — exactly the accounting
    ``LPServer._run_window`` used to place the finish time.
    """
    trace_id = job_trace_id(job.job_id)
    if rec.has_trace(trace_id):
        return
    finish = job.finish_time
    root = _job_root(rec, trace_id, job, finish)
    rec.span(
        trace_id, "serve.submit", job.submit_time, job.submit_time, parent=root
    )
    rec.span(trace_id, "serve.admit", job.submit_time, job.submit_time, parent=root)
    rec.span(
        trace_id, "queue.wait", job.submit_time, job.dispatch_time, parent=root
    )
    exec_start = finish - own_seconds * stretch
    rec.span(
        trace_id, "placement", job.dispatch_time, exec_start, parent=root,
        device=job.device,
    )
    refactor_intervals = [
        (sp.t_start, sp.t_end)
        for solve_id in solve_ids
        for sp in rec.spans_of(solve_id)
        if sp.name == "engine.refactor"
    ]
    breakdown = execute_breakdown(events, launch_overhead, refactor_intervals)
    rec.span(
        trace_id, "device.execute", exec_start, finish, parent=root,
        device=job.device,
        own_seconds=own_seconds,
        stretch=stretch,
        warm_started=bool(job.warm_started),
        solves=list(solve_ids),
        **breakdown,
    )
    missed = job.deadline is not None and finish > job.deadline
    rec.finish_trace(
        trace_id,
        "deadline-missed" if missed else "completed",
        latency=finish - job.submit_time,
    )


def emit_dispatch_window(
    rec: ObsRecorder,
    device: str,
    t_start: float,
    outcome: Any,
    n_jobs: int,
) -> None:
    """One dispatch window priced onto a fleet device (its own trace)."""
    trace_id = rec.new_window_trace()
    makespan = float(outcome.makespan_seconds)
    root = rec.span(
        trace_id, "dispatch.window", t_start, t_start + makespan,
        device=device, jobs=n_jobs, clock="serve",
        binding=getattr(outcome, "binding_resource", None),
    )
    for resource, seconds in getattr(outcome, "bounds", {}).items():
        rec.span(
            trace_id, f"bound.{resource}", t_start, t_start + seconds,
            parent=root,
        )
    rec.finish_trace(trace_id, "window", latency=makespan)


def emit_batch_schedule(
    rec: ObsRecorder,
    schedule: str,
    outcome: Any,
    timelines: Sequence[Any],
) -> None:
    """One priced batch: the schedule root plus per-lane LP segments,
    replaying the round-robin lane assignment and contention stretch the
    scheduler's makespan implies (solve-order cumulative per lane)."""
    trace_id = rec.new_batch_trace()
    makespan = float(outcome.makespan_seconds)
    n_streams = max(1, int(getattr(outcome, "n_streams", 1)))
    root = rec.span(
        trace_id, "batch.schedule", 0.0, makespan,
        schedule=schedule, lps=len(timelines), streams=n_streams,
        binding=getattr(outcome, "binding_resource", None), clock="batch",
    )
    lane_cum = [0.0] * n_streams
    raw: list[tuple[Any, int, float]] = []
    for pos, tl in enumerate(timelines):
        lane = pos % n_streams
        raw.append((tl, lane, lane_cum[lane]))
        lane_cum[lane] += tl.total_seconds
    max_path = max(lane_cum) if lane_cum else 0.0
    stretch = makespan / max_path if max_path > 0.0 else 1.0
    for tl, lane, start in raw:
        rec.span(
            trace_id, "batch.segment",
            start * stretch, (start + tl.total_seconds) * stretch,
            parent=root, lane=lane, lp=tl.index,
            kernels=tl.kernel_launches,
        )
    rec.finish_trace(trace_id, "batch", latency=makespan)

"""Request-scoped span tracing on the simulated clock (``repro.obs``).

Where :mod:`repro.trace` records one solve iteration-by-iteration and
:mod:`repro.metrics` counts fleet-wide aggregates, this layer connects
them: every *request* (a served job, one engine solve, one batch schedule)
gets a tree of named **spans** — ``serve.job → queue.wait → placement →
device.execute``, ``engine.solve → engine.phase / engine.refactor /
pdhg.epoch``, ``batch.schedule → batch.segment`` — with parent/child
links and attributes, all in modeled seconds.

Recording is opt-in and non-perturbing, the same contract the trace and
metrics layers pin: with no recorder installed every emission point is one
``is None`` check inside the :mod:`repro.metrics.instrument` /
:mod:`repro.engine.hooks` façades (the only modules allowed to emit;
``make lint`` keeps backends and serve code from importing ``repro.obs``),
and with one installed, solver and serving results are bit-identical.

Head sampling plus always-keep tail exemplars (rejected / expired /
deadline-missed jobs, errored solves, the p99-slowest tail) decide which
traces survive :meth:`~repro.obs.span.ObsRecorder.collect`; the decision
counts land in the metrics registry (``repro_obs_spans_kept_total`` /
``..._dropped_total``) so the regression gate pins span volume.

Quickstart::

    from repro import obs
    from repro.obs import attribute, render_tree
    from repro.serve import ServeConfig, serve_trace, synthetic_trace

    with obs.observing() as rec:
        report = serve_trace(synthetic_trace(n_jobs=8, seed=7),
                             ServeConfig(n_devices=2))
    recording = rec.collect()
    print(render_tree(recording, recording.trace_ids()[0]))
    print(attribute(recording).render())      # == report.attribution()

``python -m repro explain`` wraps exactly this pipeline; the O1 experiment
(EXPERIMENTS.md) runs it across fleets and problem sizes.
"""

from __future__ import annotations

from repro.obs.attribution import (
    AttributionReport,
    BUCKETS,
    JobAttribution,
    attribute,
    execute_breakdown,
)
from repro.obs.context import active, disable, enable, enabled, observing
from repro.obs.export import (
    OBS_JSON_SCHEMA,
    chrome_span_events,
    from_json,
    render_tree,
    serve_chrome_trace,
    to_json,
)
from repro.obs.sampling import SamplingPolicy, head_keep
from repro.obs.span import ObsRecorder, ObsRecording, Span, SpanNode

__all__ = [
    "AttributionReport",
    "BUCKETS",
    "JobAttribution",
    "OBS_JSON_SCHEMA",
    "ObsRecorder",
    "ObsRecording",
    "SamplingPolicy",
    "Span",
    "SpanNode",
    "active",
    "attribute",
    "chrome_span_events",
    "disable",
    "enable",
    "enabled",
    "execute_breakdown",
    "from_json",
    "head_keep",
    "observing",
    "render_tree",
    "serve_chrome_trace",
    "to_json",
]

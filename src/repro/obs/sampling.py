"""Sampling policy: which request traces an :class:`ObsRecorder` keeps.

Two mechanisms, composed:

- **Head sampling** — a deterministic per-trace coin flip taken from a hash
  of the trace id (no RNG object, so recording can never perturb solver
  random state).  ``head_rate=1.0`` (the default) keeps everything.
- **Tail exemplars** — traces whose *outcome* makes them diagnostic gold
  are always kept regardless of the coin flip: rejected / expired /
  deadline-missed jobs, errored solves, and the slowest tail (latency at or
  above the ``tail_slowest_quantile`` of completed traces in the run).

Decisions are pure functions of (trace id, outcome, latency distribution),
so a replayed run keeps exactly the same spans — the property tests rely
on that determinism.
"""

from __future__ import annotations

import dataclasses
import zlib
from typing import Mapping, Sequence

#: Outcomes always kept as tail exemplars, independent of head sampling.
TAIL_OUTCOMES = frozenset({"rejected", "expired", "deadline-missed", "error"})

#: Decision labels (the ``reason`` facet of the kept/dropped counters).
KEEP_HEAD = "head"
KEEP_TAIL_OUTCOME = "tail-outcome"
KEEP_TAIL_SLOW = "tail-slow"
KEEP_LINKED = "linked"
DROPPED = "dropped"


def head_keep(trace_id: str, rate: float) -> bool:
    """Deterministic head-sampling flip: hash the trace id into [0, 1)."""
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    return (zlib.crc32(trace_id.encode("utf-8")) & 0xFFFFFFFF) / 2**32 < rate


@dataclasses.dataclass(frozen=True)
class SamplingPolicy:
    """Head rate + tail-exemplar rules (see module docstring)."""

    head_rate: float = 1.0
    tail_slowest_quantile: float = 0.99
    tail_outcomes: frozenset = TAIL_OUTCOMES

    def decide(
        self,
        outcomes: Mapping[str, str],
        latencies: Mapping[str, float],
        links: Mapping[str, str],
    ) -> dict[str, str]:
        """Per-trace keep/drop decisions for one finished run.

        ``outcomes`` maps trace id -> outcome label; ``latencies`` holds
        end-to-end seconds where known; ``links`` maps a child trace (e.g.
        an engine solve) to the request trace that spawned it — linked
        traces inherit the parent's decision so a kept job never loses its
        solve spans.  Returns trace id -> decision label.
        """
        threshold = _slow_threshold(
            [
                latencies[tid]
                for tid, outcome in outcomes.items()
                if outcome not in self.tail_outcomes and tid in latencies
            ],
            self.tail_slowest_quantile,
        )
        decisions: dict[str, str] = {}
        for tid, outcome in outcomes.items():
            if tid in links:
                continue  # second pass: inherit
            if outcome in self.tail_outcomes:
                decisions[tid] = KEEP_TAIL_OUTCOME
            elif (
                threshold is not None
                and latencies.get(tid, float("-inf")) >= threshold
            ):
                decisions[tid] = KEEP_TAIL_SLOW
            elif head_keep(tid, self.head_rate):
                decisions[tid] = KEEP_HEAD
            else:
                decisions[tid] = DROPPED
        for tid, parent in links.items():
            if tid not in outcomes:
                continue
            parent_decision = decisions.get(parent)
            if parent_decision is not None and parent_decision != DROPPED:
                decisions[tid] = KEEP_LINKED
            elif parent_decision == DROPPED:
                decisions[tid] = DROPPED
            else:  # parent unknown (already collected or foreign): sample
                decisions[tid] = (
                    KEEP_HEAD if head_keep(tid, self.head_rate) else DROPPED
                )
        return decisions


def _slow_threshold(
    latencies: Sequence[float], quantile: float
) -> "float | None":
    """Latency at the given quantile (inclusive; None when no data)."""
    if not latencies:
        return None
    ordered = sorted(latencies)
    idx = max(0, min(len(ordered) - 1, int(quantile * len(ordered))))
    return ordered[idx]

"""Exporters for span recordings: ASCII tree, stable JSON, Chrome events.

Three renderings of the same :class:`~repro.obs.span.ObsRecording`:

- :func:`render_tree` — an indented per-trace span tree for terminals
  (what ``python -m repro explain`` prints);
- :func:`to_json` / :func:`from_json` — a stable, versioned JSON schema
  (sorted keys, spans ordered by id) for artifacts and diffing;
- :func:`chrome_span_events` — Chrome trace-event **async** spans
  (``"b"``/``"e"`` pairs) plus **flow** arrows (``"s"``/``"f"``) along
  parent→child links, designed to merge with the four synchronous tracks
  :func:`repro.trace.merged_chrome_trace` already emits.  Engine-solve
  spans share the per-solve device clock, so merged with that solve's
  kernel timeline they line up with the kernels they launched.

:func:`serve_chrome_trace` exports a whole serving replay: job lifecycle
spans on the serve clock, with each job's engine-solve spans rebased into
its ``device.execute`` slice (offset to the slice start, scaled by the
window's contention stretch) so queue/placement/solve phases read off one
timeline in ``chrome://tracing``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.obs.span import ObsRecording, Span, SpanNode

#: Schema tag of the JSON export.
OBS_JSON_SCHEMA = "repro-obs/v1"

#: Track id for span events merged into the solver/kernel Chrome trace
#: (the synchronous tracks use tids 0-3; see :mod:`repro.trace.chrome`).
TID_SPANS = 4


# ---------------------------------------------------------------------------
# ASCII tree
# ---------------------------------------------------------------------------


def _format_attrs(attrs: dict[str, Any]) -> str:
    if not attrs:
        return ""
    parts = []
    for key in sorted(attrs):
        val = attrs[key]
        if isinstance(val, float):
            parts.append(f"{key}={val:.3g}")
        else:
            parts.append(f"{key}={val}")
    return "  {" + ", ".join(parts) + "}"


def _render_node(node: SpanNode, prefix: str, last: bool, out: list[str]) -> None:
    sp = node.span
    connector = "`-- " if last else "|-- "
    out.append(
        f"{prefix}{connector}{sp.name}  "
        f"[{sp.t_start * 1e3:.4f}ms +{sp.duration * 1e3:.4f}ms]"
        f"{_format_attrs(sp.attrs)}"
    )
    child_prefix = prefix + ("    " if last else "|   ")
    for i, child in enumerate(node.children):
        _render_node(child, child_prefix, i == len(node.children) - 1, out)


def render_tree(
    recording: ObsRecording, trace_id: "str | None" = None
) -> str:
    """Indented span tree of one trace (or all kept traces)."""
    trace_ids = [trace_id] if trace_id is not None else recording.trace_ids()
    out: list[str] = []
    for tid in trace_ids:
        root = recording.tree(tid)
        sp = root.span
        outcome = recording.outcomes.get(tid, "?")
        out.append(
            f"{tid} ({outcome}): {sp.name}  "
            f"[{sp.t_start * 1e3:.4f}ms +{sp.duration * 1e3:.4f}ms]"
            f"{_format_attrs(sp.attrs)}"
        )
        for i, child in enumerate(root.children):
            _render_node(child, "", i == len(root.children) - 1, out)
    return "\n".join(out)


# ---------------------------------------------------------------------------
# stable JSON
# ---------------------------------------------------------------------------


def to_json(recording: ObsRecording, target: "str | Path | None" = None) -> str:
    """Serialise the recording (stable ordering; schema-tagged)."""
    doc = {
        "schema": OBS_JSON_SCHEMA,
        "spans": [
            sp.to_dict()
            for sp in sorted(recording.spans, key=lambda s: s.span_id)
        ],
        "outcomes": recording.outcomes,
        "decisions": recording.decisions,
        "links": recording.links,
        "latencies": recording.latencies,
    }
    text = json.dumps(doc, sort_keys=True)
    if target is not None:
        Path(target).write_text(text)
    return text


def from_json(data: "str | dict") -> ObsRecording:
    """Parse a :func:`to_json` document back into a recording."""
    doc = json.loads(data) if isinstance(data, str) else data
    if doc.get("schema") != OBS_JSON_SCHEMA:
        raise ValueError(
            f"unsupported obs JSON schema {doc.get('schema')!r} "
            f"(want {OBS_JSON_SCHEMA!r})"
        )
    spans = [
        Span(
            span_id=rec["span_id"],
            trace_id=rec["trace_id"],
            parent_id=rec["parent_id"],
            name=rec["name"],
            t_start=rec["t_start"],
            t_end=rec["t_end"],
            attrs=dict(rec.get("attrs", {})),
        )
        for rec in doc["spans"]
    ]
    return ObsRecording(
        spans=spans,
        outcomes=dict(doc.get("outcomes", {})),
        decisions=dict(doc.get("decisions", {})),
        links=dict(doc.get("links", {})),
        latencies=dict(doc.get("latencies", {})),
    )


# ---------------------------------------------------------------------------
# Chrome trace events
# ---------------------------------------------------------------------------


def _async_pair(
    sp: Span, *, pid: int, tid: int, scale: float = 1.0, offset: float = 0.0
) -> list[dict[str, Any]]:
    ts0 = (offset + sp.t_start * scale) * 1e6
    ts1 = (offset + sp.t_end * scale) * 1e6
    ident = f"{sp.trace_id}/{sp.span_id}"
    args = {"trace_id": sp.trace_id, **sp.attrs}
    return [
        {
            "name": sp.name, "cat": "span", "ph": "b", "id": ident,
            "ts": ts0, "pid": pid, "tid": tid, "args": args,
        },
        {
            "name": sp.name, "cat": "span", "ph": "e", "id": ident,
            "ts": ts1, "pid": pid, "tid": tid,
        },
    ]


def _flow_pair(
    parent: Span, child: Span, *, pid: int, tid: int,
    scale: float = 1.0, offset: float = 0.0,
) -> list[dict[str, Any]]:
    ident = f"{parent.trace_id}/{parent.span_id}->{child.span_id}"
    return [
        {
            "name": "link", "cat": "span-flow", "ph": "s", "id": ident,
            "ts": (offset + parent.t_start * scale) * 1e6,
            "pid": pid, "tid": tid,
        },
        {
            "name": "link", "cat": "span-flow", "ph": "f", "bp": "e",
            "id": ident, "ts": (offset + child.t_start * scale) * 1e6,
            "pid": pid, "tid": tid,
        },
    ]


def chrome_span_events(
    recording: ObsRecording,
    trace_ids: "Iterable[str] | None" = None,
    *,
    pid: int = 0,
    tid: int = TID_SPANS,
    scale: float = 1.0,
    offset: float = 0.0,
) -> list[dict[str, Any]]:
    """Async ``b``/``e`` events for every span of the selected traces, plus
    ``s``/``f`` flow arrows along parent→child links.  ``scale``/``offset``
    rebase span times (seconds) before the microsecond conversion."""
    selected = set(
        recording.trace_ids() if trace_ids is None else trace_ids
    )
    by_id = {sp.span_id: sp for sp in recording.spans}
    events: list[dict[str, Any]] = []
    for sp in recording.spans:
        if sp.trace_id not in selected:
            continue
        events.extend(
            _async_pair(sp, pid=pid, tid=tid, scale=scale, offset=offset)
        )
        parent = by_id.get(sp.parent_id) if sp.parent_id is not None else None
        if parent is not None:
            events.extend(
                _flow_pair(
                    parent, sp, pid=pid, tid=tid, scale=scale, offset=offset
                )
            )
    return events


def serve_chrome_trace(
    recording: ObsRecording,
    target: "str | Path | None" = None,
    *,
    pid: int = 0,
) -> str:
    """One Chrome trace for a whole serving replay.

    Job traces (roots named ``serve.job``) are emitted on the serve clock.
    Each job's linked engine-solve traces are rebased into its
    ``device.execute`` slice — offset to the slice start and scaled by the
    recorded contention ``stretch`` — and connected with a flow arrow, so
    a job's queue wait, placement and solve phases line up on one axis.
    """
    events: list[dict[str, Any]] = [
        {
            "name": "thread_name", "ph": "M", "pid": pid, "tid": TID_SPANS,
            "args": {"name": "request spans"},
        }
    ]
    roots = recording.roots()
    # Trace id -> (execute span, owning job trace) for solve rebasing.
    rebase: dict[str, Span] = {}
    for sp in recording.spans:
        if sp.name == "device.execute":
            for solve_id in sp.attrs.get("solves", ()):
                rebase[solve_id] = sp
    for trace_id in recording.trace_ids():
        parent = recording.links.get(trace_id)
        if parent is None:
            events.extend(chrome_span_events(recording, [trace_id], pid=pid))
            continue
        execute = rebase.get(trace_id)
        if execute is None:  # linked but unplaced: emit unrebased
            events.extend(chrome_span_events(recording, [trace_id], pid=pid))
            continue
        scale = float(execute.attrs.get("stretch", 1.0))
        events.extend(
            chrome_span_events(
                recording, [trace_id], pid=pid,
                scale=scale, offset=execute.t_start,
            )
        )
        root = roots.get(trace_id)
        if root is not None:
            ident = f"{parent}->{trace_id}"
            events.append(
                {
                    "name": "dispatch", "cat": "span-flow", "ph": "s",
                    "id": ident, "ts": execute.t_start * 1e6,
                    "pid": pid, "tid": TID_SPANS,
                }
            )
            events.append(
                {
                    "name": "dispatch", "cat": "span-flow", "ph": "f",
                    "bp": "e", "id": ident,
                    "ts": (execute.t_start + root.t_start * scale) * 1e6,
                    "pid": pid, "tid": TID_SPANS,
                }
            )
    text = json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})
    if target is not None:
        Path(target).write_text(text)
    return text

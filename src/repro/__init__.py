"""repro — reproduction of "Linear optimization on modern GPUs" (IPDPS 2009).

A production-quality Python library implementing the paper's GPU revised
simplex method on a simulated SIMT (CUDA-class) device, together with every
substrate the paper depends on:

- ``repro.gpu``       — simulated GPU: device, memory spaces, kernels, warps,
  an analytic cost model calibrated to GT200-class hardware, device BLAS,
  parallel reductions and sparse kernels.
- ``repro.sparse``    — COO/CSR/CSC sparse matrix formats and operations.
- ``repro.lp``        — LP modelling: general-form problems, standard-form
  conversion, scaling, MPS/LP readers, workload generators.
- ``repro.simplex``   — CPU baselines: dense tableau simplex and revised
  simplex with several pricing rules and basis-update strategies.
- ``repro.core``      — the paper's contribution: the GPU revised simplex
  solver (and a GPU tableau simplex design point) with per-kernel timing.
- ``repro.batch``     — batched multi-LP solving: many LPs on one shared
  simulated device under sequential or concurrent (stream-interleaved)
  schedules, plus warm-started re-optimization chains.
- ``repro.trace``     — opt-in per-iteration solver tracing: one record per
  pivot with decision metadata and per-section modeled seconds, mergeable
  with the device timeline into a Chrome trace-event JSON.
- ``repro.bench``     — the benchmark harness that regenerates every table
  and figure of the paper's evaluation.

Quickstart::

    from repro import LPProblem, solve

    lp = LPProblem.minimize(
        c=[-3.0, -5.0],
        a_ub=[[1.0, 0.0], [0.0, 2.0], [3.0, 2.0]],
        b_ub=[4.0, 12.0, 18.0],
    )
    result = solve(lp, method="gpu-revised")
    print(result.status, result.objective, result.x)
"""

from repro._version import __version__
from repro.lp.problem import LPProblem, ConstraintSense, Bounds
from repro.lp.generators import (
    random_dense_lp,
    random_sparse_lp,
    transportation_lp,
    klee_minty_lp,
)
from repro.solve import solve, available_methods
from repro.batch import solve_batch, solve_batch_chain, BatchResult
from repro.status import SolveStatus
from repro.result import SolveResult
from repro.trace import SolveTrace, TraceRecord, merged_chrome_trace
from repro import metrics

__all__ = [
    "__version__",
    "metrics",
    "LPProblem",
    "ConstraintSense",
    "Bounds",
    "SolveStatus",
    "SolveResult",
    "SolveTrace",
    "TraceRecord",
    "merged_chrome_trace",
    "BatchResult",
    "solve",
    "solve_batch",
    "solve_batch_chain",
    "available_methods",
    "random_dense_lp",
    "random_sparse_lp",
    "transportation_lp",
    "klee_minty_lp",
]

"""Declarative method table: every solve method, its factory and its flags.

``repro.solve`` dispatches from this table; capability checks (warm start,
shared simulated device) and their error messages are derived from the
flags instead of being hand-rolled per method, and ``repro.batch`` derives
its ``GPU_METHODS`` / ``WARM_START_METHODS`` sets from the same source so
the three layers cannot drift apart.

The table lives here — below :mod:`repro.solve`, above the solver modules —
so both the façade and the batch layer can import it without a cycle;
solver classes themselves are imported lazily inside each factory.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # avoids the repro.simplex package-import cycle
    from repro.simplex.options import SolverOptions


@dataclasses.dataclass(frozen=True)
class MethodSpec:
    """One row of the method table.

    ``factory(options, device)`` builds a fresh solver; ``device`` is only
    passed through when ``supports_device`` (the façade rejects it
    otherwise, so host factories simply ignore the argument).
    """

    name: str
    factory: Callable[[SolverOptions, Any], Any]
    #: Honors ``solve(..., initial_basis=...)`` (drives chain warm starts).
    supports_warm_start: bool = False
    #: Runs on the simulated device and accepts ``solve(..., device=...)``
    #: (drives batch device sharing).
    supports_device: bool = False
    #: Emits its device work through :mod:`repro.gpu.plan` sections and
    #: honors ``SolverOptions.fusion`` (kernel-fusion lowering).
    supports_fusion: bool = False
    #: Honors ``SolverOptions.precision="mixed"`` — fp32 device compute
    #: with fp64 iterative-refinement correction at extraction.
    supports_mixed_precision: bool = False


def _tableau(options: SolverOptions, device: Any):
    from repro.simplex.tableau import TableauSimplexSolver

    return TableauSimplexSolver(options)


def _revised(options: SolverOptions, device: Any):
    from repro.simplex.revised_cpu import RevisedSimplexSolver

    return RevisedSimplexSolver(options)


def _revised_bounded(options: SolverOptions, device: Any):
    from repro.simplex.bounded import BoundedRevisedSimplexSolver

    return BoundedRevisedSimplexSolver(options)


def _dual(options: SolverOptions, device: Any):
    from repro.simplex.dual import DualSimplexSolver

    return DualSimplexSolver(options)


def _revised_sparse(options: SolverOptions, device: Any):
    from repro.simplex.revised_sparse import SparseRevisedSimplexSolver

    return SparseRevisedSimplexSolver(options)


def _gpu_revised(options: SolverOptions, device: Any):
    from repro.core.gpu_revised_simplex import GpuRevisedSimplex

    return GpuRevisedSimplex(options=options, device=device)


def _gpu_revised_bounded(options: SolverOptions, device: Any):
    from repro.core.gpu_bounded_simplex import GpuBoundedRevisedSimplex

    return GpuBoundedRevisedSimplex(options=options, device=device)


def _gpu_revised_sparse(options: SolverOptions, device: Any):
    from repro.core.gpu_sparse_simplex import GpuSparseRevisedSimplex

    return GpuSparseRevisedSimplex(options=options, device=device)


def _gpu_tableau(options: SolverOptions, device: Any):
    from repro.core.gpu_tableau_simplex import GpuTableauSimplex

    return GpuTableauSimplex(options=options, device=device)


def _pdlp(options: SolverOptions, device: Any):
    from repro.firstorder.cpu import PdlpSolver

    return PdlpSolver(options)


def _gpu_pdlp(options: SolverOptions, device: Any):
    from repro.firstorder.gpu import GpuPdlpSolver

    return GpuPdlpSolver(options=options, device=device)


METHODS: "dict[str, MethodSpec]" = {
    spec.name: spec
    for spec in (
        MethodSpec("tableau", _tableau),
        MethodSpec("revised", _revised, supports_warm_start=True),
        MethodSpec("revised-bounded", _revised_bounded),
        MethodSpec("revised-sparse", _revised_sparse, supports_warm_start=True),
        MethodSpec("dual", _dual, supports_warm_start=True),
        MethodSpec(
            "gpu-revised", _gpu_revised,
            supports_warm_start=True, supports_device=True,
            supports_fusion=True, supports_mixed_precision=True,
        ),
        MethodSpec(
            "gpu-revised-sparse", _gpu_revised_sparse,
            supports_warm_start=True, supports_device=True,
            supports_fusion=True,
        ),
        MethodSpec(
            "gpu-revised-bounded", _gpu_revised_bounded,
            supports_device=True, supports_fusion=True,
        ),
        MethodSpec(
            "gpu-tableau", _gpu_tableau,
            supports_device=True, supports_fusion=True,
            supports_mixed_precision=True,
        ),
        MethodSpec("pdlp", _pdlp),
        MethodSpec(
            "gpu-pdlp", _gpu_pdlp,
            supports_device=True, supports_fusion=True,
        ),
    )
}


def warm_start_methods() -> frozenset:
    """Method names that honor ``initial_basis`` (chain-capable)."""
    return frozenset(n for n, s in METHODS.items() if s.supports_warm_start)


def device_methods() -> frozenset:
    """Method names that run on (and can share) the simulated device."""
    return frozenset(n for n, s in METHODS.items() if s.supports_device)


def fusion_methods() -> frozenset:
    """Method names whose backends lower through plan sections and honor
    ``SolverOptions.fusion``."""
    return frozenset(n for n, s in METHODS.items() if s.supports_fusion)


def mixed_precision_methods() -> frozenset:
    """Method names that honor ``SolverOptions.precision="mixed"``."""
    return frozenset(
        n for n, s in METHODS.items() if s.supports_mixed_precision
    )

"""The shared solver-engine layer behind every simplex method.

The paper's algorithm is one method on two machines; this package makes the
code match that shape.  It owns everything a solve has in common —

- the **lifecycle**: phase-1/phase-2 driving, status mapping, the
  infeasibility verdict, artificial drive-out sequencing and the
  ``SolveResult`` assembly (:func:`run_solve` in
  :mod:`repro.engine.lifecycle`);
- the **observer protocol**: trace records and metrics counters are
  emitted through :class:`SolveHooks` / the lifecycle finish path only, so
  backends contain zero instrumentation plumbing
  (:mod:`repro.engine.hooks`);
- the **method table**: a declarative :class:`MethodSpec` registry with
  warm-start/device capability flags that ``repro.solve`` and
  ``repro.batch`` both dispatch from (:mod:`repro.engine.registry`);

while each of the seven methods is a thin
:class:`~repro.engine.backend.SolverBackend` implementing only its own
numerics (state preparation, the per-phase pricing/ratio/pivot loop,
solution read-back).  The refactor is behaviour-preserving by construction
and by test: ``tests/test_engine_golden.py`` pins statuses, objectives,
pivot sequences and modeled seconds bit-for-bit against a committed
fixture for all methods.

``rule_label`` is re-exported here so backends can label pricing rules in
trace records without importing :mod:`repro.trace` themselves.
"""

from repro.engine.backend import SolverBackend, attach_standard_solution
from repro.engine.hooks import SolveHooks
from repro.engine.lifecycle import run_solve
from repro.engine.registry import (
    METHODS,
    MethodSpec,
    device_methods,
    warm_start_methods,
)
from repro.trace import rule_label

__all__ = [
    "METHODS",
    "MethodSpec",
    "SolveHooks",
    "SolverBackend",
    "attach_standard_solution",
    "device_methods",
    "rule_label",
    "run_solve",
    "warm_start_methods",
]

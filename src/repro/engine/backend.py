"""The narrow interface a simplex method implements to run on the engine.

The engine owns the *lifecycle* — the phase-1/phase-2 driver, status
mapping, the phase-1 feasibility verdict, result assembly and observer
wiring (:func:`repro.engine.lifecycle.run_solve`).  A backend owns the
*method*: how state is prepared, how a phase's iteration loop prices,
ratio-tests and pivots, and how the optimal solution is read back.  The
split keeps the seven methods' numerics byte-for-byte intact (their inner
loops differ structurally: eta files vs Gauss–Jordan tableaus, one- vs
three-way ratio tests, primal vs dual pivoting) while the surrounding
boilerplate that used to be cloned per solver lives exactly once.

Lifecycle call order (see :func:`~repro.engine.lifecycle.run_solve`)::

    begin(problem, warm_hint)        # build state; may short-circuit
    run_phase(1)                     # iff self.needs_phase1
    phase1_objective()               #   on phase-1 optimality
    drive_out_artificials()          #   when feasible
    run_phase(2)
    timing(wall) / standard_extras / extract / finalize_timing
    cleanup()                        # always (finally)
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.result import SolveResult, TimingStats
from repro.status import SolveStatus

if TYPE_CHECKING:  # avoids the repro.simplex package-import cycle
    from repro.simplex.common import PreparedLP


class SolverBackend:
    """Base class for engine backends (one per solve method).

    Subclasses must set the class attribute ``name`` and implement
    :meth:`begin`, :meth:`run_phase`, :meth:`timing` and :meth:`extract`;
    phase-1 capable backends also implement :meth:`phase1_objective` and
    :meth:`drive_out_artificials`.  ``begin`` must populate ``self.prep``,
    ``self.stats``, ``self.needs_phase1`` and ``self.phase1_feas_tol``.
    """

    name: str = "?"

    #: Whether ``solve(..., initial_basis_hint=...)`` is honored.  The
    #: engine rejects a hint passed to a backend that does not opt in, so a
    #: direct caller cannot have one silently ignored.
    accepts_warm_start: bool = False

    # Populated by the lifecycle before begin() runs.
    hooks = None

    # Populated by begin().
    prep: "PreparedLP"
    stats = None
    needs_phase1: bool = False
    phase1_feas_tol: float = 0.0

    # -- public entry ----------------------------------------------------

    def solve(self, problem, initial_basis_hint: "np.ndarray | None" = None):
        """Run the full engine lifecycle for this method."""
        from repro.engine.lifecycle import run_solve

        return run_solve(self, problem, warm_hint=initial_basis_hint)

    # -- lifecycle interface ---------------------------------------------

    def begin(self, problem, warm_hint) -> "SolveResult | None":
        """Prepare all solver state up to the first phase iteration.

        Returning a finished :class:`SolveResult` short-circuits the
        lifecycle (the dual method's primal fallback); returning ``None``
        proceeds to the phase driver.
        """
        raise NotImplementedError

    def run_phase(self, phase: int) -> "tuple[SolveStatus, int]":
        """Run one phase's iteration loop; returns (status, iterations)."""
        raise NotImplementedError

    def phase1_objective(self) -> float:
        """The phase-1 objective at phase-1 optimality (Σ artificials)."""
        raise NotImplementedError

    def drive_out_artificials(self) -> None:
        """Pivot zero-valued basic artificials out before phase 2."""
        raise NotImplementedError

    def timing(self, wall_seconds: float) -> TimingStats:
        """Assemble the modeled-time accounting for the finished solve."""
        raise NotImplementedError

    def standard_extras(self, result: SolveResult) -> None:
        """Attach method-specific ``result.extra`` entries (optional)."""

    def extract(self, result: SolveResult) -> None:
        """Populate x / objective / residuals / basis on OPTIMAL."""
        raise NotImplementedError

    def finalize_timing(self, result: SolveResult) -> None:
        """Last-moment timing resync (GPU solution download; optional)."""

    def cleanup(self) -> None:
        """Release per-solve resources; runs on every exit path."""


def attach_standard_solution(
    result: SolveResult, prep: "PreparedLP", basis: np.ndarray, beta: np.ndarray
) -> None:
    """The shared OPTIMAL extraction: solution, residuals, basis handles
    and the optimality certificate (used by every non-bounded backend)."""
    from repro.simplex.common import extract_solution

    x, objective, x_std = extract_solution(prep, basis, beta)
    result.x = x
    result.objective = objective
    result.residuals = SolveResult.compute_residuals(prep.std.a, prep.std.b, x_std)
    result.extra["basis"] = basis.copy()
    result.extra["x_std"] = x_std
    from repro.lp.postsolve import attach_certificate

    attach_certificate(result, prep)

"""The engine's observer protocol: one gateway for solver instrumentation.

Backends never import :mod:`repro.trace`, :mod:`repro.metrics` or
:mod:`repro.obs` (a lint under ``tools/`` enforces it).  Instead the
lifecycle hands every backend a :class:`SolveHooks` and the backend

- calls :meth:`SolveHooks.arm` once, at the exact point its hand-rolled
  tracer used to be constructed (the collector snapshots the modeled clock
  at construction, so the arming point is part of the bit-identical trace
  contract),
- emits iteration events through :meth:`SolveHooks.record`, and
- wraps notable intervals (basis refactorizations) in
  :meth:`SolveHooks.span`.

Two observer backends ride on those calls:

- **iteration tracing** (``SolverOptions.trace``) — the historical
  :class:`~repro.trace.TraceCollector` contract, unchanged;
- **span recording** (``repro.obs``) — when a recorder is installed,
  ``arm`` opens an ``engine.solve`` request trace on the solve-local
  modeled clock (linked to the serving job that spawned it, if any), the
  lifecycle adds phase spans, ``span`` adds refactorization spans, and
  ``record(event="restart")`` closes one ``pdhg.epoch`` per first-order
  restart.

When both are off every call is a no-op and nothing observer-related is
even imported — the zero-overhead-when-off guarantee lives here, in one
place, instead of being re-proved per solver.  Metrics counters are
emitted by the lifecycle's finish path
(:func:`repro.engine.lifecycle.run_solve`), never by backends.
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Iterator, Mapping

from repro.obs.context import active as _obs_active


class SolveHooks:
    """Per-solve observer handle owned by the engine lifecycle."""

    __slots__ = (
        "solver",
        "enabled",
        "_collector",
        "_clock",
        "_obs",
        "_obs_trace",
        "_obs_root",
        "_obs_epoch_start",
        "_obs_epochs",
    )

    def __init__(self, solver: str, enabled: bool):
        self.solver = solver
        #: True when the user asked for tracing (``SolverOptions.trace``).
        #: Backends branch on this to skip uncharged diagnostic peeks.
        self.enabled = enabled
        self._collector = None
        self._clock: "Callable[[], float] | None" = None
        self._obs = None
        self._obs_trace: "str | None" = None
        self._obs_root: "int | None" = None
        self._obs_epoch_start = 0.0
        self._obs_epochs = 0

    # -- backend side ---------------------------------------------------

    def arm(
        self,
        *,
        clock: Callable[[], float],
        sections: "Callable[[], Mapping[str, float]] | None" = None,
        meta: "dict[str, Any] | None" = None,
    ) -> None:
        """Start collecting: snapshot ``clock()`` as the first record's
        ``t_start``.  No-op (and import-free) when tracing is off; when a
        span recorder is installed this also opens the solve's
        ``engine.solve`` root span on the same clock."""
        self._clock = clock
        obs = _obs_active()
        if obs is not None:
            self._obs = obs
            self._obs_trace = obs.new_solve_trace(self.solver)
            attrs: dict[str, Any] = {"solver": self.solver, "clock": "solve"}
            request = obs.request_trace()
            if request is not None:
                attrs["request"] = request
            t0 = clock()
            self._obs_root = obs.open_span(
                self._obs_trace, "engine.solve", t0, **attrs
            )
            self._obs_epoch_start = t0
            self._obs_epochs = 0
        if not self.enabled:
            return
        from repro.trace import TraceCollector

        self._collector = TraceCollector(
            self.solver, clock=clock, sections=sections, meta=meta
        )

    def record(self, **fields) -> None:
        """Append one iteration-level trace record (no-op when off).  With
        a span recorder installed, a first-order restart event also closes
        the current ``pdhg.epoch`` span."""
        if self._collector is not None:
            self._collector.record(**fields)
        if self._obs is not None and fields.get("event") == "restart":
            t = self._clock()
            self._obs_epochs += 1
            self._obs.span(
                self._obs_trace,
                "pdhg.epoch",
                self._obs_epoch_start,
                t,
                parent=self._obs_root,
                epoch=self._obs_epochs,
                iteration=fields.get("iteration"),
            )
            self._obs_epoch_start = t

    @contextlib.contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        """Record the enclosed interval as a child span of the solve's root
        (``engine.refactor`` at the backends' refactorization sites, the
        phase spans in the lifecycle).  No-op without a recorder."""
        if self._obs is None:
            yield
            return
        t0 = self._clock()
        try:
            yield
        finally:
            self._obs.span(
                self._obs_trace,
                name,
                t0,
                self._clock(),
                parent=self._obs_root,
                **attrs,
            )

    # -- engine side ----------------------------------------------------

    @property
    def trace(self):
        """The collected :class:`~repro.trace.SolveTrace`, or ``None``."""
        return None if self._collector is None else self._collector.trace

    def finish_obs(self, outcome: str) -> None:
        """Close the solve's root span and finish its trace (idempotent —
        the lifecycle calls this from the finish path *and* from its
        ``finally`` so error exits still close the request)."""
        if self._obs is None:
            return
        t = self._clock() if self._clock is not None else 0.0
        self._obs.close_span(self._obs_root, t, outcome=outcome)
        self._obs.finish_trace(self._obs_trace, outcome, latency=t)
        self._obs = None

"""The engine's observer protocol: one gateway for solver instrumentation.

Backends never import :mod:`repro.trace` or :mod:`repro.metrics` (a lint
under ``tools/`` enforces it).  Instead the lifecycle hands every backend a
:class:`SolveHooks` and the backend

- calls :meth:`SolveHooks.arm` once, at the exact point its hand-rolled
  tracer used to be constructed (the collector snapshots the modeled clock
  at construction, so the arming point is part of the bit-identical trace
  contract), and
- emits iteration events through :meth:`SolveHooks.record`.

When tracing is off every call is a no-op and nothing trace-related is even
imported — the zero-overhead-when-off guarantee lives here, in one place,
instead of being re-proved per solver.  Metrics counters are emitted by the
lifecycle's finish path (:func:`repro.engine.lifecycle.run_solve`), never
by backends.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping


class SolveHooks:
    """Per-solve observer handle owned by the engine lifecycle."""

    __slots__ = ("solver", "enabled", "_collector")

    def __init__(self, solver: str, enabled: bool):
        self.solver = solver
        #: True when the user asked for tracing (``SolverOptions.trace``).
        #: Backends branch on this to skip uncharged diagnostic peeks.
        self.enabled = enabled
        self._collector = None

    # -- backend side ---------------------------------------------------

    def arm(
        self,
        *,
        clock: Callable[[], float],
        sections: "Callable[[], Mapping[str, float]] | None" = None,
        meta: "dict[str, Any] | None" = None,
    ) -> None:
        """Start collecting: snapshot ``clock()`` as the first record's
        ``t_start``.  No-op (and import-free) when tracing is off."""
        if not self.enabled:
            return
        from repro.trace import TraceCollector

        self._collector = TraceCollector(
            self.solver, clock=clock, sections=sections, meta=meta
        )

    def record(self, **fields) -> None:
        """Append one iteration-level trace record (no-op when off)."""
        if self._collector is not None:
            self._collector.record(**fields)

    # -- engine side ----------------------------------------------------

    @property
    def trace(self):
        """The collected :class:`~repro.trace.SolveTrace`, or ``None``."""
        return None if self._collector is None else self._collector.trace

"""The shared solver lifecycle: one phase driver and finish path for all
seven simplex methods.

Before this layer existed each solver class carried a private copy of the
same scaffold — run phase 1, map UNBOUNDED→NUMERICAL (phase 1 is bounded
below by 0, so unboundedness there is a numerical artefact), compare the
phase-1 objective against the feasibility tolerance, drive artificials out,
run phase 2, then assemble a :class:`~repro.result.SolveResult` and emit
trace/metrics.  :func:`run_solve` is that scaffold, written once; the
per-method work happens behind the :class:`~repro.engine.backend.SolverBackend`
interface.

This module is also the **only** place solve-level metrics are emitted
(:func:`repro.metrics.instrument.record_solve`) and the only consumer of
the trace collector armed through :class:`~repro.engine.hooks.SolveHooks` —
backends cannot import either subsystem (``make lint`` enforces it).
"""

from __future__ import annotations

import time

import numpy as np

from repro.engine.backend import SolverBackend
from repro.engine.hooks import SolveHooks
from repro.errors import SolverError
from repro.metrics.instrument import record_solve
from repro.result import SolveResult
from repro.status import SolveStatus


def run_solve(
    backend: SolverBackend,
    problem,
    warm_hint: "np.ndarray | None" = None,
) -> SolveResult:
    """Drive ``backend`` through the full two-phase solve lifecycle."""
    if warm_hint is not None and not backend.accepts_warm_start:
        raise SolverError(
            f"solver {backend.name!r} does not accept an initial basis hint"
        )
    t_wall = time.perf_counter()
    backend.hooks = SolveHooks(backend.name, enabled=backend.options.trace)
    try:
        early = backend.begin(problem, warm_hint)
        if early is not None:
            backend.hooks.finish_obs(early.status.value)
            return early

        if backend.needs_phase1:
            with backend.hooks.span("engine.phase", phase=1):
                status, iters = backend.run_phase(1)
            backend.stats.phase1_iterations = iters
            if status is not SolveStatus.OPTIMAL:
                if status is SolveStatus.UNBOUNDED:
                    status = SolveStatus.NUMERICAL
                return _finish(backend, status, t_wall)
            z1 = backend.phase1_objective()
            feas_scale = max(
                1.0, float(np.max(np.abs(backend.prep.b), initial=0.0))
            )
            if z1 > backend.phase1_feas_tol * feas_scale:
                return _finish(
                    backend, SolveStatus.INFEASIBLE, t_wall,
                    extra={"phase1_objective": z1},
                )
            with backend.hooks.span("engine.driveout"):
                backend.drive_out_artificials()

        with backend.hooks.span("engine.phase", phase=2):
            status, iters = backend.run_phase(2)
        backend.stats.phase2_iterations = iters
        return _finish(backend, status, t_wall)
    finally:
        # Error exits (SolverError, device OOM, ...) must still close the
        # solve's span trace; after a normal finish this is a no-op.
        backend.hooks.finish_obs("error")
        backend.cleanup()


def _finish(
    backend: SolverBackend,
    status: SolveStatus,
    t_wall: float,
    extra: "dict | None" = None,
) -> SolveResult:
    """Assemble the result and emit the observer events, in the order the
    individual solvers historically used (extras snapshot device counters
    *before* the solution download; the download then resyncs timing)."""
    result = SolveResult(
        status=status,
        iterations=backend.stats,
        timing=backend.timing(time.perf_counter() - t_wall),
        solver=backend.name,
        extra=extra or {},
    )
    trace = backend.hooks.trace
    if trace is not None:
        result.trace = trace
        result.extra["trace"] = trace.legacy_tuples()
    backend.standard_extras(result)
    if status is SolveStatus.OPTIMAL:
        backend.extract(result)
    backend.finalize_timing(result)
    backend.hooks.finish_obs(status.value)
    record_solve(result)
    return result

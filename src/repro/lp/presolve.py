"""Presolve: problem reductions applied before the simplex method.

Classic safe reductions, applied to fixpoint:

1. **Empty rows** — ``0 {<=,>=,=} b``: drop if satisfied, else the problem
   is proven infeasible.
2. **Fixed variables** (``lo == hi``) — substitute the value out.
3. **Singleton rows** — a row with one nonzero is just a bound on that
   variable: tighten the bound and drop the row (contradictory bounds prove
   infeasibility).
4. **Empty columns** — a variable in no constraint moves to whichever bound
   minimises the objective; an unbounded improving direction proves the
   problem unbounded.
5. **Duplicate rows** — identical (row, sense) pairs keep only the tightest
   rhs.

Every reduction records enough to reconstruct the removed variables, so
``postsolve`` returns a solution in the *original* variable space.

Usage::

    outcome = presolve(lp)
    if outcome.status is PresolveStatus.REDUCED:
        result = solve(outcome.reduced, ...)
        x_original = outcome.postsolve(result.x)
"""

from __future__ import annotations

import dataclasses
import enum

import numpy as np

from repro.lp.problem import Bounds, ConstraintSense, LPProblem

#: Feasibility tolerance for constant-row checks.
_FEAS_TOL = 1e-9


class PresolveStatus(enum.Enum):
    """Outcome of the presolve pass."""

    #: Reductions applied (possibly none); ``reduced`` holds the problem.
    REDUCED = "reduced"
    #: A constraint was proven unsatisfiable.
    INFEASIBLE = "infeasible"
    #: An improving direction with no finite bound was found.
    UNBOUNDED = "unbounded"
    #: Everything was eliminated; ``fixed_solution`` is the full answer.
    SOLVED = "solved"


@dataclasses.dataclass
class PresolveOutcome:
    """Result of :func:`presolve`."""

    status: PresolveStatus
    reduced: LPProblem | None
    #: Original index of each surviving variable.
    kept_vars: np.ndarray
    #: value of each eliminated variable, keyed by original index.
    fixed_values: dict[int, float]
    #: number of rows/cols removed, per rule (diagnostics).
    log: dict[str, int]
    #: Objective constant contributed by eliminated variables.
    objective_offset: float
    n_original: int

    def postsolve(self, x_reduced: np.ndarray | None) -> np.ndarray | None:
        """Map a reduced-space solution back to the original variables."""
        if x_reduced is None:
            return None
        x = np.zeros(self.n_original)
        for orig, value in self.fixed_values.items():
            x[orig] = value
        x[self.kept_vars] = np.asarray(x_reduced, dtype=np.float64)
        return x

    @property
    def rows_removed(self) -> int:
        return sum(v for k, v in self.log.items() if k.startswith("rows"))

    @property
    def cols_removed(self) -> int:
        return len(self.fixed_values)


def presolve(problem: LPProblem, max_passes: int = 10) -> PresolveOutcome:
    """Apply the reduction rules to fixpoint (at most ``max_passes``)."""
    a = problem.a_dense().copy()
    b = problem.b.copy()
    senses = list(problem.senses)
    c = problem.c.copy()
    lower = problem.bounds.lower.copy()
    upper = problem.bounds.upper.copy()
    # work in minimisation orientation for rule 4; flip back at the end
    c_min = -c if problem.maximize else c

    n = problem.num_vars
    kept = np.ones(n, dtype=bool)
    row_alive = np.ones(len(b), dtype=bool)
    fixed: dict[int, float] = {}
    log = {"rows_empty": 0, "rows_singleton": 0, "rows_duplicate": 0,
           "cols_fixed": 0, "cols_empty": 0}

    def fix_variable(j: int, value: float) -> None:
        fixed[j] = value
        kept[j] = False
        nonlocal b
        b = b - a[:, j] * value
        a[:, j] = 0.0

    for _ in range(max_passes):
        changed = False

        # rule 2: fixed variables
        for j in np.nonzero(kept)[0]:
            if lower[j] == upper[j]:
                fix_variable(int(j), float(lower[j]))
                log["cols_fixed"] += 1
                changed = True

        # rule 1: empty rows
        for i in np.nonzero(row_alive)[0]:
            if np.any(a[i, kept] != 0.0):
                continue
            rhs = b[i]
            sense = senses[i]
            ok = (
                (sense is ConstraintSense.LE and 0.0 <= rhs + _FEAS_TOL)
                or (sense is ConstraintSense.GE and 0.0 >= rhs - _FEAS_TOL)
                or (sense is ConstraintSense.EQ and abs(rhs) <= _FEAS_TOL)
            )
            if not ok:
                return _failed(PresolveStatus.INFEASIBLE, kept, fixed, log, n)
            row_alive[i] = False
            log["rows_empty"] += 1
            changed = True

        # rule 3: singleton rows -> bounds
        for i in np.nonzero(row_alive)[0]:
            nz = np.nonzero(a[i, :] * kept)[0]
            if nz.size != 1:
                continue
            j = int(nz[0])
            coeff = a[i, j]
            rhs = b[i] / coeff
            sense = senses[i]
            if coeff < 0 and sense is not ConstraintSense.EQ:
                sense = sense.flipped()
            if sense is ConstraintSense.LE:
                upper[j] = min(upper[j], rhs)
            elif sense is ConstraintSense.GE:
                lower[j] = max(lower[j], rhs)
            else:
                lower[j] = max(lower[j], rhs)
                upper[j] = min(upper[j], rhs)
            if lower[j] > upper[j] + _FEAS_TOL:
                return _failed(PresolveStatus.INFEASIBLE, kept, fixed, log, n)
            row_alive[i] = False
            log["rows_singleton"] += 1
            changed = True

        # rule 4: empty columns
        for j in np.nonzero(kept)[0]:
            if np.any(a[row_alive, j] != 0.0):
                continue
            cj = c_min[j]
            if cj > 0:
                target = lower[j]
            elif cj < 0:
                target = upper[j]
            else:
                target = lower[j] if np.isfinite(lower[j]) else (
                    upper[j] if np.isfinite(upper[j]) else 0.0
                )
            if not np.isfinite(target):
                return _failed(PresolveStatus.UNBOUNDED, kept, fixed, log, n)
            fix_variable(int(j), float(target))
            log["cols_empty"] += 1
            changed = True

        # rule 5: duplicate rows (same coefficients and sense)
        alive_idx = np.nonzero(row_alive)[0]
        seen: dict[bytes, int] = {}
        for i in alive_idx:
            key = a[i, :].tobytes() + senses[i].value.encode()
            if key in seen:
                k = seen[key]
                if senses[i] is ConstraintSense.LE:
                    b[k] = min(b[k], b[i])
                elif senses[i] is ConstraintSense.GE:
                    b[k] = max(b[k], b[i])
                else:
                    if abs(b[k] - b[i]) > _FEAS_TOL:
                        return _failed(PresolveStatus.INFEASIBLE, kept, fixed, log, n)
                row_alive[i] = False
                log["rows_duplicate"] += 1
                changed = True
            else:
                seen[key] = int(i)

        if not changed:
            break

    kept_vars = np.nonzero(kept)[0]
    offset = float(sum(problem.c[j] * v for j, v in fixed.items()))

    if kept_vars.size == 0:
        return PresolveOutcome(
            status=PresolveStatus.SOLVED,
            reduced=None,
            kept_vars=kept_vars,
            fixed_values=fixed,
            log=log,
            objective_offset=offset,
            n_original=n,
        )

    rows = np.nonzero(row_alive)[0]
    reduced = LPProblem(
        c=problem.c[kept_vars],
        a=a[np.ix_(rows, kept_vars)],
        senses=[senses[i] for i in rows] if rows.size else [ConstraintSense.LE],
        b=b[rows] if rows.size else np.array([0.0]),
        bounds=Bounds(lower[kept_vars], upper[kept_vars]),
        maximize=problem.maximize,
        name=problem.name + "+presolved",
    ) if rows.size else LPProblem(
        # no rows left: keep a vacuous constraint so the model stays valid
        c=problem.c[kept_vars],
        a=np.zeros((1, kept_vars.size)),
        senses=[ConstraintSense.LE],
        b=np.array([0.0]),
        bounds=Bounds(lower[kept_vars], upper[kept_vars]),
        maximize=problem.maximize,
        name=problem.name + "+presolved",
    )

    return PresolveOutcome(
        status=PresolveStatus.REDUCED,
        reduced=reduced,
        kept_vars=kept_vars,
        fixed_values=fixed,
        log=log,
        objective_offset=offset,
        n_original=n,
    )


def _failed(status, kept, fixed, log, n) -> PresolveOutcome:
    return PresolveOutcome(
        status=status,
        reduced=None,
        kept_vars=np.nonzero(kept)[0],
        fixed_values=fixed,
        log=log,
        objective_offset=0.0,
        n_original=n,
    )


def solve_with_presolve(problem: LPProblem, method: str = "gpu-revised", **options):
    """Convenience: presolve, solve the reduction, postsolve the answer.

    Returns a :class:`~repro.result.SolveResult` in the original space.
    Infeasibility/unboundedness proven by presolve short-circuits the solver.
    """
    from repro.result import SolveResult
    from repro.solve import solve as _solve
    from repro.status import SolveStatus

    outcome = presolve(problem)
    if outcome.status is PresolveStatus.INFEASIBLE:
        return SolveResult(status=SolveStatus.INFEASIBLE, solver=f"presolve+{method}")
    if outcome.status is PresolveStatus.UNBOUNDED:
        return SolveResult(status=SolveStatus.UNBOUNDED, solver=f"presolve+{method}")
    if outcome.status is PresolveStatus.SOLVED:
        x = outcome.postsolve(np.zeros(0))
        result = SolveResult(
            status=SolveStatus.OPTIMAL,
            objective=outcome.objective_offset,
            x=x,
            solver=f"presolve+{method}",
        )
        return result

    result = _solve(outcome.reduced, method=method, **options)
    if result.is_optimal:
        result.x = outcome.postsolve(result.x)
        result.objective = result.objective + outcome.objective_offset
    result.solver = f"presolve+{result.solver}"
    result.extra["presolve_log"] = outcome.log
    return result

"""Post-optimal analysis: duals, reduced costs and optimality certificates.

Every solver in the library terminates with a basis; this module turns that
basis into the full LP certificate, independently of which machine produced
it:

- **row duals**  y solving  Bᵀy = c_B  (the simplex multipliers at optimum),
- **reduced costs**  d = c − Aᵀy  (non-negative over nonbasic columns at an
  optimum of a minimisation),
- **duality gap**  cᵀx − bᵀy  (zero at an exact optimum — strong duality),
- **complementary slackness** violation (max |xⱼ·dⱼ|).

Because the computation starts from the basis *columns* (not from any
solver-internal inverse), it doubles as an independent check of the solver's
numerical state: a drifted B⁻¹ shows up as a non-zero gap here.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import SingularBasisError
from repro.simplex.common import PreparedLP


@dataclasses.dataclass
class Certificate:
    """Optimality certificate of a basic solution in standard form."""

    #: Simplex multipliers (standard-form row duals), length m.
    y: np.ndarray
    #: Reduced costs over all standard-form columns, length n.
    reduced_costs: np.ndarray
    #: cᵀx − bᵀy in the standard form (0 at an exact optimum).
    duality_gap: float
    #: max |x_j · d_j| over all columns (0 under complementary slackness).
    complementary_slackness: float
    #: min_j d_j over nonbasic columns (>= -tol certifies optimality).
    min_nonbasic_reduced_cost: float

    def is_optimal_certificate(self, tol: float = 1e-6) -> bool:
        """True when the certificate proves (approximate) optimality."""
        return (
            self.min_nonbasic_reduced_cost >= -tol
            and abs(self.duality_gap) <= tol * (1.0 + abs(self.duality_gap))
            and self.complementary_slackness <= tol
        )


def certificate_from_basis(
    prep: PreparedLP,
    basis: np.ndarray,
    x_std: np.ndarray,
) -> Certificate:
    """Compute the full certificate from the final basis and primal point.

    Works in the (possibly scaled) standard form the solver ran on; callers
    map back via :meth:`~repro.lp.standard_form.StandardFormLP.recover_duals`
    and :meth:`~repro.lp.scaling.ScalingResult.unscale_duals`.
    """
    basis = np.asarray(basis, dtype=np.int64)
    m, n = prep.m, prep.n_total
    c_full = np.concatenate([prep.c, np.zeros(m)])  # artificials cost 0 here
    b_matrix = prep.basis_matrix(basis)
    try:
        y = np.linalg.solve(b_matrix.T, c_full[basis])
    except np.linalg.LinAlgError:
        raise SingularBasisError("final basis is singular; no certificate") from None

    d = prep.c - prep.price_all(y)
    in_basis = np.zeros(n, dtype=bool)
    real = basis[basis < n]
    in_basis[real] = True

    z_primal = float(prep.c @ x_std)
    z_dual = float(prep.b @ y)
    gap = z_primal - z_dual

    cs = float(np.max(np.abs(x_std * d), initial=0.0))
    nonbasic = ~in_basis
    min_d = float(d[nonbasic].min()) if nonbasic.any() else 0.0

    return Certificate(
        y=y,
        reduced_costs=d,
        duality_gap=gap,
        complementary_slackness=cs,
        min_nonbasic_reduced_cost=min_d,
    )


def attach_certificate(result, prep: PreparedLP) -> None:
    """Compute and attach the certificate + original-space duals to an
    optimal :class:`~repro.result.SolveResult` (no-op otherwise).

    Adds:

    - ``result.extra["certificate"]`` — the standard-form certificate,
    - ``result.extra["duals"]`` — duals of the *original* constraints,
    - ``result.extra["reduced_costs_std"]`` — standard-form reduced costs.
    """
    if not result.is_optimal or "basis" not in result.extra:
        return
    basis = result.extra["basis"]
    x_std = result.extra.get("x_std")
    if x_std is None:
        return
    # The certificate is computed against *unscaled* standard-form data so
    # that duals recover directly; build an unscaled view when needed.
    if prep.scaling is not None:
        unscaled = PreparedLP(
            std=prep.std, scaling=None, a=prep.std.a, b=prep.std.b,
            c=prep.std.c, m=prep.m, n_total=prep.n_total,
        )
        cert = certificate_from_basis(unscaled, basis, x_std)
    else:
        cert = certificate_from_basis(prep, basis, x_std)
    result.extra["certificate"] = cert
    result.extra["reduced_costs_std"] = cert.reduced_costs
    result.extra["duals"] = prep.std.recover_duals(cert.y)

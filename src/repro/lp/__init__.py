"""LP modelling layer: problems, standard form, scaling, formats, workloads.

- :mod:`~repro.lp.problem`        — :class:`LPProblem`: general-form LPs
  (mixed senses, variable bounds, min/max orientation, dense or sparse A).
- :mod:`~repro.lp.standard_form`  — conversion to the simplex standard form
  ``min c'x s.t. Ax = b, x >= 0, b >= 0`` with full solution recovery.
- :mod:`~repro.lp.scaling`        — geometric-mean problem scaling.
- :mod:`~repro.lp.mps`            — MPS reader/writer.
- :mod:`~repro.lp.generators`     — reproducible workload generators (random
  dense/sparse, degenerate, Klee–Minty, transportation, NETLIB-like suite).
"""

from repro.lp.problem import LPProblem, ConstraintSense, Bounds
from repro.lp.standard_form import StandardFormLP, to_standard_form
from repro.lp.scaling import ScalingResult, geometric_mean_scaling

__all__ = [
    "LPProblem",
    "ConstraintSense",
    "Bounds",
    "StandardFormLP",
    "to_standard_form",
    "ScalingResult",
    "geometric_mean_scaling",
]

"""Conversion of a general-form LP to simplex standard form.

Standard form is

.. math::

    \\min c^T x \\quad \\text{s.t.} \\quad A x = b,\\ x \\ge 0,\\ b \\ge 0.

The conversion performs, in order:

1. *Orientation* — maximisation becomes minimisation by negating c.
2. *Variable bounds* — every variable is mapped onto ``x' >= 0``:

   - ``lo <= x``          → shift ``x' = x - lo``;
   - ``x <= hi`` (no lo)  → reflect ``x' = hi - x``;
   - ``lo <= x <= hi``    → shift, plus an extra row ``x' <= hi - lo``;
   - free                 → split ``x = x⁺ - x⁻``.

   Shifts and reflections contribute a constant to the objective and an
   adjustment to b; both are recorded so the original solution and objective
   are recovered exactly.
3. *Row signs* — rows with negative rhs are negated (sense flips).
4. *Slack/surplus* — ``<=`` rows gain a +1 slack, ``>=`` rows a −1 surplus;
   the rows whose slack is +1 form the crash basis hint used to skip phase 1
   when it covers every row.

Artificial variables are **not** materialised here: they are identity
columns, and every solver in the library synthesises them implicitly during
phase 1 (exactly as a GPU implementation would, to avoid wasting device
memory on an identity block).
"""

from __future__ import annotations

import dataclasses
from typing import Literal

import numpy as np

from repro.errors import LPDimensionError
from repro.lp.problem import Bounds, ConstraintSense, LPProblem
from repro.sparse.base import SparseMatrix
from repro.sparse.coo import CooMatrix
from repro.sparse.csc import CscMatrix

TransformKind = Literal["identity", "shift", "reflect", "split"]


@dataclasses.dataclass(frozen=True)
class VariableTransform:
    """How one original variable maps into standard-form columns.

    - ``identity``: x = x'_col
    - ``shift``:    x = x'_col + offset
    - ``reflect``:  x = offset - x'_col
    - ``split``:    x = x'_col - x'_col2
    """

    kind: TransformKind
    col: int
    col2: int = -1
    offset: float = 0.0

    def recover(self, x_std: np.ndarray) -> float:
        if self.kind == "identity":
            return float(x_std[self.col])
        if self.kind == "shift":
            return float(x_std[self.col] + self.offset)
        if self.kind == "reflect":
            return float(self.offset - x_std[self.col])
        return float(x_std[self.col] - x_std[self.col2])


@dataclasses.dataclass
class StandardFormLP:
    """A problem in simplex standard form, plus everything needed to map a
    standard-form solution back to the user's original variables."""

    a: "np.ndarray | CscMatrix"
    b: np.ndarray
    c: np.ndarray
    constant: float
    maximize: bool
    transforms: list[VariableTransform]
    #: Per-row standard-form column index of a +1 slack usable in a crash
    #: basis, or -1 when the row has none (EQ and >= rows).
    slack_of_row: np.ndarray
    #: Number of columns that came from original variables (before slacks).
    n_structural: int
    #: Per-row: index of the originating constraint in the user's problem,
    #: or -1 for rows synthesised from finite upper bounds.
    row_origin: np.ndarray = dataclasses.field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    #: Per-row: True when the row was multiplied by -1 to make b >= 0 (the
    #: corresponding dual flips sign on recovery).
    row_flipped: np.ndarray = dataclasses.field(default_factory=lambda: np.zeros(0, dtype=bool))
    #: Per-column upper bound (``0 <= x <= upper``).  All +inf when the
    #: conversion turned range bounds into rows (the classical form every
    #: solver accepts); finite entries appear only with
    #: ``to_standard_form(..., range_bounds_as_rows=False)``, which the
    #: bounded-variable solver consumes.
    upper: np.ndarray | None = None
    source_name: str = "lp"

    def upper_bounds(self) -> np.ndarray:
        """Column upper bounds (+inf vector when not tracked)."""
        if self.upper is None:
            return np.full(self.num_cols, np.inf)
        return self.upper

    @property
    def num_rows(self) -> int:
        return int(self.b.size)

    @property
    def num_cols(self) -> int:
        return int(self.c.size)

    @property
    def is_sparse(self) -> bool:
        return isinstance(self.a, SparseMatrix)

    def a_dense(self) -> np.ndarray:
        return self.a.to_dense() if self.is_sparse else np.asarray(self.a)

    def column(self, j: int) -> np.ndarray:
        """Standard-form column j as a dense m-vector."""
        if not 0 <= j < self.num_cols:
            raise LPDimensionError(f"column {j} out of range")
        if self.is_sparse:
            return self.a.getcol_dense(j)
        return np.asarray(self.a)[:, j].copy()

    @property
    def has_full_slack_basis(self) -> bool:
        """True when the +1 slacks cover every row (phase 1 unnecessary)."""
        return bool(np.all(self.slack_of_row >= 0))

    # -- recovery ------------------------------------------------------------

    def recover_x(self, x_std: np.ndarray) -> np.ndarray:
        """Original-space solution from a standard-form point."""
        x_std = np.asarray(x_std, dtype=np.float64)
        if x_std.size != self.num_cols:
            raise LPDimensionError(
                f"standard-form point has {x_std.size} entries, expected {self.num_cols}"
            )
        return np.array([t.recover(x_std) for t in self.transforms])

    def original_objective(self, z_std: float) -> float:
        """Objective in the user's orientation from the standard-form value."""
        value = z_std + self.constant
        return -value if self.maximize else value

    def recover_duals(self, y_std: np.ndarray) -> np.ndarray:
        """Original-constraint duals from standard-form row duals.

        Sign conventions: a flipped row's dual flips back, and a maximised
        problem's duals negate (the conversion minimised −c).  Rows
        synthesised from upper bounds have no original constraint and are
        dropped.
        """
        y_std = np.asarray(y_std, dtype=np.float64)
        if y_std.size != self.num_rows:
            raise LPDimensionError(
                f"dual vector has {y_std.size} entries, expected {self.num_rows}"
            )
        n_orig = int(self.row_origin.max(initial=-1)) + 1
        out = np.zeros(n_orig)
        for i in range(self.num_rows):
            orig = int(self.row_origin[i])
            if orig < 0:
                continue
            value = -y_std[i] if self.row_flipped[i] else y_std[i]
            out[orig] = -value if self.maximize else value
        return out


def to_standard_form(
    problem: LPProblem, *, range_bounds_as_rows: bool = True
) -> StandardFormLP:
    """Convert a general-form :class:`LPProblem` to standard form.

    The sparse/dense character of the input is preserved: sparse problems
    produce a :class:`~repro.sparse.csc.CscMatrix` (column access is the
    revised simplex hot path), dense problems a dense ndarray.

    ``range_bounds_as_rows`` chooses how finite upper bounds are encoded:
    ``True`` (default) adds a ``x' <= hi - lo`` constraint row per bounded
    variable — the classical form every solver accepts; ``False`` keeps them
    as column upper bounds in :attr:`StandardFormLP.upper` for the
    bounded-variable solver, which handles them inside the ratio test with
    no extra rows.
    """
    m, n = problem.a.shape

    # Work in triplet form so the same code serves dense and sparse inputs.
    if problem.is_sparse:
        coo = problem.a.tocoo() if hasattr(problem.a, "tocoo") else problem.a
        rows = coo.row.copy()
        cols = coo.col.copy()
        vals = coo.val.copy()
    else:
        rr, cc = np.nonzero(problem.a)
        rows, cols, vals = rr.astype(np.int64), cc.astype(np.int64), problem.a[rr, cc].astype(np.float64)

    c_orig = problem.c.astype(np.float64).copy()
    if problem.maximize:
        c_orig = -c_orig

    b = problem.b.astype(np.float64).copy()
    senses = list(problem.senses)
    lower = problem.bounds.lower
    upper = problem.bounds.upper

    # Dense per-column views are needed for the b adjustments of shifts and
    # reflections; build them lazily from the triplets.
    col_entries: list[list[int]] = [[] for _ in range(n)]
    for k in range(cols.size):
        col_entries[int(cols[k])].append(k)

    transforms: list[VariableTransform] = []
    new_cols_c: list[float] = []
    constant = 0.0
    extra_rows: list[tuple[int, float]] = []  # (std col, upper bound) rows to add
    col_upper: dict[int, float] = {}  # finite column bounds (bounded form)
    next_col = 0
    col_map = np.full(n, -1, dtype=np.int64)  # original col -> new col
    negate_col = np.zeros(n, dtype=bool)
    split_cols: list[tuple[int, int]] = []  # (orig col, new negative col)

    for j in range(n):
        lo, hi = float(lower[j]), float(upper[j])
        lo_finite, hi_finite = np.isfinite(lo), np.isfinite(hi)
        if not lo_finite and not hi_finite:
            # free variable: split
            cp = next_col
            cn = next_col + 1
            next_col += 2
            transforms.append(VariableTransform("split", cp, cn))
            new_cols_c.extend([c_orig[j], -c_orig[j]])
            col_map[j] = cp
            split_cols.append((j, cn))
        elif not lo_finite:
            # x <= hi only: reflect x' = hi - x
            cp = next_col
            next_col += 1
            transforms.append(VariableTransform("reflect", cp, offset=hi))
            new_cols_c.append(-c_orig[j])
            constant += c_orig[j] * hi
            negate_col[j] = True
            col_map[j] = cp
            # b -= A_j * hi  (x = hi - x' substituted into every row)
            for k in col_entries[j]:
                b[int(rows[k])] -= vals[k] * hi
        else:
            # lo finite: shift x' = x - lo (lo may be 0 -> identity)
            cp = next_col
            next_col += 1
            if lo == 0.0:
                transforms.append(VariableTransform("identity", cp))
            else:
                transforms.append(VariableTransform("shift", cp, offset=lo))
                constant += c_orig[j] * lo
                for k in col_entries[j]:
                    b[int(rows[k])] -= vals[k] * lo
            new_cols_c.append(c_orig[j])
            col_map[j] = cp
            if hi_finite:
                if range_bounds_as_rows:
                    extra_rows.append((cp, hi - lo))
                else:
                    col_upper[cp] = hi - lo

    # Rewrite the triplets into the new column space.
    new_rows = [rows]
    new_cols = [col_map[cols]]
    new_vals = [np.where(negate_col[cols], -vals, vals)]
    for j, cn in split_cols:
        ks = col_entries[j]
        if ks:
            ks = np.asarray(ks, dtype=np.int64)
            new_rows.append(rows[ks])
            new_cols.append(np.full(len(ks), cn, dtype=np.int64))
            new_vals.append(-vals[ks])

    # Append the upper-bound rows x'_cp <= ub.
    row_count = m
    ub_rows: list[tuple[int, int, float]] = []
    for cp, ub in extra_rows:
        ub_rows.append((row_count, cp, 1.0))
        b = np.append(b, ub)
        senses.append(ConstraintSense.LE)
        row_count += 1
    if ub_rows:
        r, cidx, v = zip(*ub_rows)
        new_rows.append(np.asarray(r, dtype=np.int64))
        new_cols.append(np.asarray(cidx, dtype=np.int64))
        new_vals.append(np.asarray(v, dtype=np.float64))

    rows = np.concatenate(new_rows) if new_rows else np.zeros(0, dtype=np.int64)
    cols = np.concatenate(new_cols) if new_cols else np.zeros(0, dtype=np.int64)
    vals = np.concatenate(new_vals) if new_vals else np.zeros(0, dtype=np.float64)
    n_structural = next_col

    # Row provenance: original-constraint index for the first m rows,
    # -1 for the synthesised upper-bound rows.
    row_origin = np.concatenate(
        [np.arange(m, dtype=np.int64), np.full(row_count - m, -1, dtype=np.int64)]
    )

    # Row-sign normalisation: b >= 0.
    neg = b < 0.0
    if neg.any():
        flip = neg[rows]
        vals = np.where(flip, -vals, vals)
        b = np.where(neg, -b, b)
        senses = [s.flipped() if neg[i] else s for i, s in enumerate(senses)]
    row_flipped = neg.copy()

    # Slack / surplus columns.
    slack_of_row = np.full(row_count, -1, dtype=np.int64)
    slack_rows: list[int] = []
    slack_vals: list[float] = []
    slack_cols: list[int] = []
    col = n_structural
    for i, sense in enumerate(senses):
        if sense is ConstraintSense.EQ:
            continue
        coeff = 1.0 if sense is ConstraintSense.LE else -1.0
        slack_rows.append(i)
        slack_cols.append(col)
        slack_vals.append(coeff)
        if coeff > 0:
            slack_of_row[i] = col
        col += 1
    n_total = col
    if slack_rows:
        rows = np.concatenate([rows, np.asarray(slack_rows, dtype=np.int64)])
        cols = np.concatenate([cols, np.asarray(slack_cols, dtype=np.int64)])
        vals = np.concatenate([vals, np.asarray(slack_vals, dtype=np.float64)])

    c_std = np.concatenate([np.asarray(new_cols_c, dtype=np.float64),
                            np.zeros(n_total - n_structural)])

    upper_vec: np.ndarray | None = None
    if not range_bounds_as_rows:
        upper_vec = np.full(n_total, np.inf)
        for cp, ub in col_upper.items():
            upper_vec[cp] = ub

    coo = CooMatrix((row_count, n_total), rows, cols, vals)
    a_std: "np.ndarray | CscMatrix"
    if problem.is_sparse:
        a_std = coo.tocsc()
    else:
        a_std = coo.to_dense()

    return StandardFormLP(
        a=a_std,
        b=b,
        c=c_std,
        constant=constant,
        maximize=problem.maximize,
        transforms=transforms,
        slack_of_row=slack_of_row,
        n_structural=n_structural,
        row_origin=row_origin,
        row_flipped=row_flipped,
        upper=upper_vec,
        source_name=problem.name,
    )

"""Problem scaling for numerical stability.

Simplex pivoting degrades when coefficient magnitudes span many orders; the
standard cure is geometric-mean equilibration: iteratively scale each row and
column by the inverse geometric mean of its nonzero magnitudes, optionally
rounding scale factors to powers of two so scaling is exact in floating
point.  The solvers apply this to the standard-form data and unscale the
solution transparently.

Scaled data:  ``A' = R A C``, ``b' = R b``, ``c' = C c`` with diagonal R, C.
A standard-form solution x' of the scaled problem maps back as ``x = C x'``
and the objective is unchanged (``c'ᵀx' = cᵀx``).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.sparse.base import SparseMatrix


@dataclasses.dataclass
class ScalingResult:
    """Row/column scale factors and the scaled standard-form data."""

    row_scale: np.ndarray
    col_scale: np.ndarray
    a: "np.ndarray | SparseMatrix"
    b: np.ndarray
    c: np.ndarray

    def unscale_x(self, x_scaled: np.ndarray) -> np.ndarray:
        """Map a scaled-space solution back to the unscaled space."""
        return np.asarray(x_scaled, dtype=np.float64) * self.col_scale

    def unscale_duals(self, y_scaled: np.ndarray) -> np.ndarray:
        """Map scaled-space row duals back (y = R y')."""
        return np.asarray(y_scaled, dtype=np.float64) * self.row_scale


def _round_pow2(scale: np.ndarray) -> np.ndarray:
    """Round positive finite scale factors to the nearest power of two.

    Non-finite or non-positive entries come out as 1.0 — a degenerate
    factor must never poison the scaled data.
    """
    out = np.ones_like(scale)
    usable = (scale > 0) & np.isfinite(scale)
    out[usable] = np.exp2(np.rint(np.log2(scale[usable])))
    return out


def _inv_geomean(gmin: float, gmax: float) -> float:
    """``1 / sqrt(gmin * gmax)`` computed in log space.

    The naive product underflows to 0.0 (or overflows to inf) once the
    magnitudes pass ~1e-154 (~1e154), turning the factor into inf/0 and the
    scaled matrix into NaNs.  ``exp2`` of the averaged exponents has no
    intermediate that can leave the float range for any positive inputs.
    """
    factor = float(np.exp2(-0.5 * (np.log2(gmin) + np.log2(gmax))))
    if not np.isfinite(factor) or factor <= 0.0:
        return 1.0
    return factor


def geometric_mean_scaling(
    a: "np.ndarray | SparseMatrix",
    b: np.ndarray,
    c: np.ndarray,
    *,
    max_passes: int = 10,
    tol: float = 1.1,
    pow2: bool = True,
) -> ScalingResult:
    """Iterative geometric-mean row/column equilibration.

    Stops when every row's and column's magnitude spread
    ``sqrt(max|a| / min|a|)`` falls below ``tol`` or after ``max_passes``.
    With ``pow2=True`` (default) factors are powers of two, making the
    scaling lossless in binary floating point.
    """
    dense = a.to_dense() if isinstance(a, SparseMatrix) else np.asarray(a, dtype=np.float64)
    m, n = dense.shape
    work = dense.copy()
    row_scale = np.ones(m)
    col_scale = np.ones(n)

    for _ in range(max_passes):
        mags = np.abs(work)
        nz = mags > 0

        spread = 1.0
        # rows
        r = np.ones(m)
        for i in range(m):
            vals = mags[i, nz[i]]
            if vals.size:
                gmin, gmax = vals.min(), vals.max()
                spread = max(spread, np.sqrt(gmax) / np.sqrt(gmin))
                r[i] = _inv_geomean(gmin, gmax)
        if pow2:
            r = _round_pow2(r)
        work *= r[:, None]
        row_scale *= r

        mags = np.abs(work)
        nz = mags > 0
        # columns
        s = np.ones(n)
        for j in range(n):
            vals = mags[nz[:, j], j]
            if vals.size:
                gmin, gmax = vals.min(), vals.max()
                spread = max(spread, np.sqrt(gmax) / np.sqrt(gmin))
                s[j] = _inv_geomean(gmin, gmax)
        if pow2:
            s = _round_pow2(s)
        work *= s[None, :]
        col_scale *= s

        if spread <= tol:
            break

    b_scaled = np.asarray(b, dtype=np.float64) * row_scale
    c_scaled = np.asarray(c, dtype=np.float64) * col_scale

    a_scaled: "np.ndarray | SparseMatrix"
    if isinstance(a, SparseMatrix):
        from repro.sparse.coo import CooMatrix

        coo = a.tocoo() if hasattr(a, "tocoo") else a
        vals = coo.val * row_scale[coo.row] * col_scale[coo.col]
        a_scaled = CooMatrix(a.shape, coo.row, coo.col, vals).tocsc()
    else:
        a_scaled = work

    return ScalingResult(
        row_scale=row_scale, col_scale=col_scale, a=a_scaled, b=b_scaled, c=c_scaled
    )


def scaling_spread(a: "np.ndarray | SparseMatrix") -> float:
    """Ratio max|aᵢⱼ| / min|aᵢⱼ| over nonzeros — the badness metric scaling
    reduces; 1.0 for an empty or constant-magnitude matrix."""
    dense = a.to_dense() if isinstance(a, SparseMatrix) else np.asarray(a)
    mags = np.abs(dense[dense != 0])
    if mags.size == 0:
        return 1.0
    return float(mags.max() / mags.min())

"""MPS reader and writer.

Implements the free-format MPS dialect (whitespace-separated fields), which
also reads well-formed fixed-format files: sections ``NAME``, ``ROWS``
(``N``/``L``/``G``/``E``), ``COLUMNS``, ``RHS``, ``RANGES`` and ``BOUNDS``
(``UP``, ``LO``, ``FX``, ``FR``, ``MI``, ``PL``), terminated by ``ENDATA``.
The first ``N`` row is the objective (minimised, per MPS convention); an
``OBJSENSE`` section with ``MAX`` flips it.

RANGES follow the standard semantics: for a row with rhs ``b`` and range
``r``,

========  =========================
row type  resulting interval
========  =========================
L         ``b − |r| <= ax <= b``
G         ``b <= ax <= b + |r|``
E, r>=0   ``b <= ax <= b + r``
E, r<0    ``b + r <= ax <= b``
========  =========================

implemented by adding the companion inequality as an extra constraint row.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.errors import LPFormatError
from repro.lp.problem import Bounds, ConstraintSense, LPProblem
from repro.sparse.coo import CooMatrix

_ROW_SENSE = {"L": ConstraintSense.LE, "G": ConstraintSense.GE, "E": ConstraintSense.EQ}
_SENSE_ROW = {ConstraintSense.LE: "L", ConstraintSense.GE: "G", ConstraintSense.EQ: "E"}


def read_mps(source: "str | Path | io.TextIOBase", *, sparse: bool | None = None) -> LPProblem:
    """Parse an MPS file (path, string contents, or open text file).

    ``sparse=None`` (default) returns a sparse constraint matrix when the
    problem's density is below 20% and it has more than 2500 cells.
    """
    text = _slurp(source)
    lines = text.splitlines()

    name = "mps"
    maximize = False
    section = None
    obj_row: str | None = None
    row_sense: dict[str, ConstraintSense] = {}
    row_order: list[str] = []
    col_order: list[str] = []
    col_index: dict[str, int] = {}
    entries: list[tuple[str, str, float]] = []  # (row, col, value)
    obj_coeffs: dict[str, float] = {}
    rhs: dict[str, float] = {}
    ranges: dict[str, float] = {}
    lower: dict[str, float] = {}
    upper: dict[str, float] = {}

    def ensure_col(colname: str) -> None:
        if colname not in col_index:
            col_index[colname] = len(col_order)
            col_order.append(colname)

    i = 0
    while i < len(lines):
        raw = lines[i]
        i += 1
        if not raw.strip() or raw.lstrip().startswith("*"):
            continue
        is_header = not raw[0].isspace()
        fields = raw.split()
        if is_header:
            section = fields[0].upper()
            if section == "NAME":
                name = fields[1] if len(fields) > 1 else "mps"
            elif section == "ENDATA":
                break
            elif section == "OBJSENSE" and len(fields) > 1:
                maximize = fields[1].upper() in ("MAX", "MAXIMIZE")
            continue

        if section == "OBJSENSE":
            maximize = fields[0].upper() in ("MAX", "MAXIMIZE")
        elif section == "ROWS":
            if len(fields) < 2:
                raise LPFormatError(f"bad ROWS line: {raw!r}")
            kind, rowname = fields[0].upper(), fields[1]
            if kind == "N":
                if obj_row is None:
                    obj_row = rowname
                # subsequent N rows are ignored (free rows), per convention
            elif kind in _ROW_SENSE:
                row_sense[rowname] = _ROW_SENSE[kind]
                row_order.append(rowname)
            else:
                raise LPFormatError(f"unknown row type {kind!r} in {raw!r}")
        elif section == "COLUMNS":
            if len(fields) >= 3 and fields[1].upper() == "'MARKER'":
                raise LPFormatError("integer MARKER sections are not supported (LP only)")
            if len(fields) < 3 or len(fields) % 2 == 0:
                raise LPFormatError(f"bad COLUMNS line: {raw!r}")
            colname = fields[0]
            ensure_col(colname)
            for k in range(1, len(fields), 2):
                rowname, value = fields[k], _num(fields[k + 1], raw)
                if rowname == obj_row:
                    obj_coeffs[colname] = obj_coeffs.get(colname, 0.0) + value
                elif rowname in row_sense:
                    entries.append((rowname, colname, value))
                else:
                    raise LPFormatError(f"COLUMNS references unknown row {rowname!r}")
        elif section == "RHS":
            for k in range(1, len(fields), 2):
                if k + 1 >= len(fields):
                    raise LPFormatError(f"bad RHS line: {raw!r}")
                rowname, value = fields[k], _num(fields[k + 1], raw)
                if rowname == obj_row:
                    continue  # objective constant: rare, ignored
                if rowname not in row_sense:
                    raise LPFormatError(f"RHS references unknown row {rowname!r}")
                rhs[rowname] = value
        elif section == "RANGES":
            for k in range(1, len(fields), 2):
                if k + 1 >= len(fields):
                    raise LPFormatError(f"bad RANGES line: {raw!r}")
                rowname, value = fields[k], _num(fields[k + 1], raw)
                if rowname not in row_sense:
                    raise LPFormatError(f"RANGES references unknown row {rowname!r}")
                ranges[rowname] = value
        elif section == "BOUNDS":
            if len(fields) < 3:
                raise LPFormatError(f"bad BOUNDS line: {raw!r}")
            btype = fields[0].upper()
            colname = fields[2]
            ensure_col(colname)
            value = _num(fields[3], raw) if len(fields) > 3 else 0.0
            if btype == "UP":
                upper[colname] = value
                if value < 0.0 and colname not in lower:
                    # classic MPS quirk: UP with negative bound frees the lower bound
                    lower[colname] = -np.inf
            elif btype == "LO":
                lower[colname] = value
            elif btype == "FX":
                lower[colname] = value
                upper[colname] = value
            elif btype == "FR":
                lower[colname] = -np.inf
                upper[colname] = np.inf
            elif btype == "MI":
                lower[colname] = -np.inf
            elif btype == "PL":
                upper[colname] = np.inf
            else:
                raise LPFormatError(f"unsupported bound type {btype!r}")
        elif section is None:
            raise LPFormatError(f"data before any section header: {raw!r}")
        else:
            raise LPFormatError(f"unsupported section {section!r}")

    if obj_row is None:
        raise LPFormatError("MPS file has no objective (N) row")
    if not row_order:
        raise LPFormatError("MPS file has no constraint rows")
    if not col_order:
        raise LPFormatError("MPS file has no columns")

    # RANGES expand into companion rows
    senses = [row_sense[r] for r in row_order]
    b = np.array([rhs.get(r, 0.0) for r in row_order])
    extra_rows: list[tuple[str, ConstraintSense, float]] = []
    for rowname, r in ranges.items():
        base = rhs.get(rowname, 0.0)
        sense = row_sense[rowname]
        if sense is ConstraintSense.LE:
            extra_rows.append((rowname, ConstraintSense.GE, base - abs(r)))
        elif sense is ConstraintSense.GE:
            extra_rows.append((rowname, ConstraintSense.LE, base + abs(r)))
        else:  # E row becomes an interval
            idx = row_order.index(rowname)
            if r >= 0:
                senses[idx] = ConstraintSense.GE
                extra_rows.append((rowname, ConstraintSense.LE, base + r))
            else:
                senses[idx] = ConstraintSense.LE
                extra_rows.append((rowname, ConstraintSense.GE, base + r))

    row_index = {r: i for i, r in enumerate(row_order)}
    m0 = len(row_order)
    all_rows: list[int] = []
    all_cols: list[int] = []
    all_vals: list[float] = []
    for rowname, colname, value in entries:
        all_rows.append(row_index[rowname])
        all_cols.append(col_index[colname])
        all_vals.append(value)
    b_list = list(b)
    for k, (rowname, sense, bound) in enumerate(extra_rows):
        new_i = m0 + k
        senses.append(sense)
        b_list.append(bound)
        for rowname2, colname, value in entries:
            if rowname2 == rowname:
                all_rows.append(new_i)
                all_cols.append(col_index[colname])
                all_vals.append(value)

    m, n = m0 + len(extra_rows), len(col_order)
    coo = CooMatrix((m, n), all_rows, all_cols, all_vals)
    density = coo.nnz / max(1, m * n)
    if sparse is None:
        sparse = m * n > 2500 and density < 0.2
    a = coo.tocsc() if sparse else coo.to_dense()

    c = np.array([obj_coeffs.get(col, 0.0) for col in col_order])
    lo = np.array([lower.get(col, 0.0) for col in col_order])
    hi = np.array([upper.get(col, np.inf) for col in col_order])

    return LPProblem(
        c=c,
        a=a,
        senses=senses,
        b=np.asarray(b_list),
        bounds=Bounds(lo, hi),
        maximize=maximize,
        name=name,
        var_names=col_order,
    )


def write_mps(problem: LPProblem, target: "str | Path | io.TextIOBase | None" = None) -> str:
    """Serialise an :class:`LPProblem` to free-format MPS.

    Returns the MPS text; also writes it to ``target`` when given.
    Range constraints never appear (the problem model has none); bounds are
    emitted as the minimal set of UP/LO/FX/FR/MI records.
    """
    out = io.StringIO()
    w = out.write
    w(f"NAME {problem.name}\n")
    if problem.maximize:
        w("OBJSENSE\n    MAX\n")
    w("ROWS\n")
    w(" N  COST\n")
    row_names = [f"R{i}" for i in range(problem.num_constraints)]
    for i, sense in enumerate(problem.senses):
        w(f" {_SENSE_ROW[sense]}  {row_names[i]}\n")

    w("COLUMNS\n")
    a = problem.a_dense()
    for j in range(problem.num_vars):
        col = problem.variable_name(j)
        pairs: list[tuple[str, float]] = []
        if problem.c[j] != 0.0:
            pairs.append(("COST", problem.c[j]))
        for i in np.nonzero(a[:, j])[0]:
            pairs.append((row_names[i], a[i, j]))
        for k in range(0, len(pairs), 2):
            chunk = pairs[k : k + 2]
            body = "   ".join(f"{r} {v:.17g}" for r, v in chunk)
            w(f"    {col}   {body}\n")

    w("RHS\n")
    for i, bi in enumerate(problem.b):
        if bi != 0.0:
            w(f"    RHS   {row_names[i]} {bi:.17g}\n")

    lo, hi = problem.bounds.lower, problem.bounds.upper
    records: list[str] = []
    for j in range(problem.num_vars):
        col = problem.variable_name(j)
        l, u = lo[j], hi[j]
        if l == 0.0 and np.isposinf(u):
            continue  # default bounds
        if l == u:
            records.append(f" FX BND {col} {l:.17g}")
            continue
        if np.isneginf(l) and np.isposinf(u):
            records.append(f" FR BND {col}")
            continue
        if np.isneginf(l):
            records.append(f" MI BND {col}")
        elif l != 0.0:
            records.append(f" LO BND {col} {l:.17g}")
        if not np.isposinf(u):
            records.append(f" UP BND {col} {u:.17g}")
    if records:
        w("BOUNDS\n")
        for rec in records:
            w(rec + "\n")
    w("ENDATA\n")

    text = out.getvalue()
    if target is not None:
        if isinstance(target, (str, Path)):
            Path(target).write_text(text)
        else:
            target.write(text)
    return text


def _slurp(source: "str | Path | io.TextIOBase") -> str:
    if isinstance(source, io.TextIOBase):
        return source.read()
    if isinstance(source, Path):
        return source.read_text()
    # str: a path if it points at an existing file, else raw contents
    if "\n" not in source and Path(source).exists():
        return Path(source).read_text()
    return source


def _num(token: str, line: str) -> float:
    try:
        return float(token)
    except ValueError:
        raise LPFormatError(f"bad numeric field {token!r} in line {line!r}") from None

"""Reproducible LP workload generators.

The paper evaluates on randomly generated dense LPs of increasing size; the
generators here produce that family plus the structured instances used by
the wider evaluation: sparse random LPs, degenerate instances (ratio-test
ties), the Klee–Minty cube (worst-case pivoting), Beale's cycling example
(anti-cycling tests), transportation problems (equality constraints that
force phase 1) and a NETLIB-like synthetic suite spanning shapes and
densities.

Every generator takes an integer ``seed`` and is deterministic given it.

Feasibility/boundedness guarantees: the random families draw A from a
strictly positive range with ``x >= 0`` and ``A x <= b``, ``b > 0`` — the
origin is feasible and every variable is bounded by each row, so the LP is
feasible and bounded for *any* objective, which lets benchmarks maximise a
positive objective (the interesting direction) without ever generating a
degenerate-by-accident unbounded instance.
"""

from __future__ import annotations

import numpy as np

from repro.lp.problem import Bounds, ConstraintSense, LPProblem
from repro.sparse.coo import CooMatrix


def random_dense_lp(
    m: int,
    n: int,
    seed: int = 0,
    *,
    name: str | None = None,
) -> LPProblem:
    """The paper's workload: a random dense LP, feasible and bounded.

    maximise cᵀx  s.t.  A x <= b, x >= 0, with A ∈ U(0.1, 1.1)^{m×n},
    b ∈ U(n/2, n), c ∈ U(0.1, 1.1).
    """
    if m < 1 or n < 1:
        raise ValueError("m and n must be positive")
    rng = np.random.default_rng(seed)
    a = rng.uniform(0.1, 1.1, size=(m, n))
    b = rng.uniform(n / 2.0, float(n), size=m)
    c = rng.uniform(0.1, 1.1, size=n)
    return LPProblem(
        c=c,
        a=a,
        senses=[ConstraintSense.LE] * m,
        b=b,
        bounds=Bounds.nonnegative(n),
        maximize=True,
        name=name or f"dense-{m}x{n}-s{seed}",
    )


def random_sparse_lp(
    m: int,
    n: int,
    density: float = 0.05,
    seed: int = 0,
    *,
    name: str | None = None,
) -> LPProblem:
    """A random sparse LP with the same feasible/bounded guarantees.

    Each row receives ``max(2, round(density * n))`` strictly positive
    entries at distinct random columns; every column is additionally touched
    at least once so no variable is unconstrained.  A is returned in CSC
    (the solver's preferred column-access format).
    """
    if m < 1 or n < 1:
        raise ValueError("m and n must be positive")
    if not 0.0 < density <= 1.0:
        raise ValueError("density must lie in (0, 1]")
    rng = np.random.default_rng(seed)
    per_row = max(2, min(n, round(density * n)))

    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    for i in range(m):
        chosen = rng.choice(n, size=per_row, replace=False)
        rows.append(np.full(per_row, i, dtype=np.int64))
        cols.append(chosen.astype(np.int64))
    # guarantee column coverage: give each uncovered column one entry
    covered = np.zeros(n, dtype=bool)
    covered[np.concatenate(cols)] = True
    missing = np.where(~covered)[0]
    if missing.size:
        extra_rows = rng.integers(0, m, size=missing.size)
        rows.append(extra_rows.astype(np.int64))
        cols.append(missing.astype(np.int64))

    row = np.concatenate(rows)
    col = np.concatenate(cols)
    val = rng.uniform(0.1, 1.1, size=row.size)
    a = CooMatrix((m, n), row, col, val).tocsc()

    b = rng.uniform(per_row / 2.0, float(per_row), size=m)
    c = rng.uniform(0.1, 1.1, size=n)
    return LPProblem(
        c=c,
        a=a,
        senses=[ConstraintSense.LE] * m,
        b=b,
        bounds=Bounds.nonnegative(n),
        maximize=True,
        name=name or f"sparse-{m}x{n}-d{density}-s{seed}",
    )


def degenerate_lp(m: int, n: int, seed: int = 0) -> LPProblem:
    """A primal-degenerate instance: many ratio-test ties.

    Rows are rescaled so that the origin-adjacent vertex has identical
    ratios b_i / a_i1 across rows, making the first pivots heavily tied —
    the situation where Bland's rule and deterministic tie-breaking matter.
    """
    base = random_dense_lp(m, n, seed)
    a = base.a_dense().copy()
    # force b_i / a_{i,0} equal across rows by pinning b to column 0:
    # the first Dantzig pivot then ties on every row.
    target = float(np.median(base.b / a[:, 0]))
    b = a[:, 0] * target
    return LPProblem(
        c=base.c,
        a=a,
        senses=[ConstraintSense.LE] * m,
        b=b,
        bounds=Bounds.nonnegative(n),
        maximize=True,
        name=f"degenerate-{m}x{n}-s{seed}",
    )


def klee_minty_lp(d: int) -> LPProblem:
    """The Klee–Minty cube in d dimensions.

    maximise 2^{d-1} x₁ + 2^{d-2} x₂ + … + x_d subject to the perturbed-cube
    constraints; Dantzig pricing visits all 2^d vertices, so this is the
    classic stress test for pricing-rule ablations (A1).
    """
    if d < 1:
        raise ValueError("dimension must be positive")
    a = np.zeros((d, d))
    b = np.zeros(d)
    for i in range(d):
        for j in range(i):
            a[i, j] = 2.0 ** (i - j + 1)
        a[i, i] = 1.0
        b[i] = 5.0**(i + 1)
    c = np.array([2.0 ** (d - 1 - j) for j in range(d)])
    return LPProblem(
        c=c,
        a=a,
        senses=[ConstraintSense.LE] * d,
        b=b,
        bounds=Bounds.nonnegative(d),
        maximize=True,
        name=f"klee-minty-{d}",
    )


def beale_cycling_lp() -> LPProblem:
    """Beale's 1955 example on which Dantzig pricing with a naive
    lowest-index ratio tie-break cycles forever; Bland's rule terminates.

    minimise  -0.75 x₁ + 150 x₂ - 0.02 x₃ + 6 x₄
    s.t.  0.25 x₁ - 60 x₂ - 0.04 x₃ + 9 x₄ <= 0
          0.50 x₁ - 90 x₂ - 0.02 x₃ + 3 x₄ <= 0
          x₃ <= 1,  x >= 0        (optimum -0.05 at x = (0.04, 0, 1, 0))
    """
    a = np.array(
        [
            [0.25, -60.0, -0.04, 9.0],
            [0.50, -90.0, -0.02, 3.0],
            [0.0, 0.0, 1.0, 0.0],
        ]
    )
    b = np.array([0.0, 0.0, 1.0])
    c = np.array([-0.75, 150.0, -0.02, 6.0])
    return LPProblem(
        c=c,
        a=a,
        senses=[ConstraintSense.LE] * 3,
        b=b,
        bounds=Bounds.nonnegative(4),
        maximize=False,
        name="beale-cycling",
    )


def transportation_lp(
    n_supply: int,
    n_demand: int,
    seed: int = 0,
) -> LPProblem:
    """A balanced transportation problem (equality constraints, phase 1).

    minimise Σ cᵢⱼ xᵢⱼ  s.t. row sums = supplies, column sums = demands,
    x >= 0, with Σ supply = Σ demand.  Always feasible and bounded.
    """
    if n_supply < 1 or n_demand < 1:
        raise ValueError("supply and demand counts must be positive")
    rng = np.random.default_rng(seed)
    supply = rng.uniform(10.0, 50.0, size=n_supply)
    demand = rng.uniform(10.0, 50.0, size=n_demand)
    demand *= supply.sum() / demand.sum()  # balance

    n = n_supply * n_demand
    m = n_supply + n_demand
    a = np.zeros((m, n))
    for i in range(n_supply):
        a[i, i * n_demand : (i + 1) * n_demand] = 1.0
    for j in range(n_demand):
        a[n_supply + j, j::n_demand] = 1.0
    b = np.concatenate([supply, demand])
    c = rng.uniform(1.0, 20.0, size=n)
    return LPProblem(
        c=c,
        a=a,
        senses=[ConstraintSense.EQ] * m,
        b=b,
        bounds=Bounds.nonnegative(n),
        maximize=False,
        name=f"transport-{n_supply}x{n_demand}-s{seed}",
    )


def blending_lp(n_ingredients: int = 8, n_nutrients: int = 5, seed: int = 0) -> LPProblem:
    """A diet/blending LP with >= rows (surplus variables + phase 1).

    minimise cost  s.t.  nutrient content >= requirements, blend fraction
    sums to 1, x >= 0.
    """
    rng = np.random.default_rng(seed)
    content = rng.uniform(0.0, 10.0, size=(n_nutrients, n_ingredients))
    # requirements set below the achievable mean so the LP is feasible
    requirement = content.mean(axis=1) * rng.uniform(0.5, 0.9, size=n_nutrients)
    cost = rng.uniform(1.0, 5.0, size=n_ingredients)

    a = np.vstack([content, np.ones((1, n_ingredients))])
    b = np.concatenate([requirement, [1.0]])
    senses = [ConstraintSense.GE] * n_nutrients + [ConstraintSense.EQ]
    return LPProblem(
        c=cost,
        a=a,
        senses=senses,
        b=b,
        bounds=Bounds.nonnegative(n_ingredients),
        maximize=False,
        name=f"blend-{n_ingredients}x{n_nutrients}-s{seed}",
    )


def staircase_lp(n_stages: int, stage_size: int = 8, seed: int = 0) -> LPProblem:
    """A staircase-structured LP (multi-period planning structure).

    Stage t owns a block of variables; its rows couple stage t's block with
    stage t+1's — the banded-block sparsity pattern of dynamic/multi-period
    models, which NETLIB is full of.  Feasible and bounded by the same
    positive-coefficient construction as the random families.
    """
    if n_stages < 1 or stage_size < 1:
        raise ValueError("stages and stage size must be positive")
    rng = np.random.default_rng(seed)
    m = n_stages * stage_size
    n = (n_stages + 1) * stage_size
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    for t in range(n_stages):
        r0 = t * stage_size
        c0 = t * stage_size
        # each stage row touches its own block and the next block
        for i in range(stage_size):
            width = 2 * stage_size
            rows.append(np.full(width, r0 + i, dtype=np.int64))
            cols.append(np.arange(c0, c0 + width, dtype=np.int64))
            vals.append(rng.uniform(0.1, 1.1, size=width))
    row = np.concatenate(rows)
    col = np.concatenate(cols)
    val = np.concatenate(vals)
    a = CooMatrix((m, n), row, col, val).tocsc()
    b = rng.uniform(stage_size, 2.0 * stage_size, size=m)
    c = rng.uniform(0.1, 1.1, size=n)
    return LPProblem(
        c=c, a=a, senses=[ConstraintSense.LE] * m, b=b,
        bounds=Bounds.nonnegative(n), maximize=True,
        name=f"staircase-{n_stages}x{stage_size}-s{seed}",
    )


def band_lp(m: int, bandwidth: int = 5, seed: int = 0) -> LPProblem:
    """A banded LP: row i touches columns [i-k, i+k] (tridiagonal-style
    coupling — discretised-PDE / time-series structure)."""
    if m < 1 or bandwidth < 1:
        raise ValueError("size and bandwidth must be positive")
    rng = np.random.default_rng(seed)
    n = m
    rows, cols = [], []
    for i in range(m):
        lo = max(0, i - bandwidth)
        hi = min(n, i + bandwidth + 1)
        rows.append(np.full(hi - lo, i, dtype=np.int64))
        cols.append(np.arange(lo, hi, dtype=np.int64))
    row = np.concatenate(rows)
    col = np.concatenate(cols)
    val = rng.uniform(0.1, 1.1, size=row.size)
    a = CooMatrix((m, n), row, col, val).tocsc()
    b = rng.uniform(bandwidth, 2.0 * bandwidth, size=m)
    c = rng.uniform(0.1, 1.1, size=n)
    return LPProblem(
        c=c, a=a, senses=[ConstraintSense.LE] * m, b=b,
        bounds=Bounds.nonnegative(n), maximize=True,
        name=f"band-{m}w{bandwidth}-s{seed}",
    )


def netlib_synth_suite(seed: int = 0) -> list[LPProblem]:
    """A NETLIB-like synthetic suite: varied shapes, senses and densities.

    Stands in for the public NETLIB set (no network access in this
    environment): small-to-medium instances covering all-<= dense rows,
    sparse rows, equality systems and mixed-sense problems — the structural
    variety the NETLIB problems exercise.
    """
    problems: list[LPProblem] = [
        random_dense_lp(27, 32, seed=seed, name="synth-afiro"),
        random_dense_lp(56, 97, seed=seed + 1, name="synth-adlittle"),
        random_dense_lp(74, 83, seed=seed + 2, name="synth-blend"),
        random_sparse_lp(173, 262, density=0.08, seed=seed + 3, name="synth-beaconfd"),
        random_sparse_lp(182, 249, density=0.05, seed=seed + 4, name="synth-brandy"),
        random_sparse_lp(223, 282, density=0.04, seed=seed + 5, name="synth-e226"),
        transportation_lp(10, 14, seed=seed + 6),
        blending_lp(12, 7, seed=seed + 7),
        degenerate_lp(40, 50, seed=seed + 8),
        staircase_lp(8, 8, seed=seed + 9),
        band_lp(120, bandwidth=4, seed=seed + 10),
    ]
    return problems

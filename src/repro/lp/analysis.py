"""Structural analysis of LP instances.

Computes the instance statistics the evaluation tables report (shape, nnz,
density, coefficient spread) plus modelling diagnostics (bound classes,
sense mix, suspected degeneracy) — the ``repro info`` CLI command and the
correctness table T2 both use this.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.lp.problem import ConstraintSense, LPProblem
from repro.lp.scaling import scaling_spread


@dataclasses.dataclass
class ProblemStats:
    """Structural statistics of one LP instance."""

    name: str
    rows: int
    cols: int
    nnz: int
    density: float
    #: max|a| / min|a| over nonzeros (numerical-difficulty indicator).
    coefficient_spread: float
    senses: dict[str, int]
    #: Bound classes: nonneg / free / boxed / upper-only / lower-shifted / fixed.
    bound_classes: dict[str, int]
    maximize: bool
    is_sparse: bool
    #: rhs ties per leading column (a cheap degeneracy smell, see
    #: :func:`analyze`); 0 = no ties.
    rhs_ratio_ties: int

    def render(self) -> str:
        lines = [
            f"problem {self.name!r}: "
            f"{'max' if self.maximize else 'min'}, "
            f"{self.rows} rows x {self.cols} cols, "
            f"{self.nnz} nnz ({100 * self.density:.2f}%), "
            f"{'sparse' if self.is_sparse else 'dense'} storage",
            f"  coefficient spread: {self.coefficient_spread:.3g}"
            + ("  (consider scale=True)" if self.coefficient_spread > 1e6 else ""),
            "  senses: " + ", ".join(f"{k}: {v}" for k, v in self.senses.items() if v),
            "  bounds: " + ", ".join(f"{k}: {v}" for k, v in self.bound_classes.items() if v),
        ]
        if self.rhs_ratio_ties:
            lines.append(
                f"  degeneracy smell: {self.rhs_ratio_ties} tied first-pivot ratios"
            )
        return "\n".join(lines)


def analyze(problem: LPProblem) -> ProblemStats:
    """Compute :class:`ProblemStats` for an instance."""
    a = problem.a
    if problem.is_sparse:
        nnz = a.nnz
    else:
        nnz = int(np.count_nonzero(a))
    m, n = problem.num_constraints, problem.num_vars
    density = nnz / (m * n) if m * n else 0.0

    senses = {"<=": 0, "=": 0, ">=": 0}
    for s in problem.senses:
        senses[s.value] += 1

    lower, upper = problem.bounds.lower, problem.bounds.upper
    lo_f, hi_f = np.isfinite(lower), np.isfinite(upper)
    classes = {
        "nonneg": int(np.sum((lower == 0) & ~hi_f)),
        "free": int(np.sum(~lo_f & ~hi_f)),
        "boxed": int(np.sum(lo_f & hi_f & (lower != upper))),
        "fixed": int(np.sum(lo_f & hi_f & (lower == upper))),
        "upper-only": int(np.sum(~lo_f & hi_f)),
        "lower-shifted": int(np.sum(lo_f & (lower != 0) & ~hi_f)),
    }

    # degeneracy smell: count duplicated b_i / a_{i,j0} ratios against the
    # first column with full support (exact ties produce ratio-test ties on
    # the very first pivot)
    dense0 = problem.a_dense()
    ties = 0
    for j in range(min(n, 4)):
        col = dense0[:, j]
        ok = col != 0
        if np.count_nonzero(ok) >= 2:
            ratios = problem.b[ok] / col[ok]
            uniq = np.unique(np.round(ratios, 12))
            ties = max(ties, int(ratios.size - uniq.size))
    return ProblemStats(
        name=problem.name,
        rows=m,
        cols=n,
        nnz=nnz,
        density=density,
        coefficient_spread=scaling_spread(dense0),
        senses=senses,
        bound_classes=classes,
        maximize=problem.maximize,
        is_sparse=problem.is_sparse,
        rhs_ratio_ties=ties,
    )

"""General-form LP problems.

An :class:`LPProblem` is

.. math::

    \\min_x \\ (\\text{or } \\max_x)\\ c^T x \\quad \\text{s.t.} \\quad
    A_i x \\ \\{\\le, =, \\ge\\}\\ b_i, \\qquad l \\le x \\le u

with a dense or sparse constraint matrix.  This is the user-facing surface;
solvers consume the :class:`~repro.lp.standard_form.StandardFormLP` produced
by :func:`~repro.lp.standard_form.to_standard_form`.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import Sequence

import numpy as np

from repro.errors import LPBoundsError, LPDimensionError
from repro.sparse.base import SparseMatrix


class ConstraintSense(enum.Enum):
    """Row sense of one linear constraint."""

    LE = "<="
    EQ = "="
    GE = ">="

    @classmethod
    def parse(cls, token: "str | ConstraintSense") -> "ConstraintSense":
        """Accepts '<=', '<', '=', '==', '>=', '>' or an existing sense."""
        if isinstance(token, ConstraintSense):
            return token
        mapping = {
            "<=": cls.LE,
            "<": cls.LE,
            "=": cls.EQ,
            "==": cls.EQ,
            ">=": cls.GE,
            ">": cls.GE,
        }
        try:
            return mapping[token.strip()]
        except (KeyError, AttributeError):
            raise LPDimensionError(f"unknown constraint sense {token!r}") from None

    def flipped(self) -> "ConstraintSense":
        """Sense after multiplying the row by -1."""
        if self is ConstraintSense.LE:
            return ConstraintSense.GE
        if self is ConstraintSense.GE:
            return ConstraintSense.LE
        return ConstraintSense.EQ


@dataclasses.dataclass
class Bounds:
    """Per-variable bounds ``lower <= x <= upper`` (±inf allowed)."""

    lower: np.ndarray
    upper: np.ndarray

    @classmethod
    def nonnegative(cls, n: int) -> "Bounds":
        """The default LP bounds: 0 <= x < inf."""
        return cls(np.zeros(n), np.full(n, np.inf))

    @classmethod
    def from_pairs(cls, pairs: Sequence[tuple[float | None, float | None]]) -> "Bounds":
        """Build from scipy-style (lo, hi) pairs; ``None`` means unbounded."""
        lower = np.array([(-np.inf if lo is None else lo) for lo, _ in pairs], dtype=np.float64)
        upper = np.array([(np.inf if hi is None else hi) for _, hi in pairs], dtype=np.float64)
        return cls(lower, upper)

    def validate(self, n: int) -> None:
        if self.lower.shape != (n,) or self.upper.shape != (n,):
            raise LPDimensionError(
                f"bounds must have length {n}, got {self.lower.shape}/{self.upper.shape}"
            )
        bad = self.lower > self.upper
        if bad.any():
            j = int(np.argmax(bad))
            raise LPBoundsError(
                f"variable {j} has contradictory bounds "
                f"[{self.lower[j]}, {self.upper[j]}]"
            )

    def copy(self) -> "Bounds":
        return Bounds(self.lower.copy(), self.upper.copy())


@dataclasses.dataclass
class LPProblem:
    """A general-form linear program.

    Attributes
    ----------
    c:
        Objective coefficients, length n.
    a:
        Constraint matrix, m×n — a dense ndarray or any library sparse
        matrix (:class:`~repro.sparse.csr.CsrMatrix` etc.).
    senses:
        Length-m array of :class:`ConstraintSense`.
    b:
        Right-hand sides, length m.
    bounds:
        Variable bounds; default 0 <= x < inf.
    maximize:
        Objective orientation; results are always reported in this
        orientation.
    name / var_names:
        Optional labels used by the MPS writer and reports.
    """

    c: np.ndarray
    a: "np.ndarray | SparseMatrix"
    senses: list[ConstraintSense]
    b: np.ndarray
    bounds: Bounds
    maximize: bool = False
    name: str = "lp"
    var_names: list[str] | None = None

    def __post_init__(self) -> None:
        self.c = np.asarray(self.c, dtype=np.float64)
        self.b = np.asarray(self.b, dtype=np.float64)
        if self.c.ndim != 1:
            raise LPDimensionError("c must be a vector")
        if self.b.ndim != 1:
            raise LPDimensionError("b must be a vector")
        if not isinstance(self.a, SparseMatrix):
            self.a = np.asarray(self.a, dtype=np.float64)
            if self.a.ndim != 2:
                raise LPDimensionError("A must be a matrix")
        m, n = self.a.shape
        if self.c.size != n:
            raise LPDimensionError(f"c has length {self.c.size}, A has {n} columns")
        if self.b.size != m:
            raise LPDimensionError(f"b has length {self.b.size}, A has {m} rows")
        self.senses = [ConstraintSense.parse(s) for s in self.senses]
        if len(self.senses) != m:
            raise LPDimensionError(
                f"{len(self.senses)} senses for {m} constraints"
            )
        self.bounds.validate(n)
        if self.var_names is not None and len(self.var_names) != n:
            raise LPDimensionError("var_names length mismatch")
        if not np.all(np.isfinite(self.c)):
            raise LPDimensionError("c must be finite")
        if not np.all(np.isfinite(self.b)):
            raise LPDimensionError("b must be finite")

    # -- convenience constructors ------------------------------------------

    @classmethod
    def minimize(
        cls,
        c,
        a_ub=None,
        b_ub=None,
        a_eq=None,
        b_eq=None,
        bounds: Bounds | Sequence[tuple[float | None, float | None]] | None = None,
        name: str = "lp",
    ) -> "LPProblem":
        """scipy.optimize.linprog-style constructor (minimisation)."""
        return cls._build(c, a_ub, b_ub, a_eq, b_eq, bounds, maximize=False, name=name)

    @classmethod
    def maximize_problem(
        cls,
        c,
        a_ub=None,
        b_ub=None,
        a_eq=None,
        b_eq=None,
        bounds: Bounds | Sequence[tuple[float | None, float | None]] | None = None,
        name: str = "lp",
    ) -> "LPProblem":
        """Like :meth:`minimize` but maximising c'x."""
        return cls._build(c, a_ub, b_ub, a_eq, b_eq, bounds, maximize=True, name=name)

    @classmethod
    def _build(cls, c, a_ub, b_ub, a_eq, b_eq, bounds, *, maximize, name):
        c = np.asarray(c, dtype=np.float64)
        n = c.size
        blocks: list[np.ndarray] = []
        rhs: list[np.ndarray] = []
        senses: list[ConstraintSense] = []
        if a_ub is not None:
            a_ub = np.atleast_2d(np.asarray(a_ub, dtype=np.float64))
            b_ub = np.atleast_1d(np.asarray(b_ub, dtype=np.float64))
            blocks.append(a_ub)
            rhs.append(b_ub)
            senses.extend([ConstraintSense.LE] * a_ub.shape[0])
        if a_eq is not None:
            a_eq = np.atleast_2d(np.asarray(a_eq, dtype=np.float64))
            b_eq = np.atleast_1d(np.asarray(b_eq, dtype=np.float64))
            blocks.append(a_eq)
            rhs.append(b_eq)
            senses.extend([ConstraintSense.EQ] * a_eq.shape[0])
        if not blocks:
            raise LPDimensionError("problem has no constraints")
        a = np.vstack(blocks)
        b = np.concatenate(rhs)
        if bounds is None:
            bnd = Bounds.nonnegative(n)
        elif isinstance(bounds, Bounds):
            bnd = bounds
        else:
            bnd = Bounds.from_pairs(bounds)
        return cls(c=c, a=a, senses=senses, b=b, bounds=bnd, maximize=maximize, name=name)

    # -- structural properties ------------------------------------------------

    @property
    def num_vars(self) -> int:
        return int(self.c.size)

    @property
    def num_constraints(self) -> int:
        return int(self.b.size)

    @property
    def is_sparse(self) -> bool:
        return isinstance(self.a, SparseMatrix)

    def a_dense(self) -> np.ndarray:
        """The constraint matrix as a dense ndarray (copy for sparse A)."""
        if isinstance(self.a, SparseMatrix):
            return self.a.to_dense()
        return np.asarray(self.a)

    def a_matvec(self, x: np.ndarray) -> np.ndarray:
        if isinstance(self.a, SparseMatrix):
            return self.a.matvec(x)
        return self.a @ x

    # -- evaluation ----------------------------------------------------------

    def objective_value(self, x: np.ndarray) -> float:
        """c'x in the problem's own orientation (no sign games)."""
        return float(self.c @ np.asarray(x, dtype=np.float64))

    def constraint_violation(self, x: np.ndarray) -> float:
        """Max violation of constraints and bounds at x (0 when feasible)."""
        x = np.asarray(x, dtype=np.float64)
        ax = self.a_matvec(x)
        worst = 0.0
        for i, sense in enumerate(self.senses):
            if sense is ConstraintSense.LE:
                worst = max(worst, ax[i] - self.b[i])
            elif sense is ConstraintSense.GE:
                worst = max(worst, self.b[i] - ax[i])
            else:
                worst = max(worst, abs(ax[i] - self.b[i]))
        worst = max(worst, float(np.max(self.bounds.lower - x, initial=0.0)))
        worst = max(worst, float(np.max(x - self.bounds.upper, initial=0.0)))
        return float(worst)

    def is_feasible(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        return self.constraint_violation(x) <= tol

    # -- identity ------------------------------------------------------------

    def fingerprint(self) -> str:
        """Structural identity hash (hex digest) for warm-start caching.

        Two problems share a fingerprint exactly when they have the same
        shape, objective orientation, constraint senses, bound
        finite/infinite pattern and constraint-matrix sparsity pattern —
        the conditions under which an optimal basis of one is a meaningful
        warm-start hint for the other.  The *numeric values* of ``c``,
        ``b``, ``A`` and the bounds are deliberately excluded: a perturbed
        re-submission (new rhs, drifted costs) keeps its fingerprint, which
        is what lets a serving layer chain it from a cached basis.  Names
        are cosmetic and excluded too.
        """
        h = hashlib.sha256()
        h.update(b"repro.lp/fingerprint/v1\0")
        m, n = self.num_constraints, self.num_vars
        h.update(f"{m}x{n}|{'max' if self.maximize else 'min'}|".encode())
        h.update("".join(s.value for s in self.senses).encode())
        h.update(b"|")
        h.update(np.isfinite(self.bounds.lower).tobytes())
        h.update(np.isfinite(self.bounds.upper).tobytes())
        if self.is_sparse:
            # Format-neutral sparsity pattern: row-major nonzero coordinates
            # (a CSR and a CSC holding the same matrix fingerprint alike).
            rows, cols = np.nonzero(self.a_dense())
            h.update(b"sparse|")
            h.update(rows.astype(np.int64).tobytes())
            h.update(cols.astype(np.int64).tobytes())
        else:
            h.update(b"dense|")
        return h.hexdigest()

    # -- misc ---------------------------------------------------------------

    def variable_name(self, j: int) -> str:
        if self.var_names is not None:
            return self.var_names[j]
        return f"x{j}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "sparse" if self.is_sparse else "dense"
        sense = "max" if self.maximize else "min"
        return (
            f"<LPProblem {self.name!r} {sense} {kind} "
            f"m={self.num_constraints} n={self.num_vars}>"
        )

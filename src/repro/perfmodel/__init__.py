"""Analytic machine performance models.

The reproduction has no 2009-era GPU (or CPU) to run on, so machine time is
*modeled from first principles* while the algorithms themselves run for real:
iteration counts, pivot sequences and operation counts are genuine, and each
operation is charged to an analytic roofline-style model of the target
machine (GT200-class GPU for the paper's solver, Core-2-era CPU for the
sequential comparator).  This preserves the *shape* of the paper's results —
who wins, by roughly what factor, and where the CPU/GPU crossover falls —
which is exactly what the reproduction protocol asks for.

Contents
--------
- :class:`~repro.perfmodel.ops.OpCost` — a machine-neutral description of one
  operation (FLOPs, bytes moved, parallel width, coalescing).
- :class:`~repro.perfmodel.gpu_model.GpuCostModel` — SIMT kernel timing:
  launch overhead + max(compute, memory) with occupancy, device-fill and
  coalescing corrections; PCIe transfer timing.
- :class:`~repro.perfmodel.cpu_model.CpuCostModel` — sequential roofline:
  max(compute, memory) + per-call overhead.
- :mod:`~repro.perfmodel.presets` — calibrated parameter sets: GTX 280,
  GTX 8800, Tesla C1060 and a Core 2 Quad-class host.
"""

from repro.perfmodel.ops import OpCost
from repro.perfmodel.gpu_model import GpuCostModel, GpuModelParams
from repro.perfmodel.cpu_model import CpuCostModel, CpuModelParams
from repro.perfmodel.presets import (
    GTX280_PARAMS,
    GTX8800_PARAMS,
    TESLA_C1060_PARAMS,
    CORE2_CPU_PARAMS,
    MODERN_CPU_PARAMS,
    gpu_model_preset,
    cpu_model_preset,
)

__all__ = [
    "OpCost",
    "GpuCostModel",
    "GpuModelParams",
    "CpuCostModel",
    "CpuModelParams",
    "GTX280_PARAMS",
    "GTX8800_PARAMS",
    "TESLA_C1060_PARAMS",
    "CORE2_CPU_PARAMS",
    "MODERN_CPU_PARAMS",
    "gpu_model_preset",
    "cpu_model_preset",
]

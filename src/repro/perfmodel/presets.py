"""Calibrated machine-model parameter presets.

The headline preset pair is **GTX 280** (the GPU the paper evaluates on) and
**Core 2 Quad-class host** (the sequential comparator).  Additional presets —
the previous-generation G80 (GeForce 8800 GTX) and the HPC variant of GT200
(Tesla C1060) — support the device-characteristics table (T1) and let users
explore how the speedup shape shifts across 2006–2009 hardware.

Numbers are public datasheet values; sustained-efficiency factors are
calibrated so BLAS-2 kernels land at the fraction of peak that contemporary
cuBLAS/ATLAS measurements report (memory-bound GEMV at ~70–80% of peak
bandwidth; compute-bound GEMM at ~35–60% of peak FLOPs).
"""

from __future__ import annotations

from repro.perfmodel.cpu_model import CpuModelParams
from repro.perfmodel.gpu_model import GpuModelParams

#: NVIDIA GeForce GTX 280 (GT200, June 2008) — the paper's device.
GTX280_PARAMS = GpuModelParams(
    name="GeForce GTX 280",
    sm_count=30,
    warp_size=32,
    max_threads_per_block=512,
    max_threads_per_sm=1024,
    shared_mem_per_block=16 * 1024,
    global_mem_bytes=1024 * 1024**2,
    peak_flops_fp32=933e9,
    peak_flops_fp64=78e9,
    mem_bandwidth=141.7e9,
    compute_efficiency=0.35,
    memory_efficiency=0.75,
    launch_overhead=5.0e-6,
    transaction_bytes=64,
    pcie_bandwidth=5.5e9,  # PCIe 2.0 x16, effective
    pcie_latency=10.0e-6,
)

#: NVIDIA GeForce 8800 GTX (G80, Nov 2006) — previous generation; no fp64
#: hardware (modeled as 1/64 of fp32 via emulation).
GTX8800_PARAMS = GpuModelParams(
    name="GeForce 8800 GTX",
    sm_count=16,
    warp_size=32,
    max_threads_per_block=512,
    max_threads_per_sm=768,
    shared_mem_per_block=16 * 1024,
    global_mem_bytes=768 * 1024**2,
    peak_flops_fp32=345.6e9,
    peak_flops_fp64=5.4e9,
    mem_bandwidth=86.4e9,
    compute_efficiency=0.30,
    memory_efficiency=0.70,
    launch_overhead=7.0e-6,
    transaction_bytes=64,
    pcie_bandwidth=3.0e9,  # PCIe 1.1 x16, effective
    pcie_latency=12.0e-6,
)

#: NVIDIA Tesla C1060 (GT200 HPC variant, 4 GiB, slightly lower clocks).
TESLA_C1060_PARAMS = GpuModelParams(
    name="Tesla C1060",
    sm_count=30,
    warp_size=32,
    max_threads_per_block=512,
    max_threads_per_sm=1024,
    shared_mem_per_block=16 * 1024,
    global_mem_bytes=4096 * 1024**2,
    peak_flops_fp32=933e9,
    peak_flops_fp64=78e9,
    mem_bandwidth=102.4e9,
    compute_efficiency=0.35,
    memory_efficiency=0.75,
    launch_overhead=5.0e-6,
    transaction_bytes=64,
    pcie_bandwidth=5.5e9,
    pcie_latency=10.0e-6,
)

#: Intel Core 2 Quad-class host (2008) with an optimized BLAS (ATLAS),
#: single-threaded — the paper's sequential comparator.
CORE2_CPU_PARAMS = CpuModelParams(
    name="Core 2 Quad Q9550 (1 core, ATLAS)",
    sustained_flops_fp32=16e9,
    sustained_flops_fp64=8e9,
    mem_bandwidth=6.4e9,
    cache_line_bytes=64,
    call_overhead=0.2e-6,
    # 12 MiB L2: the basis inverse and pricing row stay largely resident for
    # the evaluated problem sizes, which is why the 2009 CPU comparator is
    # hard to beat by more than ~2-3x.
    cache_hit_fraction=0.55,
)

#: A modern many-core host, provided for "what would this look like today"
#: exploration (not used by the paper-shaped benchmarks).
MODERN_CPU_PARAMS = CpuModelParams(
    name="modern x86 core (AVX-512)",
    sustained_flops_fp32=120e9,
    sustained_flops_fp64=60e9,
    mem_bandwidth=40e9,
    cache_line_bytes=64,
    call_overhead=0.05e-6,
)

_GPU_PRESETS = {
    "gtx280": GTX280_PARAMS,
    "gtx8800": GTX8800_PARAMS,
    "c1060": TESLA_C1060_PARAMS,
}

_CPU_PRESETS = {
    "core2": CORE2_CPU_PARAMS,
    "modern": MODERN_CPU_PARAMS,
}


def gpu_model_preset(name: str = "gtx280") -> GpuModelParams:
    """Look up a GPU parameter preset by short name."""
    try:
        return _GPU_PRESETS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown GPU preset {name!r}; available: {sorted(_GPU_PRESETS)}"
        ) from None


def cpu_model_preset(name: str = "core2") -> CpuModelParams:
    """Look up a CPU parameter preset by short name."""
    try:
        return _CPU_PRESETS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown CPU preset {name!r}; available: {sorted(_CPU_PRESETS)}"
        ) from None

"""Analytic sequential-CPU timing model for the paper's comparator.

The paper compares its GPU solver against a sequential revised simplex on a
contemporary (2008/2009) CPU with an optimized BLAS.  We model that machine
with a simple roofline: ``max(flops / sustained_flops, bytes / bandwidth)``
plus a small fixed per-operation overhead (function-call and loop setup).
Unit-stride traffic runs at full bandwidth; strided traffic is charged a
cache-line amplification, mirroring the GPU model's coalescing term.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.perfmodel.ops import OpCost


@dataclasses.dataclass(frozen=True)
class CpuModelParams:
    """Calibration parameters of a sequential CPU model."""

    name: str = "generic-cpu"
    #: Sustained single-core FLOP/s with SIMD + optimized BLAS, fp32.
    sustained_flops_fp32: float = 16e9
    #: Same for fp64 (half-width SIMD).
    sustained_flops_fp64: float = 8e9
    #: Sustained DRAM bandwidth, B/s.
    mem_bandwidth: float = 6.4e9
    #: Cache-line size in bytes (amplification unit for strided access).
    cache_line_bytes: int = 64
    #: Fixed per-operation overhead, seconds (call + loop setup).
    call_overhead: float = 0.2e-6
    #: Fraction of traffic served from cache for BLAS-style working sets;
    #: charged zero DRAM time.  Conservative default: none.
    cache_hit_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.sustained_flops_fp32 <= 0 or self.sustained_flops_fp64 <= 0:
            raise ValueError("sustained FLOP rates must be positive")
        if self.mem_bandwidth <= 0:
            raise ValueError("mem_bandwidth must be positive")
        if not 0.0 <= self.cache_hit_fraction < 1.0:
            raise ValueError("cache_hit_fraction must lie in [0, 1)")

    def sustained_flops(self, dtype: np.dtype) -> float:
        if np.dtype(dtype) == np.float64:
            return self.sustained_flops_fp64
        return self.sustained_flops_fp32


class CpuCostModel:
    """Turns :class:`OpCost` descriptions into modeled sequential-CPU seconds."""

    def __init__(self, params: CpuModelParams):
        self.params = params

    def op_time(self, cost: OpCost, dtype: np.dtype = np.float64) -> float:
        """Modeled time of one operation, seconds."""
        p = self.params
        t_c = 0.0
        if cost.flops > 0:
            t_c = cost.flops / p.sustained_flops(dtype)
        t_m = 0.0
        if cost.bytes_total > 0:
            word = np.dtype(dtype).itemsize
            amplification = max(1.0, p.cache_line_bytes / word)
            effective = cost.bytes_total * (
                cost.coalesced_fraction
                + (1.0 - cost.coalesced_fraction) * amplification
            )
            effective *= 1.0 - p.cache_hit_fraction
            t_m = effective / p.mem_bandwidth
        return p.call_overhead + max(t_c, t_m)


class CpuCostRecorder:
    """Accumulates modeled CPU time, broken down by operation name.

    CPU baseline solvers call :meth:`charge` after each BLAS-style step; the
    recorder plays the role the simulated device's statistics play for the
    GPU solver, so both sides produce comparable ``TimingStats``.
    """

    def __init__(self, model: CpuCostModel, dtype: np.dtype = np.float64):
        self.model = model
        self.dtype = np.dtype(dtype)
        self.total_seconds = 0.0
        self.by_op: dict[str, float] = {}
        self.op_count = 0

    def charge(self, name: str, cost: OpCost) -> float:
        """Charge one operation; returns the modeled seconds."""
        seconds = self.model.op_time(cost, self.dtype)
        self.total_seconds += seconds
        self.by_op[name] = self.by_op.get(name, 0.0) + seconds
        self.op_count += 1
        return seconds

    def reset(self) -> None:
        self.total_seconds = 0.0
        self.by_op.clear()
        self.op_count = 0

"""Analytic SIMT kernel-timing model.

The model follows the classical GPU roofline with three corrections that
matter for a simplex solver, whose kernels are small BLAS-1/2 operations:

1. **Launch overhead** — every kernel pays a fixed host-side dispatch cost.
   For small LPs this dominates and produces the CPU-favourable regime the
   paper observes below the crossover size.
2. **Device fill** — a kernel with fewer threads than the device can hold
   concurrently cannot reach peak throughput.  Throughput scales with the
   fraction of the device occupied (floored so tiny kernels are latency- not
   zero-throughput-bound).
3. **Coalescing** — the non-coalesced fraction of memory traffic is charged
   an amplification factor equal to transaction size / word size.

Kernel time is ``launch_overhead + max(t_compute, t_memory)`` — compute and
memory pipelines overlap on SIMT hardware.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.perfmodel.ops import OpCost


@dataclasses.dataclass(frozen=True)
class GpuModelParams:
    """Calibration parameters of a SIMT device model.

    Rates are peak hardware numbers; ``compute_efficiency`` and
    ``memory_efficiency`` convert peaks into the sustained rates that real
    BLAS-style kernels achieve (cuBLAS GEMV sustains far below peak FLOPs
    because it is bandwidth-bound; the efficiency factors encode that the
    model still uses ``max(compute, memory)``, so for BLAS-1/2 the memory
    term governs, as on real hardware).
    """

    name: str = "generic-simt"
    sm_count: int = 30
    warp_size: int = 32
    max_threads_per_block: int = 512
    max_threads_per_sm: int = 1024
    shared_mem_per_block: int = 16 * 1024
    global_mem_bytes: int = 1 * 1024**3
    #: Peak single-precision rate in FLOP/s.
    peak_flops_fp32: float = 933e9
    #: Peak double-precision rate in FLOP/s (GT200: 1/12 of fp32 MAD+MUL).
    peak_flops_fp64: float = 78e9
    #: Peak global-memory bandwidth in B/s.
    mem_bandwidth: float = 141.7e9
    #: Sustained fraction of peak compute for generic kernels.
    compute_efficiency: float = 0.35
    #: Sustained fraction of peak bandwidth for streaming kernels.
    memory_efficiency: float = 0.75
    #: Fixed per-launch overhead (host dispatch + device scheduling), s.
    launch_overhead: float = 5.0e-6
    #: Memory transaction size in bytes (GT200 coalesces to 64B segments).
    transaction_bytes: int = 64
    #: PCIe effective bandwidth (B/s) and per-transfer latency (s).
    pcie_bandwidth: float = 5.5e9
    pcie_latency: float = 10.0e-6
    #: Minimum device-fill factor — tiny kernels are latency-bound, not
    #: infinitely slow.
    min_fill: float = 0.02

    def __post_init__(self) -> None:
        if self.sm_count < 1 or self.warp_size < 1:
            raise ValueError("sm_count and warp_size must be positive")
        if not 0 < self.compute_efficiency <= 1:
            raise ValueError("compute_efficiency must lie in (0, 1]")
        if not 0 < self.memory_efficiency <= 1:
            raise ValueError("memory_efficiency must lie in (0, 1]")
        if not 0 < self.min_fill <= 1:
            raise ValueError("min_fill must lie in (0, 1]")

    @property
    def concurrent_threads(self) -> int:
        """Threads the device holds resident at full occupancy."""
        return self.sm_count * self.max_threads_per_sm

    def peak_flops(self, dtype: np.dtype) -> float:
        """Peak FLOP rate for the given floating dtype."""
        if np.dtype(dtype) == np.float64:
            return self.peak_flops_fp64
        return self.peak_flops_fp32


class GpuCostModel:
    """Turns :class:`OpCost` descriptions into simulated-device seconds."""

    def __init__(self, params: GpuModelParams):
        self.params = params

    # -- kernel timing ----------------------------------------------------

    def fill_factor(self, threads: int, block_threads: int) -> float:
        """Fraction of peak throughput available to a kernel.

        The product of *device fill* (enough threads to occupy all SMs) and
        *occupancy* (block size granularity: blocks smaller than a warp waste
        lanes).
        """
        p = self.params
        fill = min(1.0, threads / p.concurrent_threads)
        # Lane waste for blocks that are not a multiple of the warp size.
        warp_slots = -(-block_threads // p.warp_size) * p.warp_size
        lane_eff = block_threads / warp_slots
        return max(p.min_fill, fill * lane_eff)

    def compute_time(self, cost: OpCost, dtype: np.dtype, block_threads: int) -> float:
        p = self.params
        if cost.flops <= 0:
            return 0.0
        rate = p.peak_flops(dtype) * p.compute_efficiency
        rate *= self.fill_factor(cost.threads, block_threads)
        # Divergent warps execute both branch sides: their work doubles.
        effective_flops = cost.flops * (1.0 + cost.divergent_fraction)
        return effective_flops / rate

    def memory_time(self, cost: OpCost, dtype: np.dtype, block_threads: int) -> float:
        p = self.params
        if cost.bytes_total <= 0:
            return 0.0
        bw = p.mem_bandwidth * p.memory_efficiency
        bw *= max(p.min_fill, min(1.0, cost.threads / p.concurrent_threads))
        word = np.dtype(dtype).itemsize
        amplification = max(1.0, p.transaction_bytes / word)
        effective_bytes = cost.bytes_total * (
            cost.coalesced_fraction + (1.0 - cost.coalesced_fraction) * amplification
        )
        return effective_bytes / bw

    def kernel_time(
        self, cost: OpCost, dtype: np.dtype = np.float32, block_threads: int = 256
    ) -> float:
        """Total modeled time of one kernel launch, seconds."""
        t_c = self.compute_time(cost, dtype, block_threads)
        t_m = self.memory_time(cost, dtype, block_threads)
        return self.params.launch_overhead + max(t_c, t_m)

    # -- transfer timing ---------------------------------------------------

    def transfer_time(self, nbytes: int) -> float:
        """Host <-> device PCIe transfer time, seconds."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        p = self.params
        return p.pcie_latency + nbytes / p.pcie_bandwidth

    def dtod_time(self, nbytes: int) -> float:
        """Device-to-device copy time (read + write at device bandwidth)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        p = self.params
        return self.params.launch_overhead + 2.0 * nbytes / (
            p.mem_bandwidth * p.memory_efficiency
        )

"""Machine-neutral operation cost descriptors.

Every kernel launch on the simulated device — and every BLAS-style operation
in the CPU baselines — produces an :class:`OpCost` describing *what the
operation does physically*: floating-point work, memory traffic, available
parallelism and access-pattern quality.  Machine models turn an ``OpCost``
into seconds.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class OpCost:
    """Physical cost of one operation, independent of the machine.

    Attributes
    ----------
    flops:
        Floating-point operations performed (multiply-add counts as 2).
    bytes_read / bytes_written:
        Bytes moved from/to the main memory of the machine (device global
        memory on the GPU, DRAM on the CPU).  Cache/shared-memory reuse should
        already be discounted by the caller — these are *main-memory* bytes.
    threads:
        Number of logical parallel work items.  On the GPU this drives the
        device-fill correction (a 64-thread kernel cannot saturate 30 SMs);
        ignored by sequential CPU models.
    coalesced_fraction:
        Fraction of memory traffic that is fully coalesced (GPU) /
        unit-stride (CPU).  Non-coalesced traffic is charged an amplification
        factor by the model.
    divergent_fraction:
        Fraction of warps that suffer branch divergence; divergent warps
        execute both sides of a branch, doubling their compute cost.
    """

    flops: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    threads: int = 1
    coalesced_fraction: float = 1.0
    divergent_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_read < 0 or self.bytes_written < 0:
            raise ValueError("OpCost fields must be non-negative")
        if self.threads < 1:
            raise ValueError("OpCost.threads must be >= 1")
        if not 0.0 <= self.coalesced_fraction <= 1.0:
            raise ValueError("coalesced_fraction must lie in [0, 1]")
        if not 0.0 <= self.divergent_fraction <= 1.0:
            raise ValueError("divergent_fraction must lie in [0, 1]")

    @property
    def bytes_total(self) -> float:
        return self.bytes_read + self.bytes_written

    def scaled(self, factor: float) -> "OpCost":
        """Return a copy with work and traffic scaled by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return dataclasses.replace(
            self,
            flops=self.flops * factor,
            bytes_read=self.bytes_read * factor,
            bytes_written=self.bytes_written * factor,
        )

    def __add__(self, other: "OpCost") -> "OpCost":
        """Combine two costs executed back-to-back (threads = max, traffic
        quality = traffic-weighted average)."""
        if not isinstance(other, OpCost):
            return NotImplemented
        total_bytes = self.bytes_total + other.bytes_total
        if total_bytes > 0:
            coalesced = (
                self.coalesced_fraction * self.bytes_total
                + other.coalesced_fraction * other.bytes_total
            ) / total_bytes
        else:
            coalesced = 1.0
        total_threads = max(self.threads, other.threads)
        total_flops = self.flops + other.flops
        if total_flops > 0:
            divergent = (
                self.divergent_fraction * self.flops
                + other.divergent_fraction * other.flops
            ) / total_flops
        else:
            divergent = 0.0
        return OpCost(
            flops=total_flops,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
            threads=total_threads,
            coalesced_fraction=coalesced,
            divergent_fraction=divergent,
        )


ZERO_COST = OpCost()

"""Machine-neutral operation cost descriptors.

Every kernel launch on the simulated device — and every BLAS-style operation
in the CPU baselines — produces an :class:`OpCost` describing *what the
operation does physically*: floating-point work, memory traffic, available
parallelism and access-pattern quality.  Machine models turn an ``OpCost``
into seconds.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class OpCost:
    """Physical cost of one operation, independent of the machine.

    Attributes
    ----------
    flops:
        Floating-point operations performed (multiply-add counts as 2).
    bytes_read / bytes_written:
        Bytes moved from/to the main memory of the machine (device global
        memory on the GPU, DRAM on the CPU).  Cache/shared-memory reuse should
        already be discounted by the caller — these are *main-memory* bytes.
    threads:
        Number of logical parallel work items.  On the GPU this drives the
        device-fill correction (a 64-thread kernel cannot saturate 30 SMs);
        ignored by sequential CPU models.
    coalesced_fraction:
        Fraction of memory traffic that is fully coalesced (GPU) /
        unit-stride (CPU).  Non-coalesced traffic is charged an amplification
        factor by the model.
    divergent_fraction:
        Fraction of warps that suffer branch divergence; divergent warps
        execute both sides of a branch, doubling their compute cost.
    """

    flops: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    threads: int = 1
    coalesced_fraction: float = 1.0
    divergent_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_read < 0 or self.bytes_written < 0:
            raise ValueError("OpCost fields must be non-negative")
        if self.threads < 1:
            raise ValueError("OpCost.threads must be >= 1")
        if not 0.0 <= self.coalesced_fraction <= 1.0:
            raise ValueError("coalesced_fraction must lie in [0, 1]")
        if not 0.0 <= self.divergent_fraction <= 1.0:
            raise ValueError("divergent_fraction must lie in [0, 1]")

    @property
    def bytes_total(self) -> float:
        return self.bytes_read + self.bytes_written

    def scaled(self, factor: float) -> "OpCost":
        """Return a copy with work and traffic scaled by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return dataclasses.replace(
            self,
            flops=self.flops * factor,
            bytes_read=self.bytes_read * factor,
            bytes_written=self.bytes_written * factor,
        )

    def __add__(self, other: "OpCost") -> "OpCost":
        """Combine two costs executed back-to-back (threads = max, traffic
        quality = traffic-weighted average)."""
        if not isinstance(other, OpCost):
            return NotImplemented
        return OpCost.fuse(self, other)

    @classmethod
    def fuse(cls, *costs: "OpCost", shared_read_bytes: float = 0.0) -> "OpCost":
        """Compose the costs of ops fused into **one** kernel launch.

        flops and bytes sum; ``threads`` takes the max (the fused kernel's
        grid covers the widest op, narrower stages idle their extra lanes);
        ``coalesced_fraction`` is traffic-weighted and ``divergent_fraction``
        compute-weighted across the parts.  ``shared_read_bytes`` is the
        global-memory read traffic the fusion eliminates: operands a later
        stage reads that an earlier stage already holds in registers/shared
        memory are counted once, not re-fetched (clamped so a fused op can
        never go traffic-negative).  Zero-byte / zero-flop parts are safe:
        the weighted averages guard their denominators instead of dividing
        by zero.
        """
        if not costs:
            raise ValueError("OpCost.fuse needs at least one cost")
        if shared_read_bytes < 0:
            raise ValueError("shared_read_bytes must be non-negative")
        for c in costs:
            if not isinstance(c, OpCost):
                raise TypeError(f"OpCost.fuse got {type(c).__name__}")
        total_bytes = sum(c.bytes_total for c in costs)
        if total_bytes > 0:
            coalesced = (
                sum(c.coalesced_fraction * c.bytes_total for c in costs)
                / total_bytes
            )
        else:
            coalesced = 1.0
        total_flops = sum(c.flops for c in costs)
        if total_flops > 0:
            divergent = (
                sum(c.divergent_fraction * c.flops for c in costs)
                / total_flops
            )
        else:
            divergent = 0.0
        bytes_read = sum(c.bytes_read for c in costs)
        return cls(
            flops=total_flops,
            bytes_read=max(0.0, bytes_read - min(shared_read_bytes, bytes_read)),
            bytes_written=sum(c.bytes_written for c in costs),
            threads=max(c.threads for c in costs),
            coalesced_fraction=min(1.0, max(0.0, coalesced)),
            divergent_fraction=min(1.0, max(0.0, divergent)),
        )


ZERO_COST = OpCost()

"""Solve-result container shared by every solver in the library.

A :class:`SolveResult` carries the solution in the *original* variable space
of the user's :class:`~repro.lp.problem.LPProblem`, together with solver
diagnostics: iteration counts per phase, modeled machine time, residuals and
(for the GPU solver) a per-kernel time breakdown.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping

import numpy as np

from repro.status import SolveStatus


@dataclasses.dataclass
class IterationStats:
    """Per-phase iteration accounting for a two-phase simplex run."""

    phase1_iterations: int = 0
    phase2_iterations: int = 0
    degenerate_steps: int = 0
    bland_activations: int = 0
    refactorizations: int = 0

    @property
    def total_iterations(self) -> int:
        return self.phase1_iterations + self.phase2_iterations


@dataclasses.dataclass
class TimingStats:
    """Machine-time accounting for one solve.

    ``modeled_seconds`` is the analytic cost-model time of the machine the
    solver ran on (simulated GPU device time, or modeled 2009-era CPU time
    for the baselines); ``wall_seconds`` is the actual Python wall-clock of
    the run, which is only meaningful for relative measurements on this host.
    ``kernel_breakdown`` maps kernel/operation names to modeled seconds.
    """

    modeled_seconds: float = 0.0
    wall_seconds: float = 0.0
    transfer_seconds: float = 0.0
    kernel_breakdown: dict[str, float] = dataclasses.field(default_factory=dict)

    def breakdown_fractions(self) -> dict[str, float]:
        """Return the kernel breakdown normalised to fractions of the total."""
        total = sum(self.kernel_breakdown.values())
        if total <= 0.0:
            return {k: 0.0 for k in self.kernel_breakdown}
        return {k: v / total for k, v in self.kernel_breakdown.items()}


@dataclasses.dataclass
class SolveResult:
    """Outcome of solving an LP.

    Attributes
    ----------
    status:
        Termination status (optimal / infeasible / unbounded / ...).
    objective:
        Objective value of the returned point in the original problem's
        orientation (i.e. already negated back for maximisation problems).
        ``nan`` unless :attr:`status` is ``OPTIMAL``.
    x:
        Primal solution in the original variable space, or ``None`` when no
        feasible point is available.
    iterations:
        Per-phase iteration statistics.
    timing:
        Machine-time accounting (see :class:`TimingStats`).
    residuals:
        Accuracy certificate of the returned point — keys
        ``primal_infeasibility`` (max constraint violation),
        ``bound_infeasibility`` (max variable-bound violation).
    solver:
        Name of the solver that produced this result.
    extra:
        Solver-specific extras (e.g. basis indices, phase-1 objective).
    trace:
        Iteration-level :class:`~repro.trace.SolveTrace` when the solve ran
        with ``SolverOptions(trace=True)``; ``None`` otherwise.
    """

    status: SolveStatus
    objective: float = float("nan")
    x: np.ndarray | None = None
    iterations: IterationStats = dataclasses.field(default_factory=IterationStats)
    timing: TimingStats = dataclasses.field(default_factory=TimingStats)
    residuals: dict[str, float] = dataclasses.field(default_factory=dict)
    solver: str = ""
    extra: dict[str, Any] = dataclasses.field(default_factory=dict)
    trace: Any | None = None

    @property
    def is_optimal(self) -> bool:
        return self.status is SolveStatus.OPTIMAL

    def summary(self) -> str:
        """One-line human-readable summary used by examples and the CLI."""
        parts = [f"status={self.status.value}", f"solver={self.solver or '?'}"]
        if self.is_optimal:
            parts.append(f"objective={self.objective:.6g}")
        parts.append(
            "iters={}/{}".format(
                self.iterations.phase1_iterations, self.iterations.phase2_iterations
            )
        )
        if self.timing.modeled_seconds:
            parts.append(f"t_model={self.timing.modeled_seconds * 1e3:.3f}ms")
        if self.residuals:
            pinf = self.residuals.get("primal_infeasibility", float("nan"))
            parts.append(f"pinf={pinf:.2e}")
        return " ".join(parts)

    @staticmethod
    def compute_residuals(
        a_eq: np.ndarray | Any,
        b_eq: np.ndarray,
        x: np.ndarray,
        lower: np.ndarray | None = None,
        upper: np.ndarray | None = None,
    ) -> dict[str, float]:
        """Residuals of ``A x = b`` and bound violations for a candidate x.

        ``a_eq`` may be a dense ndarray or any object with a ``matvec``
        method (the library's sparse matrices).
        """
        if hasattr(a_eq, "matvec"):
            ax = a_eq.matvec(x)
        else:
            ax = np.asarray(a_eq) @ x
        primal = float(np.max(np.abs(ax - b_eq))) if b_eq.size else 0.0
        bound = 0.0
        if lower is not None:
            finite = np.isfinite(lower)
            if finite.any():
                bound = max(bound, float(np.max(np.maximum(lower[finite] - x[finite], 0.0), initial=0.0)))
        if upper is not None:
            finite = np.isfinite(upper)
            if finite.any():
                bound = max(bound, float(np.max(np.maximum(x[finite] - upper[finite], 0.0), initial=0.0)))
        return {"primal_infeasibility": primal, "bound_infeasibility": bound}


def merge_kernel_breakdowns(*breakdowns: Mapping[str, float]) -> dict[str, float]:
    """Sum several kernel-time breakdown dicts into one."""
    out: dict[str, float] = {}
    for bd in breakdowns:
        for name, seconds in bd.items():
            out[name] = out.get(name, 0.0) + seconds
    return out

"""Per-iteration trace records and the collector solvers write into.

A :class:`SolveTrace` is a flat list of :class:`TraceRecord` — one per
simplex iteration — capturing *what the solver decided* (entering/leaving
indices, pivot magnitude, step length, pricing rule in effect) alongside
*where the modeled time went* (per-section seconds between consecutive
records).  The companion :class:`TraceCollector` is the narrow hook the
solvers call: it snapshots the active clock (device clock or CPU cost
recorder) and section totals, and turns every ``record()`` call into a
record holding the deltas since the previous one.

Tracing is opt-in via ``SolverOptions(trace=True)``; with it off no
collector exists and the solvers' hot loops are untouched.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Callable, Iterator

#: Events that correspond to an actual step of progress: a basis change
#: (pivot), a bound flip, or — for the first-order methods, which have no
#: basis — a restart to an averaged iterate.  These are the records that
#: carry an objective value and feed ``objective_series``.
PIVOT_EVENTS = frozenset({"pivot", "flip", "restart"})

#: Events that terminate a phase (the iteration is still counted by the
#: solver's iteration statistics, so the trace records it too).
TERMINAL_EVENTS = frozenset(
    {"optimal", "unbounded", "infeasible", "numerical", "recovery"}
)


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One traced simplex iteration.

    ``event`` is ``"pivot"`` for a normal basis change, ``"flip"`` for a
    bound flip (bounded solvers), ``"recovery"`` when the iteration spent
    its work refactorising after a singular update, and one of
    ``"optimal"`` / ``"unbounded"`` / ``"infeasible"`` / ``"numerical"``
    for the terminal iteration that detected that outcome.  Index fields
    are ``-1`` when not applicable (e.g. no entering column at optimality).
    ``sections`` maps solver-phase names (pricing / ftran / ratio / update
    / transfer, ...) to the modeled seconds spent in them *during this
    iteration*; ``t_start``/``t_end`` locate the iteration on the modeled
    clock of the machine the solver ran on.
    """

    phase: int
    iteration: int
    event: str = "pivot"
    entering: int = -1
    leaving_row: int = -1
    leaving_var: int = -1
    pivot: float = 0.0
    theta: float = 0.0
    ratio_ties: int = 0
    pricing_rule: str = ""
    eta_count: int = 0
    objective: float = math.nan
    degenerate: bool = False
    t_start: float = 0.0
    t_end: float = 0.0
    sections: dict[str, float] = dataclasses.field(default_factory=dict)

    @property
    def seconds(self) -> float:
        """Modeled seconds this iteration occupied on its machine."""
        return self.t_end - self.t_start


class SolveTrace:
    """The full per-iteration trace of one solve.

    Iterable and indexable like a list of :class:`TraceRecord`.  ``meta``
    carries solver-level context (problem size, dtype, options) set by the
    solver that produced the trace.
    """

    def __init__(self, solver: str, meta: dict[str, Any] | None = None):
        self.solver = solver
        self.meta: dict[str, Any] = dict(meta or {})
        self.records: list[TraceRecord] = []

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __getitem__(self, idx):
        return self.records[idx]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SolveTrace {self.solver!r} {len(self.records)} records "
            f"phases={sorted(self.phase_iterations())}>"
        )

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------

    @property
    def iteration_count(self) -> int:
        """Total traced iterations (equals the solver's iteration total)."""
        return len(self.records)

    def phase_iterations(self) -> dict[int, int]:
        """Phase number -> number of traced iterations in that phase."""
        out: dict[int, int] = {}
        for r in self.records:
            out[r.phase] = out.get(r.phase, 0) + 1
        return out

    def phase_seconds(self) -> dict[str, float]:
        """Solver-section name -> total modeled seconds across the trace."""
        out: dict[str, float] = {}
        for r in self.records:
            for name, seconds in r.sections.items():
                out[name] = out.get(name, 0.0) + seconds
        return out

    def objective_series(self, phase: int | None = None) -> list[float]:
        """Objective values of pivot/flip records (optionally one phase)."""
        return [
            r.objective
            for r in self.records
            if r.event in PIVOT_EVENTS
            and not math.isnan(r.objective)
            and (phase is None or r.phase == phase)
        ]

    def degenerate_count(self) -> int:
        """Number of degenerate (θ ≈ 0) pivots recorded."""
        return sum(1 for r in self.records if r.degenerate)

    def legacy_tuples(self) -> list[tuple]:
        """The pre-trace ``result.extra['trace']`` tuple format.

        One ``(phase, iteration, entering, leaving_row, theta, objective)``
        tuple per successful pivot/flip — terminal and recovery records are
        excluded, matching the historical behaviour of appending only after
        a completed basis change.
        """
        return [
            (r.phase, r.iteration, r.entering, r.leaving_row, r.theta, r.objective)
            for r in self.records
            if r.event in PIVOT_EVENTS
        ]

    def summary(self) -> str:
        """ASCII convergence / per-phase summary (see :mod:`repro.trace.render`)."""
        from repro.trace.render import render_summary

        return render_summary(self)

    def to_chrome_events(
        self, *, pid: int = 0, tid: int = 0, origin: float = 0.0
    ) -> list[dict[str, Any]]:
        """Chrome trace-event dicts for the solver track (durations in µs).

        Each iteration becomes one ``"X"`` slice named ``iter <n>`` carrying
        the decision fields in ``args``, plus one nested slice per solver
        section laid head-to-tail inside the iteration's span.
        """
        events: list[dict[str, Any]] = []
        for r in self.records:
            start_us = (r.t_start - origin) * 1e6
            dur_us = max(r.seconds, 0.0) * 1e6
            args: dict[str, Any] = {
                "phase": r.phase,
                "event": r.event,
                "entering": r.entering,
                "leaving_row": r.leaving_row,
                "leaving_var": r.leaving_var,
                "pivot": r.pivot,
                "theta": r.theta,
                "ratio_ties": r.ratio_ties,
                "pricing_rule": r.pricing_rule,
                "eta_count": r.eta_count,
                "degenerate": r.degenerate,
            }
            if not math.isnan(r.objective):
                args["objective"] = r.objective
            events.append(
                {
                    "name": f"iter {r.iteration} (p{r.phase})",
                    "cat": "iteration",
                    "ph": "X",
                    "ts": start_us,
                    "dur": dur_us,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
            cursor = start_us
            for section, seconds in r.sections.items():
                sec_us = max(seconds, 0.0) * 1e6
                events.append(
                    {
                        "name": section,
                        "cat": "solver-phase",
                        "ph": "X",
                        "ts": cursor,
                        "dur": sec_us,
                        "pid": pid,
                        "tid": tid + 1,
                        "args": {"iteration": r.iteration, "phase": r.phase},
                    }
                )
                cursor += sec_us
        return events


class TraceCollector:
    """The hook a solver writes iteration records through.

    ``clock`` returns the solver's modeled time (device clock for GPU
    solvers, :class:`~repro.perfmodel.cpu_model.CpuCostRecorder` total for
    CPU solvers); ``sections`` returns the cumulative per-section seconds
    dict of the same machine.  Both are sampled when the collector is
    created and again at every :meth:`record` call, so each record carries
    exactly the deltas of its own iteration.  Reading the clock/sections
    never charges modeled time itself (they are plain attribute reads), so
    collecting a trace cannot perturb the numbers it observes.
    """

    def __init__(
        self,
        solver: str,
        *,
        clock: Callable[[], float],
        sections: Callable[[], dict[str, float]] | None = None,
        meta: dict[str, Any] | None = None,
    ):
        self.trace = SolveTrace(solver, meta)
        self._clock = clock
        self._sections = sections
        self._t_prev = float(clock())
        self._sections_prev: dict[str, float] = (
            dict(sections()) if sections is not None else {}
        )

    def record(self, **fields: Any) -> TraceRecord:
        """Append one record; ``fields`` are :class:`TraceRecord` fields
        minus the timing ones, which the collector fills in from the clock
        and section deltas since the previous record."""
        now = float(self._clock())
        sections_delta: dict[str, float] = {}
        if self._sections is not None:
            current = dict(self._sections())
            for name, total in current.items():
                delta = total - self._sections_prev.get(name, 0.0)
                if delta > 0.0:
                    sections_delta[name] = delta
            self._sections_prev = current
        rec = TraceRecord(
            t_start=self._t_prev,
            t_end=now,
            sections=sections_delta,
            **fields,
        )
        self._t_prev = now
        self.trace.records.append(rec)
        return rec


def rule_label(rule: Any) -> str:
    """Human-readable label of the pricing rule currently in effect.

    Accepts a plain string (passed through), any of the
    :mod:`repro.simplex.pricing` rule objects, or the GPU solvers' internal
    pricing helpers.  Hybrid rules report which arm is active
    (``"hybrid:dantzig"`` / ``"hybrid:bland"``).
    """
    if isinstance(rule, str):
        return rule
    mode = getattr(rule, "mode", None)
    using_bland = getattr(rule, "using_bland", None)
    if using_bland is None:
        using_bland = getattr(rule, "_using_bland", None)
    if mode is not None:  # GPU pricing helper
        if mode == "hybrid":
            return "hybrid:bland" if using_bland else "hybrid:dantzig"
        return str(mode)
    name = type(rule).__name__
    labels = {
        "DantzigRule": "dantzig",
        "BlandRule": "bland",
        "DevexRule": "devex",
        "SteepestEdgeRule": "steepest-edge",
    }
    if name == "HybridRule":
        return "hybrid:bland" if using_bland else "hybrid:dantzig"
    return labels.get(name, name)

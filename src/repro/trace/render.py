"""ASCII rendering of a :class:`~repro.trace.record.SolveTrace`.

Produces the convergence / per-phase summary shown by ``repro trace``:
iteration counts per phase, the modeled time split across solver sections,
degenerate-step and pricing-rule statistics, and a coarse objective
convergence sparkline for phase 2.
"""

from __future__ import annotations

import math

from repro.trace.record import PIVOT_EVENTS, SolveTrace

_SPARK = " .:-=+*#%@"


def _sparkline(values: list[float], width: int = 48) -> str:
    """Downsample ``values`` to ``width`` buckets of spark characters."""
    if len(values) < 2:
        return ""
    if len(values) > width:
        step = len(values) / width
        values = [values[int(i * step)] for i in range(width)]
    lo, hi = min(values), max(values)
    if not math.isfinite(lo) or not math.isfinite(hi) or hi - lo < 1e-300:
        return _SPARK[1] * len(values)
    scale = (len(_SPARK) - 1) / (hi - lo)
    return "".join(_SPARK[int((v - lo) * scale)] for v in values)


def render_summary(trace: SolveTrace) -> str:
    """Multi-line ASCII summary of one solve trace."""
    lines = [f"trace: {trace.solver}, {len(trace)} iterations"]
    per_phase = trace.phase_iterations()
    for phase in sorted(per_phase):
        recs = [r for r in trace.records if r.phase == phase]
        pivots = sum(1 for r in recs if r.event in PIVOT_EVENTS)
        degen = sum(1 for r in recs if r.degenerate)
        seconds = sum(r.seconds for r in recs)
        terminal = recs[-1].event if recs else "?"
        lines.append(
            f"  phase {phase}: {len(recs)} iters ({pivots} pivots, "
            f"{degen} degenerate), {seconds * 1e3:.3f} ms, exit={terminal}"
        )
    sections = trace.phase_seconds()
    total = sum(sections.values())
    if total > 0.0:
        lines.append("  time by solver section:")
        width = max(len(name) for name in sections)
        for name, seconds in sorted(sections.items(), key=lambda kv: -kv[1]):
            pct = 100.0 * seconds / total
            bar = "#" * int(round(pct / 2))
            lines.append(
                f"    {name:<{width}} {seconds * 1e3:9.3f} ms {pct:5.1f}% {bar}"
            )
    rules = sorted({r.pricing_rule for r in trace.records if r.pricing_rule})
    if rules:
        lines.append(f"  pricing rules seen: {', '.join(rules)}")
    z2 = trace.objective_series(phase=2)
    spark = _sparkline(z2)
    if spark:
        lines.append(f"  phase-2 objective: {z2[0]:.6g} -> {z2[-1]:.6g}")
        lines.append(f"    [{spark}]")
    return "\n".join(lines)

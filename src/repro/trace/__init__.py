"""Structured, opt-in iteration-level solver tracing.

Enable with ``SolverOptions(trace=True)`` (or ``solve(..., trace=True)``):
every solver then attaches a :class:`SolveTrace` — one
:class:`TraceRecord` per simplex iteration — to ``result.trace``.  Records
capture the pivot decision (entering/leaving indices, pivot magnitude, θ,
ratio-test ties, the pricing rule in effect, eta count) together with the
objective value and the modeled seconds each solver section spent during
the iteration.

:func:`merged_chrome_trace` combines a trace with the device timeline or a
:class:`~repro.gpu.profiler.Profile` into one Chrome trace-event JSON;
``SolveTrace.summary()`` renders an ASCII convergence/phase report, and the
``repro trace`` CLI command wires both together.
"""

from repro.trace.chrome import merged_chrome_trace, validate_chrome_trace
from repro.trace.record import (
    PIVOT_EVENTS,
    TERMINAL_EVENTS,
    SolveTrace,
    TraceCollector,
    TraceRecord,
    rule_label,
)
from repro.trace.render import render_summary

__all__ = [
    "PIVOT_EVENTS",
    "TERMINAL_EVENTS",
    "SolveTrace",
    "TraceCollector",
    "TraceRecord",
    "merged_chrome_trace",
    "render_summary",
    "rule_label",
    "validate_chrome_trace",
]

"""Merge a solver trace with the device timeline into one Chrome trace.

The merged artifact is a single Chrome trace-event JSON (loadable in
``chrome://tracing`` / Perfetto) with four tracks:

- **tid 0** — one slice per simplex iteration (decision metadata in args);
- **tid 1** — the per-iteration solver sections (pricing / ftran / ratio /
  update / transfer) nested head-to-tail inside each iteration;
- **tid 2** — individual kernel launches from the device timeline or an
  attached :class:`~repro.gpu.profiler.Profile`;
- **tid 3** — memory transfers.

Both sides share the device's modeled clock, so solver phases line up with
the kernels they launched.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable

from repro.trace.record import SolveTrace

#: Track ids of the merged trace.
TID_ITERATIONS = 0
TID_SECTIONS = 1
TID_KERNELS = 2
TID_TRANSFERS = 3

_TRACK_NAMES = {
    TID_ITERATIONS: "solver iterations",
    TID_SECTIONS: "solver phases",
    TID_KERNELS: "kernels",
    TID_TRANSFERS: "transfers",
}


def _thread_metadata(pid: int) -> list[dict[str, Any]]:
    return [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": label},
        }
        for tid, label in _TRACK_NAMES.items()
    ]


def _device_timeline_events(events: Iterable[Any], pid: int) -> list[dict[str, Any]]:
    """Chrome slices from :class:`repro.gpu.device.TimelineEvent` entries.

    Events carrying a recorded ``start`` offset keep it — stream-interleaved
    :class:`~repro.batch.scheduler.ConcurrentSchedule` windows replay
    overlapping lanes, so reconstructing starts by cumulative sum would
    falsely serialise them.  Only legacy events without a start (``None``)
    fall back to the cumulative-sum reconstruction.
    """
    out: list[dict[str, Any]] = []
    cursor = 0.0
    for ev in events:
        is_kernel = ev.kind == "kernel"
        name = ev.name if is_kernel else f"memcpy.{ev.kind}"
        start = getattr(ev, "start", None)
        if start is None:
            start = cursor
        cursor = start + ev.seconds
        out.append(
            {
                "name": name,
                "cat": "kernel" if is_kernel else "transfer",
                "ph": "X",
                "ts": start * 1e6,
                "dur": ev.seconds * 1e6,
                "pid": pid,
                "tid": TID_KERNELS if is_kernel else TID_TRANSFERS,
                "args": {"threads": ev.threads, "nbytes": ev.nbytes},
            }
        )
    return out


def _profile_events(profile: Any, pid: int) -> list[dict[str, Any]]:
    """Chrome slices from a :class:`repro.gpu.profiler.Profile` (has starts)."""
    return [
        {
            "name": e.name,
            "cat": e.kind,
            "ph": "X",
            "ts": e.start * 1e6,
            "dur": e.duration * 1e6,
            "pid": pid,
            "tid": TID_KERNELS if e.kind == "kernel" else TID_TRANSFERS,
            "args": {"flops": e.flops, "bytes": e.bytes},
        }
        for e in profile.events
    ]


def merged_chrome_trace(
    trace: SolveTrace,
    *,
    timeline: Iterable[Any] | None = None,
    profile: Any | None = None,
    device: Any | None = None,
    span_events: Iterable[dict] | None = None,
    target: "str | Path | None" = None,
    pid: int = 0,
) -> str:
    """Serialise the solver trace merged with kernel/transfer events.

    Provide the device side as either ``profile`` (a
    :class:`~repro.gpu.profiler.Profile`, which carries event start times),
    ``timeline`` (a list of :class:`~repro.gpu.device.TimelineEvent`), or
    ``device`` (its ``.timeline`` is used when recording was enabled).  With
    none of them, only the solver tracks are emitted — the CPU solvers have
    no kernel timeline.  ``span_events`` merges pre-built request-span
    events (:func:`repro.obs.chrome_span_events` async ``b``/``e`` pairs and
    flow arrows, on the same per-solve clock) as a fifth track alongside
    the four synchronous ones.  Returns the JSON text; also writes it to
    ``target`` when given.
    """
    events: list[dict[str, Any]] = list(_thread_metadata(pid))
    events.extend(trace.to_chrome_events(pid=pid, tid=TID_ITERATIONS))
    if profile is not None:
        events.extend(_profile_events(profile, pid))
    elif timeline is not None:
        events.extend(_device_timeline_events(timeline, pid))
    elif device is not None and getattr(device, "timeline", None):
        events.extend(_device_timeline_events(device.timeline, pid))
    if span_events is not None:
        span_events = list(span_events)
        tids = {ev["tid"] for ev in span_events if "tid" in ev}
        for tid in sorted(tids - set(_TRACK_NAMES)):
            events.append(
                {
                    "name": "thread_name", "ph": "M", "pid": pid,
                    "tid": tid, "args": {"name": "request spans"},
                }
            )
        events.extend(span_events)
    text = json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})
    if target is not None:
        Path(target).write_text(text)
    return text


def validate_chrome_trace(data: "str | dict") -> dict:
    """Validate a Chrome trace-event JSON document, returning the parsed dict.

    Checks the schema subset this library emits: a top-level ``traceEvents``
    list whose entries carry ``name``/``ph``/``pid``/``tid``, with duration
    (``"X"``) events additionally carrying numeric ``ts`` and ``dur >= 0``.
    Raises :class:`ValueError` on any violation.
    """
    doc = json.loads(data) if isinstance(data, str) else data
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        raise ValueError("chrome trace must be an object with a traceEvents list")
    for i, ev in enumerate(doc["traceEvents"]):
        if not isinstance(ev, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                raise ValueError(f"traceEvents[{i}] missing {key!r}")
        if ev["ph"] == "X":
            ts, dur = ev.get("ts"), ev.get("dur")
            if not isinstance(ts, (int, float)) or not isinstance(dur, (int, float)):
                raise ValueError(f"traceEvents[{i}] X event needs numeric ts/dur")
            if dur < 0:
                raise ValueError(f"traceEvents[{i}] has negative duration")
    return doc

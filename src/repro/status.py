"""Solver termination statuses shared by every solver in the library."""

from __future__ import annotations

import enum


class SolveStatus(enum.Enum):
    """Outcome of an LP solve.

    The simplex method terminates in exactly one of these states.  The first
    three mirror the classical trichotomy of linear programming (optimal,
    infeasible, unbounded); the remaining states are operational.
    """

    #: An optimal basic feasible solution was found.
    OPTIMAL = "optimal"
    #: Phase 1 terminated with a positive artificial objective: the
    #: constraint system has no feasible point.
    INFEASIBLE = "infeasible"
    #: A column with negative reduced cost has no positive pivot ratio: the
    #: objective can be decreased without bound.
    UNBOUNDED = "unbounded"
    #: The iteration limit was reached before any of the above.
    ITERATION_LIMIT = "iteration_limit"
    #: Numerical difficulty prevented further progress (singular basis that
    #: refactorization could not repair, or an invalid pivot).
    NUMERICAL = "numerical"

    @property
    def is_terminal_success(self) -> bool:
        """True when the status conveys a definitive mathematical answer."""
        return self in (
            SolveStatus.OPTIMAL,
            SolveStatus.INFEASIBLE,
            SolveStatus.UNBOUNDED,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

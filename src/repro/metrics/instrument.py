"""Instrumentation hook points: where the library writes into the registry.

Three families, mirroring the layers named in the metric names:

- ``repro_gpu_*``    — written by :class:`repro.gpu.device.Device` on every
  kernel launch, PCIe/device transfer and allocation;
- ``repro_solver_*`` — written once per solve by every solver's finish path
  (the same spot the trace collector's results are attached), copying the
  :class:`~repro.result.IterationStats` / :class:`~repro.result.TimingStats`
  the solver already produced;
- ``repro_batch_*``  — written by :func:`repro.batch.solve_batch` /
  ``solve_batch_chain`` from the schedule outcome;
- ``repro_serve_*``  — written by the :mod:`repro.serve` event loop
  (submissions, admission rejections, dispatches, completions, warm-start
  cache traffic, modeled-latency quantile gauges).  Serve modules may
  import metrics **only** through this module (the architecture lint
  enforces it, mirroring the solver-backend rule).

Every function is a no-op (one ``is None`` check) while no registry is
installed, and none of them touches the modeled clock, the cost models or
any solver state — they read values the existing bookkeeping computed, or
recompute pure functions of them.  That is what makes collection provably
non-perturbing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from repro.metrics.registry import active, bucket_quantile
from repro.obs.context import active as _obs_active

if TYPE_CHECKING:  # pragma: no cover - imports for type checkers only
    from repro.batch.scheduler import LPTimeline, ScheduleOutcome
    from repro.obs.attribution import AttributionReport
    from repro.obs.span import ObsRecording
    from repro.perfmodel.ops import OpCost
    from repro.result import SolveResult

#: Buckets for per-solve iteration-count histograms.
ITERATION_BUCKETS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000)

#: Buckets for serving-layer modeled latencies (seconds).  Modeled solves
#: run from fractions of a millisecond (tiny LPs) to tens of seconds
#: (large batches queueing behind each other).
SERVE_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Quantile gauges the serving loop keeps up to date (p50/p95/p99).
SERVE_LATENCY_QUANTILES = (0.5, 0.95, 0.99)


# ---------------------------------------------------------------------------
# gpu.Device
# ---------------------------------------------------------------------------


def record_kernel_launch(
    name: str, seconds: float, cost: "OpCost", occupancy: float
) -> None:
    """One kernel launch: time/launch/flop/byte totals by kernel name, plus
    modeled occupancy and coalescing efficiency from the cost model."""
    reg = active()
    if reg is None:
        return
    reg.counter(
        "repro_gpu_kernel_launches_total", "Kernel launches by kernel name.",
        labels=("kernel",),
    ).inc(kernel=name)
    reg.counter(
        "repro_gpu_kernel_seconds_total",
        "Modeled device seconds by kernel name.", labels=("kernel",),
    ).inc(seconds, kernel=name)
    reg.counter(
        "repro_gpu_kernel_flops_total", "Modeled FLOPs by kernel name.",
        labels=("kernel",),
    ).inc(cost.flops, kernel=name)
    reg.counter(
        "repro_gpu_kernel_bytes_total",
        "Modeled global-memory bytes moved, by kernel name.", labels=("kernel",),
    ).inc(cost.bytes_total, kernel=name)
    reg.histogram(
        "repro_gpu_kernel_occupancy",
        "Modeled device-fill factor per kernel launch (cost model).",
    ).observe(occupancy)
    reg.histogram(
        "repro_gpu_kernel_coalesced_fraction",
        "Coalesced fraction of each launch's memory traffic (cost model).",
    ).observe(cost.coalesced_fraction)


def record_fused_launch(n_ops: int, saved_seconds: float) -> None:
    """One fused launch emitted by the plan lowerer: how many captured ops
    it folded into a single kernel and the launch-overhead seconds the
    fusion eliminated (modeled, relative to op-by-op execution)."""
    reg = active()
    if reg is None:
        return
    reg.counter(
        "repro_gpu_fused_launches_total",
        "Fused kernel launches emitted by the plan lowerer.",
    ).inc()
    reg.counter(
        "repro_gpu_fused_ops_total",
        "Captured ops folded into fused launches.",
    ).inc(n_ops)
    reg.counter(
        "repro_gpu_fusion_saved_seconds_total",
        "Modeled launch-overhead seconds eliminated by kernel fusion.",
    ).inc(saved_seconds)


def record_transfer(direction: str, nbytes: int, seconds: float) -> None:
    """One HtoD/DtoH/DtoD transfer."""
    reg = active()
    if reg is None:
        return
    reg.counter(
        "repro_gpu_transfer_bytes_total",
        "Bytes moved by direction (htod/dtoh over PCIe, dtod on-device).",
        labels=("direction",),
    ).inc(nbytes, direction=direction)
    reg.counter(
        "repro_gpu_transfer_seconds_total",
        "Modeled transfer seconds by direction.", labels=("direction",),
    ).inc(seconds, direction=direction)
    reg.counter(
        "repro_gpu_transfers_total", "Transfer operations by direction.",
        labels=("direction",),
    ).inc(direction=direction)


def record_allocation(nbytes: int, bytes_in_use: int) -> None:
    """One device allocation; tracks live and peak footprint."""
    reg = active()
    if reg is None:
        return
    reg.counter(
        "repro_gpu_allocations_total", "Device allocations (cudaMalloc calls)."
    ).inc()
    gauge = reg.gauge(
        "repro_gpu_bytes_in_use", "Live device memory right now, bytes."
    )
    gauge.set(bytes_in_use)
    reg.gauge(
        "repro_gpu_peak_bytes_in_use",
        "High-water mark of live device memory, bytes.",
    ).set_max(bytes_in_use)


def record_free(nbytes: int, bytes_in_use: int) -> None:
    """One device free."""
    reg = active()
    if reg is None:
        return
    reg.counter("repro_gpu_frees_total", "Device frees (cudaFree calls).").inc()
    reg.gauge(
        "repro_gpu_bytes_in_use", "Live device memory right now, bytes."
    ).set(bytes_in_use)


# ---------------------------------------------------------------------------
# solvers
# ---------------------------------------------------------------------------


def record_solve(result: "SolveResult") -> None:
    """One finished solve: iteration/pivot/phase-seconds totals by solver.

    Called by every solver at the end of its finish path, with the fully
    populated :class:`~repro.result.SolveResult` — the numbers recorded
    here are exactly the ones the caller receives.
    """
    reg = active()
    if reg is None:
        return
    solver = result.solver or "unknown"
    stats = result.iterations
    reg.counter(
        "repro_solves_total", "Finished solves by solver and status.",
        labels=("solver", "status"),
    ).inc(solver=solver, status=result.status.value)
    iters = reg.counter(
        "repro_solver_iterations_total",
        "Simplex iterations by solver and phase.", labels=("solver", "phase"),
    )
    iters.inc(stats.phase1_iterations, solver=solver, phase="1")
    iters.inc(stats.phase2_iterations, solver=solver, phase="2")
    reg.counter(
        "repro_solver_degenerate_pivots_total",
        "Degenerate (zero-step or tied) pivots by solver.", labels=("solver",),
    ).inc(stats.degenerate_steps, solver=solver)
    reg.counter(
        "repro_solver_bland_activations_total",
        "Hybrid-pricing Dantzig->Bland switches by solver.", labels=("solver",),
    ).inc(stats.bland_activations, solver=solver)
    reg.counter(
        "repro_solver_refactorizations_total",
        "Basis refactorizations by solver.", labels=("solver",),
    ).inc(stats.refactorizations, solver=solver)
    reg.counter(
        "repro_solver_modeled_seconds_total",
        "Modeled machine seconds by solver.", labels=("solver",),
    ).inc(result.timing.modeled_seconds, solver=solver)
    sections = reg.counter(
        "repro_solver_section_seconds_total",
        "Modeled seconds by solver and algorithm section "
        "(pricing/ftran/ratio/update/transfer/...).",
        labels=("solver", "section"),
    )
    for section, seconds in result.timing.kernel_breakdown.items():
        sections.inc(seconds, solver=solver, section=section)
    reg.histogram(
        "repro_solver_iterations_per_solve",
        "Distribution of total iterations per solve.", labels=("solver",),
        buckets=ITERATION_BUCKETS,
    ).observe(stats.total_iterations, solver=solver)
    if result.trace is not None:
        reg.counter(
            "repro_solver_ratio_test_ties_total",
            "Ratio-test ties recorded by traced solves.", labels=("solver",),
        ).inc(sum(r.ratio_ties for r in result.trace), solver=solver)
    # First-order (PDHG) extras: the basis-free solvers report restarts and
    # SpMV counts where the simplex solvers report pivots and refactors.
    if "restarts" in result.extra:
        reg.counter(
            "repro_solver_restarts_total",
            "First-order (PDHG) restarts by solver.", labels=("solver",),
        ).inc(result.extra["restarts"], solver=solver)
    if "spmv_count" in result.extra:
        reg.counter(
            "repro_solver_spmv_total",
            "Sparse matrix-vector products by solver (first-order methods).",
            labels=("solver",),
        ).inc(result.extra["spmv_count"], solver=solver)
    if "kkt_score" in result.extra:
        kkt = reg.gauge(
            "repro_solver_kkt_residual",
            "Terminal relative KKT residuals of the last first-order solve.",
            labels=("solver", "component"),
        )
        for component in ("primal", "dual", "gap", "score"):
            key = f"kkt_{component}"
            if key in result.extra:
                kkt.set(result.extra[key], solver=solver, component=component)


# ---------------------------------------------------------------------------
# batch scheduler
# ---------------------------------------------------------------------------


def record_batch(
    schedule: str,
    outcome: "ScheduleOutcome",
    timelines: Sequence["LPTimeline"],
) -> None:
    """One priced batch: queue depth, stream utilization, per-LP wall share."""
    reg = active()
    if reg is None:
        return
    reg.counter(
        "repro_batch_batches_total", "Priced batches by schedule.",
        labels=("schedule",),
    ).inc(schedule=schedule)
    reg.counter(
        "repro_batch_lps_total", "LPs solved through the batch layer.",
        labels=("schedule",),
    ).inc(len(timelines), schedule=schedule)
    reg.gauge(
        "repro_batch_queue_depth", "LPs in the most recently priced batch."
    ).set(len(timelines))
    reg.counter(
        "repro_batch_makespan_seconds_total",
        "Modeled batch makespan seconds by schedule.", labels=("schedule",),
    ).inc(outcome.makespan_seconds, schedule=schedule)
    bounds = reg.gauge(
        "repro_batch_bound_seconds",
        "Per-resource lower bounds of the last batch makespan.",
        labels=("schedule", "resource"),
    )
    for resource, seconds in outcome.bounds.items():
        bounds.set(seconds, schedule=schedule, resource=resource)
    # Utilization of the stream set: the work's sequential time spread over
    # n_streams lanes of the makespan (1.0 = every lane busy end to end).
    denom = outcome.makespan_seconds * max(1, outcome.n_streams)
    utilization = outcome.sequential_seconds / denom if denom > 0 else 0.0
    reg.gauge(
        "repro_batch_stream_utilization",
        "Fraction of stream capacity the last batch kept busy.",
        labels=("schedule",),
    ).set(min(1.0, utilization), schedule=schedule)
    total = sum(tl.total_seconds for tl in timelines)
    if total > 0.0:
        share = reg.histogram(
            "repro_batch_lp_wall_share",
            "Per-LP share of the batch's sequential machine time.",
        )
        for tl in timelines:
            share.observe(tl.total_seconds / total)


def record_chain_break(method: str) -> None:
    """One broken warm-start chain link: a non-optimal intermediate result
    forced the next solve (or the serve cache) to drop its basis."""
    reg = active()
    if reg is None:
        return
    reg.counter(
        "repro_batch_chain_breaks_total",
        "Warm-start chains broken by a non-optimal intermediate result.",
        labels=("method",),
    ).inc(method=method)


# ---------------------------------------------------------------------------
# serving layer (repro.serve)
# ---------------------------------------------------------------------------


def record_job_submitted(priority: str) -> None:
    """One job submitted to the serving loop (before admission control)."""
    reg = active()
    if reg is None:
        return
    reg.counter(
        "repro_serve_jobs_submitted_total", "Jobs submitted by priority.",
        labels=("priority",),
    ).inc(priority=priority)


def record_job_rejected(reason: str) -> None:
    """One admission rejection (queue-full / memory / deadline)."""
    reg = active()
    if reg is None:
        return
    reg.counter(
        "repro_serve_jobs_rejected_total",
        "Admission-control rejections by reason.", labels=("reason",),
    ).inc(reason=reason)


def record_job_expired() -> None:
    """One queued job whose deadline passed before it could be dispatched."""
    reg = active()
    if reg is None:
        return
    reg.counter(
        "repro_serve_jobs_expired_total",
        "Queued jobs dropped because their deadline passed.",
    ).inc()


def record_queue_depth(depth: int) -> None:
    """Queue depth after the last admission or dispatch."""
    reg = active()
    if reg is None:
        return
    reg.gauge(
        "repro_serve_queue_depth", "Jobs waiting in the admission queue."
    ).set(depth)
    reg.gauge(
        "repro_serve_queue_depth_peak",
        "High-water mark of the admission queue depth.",
    ).set_max(depth)


def record_serve_dispatch(
    device: str, n_jobs: int, makespan_seconds: float, utilization: float
) -> None:
    """One dispatch group priced onto a device of the fleet."""
    reg = active()
    if reg is None:
        return
    reg.counter(
        "repro_serve_dispatches_total", "Dispatch groups by device.",
        labels=("device",),
    ).inc(device=device)
    reg.counter(
        "repro_serve_dispatched_jobs_total", "Jobs dispatched by device.",
        labels=("device",),
    ).inc(n_jobs, device=device)
    reg.counter(
        "repro_serve_device_busy_seconds_total",
        "Modeled busy seconds by device.", labels=("device",),
    ).inc(makespan_seconds, device=device)
    reg.histogram(
        "repro_serve_dispatch_utilization",
        "Stream utilization of each dispatch group.",
    ).observe(utilization)


def record_device_utilization(device: str, utilization: float) -> None:
    """End-of-replay utilization of one device (busy / span)."""
    reg = active()
    if reg is None:
        return
    reg.gauge(
        "repro_serve_device_utilization",
        "Fraction of the replay span each device spent busy.",
        labels=("device",),
    ).set(utilization, device=device)


def record_job_completed(
    status: str, latency_seconds: float, warm_started: bool
) -> None:
    """One job that ran to completion (any solver status)."""
    reg = active()
    if reg is None:
        return
    reg.counter(
        "repro_serve_jobs_completed_total",
        "Completed jobs by solver status and warm-start origin.",
        labels=("status", "warm"),
    ).inc(status=status, warm="yes" if warm_started else "no")
    reg.histogram(
        "repro_serve_latency_seconds",
        "Modeled submit-to-finish latency of completed jobs.",
        buckets=SERVE_LATENCY_BUCKETS,
    ).observe(latency_seconds)
    update_serve_latency_quantiles()


def record_cache_lookup(hit: bool) -> None:
    """One warm-start cache lookup at dispatch time."""
    reg = active()
    if reg is None:
        return
    reg.counter(
        "repro_serve_cache_lookups_total",
        "Warm-start cache lookups by outcome.", labels=("outcome",),
    ).inc(outcome="hit" if hit else "miss")


def record_cache_store(evicted: bool) -> None:
    """One basis stored in the warm-start cache (plus any LRU eviction)."""
    reg = active()
    if reg is None:
        return
    reg.counter(
        "repro_serve_cache_stores_total", "Bases stored in the cache."
    ).inc()
    if evicted:
        reg.counter(
            "repro_serve_cache_evictions_total", "LRU evictions of bases."
        ).inc()


def record_cache_size(size: int) -> None:
    """Current number of cached bases."""
    reg = active()
    if reg is None:
        return
    reg.gauge(
        "repro_serve_cache_size", "Bases currently held by the cache."
    ).set(size)


def update_serve_latency_quantiles() -> None:
    """Re-derive the p50/p95/p99 modeled-latency gauges from the latency
    histogram's buckets (:func:`repro.metrics.bucket_quantile`), so the
    service's tail latency is readable straight off the exposition."""
    reg = active()
    if reg is None:
        return
    hist = reg.get("repro_serve_latency_seconds")
    if hist is None:
        return
    gauge = reg.gauge(
        "repro_serve_latency_quantile_seconds",
        "Bucket-estimated modeled-latency quantiles (p50/p95/p99).",
        labels=("q",),
    )
    for _labels, series in hist.series_items():
        for q in SERVE_LATENCY_QUANTILES:
            gauge.set(
                bucket_quantile(
                    hist.buckets, series.bucket_counts, series.count, q
                ),
                q=f"{q:g}",
            )


# ---------------------------------------------------------------------------
# span recording (repro.obs) — the serve/batch emission façade
# ---------------------------------------------------------------------------
#
# Serve and batch code may not import ``repro.obs`` (the architecture lint
# extends the metrics rule to it), so the span layer is reached through the
# thin forwards below.  Each one is a single ``is None`` check while no
# recorder is installed — the same zero-overhead contract as every metrics
# hook in this module — and the span-shaped work lives in
# :mod:`repro.obs.emit`, imported only once a recorder exists.


def obs_enabled() -> bool:
    """True when a span recorder is installed (``repro.obs.enable``)."""
    return _obs_active() is not None


def obs_job_rejected(job: Any) -> None:
    """Span tree of one admission rejection (terminal, emitted once)."""
    rec = _obs_active()
    if rec is None:
        return
    from repro.obs import emit

    emit.emit_job_rejected(rec, job)


def obs_job_expired(job: Any) -> None:
    """Span tree of one queued job whose deadline lapsed (idempotent)."""
    rec = _obs_active()
    if rec is None:
        return
    from repro.obs import emit

    emit.emit_job_expired(rec, job)


def obs_job_executed(
    job: Any,
    solve_ids: Sequence[str],
    events: Sequence[Any],
    launch_overhead: float,
    own_seconds: float,
    stretch: float,
) -> None:
    """Span tree of one completed job, including the execute-slice
    breakdown attribution reads (transfer / launch / refactor seconds)."""
    rec = _obs_active()
    if rec is None:
        return
    from repro.obs import emit

    emit.emit_job_executed(
        rec, job, solve_ids, events, launch_overhead, own_seconds, stretch
    )


def obs_dispatch_window(
    device: str, t_start: float, outcome: "ScheduleOutcome", n_jobs: int
) -> None:
    """One dispatch window priced onto a fleet device."""
    rec = _obs_active()
    if rec is None:
        return
    from repro.obs import emit

    emit.emit_dispatch_window(rec, device, t_start, outcome, n_jobs)


def obs_batch_schedule(
    schedule: str,
    outcome: "ScheduleOutcome",
    timelines: Sequence["LPTimeline"],
) -> None:
    """One priced batch: schedule root + per-lane LP segments."""
    rec = _obs_active()
    if rec is None:
        return
    from repro.obs import emit

    emit.emit_batch_schedule(rec, schedule, outcome, timelines)


def obs_push_request(job: Any) -> None:
    """Open a request context: engine solves begun before the matching
    :func:`obs_pop_request` are linked to this job's trace."""
    rec = _obs_active()
    if rec is None:
        return
    from repro.obs import emit

    rec.push_request(emit.job_trace_id(job.job_id))


def obs_pop_request() -> list[str]:
    """Close the request context; returns the linked solve trace ids."""
    rec = _obs_active()
    if rec is None:
        return []
    return rec.pop_request()


def obs_collect() -> "ObsRecording | None":
    """Sample and return the active recorder's finished traces (``None``
    when recording is off)."""
    rec = _obs_active()
    if rec is None:
        return None
    return rec.collect()


def obs_attribution(recording: "ObsRecording") -> "AttributionReport":
    """Latency attribution over a recording (lazy ``repro.obs`` import so
    :meth:`repro.serve.service.ServeReport.attribution` stays lint-clean)."""
    from repro.obs.attribution import attribute

    return attribute(recording)


def record_obs_sampling(
    *,
    kept_traces: int,
    dropped_traces: int,
    kept_spans: int,
    dropped_spans: int,
) -> None:
    """Sampling decisions of one collection pass.  Pinned by the metrics
    regression gate so span-volume or sampling changes can't rot silently."""
    reg = active()
    if reg is None:
        return
    reg.counter(
        "repro_obs_traces_kept_total",
        "Request traces kept by the obs sampling policy.",
    ).inc(kept_traces)
    reg.counter(
        "repro_obs_traces_dropped_total",
        "Request traces dropped by the obs sampling policy.",
    ).inc(dropped_traces)
    reg.counter(
        "repro_obs_spans_kept_total",
        "Spans kept by the obs sampling policy.",
    ).inc(kept_spans)
    reg.counter(
        "repro_obs_spans_dropped_total",
        "Spans dropped by the obs sampling policy.",
    ).inc(dropped_spans)

"""Snapshot exporters: Prometheus text exposition and stable JSON.

:func:`to_prometheus` renders a registry or snapshot in the Prometheus
text exposition format (version 0.0.4): ``# HELP`` / ``# TYPE`` comments
followed by one sample line per series, histograms expanded into
``_bucket{le=...}`` / ``_sum`` / ``_count`` samples.
:func:`validate_prometheus_text` is a line-oriented grammar checker used
by the tests and the ``metrics-smoke`` Makefile target, so exported output
is mechanically known to parse.

:func:`to_json` / :func:`from_json` round-trip the snapshot dict with a
stable key order; this is the on-disk format of the gate baselines under
``benchmarks/baselines/``.
"""

from __future__ import annotations

import json
import math
import re
from typing import Any, Mapping

from repro.metrics.registry import (
    MetricsError,
    MetricsRegistry,
    check_snapshot,
)

# -- Prometheus text format -------------------------------------------------

_METRIC_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<timestamp>-?[0-9]+))?$"
)
_LABEL_PAIR = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*"'
_LABEL_BODY_RE = re.compile(rf"^{_LABEL_PAIR}(?:,{_LABEL_PAIR})*,?$")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_le(bound: str) -> str:
    # snapshot bucket keys are reprs of floats; render integral bounds
    # without the trailing ".0" the way Prometheus clients do
    value = float(bound)
    return _format_value(value)


def _labels_fragment(labels: Mapping[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [*sorted(labels.items()), *extra]
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(str(v))}"' for k, v in pairs)
    return "{" + body + "}"


def to_prometheus(source: "MetricsRegistry | Mapping[str, Any]") -> str:
    """Render a registry or snapshot dict as Prometheus exposition text."""
    snapshot = (
        source.snapshot() if isinstance(source, MetricsRegistry) else check_snapshot(source)
    )
    lines: list[str] = []
    for name in sorted(snapshot["metrics"]):
        metric = snapshot["metrics"][name]
        if metric["help"]:
            lines.append(f"# HELP {name} {_escape_help(metric['help'])}")
        lines.append(f"# TYPE {name} {metric['type']}")
        for entry in metric["series"]:
            labels = entry["labels"]
            if metric["type"] == "histogram":
                for bound, count in sorted(
                    entry["buckets"].items(), key=lambda kv: float(kv[0])
                ):
                    frag = _labels_fragment(labels, (("le", _format_le(bound)),))
                    lines.append(f"{name}_bucket{frag} {_format_value(count)}")
                frag = _labels_fragment(labels, (("le", "+Inf"),))
                lines.append(f"{name}_bucket{frag} {_format_value(entry['count'])}")
                lines.append(
                    f"{name}_sum{_labels_fragment(labels)} "
                    f"{_format_value(entry['sum'])}"
                )
                lines.append(
                    f"{name}_count{_labels_fragment(labels)} "
                    f"{_format_value(entry['count'])}"
                )
            else:
                lines.append(
                    f"{name}{_labels_fragment(labels)} "
                    f"{_format_value(entry['value'])}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def validate_prometheus_text(text: str) -> int:
    """Line-oriented check of the Prometheus text-format grammar.

    Verifies every non-comment line parses as ``name[{labels}] value
    [timestamp]``, label pairs are well-formed, values are valid floats
    (including ``NaN`` / ``+Inf`` / ``-Inf``), ``# TYPE`` declarations use
    known types and precede their samples, and the exposition ends with a
    newline.  Returns the number of sample lines; raises
    :class:`~repro.metrics.registry.MetricsError` on the first violation.
    """
    if text and not text.endswith("\n"):
        raise MetricsError("exposition must end with a newline")
    typed: dict[str, str] = {}
    samples = 0
    for lineno, line in enumerate(text.split("\n")[:-1], start=1):
        if line == "":
            continue
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3 or not _METRIC_NAME_RE.fullmatch(parts[2]):
                    raise MetricsError(f"line {lineno}: malformed {parts[1]} comment")
                if parts[1] == "TYPE":
                    if len(parts) != 4 or parts[3] not in (
                        "counter", "gauge", "histogram", "summary", "untyped"
                    ):
                        raise MetricsError(f"line {lineno}: bad TYPE declaration")
                    if parts[2] in typed:
                        raise MetricsError(
                            f"line {lineno}: duplicate TYPE for {parts[2]}"
                        )
                    typed[parts[2]] = parts[3]
            continue  # other comments are free-form
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise MetricsError(f"line {lineno}: unparsable sample {line!r}")
        labels = match.group("labels")
        if labels and not _LABEL_BODY_RE.match(labels):
            raise MetricsError(f"line {lineno}: bad label set {{{labels}}}")
        value = match.group("value")
        if value not in ("NaN", "+Inf", "-Inf", "Inf"):
            try:
                float(value)
            except ValueError:
                raise MetricsError(
                    f"line {lineno}: bad sample value {value!r}"
                ) from None
        base = match.group("name")
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base[: -len(suffix)] in typed:
                base = base[: -len(suffix)]
                break
        if typed and base not in typed:
            raise MetricsError(
                f"line {lineno}: sample {base!r} precedes or lacks its TYPE"
            )
        samples += 1
    return samples


# -- JSON -------------------------------------------------------------------


def to_json(snapshot: Mapping[str, Any], indent: int = 2) -> str:
    """Serialise a snapshot dict as stable (sorted-key) JSON."""
    return json.dumps(check_snapshot(snapshot), indent=indent, sort_keys=True) + "\n"


def from_json(text: str) -> dict[str, Any]:
    """Parse and validate a snapshot produced by :func:`to_json`."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise MetricsError(f"snapshot is not valid JSON: {exc}") from None
    return dict(check_snapshot(data))

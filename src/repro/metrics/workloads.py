"""Canonical metric workloads: deterministic runs behind the CLI and gate.

The regression gate only works if the workload that produced the baseline
is reproduced exactly at check time.  :func:`smoke_workload` is that
workload — small, fast, fully seeded, touching every instrumented layer
(GPU and CPU solvers, a concurrent batch, a warm-start chain, one traced
solve) — shared by ``python -m repro metrics``, ``make metrics-smoke`` /
``make gate``, the M1 experiment and the committed baseline under
``benchmarks/baselines/``.

Everything recorded is modeled time or exact counts, so two runs of the
same workload on any machine produce byte-identical snapshots.
"""

from __future__ import annotations

from typing import Any

#: Name recorded in baselines produced from :func:`smoke_workload`.
#: v2 added the fused (``fusion=True``) solve that pins the kernel-fusion
#: counters in the gate baseline.
SMOKE_WORKLOAD = "repro.metrics.workloads.smoke_workload/v2"


def smoke_workload() -> None:
    """Run the canonical deterministic workload into the active registry.

    Composition (all seeded, all modeled-time only):

    - a 4-LP batch of 24x32 dense LPs on ``gpu-revised`` (fp32) under the
      concurrent schedule — exercises device kernels, transfers, the batch
      scheduler and stream-utilization gauges;
    - a 3-step warm-start chain of 16x24 LPs on the CPU ``revised``
      solver — exercises the chain schedule and CPU section counters;
    - one traced ``gpu-tableau`` solve — exercises the ratio-test-tie
      counter and a second GPU solver;
    - one ``gpu-revised`` solve with ``fusion=True`` — exercises the
      launch-plan lowering and pins the fused-launch counters;
    - one ``revised-bounded`` solve of a box-bounded LP — exercises the
      bounded solver family;
    - a 6-job served trace with the ``repro.obs`` span recorder on at a
      0.5 head-sampling rate — exercises the span sampling counters with
      both kept *and* dropped traces, pinning them in the gate baseline.
    """
    import numpy as np

    from repro.lp.generators import random_dense_lp
    from repro.lp.problem import Bounds, LPProblem
    from repro.obs import SamplingPolicy, observing
    from repro.serve import ServeConfig, serve_trace, synthetic_trace
    from repro.solve import solve, solve_batch, solve_batch_chain

    batch_lps = [random_dense_lp(24, 32, seed=s) for s in range(4)]
    solve_batch(
        batch_lps, method="gpu-revised", schedule="concurrent",
        dtype=np.float32,
    )

    chain_lps = [random_dense_lp(16, 24, seed=100 + s) for s in range(3)]
    solve_batch_chain(chain_lps, method="revised")

    solve(random_dense_lp(12, 18, seed=7), method="gpu-tableau", trace=True)

    solve(random_dense_lp(14, 20, seed=11), method="gpu-revised", fusion=True)

    bounded = LPProblem.minimize(
        c=[-2.0, -3.0, 1.0],
        a_ub=[[1.0, 2.0, 1.0], [2.0, 1.0, 3.0]],
        b_ub=[8.0, 10.0],
        bounds=Bounds(
            np.array([0.0, 0.0, 0.0]), np.array([3.0, 2.5, 4.0])
        ),
    )
    solve(bounded, method="revised-bounded")

    policy = SamplingPolicy(head_rate=0.5, tail_slowest_quantile=1.0)
    with observing(policy=policy):
        serve_trace(
            synthetic_trace(n_jobs=6, seed=3),
            ServeConfig(n_devices=1, n_streams=2),
        )


#: Gate tolerance policy committed with smoke baselines.  The workload is
#: deterministic, so counters sit at "both/zero-slack"; modeled seconds get
#: a hair of relative slack for cross-platform float-formatting safety.
SMOKE_TOLERANCES: dict[str, Any] = {
    "default": {"rel": 0.001, "abs": 1e-12, "direction": "both"},
    "repro_gpu_kernel_seconds_total": {"rel": 0.01, "direction": "up"},
    "repro_gpu_transfer_seconds_total": {"rel": 0.01, "direction": "up"},
    "repro_solver_modeled_seconds_total": {"rel": 0.01, "direction": "up"},
    "repro_solver_section_seconds_total": {"rel": 0.01, "direction": "up"},
    "repro_batch_makespan_seconds_total": {"rel": 0.01, "direction": "up"},
    "repro_batch_stream_utilization": {"rel": 0.01, "direction": "down"},
    "repro_batch_bound_seconds": {"rel": 0.01, "direction": "up"},
    "repro_gpu_kernel_occupancy": {"rel": 0.01, "direction": "both"},
    "repro_gpu_kernel_coalesced_fraction": {"rel": 0.01, "direction": "both"},
    "repro_batch_lp_wall_share": {"rel": 0.01, "direction": "both"},
}

"""The bench regression gate: compare a metrics snapshot to a baseline.

A **baseline** is a committed JSON file (``benchmarks/baselines/*.json``)
holding a reference snapshot of a deterministic workload plus tolerance
policy.  :func:`compare` checks a fresh snapshot of the same workload
against it, series by series, and reports every violation; the CLI
(``python -m repro metrics --gate FILE``) and ``make gate`` exit nonzero
when any check fails.

Tolerances are per metric (exact-name match first, then longest matching
``prefix*`` glob, then the default) with three knobs:

- ``rel`` / ``abs`` — allowed relative/absolute slack;
- ``direction`` — which way counts as a regression: ``"up"`` (bigger is
  worse: seconds, bytes, iterations — the default), ``"down"`` (smaller is
  worse: throughput, utilization), or ``"both"`` (any drift beyond the
  slack fails — used for correctness-adjacent counters that must not move
  at all on a deterministic workload).

Everything the library records into :mod:`repro.metrics` is *modeled*
time or exact counts — no wall clock — so baselines are bit-reproducible
and tolerances can be tight.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Mapping

from repro.metrics.registry import MetricsError, check_snapshot

#: Identifier of the baseline file layout.
BASELINE_SCHEMA = "repro.metrics/baseline-v1"

#: Tolerance applied when the baseline names no other policy.  The
#: simulator is deterministic, so the default slack is a guard against
#: float-formatting churn, not run-to-run noise.
DEFAULT_TOLERANCE = {"rel": 0.01, "abs": 1e-12, "direction": "up"}

_DIRECTIONS = ("up", "down", "both")


@dataclasses.dataclass(frozen=True)
class GateCheck:
    """One compared series: where it stood, where it stands, the verdict."""

    metric: str
    labels: dict[str, str]
    field: str  # "value" for scalars, "sum"/"count" for histograms
    baseline: float
    actual: float
    allowed: float
    direction: str
    ok: bool

    def describe(self) -> str:
        state = "ok  " if self.ok else "FAIL"
        frag = ",".join(f"{k}={v}" for k, v in sorted(self.labels.items()))
        series = f"{self.metric}{{{frag}}}" if frag else self.metric
        if self.field != "value":
            series += f".{self.field}"
        return (
            f"{state} {series}: baseline={self.baseline:.9g} "
            f"actual={self.actual:.9g} allowed±={self.allowed:.3g} "
            f"dir={self.direction}"
        )


@dataclasses.dataclass
class GateResult:
    """Outcome of one gate run."""

    checks: list[GateCheck] = dataclasses.field(default_factory=list)
    missing: list[str] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.missing and all(c.ok for c in self.checks)

    @property
    def failures(self) -> list[GateCheck]:
        return [c for c in self.checks if not c.ok]

    def render(self) -> str:
        lines = [c.describe() for c in self.failures]
        lines += [f"FAIL {name}: series missing from snapshot" for name in self.missing]
        passed = len(self.checks) - len(self.failures)
        lines.append(
            f"gate: {passed}/{len(self.checks)} series within tolerance, "
            f"{len(self.failures)} regressed, {len(self.missing)} missing -> "
            + ("OK" if self.ok else "REGRESSION")
        )
        return "\n".join(lines)


def _resolve_tolerance(
    name: str, tolerances: Mapping[str, Any]
) -> dict[str, Any]:
    policy = dict(DEFAULT_TOLERANCE)
    policy.update(tolerances.get("default", {}))
    best_glob = None
    for pattern in tolerances:
        if pattern.endswith("*") and name.startswith(pattern[:-1]):
            if best_glob is None or len(pattern) > len(best_glob):
                best_glob = pattern
    if best_glob is not None:
        policy.update(tolerances[best_glob])
    if name in tolerances:
        policy.update(tolerances[name])
    if policy["direction"] not in _DIRECTIONS:
        raise MetricsError(
            f"tolerance for {name!r}: direction must be one of {_DIRECTIONS}"
        )
    return policy


def _check(
    metric: str,
    labels: dict[str, str],
    field: str,
    baseline: float,
    actual: float,
    policy: Mapping[str, Any],
) -> GateCheck:
    allowed = abs(baseline) * float(policy["rel"]) + float(policy["abs"])
    direction = policy["direction"]
    delta = actual - baseline
    if direction == "up":
        ok = delta <= allowed
    elif direction == "down":
        ok = -delta <= allowed
    else:
        ok = abs(delta) <= allowed
    return GateCheck(
        metric=metric, labels=labels, field=field,
        baseline=float(baseline), actual=float(actual),
        allowed=allowed, direction=direction, ok=ok,
    )


def _series_key(entry: Mapping[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(entry["labels"].items()))


def compare(
    snapshot: Mapping[str, Any],
    baseline: Mapping[str, Any],
) -> GateResult:
    """Gate ``snapshot`` against a baseline document.

    Every series the baseline records must exist in the snapshot and sit
    within its tolerance; series the snapshot grew *beyond* the baseline
    (new kernels, new solvers) pass freely — the gate guards recorded
    quantities, it does not freeze the metric namespace.
    """
    if baseline.get("schema") != BASELINE_SCHEMA:
        raise MetricsError(
            f"not a gate baseline (schema {baseline.get('schema')!r}; "
            f"expected {BASELINE_SCHEMA!r})"
        )
    reference = check_snapshot(baseline["snapshot"])
    check_snapshot(snapshot)
    tolerances = baseline.get("tolerances", {})
    result = GateResult()

    for name, ref_metric in reference["metrics"].items():
        policy = _resolve_tolerance(name, tolerances)
        actual_metric = snapshot["metrics"].get(name)
        actual_series = (
            {_series_key(s): s for s in actual_metric["series"]}
            if actual_metric is not None
            else {}
        )
        for ref_entry in ref_metric["series"]:
            entry = actual_series.get(_series_key(ref_entry))
            if entry is None:
                frag = ",".join(
                    f"{k}={v}" for k, v in sorted(ref_entry["labels"].items())
                )
                result.missing.append(f"{name}{{{frag}}}" if frag else name)
                continue
            if ref_metric["type"] == "histogram":
                for field in ("sum", "count"):
                    result.checks.append(
                        _check(name, ref_entry["labels"], field,
                               ref_entry[field], entry[field], policy)
                    )
            else:
                result.checks.append(
                    _check(name, ref_entry["labels"], "value",
                           ref_entry["value"], entry["value"], policy)
                )
    return result


def make_baseline(
    snapshot: Mapping[str, Any],
    workload: str = "",
    tolerances: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Wrap a snapshot as a baseline document ready to commit."""
    return {
        "schema": BASELINE_SCHEMA,
        "workload": workload,
        "tolerances": dict(tolerances or {}),
        "snapshot": check_snapshot(snapshot),
    }


def write_baseline(baseline: Mapping[str, Any], path: "str | Path") -> Path:
    """Write a baseline document as stable JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: "str | Path") -> dict[str, Any]:
    """Read and sanity-check a baseline document."""
    try:
        data = json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise MetricsError(f"no baseline at {path}") from None
    except json.JSONDecodeError as exc:
        raise MetricsError(f"baseline {path} is not valid JSON: {exc}") from None
    if data.get("schema") != BASELINE_SCHEMA:
        raise MetricsError(
            f"baseline {path}: schema {data.get('schema')!r} != {BASELINE_SCHEMA!r}"
        )
    check_snapshot(data.get("snapshot", {}))
    return data

"""Process-wide metrics & telemetry (``repro.metrics``).

The quantities behind the paper's headline claims — kernel-time shares,
PCIe transfer overhead, iteration counts, batch throughput — flow through
one registry of **counters**, **gauges** and **histograms** with labeled
series (``repro_gpu_kernel_seconds_total{kernel="gemv"}``), instrumented
into the layers that already compute them: the simulated device, every
solver's finish path, and the batch scheduler.

Collection is opt-in and provably non-perturbing: no registry installed
means every hook is a single ``is None`` check, and with one installed the
hooks only copy numbers the existing bookkeeping produced — statuses,
objectives, pivot sequences and modeled seconds are bit-identical either
way (property-tested across all seven solve methods).

Quickstart::

    from repro import metrics, random_dense_lp, solve

    reg = metrics.enable()                   # start collecting
    before = metrics.snapshot()
    solve(random_dense_lp(64, 96, seed=0), method="gpu-revised")
    delta = metrics.diff(before, metrics.snapshot())   # this solve only
    print(metrics.to_prometheus(delta))      # Prometheus text exposition

Exporters: :func:`to_prometheus` (text exposition format, mechanically
validated by :func:`validate_prometheus_text`) and :func:`to_json` /
:func:`from_json` (the stable snapshot schema the regression gate
consumes).  The gate (:mod:`repro.metrics.gate`, ``python -m repro
metrics --gate FILE``, ``make gate``) compares a snapshot against a
committed baseline under ``benchmarks/baselines/`` with per-metric
tolerances and exits nonzero on regression.
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterator

from repro.metrics.exporters import (
    from_json,
    to_json,
    to_prometheus,
    validate_prometheus_text,
)
from repro.metrics.gate import (
    BASELINE_SCHEMA,
    GateCheck,
    GateResult,
    compare,
    load_baseline,
    make_baseline,
    write_baseline,
)
from repro.metrics.registry import (
    SNAPSHOT_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    active,
    bucket_quantile,
    check_snapshot,
    diff_snapshots,
    disable,
    enable,
    enabled,
    quantile,
    snapshot_value,
)

__all__ = [
    "BASELINE_SCHEMA",
    "SNAPSHOT_SCHEMA",
    "Counter",
    "Gauge",
    "GateCheck",
    "GateResult",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "active",
    "bucket_quantile",
    "check_snapshot",
    "collecting",
    "compare",
    "diff",
    "diff_snapshots",
    "disable",
    "enable",
    "enabled",
    "from_json",
    "load_baseline",
    "make_baseline",
    "quantile",
    "snapshot",
    "snapshot_value",
    "to_json",
    "to_prometheus",
    "validate_prometheus_text",
    "write_baseline",
]

#: ``diff(before, after)`` — alias of :func:`diff_snapshots` for the
#: snapshot()/diff() pairing the docs use.
diff = diff_snapshots


def snapshot() -> dict[str, Any]:
    """Snapshot the process-wide registry (empty snapshot when disabled)."""
    reg = active()
    if reg is None:
        return {"schema": SNAPSHOT_SCHEMA, "metrics": {}}
    return reg.snapshot()


@contextlib.contextmanager
def collecting(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Enable collection for the duration of a ``with`` block, restoring
    the previously installed registry (or disabled state) on exit."""
    previous = active()
    reg = enable(registry)
    try:
        yield reg
    finally:
        if previous is None:
            disable()
        else:
            enable(previous)

"""The metric primitives and the process-wide registry.

Three metric types, all supporting labeled series (one time series per
distinct label set, Prometheus-style):

- :class:`Counter`   — monotonically increasing totals (``inc``);
- :class:`Gauge`     — last-written values (``set`` / ``inc`` / ``dec``);
- :class:`Histogram` — cumulative-bucket distributions (``observe``).

A :class:`MetricsRegistry` owns a namespace of metrics and turns them into
a stable, JSON-ready **snapshot** dict (schema
:data:`SNAPSHOT_SCHEMA`); :func:`diff_snapshots` subtracts two snapshots of
the same registry to isolate what one solve / batch / experiment
contributed.

Collection is **process-wide and opt-in**: instrumentation points across
the library (the simulated device, every solver, the batch layer) write
into the registry installed by :func:`enable` and do nothing — one ``is
None`` check — while no registry is installed.  Metrics only ever copy
values that the existing bookkeeping (``DeviceStats``, ``IterationStats``,
``TimingStats``, schedule outcomes) already computes, or recompute pure
functions of them, so enabling collection cannot perturb statuses,
objectives, pivot sequences or modeled seconds (property-tested across all
solve methods).
"""

from __future__ import annotations

import dataclasses
import math
import re
import threading
from typing import Any, Iterator, Mapping, Sequence

#: Identifier of the JSON snapshot layout produced by ``snapshot()``.
SNAPSHOT_SCHEMA = "repro.metrics/v1"

#: Prometheus metric- and label-name grammar (subset: no colons in labels).
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets — tuned for the library's two dominant
#: observation kinds: fractions in [0, 1] (occupancy, coalescing, wall
#: share) and small per-solve counts.  Metrics with other ranges pass
#: explicit buckets.
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0)


class MetricsError(ValueError):
    """Invalid metric name, label set, or registry operation."""


def _check_labels(
    declared: tuple[str, ...], labels: Mapping[str, Any]
) -> tuple[str, ...]:
    if set(labels) != set(declared):
        raise MetricsError(
            f"expected labels {sorted(declared)}, got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in declared)


@dataclasses.dataclass
class _Series:
    """One labeled time series of a scalar metric."""

    value: float = 0.0


@dataclasses.dataclass
class _HistogramSeries:
    """One labeled series of a histogram: cumulative buckets + sum/count."""

    bucket_counts: list[int]
    total: float = 0.0
    count: int = 0


class Metric:
    """Common machinery: name/help validation and the labeled-series map."""

    type: str = "untyped"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()):
        if not _NAME_RE.match(name):
            raise MetricsError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise MetricsError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.label_names = tuple(labels)
        self._series: dict[tuple[str, ...], Any] = {}
        self._lock = threading.Lock()

    def _get_series(self, labels: Mapping[str, Any]):
        key = _check_labels(self.label_names, labels)
        series = self._series.get(key)
        if series is None:
            with self._lock:
                series = self._series.setdefault(key, self._new_series())
        return series

    def _new_series(self):
        return _Series()

    def series_items(self) -> Iterator[tuple[dict[str, str], Any]]:
        """(labels dict, series) pairs in stable (sorted-key) order."""
        for key in sorted(self._series):
            yield dict(zip(self.label_names, key)), self._series[key]

    def clear(self) -> None:
        with self._lock:
            self._series.clear()


class Counter(Metric):
    """A monotonically increasing total."""

    type = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise MetricsError(f"counter {self.name} cannot decrease")
        self._get_series(labels).value += amount

    def value(self, **labels: Any) -> float:
        key = _check_labels(self.label_names, labels)
        series = self._series.get(key)
        return series.value if series is not None else 0.0


class Gauge(Metric):
    """A value that can go up and down; reports the last written value."""

    type = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        self._get_series(labels).value = float(value)

    def set_max(self, value: float, **labels: Any) -> None:
        """Keep the running maximum (peak-style gauges)."""
        series = self._get_series(labels)
        series.value = max(series.value, float(value))

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        self._get_series(labels).value += amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self._get_series(labels).value -= amount

    def value(self, **labels: Any) -> float:
        key = _check_labels(self.label_names, labels)
        series = self._series.get(key)
        return series.value if series is not None else 0.0


class Histogram(Metric):
    """A distribution with Prometheus-style cumulative buckets."""

    type = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise MetricsError("histogram buckets must be sorted and unique")
        if any(math.isnan(b) for b in bounds):
            raise MetricsError("histogram buckets cannot be NaN")
        #: Finite upper bounds; the +Inf bucket is implicit (== count).
        self.buckets = bounds

    def _new_series(self) -> _HistogramSeries:
        return _HistogramSeries(bucket_counts=[0] * len(self.buckets))

    def observe(self, value: float, **labels: Any) -> None:
        series = self._get_series(labels)
        value = float(value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                series.bucket_counts[i] += 1
        series.total += value
        series.count += 1

    def quantile(self, q: float, **labels: Any) -> float:
        """Bucket-estimated q-quantile of one series (NaN when the series
        is absent or empty).  See :func:`bucket_quantile` for semantics."""
        key = _check_labels(self.label_names, labels)
        series = self._series.get(key)
        if series is None:
            return float("nan")
        return bucket_quantile(
            self.buckets, series.bucket_counts, series.count, q
        )


def bucket_quantile(
    bounds: Sequence[float],
    cumulative_counts: Sequence[int],
    count: int,
    q: float,
) -> float:
    """Estimate the q-quantile of a cumulative-bucket histogram.

    Prometheus ``histogram_quantile`` semantics: find the first bucket
    whose cumulative count reaches ``q * count`` and interpolate linearly
    inside it.  The lower edge of the first bucket is taken as 0 when its
    upper bound is positive (the library's histograms observe non-negative
    quantities), otherwise the bound itself; a rank falling past the last
    finite bucket (the implicit ``+Inf`` bucket) returns the highest
    finite bound.  An empty histogram returns NaN.

    The estimate is exact whenever the true quantile sits on a bucket
    boundary and is otherwise off by at most one bucket width — the usual
    cumulative-histogram trade-off (unit-tested against known
    distributions in ``tests/test_metrics.py``).
    """
    if not 0.0 <= q <= 1.0:
        raise MetricsError(f"quantile must lie in [0, 1], got {q}")
    if count <= 0:
        return float("nan")
    target = q * count
    for i, (bound, cum) in enumerate(zip(bounds, cumulative_counts)):
        if cum > 0 and cum >= target:
            prev_cum = cumulative_counts[i - 1] if i > 0 else 0
            lower = bounds[i - 1] if i > 0 else (0.0 if bound > 0.0 else bound)
            in_bucket = cum - prev_cum
            frac = (target - prev_cum) / in_bucket if in_bucket > 0 else 1.0
            frac = min(max(frac, 0.0), 1.0)
            return float(lower + (bound - lower) * frac)
    return float(bounds[-1]) if bounds else float("nan")


def quantile(h: "Histogram | Mapping[str, Any]", q: float, **labels: Any) -> float:
    """Bucket-estimated q-quantile of a histogram.

    ``h`` is either a live :class:`Histogram` metric (``labels`` select the
    series) or one histogram series entry from a snapshot —
    ``{"buckets": {"0.05": 3, ...}, "count": 7, ...}`` as produced by
    :meth:`MetricsRegistry.snapshot`.  This is what turns exported
    sum/count/bucket data into the p50/p95/p99 gauges the serving loop
    reports.
    """
    if isinstance(h, Histogram):
        return h.quantile(q, **labels)
    if isinstance(h, Mapping) and "buckets" in h:
        pairs = sorted(
            ((float(bound), int(c)) for bound, c in h["buckets"].items()),
            key=lambda bc: bc[0],
        )
        bounds = [b for b, _ in pairs]
        cumulative = [c for _, c in pairs]
        return bucket_quantile(bounds, cumulative, int(h["count"]), q)
    raise MetricsError(
        "quantile() needs a Histogram or a snapshot histogram series "
        "(a mapping with 'buckets' and 'count')"
    )


class MetricsRegistry:
    """A namespace of metrics with stable snapshot/diff semantics."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    # -- declaration ----------------------------------------------------

    def _register(self, cls, name: str, help: str, labels, **kwargs) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.label_names != tuple(labels):
                    raise MetricsError(
                        f"metric {name!r} already registered as "
                        f"{existing.type} with labels {existing.label_names}"
                    )
                return existing
            metric = cls(name, help, labels, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        """Declare (or fetch, if identically declared) a counter."""
        return self._register(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        """Declare (or fetch, if identically declared) a gauge."""
        return self._register(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Declare (or fetch, if identically declared) a histogram."""
        return self._register(Histogram, name, help, labels, buckets=buckets)

    # -- access ---------------------------------------------------------

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def __iter__(self) -> Iterator[Metric]:
        return iter([self._metrics[k] for k in sorted(self._metrics)])

    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> None:
        """Drop every series (declarations survive)."""
        for metric in self._metrics.values():
            metric.clear()

    # -- snapshots ------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A stable, JSON-serialisable copy of every series.

        Layout (:data:`SNAPSHOT_SCHEMA`)::

            {"schema": "repro.metrics/v1",
             "metrics": {name: {"type": ..., "help": ...,
                                "labels": [...], "series": [...]}}}

        Scalar series are ``{"labels": {...}, "value": v}``; histogram
        series carry ``{"labels": ..., "buckets": {"0.5": n, ...},
        "sum": s, "count": c}`` with cumulative bucket counts keyed by
        their upper bound (the implicit ``+Inf`` bucket equals ``count``).
        """
        metrics: dict[str, Any] = {}
        for metric in self:
            series_out: list[dict[str, Any]] = []
            for labels, series in metric.series_items():
                if isinstance(metric, Histogram):
                    series_out.append(
                        {
                            "labels": labels,
                            "buckets": {
                                repr(bound): count
                                for bound, count in zip(
                                    metric.buckets, series.bucket_counts
                                )
                            },
                            "sum": series.total,
                            "count": series.count,
                        }
                    )
                else:
                    series_out.append({"labels": labels, "value": series.value})
            metrics[metric.name] = {
                "type": metric.type,
                "help": metric.help,
                "labels": list(metric.label_names),
                "series": series_out,
            }
        return {"schema": SNAPSHOT_SCHEMA, "metrics": metrics}


def _series_key(entry: Mapping[str, Any]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(entry["labels"].items()))


def check_snapshot(snapshot: Mapping[str, Any]) -> Mapping[str, Any]:
    """Validate the snapshot envelope; returns it unchanged."""
    if not isinstance(snapshot, Mapping) or "metrics" not in snapshot:
        raise MetricsError("not a metrics snapshot (no 'metrics' key)")
    if snapshot.get("schema") != SNAPSHOT_SCHEMA:
        raise MetricsError(
            f"unsupported snapshot schema {snapshot.get('schema')!r}; "
            f"expected {SNAPSHOT_SCHEMA!r}"
        )
    return snapshot


def diff_snapshots(
    before: Mapping[str, Any], after: Mapping[str, Any]
) -> dict[str, Any]:
    """``after - before``, per metric series, as a new snapshot dict.

    Counters and histograms subtract (series or buckets absent from
    ``before`` are treated as zero); gauges keep their ``after`` value —
    a gauge is a level, not an accumulation, so its delta is meaningless.
    Metrics that only exist in ``before`` are dropped.
    """
    check_snapshot(before)
    check_snapshot(after)
    out: dict[str, Any] = {}
    before_metrics = before["metrics"]
    for name, metric in after["metrics"].items():
        prior = before_metrics.get(name, {"series": []})
        prior_series = {_series_key(s): s for s in prior["series"]}
        series_out = []
        for entry in metric["series"]:
            old = prior_series.get(_series_key(entry))
            if metric["type"] == "histogram":
                old_buckets = old["buckets"] if old else {}
                series_out.append(
                    {
                        "labels": entry["labels"],
                        "buckets": {
                            bound: count - old_buckets.get(bound, 0)
                            for bound, count in entry["buckets"].items()
                        },
                        "sum": entry["sum"] - (old["sum"] if old else 0.0),
                        "count": entry["count"] - (old["count"] if old else 0),
                    }
                )
            elif metric["type"] == "gauge" or old is None:
                series_out.append(dict(entry))
            else:
                series_out.append(
                    {"labels": entry["labels"], "value": entry["value"] - old["value"]}
                )
        out[name] = {**metric, "series": series_out}
    return {"schema": SNAPSHOT_SCHEMA, "metrics": out}


def snapshot_value(
    snapshot: Mapping[str, Any], name: str, **labels: Any
) -> float | None:
    """Convenience lookup: the value of one scalar series (``None`` if the
    metric or series is absent); histograms return their ``sum``."""
    metric = check_snapshot(snapshot)["metrics"].get(name)
    if metric is None:
        return None
    want = tuple(sorted((k, str(v)) for k, v in labels.items()))
    for entry in metric["series"]:
        if _series_key(entry) == want:
            return entry["sum"] if metric["type"] == "histogram" else entry["value"]
    return None


# ---------------------------------------------------------------------------
# the process-wide registry
# ---------------------------------------------------------------------------

_ACTIVE: MetricsRegistry | None = None


def enable(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install ``registry`` (a fresh one by default) as the process-wide
    collection target and return it.  Idempotent for the same registry."""
    global _ACTIVE
    _ACTIVE = registry if registry is not None else MetricsRegistry()
    return _ACTIVE


def disable() -> None:
    """Stop collecting: instrumentation points become no-ops again."""
    global _ACTIVE
    _ACTIVE = None


def active() -> MetricsRegistry | None:
    """The installed process-wide registry, or ``None`` when collection is
    off.  Instrumentation sites gate on this being non-None."""
    return _ACTIVE


def enabled() -> bool:
    return _ACTIVE is not None

"""Sparse matrix formats implemented from scratch.

The library's sparse substrate: COO (construction-friendly), CSR (fast row
access / matvec) and CSC (fast column extraction — the access pattern revised
simplex needs for entering columns ``a_q``).  All formats are backed by plain
NumPy index/value arrays, validate their structural invariants on
construction, and interconvert losslessly.

These are deliberately *not* wrappers around ``scipy.sparse``; scipy is used
only in the test-suite as an independent oracle.
"""

from repro.sparse.base import segment_sums
from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix
from repro.sparse.csc import CscMatrix

__all__ = ["CooMatrix", "CsrMatrix", "CscMatrix", "segment_sums"]

"""CSR (compressed sparse row) format: fast row access and matvec."""

from __future__ import annotations

import numpy as np

from repro.errors import SparseFormatError
from repro.sparse.base import SparseMatrix, segment_sums


class CsrMatrix(SparseMatrix):
    """Sparse matrix in CSR form: ``indptr`` (m+1), ``indices`` (col ids per
    entry, sorted within each row), ``data`` (values)."""

    def __init__(self, shape, indptr, indices, data):
        self.shape = self._validate_shape(shape)
        m, n = self.shape
        self.indptr = self._as_index_array("indptr", indptr, m + 1)
        nnz = int(self.indptr[-1]) if self.indptr.size else 0
        self.indices = self._as_index_array("indices", indices, nnz)
        self.data = self._as_value_array("data", data, nnz)
        self._validate_structure()

    def _validate_structure(self) -> None:
        m, n = self.shape
        if self.indptr.size and self.indptr[0] != 0:
            raise SparseFormatError("indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise SparseFormatError("indptr must be non-decreasing")
        if self.indices.size:
            if self.indices.min() < 0 or self.indices.max() >= n:
                raise SparseFormatError("column index out of range")
            # column indices sorted within each row (canonical CSR)
            for i in range(m):
                lo, hi = self.indptr[i], self.indptr[i + 1]
                seg = self.indices[lo:hi]
                if seg.size > 1 and np.any(np.diff(seg) <= 0):
                    raise SparseFormatError(
                        f"row {i} has unsorted or duplicate column indices"
                    )

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_dense(cls, dense: np.ndarray, tol: float = 0.0) -> "CsrMatrix":
        from repro.sparse.coo import CooMatrix

        return CooMatrix.from_dense(dense, tol).tocsr()

    @classmethod
    def eye(cls, n: int) -> "CsrMatrix":
        """The n×n identity (the initial basis inverse of phase 1)."""
        return cls(
            (n, n),
            np.arange(n + 1, dtype=np.int64),
            np.arange(n, dtype=np.int64),
            np.ones(n),
        )

    # -- SparseMatrix API ------------------------------------------------------

    @property
    def nnz(self) -> int:
        return self.data.size

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        for i in range(self.shape[0]):
            lo, hi = self.indptr[i], self.indptr[i + 1]
            out[i, self.indices[lo:hi]] = self.data[lo:hi]
        return out

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = self._matvec_check(x)
        prods = self.data * x[self.indices]
        return segment_sums(prods, self.indptr)  # one sum per row

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        y = self._rmatvec_check(y)
        out = np.zeros(self.shape[1], dtype=np.float64)
        row_of = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        np.add.at(out, self.indices, self.data * y[row_of])
        return out

    # -- row/col access ----------------------------------------------------------

    def getrow(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """(column indices, values) of row i — O(row nnz)."""
        if not 0 <= i < self.shape[0]:
            raise SparseFormatError(f"row {i} out of range for {self.shape}")
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi].copy(), self.data[lo:hi].copy()

    def getcol_dense(self, j: int) -> np.ndarray:
        """Column j as a dense vector — O(nnz); use CSC for hot column reads."""
        if not 0 <= j < self.shape[1]:
            raise SparseFormatError(f"column {j} out of range for {self.shape}")
        out = np.zeros(self.shape[0], dtype=np.float64)
        hits = self.indices == j
        if hits.any():
            row_of = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
            out[row_of[hits]] = self.data[hits]
        return out

    # -- conversions ----------------------------------------------------------

    def tocoo(self):
        from repro.sparse.coo import CooMatrix

        row = np.repeat(np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr))
        return CooMatrix(self.shape, row, self.indices.copy(), self.data.copy())

    def tocsc(self):
        return self.tocoo().tocsc()

    def transpose(self):
        """Aᵀ as CSC — a pure buffer reinterpretation, O(nnz) copies.

        This CSR *is* the CSC of the transpose, so no sort through COO is
        needed; use ``.tocsr()`` on the result if Aᵀ is wanted row-major.
        """
        from repro.sparse.csc import CscMatrix

        return CscMatrix(
            (self.shape[1], self.shape[0]),
            self.indptr.copy(),
            self.indices.copy(),
            self.data.copy(),
        )

    def prune(self, tol: float = 0.0) -> "CsrMatrix":
        """Drop entries of magnitude <= tol (counters fill-in from updates)."""
        keep = np.abs(self.data) > tol
        lengths = np.zeros(self.shape[0], dtype=np.int64)
        row_of = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        np.add.at(lengths, row_of[keep], 1)
        indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        return CsrMatrix(self.shape, indptr, self.indices[keep], self.data[keep])

"""CSC (compressed sparse column) format: fast column extraction.

Revised simplex reads one *column* of A per iteration (the entering column
``a_q``); CSC makes that O(column nnz), which is why the solver stores the
constraint matrix column-wise.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SparseFormatError
from repro.sparse.base import SparseMatrix, segment_sums


class CscMatrix(SparseMatrix):
    """Sparse matrix in CSC form: ``indptr`` (n+1), ``indices`` (row ids per
    entry, sorted within each column), ``data`` (values)."""

    def __init__(self, shape, indptr, indices, data):
        self.shape = self._validate_shape(shape)
        m, n = self.shape
        self.indptr = self._as_index_array("indptr", indptr, n + 1)
        nnz = int(self.indptr[-1]) if self.indptr.size else 0
        self.indices = self._as_index_array("indices", indices, nnz)
        self.data = self._as_value_array("data", data, nnz)
        self._validate_structure()

    def _validate_structure(self) -> None:
        m, _ = self.shape
        if self.indptr.size and self.indptr[0] != 0:
            raise SparseFormatError("indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise SparseFormatError("indptr must be non-decreasing")
        if self.indices.size:
            if self.indices.min() < 0 or self.indices.max() >= m:
                raise SparseFormatError("row index out of range")
            for j in range(self.shape[1]):
                lo, hi = self.indptr[j], self.indptr[j + 1]
                seg = self.indices[lo:hi]
                if seg.size > 1 and np.any(np.diff(seg) <= 0):
                    raise SparseFormatError(
                        f"column {j} has unsorted or duplicate row indices"
                    )

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_dense(cls, dense: np.ndarray, tol: float = 0.0) -> "CscMatrix":
        from repro.sparse.coo import CooMatrix

        return CooMatrix.from_dense(dense, tol).tocsc()

    # -- SparseMatrix API -------------------------------------------------------

    @property
    def nnz(self) -> int:
        return self.data.size

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        for j in range(self.shape[1]):
            lo, hi = self.indptr[j], self.indptr[j + 1]
            out[self.indices[lo:hi], j] = self.data[lo:hi]
        return out

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = self._matvec_check(x)
        out = np.zeros(self.shape[0], dtype=np.float64)
        col_of = np.repeat(np.arange(self.shape[1]), np.diff(self.indptr))
        np.add.at(out, self.indices, self.data * x[col_of])
        return out

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        y = self._rmatvec_check(y)
        prods = self.data * y[self.indices]
        return segment_sums(prods, self.indptr)  # one sum per column

    # -- column access ------------------------------------------------------------

    def getcol(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """(row indices, values) of column j — O(column nnz)."""
        if not 0 <= j < self.shape[1]:
            raise SparseFormatError(f"column {j} out of range for {self.shape}")
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi].copy(), self.data[lo:hi].copy()

    def getcol_dense(self, j: int) -> np.ndarray:
        """Column j scattered into a dense m-vector."""
        rows, vals = self.getcol(j)
        out = np.zeros(self.shape[0], dtype=np.float64)
        out[rows] = vals
        return out

    def col_nnz(self) -> np.ndarray:
        """Entry count per column."""
        return np.diff(self.indptr)

    # -- conversions ----------------------------------------------------------------

    def tocoo(self):
        from repro.sparse.coo import CooMatrix

        col = np.repeat(np.arange(self.shape[1], dtype=np.int64), np.diff(self.indptr))
        return CooMatrix(self.shape, self.indices.copy(), col, self.data.copy())

    def tocsr(self):
        return self.tocoo().tocsr()

    def transpose(self):
        """Aᵀ as CSR — a pure buffer reinterpretation, O(nnz) copies.

        This CSC *is* the CSR of the transpose, so no sort through COO is
        needed; use ``.tocsc()`` on the result if Aᵀ is wanted column-major.
        """
        from repro.sparse.csr import CsrMatrix

        return CsrMatrix(
            (self.shape[1], self.shape[0]),
            self.indptr.copy(),
            self.indices.copy(),
            self.data.copy(),
        )

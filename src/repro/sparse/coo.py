"""COO (coordinate list) sparse format.

The construction-friendly format: three parallel vectors of row indices,
column indices and values.  Duplicate coordinates are summed on request (the
usual assembly semantics); entries are kept sorted row-major for fast
conversion to CSR.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SparseFormatError
from repro.sparse.base import SparseMatrix


class CooMatrix(SparseMatrix):
    """Sparse matrix in coordinate format.

    Parameters
    ----------
    shape:
        (rows, cols).
    row, col, val:
        Parallel entry vectors.  Indices are validated against ``shape``.
    sum_duplicates:
        When True (default) duplicate (row, col) pairs are summed, matching
        finite-element-style assembly; when False duplicates raise.
    """

    def __init__(self, shape, row, col, val, *, sum_duplicates: bool = True):
        self.shape = self._validate_shape(shape)
        row = self._as_index_array("row", row)
        col = self._as_index_array("col", col, row.size)
        val = self._as_value_array("val", val, row.size)
        m, n = self.shape
        if row.size:
            if row.min(initial=0) < 0 or (m == 0 and row.size) or (row.size and row.max() >= m):
                raise SparseFormatError("row index out of range")
            if col.min(initial=0) < 0 or (n == 0 and col.size) or (col.size and col.max() >= n):
                raise SparseFormatError("column index out of range")

        # canonical order: row-major, then column
        order = np.lexsort((col, row))
        row, col, val = row[order], col[order], val[order]

        if row.size > 1:
            dup = (row[1:] == row[:-1]) & (col[1:] == col[:-1])
            if dup.any():
                if not sum_duplicates:
                    raise SparseFormatError("duplicate coordinates in COO data")
                # Segment-sum duplicates into their first occurrence.
                keys = row * max(n, 1) + col
                uniq, inverse = np.unique(keys, return_inverse=True)
                summed = np.zeros(uniq.size, dtype=np.float64)
                np.add.at(summed, inverse, val)
                row = (uniq // max(n, 1)).astype(np.int64)
                col = (uniq % max(n, 1)).astype(np.int64)
                val = summed

        self.row = row
        self.col = col
        self.val = val

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_dense(cls, dense: np.ndarray, tol: float = 0.0) -> "CooMatrix":
        """Build from a dense array, dropping entries with |a| <= tol."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise SparseFormatError("from_dense expects a 2-D array")
        mask = np.abs(dense) > tol
        row, col = np.nonzero(mask)
        return cls(dense.shape, row, col, dense[mask])

    @classmethod
    def empty(cls, shape) -> "CooMatrix":
        return cls(shape, [], [], [])

    # -- SparseMatrix API -------------------------------------------------------

    @property
    def nnz(self) -> int:
        return self.val.size

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        np.add.at(out, (self.row, self.col), self.val)
        return out

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = self._matvec_check(x)
        out = np.zeros(self.shape[0], dtype=np.float64)
        np.add.at(out, self.row, self.val * x[self.col])
        return out

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        y = self._rmatvec_check(y)
        out = np.zeros(self.shape[1], dtype=np.float64)
        np.add.at(out, self.col, self.val * y[self.row])
        return out

    # -- conversions ---------------------------------------------------------

    def tocsr(self):
        from repro.sparse.csr import CsrMatrix

        m, _ = self.shape
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.add.at(indptr, self.row + 1, 1)
        np.cumsum(indptr, out=indptr)
        # entries already row-major sorted, so data order is CSR order
        return CsrMatrix(self.shape, indptr, self.col.copy(), self.val.copy())

    def tocsc(self):
        from repro.sparse.csc import CscMatrix

        _, n = self.shape
        order = np.lexsort((self.row, self.col))
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, self.col + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CscMatrix(self.shape, indptr, self.row[order], self.val[order])

    def transpose(self) -> "CooMatrix":
        return CooMatrix(
            (self.shape[1], self.shape[0]), self.col, self.row, self.val
        )

    def prune(self, tol: float = 0.0) -> "CooMatrix":
        """Return a copy without entries of magnitude <= tol.

        Rank-1 basis updates steadily create explicit (near-)zeros; pruning
        them keeps sparse iteration cost proportional to true fill.
        """
        keep = np.abs(self.val) > tol
        return CooMatrix(self.shape, self.row[keep], self.col[keep], self.val[keep])

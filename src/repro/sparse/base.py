"""Shared behaviour of the sparse matrix formats."""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import SparseFormatError


def segment_sums(data: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-segment sums of ``data`` partitioned by ``indptr`` boundaries.

    Segment ``i`` covers ``data[indptr[i]:indptr[i+1]]``; the result has
    ``len(indptr) - 1`` entries.  This is the single shared implementation of
    the ``np.add.reduceat`` empty-segment workaround (previously copy-pasted
    across both host formats and both device SpMV kernels): a sentinel 0.0 is
    appended so start indices can be clamped into range, and zero-length
    segments — for which ``reduceat`` reports the *next* segment's first
    element — are forced to 0.0.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    if indptr.size <= 1:
        return np.zeros(0, dtype=np.float64)
    data = np.asarray(data, dtype=np.float64)
    out = np.add.reduceat(
        np.concatenate([data, [0.0]]),
        np.minimum(indptr[:-1], data.size),
    )
    lengths = np.diff(indptr)
    return np.asarray(np.where(lengths > 0, out, 0.0), dtype=np.float64)


class SparseMatrix(abc.ABC):
    """Abstract base: shape/nnz bookkeeping and format-neutral helpers."""

    shape: tuple[int, int]

    @property
    @abc.abstractmethod
    def nnz(self) -> int:
        """Number of stored entries (explicit zeros count until pruned)."""

    @abc.abstractmethod
    def to_dense(self) -> np.ndarray:
        """Materialise as a dense ndarray."""

    @abc.abstractmethod
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Return ``A @ x``."""

    @abc.abstractmethod
    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """Return ``A.T @ y``."""

    @property
    def density(self) -> float:
        """nnz / (rows * cols); 0 for an empty shape."""
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    # -- shared validation --------------------------------------------------

    @staticmethod
    def _validate_shape(shape) -> tuple[int, int]:
        try:
            m, n = (int(shape[0]), int(shape[1]))
        except (TypeError, IndexError, ValueError):
            raise SparseFormatError(f"shape must be a pair, got {shape!r}") from None
        if m < 0 or n < 0:
            raise SparseFormatError(f"shape must be non-negative, got {(m, n)}")
        return m, n

    @staticmethod
    def _as_index_array(name: str, arr, n_expected: int | None = None) -> np.ndarray:
        out = np.asarray(arr)
        if out.ndim != 1:
            raise SparseFormatError(f"{name} must be 1-D")
        if out.size and not np.issubdtype(out.dtype, np.integer):
            if not np.all(out == out.astype(np.int64)):
                raise SparseFormatError(f"{name} must contain integers")
        out = out.astype(np.int64, copy=False)
        if n_expected is not None and out.size != n_expected:
            raise SparseFormatError(
                f"{name} must have length {n_expected}, got {out.size}"
            )
        return out

    @staticmethod
    def _as_value_array(name: str, arr, n_expected: int | None = None) -> np.ndarray:
        out = np.asarray(arr, dtype=np.float64)
        if out.ndim != 1:
            raise SparseFormatError(f"{name} must be 1-D")
        if n_expected is not None and out.size != n_expected:
            raise SparseFormatError(
                f"{name} must have length {n_expected}, got {out.size}"
            )
        return out

    def _matvec_check(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise SparseFormatError(
                f"matvec operand has shape {x.shape}, expected ({self.shape[1]},)"
            )
        return x

    def _rmatvec_check(self, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y, dtype=np.float64)
        if y.shape != (self.shape[0],):
            raise SparseFormatError(
                f"rmatvec operand has shape {y.shape}, expected ({self.shape[0]},)"
            )
        return y

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} {self.shape[0]}x{self.shape[1]} "
            f"nnz={self.nnz} ({100 * self.density:.2f}%)>"
        )

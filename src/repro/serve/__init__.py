"""``repro.serve`` — an LP-solving *service* on top of the solver engine.

The batch layer answers "how fast does one device chew through a fixed
list of LPs?"; this layer answers the serving question one level up: LPs
*arrive over time*, with priorities and deadlines, and a fleet of devices
must admit, place and solve them while a warm-start cache exploits the
structural repeats that dominate real re-optimization traffic.

Everything runs on the library's simulated clock (modeled seconds): the
solves are real, the timing is analytic, and the whole stack — admission
queue, placement bin-packing, :class:`~repro.batch.scheduler
.ConcurrentSchedule` group pricing, cache — is deterministic and unit
testable.  See DESIGN.md §9 for the architecture.

Metrics discipline: serve modules touch ``repro.metrics`` only through the
``repro.metrics.instrument`` hook façade (enforced by
``tools/lint_backend_imports.py``), so serving code never couples to the
registry internals and runs at zero cost when collection is off.
"""

from repro.serve.cache import WarmStartCache
from repro.serve.fleet import (
    DeviceWorker,
    MakespanPredictor,
    estimate_footprint_bytes,
    make_fleet,
)
from repro.serve.job import (
    Job,
    JobState,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    priority_name,
)
from repro.serve.queue import AdmissionQueue
from repro.serve.service import LPServer, ServeConfig, ServeReport, serve_trace
from repro.serve.traces import (
    DEFAULT_SIZES,
    TraceEntry,
    perturb_problem,
    synthetic_trace,
)

__all__ = [
    "AdmissionQueue",
    "DEFAULT_SIZES",
    "DeviceWorker",
    "Job",
    "JobState",
    "LPServer",
    "MakespanPredictor",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "ServeConfig",
    "ServeReport",
    "TraceEntry",
    "WarmStartCache",
    "estimate_footprint_bytes",
    "make_fleet",
    "perturb_problem",
    "priority_name",
    "serve_trace",
    "synthetic_trace",
]

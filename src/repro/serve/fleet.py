"""The device fleet: simulated workers, memory footprints, cost prediction.

A :class:`DeviceWorker` is one lane of the fleet — a simulated GPU (its own
:class:`~repro.gpu.device.Device` with timeline recording, so dispatch
groups can be priced by :class:`~repro.batch.scheduler.ConcurrentSchedule`)
or a CPU worker pool (opaque modeled-time blocks), each with its own
availability clock.  Mixing the two in one fleet is the multi-GPU +
CPU-collaboration split of Mamalis & Perlitis (arXiv:2211.10979).

Placement inputs computed here:

- :func:`estimate_footprint_bytes` — the modeled device-memory footprint of
  solving one LP with a given method, used to bin-pack a dispatch window
  against the device's global memory;
- :class:`MakespanPredictor` — a per-(method, size-bucket) running mean of
  observed single-LP machine times (each dispatched job's
  :class:`~repro.batch.scheduler.LPTimeline` feeds it), used by admission
  control to reject deadline-infeasible jobs and by the window builder to
  cap a group's predicted makespan.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.errors import SolverError
from repro.gpu.device import Device
from repro.lp.problem import LPProblem
from repro.perfmodel.gpu_model import GpuModelParams
from repro.perfmodel.presets import GTX280_PARAMS


def estimate_footprint_bytes(
    problem: LPProblem, method: str = "gpu-revised", dtype=np.float64
) -> int:
    """Modeled device-memory footprint of solving ``problem``.

    A deliberate over-approximation of the working set the solver holds
    resident (standard-form constraint data, the basis representation, and
    the per-iteration vectors), used only for bin-packing placement — the
    functional solve still enforces the real allocator limit.
    """
    itemsize = np.dtype(dtype).itemsize
    index_size = np.dtype(np.int64).itemsize
    m, n = problem.num_constraints, problem.num_vars
    ncols = n + m  # standard form adds one slack/artificial per row
    if "sparse" in method and problem.is_sparse:
        nnz = problem.a.nnz + m  # + the appended identity columns
        data = nnz * (itemsize + index_size) + (ncols + 1) * index_size
    else:
        data = m * ncols * itemsize
    if "tableau" in method:
        work = (m + 1) * (ncols + 1) * itemsize  # the full tableau
    else:
        work = m * m * itemsize  # B^-1 / LU factors
    vectors = (6 * m + 4 * ncols) * itemsize
    return int(data + work + vectors)


class DeviceWorker:
    """One device of the fleet and its availability clock."""

    def __init__(
        self,
        name: str,
        params: GpuModelParams = GTX280_PARAMS,
        n_streams: int = 4,
        on_gpu: bool = True,
    ):
        if n_streams < 1:
            raise SolverError("n_streams must be >= 1")
        self.name = name
        self.params = params
        self.n_streams = n_streams
        self.on_gpu = on_gpu
        #: The shared simulated device of this worker (GPU workers only);
        #: timeline recording stays on so every dispatched solve yields an
        #: LPTimeline for the group's makespan pricing.
        self.device: Device | None = None
        if on_gpu:
            self.device = Device(params)
            self.device.record_timeline()
        #: Simulated time at which the worker finishes its current group.
        self.busy_until = 0.0
        self.busy_seconds = 0.0
        self.jobs_done = 0
        self.dispatches = 0

    @property
    def mem_capacity(self) -> int:
        """Bin-packing budget: the modeled card's global memory (CPU
        workers get the same budget — host memory is not the scarce
        resource this placement models)."""
        return self.params.global_mem_bytes

    def idle_at(self, now: float) -> bool:
        return self.busy_until <= now

    def utilization(self, span_seconds: float) -> float:
        if span_seconds <= 0.0:
            return 0.0
        return min(1.0, self.busy_seconds / span_seconds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "gpu" if self.on_gpu else "cpu"
        return (
            f"<DeviceWorker {self.name} [{kind} x{self.n_streams} streams] "
            f"busy_until={self.busy_until:.6f}s jobs={self.jobs_done}>"
        )


def make_fleet(
    n_devices: int,
    params: GpuModelParams = GTX280_PARAMS,
    n_streams: int = 4,
    on_gpu: bool = True,
) -> list[DeviceWorker]:
    """A homogeneous fleet ``dev0..devN-1`` (the common configuration)."""
    if n_devices < 1:
        raise SolverError("fleet needs at least one device")
    return [
        DeviceWorker(f"dev{i}", params=params, n_streams=n_streams, on_gpu=on_gpu)
        for i in range(n_devices)
    ]


@dataclasses.dataclass
class _RunningMean:
    count: int = 0
    mean: float = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.mean += (value - self.mean) / self.count


class MakespanPredictor:
    """Running-mean machine-time predictor per (method, size bucket).

    Problems are bucketed by the base-2 magnitude of their row/column
    counts, so a 60x90 LP and a 70x100 LP share a bucket while 64x96 and
    512x768 do not.  An unseen bucket of an *observed* method is
    extrapolated from the nearest observed bucket by the work ratio between
    them (time ~ m·n, so one log2 step in each dimension doubles the
    estimate); without this, a job one bucket past the largest ever seen
    predicted 0.0 and sailed through admission control as "free", wrecking
    the deadline ledger.  Only a method with no observations at all returns
    0.0 — the honest "no estimate" answer that admission control treats as
    "unknown, admit".
    """

    def __init__(self) -> None:
        self._stats: dict[tuple[str, int, int], _RunningMean] = {}

    @staticmethod
    def _key(problem: LPProblem, method: str) -> tuple[str, int, int]:
        return (
            method,
            round(math.log2(problem.num_constraints + 1)),
            round(math.log2(problem.num_vars + 1)),
        )

    def observe(self, problem: LPProblem, method: str, seconds: float) -> None:
        self._stats.setdefault(self._key(problem, method), _RunningMean()).add(
            seconds
        )

    def predict(self, problem: LPProblem, method: str) -> float:
        method_key, rb, cb = self._key(problem, method)
        stats = self._stats.get((method_key, rb, cb))
        if stats is not None:
            return stats.mean
        # Unseen bucket: extrapolate from the nearest observed bucket of the
        # same method, scaling by 2 per log2 step in each dimension.  Ties
        # keep the larger projection (conservative for admission control).
        best: "tuple[int, float] | None" = None
        for (m_obs, rb_obs, cb_obs), s in self._stats.items():
            if m_obs != method_key:
                continue
            distance = abs(rb - rb_obs) + abs(cb - cb_obs)
            projected = s.mean * 2.0 ** ((rb - rb_obs) + (cb - cb_obs))
            if (
                best is None
                or distance < best[0]
                or (distance == best[0] and projected > best[1])
            ):
                best = (distance, projected)
        return best[1] if best is not None else 0.0

    def __len__(self) -> int:
        return len(self._stats)

"""Warm-start cache: optimal bases keyed by problem fingerprint.

Re-submitted and perturbed LPs dominate serving workloads (pricing sweeps
re-run with fresh data, per-scenario re-planning): their structure is
identical, only the numbers drift, and the previous optimal basis is an
excellent starting point — the same observation behind
:func:`repro.batch.solve_batch_chain`.  The cache maps
:meth:`LPProblem.fingerprint() <repro.lp.problem.LPProblem.fingerprint>` —
a *structural* hash that survives rhs/cost perturbation — to the most
recent optimal basis of that structure, with LRU eviction.

Only **optimal** bases are stored: a solve that ends non-optimal broke the
warm-start chain (the same ``chain_broken`` condition
``solve_batch_chain`` flags per item), so the server records the break and
leaves any previously cached basis alone rather than poisoning it.
"""

from __future__ import annotations

import collections

import numpy as np

from repro.errors import SolverError
from repro.metrics.instrument import (
    record_cache_lookup,
    record_cache_size,
    record_cache_store,
)


class WarmStartCache:
    """LRU cache of optimal bases, keyed by structural fingerprint."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise SolverError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "collections.OrderedDict[str, np.ndarray]" = (
            collections.OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def get(self, fingerprint: str) -> np.ndarray | None:
        """The cached basis for this structure (a copy), or ``None``."""
        basis = self._entries.get(fingerprint)
        if basis is None:
            self.misses += 1
            record_cache_lookup(hit=False)
            return None
        self._entries.move_to_end(fingerprint)
        self.hits += 1
        record_cache_lookup(hit=True)
        return basis.copy()

    def put(self, fingerprint: str, basis: np.ndarray) -> None:
        """Store (or refresh) the basis for this structure."""
        evicted = False
        if fingerprint in self._entries:
            self._entries.move_to_end(fingerprint)
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            evicted = True
        self._entries[fingerprint] = np.array(basis, copy=True)
        self.stores += 1
        record_cache_store(evicted=evicted)
        record_cache_size(len(self._entries))

    def summary(self) -> str:
        return (
            f"cache: {len(self)}/{self.capacity} bases, "
            f"{self.hits} hits / {self.misses} misses "
            f"({100.0 * self.hit_rate:.0f}% hit rate), "
            f"{self.evictions} evictions"
        )

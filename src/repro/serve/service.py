"""The serving loop: an event-driven LP-solving service on a device fleet.

:class:`LPServer` closes the gap between :func:`repro.batch.solve_batch`
(one batch, one device, then exit) and the production story the paper's
thesis implies: a long-lived service that keeps a *fleet* of devices fed
from a stream of concurrent LP submissions.

Simulated-clock semantics
-------------------------
The server runs on the library's modeled-time axis, not the wall clock.
Submissions carry an arrival time; :meth:`LPServer.run` drains an event
heap (arrivals, device-free events) in time order, and every latency it
reports is modeled seconds — the same units as every makespan in the
library, so serving results compose with the batch and solver experiments.
Solves execute functionally at dispatch time (results are bit-identical to
solo ``solve()`` calls); only the *accounting* of when they start and
finish is simulated.

The pipeline per event:

1. **Admission** — a bounded priority queue sheds load when full; jobs
   whose modeled memory footprint fits no device, or whose deadline is
   provably unmeetable given the fleet's backlog and the makespan
   predictor's estimate, are rejected up front.
2. **Placement** — each idle device greedily fills a dispatch window from
   the queue: strict priority order, bin-packed by modeled footprint
   against the device's global memory, capped at the device's stream count
   (and optionally at a target predicted makespan).
3. **Execution** — the window's solves run on the device, their
   :class:`~repro.batch.scheduler.LPTimeline`\\ s are priced as one group by
   :class:`~repro.batch.scheduler.ConcurrentSchedule` (the same
   binding-resource model as ``repro.batch``), and per-job finish times
   spread along each stream's critical path, stretched when another
   resource binds the group.
4. **Warm starts** — before solving, the job's structural fingerprint is
   looked up in the :class:`~repro.serve.cache.WarmStartCache`; optimal
   bases are cached after solving.  A non-optimal result breaks the chain
   (``chain_broken``, the same flag ``solve_batch_chain`` records) and is
   never cached.

Every step is observable through ``repro.metrics`` when collection is on:
queue depth, admission rejections, per-device utilization, cache traffic,
and p50/p95/p99 modeled latency derived from the latency histogram.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Sequence

import numpy as np

from repro.batch.scheduler import ConcurrentSchedule, LPTimeline
from repro.engine.registry import device_methods, warm_start_methods
from repro.errors import SolverError
from repro.lp.problem import LPProblem
from repro.metrics.instrument import (
    obs_attribution,
    obs_collect,
    obs_dispatch_window,
    obs_job_executed,
    obs_job_expired,
    obs_job_rejected,
    obs_pop_request,
    obs_push_request,
    record_chain_break,
    record_device_utilization,
    record_job_completed,
    record_job_rejected,
    record_job_submitted,
    record_serve_dispatch,
)
from repro.perfmodel.gpu_model import GpuModelParams
from repro.perfmodel.presets import GTX280_PARAMS
from repro.serve.cache import WarmStartCache
from repro.serve.fleet import (
    DeviceWorker,
    MakespanPredictor,
    estimate_footprint_bytes,
    make_fleet,
)
from repro.serve.job import Job, JobState, PRIORITY_NORMAL, priority_name
from repro.serve.queue import AdmissionQueue


@dataclasses.dataclass(frozen=True)
class ServeConfig:
    """Configuration of one :class:`LPServer`."""

    n_devices: int = 1
    #: Concurrent streams per device (the dispatch-window width).
    n_streams: int = 4
    method: str = "gpu-revised"
    max_queue_depth: int = 64
    cache_capacity: int = 128
    gpu_params: GpuModelParams = GTX280_PARAMS
    dtype: type = np.float64
    #: Solve every job with kernel-fusion lowering
    #: (``SolverOptions.fusion``); requires a fusion-capable ``method``.
    fusion: bool = False
    #: Merge the dispatch window's GEMV/SpMV launches across streams into
    #: batched launches (:class:`~repro.batch.scheduler.ConcurrentSchedule`
    #: ``batch_gemv``).
    batch_gemv: bool = False
    #: Optional cap on a window's *predicted* makespan: stop filling once
    #: the predictor expects this many busy seconds (None = fill streams).
    target_batch_seconds: float | None = None


@dataclasses.dataclass
class ServeReport:
    """Outcome of one replay: every job plus the fleet-level accounting."""

    config: ServeConfig
    jobs: list[Job]
    devices: list[DeviceWorker]
    cache: WarmStartCache
    #: End-to-end modeled span: first arrival to last device going idle.
    span_seconds: float
    #: Span recording of the replay (``repro.obs``), when a recorder was
    #: installed around :meth:`LPServer.run`; ``None`` otherwise.
    obs_recording: "object | None" = None

    @property
    def completed(self) -> list[Job]:
        return [j for j in self.jobs if j.state is JobState.COMPLETED]

    @property
    def rejected(self) -> list[Job]:
        return [j for j in self.jobs if j.state is JobState.REJECTED]

    @property
    def expired(self) -> list[Job]:
        return [j for j in self.jobs if j.state is JobState.EXPIRED]

    @property
    def all_optimal(self) -> bool:
        done = self.completed
        return bool(done) and all(j.is_optimal for j in done)

    @property
    def cache_hits(self) -> int:
        return self.cache.hits

    @property
    def sequential_seconds(self) -> float:
        """Back-to-back modeled time of the completed solves — the
        1-device 1-stream yardstick fleet speedups are quoted against."""
        return sum(
            j.result.timing.modeled_seconds
            for j in self.completed
            if j.result is not None
        )

    @property
    def speedup_vs_sequential(self) -> float:
        if self.span_seconds <= 0.0:
            return 1.0
        return self.sequential_seconds / self.span_seconds

    def latencies(self) -> list[float]:
        """Completed jobs' modeled latencies, submission order."""
        return [
            j.latency_seconds
            for j in self.jobs
            if j.state is JobState.COMPLETED and j.latency_seconds is not None
        ]

    def latency_quantile(self, q: float) -> float:
        """Exact q-quantile over completed jobs' modeled latencies (the
        histogram-estimated twin lives in the metrics exposition)."""
        lat = self.latencies()
        if not lat:
            return float("nan")
        return float(np.quantile(np.asarray(lat), q))

    def device_utilization(self) -> dict[str, float]:
        return {
            dev.name: dev.utilization(self.span_seconds)
            for dev in self.devices
        }

    def attribution(self):
        """Latency attribution over this replay's span recording: per-job /
        per-method / fleet-wide queue-wait, placement, transfer,
        launch-overhead, refactorization and compute buckets (an
        :class:`~repro.obs.attribution.AttributionReport`).  Requires a
        span recorder installed around :meth:`LPServer.run` —
        ``repro.obs.enable()`` or ``python -m repro explain``."""
        if self.obs_recording is None:
            raise SolverError(
                "no span recording attached to this report: enable span "
                "recording (repro.obs.enable() / obs.observing()) around "
                "the replay, or use `python -m repro explain`"
            )
        return obs_attribution(self.obs_recording)

    def _quantiles_ms(self) -> str:
        """The p50/p95/p99 tail rendered in ms — ``n/a`` when no job
        completed (an all-rejected or all-expired trace has no latencies
        to take a quantile of; ``np.quantile`` of nothing is no number)."""
        if not self.latencies():
            return "n/a"
        return (
            f"{self.latency_quantile(0.5) * 1e3:.2f}/"
            f"{self.latency_quantile(0.95) * 1e3:.2f}/"
            f"{self.latency_quantile(0.99) * 1e3:.2f}ms"
        )

    def summary(self) -> str:
        done, rej, exp = self.completed, self.rejected, self.expired
        return (
            f"served {len(done)}/{len(self.jobs)} jobs "
            f"[{self.config.method}, {len(self.devices)} device(s) "
            f"x{self.config.n_streams} streams]: "
            f"{len(rej)} rejected, {len(exp)} expired, "
            f"span={self.span_seconds * 1e3:.3f}ms "
            f"({self.speedup_vs_sequential:.2f}x vs sequential), "
            f"p50/p95/p99={self._quantiles_ms()}, "
            f"{self.cache.hits} cache hits"
        )

    def render(self) -> str:
        """Multi-line report: per-device rows, cache line, summary."""
        from repro.bench.tables import Table

        t = Table(
            ["device", "kind", "dispatches", "jobs", "busy ms", "util %"]
        )
        for dev in self.devices:
            t.add_row(
                dev.name,
                ("gpu" if dev.on_gpu else "cpu") + f" x{dev.n_streams}",
                dev.dispatches,
                dev.jobs_done,
                dev.busy_seconds * 1e3,
                100.0 * dev.utilization(self.span_seconds),
            )
        lines = [t.render(), self.cache.summary(), self.summary()]
        return "\n".join(lines)


class LPServer:
    """An asynchronous (event-driven, simulated-clock) LP-solving service.

    Usage::

        server = LPServer(ServeConfig(n_devices=4))
        for i, lp in enumerate(lps):
            server.submit(lp, at=i * 1e-3, priority=PRIORITY_NORMAL)
        report = server.run()

    ``submit`` only enqueues an arrival event; all solving happens inside
    :meth:`run`, which drains events in simulated-time order.  A server can
    be reused: ``run`` returns when all events are drained, and later
    submissions (``at`` >= the current clock) start a new drain.
    """

    def __init__(self, config: ServeConfig | None = None, **overrides):
        if config is None:
            config = ServeConfig(**overrides)
        elif overrides:
            config = dataclasses.replace(config, **overrides)
        from repro.solve import available_methods

        if config.method not in available_methods():
            from repro.errors import UnknownMethodError

            raise UnknownMethodError(
                f"unknown method {config.method!r}; "
                f"available: {available_methods()}"
            )
        self.config = config
        self.on_gpu = config.method in device_methods()
        self.warm_startable = config.method in warm_start_methods()
        self.fleet = make_fleet(
            config.n_devices,
            params=config.gpu_params,
            n_streams=config.n_streams,
            on_gpu=self.on_gpu,
        )
        self.queue = AdmissionQueue(max_depth=config.max_queue_depth)
        self.cache = WarmStartCache(capacity=config.cache_capacity)
        self.predictor = MakespanPredictor()
        self.clock = 0.0
        self.jobs: list[Job] = []
        self._events: list[tuple[float, int, int, Job | DeviceWorker | None]] = []
        self._seq = 0
        self._max_capacity = max(dev.mem_capacity for dev in self.fleet)

    # -- submission --------------------------------------------------------

    def submit(
        self,
        problem: LPProblem,
        *,
        at: float | None = None,
        priority: int = PRIORITY_NORMAL,
        timeout: float | None = None,
    ) -> Job:
        """Schedule one LP for solving.

        ``at`` is the arrival time on the simulated clock (defaults to
        "now"); ``timeout`` is a relative deadline in modeled seconds —
        the job is rejected or expired rather than finished after
        ``at + timeout``.  Returns the :class:`Job`, whose fields fill in
        as the replay progresses.
        """
        arrival = self.clock if at is None else float(at)
        if arrival < self.clock:
            raise SolverError(
                f"arrival time {arrival} lies in the past "
                f"(clock is at {self.clock})"
            )
        if timeout is not None and timeout <= 0.0:
            raise SolverError("timeout must be positive")
        job = Job(
            job_id=len(self.jobs),
            problem=problem,
            method=self.config.method,
            priority=priority,
            submit_time=arrival,
            deadline=None if timeout is None else arrival + timeout,
            fingerprint=problem.fingerprint(),
            footprint_bytes=estimate_footprint_bytes(
                problem, self.config.method, self.config.dtype
            ),
        )
        self.jobs.append(job)
        self._push_event(arrival, 0, job)
        return job

    # -- the event loop ----------------------------------------------------

    def run(self) -> ServeReport:
        """Drain all scheduled events and return the replay report."""
        while self._events:
            time, _, kind, payload = heapq.heappop(self._events)
            self.clock = max(self.clock, time)
            if kind == 0:  # arrival
                self._admit(payload)
            # kind == 1 (device-free) only advances the clock: the worker's
            # idleness is derived from busy_until <= clock.
            self._dispatch_idle()
        span = max(
            [self.clock] + [dev.busy_until for dev in self.fleet]
        )
        for dev in self.fleet:
            record_device_utilization(dev.name, dev.utilization(span))
        for job in self.jobs:
            if job.state is JobState.EXPIRED:
                obs_job_expired(job)  # no-op when off / already emitted
        return ServeReport(
            config=self.config,
            jobs=list(self.jobs),
            devices=list(self.fleet),
            cache=self.cache,
            span_seconds=span,
            obs_recording=obs_collect(),
        )

    def _push_event(self, time: float, kind: int, payload) -> None:
        heapq.heappush(self._events, (time, self._seq, kind, payload))
        self._seq += 1

    # -- admission ---------------------------------------------------------

    def _admit(self, job: Job) -> None:
        record_job_submitted(priority_name(job.priority))
        if job.footprint_bytes > self._max_capacity:
            self._reject(job, "memory")
            return
        if self.queue.full:
            self._reject(job, "queue-full")
            return
        if job.deadline is not None:
            # Optimistic feasibility: even if the job ran next on the
            # earliest-free device, would it meet its deadline?  The
            # predictor contributes once it has seen this size bucket.
            earliest = min(dev.busy_until for dev in self.fleet)
            start = max(self.clock, earliest)
            predicted = self.predictor.predict(job.problem, job.method)
            if start > job.deadline or start + predicted > job.deadline:
                self._reject(job, "deadline")
                return
        self.queue.push(job)

    def _reject(self, job: Job, reason: str) -> None:
        job.state = JobState.REJECTED
        job.reject_reason = reason
        job.finish_time = self.clock
        record_job_rejected(reason)
        obs_job_rejected(job)

    # -- placement and execution -------------------------------------------

    def _dispatch_idle(self) -> None:
        # Work-conserving greedy placement: idle devices (earliest-free
        # first, then declaration order) each fill a window from the queue.
        for dev in sorted(self.fleet, key=lambda d: (d.busy_until, d.name)):
            if not dev.idle_at(self.clock):
                continue
            while True:
                window = self._fill_window(dev)
                if not window:
                    break
                self._run_window(dev, window)
                if not dev.idle_at(self.clock):
                    break

    def _fill_window(self, dev: DeviceWorker) -> list[Job]:
        """Greedy bin-packing of queued jobs into one dispatch window:
        strict priority order, capped at the stream count, the modeled
        memory budget, and (optionally) a target predicted makespan."""
        cfg = self.config
        window: list[Job] = []
        mem = 0
        predicted = 0.0
        self.queue.expire_stale(self.clock)
        while len(window) < dev.n_streams and len(self.queue):
            head = self.queue.peek()
            if mem + head.footprint_bytes > dev.mem_capacity:
                break  # memory window full (job fits a bigger device later)
            head_predicted = self.predictor.predict(head.problem, head.method)
            if (
                cfg.target_batch_seconds is not None
                and window
                and predicted + head_predicted > cfg.target_batch_seconds
            ):
                break
            job = self.queue.pop()
            window.append(job)
            mem += job.footprint_bytes
            predicted += head_predicted
            self.queue.expire_stale(self.clock)
        return window

    def _run_window(self, dev: DeviceWorker, window: list[Job]) -> None:
        from repro.solve import solve

        now = self.clock
        timelines: list[LPTimeline] = []
        raw_events: list[list] = []
        solve_links: list[list[str]] = []
        for pos, job in enumerate(window):
            job.state = JobState.RUNNING
            job.device = dev.name
            job.dispatch_time = now
            basis = None
            if self.warm_startable:
                basis = self.cache.get(job.fingerprint)
                job.warm_started = basis is not None
            kwargs = {}
            if dev.device is not None:
                kwargs["device"] = dev.device
            obs_push_request(job)
            result = solve(
                job.problem,
                method=job.method,
                dtype=self.config.dtype,
                fusion=self.config.fusion,
                initial_basis=basis,
                **kwargs,
            )
            solve_links.append(obs_pop_request())
            job.result = result
            if dev.device is not None:
                events = list(dev.device.timeline or ())
                timeline = LPTimeline.from_events(pos, events, dev.params)
            else:
                events = []
                timeline = LPTimeline.from_modeled_seconds(
                    pos, result.timing.modeled_seconds
                )
            raw_events.append(events)
            timelines.append(timeline)
            self.predictor.observe(job.problem, job.method, timeline.total_seconds)
            if self.warm_startable:
                if result.is_optimal and result.extra.get("basis") is not None:
                    self.cache.put(job.fingerprint, result.extra["basis"])
                elif not result.is_optimal:
                    # The chain is broken: nothing to cache, and any job
                    # counting on this one's basis cold-starts — the same
                    # condition solve_batch_chain flags per item.
                    job.chain_broken = True
                    record_chain_break(job.method)

        streams = min(len(window), dev.n_streams)
        outcome = ConcurrentSchedule(
            n_streams=streams, batch_gemv=self.config.batch_gemv
        ).plan(timelines, params=dev.params if self.on_gpu else None)
        makespan = outcome.makespan_seconds

        # Per-job finish times: each stream lane is dependency-ordered, so
        # a job finishes at its lane's cumulative time — stretched uniformly
        # when another resource (copy engine, compute capacity, launch
        # serialization) binds the group and slows every lane down.
        lane_cum = [0.0] * streams
        offsets: list[float] = []
        for pos, tl in enumerate(timelines):
            lane = pos % streams
            lane_cum[lane] += tl.total_seconds
            offsets.append(lane_cum[lane])
        max_path = max(lane_cum)
        stretch = makespan / max_path if max_path > 0.0 else 1.0
        launch_overhead = dev.params.launch_overhead if self.on_gpu else 0.0
        for pos, (job, offset) in enumerate(zip(window, offsets)):
            job.finish_time = now + offset * stretch
            job.state = JobState.COMPLETED
            assert job.result is not None
            record_job_completed(
                job.result.status.value,
                job.latency_seconds or 0.0,
                job.warm_started,
            )
            obs_job_executed(
                job,
                solve_links[pos],
                raw_events[pos],
                launch_overhead,
                timelines[pos].total_seconds,
                stretch,
            )

        dev.busy_until = now + makespan
        dev.busy_seconds += makespan
        dev.jobs_done += len(window)
        dev.dispatches += 1
        denom = makespan * streams
        utilization = (
            outcome.sequential_seconds / denom if denom > 0.0 else 0.0
        )
        record_serve_dispatch(
            dev.name, len(window), makespan, min(1.0, utilization)
        )
        obs_dispatch_window(dev.name, now, outcome, len(window))
        if makespan > 0.0:
            self._push_event(dev.busy_until, 1, dev)


def serve_trace(
    entries: "Sequence",
    config: ServeConfig | None = None,
    **overrides,
) -> ServeReport:
    """Replay a trace (:func:`repro.serve.traces.synthetic_trace` entries or
    any ``(problem, at, priority, timeout)`` records) through a fresh
    server and return its report."""
    server = LPServer(config, **overrides)
    for entry in entries:
        server.submit(
            entry.problem,
            at=entry.at,
            priority=entry.priority,
            timeout=entry.timeout,
        )
    return server.run()

"""Arrival traces: the synthetic workloads the serving layer replays.

A trace is a list of :class:`TraceEntry` — (problem, arrival time,
priority, timeout) — on the simulated clock.  :func:`synthetic_trace`
builds the canonical mixed workload used by the ``serve`` CLI command, the
S1 experiment and the serve benchmark: Poisson-ish arrivals over a mix of
problem sizes and priorities, with a configurable fraction of *perturbed
resubmissions* — later arrivals whose LP shares an earlier one's structure
(same constraint pattern, drifted numbers), the case the warm-start cache
exists for.

Determinism: everything is driven by one ``numpy`` generator seeded by the
caller, so a (seed, size) pair always replays the identical trace.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import SolverError
from repro.lp.generators import random_dense_lp
from repro.lp.problem import LPProblem
from repro.serve.job import PRIORITY_HIGH, PRIORITY_LOW, PRIORITY_NORMAL


@dataclasses.dataclass(frozen=True)
class TraceEntry:
    """One arrival of a trace (all times in simulated seconds)."""

    problem: LPProblem
    at: float
    priority: int = PRIORITY_NORMAL
    timeout: float | None = None
    #: Index of the earlier entry this one perturbs (``None`` = fresh
    #: structure).  Perturbed entries share the original's fingerprint.
    resubmit_of: int | None = None


def perturb_problem(
    problem: LPProblem, rng: np.random.Generator, scale: float = 0.05
) -> LPProblem:
    """A structure-preserving perturbation of ``problem``: the constraint
    pattern, senses and bounds stay fixed while ``b`` and ``c`` drift by a
    relative ``scale`` — so the perturbed LP shares the original's
    :meth:`~repro.lp.problem.LPProblem.fingerprint` and its cached basis
    is a meaningful warm start."""
    if problem.is_sparse:
        raise SolverError(
            "perturb_problem supports dense problems (sparse perturbation "
            "would need pattern-preserving value jitter)"
        )
    b = problem.b * (1.0 + scale * rng.uniform(-1.0, 1.0, size=problem.b.shape))
    c = problem.c * (1.0 + scale * rng.uniform(-1.0, 1.0, size=problem.c.shape))
    return LPProblem(
        c=c,
        a=np.array(problem.a, copy=True),
        senses=list(problem.senses),
        b=b,
        bounds=problem.bounds,
        maximize=problem.maximize,
        name=f"{problem.name}-perturbed",
    )


#: (m, n) mix of the default trace: small/medium/larger dense LPs, echoing
#: the paper's problem-size sweep at serving-friendly scale.
DEFAULT_SIZES = ((24, 36), (40, 60), (64, 96))

_PRIORITIES = (PRIORITY_HIGH, PRIORITY_NORMAL, PRIORITY_LOW)
#: Mostly normal traffic, some latency-sensitive, some background.
_PRIORITY_WEIGHTS = (0.25, 0.5, 0.25)


def synthetic_trace(
    n_jobs: int = 32,
    seed: int = 0,
    *,
    mean_interarrival: float = 0.002,
    resubmit_fraction: float = 0.375,
    timeout_fraction: float = 0.25,
    timeout_seconds: float = 0.5,
    sizes: tuple = DEFAULT_SIZES,
) -> list[TraceEntry]:
    """The canonical mixed-priority serving workload.

    ``resubmit_fraction`` of the jobs (after a warm-up prefix) are
    perturbed resubmissions of an earlier entry — same structure, drifted
    rhs/cost — so a warm-start cache sees guaranteed fingerprint repeats.
    ``timeout_fraction`` of the jobs carry a relative deadline of
    ``timeout_seconds``.  Arrivals are exponential with the given mean gap.
    """
    if n_jobs < 1:
        raise SolverError("trace needs at least one job")
    if not 0.0 <= resubmit_fraction < 1.0:
        raise SolverError("resubmit_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    entries: list[TraceEntry] = []
    clock = 0.0
    for i in range(n_jobs):
        clock += float(rng.exponential(mean_interarrival))
        resubmit_of = None
        if entries and rng.random() < resubmit_fraction:
            resubmit_of = int(rng.integers(len(entries)))
            base = entries[resubmit_of]
            problem = perturb_problem(base.problem, rng)
        else:
            m, n = sizes[int(rng.integers(len(sizes)))]
            problem = random_dense_lp(
                m, n, seed=seed * 10_000 + i, name=f"trace{seed}-job{i}-{m}x{n}"
            )
        priority = _PRIORITIES[
            int(rng.choice(len(_PRIORITIES), p=_PRIORITY_WEIGHTS))
        ]
        timeout = (
            timeout_seconds if rng.random() < timeout_fraction else None
        )
        entries.append(
            TraceEntry(
                problem=problem,
                at=clock,
                priority=priority,
                timeout=timeout,
                resubmit_of=resubmit_of,
            )
        )
    return entries

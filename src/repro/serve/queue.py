"""Bounded priority queue with admission control.

The queue orders jobs by ``(priority, arrival sequence)`` — strict
priority, FIFO within a level — and enforces a hard depth bound: a full
queue **rejects** new work instead of growing without limit, which is the
load-shedding half of admission control (the deadline-feasibility half
lives in the server, which knows the fleet's backlog).

Deadlines are enforced lazily at pop time: a job whose absolute deadline
has passed while it waited is dropped as EXPIRED rather than dispatched —
there is no point starting work whose answer nobody is waiting for.
"""

from __future__ import annotations

import heapq

from repro.errors import SolverError
from repro.metrics.instrument import record_job_expired, record_queue_depth
from repro.serve.job import Job, JobState


class AdmissionQueue:
    """A bounded priority queue of :class:`~repro.serve.job.Job`\\ s."""

    def __init__(self, max_depth: int = 64):
        if max_depth < 1:
            raise SolverError("queue max_depth must be >= 1")
        self.max_depth = max_depth
        self._heap: list[tuple[int, int, Job]] = []
        self._seq = 0
        #: Running totals for the report.
        self.admitted = 0
        self.expired = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.max_depth

    def push(self, job: Job) -> bool:
        """Enqueue ``job``; returns False (and leaves the job untouched)
        when the queue is at its depth bound."""
        if self.full:
            return False
        heapq.heappush(self._heap, (job.priority, self._seq, job))
        self._seq += 1
        self.admitted += 1
        record_queue_depth(len(self._heap))
        return True

    def expire_stale(self, now: float) -> int:
        """Drop every job at the head whose deadline has passed, marking it
        EXPIRED (with metrics); returns how many were dropped.  Only the
        head is examined — an expired job buried under live ones is
        handled when it surfaces, which is before it could ever dispatch.
        """
        dropped = 0
        while self._heap:
            _, _, job = self._heap[0]
            if job.deadline is None or now <= job.deadline:
                break
            heapq.heappop(self._heap)
            job.state = JobState.EXPIRED
            job.finish_time = now
            self.expired += 1
            dropped += 1
            record_job_expired()
        if dropped:
            record_queue_depth(len(self._heap))
        return dropped

    def pop(self) -> Job:
        """Dequeue the head job unconditionally (callers pair this with
        :meth:`expire_stale` / :meth:`peek`)."""
        _, _, job = heapq.heappop(self._heap)
        record_queue_depth(len(self._heap))
        return job

    def pop_ready(self, now: float) -> Job | None:
        """The highest-priority job whose deadline has not passed, or
        ``None`` when the queue empties (expired heads are dropped on the
        way, exactly as :meth:`expire_stale` does)."""
        self.expire_stale(now)
        return self.pop() if self._heap else None

    def peek(self) -> Job | None:
        """The job :meth:`pop` would return (no dequeue, no expiry)."""
        return self._heap[0][2] if self._heap else None

    def depth_by_priority(self) -> dict[int, int]:
        """Waiting jobs per priority level (for reporting)."""
        depths: dict[int, int] = {}
        for priority, _, _ in self._heap:
            depths[priority] = depths.get(priority, 0) + 1
        return depths

"""Jobs: the unit of work the serving loop schedules.

A :class:`Job` wraps one :class:`~repro.lp.problem.LPProblem` with the
serving metadata the event loop needs — priority, submission time on the
simulated clock, an optional deadline — and accumulates the lifecycle
record (state transitions, placement, latency, warm-start provenance) as
the job moves through admission, queueing, dispatch and completion.

All times are **simulated seconds** on the server's event clock, the same
modeled-time axis every makespan in the library uses; nothing here reads
the wall clock.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.lp.problem import LPProblem
from repro.result import SolveResult

#: Priority levels: lower value = served first.  Any int works; these three
#: are the named levels the synthetic traces and the CLI use.
PRIORITY_HIGH = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2

_PRIORITY_NAMES = {
    PRIORITY_HIGH: "high",
    PRIORITY_NORMAL: "normal",
    PRIORITY_LOW: "low",
}


def priority_name(priority: int) -> str:
    """Human label of a priority level (used as a metrics label)."""
    return _PRIORITY_NAMES.get(priority, str(priority))


class JobState(enum.Enum):
    """Lifecycle of a serving job.

    ``QUEUED -> RUNNING -> COMPLETED`` is the happy path; ``REJECTED``
    (admission control) and ``EXPIRED`` (deadline passed while queued) are
    the terminal drop states.  ``COMPLETED`` means the solver ran — the
    LP's own verdict (optimal / infeasible / unbounded) lives in
    ``result.status``.
    """

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    REJECTED = "rejected"
    EXPIRED = "expired"

    @property
    def is_terminal(self) -> bool:
        return self not in (JobState.QUEUED, JobState.RUNNING)


@dataclasses.dataclass
class Job:
    """One submitted LP and its serving lifecycle record."""

    job_id: int
    problem: LPProblem
    method: str
    priority: int = PRIORITY_NORMAL
    submit_time: float = 0.0
    #: Absolute simulated-clock deadline (``None`` = no deadline).  Jobs
    #: still queued past it are dropped as EXPIRED; admission control also
    #: rejects jobs whose predicted completion already overshoots it.
    deadline: float | None = None
    state: JobState = JobState.QUEUED
    #: Structural fingerprint of the problem (warm-start cache key).
    fingerprint: str = ""
    #: Modeled device-memory footprint used by the bin-packing placement.
    footprint_bytes: int = 0
    device: str | None = None
    dispatch_time: float | None = None
    finish_time: float | None = None
    result: SolveResult | None = None
    #: Why admission control dropped the job (REJECTED state only).
    reject_reason: str | None = None
    #: Whether the solve started from a cached basis (a cache hit).
    warm_started: bool = False
    #: Whether this job broke its warm-start chain: it ran and finished
    #: non-optimal, so its basis was not cached (same flag
    #: :func:`repro.batch.solve_batch_chain` records per item).
    chain_broken: bool = False

    @property
    def latency_seconds(self) -> float | None:
        """Submit-to-finish modeled latency (``None`` until completed)."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time

    @property
    def queue_seconds(self) -> float | None:
        """Time spent queued before dispatch (``None`` until dispatched)."""
        if self.dispatch_time is None:
            return None
        return self.dispatch_time - self.submit_time

    @property
    def is_optimal(self) -> bool:
        return self.result is not None and self.result.is_optimal

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Job #{self.job_id} {self.problem.name!r} "
            f"{priority_name(self.priority)} {self.state.value}>"
        )

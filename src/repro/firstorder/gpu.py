"""Restarted, preconditioned PDHG (PDLP-style) on the simulated GPU.

The device sibling of :class:`~repro.firstorder.cpu.PdlpSolver` and the
method the simulated hardware rewards most: the entire iteration is four
kernel launches — SpMVᵀ, a fused primal update (projection + extrapolation
+ running sum), SpMV, and a fused dual update — with *no* factorisation,
no host round-trips in the hot loop, and candidate evaluation every
``check_every`` iterations built from the same SpMV kernels plus
device-BLAS reductions (each reduction charges the real scalar-download
latency, exactly like the simplex pricing loop).

The constraint matrix is resident twice, CSC for ``Âᵀŷ`` and CSR for
``Âx̂`` — the standard PDLP trade of one extra matrix copy for coalesced
row-parallel SpMV in both directions.

Setup (Ruiz/Pock–Chambolle rescaling) is host work; the power-iteration
``‖Â‖₂`` estimate runs on the device so its SpMV cost lands on the device
clock.  Decision logic (restarts, primal weight, termination, Farkas
rays) is shared with the CPU backend via :mod:`repro.firstorder.pdhg`.
"""

from __future__ import annotations

import numpy as np

from repro.engine import SolverBackend
from repro.errors import SolverError
from repro.firstorder.cpu import _as_csc_prep
from repro.firstorder.pdhg import (
    PdhgControls,
    RestartController,
    attach_firstorder_solution,
    infeasibility_from_rays,
    relative_kkt,
    update_primal_weight,
)
from repro.firstorder.rescale import RescaledLP, ruiz_rescale
from repro.gpu import blas
from repro.gpu import plan as gpu_plan
from repro.gpu.device import Device
from repro.gpu.memory import DeviceArray
from repro.gpu.sparse_kernels import (
    DeviceCscMatrix,
    DeviceCsrMatrix,
    spmv_csc_t,
    spmv_csr,
)
from repro.lp.problem import LPProblem
from repro.lp.standard_form import StandardFormLP
from repro.perfmodel.gpu_model import GpuModelParams
from repro.perfmodel.ops import OpCost
from repro.perfmodel.presets import GTX280_PARAMS
from repro.result import IterationStats, SolveResult, TimingStats
from repro.simplex.common import prepare
from repro.simplex.options import SolverOptions
from repro.status import SolveStatus


def _primal_update_kernel(
    dev: Device,
    x: DeviceArray,
    x_ext: DeviceArray,
    x_sum: DeviceArray,
    aty: DeviceArray,
    c: DeviceArray,
    tau: float,
) -> None:
    """Fused: x ← [x − τ(c − Âᵀŷ)]₊;  x_ext ← 2x⁺ − x;  x_sum += x⁺."""
    n = x.shape[0]
    w = x.itemsize

    def body() -> None:
        old = x.data.astype(np.float64)
        new = np.maximum(
            0.0, old - tau * (c.data.astype(np.float64) - aty.data.astype(np.float64))
        )
        x_ext.data[:] = (2.0 * new - old).astype(x_ext.dtype)
        x_sum.data[:] = (x_sum.data.astype(np.float64) + new).astype(x_sum.dtype)
        x.data[:] = new.astype(x.dtype)

    cost = OpCost(
        flops=8 * n,
        bytes_read=4 * n * w,
        bytes_written=3 * n * w,
        threads=max(1, n),
        coalesced_fraction=1.0,
    )
    gpu_plan.emit(
        dev, "pdhg.primal_update", body, cost, dtype=x.dtype,
        fusable=True, reads=(x, c, aty, x_sum), writes=(x, x_ext, x_sum),
    )


def _dual_update_kernel(
    dev: Device,
    y: DeviceArray,
    y_sum: DeviceArray,
    ax: DeviceArray,
    b: DeviceArray,
    sigma: float,
) -> None:
    """Fused: y ← y + σ(b̂ − Âx_ext);  y_sum += y⁺."""
    m = y.shape[0]
    w = y.itemsize

    def body() -> None:
        new = y.data.astype(np.float64) + sigma * (
            b.data.astype(np.float64) - ax.data.astype(np.float64)
        )
        y_sum.data[:] = (y_sum.data.astype(np.float64) + new).astype(y_sum.dtype)
        y.data[:] = new.astype(y.dtype)

    cost = OpCost(
        flops=5 * m,
        bytes_read=4 * m * w,
        bytes_written=2 * m * w,
        threads=max(1, m),
        coalesced_fraction=1.0,
    )
    gpu_plan.emit(
        dev, "pdhg.dual_update", body, cost, dtype=y.dtype,
        fusable=True, reads=(y, ax, b, y_sum), writes=(y, y_sum),
    )


def _scaled_residual_kernel(
    dev: Device,
    out: DeviceArray,
    av: DeviceArray,
    rhs: DeviceArray,
    inv_scale: DeviceArray,
    *,
    positive_part: bool,
    name: str,
) -> None:
    """out ← (av − rhs)·inv_scale, optionally clamped to its positive part
    (the unscaled primal / dual residual vector of a candidate)."""
    n = out.shape[0]
    w = out.itemsize

    def body() -> None:
        r = (av.data.astype(np.float64) - rhs.data.astype(np.float64)) * (
            inv_scale.data.astype(np.float64)
        )
        if positive_part:
            r = np.maximum(r, 0.0)
        out.data[:] = r.astype(out.dtype)

    cost = OpCost(
        flops=3 * n,
        bytes_read=3 * n * w,
        bytes_written=n * w,
        threads=max(1, n),
        coalesced_fraction=1.0,
    )
    gpu_plan.emit(
        dev, name, body, cost, dtype=out.dtype,
        fusable=True, reads=(av, rhs, inv_scale), writes=(out,),
    )


class GpuPdlpSolver(SolverBackend):
    """GPU PDLP: device-CSC/CSR restarted PDHG priced by the perf model."""

    name = "gpu-pdlp"
    accepts_warm_start = False

    def __init__(
        self,
        options: SolverOptions | None = None,
        device: Device | None = None,
        gpu_params: GpuModelParams = GTX280_PARAMS,
    ):
        self.options = options or SolverOptions()
        self._external_device = device
        self._gpu_params = gpu_params
        self._st: "_PdhgState | None" = None
        #: The device of the last solve (statistics inspection).
        self.device: Device | None = device

    # -- engine backend interface --------------------------------------

    def begin(self, problem: "LPProblem | StandardFormLP", warm_hint) -> None:
        opts = self.options
        self.prep = prep = _as_csc_prep(prepare(problem, opts))
        dev = self._external_device or Device(self._gpu_params)
        self.device = self.dev = dev
        dev.reset_stats()

        self._policy = policy = gpu_plan.PrecisionPolicy.from_options(opts)
        if policy.refine:
            raise SolverError("gpu-pdlp does not support mixed precision")
        dtype = policy.compute_dtype
        self.plan = gpu_plan.LaunchPlan(dev, fusion=opts.fusion, hooks=self.hooks)

        m, n = prep.m, prep.n_total
        self._controls = PdhgControls.from_options(opts, m, n)
        self._rescaled: RescaledLP = ruiz_rescale(prep.a, prep.b, prep.c)
        self._st = st = _PdhgState(self._rescaled, dev, dtype)
        self.stats = IterationStats()
        self.needs_phase1 = False
        self._b_norm = float(np.linalg.norm(prep.b))
        self._c_norm = float(np.linalg.norm(prep.c))
        self._final_kkt = None
        self._restarts = 0
        self._omega = 1.0
        self._spmv_count = 0
        self.hooks.arm(
            clock=lambda: dev.clock,
            sections=lambda: dev.stats.sections,
            meta={
                "m": m,
                "n": n,
                "pricing": "pdhg",
                "dtype": dtype.name,
                "device": dev.params.name,
                "nnz": prep.nnz,
                "tol_kkt": self._controls.tol,
            },
        )
        with dev.timed_section("setup"):
            self._norm_a = self._device_norm_estimate()
        return None

    def _device_norm_estimate(self, iters: int = 24) -> float:
        """Power iteration on ÂᵀÂ with the device SpMV kernels (its SpMV
        cost is real setup work and lands on the device clock)."""
        st = self._st
        n = st.a_csc.shape[1]
        blas.fill(st.x_ext, 1.0 / np.sqrt(n))
        sigma = 1.0
        for _ in range(iters):
            spmv_csr(st.a_csr, st.x_ext, st.ax)
            spmv_csc_t(st.a_csc, st.ax, st.aty)
            self._spmv_count += 2
            nw = blas.nrm2(st.aty)
            if nw <= 0.0:
                break
            blas.copy(st.aty, st.x_ext)
            blas.scal(1.0 / nw, st.x_ext)
            sigma = float(np.sqrt(nw))
        blas.fill(st.x_ext, 0.0)
        return max(sigma, 1e-30)

    # -- candidate evaluation -------------------------------------------

    def _evaluate(self, x_c: DeviceArray, y_c: DeviceArray):
        """Unscaled relative KKT score of a device-resident candidate."""
        st = self._st
        with self.plan.section("check.primal"):
            spmv_csr(st.a_csr, x_c, st.chk_m)
            _scaled_residual_kernel(
                st.dev, st.tmp_m, st.chk_m, st.b, st.inv_row,
                positive_part=False, name="pdhg.residual_primal",
            )
        rp = blas.nrm2(st.tmp_m)
        with self.plan.section("check.dual"):
            spmv_csc_t(st.a_csc, y_c, st.chk_n)
            _scaled_residual_kernel(
                st.dev, st.tmp_n, st.chk_n, st.c, st.inv_col,
                positive_part=True, name="pdhg.residual_dual",
            )
        rd = blas.nrm2(st.tmp_n)
        self._spmv_count += 2
        pobj = blas.dot(st.c, x_c)
        dobj = blas.dot(st.b, y_c)
        return relative_kkt(rp, rd, pobj, dobj, self._b_norm, self._c_norm)

    def _displacement_norms(self, x_c, y_c) -> tuple[float, float]:
        """Prep-space ‖Δx‖, ‖Δy‖ since the last restart point."""
        st = self._st
        blas.copy(x_c, st.tmp_n)
        blas.axpy(-1.0, st.x_rst, st.tmp_n)
        dx = st.tmp_n.copy_to_host().astype(np.float64) * self._rescaled.col_scale
        blas.copy(y_c, st.tmp_m)
        blas.axpy(-1.0, st.y_rst, st.tmp_m)
        dy = st.tmp_m.copy_to_host().astype(np.float64) * self._rescaled.row_scale
        return float(np.linalg.norm(dx)), float(np.linalg.norm(dy))

    # -- the PDHG loop ---------------------------------------------------

    def run_phase(self, phase: int) -> tuple[SolveStatus, int]:
        st, ctl = self._st, self._controls
        dev = st.dev
        eta = ctl.step_safety / self._norm_a
        omega = 1.0
        k_since = 0
        checks = 0
        restart_ctl = RestartController(ctl)
        with dev.timed_section("check"):
            best = self._evaluate(st.x, st.y)
        self._accept(st.x, st.y, best)
        status = SolveStatus.ITERATION_LIMIT
        k = 0

        for k in range(1, ctl.max_iterations + 1):
            tau = eta / omega
            sigma = eta * omega
            with self.plan.section("primal", timed="spmv"):
                with dev.timed_section("spmv"):
                    spmv_csc_t(st.a_csc, st.y, st.aty)
                with dev.timed_section("update"):
                    _primal_update_kernel(
                        dev, st.x, st.x_ext, st.x_sum, st.aty, st.c, tau
                    )
            with self.plan.section("dual", timed="spmv"):
                with dev.timed_section("spmv"):
                    spmv_csr(st.a_csr, st.x_ext, st.ax)
                with dev.timed_section("update"):
                    _dual_update_kernel(dev, st.y, st.y_sum, st.ax, st.b, sigma)
            self._spmv_count += 2
            k_since += 1

            if k % ctl.check_every != 0 and k != ctl.max_iterations:
                continue
            checks += 1
            with dev.timed_section("check"):
                inv_k = 1.0 / k_since
                blas.copy(st.x_sum, st.x_avg)
                blas.scal(inv_k, st.x_avg)
                blas.copy(st.y_sum, st.y_avg)
                blas.scal(inv_k, st.y_avg)
                cand_avg = self._evaluate(st.x_avg, st.y_avg)
                cand_cur = self._evaluate(st.x, st.y)
            if cand_avg.score <= cand_cur.score:
                cand, cx, cy = cand_avg, st.x_avg, st.y_avg
            else:
                cand, cx, cy = cand_cur, st.x, st.y
            if cand.score < best.score:
                best = cand
                self._accept(cx, cy, cand)

            if cand.converged(ctl.tol):
                status = SolveStatus.OPTIMAL
                self._accept(cx, cy, cand)
                self._record_restart(k, cand)
                self.hooks.record(
                    phase=2, iteration=k, event="optimal",
                    objective=cand.primal_objective, theta=cand.score,
                    pricing_rule="pdhg",
                )
                break

            if checks % ctl.ray_every == 0:
                # Farkas logic is host work on the downloaded rays (the
                # two vector downloads are charged as DtoH transfers)
                with dev.timed_section("transfer"):
                    dx, dy = self._download_rays(cx, cy)
                verdict = infeasibility_from_rays(
                    self.prep.a, self.prep.b, self.prep.c, dx, dy
                )
                if verdict is not None:
                    status = verdict
                    self._record_restart(k, cand)
                    self.hooks.record(
                        phase=2, iteration=k, event=str(verdict),
                        objective=cand.primal_objective, theta=cand.score,
                        pricing_rule="pdhg",
                    )
                    break

            if restart_ctl.should_restart(cand.score, k_since):
                with dev.timed_section("restart"):
                    dx_norm, dy_norm = self._displacement_norms(cx, cy)
                    omega = update_primal_weight(
                        omega, dx_norm, dy_norm, ctl.weight_smoothing
                    )
                    if cx is not st.x:
                        blas.copy(cx, st.x)
                        blas.copy(cy, st.y)
                    blas.copy(st.x, st.x_rst)
                    blas.copy(st.y, st.y_rst)
                    blas.fill(st.x_sum, 0.0)
                    blas.fill(st.y_sum, 0.0)
                k_since = 0
                restart_ctl.on_restart(cand.score)
                self._record_restart(k, cand)

        self._restarts = restart_ctl.restarts
        self._omega = omega
        if status is SolveStatus.ITERATION_LIMIT:
            self._record_restart(k, best)
        return status, k

    def _download_rays(self, cx: DeviceArray, cy: DeviceArray):
        sc = self._rescaled
        st = self._st
        blas.copy(cx, st.tmp_n)
        blas.axpy(-1.0, st.x_rst, st.tmp_n)
        blas.copy(cy, st.tmp_m)
        blas.axpy(-1.0, st.y_rst, st.tmp_m)
        dx = st.tmp_n.copy_to_host().astype(np.float64) * sc.col_scale
        dy = st.tmp_m.copy_to_host().astype(np.float64) * sc.row_scale
        return dx, dy

    def _accept(self, x_c: DeviceArray, y_c: DeviceArray, kkt) -> None:
        st = self._st
        blas.copy(x_c, st.x_best)
        blas.copy(y_c, st.y_best)
        self._final_kkt = kkt

    def _record_restart(self, k: int, kkt) -> None:
        self.hooks.record(
            phase=2,
            iteration=k,
            event="restart",
            objective=kkt.primal_objective,
            theta=kkt.score,
            pricing_rule="pdhg",
        )

    # -- finish participation ------------------------------------------

    def timing(self, wall_seconds: float) -> TimingStats:
        dev = self.dev
        breakdown = dict(dev.stats.sections)
        breakdown["transfer"] = dev.stats.transfer_seconds
        return TimingStats(
            modeled_seconds=dev.clock,
            wall_seconds=wall_seconds,
            transfer_seconds=dev.stats.transfer_seconds,
            kernel_breakdown=breakdown,
        )

    def standard_extras(self, result: SolveResult) -> None:
        dev = self.dev
        result.extra["device"] = dev.params.name
        result.extra["kernel_launches"] = dev.stats.kernel_launches
        result.extra["kernel_bytes"] = sum(
            rec.bytes for rec in dev.stats.by_kernel.values()
        )
        result.extra["by_kernel"] = dev.stats.kernel_breakdown()
        result.extra["peak_device_bytes"] = dev.stats.peak_bytes_in_use
        result.extra["restarts"] = self._restarts
        result.extra["spmv_count"] = self._spmv_count
        result.extra["primal_weight"] = self._omega
        result.extra["norm_estimate"] = self._norm_a
        if self._final_kkt is not None:
            result.extra["kkt_primal"] = self._final_kkt.primal
            result.extra["kkt_dual"] = self._final_kkt.dual
            result.extra["kkt_gap"] = self._final_kkt.gap
            result.extra["kkt_score"] = self._final_kkt.score
        if self.options.fusion:
            result.extra["fused_launches"] = self.plan.fused_launches
            result.extra["fused_ops"] = self.plan.fused_ops
            result.extra["fusion_saved_seconds"] = self.plan.saved_seconds

    def extract(self, result: SolveResult) -> None:
        st = self._st
        x_hat = st.x_best.copy_to_host().astype(np.float64)
        y_hat = st.y_best.copy_to_host().astype(np.float64)
        attach_firstorder_solution(result, self.prep, self._rescaled, x_hat, y_hat)

    def finalize_timing(self, result: SolveResult) -> None:
        # the solution download in extract() advanced the clock; the
        # reported machine time must include it
        dev = self.dev
        result.timing.modeled_seconds = dev.clock
        result.timing.transfer_seconds = dev.stats.transfer_seconds
        result.timing.kernel_breakdown["transfer"] = dev.stats.transfer_seconds

    def cleanup(self) -> None:
        if self._st is not None:
            self._st.free()
            self._st = None


class _PdhgState:
    """Device-resident PDHG state: the matrix twice (CSC + CSR) and the
    iterate/average/candidate vectors."""

    def __init__(self, rescaled: RescaledLP, dev: Device, dtype: np.dtype):
        self.dev = dev
        self.dtype = dtype
        m, n = rescaled.a.shape
        try:
            with dev.timed_section("transfer"):
                self.a_csc = DeviceCscMatrix(dev, rescaled.a, dtype)
                self.a_csr = DeviceCsrMatrix(dev, rescaled.a.tocsr(), dtype)
                self.b = dev.to_device(rescaled.b, dtype)
                self.c = dev.to_device(rescaled.c, dtype)
                self.inv_row = dev.to_device(rescaled.inv_row_scale, dtype)
                self.inv_col = dev.to_device(rescaled.inv_col_scale, dtype)
            self.x = dev.zeros(n, dtype)
            self.y = dev.zeros(m, dtype)
            self.x_ext = dev.zeros(n, dtype)
            self.x_sum = dev.zeros(n, dtype)
            self.y_sum = dev.zeros(m, dtype)
            self.x_avg = dev.zeros(n, dtype)
            self.y_avg = dev.zeros(m, dtype)
            self.x_rst = dev.zeros(n, dtype)
            self.y_rst = dev.zeros(m, dtype)
            self.x_best = dev.zeros(n, dtype)
            self.y_best = dev.zeros(m, dtype)
            self.ax = dev.zeros(m, dtype)
            self.aty = dev.zeros(n, dtype)
            self.chk_m = dev.zeros(m, dtype)
            self.chk_n = dev.zeros(n, dtype)
            self.tmp_m = dev.zeros(m, dtype)
            self.tmp_n = dev.zeros(n, dtype)
        except Exception:
            # a failed allocation (device OOM) must not leak what was
            # already placed on the card
            self.free()
            raise

    def free(self) -> None:
        for name in (
            "b", "c", "inv_row", "inv_col", "x", "y", "x_ext", "x_sum",
            "y_sum", "x_avg", "y_avg", "x_rst", "y_rst", "x_best", "y_best",
            "ax", "aty", "chk_m", "chk_n", "tmp_m", "tmp_n",
        ):
            arr = getattr(self, name, None)
            if arr is not None and not arr.is_freed:
                arr.free()
        for mat in (getattr(self, "a_csc", None), getattr(self, "a_csr", None)):
            if mat is not None:
                mat.free()

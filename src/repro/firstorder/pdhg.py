"""Method-level logic shared by the CPU and GPU PDHG backends.

The two backends differ only in *where the vectors live* (NumPy arrays
charged to the CPU cost model vs device arrays moved by kernels).  What
they must never differ in is the *decision logic*: when to restart, how
the primal weight evolves, when a candidate terminates, and how a
scaled-space candidate is mapped back onto the :class:`~repro.result.SolveResult`
surface.  That logic lives here, once.

Termination follows PDLP's relative KKT criterion on the prepared
(standard-form) data::

    rp  = ‖Ax − b‖₂ / (1 + ‖b‖₂)                  (primal residual)
    rd  = ‖[Aᵀy − c]₊‖₂ / (1 + ‖c‖₂)              (dual residual)
    gap = |cᵀx − bᵀy| / (1 + |cᵀx| + |bᵀy|)       (duality gap)

and the restart rule is normalized-gap decay: every ``check_every``
iterations the averaged and the current iterate are both scored; the
better candidate triggers a restart when its score has decayed below
``beta_sufficient`` times the score at the previous restart, and a long
epoch forces an "artificial" restart so the average cannot go stale.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.result import SolveResult
from repro.simplex.options import SolverOptions
from repro.status import SolveStatus


@dataclasses.dataclass
class PdhgControls:
    """Resolved iteration controls for one PDHG solve."""

    tol: float
    max_iterations: int
    check_every: int = 64
    beta_sufficient: float = 0.2
    artificial_restart: int = 4096
    #: step-size safety factor: τσ‖Â‖² = step_safety² < 1
    step_safety: float = 0.9
    #: primal-weight smoothing exponent (PDLP's θ)
    weight_smoothing: float = 0.5
    #: run the Farkas-ray infeasibility test every this many checks
    ray_every: int = 4

    @classmethod
    def from_options(cls, options: SolverOptions, m: int, n: int) -> "PdhgControls":
        eps = float(np.finfo(np.dtype(options.dtype)).eps)
        tol = max(options.tol_kkt, 1e3 * eps)
        if options.max_iterations > 0:
            cap = options.max_iterations
        else:
            # first-order iterations are far cheaper than pivots; the
            # default budget is correspondingly larger than the simplex cap
            cap = max(20_000, 100 * (m + n))
        return cls(tol=tol, max_iterations=cap)


@dataclasses.dataclass
class KktScore:
    """Relative KKT residuals of one candidate and its objectives."""

    primal: float
    dual: float
    gap: float
    primal_objective: float
    dual_objective: float

    @property
    def score(self) -> float:
        return max(self.primal, self.dual, self.gap)

    def converged(self, tol: float) -> bool:
        return self.score <= tol


def relative_kkt(
    rp_norm: float,
    rd_norm: float,
    pobj: float,
    dobj: float,
    b_norm: float,
    c_norm: float,
) -> KktScore:
    """Assemble the relative KKT score from raw residual norms/objectives."""
    return KktScore(
        primal=rp_norm / (1.0 + b_norm),
        dual=rd_norm / (1.0 + c_norm),
        gap=abs(pobj - dobj) / (1.0 + abs(pobj) + abs(dobj)),
        primal_objective=pobj,
        dual_objective=dobj,
    )


class RestartController:
    """Normalized-gap restart bookkeeping shared by both backends."""

    def __init__(self, controls: PdhgControls):
        self.controls = controls
        self.last_score = math.inf
        self.restarts = 0

    def should_restart(self, candidate_score: float, iters_since: int) -> bool:
        if iters_since < 1:
            return False
        if candidate_score <= self.controls.beta_sufficient * self.last_score:
            return True
        return iters_since >= self.controls.artificial_restart

    def on_restart(self, candidate_score: float) -> None:
        self.last_score = candidate_score
        self.restarts += 1


def update_primal_weight(
    omega: float, dx_norm: float, dy_norm: float, smoothing: float = 0.5
) -> float:
    """PDLP's primal-weight update at a restart: pull ω toward the observed
    ‖Δy‖/‖Δx‖ ratio in log space; degenerate movements leave ω alone."""
    if not (dx_norm > 0.0 and dy_norm > 0.0):
        return omega
    if not (math.isfinite(dx_norm) and math.isfinite(dy_norm)):
        return omega
    log_w = smoothing * math.log(dy_norm / dx_norm) + (1.0 - smoothing) * math.log(
        omega
    )
    # clamp: a wildly lopsided epoch must not destroy the step sizes
    return float(min(max(math.exp(log_w), 1e-6), 1e6))


def infeasibility_from_rays(
    a,
    b: np.ndarray,
    c: np.ndarray,
    dx: np.ndarray,
    dy: np.ndarray,
    *,
    ray_tol: float = 1e-9,
) -> "SolveStatus | None":
    """Farkas-certificate test on the iterate displacement rays.

    For ``min cᵀx, Ax = b, x ≥ 0``: a dual ray ``Aᵀdy ≤ 0, bᵀdy > 0``
    certifies primal infeasibility; a primal ray ``dx ≥ 0, A dx = 0,
    cᵀdx < 0`` certifies unboundedness.  Tolerances are strict — a noise
    direction on a solvable instance does not satisfy them; a genuinely
    divergent PDHG run produces rays that do.
    """
    dy_norm = float(np.linalg.norm(dy))
    if dy_norm > 0.0 and np.isfinite(dy_norm):
        ray = dy / dy_norm
        viol = float(np.linalg.norm(np.maximum(a.rmatvec(ray), 0.0)))
        gain = float(b @ ray)
        if viol <= ray_tol and gain > ray_tol * (1.0 + float(np.linalg.norm(b))):
            return SolveStatus.INFEASIBLE
    dx_norm = float(np.linalg.norm(dx))
    if dx_norm > 0.0 and np.isfinite(dx_norm):
        ray = dx / dx_norm
        if float(ray.min()) >= -ray_tol:
            ray = np.maximum(ray, 0.0)
            drift = float(np.linalg.norm(a.matvec(ray)))
            descent = float(c @ ray)
            if drift <= ray_tol and descent < -ray_tol * (
                1.0 + float(np.linalg.norm(c))
            ):
                return SolveStatus.UNBOUNDED
    return None


def attach_firstorder_solution(
    result: SolveResult,
    prep,
    rescaled,
    x_hat: np.ndarray,
    y_hat: np.ndarray,
) -> None:
    """Populate the OPTIMAL result surface from a scaled-space candidate.

    The first-order methods have no basis, so this is the basis-free
    sibling of :func:`repro.engine.backend.attach_standard_solution`:
    unscale through the PDHG preconditioner (and the optional
    geometric-mean scaling of ``prepare``), recover the original-space
    point and duals, and recompute the objective from unscaled data.
    """
    x_prep = np.asarray(x_hat, dtype=np.float64) * rescaled.col_scale
    y_prep = np.asarray(y_hat, dtype=np.float64) * rescaled.row_scale
    if prep.scaling is not None:
        x_std = prep.scaling.unscale_x(x_prep)
        y_std = prep.scaling.unscale_duals(y_prep)
    else:
        x_std, y_std = x_prep, y_prep
    x_std = np.maximum(x_std, 0.0)
    z_std = float(prep.std.c @ x_std)
    result.objective = prep.std.original_objective(z_std)
    result.x = prep.std.recover_x(x_std)
    result.residuals = SolveResult.compute_residuals(prep.std.a, prep.std.b, x_std)
    result.extra["x_std"] = x_std
    result.extra["y_std"] = y_std
    result.extra["duals"] = prep.std.recover_duals(y_std)

"""First-order LP solvers: restarted, preconditioned PDHG (PDLP-style).

The non-simplex wing of the engine.  ``repro.firstorder.cpu`` and
``repro.firstorder.gpu`` provide the two backends registered as
``"pdlp"`` and ``"gpu-pdlp"``; ``repro.firstorder.pdhg`` holds the shared
restart/termination logic and ``repro.firstorder.rescale`` the diagonal
preconditioning both backends iterate on.
"""

from repro.firstorder.cpu import PdlpSolver
from repro.firstorder.gpu import GpuPdlpSolver

__all__ = ["PdlpSolver", "GpuPdlpSolver"]

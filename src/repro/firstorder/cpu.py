"""Restarted, preconditioned PDHG (PDLP-style) on the CPU.

The first *non-simplex* method behind the engine: no phase 1, no basis,
no pivots — a primal-dual iterate pair driven by one SpMV and one SpMVᵀ
per iteration over the Ruiz/Pock–Chambolle-rescaled standard form

    min ĉᵀx̂   s.t.  Â x̂ = b̂,  x̂ ≥ 0

with the chambolle-pock extrapolated update::

    x̂⁺ = [x̂ − τ(ĉ − Âᵀŷ)]₊
    ŷ⁺ = ŷ + σ(b̂ − Â(2x̂⁺ − x̂))

Step sizes satisfy ``τσ‖Â‖² < 1`` (power-iteration estimate) split by the
adaptive primal weight ω (τ = η/ω, σ = ηω).  Restarts, termination and
status mapping are the shared logic of :mod:`repro.firstorder.pdhg`.

Numerics are float64 (like every CPU backend); ``options.dtype`` sets the
arithmetic the *cost model* charges, mirroring the simplex solvers.  All
instrumentation flows through the engine observer hooks — this module
imports neither ``repro.trace`` nor ``repro.metrics`` (``make lint``).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.engine import SolverBackend
from repro.firstorder.pdhg import (
    PdhgControls,
    RestartController,
    attach_firstorder_solution,
    infeasibility_from_rays,
    relative_kkt,
    update_primal_weight,
)
from repro.firstorder.rescale import RescaledLP, power_iteration_norm, ruiz_rescale
from repro.lp.problem import LPProblem
from repro.lp.standard_form import StandardFormLP
from repro.perfmodel.cpu_model import CpuCostModel, CpuCostRecorder
from repro.perfmodel.ops import OpCost
from repro.perfmodel.presets import CORE2_CPU_PARAMS, CpuModelParams
from repro.result import IterationStats, SolveResult, TimingStats
from repro.simplex.common import PreparedLP, prepare
from repro.simplex.options import SolverOptions
from repro.sparse.csc import CscMatrix
from repro.status import SolveStatus

#: 4-byte column/row ids, matching the GPU sparse kernels' accounting.
_INDEX_BYTES = 4


def _as_csc_prep(prep: PreparedLP) -> PreparedLP:
    """PDHG iterates on CSC regardless of the input representation."""
    if prep.is_sparse:
        if isinstance(prep.a, CscMatrix):
            return prep
        return dataclasses.replace(prep, a=prep.a.tocsc())
    return dataclasses.replace(
        prep, a=CscMatrix.from_dense(np.asarray(prep.a, dtype=np.float64))
    )


class PdlpSolver(SolverBackend):
    """CPU PDLP: restarted preconditioned PDHG over NumPy/CSC data."""

    name = "pdlp-cpu"
    accepts_warm_start = False

    def __init__(
        self,
        options: SolverOptions | None = None,
        cpu_params: CpuModelParams = CORE2_CPU_PARAMS,
    ):
        self.options = options or SolverOptions()
        self.recorder = CpuCostRecorder(
            CpuCostModel(cpu_params), dtype=self.options.dtype
        )

    # -- engine backend interface --------------------------------------

    def begin(self, problem: "LPProblem | StandardFormLP", warm_hint) -> None:
        self.recorder.reset()
        opts = self.options
        self.prep = prep = _as_csc_prep(prepare(problem, opts))
        m, n = prep.m, prep.n_total
        self._controls = PdhgControls.from_options(opts, m, n)
        self._spmv_count = 0
        self._rescaled: RescaledLP = ruiz_rescale(prep.a, prep.b, prep.c)
        self._norm_a = power_iteration_norm(self._rescaled.a)
        # the power iteration is real SpMV work: charge its cost
        for _ in range(24):
            self._charge_spmv("spmv")
            self._charge_spmv("spmv_t")
        self.stats = IterationStats()
        self.needs_phase1 = False
        self._x_hat = np.zeros(n)
        self._y_hat = np.zeros(m)
        self._final_kkt = None
        self._spmv_count = 0
        self._restarts = 0
        self.hooks.arm(
            clock=lambda: self.recorder.total_seconds,
            sections=lambda: self.recorder.by_op,
            meta={
                "m": m,
                "n": n,
                "pricing": "pdhg",
                "dtype": np.dtype(opts.dtype).name,
                "nnz": prep.nnz,
                "tol_kkt": self._controls.tol,
            },
        )
        return None

    # -- cost charging --------------------------------------------------

    def _charge_spmv(self, name: str) -> None:
        a = self._rescaled.a
        m, n = a.shape
        w = np.dtype(self.options.dtype).itemsize
        out_len = m if name == "spmv" else n
        self.recorder.charge(
            name,
            OpCost(
                flops=2 * a.nnz,
                bytes_read=a.nnz * (w + _INDEX_BYTES)
                + (n + 1) * _INDEX_BYTES
                + a.nnz * w,
                bytes_written=out_len * w,
                threads=max(1, out_len),
                coalesced_fraction=0.5,
            ),
        )
        self._spmv_count += 1

    def _charge_vector(self, name: str, length: int, flops_per: int) -> None:
        w = np.dtype(self.options.dtype).itemsize
        self.recorder.charge(
            name,
            OpCost(
                flops=flops_per * length,
                bytes_read=3 * length * w,
                bytes_written=length * w,
                threads=max(1, length),
                coalesced_fraction=1.0,
            ),
        )

    # -- the PDHG loop ---------------------------------------------------

    def _evaluate(self, x_c: np.ndarray, y_c: np.ndarray):
        """Score one candidate: unscaled relative KKT residuals."""
        sc = self._rescaled
        ax = sc.a.matvec(x_c)
        self._charge_spmv("spmv")
        aty = sc.a.rmatvec(y_c)
        self._charge_spmv("spmv_t")
        rp = float(np.linalg.norm((ax - sc.b) * sc.inv_row_scale))
        rd = float(np.linalg.norm(np.maximum(aty - sc.c, 0.0) * sc.inv_col_scale))
        pobj = float(sc.c @ x_c)
        dobj = float(sc.b @ y_c)
        self._charge_vector("check", self.prep.m + self.prep.n_total, 4)
        return relative_kkt(rp, rd, pobj, dobj, self._b_norm, self._c_norm)

    def run_phase(self, phase: int) -> tuple[SolveStatus, int]:
        prep, sc, ctl = self.prep, self._rescaled, self._controls
        m, n = prep.m, prep.n_total
        a, b, c = sc.a, sc.b, sc.c
        self._b_norm = float(np.linalg.norm(prep.b))
        self._c_norm = float(np.linalg.norm(prep.c))

        eta = ctl.step_safety / self._norm_a
        omega = 1.0
        x = np.zeros(n)
        y = np.zeros(m)
        x_sum = np.zeros(n)
        y_sum = np.zeros(m)
        x_rst = x.copy()
        y_rst = y.copy()
        k_since = 0
        checks = 0
        restart_ctl = RestartController(ctl)
        best = self._evaluate(x, y)
        self._accept(x, y, best)
        status = SolveStatus.ITERATION_LIMIT
        k = 0

        for k in range(1, ctl.max_iterations + 1):
            tau = eta / omega
            sigma = eta * omega
            aty = a.rmatvec(y)
            self._charge_spmv("spmv_t")
            x_new = np.maximum(0.0, x - tau * (c - aty))
            x_ext = 2.0 * x_new - x
            x = x_new
            self._charge_vector("primal_update", n, 5)
            ax = a.matvec(x_ext)
            self._charge_spmv("spmv")
            y = y + sigma * (b - ax)
            self._charge_vector("dual_update", m, 4)
            x_sum += x
            y_sum += y
            k_since += 1
            self._charge_vector("average", m + n, 2)

            if k % ctl.check_every != 0 and k != ctl.max_iterations:
                continue
            checks += 1
            inv_k = 1.0 / k_since
            x_avg = x_sum * inv_k
            y_avg = y_sum * inv_k
            self._charge_vector("average", m + n, 1)
            cand_avg = self._evaluate(x_avg, y_avg)
            cand_cur = self._evaluate(x, y)
            if cand_avg.score <= cand_cur.score:
                cand, cx, cy = cand_avg, x_avg, y_avg
            else:
                cand, cx, cy = cand_cur, x, y
            if cand.score < best.score:
                best = cand
                self._accept(cx, cy, cand)

            if cand.converged(ctl.tol):
                status = SolveStatus.OPTIMAL
                self._accept(cx, cy, cand)
                self._record_restart(k, cand)
                self.hooks.record(
                    phase=2, iteration=k, event="optimal",
                    objective=cand.primal_objective, theta=cand.score,
                    pricing_rule="pdhg",
                )
                break

            if checks % ctl.ray_every == 0:
                verdict = infeasibility_from_rays(
                    prep.a,
                    prep.b,
                    prep.c,
                    (cx - x_rst) * sc.col_scale,
                    (cy - y_rst) * sc.row_scale,
                )
                if verdict is not None:
                    status = verdict
                    self._record_restart(k, cand)
                    self.hooks.record(
                        phase=2, iteration=k, event=str(verdict),
                        objective=cand.primal_objective, theta=cand.score,
                        pricing_rule="pdhg",
                    )
                    break

            if restart_ctl.should_restart(cand.score, k_since):
                dx = float(np.linalg.norm((cx - x_rst) * sc.col_scale))
                dy = float(np.linalg.norm((cy - y_rst) * sc.row_scale))
                omega = update_primal_weight(omega, dx, dy, ctl.weight_smoothing)
                x = cx.copy()
                y = cy.copy()
                x_rst = cx.copy()
                y_rst = cy.copy()
                x_sum[:] = 0.0
                y_sum[:] = 0.0
                k_since = 0
                restart_ctl.on_restart(cand.score)
                self._charge_vector("restart", m + n, 1)
                self._record_restart(k, cand)

        self._restarts = restart_ctl.restarts
        self._omega = omega
        if status is SolveStatus.ITERATION_LIMIT:
            # keep the best candidate visible in the trace even without a
            # terminal verdict (matches the simplex solvers, which emit no
            # record when the cap cuts a phase short)
            self._record_restart(k, best)
        return status, k

    def _accept(self, x_c: np.ndarray, y_c: np.ndarray, kkt) -> None:
        self._x_hat = np.asarray(x_c, dtype=np.float64).copy()
        self._y_hat = np.asarray(y_c, dtype=np.float64).copy()
        self._final_kkt = kkt

    def _record_restart(self, k: int, kkt) -> None:
        """One per-restart trace record (the first-order analogue of a
        pivot; ``theta`` carries the candidate's relative KKT score)."""
        self.hooks.record(
            phase=2,
            iteration=k,
            event="restart",
            objective=kkt.primal_objective,
            theta=kkt.score,
            pricing_rule="pdhg",
        )

    # -- finish participation ------------------------------------------

    def timing(self, wall_seconds: float) -> TimingStats:
        return TimingStats(
            modeled_seconds=self.recorder.total_seconds,
            wall_seconds=wall_seconds,
            transfer_seconds=0.0,
            kernel_breakdown=dict(self.recorder.by_op),
        )

    def standard_extras(self, result: SolveResult) -> None:
        result.extra["restarts"] = self._restarts
        result.extra["spmv_count"] = self._spmv_count
        result.extra["primal_weight"] = getattr(self, "_omega", 1.0)
        result.extra["norm_estimate"] = self._norm_a
        if self._final_kkt is not None:
            result.extra["kkt_primal"] = self._final_kkt.primal
            result.extra["kkt_dual"] = self._final_kkt.dual
            result.extra["kkt_gap"] = self._final_kkt.gap
            result.extra["kkt_score"] = self._final_kkt.score

    def extract(self, result: SolveResult) -> None:
        attach_firstorder_solution(
            result, self.prep, self._rescaled, self._x_hat, self._y_hat
        )

    def cleanup(self) -> None:
        pass

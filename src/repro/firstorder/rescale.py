"""Diagonal preconditioning for the first-order (PDHG) solvers.

PDHG's convergence constant scales with the conditioning of the constraint
matrix, so the solvers never iterate on the raw standard-form data.  They
iterate on ``Â = D_r A D_c`` built by

1. **Ruiz equilibration** — a few passes of ``d_r = 1/sqrt(max_j |a_ij|)``,
   ``d_c = 1/sqrt(max_i |a_ij|)``, driving every row's and column's largest
   magnitude toward 1; then
2. **one Pock–Chambolle pass** (α = 1) — ``1/sqrt(row/column 1-norms)``,
   the diagonal preconditioner whose step sizes PDHG's convergence theory
   covers directly.

Both are diagonal, so the map back to the prepared space is two
elementwise products: ``x = D_c x̂``, ``y = D_r ŷ`` — and unscaled KKT
residual vectors are elementwise rescalings of scaled mat-vec results
(no extra SpMVs at termination checks).

All of this is host-side setup work shared by the CPU and GPU backends;
the power-iteration estimate of ``‖Â‖₂`` that fixes the step sizes runs on
each backend's own arithmetic so its cost is charged to the right machine.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.sparse.csc import CscMatrix


@dataclasses.dataclass
class RescaledLP:
    """The preconditioned standard-form data and its diagonal factors.

    ``a = D_r · A_prep · D_c`` with ``row_scale = diag(D_r)`` and
    ``col_scale = diag(D_c)``; ``b = D_r b_prep``, ``c = D_c c_prep``.
    A scaled-space point maps back as ``x_prep = col_scale * x̂`` and
    ``y_prep = row_scale * ŷ``.
    """

    a: CscMatrix
    b: np.ndarray
    c: np.ndarray
    row_scale: np.ndarray
    col_scale: np.ndarray

    @property
    def inv_row_scale(self) -> np.ndarray:
        return 1.0 / self.row_scale

    @property
    def inv_col_scale(self) -> np.ndarray:
        return 1.0 / self.col_scale


def ruiz_rescale(
    a: CscMatrix,
    b: np.ndarray,
    c: np.ndarray,
    *,
    ruiz_passes: int = 8,
    pock_chambolle: bool = True,
) -> RescaledLP:
    """Ruiz + Pock–Chambolle diagonal rescaling of ``min cᵀx, Ax=b, x≥0``.

    Zero rows/columns keep unit factors throughout (their max/1-norm is 0,
    which is excluded from the divide), so the factors are always finite
    and positive.
    """
    m, n = a.shape
    data = a.data.astype(np.float64).copy()
    rows = a.indices
    col_of = np.repeat(np.arange(n), np.diff(a.indptr))
    row_scale = np.ones(m)
    col_scale = np.ones(n)

    def _apply(d_r: np.ndarray, d_c: np.ndarray) -> None:
        nonlocal row_scale, col_scale
        if data.size:
            data[:] = data * d_r[rows] * d_c[col_of]
        row_scale = row_scale * d_r
        col_scale = col_scale * d_c

    for _ in range(max(0, ruiz_passes)):
        mags = np.abs(data)
        rmax = np.zeros(m)
        cmax = np.zeros(n)
        if mags.size:
            np.maximum.at(rmax, rows, mags)
            np.maximum.at(cmax, col_of, mags)
        d_r = np.where(rmax > 0.0, 1.0 / np.sqrt(np.where(rmax > 0.0, rmax, 1.0)), 1.0)
        d_c = np.where(cmax > 0.0, 1.0 / np.sqrt(np.where(cmax > 0.0, cmax, 1.0)), 1.0)
        _apply(d_r, d_c)
        if np.all(np.abs(1.0 - d_r) < 1e-3) and np.all(np.abs(1.0 - d_c) < 1e-3):
            break

    if pock_chambolle:
        mags = np.abs(data)
        rsum = np.bincount(rows, weights=mags, minlength=m) if mags.size else np.zeros(m)
        csum = np.bincount(col_of, weights=mags, minlength=n) if mags.size else np.zeros(n)
        d_r = np.where(rsum > 0.0, 1.0 / np.sqrt(np.where(rsum > 0.0, rsum, 1.0)), 1.0)
        d_c = np.where(csum > 0.0, 1.0 / np.sqrt(np.where(csum > 0.0, csum, 1.0)), 1.0)
        _apply(d_r, d_c)

    a_scaled = CscMatrix(a.shape, a.indptr.copy(), a.indices.copy(), data)
    return RescaledLP(
        a=a_scaled,
        b=np.asarray(b, dtype=np.float64) * row_scale,
        c=np.asarray(c, dtype=np.float64) * col_scale,
        row_scale=row_scale,
        col_scale=col_scale,
    )


def power_iteration_norm(a: CscMatrix, iters: int = 24) -> float:
    """Host-arithmetic estimate of ``‖A‖₂`` (power iteration on ``AᵀA``).

    Deterministic all-ones start; the CPU backend uses this directly (and
    charges the equivalent SpMV work), the GPU backend runs the same
    recurrence through its device kernels instead.
    """
    m, n = a.shape
    if a.nnz == 0 or n == 0:
        return 1.0
    v = np.full(n, 1.0 / np.sqrt(n))
    sigma = 1.0
    for _ in range(max(1, iters)):
        u = a.matvec(v)
        w = a.rmatvec(u)
        nw = float(np.linalg.norm(w))
        if nw <= 0.0:
            return max(sigma, 1e-30)
        v = w / nw
        sigma = np.sqrt(nw)
    return float(max(sigma, 1e-30))

"""Parallel reduction, arg-reduction and scan primitives.

These are the tree-structured kernels every GPU simplex implementation leans
on: Dantzig pricing is an arg-min over reduced costs, the ratio test is a
masked arg-min over βᵢ/αᵢ, and Bland's rule is a "first index satisfying a
predicate" reduction.  Each primitive executes the classic multi-pass scheme
(block-local shared-memory tree, then reduce the per-block partials) and
charges every pass to the device clock, so small reductions correctly show
their launch-overhead-dominated cost.

All host-returning primitives charge the final scalar DtoH transfer.
"""

from __future__ import annotations

import numpy as np

from repro.gpu._checks import (
    require_device_array,
    require_float_dtype,
    require_same_device,
    require_vector,
)
from repro.gpu.device import Device
from repro.gpu.kernel import DEFAULT_BLOCK
from repro.gpu.memory import DeviceArray
from repro.perfmodel.ops import OpCost

#: Sentinel returned by arg-reductions over an empty candidate set.
NO_INDEX = -1


def first_pass_cost(
    n: int,
    itemsize: int,
    *,
    flops_per_elem: float = 1.0,
    pair: bool = False,
) -> OpCost:
    """Cost of the *first* tree pass over ``n`` elements.

    The plan layer fuses this pass into the preceding map kernel (the classic
    map+reduce fusion); the remaining passes are charged separately via
    :func:`_charge_tree` with ``skip_first=True``.
    """
    width = itemsize * (2 if pair else 1)
    out = -(-n // (2 * DEFAULT_BLOCK))
    return OpCost(
        flops=flops_per_elem * n,
        bytes_read=n * width,
        bytes_written=out * width,
        threads=max(1, n // 2),
    )


def _charge_tree(
    dev: Device,
    name: str,
    n: int,
    itemsize: int,
    dtype,
    *,
    flops_per_elem: float = 1.0,
    pair: bool = False,
    skip_first: bool = False,
) -> None:
    """Charge the launch sequence of a tree reduction over ``n`` elements.

    ``pair=True`` models arg-reductions, which carry (value, index) pairs —
    double the traffic of a plain value reduction.  ``skip_first=True`` omits
    the first pass (already charged inside a fused launch by the plan layer)
    and charges only the follow-up passes over the per-block partials.
    """
    width = itemsize * (2 if pair else 1)
    remaining = n
    first = True
    while True:
        out = -(-remaining // (2 * DEFAULT_BLOCK))
        if not (first and skip_first):
            dev.launch(
                name,
                lambda: None,
                OpCost(
                    flops=flops_per_elem * remaining,
                    bytes_read=remaining * width,
                    bytes_written=out * width,
                    threads=max(1, remaining // 2),
                ),
                dtype=dtype,
            )
        first = False
        if out <= 1:
            break
        remaining = out


def _prep(x: DeviceArray) -> tuple[Device, np.dtype, int]:
    require_device_array("x", x)
    require_float_dtype("x", x)
    require_vector("x", x)
    return x.device, x.dtype, x.dtype.itemsize


# ---------------------------------------------------------------------------
# value reductions
# ---------------------------------------------------------------------------


def reduce_sum(x: DeviceArray) -> float:
    """Σ xᵢ, returned to the host."""
    dev, dtype, w = _prep(x)
    result = float(np.sum(x.data.astype(np.float64)))
    _charge_tree(dev, "reduce.sum", x.size, w, dtype)
    dev._record_transfer("dtoh", w)
    return result


def reduce_min(x: DeviceArray) -> float:
    """min xᵢ, returned to the host."""
    dev, dtype, w = _prep(x)
    result = float(np.min(x.data))
    _charge_tree(dev, "reduce.min", x.size, w, dtype)
    dev._record_transfer("dtoh", w)
    return result


def reduce_max(x: DeviceArray) -> float:
    """max xᵢ, returned to the host."""
    dev, dtype, w = _prep(x)
    result = float(np.max(x.data))
    _charge_tree(dev, "reduce.max", x.size, w, dtype)
    dev._record_transfer("dtoh", w)
    return result


def reduce_max_abs(x: DeviceArray) -> float:
    """max |xᵢ|, returned to the host."""
    dev, dtype, w = _prep(x)
    result = float(np.max(np.abs(x.data))) if x.size else 0.0
    _charge_tree(dev, "reduce.max_abs", x.size, w, dtype)
    dev._record_transfer("dtoh", w)
    return result


# ---------------------------------------------------------------------------
# arg reductions
# ---------------------------------------------------------------------------


def argmin_host(x: DeviceArray) -> tuple[int, float]:
    """Host-side value of an arg-min — shared by :func:`argmin` and the plan
    layer's fused terminal reductions (identical tie-break to lowest index)."""
    idx = int(np.argmin(x.data))
    return idx, float(x.data[idx])


def first_below_host(x: DeviceArray, threshold: float) -> int:
    """Host-side value of Bland's min-index reduction (see
    :func:`first_index_below`)."""
    hits = np.where(x.data < x.dtype.type(threshold))[0]
    return int(hits[0]) if hits.size else NO_INDEX


def argmin(x: DeviceArray) -> tuple[int, float]:
    """(index, value) of the minimum element; ties break to the lowest index
    (the deterministic tie-break GPU tree reductions are built to preserve)."""
    dev, dtype, w = _prep(x)
    idx, val = argmin_host(x)
    _charge_tree(dev, "reduce.argmin", x.size, w, dtype, pair=True)
    dev._record_transfer("dtoh", 2 * w)
    return idx, val


def argmax_abs(x: DeviceArray) -> tuple[int, float]:
    """(index, |value|max) — the pivot-magnitude reduction."""
    dev, dtype, w = _prep(x)
    a = np.abs(x.data)
    idx = int(np.argmax(a))
    val = float(a[idx])
    _charge_tree(dev, "reduce.argmax_abs", x.size, w, dtype, pair=True)
    dev._record_transfer("dtoh", 2 * w)
    return idx, val


def argmin_where(x: DeviceArray, mask: DeviceArray) -> tuple[int, float]:
    """Arg-min restricted to positions where ``mask`` is non-zero.

    Returns ``(NO_INDEX, inf)`` when the candidate set is empty — the
    unboundedness signal of the ratio test.  The mask read makes the kernel
    mildly divergent (inactive lanes idle while active lanes compare).
    """
    dev, dtype, w = _prep(x)
    require_device_array("mask", mask)
    require_vector("mask", mask, x.size)
    require_same_device(x, mask)

    m = mask.data != 0
    if not m.any():
        idx, val = NO_INDEX, float("inf")
    else:
        candidates = np.where(m)[0]
        local = int(np.argmin(x.data[candidates]))
        idx = int(candidates[local])
        val = float(x.data[idx])
    _charge_tree(dev, "reduce.argmin_where", x.size, w, dtype, pair=True)
    dev._record_transfer("dtoh", 2 * w)
    return idx, val


def first_index_below(x: DeviceArray, threshold: float) -> int:
    """Smallest index i with x[i] < threshold, or ``NO_INDEX``.

    This is Bland's entering-variable rule as a min-index reduction: map
    each qualifying element to its index (others to +inf) and take the min.
    """
    dev, dtype, w = _prep(x)
    idx = first_below_host(x, threshold)
    _charge_tree(dev, "reduce.first_below", x.size, w, dtype, flops_per_elem=1.0)
    dev._record_transfer("dtoh", 4)
    return idx


def count_below(x: DeviceArray, threshold: float) -> int:
    """Number of elements strictly below ``threshold`` (a sum reduction over
    a predicate map) — used for optimality detection and stall diagnostics."""
    dev, dtype, w = _prep(x)
    result = int(np.count_nonzero(x.data < dtype.type(threshold)))
    _charge_tree(dev, "reduce.count_below", x.size, w, dtype)
    dev._record_transfer("dtoh", 4)
    return result


# ---------------------------------------------------------------------------
# scan / compaction
# ---------------------------------------------------------------------------


def inclusive_scan(x: DeviceArray, out: DeviceArray) -> None:
    """out := inclusive prefix sum of x (Blelloch scan: ~2 sweeps).

    Charged as two passes over the data (up-sweep + down-sweep).
    """
    dev, dtype, w = _prep(x)
    require_device_array("out", out)
    require_vector("out", out, x.size)
    require_same_device(x, out)
    n = x.size

    def body() -> None:
        np.cumsum(x.data, out=out.data)

    for phase in ("reduce.scan_up", "reduce.scan_down"):
        dev.launch(
            phase,
            body if phase == "reduce.scan_down" else (lambda: None),
            OpCost(flops=n, bytes_read=n * w, bytes_written=n * w, threads=max(1, n // 2)),
            dtype=dtype,
        )


def compact_indices(mask: DeviceArray) -> np.ndarray:
    """Stream compaction: host array of indices where mask is non-zero.

    Implemented as scan + scatter on the device; the compacted index list is
    then transferred to the host (charged at its actual size).
    """
    dev, dtype, w = _prep(mask)
    n = mask.size
    hits = np.where(mask.data != 0)[0].astype(np.int64)
    # scan pass
    for phase in ("reduce.scan_up", "reduce.scan_down"):
        dev.launch(
            phase,
            lambda: None,
            OpCost(flops=n, bytes_read=n * w, bytes_written=n * 4, threads=max(1, n // 2)),
            dtype=dtype,
        )
    # scatter pass
    dev.launch(
        "reduce.scatter",
        lambda: None,
        OpCost(
            bytes_read=n * 4,
            bytes_written=max(1, hits.size) * 8,
            threads=max(1, n),
            coalesced_fraction=0.5,
        ),
        dtype=dtype,
    )
    dev._record_transfer("dtoh", max(1, hits.size) * 8)
    return hits

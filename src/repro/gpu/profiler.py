"""Kernel-timeline profiler for the simulated device.

Wraps a :class:`~repro.gpu.device.Device` and records every kernel launch
and transfer as a timeline event (name, start, duration on the simulated
clock).  The result renders as an ASCII profile or exports to the Chrome
trace-event JSON format (`chrome://tracing` / Perfetto), mirroring how a
CUDA developer would inspect the solver with nvprof.

Usage::

    dev = Device()
    with profile(dev) as prof:
        solver = GpuRevisedSimplex(options, device=dev)
        solver.solve(lp)
    print(prof.summary())
    prof.to_chrome_trace("/tmp/solve.json")
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
from pathlib import Path
from typing import Iterator

from repro.gpu.device import Device
from repro.perfmodel.ops import OpCost


@dataclasses.dataclass(frozen=True)
class TimelineEvent:
    """One kernel launch or transfer on the device timeline."""

    name: str
    start: float  # device clock at launch, seconds
    duration: float
    kind: str  # 'kernel' | 'transfer'
    flops: float = 0.0
    bytes: float = 0.0

    @property
    def end(self) -> float:
        return self.start + self.duration


class Profile:
    """Recorded timeline plus report helpers."""

    def __init__(self) -> None:
        self.events: list[TimelineEvent] = []

    # -- recording (called by the instrumented device) ----------------------

    def _record(self, event: TimelineEvent) -> None:
        self.events.append(event)

    # -- queries -------------------------------------------------------------

    @property
    def total_time(self) -> float:
        """Busy device time: the union of event intervals.

        Events from concurrent streams overlap on the clock, so summing
        durations would count the overlapped spans twice.
        """
        intervals = sorted((e.start, e.end) for e in self.events)
        busy = 0.0
        cur_start = cur_end = None
        for start, end in intervals:
            if cur_end is None or start > cur_end:
                if cur_end is not None:
                    busy += cur_end - cur_start
                cur_start, cur_end = start, end
            else:
                cur_end = max(cur_end, end)
        if cur_end is not None:
            busy += cur_end - cur_start
        return busy

    def by_name(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for e in self.events:
            out[e.name] = out.get(e.name, 0.0) + e.duration
        return out

    def kernels(self) -> list[TimelineEvent]:
        return [e for e in self.events if e.kind == "kernel"]

    def transfers(self) -> list[TimelineEvent]:
        return [e for e in self.events if e.kind == "transfer"]

    def gaps(self) -> float:
        """Idle device time between consecutive events (host think time —
        zero here since the simulated device serialises, but kept for API
        fidelity with real profilers)."""
        total_span = self.events[-1].end - self.events[0].start if self.events else 0.0
        return max(0.0, total_span - self.total_time)

    # -- reports -----------------------------------------------------------

    def summary(self, top: int = 12) -> str:
        lines = [
            f"profile: {len(self.events)} events, "
            f"{self.total_time * 1e3:.3f} ms device time "
            f"({len(self.kernels())} kernels, {len(self.transfers())} transfers)"
        ]
        totals = sorted(self.by_name().items(), key=lambda kv: -kv[1])
        width = max((len(n) for n, _ in totals[:top]), default=4)
        for name, seconds in totals[:top]:
            pct = 100.0 * seconds / self.total_time if self.total_time else 0.0
            bar = "#" * int(round(pct / 2))
            lines.append(f"  {name:<{width}} {seconds * 1e3:9.3f} ms {pct:5.1f}% {bar}")
        return "\n".join(lines)

    def to_chrome_trace(self, target: "str | Path | None" = None) -> str:
        """Serialise to the Chrome trace-event JSON format (microseconds)."""
        events = [
            {
                "name": e.name,
                "ph": "X",
                "ts": e.start * 1e6,
                "dur": e.duration * 1e6,
                "pid": 0,
                "tid": 0 if e.kind == "kernel" else 1,
                "cat": e.kind,
                "args": {"flops": e.flops, "bytes": e.bytes},
            }
            for e in self.events
        ]
        text = json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})
        if target is not None:
            Path(target).write_text(text)
        return text


@contextlib.contextmanager
def profile(device: Device) -> Iterator[Profile]:
    """Instrument a device for the duration of the block.

    Wraps ``Device.launch`` and the transfer recorder; restores the
    originals on exit, so profiling has no lasting effect on the device.
    """
    prof = Profile()
    original_launch = device.launch
    original_transfer = device._record_transfer
    original_memset = device.memset

    def launch(name: str, body, cost: OpCost, **kwargs):
        # Forward keywords verbatim: re-packing a fixed subset here silently
        # dropped any keyword added to Device.launch after this wrapper was
        # written, making profiled and unprofiled runs diverge.
        start = device.clock
        result = original_launch(name, body, cost, **kwargs)
        prof._record(
            TimelineEvent(
                name=name, start=start, duration=device.clock - start,
                kind="kernel", flops=cost.flops, bytes=cost.bytes_total,
            )
        )
        return result

    def record_transfer(direction: str, nbytes: int) -> float:
        start = device.clock
        seconds = original_transfer(direction, nbytes)
        prof._record(
            TimelineEvent(
                name=f"memcpy.{direction}", start=start,
                duration=device.clock - start, kind="transfer", bytes=nbytes,
            )
        )
        return seconds

    def memset(arr, value: int) -> None:
        start = device.clock
        original_memset(arr, value)
        prof._record(
            TimelineEvent(
                name="memset", start=start, duration=device.clock - start,
                kind="kernel", bytes=arr.nbytes,
            )
        )

    device.launch = launch  # type: ignore[method-assign]
    device._record_transfer = record_transfer  # type: ignore[method-assign]
    device.memset = memset  # type: ignore[method-assign]
    try:
        yield prof
    finally:
        device.launch = original_launch  # type: ignore[method-assign]
        device._record_transfer = original_transfer  # type: ignore[method-assign]
        device.memset = original_memset  # type: ignore[method-assign]

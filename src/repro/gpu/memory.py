"""Device-resident arrays and host↔device transfers.

A :class:`DeviceArray` wraps a NumPy backing store that plays the role of
device global memory.  The intent of the CUDA address-space split is
enforced at the API level: host code may only move data with the explicit
transfer methods (each charged PCIe time by the cost model), while kernels —
and only kernels — touch ``.data`` directly.

The class deliberately implements **no arithmetic operators**: as on a real
GPU, you cannot add two device pointers from the host; you launch a kernel
(see :mod:`repro.gpu.blas`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import DeviceArrayError

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.device import Device


class DeviceArray:
    """An array living in the simulated device's global memory.

    Create through :meth:`Device.alloc`, :meth:`Device.zeros` or
    :meth:`Device.to_device`; never construct directly in user code.
    """

    __slots__ = ("device", "_data", "_freed")

    def __init__(self, device: "Device", data: np.ndarray):
        self.device = device
        self._data = data
        self._freed = False

    # -- structural properties --------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self._data.shape

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    @property
    def size(self) -> int:
        return self._data.size

    @property
    def ndim(self) -> int:
        return self._data.ndim

    @property
    def nbytes(self) -> int:
        return self._data.nbytes

    @property
    def itemsize(self) -> int:
        return self._data.dtype.itemsize

    # -- device-side access (kernels only) ---------------------------------

    @property
    def data(self) -> np.ndarray:
        """The device-resident backing store.

        Only kernel bodies (functions passed to :meth:`Device.launch`) and
        the transfer methods may touch this; host code reading it directly
        is the simulation-world equivalent of dereferencing a device pointer
        on the host.
        """
        self._check_live()
        return self._data

    def _check_live(self) -> None:
        if self._freed:
            raise DeviceArrayError("use of freed device array")

    # -- lifetime -----------------------------------------------------------

    def free(self) -> None:
        """Release the allocation (``cudaFree``); idempotent is an error."""
        self._check_live()
        self.device._release(self.nbytes)
        self._freed = True
        self._data = np.empty(0, dtype=self._data.dtype)

    @property
    def is_freed(self) -> bool:
        return self._freed

    # -- transfers -----------------------------------------------------------

    def copy_from_host(self, host: np.ndarray) -> float:
        """HtoD ``cudaMemcpy``; returns modeled transfer seconds."""
        self._check_live()
        host = np.asarray(host, dtype=self.dtype)
        if host.shape != self.shape:
            raise DeviceArrayError(
                f"HtoD shape mismatch: host {host.shape} vs device {self.shape}"
            )
        self._data[...] = host
        return self.device._record_transfer("htod", self.nbytes)

    def copy_to_host(self, out: np.ndarray | None = None) -> np.ndarray:
        """DtoH ``cudaMemcpy``; returns a host copy of the array."""
        self._check_live()
        if out is not None:
            if out.shape != self.shape or out.dtype != self.dtype:
                raise DeviceArrayError("DtoH output buffer mismatch")
            out[...] = self._data
            result = out
        else:
            result = self._data.copy()
        self.device._record_transfer("dtoh", self.nbytes)
        return result

    def copy_from_device(self, src: "DeviceArray") -> float:
        """DtoD ``cudaMemcpy``; both arrays must live on the same device."""
        self._check_live()
        src._check_live()
        if src.device is not self.device:
            raise DeviceArrayError("DtoD copy across devices is not supported")
        if src.shape != self.shape or src.dtype != self.dtype:
            raise DeviceArrayError(
                f"DtoD mismatch: {src.shape}/{src.dtype} vs {self.shape}/{self.dtype}"
            )
        self._data[...] = src._data
        return self.device._record_transfer("dtod", self.nbytes)

    def set_scalar(self, index: int | tuple[int, ...], value: float) -> None:
        """Write one element from the host (latency-dominated 4/8-byte HtoD).

        Used for the per-pivot metadata updates (cost of the new basic
        variable, eligibility mask bits) that a GPU simplex keeps device-
        resident but mutates from host control flow.
        """
        self._check_live()
        self._data[index] = value
        self.device._record_transfer("htod", self.itemsize)

    def scalar_to_host(self, index: int | tuple[int, ...] = 0) -> float:
        """Read one element back to the host (latency-dominated 4/8-byte DtoH).

        The per-iteration scalar reads (chosen pivot column/row, objective
        value) are a real cost of GPU simplex implementations; they are
        charged PCIe latency here just as on hardware.
        """
        self._check_live()
        value = self._data[index]
        self.device._record_transfer("dtoh", self.itemsize)
        return value.item() if hasattr(value, "item") else value

    # -- misc -----------------------------------------------------------------

    def __len__(self) -> int:
        return self.shape[0] if self.ndim else 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "freed" if self._freed else "live"
        return f"<DeviceArray {self.shape} {self.dtype} {state}>"

"""Kernel launch configuration for the simulated device.

Mirrors the CUDA execution configuration ``<<<grid, block>>>``: callers pick
a block size, the helper derives the grid size covering ``n`` work items, and
the device validates the configuration against hardware limits at launch.
"""

from __future__ import annotations

import dataclasses

from repro.errors import InvalidLaunchError
from repro.perfmodel.gpu_model import GpuModelParams

#: Default block size used by the solver kernels; 256 threads gives full
#: occupancy granularity on every modeled device.
DEFAULT_BLOCK = 256


@dataclasses.dataclass(frozen=True)
class LaunchConfig:
    """A validated (grid, block) pair covering ``threads`` work items."""

    grid: int
    block: int
    threads: int

    @property
    def launched_threads(self) -> int:
        """Threads actually launched (grid × block ≥ threads)."""
        return self.grid * self.block

    @property
    def idle_threads(self) -> int:
        """Launched threads beyond the work size (guard-clause threads)."""
        return self.launched_threads - self.threads


def launch_config(
    threads: int,
    block: int = DEFAULT_BLOCK,
    params: GpuModelParams | None = None,
) -> LaunchConfig:
    """Derive the grid size for ``threads`` work items at the given block size.

    Raises :class:`InvalidLaunchError` for non-positive sizes or a block
    exceeding the device limit.
    """
    if threads < 1:
        raise InvalidLaunchError(f"kernel must launch at least 1 thread, got {threads}")
    if block < 1:
        raise InvalidLaunchError(f"block size must be positive, got {block}")
    if params is not None and block > params.max_threads_per_block:
        raise InvalidLaunchError(
            f"block size {block} exceeds device limit "
            f"{params.max_threads_per_block} ({params.name})"
        )
    grid = -(-threads // block)
    return LaunchConfig(grid=grid, block=block, threads=threads)

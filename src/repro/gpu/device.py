"""The simulated SIMT device: clock, allocator, launch path, statistics.

A :class:`Device` owns

- a **simulated clock** advanced by the analytic cost model on every kernel
  launch and memory transfer (this is the "GPU time" the benchmarks report);
- an **allocator** tracking live device memory against the modeled card's
  global-memory capacity;
- **statistics**: per-kernel launch counts, modeled seconds, FLOPs and bytes,
  plus transfer totals — the source of the paper's kernel-breakdown figure.

Functionally, kernels execute real NumPy work on the arrays' device-resident
backing store, so results are exact while time is modeled.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Callable, Iterator

import numpy as np

from repro.errors import DeviceMemoryError, InvalidLaunchError
from repro.gpu.kernel import DEFAULT_BLOCK, launch_config
from repro.gpu.memory import DeviceArray
from repro.metrics import instrument as _metrics
from repro.perfmodel.gpu_model import GpuCostModel, GpuModelParams
from repro.perfmodel.ops import OpCost
from repro.perfmodel.presets import GTX280_PARAMS


@dataclasses.dataclass(frozen=True)
class TimelineEvent:
    """One entry of the optional device timeline (see
    :meth:`Device.record_timeline`).

    ``kind`` is the engine the event occupies: ``"kernel"`` and ``"dtod"``
    run on the device (SMs / memory system), ``"htod"`` and ``"dtoh"`` on
    the PCIe copy engine.  ``threads`` is the logical work size of kernel
    events (0 for transfers) — the batch scheduler uses it to estimate how
    much of the device a kernel actually occupies when launches from
    several LP streams are interleaved.

    ``start`` is the event's begin time on the device's modeled clock.
    The device itself serialises work, so for device-recorded events the
    starts are head-to-tail; schedule replays (stream-interleaved
    :class:`~repro.batch.scheduler.ConcurrentSchedule` windows) construct
    events with *overlapping* starts, which the Chrome exporter honors.
    ``None`` (legacy events) means "unknown": consumers fall back to a
    cumulative sum.
    """

    kind: str
    name: str
    seconds: float
    threads: int = 0
    nbytes: int = 0
    start: "float | None" = None


@dataclasses.dataclass(frozen=True)
class CapturedLaunch:
    """One kernel launch recorded (not executed) during plan capture.

    :mod:`repro.gpu.plan` begins a capture, lets the backend issue its
    ordinary :mod:`repro.gpu.blas` / kernel calls, then lowers the captured
    sequence — fusing adjacent ``fusable`` launches into one launch whose
    cost is :meth:`OpCost.fuse` of the parts.  ``reads``/``writes`` hold
    ``id()`` tokens of the operand buffers so the planner can deduplicate
    the global-memory reads a fused group keeps in registers, and
    ``operand_bytes`` maps each token to that operand's size.
    """

    name: str
    body: Callable[[], None]
    cost: OpCost
    dtype: np.dtype
    block: int
    fusable: bool
    reads: tuple[int, ...]
    writes: tuple[int, ...]
    operand_bytes: "dict[int, int]"


@dataclasses.dataclass
class KernelRecord:
    """Aggregate statistics of one kernel (by name)."""

    launches: int = 0
    seconds: float = 0.0
    flops: float = 0.0
    bytes: float = 0.0

    def add(self, seconds: float, cost: OpCost) -> None:
        self.launches += 1
        self.seconds += seconds
        self.flops += cost.flops
        self.bytes += cost.bytes_total


@dataclasses.dataclass
class DeviceStats:
    """Cumulative device statistics since creation or :meth:`reset`."""

    kernel_launches: int = 0
    kernel_seconds: float = 0.0
    by_kernel: dict[str, KernelRecord] = dataclasses.field(default_factory=dict)
    htod_bytes: int = 0
    dtoh_bytes: int = 0
    dtod_bytes: int = 0
    transfer_seconds: float = 0.0
    allocations: int = 0
    frees: int = 0
    bytes_in_use: int = 0
    peak_bytes_in_use: int = 0
    sections: dict[str, float] = dataclasses.field(default_factory=dict)

    def record_kernel(self, name: str, seconds: float, cost: OpCost) -> None:
        self.kernel_launches += 1
        self.kernel_seconds += seconds
        rec = self.by_kernel.setdefault(name, KernelRecord())
        rec.add(seconds, cost)

    def kernel_breakdown(self) -> dict[str, float]:
        """Kernel name -> modeled seconds (copy)."""
        return {name: rec.seconds for name, rec in self.by_kernel.items()}

    def reset(self) -> None:
        live = self.bytes_in_use  # allocations survive a stats reset
        self.__init__()  # type: ignore[misc]
        self.bytes_in_use = live
        self.peak_bytes_in_use = live


class Device:
    """A simulated CUDA-class device.

    Parameters
    ----------
    params:
        Hardware model parameters; defaults to the paper's GTX 280.
    enforce_memory_limit:
        When True (default), allocating past the modeled card's global
        memory raises :class:`DeviceMemoryError`, exactly like ``cudaMalloc``
        returning ``cudaErrorMemoryAllocation``.
    """

    def __init__(
        self,
        params: GpuModelParams = GTX280_PARAMS,
        *,
        enforce_memory_limit: bool = True,
    ):
        self.params = params
        self.model = GpuCostModel(params)
        self.enforce_memory_limit = enforce_memory_limit
        self.clock = 0.0
        self.stats = DeviceStats()
        self._section_stack: list[tuple[str, float]] = []
        #: Optional event timeline (``None`` unless :meth:`record_timeline`
        #: enabled it).  Cleared together with the stats on
        #: :meth:`reset_stats`, so between two resets it holds exactly the
        #: events of the work executed in between (one solve, typically).
        self.timeline: list[TimelineEvent] | None = None
        #: Active plan-capture buffer (``None`` = normal execution).  While
        #: set, :meth:`launch` records instead of executing; see
        #: :mod:`repro.gpu.plan`.
        self._capture: list[CapturedLaunch] | None = None

    def record_timeline(self, enable: bool = True) -> None:
        """Start (or stop) recording every kernel launch and transfer as a
        :class:`TimelineEvent`.  The batch scheduler replays these timelines
        to model stream-interleaved execution of several LPs."""
        self.timeline = [] if enable else None

    # ------------------------------------------------------------------
    # memory management
    # ------------------------------------------------------------------

    def alloc(self, shape, dtype=np.float32) -> DeviceArray:
        """Allocate an uninitialised device array (``cudaMalloc``)."""
        dtype = np.dtype(dtype)
        shape = (shape,) if np.isscalar(shape) else tuple(int(s) for s in shape)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        self._reserve(nbytes)
        data = np.empty(shape, dtype=dtype)
        return DeviceArray(self, data)

    def zeros(self, shape, dtype=np.float32) -> DeviceArray:
        """Allocate and zero-fill (``cudaMalloc`` + ``cudaMemset``)."""
        arr = self.alloc(shape, dtype)
        self.memset(arr, 0)
        return arr

    def to_device(self, host: np.ndarray, dtype=None) -> DeviceArray:
        """Allocate on device and copy a host array in (HtoD transfer)."""
        host = np.asarray(host)
        if dtype is not None:
            host = host.astype(dtype, copy=False)
        if host.dtype == np.float16 or not np.issubdtype(host.dtype, np.number):
            raise TypeError(f"unsupported device dtype {host.dtype}")
        arr = self.alloc(host.shape, host.dtype)
        arr.copy_from_host(host)
        return arr

    def memset(self, arr: DeviceArray, value: int) -> None:
        """``cudaMemset``: fill with a byte value (0 fills with zeros)."""
        if self._capture is not None:
            raise InvalidLaunchError(
                "memset inside a plan capture is not supported; use "
                "blas.fill (a capturable kernel) in plan sections"
            )
        arr._check_live()
        arr.data.fill(value)
        seconds = self.model.dtod_time(arr.nbytes) / 2.0  # write-only traffic
        self._advance(seconds)
        cost = OpCost(bytes_written=arr.nbytes, threads=max(1, arr.size))
        self.stats.record_kernel("memset", seconds, cost)
        _metrics.record_kernel_launch(
            "memset", seconds, cost,
            self.model.fill_factor(cost.threads, DEFAULT_BLOCK),
        )
        if self.timeline is not None:
            self.timeline.append(
                TimelineEvent(
                    "kernel", "memset", seconds,
                    threads=max(1, arr.size), nbytes=arr.nbytes,
                    start=self.clock - seconds,
                )
            )

    def _reserve(self, nbytes: int) -> None:
        limit = self.params.global_mem_bytes
        if (
            self.enforce_memory_limit
            and self.stats.bytes_in_use + nbytes > limit
        ):
            raise DeviceMemoryError(
                f"device OOM on {self.params.name}: requested {nbytes} B with "
                f"{self.stats.bytes_in_use} B in use of {limit} B"
            )
        self.stats.allocations += 1
        self.stats.bytes_in_use += nbytes
        self.stats.peak_bytes_in_use = max(
            self.stats.peak_bytes_in_use, self.stats.bytes_in_use
        )
        _metrics.record_allocation(nbytes, self.stats.bytes_in_use)

    def _release(self, nbytes: int) -> None:
        self.stats.frees += 1
        self.stats.bytes_in_use -= nbytes
        _metrics.record_free(nbytes, self.stats.bytes_in_use)

    # ------------------------------------------------------------------
    # kernel launch
    # ------------------------------------------------------------------

    def launch(
        self,
        name: str,
        body: Callable[[], None],
        cost: OpCost,
        *,
        dtype=np.float32,
        block: int = DEFAULT_BLOCK,
        fusable: bool = False,
        reads: tuple = (),
        writes: tuple = (),
    ) -> None:
        """Launch a kernel: run ``body`` functionally, advance the clock.

        ``cost.threads`` is the logical work size; the launch configuration
        (grid size) is derived from it and validated against device limits.

        ``fusable`` marks elementwise/map kernels the plan lowerer may fold
        into a neighbouring launch; ``reads``/``writes`` name the operand
        :class:`~repro.gpu.memory.DeviceArray` buffers so fusion can count
        shared operands' global-memory traffic once.  All three are ignored
        outside a plan capture.
        """
        cfg = launch_config(cost.threads, block, self.params)
        if cfg.grid > 65535 * 65535:  # 2D grid limit of the modeled hardware
            raise InvalidLaunchError(f"grid of {cfg.grid} blocks exceeds device limits")
        if self._capture is not None:
            operand_bytes = {
                id(a): int(a.nbytes) for a in (*reads, *writes)
            }
            self._capture.append(
                CapturedLaunch(
                    name=name, body=body, cost=cost, dtype=np.dtype(dtype),
                    block=block, fusable=fusable,
                    reads=tuple(id(a) for a in reads),
                    writes=tuple(id(a) for a in writes),
                    operand_bytes=operand_bytes,
                )
            )
            return
        body()
        seconds = self.model.kernel_time(cost, np.dtype(dtype), cfg.block)
        self._advance(seconds)
        self.stats.record_kernel(name, seconds, cost)
        _metrics.record_kernel_launch(
            name, seconds, cost, self.model.fill_factor(cost.threads, cfg.block)
        )
        if self.timeline is not None:
            self.timeline.append(
                TimelineEvent(
                    "kernel", name, seconds,
                    threads=cost.threads, nbytes=int(cost.bytes_total),
                    start=self.clock - seconds,
                )
            )

    # ------------------------------------------------------------------
    # plan capture (driven by repro.gpu.plan)
    # ------------------------------------------------------------------

    def _begin_capture(self) -> list[CapturedLaunch]:
        """Start recording launches instead of executing them.  Returns the
        capture buffer the plan lowerer consumes.  Nested captures are a
        programming error."""
        if self._capture is not None:
            raise InvalidLaunchError("nested plan capture")
        self._capture = []
        return self._capture

    def _end_capture(self) -> list[CapturedLaunch]:
        """Stop capturing; returns the recorded launch sequence."""
        if self._capture is None:
            raise InvalidLaunchError("no plan capture active")
        buf, self._capture = self._capture, None
        return buf

    # ------------------------------------------------------------------
    # transfers (called by DeviceArray; accounted here)
    # ------------------------------------------------------------------

    def _record_transfer(self, direction: str, nbytes: int) -> float:
        if self._capture is not None:
            raise InvalidLaunchError(
                "host transfer inside a plan capture: captured kernel bodies "
                "have not executed yet, so a transfer here would read or "
                "write stale device data — end the plan section first"
            )
        if direction == "dtod":
            seconds = self.model.dtod_time(nbytes)
            self.stats.dtod_bytes += nbytes
        else:
            seconds = self.model.transfer_time(nbytes)
            if direction == "htod":
                self.stats.htod_bytes += nbytes
            else:
                self.stats.dtoh_bytes += nbytes
        self.stats.transfer_seconds += seconds
        self._advance(seconds)
        _metrics.record_transfer(direction, nbytes, seconds)
        if self.timeline is not None:
            self.timeline.append(
                TimelineEvent(
                    direction, "transfer", seconds, nbytes=nbytes,
                    start=self.clock - seconds,
                )
            )
        return seconds

    # ------------------------------------------------------------------
    # clock and sections
    # ------------------------------------------------------------------

    def _advance(self, seconds: float) -> None:
        self.clock += seconds

    def synchronize(self) -> float:
        """``cudaDeviceSynchronize``; returns the current device time."""
        return self.clock

    @contextlib.contextmanager
    def timed_section(self, name: str) -> Iterator[None]:
        """Accumulate the device time spent inside the block under ``name``.

        Used by the solver to attribute kernel time to algorithm phases
        (pricing / ftran / ratio-test / update) for the breakdown figure.
        """
        start = self.clock
        try:
            yield
        finally:
            delta = self.clock - start
            self.stats.sections[name] = self.stats.sections.get(name, 0.0) + delta

    def reset_stats(self) -> None:
        """Zero the statistics, the clock and any recorded timeline;
        allocations stay live."""
        self.stats.reset()
        self.clock = 0.0
        if self.timeline is not None:
            self.timeline = []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Device {self.params.name!r} clock={self.clock:.6f}s "
            f"mem={self.stats.bytes_in_use}/{self.params.global_mem_bytes}B>"
        )

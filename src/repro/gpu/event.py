"""CUDA-event-style timing on the simulated device clock.

Mirrors the ``cudaEventRecord`` / ``cudaEventElapsedTime`` idiom the paper's
measurements would use.  Streams are provided for API fidelity; the simulated
device executes a single in-order stream, which matches how the solver uses
the hardware (each simplex step depends on the previous one).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import DeviceError

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.device import Device


class Event:
    """Records a point on the device timeline."""

    def __init__(self, device: "Device"):
        self.device = device
        self._time: float | None = None

    def record(self) -> "Event":
        """Capture the current device time; returns self for chaining."""
        self._time = self.device.clock
        return self

    @property
    def is_recorded(self) -> bool:
        return self._time is not None

    @property
    def time(self) -> float:
        if self._time is None:
            raise DeviceError("event queried before being recorded")
        return self._time

    def elapsed_since(self, earlier: "Event") -> float:
        """Seconds between ``earlier`` and this event (``cudaEventElapsedTime``,
        but in seconds rather than milliseconds)."""
        if earlier.device is not self.device:
            raise DeviceError("events recorded on different devices")
        return self.time - earlier.time


class Stream:
    """An in-order execution stream.

    The simulated device is single-stream; this class exists so code
    structured around streams ports verbatim.  ``synchronize`` returns the
    device clock like :meth:`Device.synchronize`.
    """

    def __init__(self, device: "Device"):
        self.device = device

    def synchronize(self) -> float:
        return self.device.synchronize()

    def event(self) -> Event:
        return Event(self.device).record()


def elapsed(device: "Device", start: Event, end: Event | None = None) -> float:
    """Convenience: seconds from ``start`` to ``end`` (or to *now*)."""
    if end is None:
        end = Event(device).record()
    return end.elapsed_since(start)

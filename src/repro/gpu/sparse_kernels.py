"""Device-resident sparse matrices and SpMV kernels.

The sparse path of the GPU solver keeps the constraint matrix on the device
in CSC form (column extraction per iteration) and prices with a
CSR-transpose SpMV.  Kernels follow the scalar-CSR mapping (one thread per
row) with the classic partially-coalesced access pattern of index-driven
gathers; cost accounting reflects that (``coalesced_fraction < 1``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DeviceArrayError
from repro.gpu.device import Device
from repro.gpu.memory import DeviceArray
from repro.perfmodel.ops import OpCost
from repro.sparse.base import segment_sums
from repro.sparse.csc import CscMatrix
from repro.sparse.csr import CsrMatrix

#: Index width on the device (32-bit, as real sparse GPU kernels use).
INDEX_BYTES = 4


class DeviceCsrMatrix:
    """A CSR matrix resident in device memory (three device arrays)."""

    def __init__(self, device: Device, host: CsrMatrix, dtype=np.float32):
        self.shape = host.shape
        self.nnz = host.nnz
        self.dtype = np.dtype(dtype)
        self.device = device
        try:
            self.indptr = device.to_device(host.indptr.astype(np.int32))
            self.indices = device.to_device(host.indices.astype(np.int32))
            self.data = device.to_device(host.data.astype(self.dtype))
        except Exception:
            for name in ("indptr", "indices", "data"):
                arr = getattr(self, name, None)
                if arr is not None and not arr.is_freed:
                    arr.free()
            raise

    @property
    def nbytes(self) -> int:
        return self.indptr.nbytes + self.indices.nbytes + self.data.nbytes

    def free(self) -> None:
        self.indptr.free()
        self.indices.free()
        self.data.free()

    def to_host(self) -> CsrMatrix:
        return CsrMatrix(
            self.shape,
            self.indptr.copy_to_host().astype(np.int64),
            self.indices.copy_to_host().astype(np.int64),
            self.data.copy_to_host().astype(np.float64),
        )


class DeviceCscMatrix:
    """A CSC matrix resident in device memory."""

    def __init__(self, device: Device, host: CscMatrix, dtype=np.float32):
        self.shape = host.shape
        self.nnz = host.nnz
        self.dtype = np.dtype(dtype)
        self.device = device
        #: Host-resident mirror of the column pointers, captured at upload.
        #: Real sparse GPU codes keep the pointer array on the host for
        #: exactly this: the launch parameters of a column scatter (lo, hi)
        #: are host scalars, and reading them from device memory would
        #: either cost a DtoH transfer per column or — as the old code did
        #: by peeking at ``self.indptr.data`` — silently bypass the device
        #: cost model.
        self.host_indptr = host.indptr.astype(np.int64, copy=True)
        try:
            self.indptr = device.to_device(host.indptr.astype(np.int32))
            self.indices = device.to_device(host.indices.astype(np.int32))
            self.data = device.to_device(host.data.astype(self.dtype))
        except Exception:
            for name in ("indptr", "indices", "data"):
                arr = getattr(self, name, None)
                if arr is not None and not arr.is_freed:
                    arr.free()
            raise

    @property
    def nbytes(self) -> int:
        return self.indptr.nbytes + self.indices.nbytes + self.data.nbytes

    def free(self) -> None:
        self.indptr.free()
        self.indices.free()
        self.data.free()

    def getcol_device(self, j: int, out: DeviceArray) -> int:
        """Scatter column j into the dense device vector ``out``.

        Returns the column's nnz.  Two kernels on hardware: a fill and a
        scatter over the column's entries.
        """
        if not 0 <= j < self.shape[1]:
            raise DeviceArrayError(f"column {j} out of range for {self.shape}")
        if out.shape != (self.shape[0],):
            raise DeviceArrayError("output vector has wrong length")
        dev = self.device
        w = out.itemsize
        lo = int(self.host_indptr[j])
        hi = int(self.host_indptr[j + 1])
        col_nnz = hi - lo

        dev.launch(
            "sparse.fill_zero",
            lambda: out.data.fill(0),
            OpCost(bytes_written=out.nbytes, threads=max(1, out.size)),
            dtype=self.dtype,
            fusable=True,
            writes=(out,),
        )

        def scatter() -> None:
            rows = self.indices.data[lo:hi]
            out.data[rows] = self.data.data[lo:hi]

        dev.launch(
            "sparse.scatter_col",
            scatter,
            OpCost(
                bytes_read=col_nnz * (w + INDEX_BYTES) + 2 * INDEX_BYTES,
                bytes_written=col_nnz * w,
                threads=max(1, col_nnz),
                coalesced_fraction=0.25,  # scattered row-index writes
            ),
            dtype=self.dtype,
            fusable=True,
            writes=(out,),
        )
        return col_nnz


def spmv_csr(a: DeviceCsrMatrix, x: DeviceArray, y: DeviceArray) -> None:
    """y := A x for device CSR A (scalar kernel: one thread per row)."""
    m, n = a.shape
    if x.shape != (n,) or y.shape != (m,):
        raise DeviceArrayError(
            f"spmv_csr shapes: A {a.shape}, x {x.shape}, y {y.shape}"
        )
    dev = a.device
    w = x.itemsize

    def body() -> None:
        host = a  # device-resident structure
        prods = host.data.data.astype(np.float64) * x.data[host.indices.data]
        y.data[:] = segment_sums(prods, host.indptr.data).astype(y.dtype)

    cost = OpCost(
        flops=2 * a.nnz,
        bytes_read=a.nnz * (w + INDEX_BYTES)  # values + column ids
        + (m + 1) * INDEX_BYTES  # row pointers
        + a.nnz * w,  # gathered x values (uncoalesced)
        bytes_written=m * w,
        threads=max(1, m),
        coalesced_fraction=0.6,
    )
    dev.launch(
        "sparse.spmv_csr", body, cost, dtype=a.dtype, reads=(x,), writes=(y,)
    )


def spmv_csc_t(a: DeviceCscMatrix, x: DeviceArray, y: DeviceArray) -> None:
    """y := Aᵀ x for device CSC A.

    A CSC matrix read column-by-column *is* the CSR of Aᵀ, so this is the
    scalar-CSR kernel with one thread per column of A — the pricing kernel's
    access pattern (reduced cost of every nonbasic column in one launch).
    """
    m, n = a.shape
    if x.shape != (m,) or y.shape != (n,):
        raise DeviceArrayError(
            f"spmv_csc_t shapes: A {a.shape}, x {x.shape}, y {y.shape}"
        )
    dev = a.device
    w = x.itemsize

    def body() -> None:
        prods = a.data.data.astype(np.float64) * x.data[a.indices.data]
        y.data[:] = segment_sums(prods, a.indptr.data).astype(y.dtype)

    cost = OpCost(
        flops=2 * a.nnz,
        bytes_read=a.nnz * (w + INDEX_BYTES)
        + (n + 1) * INDEX_BYTES
        + a.nnz * w,
        bytes_written=n * w,
        threads=max(1, n),
        coalesced_fraction=0.6,
    )
    dev.launch(
        "sparse.spmv_csc_t", body, cost, dtype=a.dtype, reads=(x,), writes=(y,)
    )

"""CUDA-style occupancy calculator for the modeled devices.

Given a kernel's resource usage (threads per block, registers per thread,
shared memory per block), computes how many blocks fit on one SM and the
resulting occupancy — the fraction of the SM's resident-warp capacity in
use.  This is the tool CUDA developers use to pick block sizes; here it both
documents the modeled hardware's limits and feeds the block-size advisor
used by tests and examples.

Modeled per-SM limits follow the GT200 generation (compute capability 1.3):

- 32768 registers, allocated per warp at warp-size × registers/thread
  granularity (rounded to 512-register units),
- 16 KiB shared memory in 512-byte allocation units,
- at most 8 resident blocks, 32 resident warps, 1024 resident threads.
"""

from __future__ import annotations

import dataclasses

from repro.errors import InvalidLaunchError
from repro.perfmodel.gpu_model import GpuModelParams
from repro.perfmodel.presets import GTX280_PARAMS

#: Per-SM register file of the GT200 generation.
REGISTERS_PER_SM = 32768
#: Register allocation granularity (units of 512 registers per block).
REGISTER_ALLOC_UNIT = 512
#: Shared-memory allocation granularity.
SHARED_ALLOC_UNIT = 512
#: Maximum resident blocks per SM.
MAX_BLOCKS_PER_SM = 8


@dataclasses.dataclass(frozen=True)
class OccupancyResult:
    """Outcome of an occupancy query."""

    blocks_per_sm: int
    warps_per_sm: int
    threads_per_sm: int
    occupancy: float
    #: Which resource caps blocks_per_sm: 'threads', 'registers',
    #: 'shared_memory', 'blocks'.
    limiter: str

    @property
    def is_full(self) -> bool:
        return self.occupancy >= 1.0 - 1e-12


def occupancy(
    block_threads: int,
    registers_per_thread: int = 16,
    shared_bytes_per_block: int = 0,
    params: GpuModelParams = GTX280_PARAMS,
) -> OccupancyResult:
    """Compute the occupancy of a kernel configuration on a modeled device."""
    if block_threads < 1:
        raise InvalidLaunchError("block must have at least one thread")
    if block_threads > params.max_threads_per_block:
        raise InvalidLaunchError(
            f"block of {block_threads} exceeds device limit "
            f"{params.max_threads_per_block}"
        )
    if registers_per_thread < 0 or shared_bytes_per_block < 0:
        raise InvalidLaunchError("resource usage must be non-negative")

    warp = params.warp_size
    warps_per_block = -(-block_threads // warp)

    # thread / warp limit
    max_warps = params.max_threads_per_sm // warp
    by_threads = max_warps // warps_per_block if warps_per_block else MAX_BLOCKS_PER_SM

    # register limit (allocated per block, rounded up to the unit)
    if registers_per_thread > 0:
        regs_per_block = warps_per_block * warp * registers_per_thread
        regs_per_block = -(-regs_per_block // REGISTER_ALLOC_UNIT) * REGISTER_ALLOC_UNIT
        by_registers = REGISTERS_PER_SM // regs_per_block if regs_per_block else 10**9
    else:
        by_registers = 10**9  # unconstrained

    # shared memory limit
    if shared_bytes_per_block > 0:
        shared = -(-shared_bytes_per_block // SHARED_ALLOC_UNIT) * SHARED_ALLOC_UNIT
        if shared > params.shared_mem_per_block:
            raise InvalidLaunchError(
                f"{shared_bytes_per_block} B shared exceeds the per-block "
                f"limit {params.shared_mem_per_block} B"
            )
        by_shared = params.shared_mem_per_block // shared
    else:
        by_shared = 10**9  # unconstrained

    candidates = {
        "threads": by_threads,
        "registers": by_registers,
        "shared_memory": by_shared,
        "blocks": MAX_BLOCKS_PER_SM,
    }
    blocks = min(candidates.values())
    if blocks == 0:
        # a single block that oversubscribes registers can never launch
        raise InvalidLaunchError(
            "kernel resource usage prevents any block from residing on an SM"
        )
    limiter = min(candidates, key=lambda k: candidates[k])

    warps_resident = blocks * warps_per_block
    return OccupancyResult(
        blocks_per_sm=blocks,
        warps_per_sm=warps_resident,
        threads_per_sm=warps_resident * warp,
        occupancy=min(1.0, warps_resident / max_warps),
        limiter=limiter,
    )


def best_block_size(
    registers_per_thread: int = 16,
    shared_bytes_per_block: int = 0,
    params: GpuModelParams = GTX280_PARAMS,
    candidates: tuple[int, ...] = (64, 128, 192, 256, 384, 512),
) -> tuple[int, OccupancyResult]:
    """Pick the candidate block size with the highest occupancy (ties go to
    the larger block, which amortises block-scheduling overhead)."""
    best: tuple[int, OccupancyResult] | None = None
    for block in candidates:
        if block > params.max_threads_per_block:
            continue
        try:
            result = occupancy(block, registers_per_thread,
                               shared_bytes_per_block, params)
        except InvalidLaunchError:
            continue
        if best is None or (result.occupancy, block) > (best[1].occupancy, best[0]):
            best = (block, result)
    if best is None:
        raise InvalidLaunchError("no candidate block size fits on the device")
    return best

"""Internal argument validation shared by the device kernel modules."""

from __future__ import annotations

import numpy as np

from repro.errors import DeviceArrayError
from repro.gpu.memory import DeviceArray


def require_device_array(name: str, arr: object) -> DeviceArray:
    if not isinstance(arr, DeviceArray):
        raise DeviceArrayError(
            f"{name} must be a DeviceArray, got {type(arr).__name__}"
        )
    arr._check_live()
    return arr


def require_same_device(*arrays: DeviceArray) -> None:
    devices = {id(a.device) for a in arrays}
    if len(devices) > 1:
        raise DeviceArrayError("kernel arguments live on different devices")


def require_vector(name: str, arr: DeviceArray, size: int | None = None) -> None:
    if arr.ndim != 1:
        raise DeviceArrayError(f"{name} must be 1-D, got shape {arr.shape}")
    if size is not None and arr.size != size:
        raise DeviceArrayError(f"{name} must have size {size}, got {arr.size}")


def require_matrix(name: str, arr: DeviceArray, shape: tuple[int, int] | None = None) -> None:
    if arr.ndim != 2:
        raise DeviceArrayError(f"{name} must be 2-D, got shape {arr.shape}")
    if shape is not None and arr.shape != shape:
        raise DeviceArrayError(f"{name} must have shape {shape}, got {arr.shape}")


def require_float_dtype(name: str, arr: DeviceArray) -> np.dtype:
    if arr.dtype not in (np.float32, np.float64):
        raise DeviceArrayError(
            f"{name} must be float32 or float64, got {arr.dtype}"
        )
    return arr.dtype


def require_same_dtype(*arrays: DeviceArray) -> np.dtype:
    dtypes = {a.dtype for a in arrays}
    if len(dtypes) > 1:
        raise DeviceArrayError(f"mixed dtypes in kernel arguments: {dtypes}")
    return arrays[0].dtype

"""Launch plans: capture → fuse → lower, the CUDA-graph-style seam.

Solver backends describe each iteration's device work as *plan sections*
(pricing, ratio.map, update, …).  Inside a section the backend issues its
ordinary :mod:`repro.gpu.blas` / kernel calls; the section decides how they
reach the device:

- **fusion off** (the default): every call passes straight through to
  :meth:`Device.launch` — execution, costs and statistics are exactly the
  legacy op-by-op behaviour, which is what keeps the golden fixture
  bit-identical.
- **fusion on**: the device records the launches instead of executing them
  (:meth:`Device._begin_capture`), and on section exit the planner lowers
  the captured sequence — runs of ``fusable`` map kernels collapse into one
  launch whose cost is :meth:`OpCost.fuse` of the parts (one launch
  overhead; operands a later op re-reads are fetched once), while
  non-fusable ops launch singly with their original name and cost.

Two structural rules make fusion *safe* rather than merely plausible:

1. A group holds at most one non-fusable op (GEMV, GER, SpMV).  Fusable
   elementwise *producers* may precede it when it reads a buffer they
   touched ("prologue fusion" — the copy→gemv(β=1) and extract_col→gemv
   idioms), and fusable *consumers* may follow it when the first of them
   reads a buffer the group touched ("epilogue fusion" — the SpMV→PDHG-
   update idiom and the classic fused pricing kernel
   copy→gemvᵀ→mask→reduce).  Ops are never reordered: fused launches run
   the captured bodies in capture order, making fp64 results bit-identical
   by construction.
2. A section holds at most **one** terminal reduction
   (:meth:`_PlanSection.argmin` / :meth:`_PlanSection.first_index_below`),
   and it ends the capture: its first tree pass is recorded as a fusable op
   (the classic map+reduce fusion), the captured sequence is lowered and
   executed, then the remaining tree passes and the scalar DtoH are charged
   exactly as :mod:`repro.gpu.reduce` charges them.

Host transfers raise inside a capture (the bodies have not executed yet),
so ``scalar_to_host``/``set_scalar`` calls belong *outside* sections — the
reason the backends' ratio test splits into a ``ratio.map`` and a
``ratio.tie`` section around its host-side comparisons.

:func:`emit` is the blessed pass-through for backend-owned custom kernels
(sparse LU solves, PDHG updates): backends never call ``Device.launch``
directly (the architecture lint enforces it), so every launch is visible to
the planner.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Callable, Iterator

import numpy as np

from repro.errors import InvalidLaunchError, SolverError
from repro.gpu import reduce as gpured
from repro.gpu.device import CapturedLaunch, Device
from repro.gpu.kernel import DEFAULT_BLOCK
from repro.gpu.memory import DeviceArray
from repro.metrics import instrument as _metrics
from repro.perfmodel.ops import OpCost


# ---------------------------------------------------------------------------
# precision policy
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class PrecisionPolicy:
    """The device arithmetic a solve runs in, derived from its options.

    ``compute_dtype`` is the dtype of every device buffer and kernel;
    ``refine`` asks the backend to run fp64 iterative-refinement residual
    correction on the extracted solution (the classic mixed-precision
    scheme: fp32 speed, fp64-grade answers).
    """

    compute_dtype: np.dtype
    refine: bool = False

    @classmethod
    def from_options(cls, options) -> "PrecisionPolicy":
        """Resolve ``options.precision`` / ``options.dtype`` into a policy."""
        precision = getattr(options, "precision", None)
        if precision is None:
            return cls(np.dtype(options.dtype), refine=False)
        if precision == "fp32":
            return cls(np.dtype(np.float32), refine=False)
        if precision == "fp64":
            return cls(np.dtype(np.float64), refine=False)
        if precision == "mixed":
            return cls(np.dtype(np.float32), refine=True)
        raise SolverError(f"unknown precision policy {precision!r}")


# ---------------------------------------------------------------------------
# the blessed pass-through for backend custom kernels
# ---------------------------------------------------------------------------


def emit(
    dev: Device,
    name: str,
    body: Callable[[], None],
    cost: OpCost,
    *,
    dtype=np.float32,
    block: int = DEFAULT_BLOCK,
    fusable: bool = False,
    reads: tuple = (),
    writes: tuple = (),
) -> None:
    """Issue one backend-owned kernel through the plan layer.

    Identical to :meth:`Device.launch` — inside a capturing section the
    launch is recorded for fusion, outside it executes immediately.  Solver
    backends use this (or :mod:`repro.gpu.blas`) for every launch; the
    architecture lint forbids them from calling ``Device.launch`` directly.
    """
    dev.launch(
        name, body, cost, dtype=dtype, block=block,
        fusable=fusable, reads=reads, writes=writes,
    )


# ---------------------------------------------------------------------------
# lowering: group captured launches into fused launches
# ---------------------------------------------------------------------------


def _short(name: str) -> str:
    """``blas.copy`` -> ``copy``; ``kernel.mask_min`` -> ``mask_min``."""
    return name.rsplit(".", 1)[-1]


def _group_captured(captured: list[CapturedLaunch]) -> list[list[CapturedLaunch]]:
    """Partition a captured sequence into launch groups, in order.

    Consecutive ``fusable`` ops of the same dtype and block chain into one
    group.  A non-fusable op appears at most once per group: it joins a
    fusable run when it reads a buffer the run touched (prologue fusion),
    and fusable consumers keep extending the group afterwards when the
    first of them reads a touched buffer (epilogue fusion) — the heavy
    op's grid carries the elementwise producers and consumers around it.
    Everything else launches alone.
    """
    groups: list[list[CapturedLaunch]] = []
    cur: list[CapturedLaunch] = []
    touched: set[int] = set()
    has_heavy = False  # a non-fusable member is present anywhere
    heavy_is_last = False  # ... and is the newest member

    def flush() -> None:
        nonlocal cur, touched, has_heavy, heavy_is_last
        if cur:
            groups.append(cur)
        cur, touched, has_heavy, heavy_is_last = [], set(), False, False

    for op in captured:
        if cur and (op.dtype != cur[0].dtype or op.block != cur[0].block):
            flush()
        if op.fusable:
            if heavy_is_last and not (touched & set(op.reads)):
                flush()  # the heavy op's output is not consumed
            cur.append(op)
            touched |= set(op.reads) | set(op.writes)
            heavy_is_last = False
        elif cur and not has_heavy and touched & set(op.reads):
            cur.append(op)  # prologue fusion: consumes the group's output
            touched |= set(op.reads) | set(op.writes)
            has_heavy = heavy_is_last = True
        else:
            flush()
            cur = [op]  # tentative epilogue opener
            touched = set(op.reads) | set(op.writes)
            has_heavy = heavy_is_last = True
    flush()
    return groups


def _shared_read_bytes(group: list[CapturedLaunch]) -> float:
    """Read traffic the fused kernel keeps in registers/shared memory:
    bytes of operands a later op reads that an earlier op already read or
    wrote (fetched once instead of per-op)."""
    resident: set[int] = set()
    shared = 0
    for op in group:
        for token in op.reads:
            if token in resident:
                shared += op.operand_bytes.get(token, 0)
        resident |= set(op.reads) | set(op.writes)
    return float(shared)


class LaunchPlan:
    """Per-solve launch planner bound to one :class:`Device`.

    Parameters
    ----------
    device:
        The device every section's launches target.
    fusion:
        Off → sections are pure pass-throughs (legacy behaviour, to the
        bit).  On → sections capture and lower with fusion.
    hooks:
        Optional engine hooks object (``repro.engine.hooks``); when given,
        the first fused lowering of each section name emits a
        ``plan.lower`` span with the op → launch compression.
    """

    def __init__(self, device: Device, *, fusion: bool = False, hooks=None):
        self.device = device
        self.fusion = bool(fusion)
        self._hooks = hooks
        self._reported: set[str] = set()
        #: Cumulative fusion statistics of this plan (one solve, typically).
        self.fused_launches = 0
        self.fused_ops = 0
        self.saved_seconds = 0.0

    @contextlib.contextmanager
    def section(
        self, name: str, *, timed: "str | None" = None
    ) -> Iterator["_PlanSection"]:
        """One named stretch of device work lowered as a unit.

        ``timed`` attributes the fused lowering to a
        :meth:`Device.timed_section` bucket — for sections that span
        several timed blocks (the PDHG spmv→update pair), where the
        replay would otherwise run outside every bucket.  Sections opened
        *inside* a timed block don't need it.
        """
        sec = _PlanSection(self, name, timed=timed)
        if not self.fusion:
            yield sec
            return
        self.device._begin_capture()
        try:
            yield sec
        except BaseException:
            if self.device._capture is not None:
                self.device._end_capture()
            raise
        if self.device._capture is not None:  # no terminal reduction ran
            self._lower(name, self.device._end_capture(), timed=timed)

    # -- lowering ----------------------------------------------------------

    def _lower(
        self,
        name: str,
        captured: list[CapturedLaunch],
        timed: "str | None" = None,
    ) -> None:
        """Replay a captured sequence as (possibly fused) real launches."""
        if not captured:
            return
        if timed is not None:
            with self.device.timed_section(timed):
                self._lower(name, captured)
            return
        groups = _group_captured(captured)
        for group in groups:
            if len(group) == 1:
                op = group[0]
                self.device.launch(
                    op.name, op.body, op.cost, dtype=op.dtype, block=op.block
                )
                continue
            label = "fused[" + "+".join(_short(op.name) for op in group) + "]"
            cost = OpCost.fuse(
                *(op.cost for op in group),
                shared_read_bytes=_shared_read_bytes(group),
            )
            bodies = [op.body for op in group]

            def run(bodies=bodies) -> None:
                for body in bodies:
                    body()

            self.device.launch(
                label, run, cost, dtype=group[0].dtype, block=group[0].block
            )
            saved = (len(group) - 1) * self.device.params.launch_overhead
            self.fused_launches += 1
            self.fused_ops += len(group)
            self.saved_seconds += saved
            _metrics.record_fused_launch(len(group), saved)
        if self._hooks is not None and name not in self._reported:
            self._reported.add(name)
            with self._hooks.span(
                "plan.lower", section=name,
                ops=len(captured), launches=len(groups),
            ):
                pass


class _PlanSection:
    """Handle the backend sees inside ``with plan.section(...) as sec``.

    Carries the section's terminal reductions.  With fusion off they call
    :mod:`repro.gpu.reduce` directly; with fusion on they record the first
    tree pass as a fusable op (so it fuses with the preceding map kernel),
    end the capture, lower + execute, and charge the remaining passes and
    the scalar DtoH exactly as the unfused reduction does.
    """

    def __init__(
        self, plan: LaunchPlan, name: str, *, timed: "str | None" = None
    ):
        self.plan = plan
        self.name = name
        self.timed = timed

    def _finish_reduction(
        self, x: DeviceArray, name: str, *, pair: bool
    ) -> None:
        """Shared fusion-mode tail: record the synthetic first pass, lower
        the section, then charge the follow-up passes."""
        dev = self.plan.device
        w = x.dtype.itemsize
        if dev._capture is None:
            raise InvalidLaunchError(
                f"second terminal reduction in plan section {self.name!r}; "
                "sections hold at most one (split the section)"
            )
        dev.launch(
            name,
            lambda: None,
            gpured.first_pass_cost(x.size, w, pair=pair),
            dtype=x.dtype,
            fusable=True,
            reads=(x,),
        )
        self.plan._lower(self.name, dev._end_capture(), timed=self.timed)
        gpured._charge_tree(
            dev, name, x.size, w, x.dtype, pair=pair, skip_first=True
        )

    def argmin(self, x: DeviceArray) -> tuple[int, float]:
        """(index, value) of the minimum element — see
        :func:`repro.gpu.reduce.argmin`."""
        if not self.plan.fusion:
            return gpured.argmin(x)
        self._finish_reduction(x, "reduce.argmin", pair=True)
        idx, val = gpured.argmin_host(x)
        self.plan.device._record_transfer("dtoh", 2 * x.dtype.itemsize)
        return idx, val

    def first_index_below(self, x: DeviceArray, threshold: float) -> int:
        """Bland's min-index reduction — see
        :func:`repro.gpu.reduce.first_index_below`."""
        if not self.plan.fusion:
            return gpured.first_index_below(x, threshold)
        self._finish_reduction(x, "reduce.first_below", pair=False)
        idx = gpured.first_below_host(x, threshold)
        self.plan.device._record_transfer("dtoh", 4)
        return idx

"""Device BLAS: the cuBLAS stand-in the GPU solver is written against.

Level-1 routines follow the cuBLAS convention of returning scalars to the
host (charged a latency-dominated DtoH transfer — a real per-iteration cost
of GPU simplex codes).  Level-2 GEMV uses a warp-per-row mapping, the layout
the paper's implementation relies on for coalesced access; GER maps one
thread per matrix element.

Costs charged to the device clock (itemsize ``w``):

=========  ==========  ======================================  ===========
routine    FLOPs       main-memory traffic                      threads
=========  ==========  ======================================  ===========
copy       0           r n·w, w n·w                             n
swap       0           r 2n·w, w 2n·w                           n
scal       n           r n·w, w n·w                             n
axpy       2n          r 2n·w, w n·w                            n
cast       n           r n·w_src, w n·w_dst                     n
dot        2n          r 2n·w (+ partials)                      n
nrm2       2n+√        r n·w (+ partials)                       n
asum       n           r n·w (+ partials)                       n
gemv(N)    2mn         r (mn+n)·w, w m·w                        32·m
gemv(T)    2mn         r (mn+m)·w, w n·w                        32·n
ger        2mn         r (mn+m+n)·w, w mn·w                     m·n
gemm       2mnk        r (mk+kn)·w, w mn·w (tiled, ideal reuse) m·n
=========  ==========  ======================================  ===========
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import DeviceArrayError
from repro.gpu._checks import (
    require_device_array,
    require_float_dtype,
    require_matrix,
    require_same_device,
    require_same_dtype,
    require_vector,
)
from repro.gpu.device import Device
from repro.gpu.memory import DeviceArray
from repro.perfmodel.ops import OpCost


def _prep(*arrays: DeviceArray) -> tuple[Device, np.dtype, int]:
    """Common validation; returns (device, dtype, itemsize)."""
    for i, a in enumerate(arrays):
        require_device_array(f"arg{i}", a)
        require_float_dtype(f"arg{i}", a)
    require_same_device(*arrays)
    dtype = require_same_dtype(*arrays)
    return arrays[0].device, dtype, np.dtype(dtype).itemsize


# ---------------------------------------------------------------------------
# Level 1
# ---------------------------------------------------------------------------


def copy(x: DeviceArray, y: DeviceArray) -> None:
    """y := x (``cublasScopy``)."""
    dev, dtype, w = _prep(x, y)
    require_vector("x", x)
    require_vector("y", y, x.size)
    n = x.size
    dev.launch(
        "blas.copy",
        lambda: y.data.__setitem__(slice(None), x.data),
        OpCost(bytes_read=n * w, bytes_written=n * w, threads=n),
        dtype=dtype,
        fusable=True,
        reads=(x,),
        writes=(y,),
    )


def swap(x: DeviceArray, y: DeviceArray) -> None:
    """x, y := y, x (``cublasSswap``)."""
    dev, dtype, w = _prep(x, y)
    require_vector("x", x)
    require_vector("y", y, x.size)
    n = x.size

    def body() -> None:
        tmp = x.data.copy()
        x.data[:] = y.data
        y.data[:] = tmp

    dev.launch(
        "blas.swap",
        body,
        OpCost(bytes_read=2 * n * w, bytes_written=2 * n * w, threads=n),
        dtype=dtype,
        fusable=True,
        reads=(x, y),
        writes=(x, y),
    )


def scal(alpha: float, x: DeviceArray) -> None:
    """x := alpha * x (``cublasSscal``)."""
    dev, dtype, w = _prep(x)
    require_vector("x", x)
    n = x.size
    dev.launch(
        "blas.scal",
        lambda: x.data.__imul__(dtype.type(alpha)),
        OpCost(flops=n, bytes_read=n * w, bytes_written=n * w, threads=n),
        dtype=dtype,
        fusable=True,
        reads=(x,),
        writes=(x,),
    )


def axpy(alpha: float, x: DeviceArray, y: DeviceArray) -> None:
    """y := alpha * x + y (``cublasSaxpy``)."""
    dev, dtype, w = _prep(x, y)
    require_vector("x", x)
    require_vector("y", y, x.size)
    n = x.size

    def body() -> None:
        y.data[:] = y.data + dtype.type(alpha) * x.data

    dev.launch(
        "blas.axpy",
        body,
        OpCost(flops=2 * n, bytes_read=2 * n * w, bytes_written=n * w, threads=n),
        dtype=dtype,
        fusable=True,
        reads=(x, y),
        writes=(y,),
    )


def _reduction_launches(dev: Device, name: str, n: int, w: int, dtype,
                        flops_per_elem: float) -> None:
    """Charge the tree-reduction passes that follow a level-1 map kernel."""
    remaining = -(-n // (2 * 256))
    while remaining > 1:
        nxt = -(-remaining // (2 * 256))
        dev.launch(
            name,
            lambda: None,
            OpCost(
                flops=flops_per_elem * remaining,
                bytes_read=remaining * w,
                bytes_written=nxt * w,
                threads=max(1, remaining // 2),
            ),
            dtype=dtype,
        )
        remaining = nxt


def dot(x: DeviceArray, y: DeviceArray) -> float:
    """Return xᵀy on the host (``cublasSdot``)."""
    dev, dtype, w = _prep(x, y)
    require_vector("x", x)
    require_vector("y", y, x.size)
    n = x.size
    out = np.zeros((), dtype=dtype)

    def body() -> None:
        out[...] = x.data @ y.data

    partials = -(-n // (2 * 256))
    dev.launch(
        "blas.dot",
        body,
        OpCost(
            flops=2 * n,
            bytes_read=2 * n * w,
            bytes_written=partials * w,
            threads=n,
        ),
        dtype=dtype,
    )
    _reduction_launches(dev, "blas.dot", n, w, dtype, 1.0)
    dev._record_transfer("dtoh", w)
    return float(out)


def nrm2(x: DeviceArray) -> float:
    """Return ‖x‖₂ on the host (``cublasSnrm2``)."""
    dev, dtype, w = _prep(x)
    require_vector("x", x)
    n = x.size
    out = np.zeros((), dtype=np.float64)

    def body() -> None:
        out[...] = np.sqrt(np.sum(x.data.astype(np.float64) ** 2))

    partials = -(-n // (2 * 256))
    dev.launch(
        "blas.nrm2",
        body,
        OpCost(flops=2 * n, bytes_read=n * w, bytes_written=partials * w, threads=n),
        dtype=dtype,
    )
    _reduction_launches(dev, "blas.nrm2", n, w, dtype, 1.0)
    dev._record_transfer("dtoh", w)
    return float(out)


def asum(x: DeviceArray) -> float:
    """Return Σ|xᵢ| on the host (``cublasSasum``)."""
    dev, dtype, w = _prep(x)
    require_vector("x", x)
    n = x.size
    out = np.zeros((), dtype=np.float64)

    def body() -> None:
        out[...] = np.sum(np.abs(x.data.astype(np.float64)))

    partials = -(-n // (2 * 256))
    dev.launch(
        "blas.asum",
        body,
        OpCost(flops=n, bytes_read=n * w, bytes_written=partials * w, threads=n),
        dtype=dtype,
    )
    _reduction_launches(dev, "blas.asum", n, w, dtype, 1.0)
    dev._record_transfer("dtoh", w)
    return float(out)


def cast(x: DeviceArray, out: DeviceArray) -> None:
    """out := x converted to ``out``'s dtype — the explicit fp32↔fp64 kernel.

    Mixed-precision schemes round-trip vectors between precisions.  The
    conversion is a real kernel with real traffic (read at the source width,
    write at the destination width), never a silent free view — which is why
    ``_prep`` keeps its strict same-dtype rule for every other routine.
    """
    for name, a in (("x", x), ("out", out)):
        require_device_array(name, a)
        require_float_dtype(name, a)
    require_same_device(x, out)
    require_vector("x", x)
    require_vector("out", out, x.size)
    if x.dtype == out.dtype:
        raise DeviceArrayError(
            "blas.cast source and destination share a dtype; use blas.copy"
        )
    n = x.size
    w_src = x.dtype.itemsize
    w_dst = out.dtype.itemsize
    dst_t = out.dtype

    def body() -> None:
        out.data[:] = x.data.astype(dst_t)

    x.device.launch(
        "blas.cast",
        body,
        OpCost(
            flops=n,
            bytes_read=n * w_src,
            bytes_written=n * w_dst,
            threads=max(1, n),
        ),
        dtype=out.dtype,
        fusable=True,
        reads=(x,),
        writes=(out,),
    )


def iamax(x: DeviceArray) -> int:
    """Index of max |xᵢ| (``cublasIsamax``; 0-based here, unlike Fortran)."""
    from repro.gpu.reduce import argmax_abs

    idx, _ = argmax_abs(x)
    return idx


# ---------------------------------------------------------------------------
# Level 2
# ---------------------------------------------------------------------------


def gemv(
    a: DeviceArray,
    x: DeviceArray,
    y: DeviceArray,
    alpha: float = 1.0,
    beta: float = 0.0,
    trans: bool = False,
) -> None:
    """y := alpha · op(A) x + beta · y, with op(A) = A or Aᵀ (``cublasSgemv``).

    Warp-per-row mapping (warp-per-column for the transposed case): each
    warp reduces one dot product with coalesced row segments.
    """
    dev, dtype, w = _prep(a, x, y)
    require_matrix("A", a)
    m, n = a.shape
    if not trans:
        require_vector("x", x, n)
        require_vector("y", y, m)
        out_len, in_len = m, n
    else:
        require_vector("x", x, m)
        require_vector("y", y, n)
        out_len, in_len = n, m

    alpha_t = dtype.type(alpha)
    beta_t = dtype.type(beta)

    def body() -> None:
        av = a.data if not trans else a.data.T
        if beta == 0.0:
            y.data[:] = alpha_t * (av @ x.data)
        else:
            y.data[:] = alpha_t * (av @ x.data) + beta_t * y.data

    extra = out_len * w if beta != 0.0 else 0
    cost = OpCost(
        flops=2 * m * n + (2 * out_len if beta != 0.0 else 0),
        bytes_read=m * n * w + in_len * w + extra,
        bytes_written=out_len * w,
        threads=out_len * dev.params.warp_size,
        # The transposed walk strides down columns; GT200 coalesces it only
        # partially without an explicit transpose, which the paper's layout
        # avoids for the hot path (we keep a mild penalty here).
        coalesced_fraction=1.0 if not trans else 0.85,
    )
    dev.launch(
        "blas.gemv_t" if trans else "blas.gemv",
        body,
        cost,
        dtype=dtype,
        reads=(a, x, y) if beta != 0.0 else (a, x),
        writes=(y,),
    )


def ger(
    x: DeviceArray,
    y: DeviceArray,
    a: DeviceArray,
    alpha: float = 1.0,
) -> None:
    """A := A + alpha · x yᵀ (``cublasSger``), one thread per element."""
    dev, dtype, w = _prep(x, y, a)
    require_matrix("A", a)
    m, n = a.shape
    require_vector("x", x, m)
    require_vector("y", y, n)
    alpha_t = dtype.type(alpha)

    def body() -> None:
        a.data[...] = a.data + alpha_t * np.outer(x.data, y.data)

    cost = OpCost(
        flops=2 * m * n,
        bytes_read=m * n * w + (m + n) * w,
        bytes_written=m * n * w,
        threads=m * n,
    )
    dev.launch(
        "blas.ger", body, cost, dtype=dtype, reads=(x, y, a), writes=(a,)
    )


# ---------------------------------------------------------------------------
# Level 3
# ---------------------------------------------------------------------------


def gemm(
    a: DeviceArray,
    b: DeviceArray,
    c: DeviceArray,
    alpha: float = 1.0,
    beta: float = 0.0,
    transa: bool = False,
    transb: bool = False,
) -> None:
    """C := alpha · op(A) op(B) + beta · C (``cublasSgemm``), shared-memory
    tiled: global traffic is the ideal (A once, B once, C once)."""
    dev, dtype, w = _prep(a, b, c)
    require_matrix("A", a)
    require_matrix("B", b)
    require_matrix("C", c)
    am, ak = (a.shape[1], a.shape[0]) if transa else a.shape
    bk, bn = (b.shape[1], b.shape[0]) if transb else b.shape
    if ak != bk:
        raise DeviceArrayError(
            f"gemm inner-dimension mismatch: op(A) is {am}x{ak}, op(B) is {bk}x{bn}"
        )
    require_matrix("C", c, (am, bn))
    alpha_t = dtype.type(alpha)
    beta_t = dtype.type(beta)

    def body() -> None:
        av = a.data.T if transa else a.data
        bv = b.data.T if transb else b.data
        if beta == 0.0:
            c.data[...] = alpha_t * (av @ bv)
        else:
            c.data[...] = alpha_t * (av @ bv) + beta_t * c.data

    extra_read = am * bn * w if beta != 0.0 else 0
    cost = OpCost(
        flops=2 * am * ak * bn,
        bytes_read=(am * ak + ak * bn) * w + extra_read,
        bytes_written=am * bn * w,
        threads=am * bn,
    )
    dev.launch("blas.gemm", body, cost, dtype=dtype)


# ---------------------------------------------------------------------------
# Elementwise helpers used by the solver (not in BLAS proper, but standard
# device utility kernels).
# ---------------------------------------------------------------------------


def fill(x: DeviceArray, value: float) -> None:
    """x[:] := value."""
    dev, dtype, w = _prep(x)
    n = x.size
    dev.launch(
        "blas.fill",
        lambda: x.data.fill(dtype.type(value)),
        OpCost(bytes_written=n * w, threads=max(1, n)),
        dtype=dtype,
        fusable=True,
        writes=(x,),
    )


def gather(src: DeviceArray, indices: np.ndarray, out: DeviceArray) -> None:
    """out[i] := src[indices[i]] — indexed reads are uncoalesced."""
    dev, dtype, w = _prep(src, out)
    require_vector("src", src)
    require_vector("out", out, len(indices))
    idx = np.asarray(indices, dtype=np.int64)
    if idx.size and (idx.min() < 0 or idx.max() >= src.size):
        raise DeviceArrayError("gather index out of range")
    n = idx.size

    def body() -> None:
        out.data[:] = src.data[idx]

    cost = OpCost(
        bytes_read=n * w + n * 4,
        bytes_written=n * w,
        threads=max(1, n),
        coalesced_fraction=0.25,
    )
    dev.launch(
        "blas.gather", body, cost, dtype=dtype, fusable=True,
        reads=(src,), writes=(out,),
    )
